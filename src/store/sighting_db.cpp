#include "store/sighting_db.hpp"

#include <algorithm>
#include <cassert>

namespace locs::store {

SightingDb::SightingDb(spatial::IndexFactory index_factory)
    : index_factory_(std::move(index_factory)), index_(index_factory_()) {}

void SightingDb::insert(const core::Sighting& s, double offered_acc,
                        TimePoint expiry) {
  MaybeGuard guard(slice_mu_);
  assert(records_.find(s.oid) == records_.end());
  Record rec;
  rec.sighting = s;
  rec.offered_acc = offered_acc;
  rec.expiry = expiry;
  rec.generation = next_generation_++;
  records_.emplace(s.oid, rec);
  index_->insert(s.oid, s.pos);
  expiry_heap_.push_back({expiry, s.oid, rec.generation});
  std::push_heap(expiry_heap_.begin(), expiry_heap_.end(), std::greater<>{});
}

bool SightingDb::update(const core::Sighting& s, TimePoint expiry) {
  MaybeGuard guard(slice_mu_);
  const auto it = records_.find(s.oid);
  if (it == records_.end()) return false;
  it->second.sighting = s;
  it->second.expiry = expiry;
  it->second.generation = next_generation_++;
  index_->update(s.oid, s.pos);
  expiry_heap_.push_back({expiry, s.oid, it->second.generation});
  std::push_heap(expiry_heap_.begin(), expiry_heap_.end(), std::greater<>{});
  return true;
}

void SightingDb::apply_batch(const std::vector<BulkUpdate>& items,
                             TimePoint expiry) {
  MaybeGuard guard(slice_mu_);
  for (const BulkUpdate& item : items) {
    const auto [it, inserted] = records_.try_emplace(item.s.oid);
    Record& rec = it->second;
    rec.sighting = item.s;
    rec.offered_acc = item.offered_acc;
    rec.expiry = expiry;
    rec.generation = next_generation_++;
    if (inserted) {
      index_->insert(item.s.oid, item.s.pos);
    } else {
      index_->update(item.s.oid, item.s.pos);
    }
    expiry_heap_.push_back({expiry, item.s.oid, rec.generation});
    std::push_heap(expiry_heap_.begin(), expiry_heap_.end(), std::greater<>{});
  }
}

bool SightingDb::remove(ObjectId oid) {
  MaybeGuard guard(slice_mu_);
  const auto it = records_.find(oid);
  if (it == records_.end()) return false;
  index_->remove(oid);
  records_.erase(it);
  // Heap entries for this object become stale and are skipped lazily.
  return true;
}

const SightingDb::Record* SightingDb::find(ObjectId oid) const {
  const auto it = records_.find(oid);
  return it == records_.end() ? nullptr : &it->second;
}

void SightingDb::set_offered_acc(ObjectId oid, double offered_acc) {
  MaybeGuard guard(slice_mu_);
  const auto it = records_.find(oid);
  if (it != records_.end()) it->second.offered_acc = offered_acc;
}

std::vector<ObjectId> SightingDb::expire_until(TimePoint now) {
  MaybeGuard guard(slice_mu_);
  std::vector<ObjectId> expired;
  while (!expiry_heap_.empty() && expiry_heap_.front().expiry <= now) {
    const HeapEntry entry = expiry_heap_.front();
    std::pop_heap(expiry_heap_.begin(), expiry_heap_.end(), std::greater<>{});
    expiry_heap_.pop_back();
    const auto it = records_.find(entry.oid);
    if (it == records_.end() || it->second.generation != entry.generation) {
      continue;  // stale heap entry (updated or removed since)
    }
    index_->remove(entry.oid);
    records_.erase(it);
    expired.push_back(entry.oid);
  }
  return expired;
}

void SightingDb::objects_in_area(const geo::Polygon& area, double req_acc,
                                 double req_overlap,
                                 std::vector<core::ObjectResult>& out) const {
  objects_in_area_emit(area, req_acc, req_overlap,
                       [&](const core::ObjectResult& r) { out.push_back(r); });
}

void SightingDb::objects_in_circle(const geo::Circle& circle, double req_acc,
                                   std::vector<core::ObjectResult>& out) const {
  objects_in_circle_emit(circle, req_acc,
                         [&](const core::ObjectResult& r) { out.push_back(r); });
}

std::vector<core::ObjectResult> SightingDb::k_nearest(geo::Point p, std::size_t k,
                                                      double req_acc) const {
  // Over-fetch to compensate for accuracy filtering, then widen if needed.
  std::vector<core::ObjectResult> result;
  std::size_t fetch = k;
  while (true) {
    const auto entries = index_->k_nearest(p, fetch);
    result.clear();
    for (const spatial::Entry& e : entries) {
      const auto it = records_.find(e.id);
      assert(it != records_.end());
      if (it->second.offered_acc > req_acc) continue;
      result.push_back({e.id, {e.pos, it->second.offered_acc}});
      if (result.size() == k) return result;
    }
    if (entries.size() < fetch) return result;  // exhausted the database
    fetch *= 2;
  }
}

void SightingDb::clear() {
  MaybeGuard guard(slice_mu_);
  records_.clear();
  expiry_heap_.clear();
  index_ = index_factory_();
}

}  // namespace locs::store
