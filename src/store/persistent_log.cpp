#include "store/persistent_log.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "util/crc32.hpp"

namespace locs::store {

namespace {

constexpr std::size_t kFrameHeader = 8;  // u32 length + u32 crc

void put_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

Status io_error(const char* what) {
  return Status(StatusCode::kIoError,
                std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

PersistentLog::~PersistentLog() {
  if (fd_ >= 0) ::close(fd_);
}

PersistentLog::PersistentLog(PersistentLog&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(other.fd_),
      fsync_each_(other.fsync_each_),
      appended_(other.appended_) {
  other.fd_ = -1;
}

PersistentLog& PersistentLog::operator=(PersistentLog&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    fsync_each_ = other.fsync_each_;
    appended_ = other.appended_;
    other.fd_ = -1;
  }
  return *this;
}

Result<PersistentLog> PersistentLog::open(const std::string& path, bool fsync_each) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return io_error("open log");
  PersistentLog log;
  log.path_ = path;
  log.fd_ = fd;
  log.fsync_each_ = fsync_each;
  return log;
}

Status PersistentLog::append(const wire::Buffer& record) {
  return append_batch(std::span<const wire::Buffer>(&record, 1));
}

Status PersistentLog::append_batch(std::span<const wire::Buffer> records) {
  if (fd_ < 0) return Status(StatusCode::kFailedPrecondition, "log not open");
  if (records.empty()) return Status::ok();
  std::size_t total = 0;
  for (const wire::Buffer& r : records) total += kFrameHeader + r.size();
  std::vector<std::uint8_t> frames(total);
  std::uint8_t* p = frames.data();
  for (const wire::Buffer& r : records) {
    put_u32(p, static_cast<std::uint32_t>(r.size()));
    put_u32(p + 4, crc32(r.data(), r.size()));
    std::memcpy(p + kFrameHeader, r.data(), r.size());
    p += kFrameHeader + r.size();
  }
  std::size_t written = 0;
  while (written < frames.size()) {
    const ssize_t n = ::write(fd_, frames.data() + written, frames.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return io_error("append");
    }
    written += static_cast<std::size_t>(n);
  }
  if (fsync_each_ && ::fsync(fd_) != 0) return io_error("fsync");
  appended_ += records.size();
  return Status::ok();
}

Status PersistentLog::replay(
    const std::function<void(const std::uint8_t*, std::size_t)>& fn) const {
  if (fd_ < 0) return Status(StatusCode::kFailedPrecondition, "log not open");
  const int fd = ::open(path_.c_str(), O_RDONLY);
  if (fd < 0) return io_error("open for replay");
  std::vector<std::uint8_t> header(kFrameHeader);
  std::vector<std::uint8_t> payload;
  Status status = Status::ok();
  for (;;) {
    const ssize_t n = ::read(fd, header.data(), kFrameHeader);
    if (n == 0) break;  // clean end
    if (n != static_cast<ssize_t>(kFrameHeader)) break;  // torn tail
    const std::uint32_t len = get_u32(header.data());
    const std::uint32_t expected_crc = get_u32(header.data() + 4);
    if (len > 64 * 1024 * 1024) break;  // corrupt length
    payload.resize(len);
    std::size_t got = 0;
    bool torn = false;
    while (got < len) {
      const ssize_t m = ::read(fd, payload.data() + got, len - got);
      if (m <= 0) {
        torn = true;
        break;
      }
      got += static_cast<std::size_t>(m);
    }
    if (torn) break;
    if (crc32(payload.data(), payload.size()) != expected_crc) break;
    fn(payload.data(), payload.size());
  }
  ::close(fd);
  return status;
}

Status PersistentLog::rewrite(const std::vector<wire::Buffer>& records) {
  if (fd_ < 0) return Status(StatusCode::kFailedPrecondition, "log not open");
  const std::string tmp_path = path_ + ".tmp";
  const int tmp = ::open(tmp_path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (tmp < 0) return io_error("open tmp");
  for (const auto& record : records) {
    std::vector<std::uint8_t> frame(kFrameHeader + record.size());
    put_u32(frame.data(), static_cast<std::uint32_t>(record.size()));
    put_u32(frame.data() + 4, crc32(record.data(), record.size()));
    std::memcpy(frame.data() + kFrameHeader, record.data(), record.size());
    std::size_t written = 0;
    while (written < frame.size()) {
      const ssize_t n = ::write(tmp, frame.data() + written, frame.size() - written);
      if (n < 0) {
        ::close(tmp);
        return io_error("write tmp");
      }
      written += static_cast<std::size_t>(n);
    }
  }
  if (::fsync(tmp) != 0) {
    ::close(tmp);
    return io_error("fsync tmp");
  }
  ::close(tmp);
  if (::rename(tmp_path.c_str(), path_.c_str()) != 0) return io_error("rename");
  // Reopen the append handle onto the new file.
  ::close(fd_);
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) return io_error("reopen");
  appended_ = 0;  // appended() counts mutations since the last rewrite
  return Status::ok();
}

}  // namespace locs::store
