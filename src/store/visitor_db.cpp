#include "store/visitor_db.hpp"

#include "wire/codec.hpp"

namespace locs::store {

namespace {

enum class LogOp : std::uint8_t {
  kSetForward = 1,
  kInsertLeaf = 2,
  kSetAcc = 3,
  kRemove = 4,
};

/// The one builder of remove records, shared by the single and batch paths.
wire::Buffer make_remove_record(ObjectId oid) {
  wire::Buffer buf;
  wire::Writer w(buf);
  w.u8(static_cast<std::uint8_t>(LogOp::kRemove));
  w.u64(oid.value);
  w.flush();
  return buf;
}

}  // namespace

Result<VisitorDb> VisitorDb::open(const std::string& path, bool fsync_each) {
  auto log = PersistentLog::open(path, fsync_each);
  if (!log.ok()) return log.status();
  VisitorDb db;
  db.log_ = std::move(log).value();
  const Status replayed = db.log_->replay(
      [&db](const std::uint8_t* data, std::size_t len) { db.apply_record(data, len); });
  if (!replayed.is_ok()) return replayed;
  return db;
}

void VisitorDb::apply_record(const std::uint8_t* data, std::size_t len) {
  wire::Reader r(data, len);
  const auto op = static_cast<LogOp>(r.u8());
  const ObjectId oid{r.u64()};
  switch (op) {
    case LogOp::kSetForward: {
      const NodeId child{r.u32()};
      if (!r.ok()) return;
      auto& rec = records_[oid];
      rec.oid = oid;
      rec.forward_ref = child;
      rec.leaf.reset();
      break;
    }
    case LogOp::kInsertLeaf: {
      LeafVisitorInfo info;
      info.offered_acc = r.f64();
      info.reg_info.reg_inst = NodeId{r.u32()};
      info.reg_info.acc_range.desired = r.f64();
      info.reg_info.acc_range.minimum = r.f64();
      if (!r.ok()) return;
      auto& rec = records_[oid];
      rec.oid = oid;
      rec.forward_ref = kNoNode;
      rec.leaf = info;
      break;
    }
    case LogOp::kSetAcc: {
      const double acc = r.f64();
      if (!r.ok()) return;
      const auto it = records_.find(oid);
      if (it != records_.end() && it->second.leaf) it->second.leaf->offered_acc = acc;
      break;
    }
    case LogOp::kRemove:
      records_.erase(oid);
      break;
  }
}

void VisitorDb::set_forward(ObjectId oid, NodeId child) {
  auto& rec = records_[oid];
  rec.oid = oid;
  rec.forward_ref = child;
  rec.leaf.reset();
  log_set_forward(oid, child);
}

void VisitorDb::insert_leaf(ObjectId oid, double offered_acc,
                            const core::RegInfo& reg_info) {
  auto& rec = records_[oid];
  rec.oid = oid;
  rec.forward_ref = kNoNode;
  rec.leaf = LeafVisitorInfo{offered_acc, reg_info};
  log_insert_leaf(oid, offered_acc, reg_info);
}

void VisitorDb::set_offered_acc(ObjectId oid, double offered_acc) {
  const auto it = records_.find(oid);
  if (it == records_.end() || !it->second.leaf) return;
  it->second.leaf->offered_acc = offered_acc;
  log_set_acc(oid, offered_acc);
}

bool VisitorDb::remove(ObjectId oid) {
  if (records_.erase(oid) == 0) return false;
  log_remove(oid);
  return true;
}

std::size_t VisitorDb::remove_batch(std::span<const ObjectId> oids) {
  std::size_t removed = 0;
  std::vector<wire::Buffer> log_records;
  for (const ObjectId oid : oids) {
    if (records_.erase(oid) == 0) continue;
    ++removed;
    if (log_) log_records.push_back(make_remove_record(oid));
  }
  if (log_ && !log_records.empty()) log_->append_batch(log_records);
  return removed;
}

const VisitorRecord* VisitorDb::find(ObjectId oid) const {
  const auto it = records_.find(oid);
  return it == records_.end() ? nullptr : &it->second;
}

Status VisitorDb::compact() {
  if (!log_) return Status::ok();
  std::vector<wire::Buffer> records;
  records.reserve(records_.size());
  for (const auto& [oid, rec] : records_) {
    wire::Buffer buf;
    wire::Writer w(buf);
    if (rec.leaf) {
      w.u8(static_cast<std::uint8_t>(LogOp::kInsertLeaf));
      w.u64(oid.value);
      w.f64(rec.leaf->offered_acc);
      w.u32(rec.leaf->reg_info.reg_inst.value);
      w.f64(rec.leaf->reg_info.acc_range.desired);
      w.f64(rec.leaf->reg_info.acc_range.minimum);
    } else {
      w.u8(static_cast<std::uint8_t>(LogOp::kSetForward));
      w.u64(oid.value);
      w.u32(rec.forward_ref.value);
    }
    w.flush();
    records.push_back(std::move(buf));
  }
  return log_->rewrite(records);
}

void VisitorDb::log_set_forward(ObjectId oid, NodeId child) {
  if (!log_) return;
  wire::Buffer buf;
  wire::Writer w(buf);
  w.u8(static_cast<std::uint8_t>(LogOp::kSetForward));
  w.u64(oid.value);
  w.u32(child.value);
  w.flush();
  log_->append(buf);
}

void VisitorDb::log_insert_leaf(ObjectId oid, double acc, const core::RegInfo& reg) {
  if (!log_) return;
  wire::Buffer buf;
  wire::Writer w(buf);
  w.u8(static_cast<std::uint8_t>(LogOp::kInsertLeaf));
  w.u64(oid.value);
  w.f64(acc);
  w.u32(reg.reg_inst.value);
  w.f64(reg.acc_range.desired);
  w.f64(reg.acc_range.minimum);
  w.flush();
  log_->append(buf);
}

void VisitorDb::log_set_acc(ObjectId oid, double acc) {
  if (!log_) return;
  wire::Buffer buf;
  wire::Writer w(buf);
  w.u8(static_cast<std::uint8_t>(LogOp::kSetAcc));
  w.u64(oid.value);
  w.f64(acc);
  w.flush();
  log_->append(buf);
}

void VisitorDb::log_remove(ObjectId oid) {
  if (!log_) return;
  log_->append(make_remove_record(oid));
}

}  // namespace locs::store
