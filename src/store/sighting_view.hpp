// Partition-aware read view over one or more SightingDb slices.
//
// A sharded leaf server (core/sharded_location_server.hpp) splits its
// sighting database into per-shard slices, each with its own spatial index.
// Per-object operations (updates, position queries) always run on the shard
// that owns the object and read its slice directly; area operations (range
// queries, NN probes, event installation) need the union of all slices.
// SightingsView is that union: the coordinator shard's query paths run
// against it and merge per-slice sub-results, so the single RangeQuerySubRes
// / NNProbeSubRes a leaf emits is identical to the unsharded server's.
//
// Concurrency contract: at most ONE thread reads through a view at a time
// (the coordinator shard's reactor). Reads on a slice are serialized against
// that slice's OWNING shard's mutations via the slice lock registered with
// SightingDb::set_slice_lock -- the view locks each slice only while
// querying it, never two slices at once, so slice locks stay leaf-level and
// cannot deadlock. An unsharded server uses a single-slice view with no
// lock; that path forwards straight to the slice, preserving result order
// (and with it the seed-42 trace) bit for bit.
#pragma once

#include <mutex>
#include <vector>

#include "store/sighting_db.hpp"

namespace locs::store {

class SightingsView {
 public:
  SightingsView() = default;

  /// Registers a slice. `mu` (may be null) serializes reads against the
  /// owning shard's mutations; pass the mutex given to set_slice_lock.
  void add_slice(const SightingDb* slice, std::mutex* mu) {
    slices_.push_back({slice, mu});
  }

  void clear() { slices_.clear(); }
  std::size_t slice_count() const { return slices_.size(); }

  /// Total records across slices.
  std::size_t size() const;

  /// Copies the record for `oid` out of whichever slice owns it (under that
  /// slice's lock). Returns false if the object is unknown. A copy -- not a
  /// pointer -- because the record lives in another shard's slice and may be
  /// mutated the moment the slice lock is released.
  bool lookup(ObjectId oid, SightingDb::Record& out) const;

  /// SightingDb::objects_in_area over the union of slices.
  void objects_in_area(const geo::Polygon& area, double req_acc, double req_overlap,
                       std::vector<core::ObjectResult>& out) const;

  /// Sink-based union: results stream straight from each slice into `sink`
  /// (same order as the vector variant), so a leaf's query answer packs into
  /// the outgoing wire buffer without an intermediate vector. The sink runs
  /// UNDER the slice lock -- it must not call back into the store.
  template <typename Sink>
  void objects_in_area_emit(const geo::Polygon& area, double req_acc,
                            double req_overlap, Sink&& sink) const {
    for (const Slice& s : slices_) {
      MaybeGuard guard(s.mu);
      s.db->objects_in_area_emit(area, req_acc, req_overlap, sink);
    }
  }

  /// SightingDb::objects_in_circle over the union of slices.
  void objects_in_circle(const geo::Circle& circle, double req_acc,
                         std::vector<core::ObjectResult>& out) const;

  /// Sink-based variant of objects_in_circle (same contract as above).
  template <typename Sink>
  void objects_in_circle_emit(const geo::Circle& circle, double req_acc,
                              Sink&& sink) const {
    for (const Slice& s : slices_) {
      MaybeGuard guard(s.mu);
      s.db->objects_in_circle_emit(circle, req_acc, sink);
    }
  }

  /// The k globally nearest objects with acc <= req_acc, merged across
  /// slices (spatial/merge.hpp; ties broken by object id).
  std::vector<core::ObjectResult> k_nearest(geo::Point p, std::size_t k,
                                            double req_acc) const;

 private:
  struct Slice {
    const SightingDb* db;
    std::mutex* mu;  // null for single-threaded (unsharded / inline) views
  };

  std::vector<Slice> slices_;
};

}  // namespace locs::store
