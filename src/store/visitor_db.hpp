// Visitor database (§5): one record per tracked object currently visiting a
// server's service area.
//
//  * On a non-leaf server a record holds the forwarding reference to the
//    child next on the path to the object's agent.
//  * On a leaf server it holds the offered accuracy and the registration
//    information (registering instance + requested accuracy range).
//
// Kept on persistent storage (here: a CRC-framed write-ahead log), "updated
// only when an object is registered, deregisters or a handover occurs", so
// forwarding paths survive crashes while the volatile sightingDB does not.
#pragma once

#include <optional>
#include <span>
#include <unordered_map>

#include "core/types.hpp"
#include "store/persistent_log.hpp"
#include "util/ids.hpp"

namespace locs::store {

struct LeafVisitorInfo {
  double offered_acc = 0.0;
  core::RegInfo reg_info;
};

struct VisitorRecord {
  ObjectId oid;
  // Non-leaf servers: child next on the path to the agent (v.forwardRef).
  NodeId forward_ref;
  // Leaf servers only (v.offeredAcc, v.regInfo).
  std::optional<LeafVisitorInfo> leaf;
};

class VisitorDb {
 public:
  /// In-memory only (tests, simulations that do not exercise recovery).
  VisitorDb() = default;

  /// Persistent: replays the log at `path` into memory, then appends every
  /// mutation to it.
  static Result<VisitorDb> open(const std::string& path, bool fsync_each = false);

  /// Non-leaf path entry (Alg 6-1 createPath / Alg 6-3 forwarding repair).
  void set_forward(ObjectId oid, NodeId child);

  /// Leaf visitor entry (registration / handover-in).
  void insert_leaf(ObjectId oid, double offered_acc, const core::RegInfo& reg_info);

  void set_offered_acc(ObjectId oid, double offered_acc);

  bool remove(ObjectId oid);

  /// Bulk-apply counterpart of remove() for batch paths (soft-state expiry
  /// sweeps, batched deregistration): erases every present oid in one pass
  /// and appends all their log records as one frame write -- one syscall
  /// (and one fsync under fsync_each) per batch instead of per object, via
  /// PersistentLog::append_batch. Returns the number of records removed.
  std::size_t remove_batch(std::span<const ObjectId> oids);

  const VisitorRecord* find(ObjectId oid) const;
  bool contains(ObjectId oid) const { return records_.count(oid) > 0; }
  std::size_t size() const { return records_.size(); }

  /// Rewrites the log to exactly the current records (bounded recovery time).
  Status compact();

  /// Compacts when the log has grown past `appended_threshold` mutation
  /// records (called opportunistically from the server's tick()).
  Status maybe_compact(std::uint64_t appended_threshold) {
    if (!log_ || log_->appended() < appended_threshold) return Status::ok();
    return compact();
  }

  /// Mutations appended to the persistent log since open (0 if in-memory).
  std::uint64_t log_appended() const { return log_ ? log_->appended() : 0; }

  /// Iteration (recovery: ask visitors for refresh; tests).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [oid, rec] : records_) fn(rec);
  }

 private:
  void log_set_forward(ObjectId oid, NodeId child);
  void log_insert_leaf(ObjectId oid, double acc, const core::RegInfo& reg);
  void log_set_acc(ObjectId oid, double acc);
  void log_remove(ObjectId oid);
  void apply_record(const std::uint8_t* data, std::size_t len);

  std::unordered_map<ObjectId, VisitorRecord> records_;
  std::optional<PersistentLog> log_;
};

}  // namespace locs::store
