// Append-only persistent log with per-record CRC framing.
//
// Stands in for the paper's DB2/JDBC persistent storage (§5, §7.1): the
// visitorDB "is kept in persistent storage, which is updated only when an
// object is registered, deregisters or a handover occurs", so forwarding
// paths survive server failures. Replay tolerates a torn tail (the record
// being written during a crash) by stopping at the first bad frame.
#pragma once

#include <functional>
#include <span>
#include <string>

#include "util/result.hpp"
#include "wire/codec.hpp"

namespace locs::store {

class PersistentLog {
 public:
  PersistentLog() = default;
  ~PersistentLog();

  PersistentLog(PersistentLog&& other) noexcept;
  PersistentLog& operator=(PersistentLog&& other) noexcept;
  PersistentLog(const PersistentLog&) = delete;
  PersistentLog& operator=(const PersistentLog&) = delete;

  /// Opens (creating if needed) the log at `path`. With `fsync_each`, every
  /// append is flushed to stable storage before returning.
  static Result<PersistentLog> open(const std::string& path, bool fsync_each = false);

  Status append(const wire::Buffer& record);

  /// Appends a whole batch of records as ONE contiguous frame write (and one
  /// fsync under fsync_each) -- the per-record syscall/flush cost is paid
  /// once per batch. Equivalent on disk to appending each record in order.
  Status append_batch(std::span<const wire::Buffer> records);

  /// Invokes `fn` for every intact record in write order. Stops silently at
  /// a torn/corrupt tail; returns an error only on I/O failure.
  Status replay(const std::function<void(const std::uint8_t*, std::size_t)>& fn) const;

  /// Atomically replaces the log contents with `records` (compaction):
  /// writes a sibling temp file, fsyncs, renames over the original.
  Status rewrite(const std::vector<wire::Buffer>& records);

  /// Number of appends since open or since the last rewrite() (not counting
  /// replayed records) -- the compaction trigger.
  std::uint64_t appended() const { return appended_; }

  const std::string& path() const { return path_; }
  bool is_open() const { return fd_ >= 0; }

 private:
  std::string path_;
  int fd_ = -1;
  bool fsync_each_ = false;
  std::uint64_t appended_ = 0;
};

}  // namespace locs::store
