// Main-memory sighting database of a leaf location server (§5, Fig 7).
//
// Combines the paper's three in-memory components:
//  * the sightingDB proper (one sighting record per visitor, with a
//    soft-state expiration date),
//  * the hash index over object identifiers ("to quickly find the object
//    belonging to a position query"),
//  * a pluggable spatial index over positions ("to find the candidates for
//    a range or nearest neighbor query").
//
// Deliberately volatile: the paper stores sightings in main memory only and
// rebuilds them from incoming position updates after a restart.
#pragma once

#include <cassert>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"
#include "geo/circle.hpp"
#include "geo/polygon.hpp"
#include "spatial/spatial_index.hpp"
#include "util/clock.hpp"
#include "util/ids.hpp"

namespace locs::store {

/// Scoped lock over an OPTIONAL mutex: no-op when null. Shared by the
/// SightingDb slice mutators and the SightingsView cross-slice readers --
/// unsharded single-threaded servers pass null and pay one branch.
class MaybeGuard {
 public:
  explicit MaybeGuard(std::mutex* mu) : mu_(mu) {
    if (mu_ != nullptr) mu_->lock();
  }
  ~MaybeGuard() {
    if (mu_ != nullptr) mu_->unlock();
  }
  MaybeGuard(const MaybeGuard&) = delete;
  MaybeGuard& operator=(const MaybeGuard&) = delete;

 private:
  std::mutex* mu_;
};

class SightingDb {
 public:
  struct Record {
    core::Sighting sighting;
    double offered_acc = 0.0;  // mirrored from the visitor record for fast
                               // query-time accuracy filtering
    TimePoint expiry = 0;
    std::uint64_t generation = 0;  // internal: validates lazy heap entries
  };

  explicit SightingDb(spatial::IndexFactory index_factory);

  /// Inserts a sighting for a new visitor. Precondition: not present.
  void insert(const core::Sighting& s, double offered_acc, TimePoint expiry);

  /// Updates the stored sighting (position update); returns false if the
  /// object is unknown. Extends the expiration date (§5: "extended
  /// accordingly whenever the visitor contacts the location server").
  bool update(const core::Sighting& s, TimePoint expiry);

  /// One upsert item of apply_batch (wire::BatchedUpdateReq application).
  struct BulkUpdate {
    core::Sighting s;
    double offered_acc = 0.0;
  };

  /// Upserts a whole batch of sightings under ONE slice-lock acquisition and
  /// one pass over records + spatial index -- the per-datagram lock and
  /// dispatch overhead is paid once per batch instead of once per sighting.
  /// Semantically identical to insert()/update()+set_offered_acc() per item.
  void apply_batch(const std::vector<BulkUpdate>& items, TimePoint expiry);

  bool remove(ObjectId oid);

  const Record* find(ObjectId oid) const;

  void set_offered_acc(ObjectId oid, double offered_acc);

  /// Pops every object whose sighting record has expired (soft state, §5).
  std::vector<ObjectId> expire_until(TimePoint now);

  /// Algorithm 6-5, line 4 -- spatialIndex.objectsInArea(area, reqAcc,
  /// reqOverlap): all objects with Overlap(area, o) >= req_overlap and
  /// ld(o).acc <= req_acc. `req_overlap` must be > 0 (paper: reqOverlap in
  /// (0,1]); values <= 0 are clamped to the smallest positive overlap.
  void objects_in_area(const geo::Polygon& area, double req_acc, double req_overlap,
                       std::vector<core::ObjectResult>& out) const;

  /// Sink-based variant: invokes `sink(result)` per qualifying object, in
  /// the exact order the vector variant appends. The query read path streams
  /// results straight into packed wire buffers through this (no
  /// intermediate vector is ever materialized).
  template <typename Sink>
  void objects_in_area_emit(const geo::Polygon& area, double req_acc,
                            double req_overlap, Sink&& sink) const {
    if (area.empty()) return;
    req_overlap = std::max(req_overlap, kMinOverlap);
    // Any qualifying object has ld.acc <= req_acc, so its stored position
    // lies within req_acc of the area: the inflated bounding box is a
    // complete candidate set.
    const geo::Rect search = area.bounding_box().inflated(std::max(req_acc, 0.0));
    candidates_scratch_.clear();
    index_->query_rect(search, candidates_scratch_);
    for (const spatial::Entry& cand : candidates_scratch_) {
      const auto it = records_.find(cand.id);
      assert(it != records_.end());
      const Record& rec = it->second;
      if (rec.offered_acc > req_acc) continue;  // insufficient accuracy (§3.2)
      const double ov =
          geo::overlap_degree(area, {rec.sighting.pos, rec.offered_acc});
      if (ov >= req_overlap) {
        sink(core::ObjectResult{cand.id, {rec.sighting.pos, rec.offered_acc}});
      }
    }
  }

  /// Candidates for nearest-neighbor probes: objects with acc <= req_acc
  /// whose stored position lies within the circle.
  void objects_in_circle(const geo::Circle& circle, double req_acc,
                         std::vector<core::ObjectResult>& out) const;

  /// Sink-based variant of objects_in_circle (same order, no vector).
  template <typename Sink>
  void objects_in_circle_emit(const geo::Circle& circle, double req_acc,
                              Sink&& sink) const {
    candidates_scratch_.clear();
    index_->query_circle(circle, candidates_scratch_);
    for (const spatial::Entry& cand : candidates_scratch_) {
      const auto it = records_.find(cand.id);
      assert(it != records_.end());
      const Record& rec = it->second;
      if (rec.offered_acc > req_acc) continue;
      sink(core::ObjectResult{cand.id, {rec.sighting.pos, rec.offered_acc}});
    }
  }

  /// The k nearest objects (by stored position) with acc <= req_acc.
  std::vector<core::ObjectResult> k_nearest(geo::Point p, std::size_t k,
                                            double req_acc) const;

  std::size_t size() const { return records_.size(); }
  void clear();

  /// Invokes `fn(oid, record)` for every stored visitor, under the slice
  /// lock. `fn` must not call back into a mutator (they self-lock); callers
  /// that mutate collect the ids first (bucket-migration extraction does).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    MaybeGuard g(slice_mu_);
    for (const auto& [oid, rec] : records_) fn(oid, rec);
  }

  const spatial::SpatialIndex& index() const { return *index_; }

  /// Sharding hook (core/sharded_location_server): when this db is one slice
  /// of a sharded leaf, mutations from the owning shard reactor must be
  /// serialized against cross-shard query merges (store/sighting_view). The
  /// mutators lock `mu` internally; SightingsView locks the same mutex around
  /// its reads. Unsharded servers leave this null (zero-cost branch).
  void set_slice_lock(std::mutex* mu) { slice_mu_ = mu; }
  std::mutex* slice_lock() const { return slice_mu_; }

  /// Smallest positive req_overlap (values <= 0 clamp to this; see
  /// objects_in_area).
  static constexpr double kMinOverlap = 1e-12;

 private:
  struct HeapEntry {
    TimePoint expiry;
    ObjectId oid;
    std::uint64_t generation;
    bool operator>(const HeapEntry& other) const { return expiry > other.expiry; }
  };

  spatial::IndexFactory index_factory_;
  std::unique_ptr<spatial::SpatialIndex> index_;
  // Candidate scratch for the area/circle queries, reused across calls (the
  // owning server is a single-threaded reactor, so const queries never run
  // concurrently).
  mutable std::vector<spatial::Entry> candidates_scratch_;
  std::unordered_map<ObjectId, Record> records_;
  std::vector<HeapEntry> expiry_heap_;  // min-heap via std::push_heap
  std::uint64_t next_generation_ = 1;
  std::mutex* slice_mu_ = nullptr;  // see set_slice_lock
};

}  // namespace locs::store
