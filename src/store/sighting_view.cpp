#include "store/sighting_view.hpp"

#include "spatial/merge.hpp"

namespace locs::store {

std::size_t SightingsView::size() const {
  std::size_t total = 0;
  for (const Slice& s : slices_) {
    MaybeGuard guard(s.mu);
    total += s.db->size();
  }
  return total;
}

bool SightingsView::lookup(ObjectId oid, SightingDb::Record& out) const {
  for (const Slice& s : slices_) {
    MaybeGuard guard(s.mu);
    const SightingDb::Record* rec = s.db->find(oid);
    if (rec != nullptr) {
      out = *rec;
      return true;
    }
  }
  return false;
}

void SightingsView::objects_in_area(const geo::Polygon& area, double req_acc,
                                    double req_overlap,
                                    std::vector<core::ObjectResult>& out) const {
  objects_in_area_emit(area, req_acc, req_overlap,
                       [&](const core::ObjectResult& r) { out.push_back(r); });
}

void SightingsView::objects_in_circle(const geo::Circle& circle, double req_acc,
                                      std::vector<core::ObjectResult>& out) const {
  objects_in_circle_emit(circle, req_acc,
                         [&](const core::ObjectResult& r) { out.push_back(r); });
}

std::vector<core::ObjectResult> SightingsView::k_nearest(geo::Point p,
                                                         std::size_t k,
                                                         double req_acc) const {
  // Single slice: forward directly, preserving the slice's exact result
  // order (unsharded servers must stay trace-identical).
  if (slices_.size() == 1) {
    MaybeGuard guard(slices_[0].mu);
    return slices_[0].db->k_nearest(p, k, req_acc);
  }
  std::vector<core::ObjectResult> merged;
  for (const Slice& s : slices_) {
    std::vector<core::ObjectResult> part;
    {
      MaybeGuard guard(s.mu);
      part = s.db->k_nearest(p, k, req_acc);
    }
    spatial::merge_k_nearest(
        merged, std::move(part), p, k,
        [](const core::ObjectResult& r) { return r.ld.pos; },
        [](const core::ObjectResult& r) { return r.oid; });
  }
  return merged;
}

}  // namespace locs::store
