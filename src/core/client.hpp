// Client-side components: tracked objects and query clients (§3, §6.2).
//
// A TrackedObject implements the paper's simple update protocol: it
// "continuously compares its current position -- as reported by the sensor
// system -- with the position that has been sent most recently to its agent.
// If these positions differ by more than the distance defined by the offered
// accuracy, the tracked object sends a new updateReq" (§6.2). It also follows
// agent changes announced by handover and answers post-recovery refresh
// requests.
//
// A QueryClient issues position / range / nearest-neighbor queries and event
// subscriptions against an entry server and collects responses. Results are
// exposed both poll-style (deterministic simulations: run the network, then
// take_*) and blocking (real UDP transport: *_blocking with a timeout).
#pragma once

#include <condition_variable>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/caches.hpp"
#include "core/types.hpp"
#include "net/transport.hpp"
#include "util/clock.hpp"
#include "wire/messages.hpp"

namespace locs::core {

class TrackedObject {
 public:
  enum class State { kIdle, kRegistering, kTracked, kFailed, kDeregistered };

  struct Options {
    /// Resend an unacknowledged update after this long (on next sensor feed).
    Duration update_retry = seconds(2);
    /// Recovery behavior for AgentChanged{kNoNode}: instead of treating the
    /// agent loss as deregistration, immediately RE-REGISTER through the
    /// announcing server (a restarted leaf that lost its visitorDB nacks
    /// unknown updates this way; see LocationServer::Options::
    /// nack_unknown_updates). The object still covers the old position, so
    /// the old agent doubles as the entry server. Off by default: leaving
    /// the root service area must keep meaning deregistration.
    bool reregister_on_agent_loss = false;
  };

  TrackedObject(NodeId self, ObjectId oid, net::Transport& net, Clock& clock,
                Options opts);
  TrackedObject(NodeId self, ObjectId oid, net::Transport& net, Clock& clock);
  /// Detaches from the transport (no callback can outlive the object).
  ~TrackedObject();

  /// Registers with the LS through `entry_server` (Alg 6-1).
  void start_register(NodeId entry_server, geo::Point pos, double sensor_acc,
                      AccuracyRange range);

  /// Sensor feed: remembers the position and sends an update when the
  /// §6.2 threshold (offered accuracy) is exceeded. Returns true if an
  /// update message was sent.
  bool feed_position(geo::Point pos);

  /// Requests a different accuracy range from the agent (§3.1 changeAcc).
  void request_change_acc(AccuracyRange range);

  void deregister();

  // -- update coalescing hooks (core/update_coalescer.hpp) --
  /// Routes outgoing updates through `sink` (the coalescer's enqueue)
  /// instead of sending an UpdateReq directly; the leaf then replies to the
  /// coalescer, which fans acks / agent changes back in through the two
  /// apply_* methods below. Set during setup, before traffic.
  using UpdateSink = std::function<void(NodeId agent, const Sighting& s)>;
  void set_update_sink(UpdateSink sink);

  /// Applies one acknowledged update (same state transition as UpdateAck).
  void apply_update_ack(double offered_acc);
  /// Applies an agent change (same state transition as AgentChanged; an
  /// invalid `new_agent` means the object left the LS and is deregistered).
  void apply_agent_changed(NodeId new_agent, double offered_acc);

  // Accessors lock: over UDP the receive thread mutates this state while
  // the feeding/test thread polls it (same discipline as QueryClient).
  State state() const { return locked(state_); }
  bool tracked() const { return state() == State::kTracked; }
  NodeId agent() const { return locked(agent_); }
  double offered_acc() const { return locked(offered_acc_); }
  double register_failed_acc() const { return locked(register_failed_acc_); }
  NodeId node() const { return self_; }
  ObjectId oid() const { return oid_; }
  /// True while an update has been sent but not yet acknowledged.
  bool update_pending() const { return locked(update_pending_); }
  std::uint64_t updates_sent() const { return locked(updates_sent_); }
  std::uint64_t handovers_observed() const { return locked(handovers_observed_); }
  std::uint64_t refreshes_answered() const { return locked(refreshes_answered_); }
  std::uint64_t reregistrations() const { return locked(reregistrations_); }

 private:
  void handle(const std::uint8_t* data, std::size_t len);
  void send_update(geo::Point pos);
  void apply_update_ack_locked(double offered_acc);
  void apply_agent_changed_locked(NodeId new_agent, double offered_acc);

  /// Encodes into a pooled transport buffer and sends (zero allocations in
  /// steady state; see net/buffer_pool.hpp).
  template <typename M>
  void send_msg(NodeId to, const M& msg) {
    net::send_message(net_, self_, to, msg);
  }

  template <typename T>
  T locked(const T& field) const {
    std::lock_guard<std::mutex> lock(mu_);
    return field;
  }

  NodeId self_;
  ObjectId oid_;
  net::Transport& net_;
  Clock& clock_;
  Options opts_;
  UpdateSink update_sink_;  // set before traffic; never mutated afterwards

  /// Guards every field below (receive thread vs. feeding thread).
  mutable std::mutex mu_;
  State state_ = State::kIdle;
  NodeId agent_;
  double offered_acc_ = 0.0;
  double sensor_acc_ = 0.0;
  AccuracyRange acc_range_;  // remembered for recovery re-registration
  double register_failed_acc_ = 0.0;
  wire::Envelope rx_scratch_;  // receive-side decode scratch (handle())
  geo::Point last_sent_pos_;
  geo::Point last_fed_pos_;
  bool update_pending_ = false;  // sent but unacknowledged
  TimePoint last_send_time_ = 0;
  std::uint64_t updates_sent_ = 0;
  std::uint64_t handovers_observed_ = 0;
  std::uint64_t refreshes_answered_ = 0;
  std::uint64_t reregistrations_ = 0;
  std::uint64_t req_counter_ = 0;
};

class QueryClient {
 public:
  struct PosResult {
    bool found = false;
    LocationDescriptor ld;
  };
  struct RangeResult {
    bool complete = true;
    std::vector<ObjectResult> objects;
  };
  struct NNResult {
    bool found = false;
    ObjectResult nearest;
    std::vector<ObjectResult> near_set;
  };

  QueryClient(NodeId self, net::Transport& net, Clock& clock);
  /// Detaches from the transport (no callback can outlive the client).
  ~QueryClient();

  void set_entry(NodeId entry_server) { entry_ = entry_server; }
  NodeId entry() const { return entry_; }
  NodeId node() const { return self_; }

  // -- asynchronous issue + poll (simulation style) --
  std::uint64_t send_pos_query(ObjectId oid);
  std::uint64_t send_range_query(const geo::Polygon& area, double req_acc,
                                 double req_overlap);
  std::uint64_t send_nn_query(geo::Point p, double req_acc, double near_qual);

  std::optional<PosResult> take_pos(std::uint64_t req_id);
  std::optional<RangeResult> take_range(std::uint64_t req_id);
  std::optional<NNResult> take_nn(std::uint64_t req_id);

  // -- blocking variants (real transports; not usable with SimNetwork) --
  std::optional<PosResult> pos_query_blocking(ObjectId oid, Duration timeout);
  std::optional<RangeResult> range_query_blocking(const geo::Polygon& area,
                                                  double req_acc, double req_overlap,
                                                  Duration timeout);
  std::optional<NNResult> nn_query_blocking(geo::Point p, double req_acc,
                                            double near_qual, Duration timeout);

  // -- events (extension) --
  std::uint64_t subscribe_area_count(const geo::Polygon& area,
                                     std::uint32_t threshold);
  std::uint64_t subscribe_proximity(ObjectId a, ObjectId b, double dist);
  void unsubscribe(std::uint64_t sub_id);
  std::vector<wire::EventNotify> take_events();

  // -- client-side position caching (§6.5: "similar caching mechanisms can
  //    be used on the clients of the LS") --
  /// Serves repeat position queries from a local cache while the aged
  /// accuracy (acc + max_speed * elapsed) stays within max_acceptable_acc.
  void enable_position_cache(double max_speed, double max_acceptable_acc);
  std::uint64_t position_cache_hits() const { return cache_hits_; }

 private:
  void handle(const std::uint8_t* data, std::size_t len);
  std::uint64_t next_req_id();

  /// Encodes into a pooled transport buffer and sends (zero allocations in
  /// steady state; see net/buffer_pool.hpp).
  template <typename M>
  void send_msg(NodeId to, const M& msg) {
    net::send_message(net_, self_, to, msg);
  }

  NodeId self_;
  net::Transport& net_;
  Clock& clock_;
  NodeId entry_;

  wire::Envelope rx_scratch_;  // receive-side decode scratch (handle())
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t req_counter_ = 0;
  std::unordered_map<std::uint64_t, PosResult> pos_results_;
  std::unordered_map<std::uint64_t, RangeResult> range_results_;
  std::unordered_map<std::uint64_t, NNResult> nn_results_;
  std::vector<wire::EventNotify> events_;
  // Outstanding position queries, for cache learning on response.
  std::unordered_map<std::uint64_t, ObjectId> pos_targets_;
  bool cache_enabled_ = false;
  double cache_max_speed_ = 0.0;
  double cache_max_acc_ = 0.0;
  PositionCache position_cache_;
  std::uint64_t cache_hits_ = 0;
};

}  // namespace locs::core
