#include "core/client.hpp"

#include <chrono>

namespace locs::core {

namespace wm = locs::wire;

// --------------------------------------------------------------------------
// TrackedObject

TrackedObject::TrackedObject(NodeId self, ObjectId oid, net::Transport& net,
                             Clock& clock)
    : TrackedObject(self, oid, net, clock, Options{}) {}

TrackedObject::TrackedObject(NodeId self, ObjectId oid, net::Transport& net,
                             Clock& clock, Options opts)
    : self_(self), oid_(oid), net_(net), clock_(clock), opts_(opts) {
  net_.attach(self_, [this](const std::uint8_t* data, std::size_t len) {
    handle(data, len);
  });
}

TrackedObject::~TrackedObject() { net_.detach(self_); }

void TrackedObject::start_register(NodeId entry_server, geo::Point pos,
                                   double sensor_acc, AccuracyRange range) {
  std::lock_guard<std::mutex> lock(mu_);
  sensor_acc_ = sensor_acc;
  acc_range_ = range;
  last_fed_pos_ = pos;
  state_ = State::kRegistering;
  wm::RegisterReq req;
  req.s = Sighting{oid_, clock_.now(), pos, sensor_acc};
  req.acc_range = range;
  req.reg_inst = self_;
  req.req_id = ++req_counter_;
  last_sent_pos_ = pos;
  send_msg(entry_server, req);
}

bool TrackedObject::feed_position(geo::Point pos) {
  std::lock_guard<std::mutex> lock(mu_);
  last_fed_pos_ = pos;
  if (state_ != State::kTracked) return false;
  const bool threshold_crossed =
      geo::distance(pos, last_sent_pos_) > offered_acc_;
  const bool retry = update_pending_ &&
                     clock_.now() - last_send_time_ >= opts_.update_retry;
  if (!threshold_crossed && !retry) return false;
  send_update(pos);
  return true;
}

void TrackedObject::send_update(geo::Point pos) {
  const Sighting s{oid_, clock_.now(), pos, sensor_acc_};
  last_sent_pos_ = pos;
  last_send_time_ = clock_.now();
  update_pending_ = true;
  ++updates_sent_;
  if (update_sink_) {
    update_sink_(agent_, s);  // coalescing stage owns the actual send
  } else {
    send_msg(agent_, wm::UpdateReq{s});
  }
}

void TrackedObject::set_update_sink(UpdateSink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  update_sink_ = std::move(sink);
}

void TrackedObject::apply_update_ack(double offered_acc) {
  std::lock_guard<std::mutex> lock(mu_);
  apply_update_ack_locked(offered_acc);
}

void TrackedObject::apply_update_ack_locked(double offered_acc) {
  update_pending_ = false;
  offered_acc_ = offered_acc;
}

void TrackedObject::apply_agent_changed(NodeId new_agent, double offered_acc) {
  std::lock_guard<std::mutex> lock(mu_);
  apply_agent_changed_locked(new_agent, offered_acc);
}

void TrackedObject::apply_agent_changed_locked(NodeId new_agent,
                                               double offered_acc) {
  update_pending_ = false;
  if (new_agent.valid()) {
    agent_ = new_agent;
    offered_acc_ = offered_acc;
    ++handovers_observed_;
    return;
  }
  if (opts_.reregister_on_agent_loss && state_ == State::kTracked &&
      agent_.valid()) {
    // A restarted leaf that lost its visitorDB nacked our update: rebuild
    // the registration from scratch through the (recovered) old agent --
    // the object has not moved out of its area, so it doubles as the entry
    // server (see Options::reregister_on_agent_loss).
    ++reregistrations_;
    state_ = State::kRegistering;
    wm::RegisterReq req;
    req.s = Sighting{oid_, clock_.now(), last_fed_pos_, sensor_acc_};
    req.acc_range = acc_range_;
    req.reg_inst = self_;
    req.req_id = ++req_counter_;
    last_sent_pos_ = last_fed_pos_;
    send_msg(agent_, req);
    return;
  }
  // Moved out of the root service area: automatically deregistered.
  state_ = State::kDeregistered;
  agent_ = kNoNode;
}

void TrackedObject::request_change_acc(AccuracyRange range) {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ != State::kTracked) return;
  send_msg(agent_, wm::ChangeAccReq{oid_, range, ++req_counter_});
}

void TrackedObject::deregister() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ != State::kTracked) return;
  send_msg(agent_, wm::DeregisterReq{oid_});
  state_ = State::kDeregistered;
}

void TrackedObject::handle(const std::uint8_t* data, std::size_t len) {
  // rx_scratch_ needs no lock (one receive context per node), but the state
  // the visitor mutates below is shared with the feeding thread.
  if (!wm::decode_envelope_into(rx_scratch_, data, len).is_ok()) return;
  std::lock_guard<std::mutex> lock(mu_);
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, wm::RegisterRes>) {
          agent_ = m.agent;
          offered_acc_ = m.offered_acc;
          state_ = State::kTracked;
        } else if constexpr (std::is_same_v<T, wm::RegisterFailed>) {
          register_failed_acc_ = m.best_acc;
          state_ = State::kFailed;
        } else if constexpr (std::is_same_v<T, wm::UpdateAck>) {
          if (m.oid == oid_) apply_update_ack_locked(m.offered_acc);
        } else if constexpr (std::is_same_v<T, wm::AgentChanged>) {
          if (m.oid != oid_) return;
          apply_agent_changed_locked(m.new_agent, m.offered_acc);
        } else if constexpr (std::is_same_v<T, wm::NotifyAvailAcc>) {
          if (m.oid == oid_) offered_acc_ = m.offered_acc;
        } else if constexpr (std::is_same_v<T, wm::ChangeAccRes>) {
          if (m.ok) offered_acc_ = m.offered_acc;
        } else if constexpr (std::is_same_v<T, wm::RefreshReq>) {
          // Post-recovery: immediately restore the agent's sighting (§5).
          if (m.oid == oid_ && state_ == State::kTracked) {
            ++refreshes_answered_;
            send_update(last_fed_pos_);
          }
        } else if constexpr (std::is_same_v<T, wm::BatchedRefreshReq>) {
          // Batched recovery sweep: answer if our oid is listed (clients
          // owning one object get single-entry batches; gateways fan out).
          if (state_ != State::kTracked) return;
          wm::BatchedRefreshReq::Cursor cur = m.oids();
          ObjectId oid;
          while (cur.next(oid)) {
            if (oid != oid_) continue;
            ++refreshes_answered_;
            send_update(last_fed_pos_);
            break;
          }
        }
      },
      rx_scratch_.msg);
}

// --------------------------------------------------------------------------
// QueryClient

QueryClient::QueryClient(NodeId self, net::Transport& net, Clock& clock)
    : self_(self), net_(net), clock_(clock) {
  net_.attach(self_, [this](const std::uint8_t* data, std::size_t len) {
    handle(data, len);
  });
}

QueryClient::~QueryClient() { net_.detach(self_); }

std::uint64_t QueryClient::next_req_id() {
  std::lock_guard<std::mutex> lock(mu_);
  return ++req_counter_;
}

void QueryClient::enable_position_cache(double max_speed,
                                        double max_acceptable_acc) {
  std::lock_guard<std::mutex> lock(mu_);
  cache_enabled_ = true;
  cache_max_speed_ = max_speed;
  cache_max_acc_ = max_acceptable_acc;
}

std::uint64_t QueryClient::send_pos_query(ObjectId oid) {
  const std::uint64_t id = next_req_id();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (cache_enabled_) {
      const auto cached = position_cache_.find(oid, clock_.now(), cache_max_speed_,
                                               cache_max_acc_);
      if (cached) {
        // Served locally: the result is immediately available to take_pos.
        ++cache_hits_;
        pos_results_[id] = PosResult{true, *cached};
        cv_.notify_all();
        return id;
      }
    }
    pos_targets_[id] = oid;
  }
  send_msg(entry_, wm::PosQueryReq{oid, id});
  return id;
}

std::uint64_t QueryClient::send_range_query(const geo::Polygon& area, double req_acc,
                                            double req_overlap) {
  const std::uint64_t id = next_req_id();
  send_msg(entry_, wm::RangeQueryReq{area, req_acc, req_overlap, id});
  return id;
}

std::uint64_t QueryClient::send_nn_query(geo::Point p, double req_acc,
                                         double near_qual) {
  const std::uint64_t id = next_req_id();
  send_msg(entry_, wm::NNQueryReq{p, req_acc, near_qual, id});
  return id;
}

std::optional<QueryClient::PosResult> QueryClient::take_pos(std::uint64_t req_id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = pos_results_.find(req_id);
  if (it == pos_results_.end()) return std::nullopt;
  PosResult res = it->second;
  pos_results_.erase(it);
  return res;
}

std::optional<QueryClient::RangeResult> QueryClient::take_range(std::uint64_t req_id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = range_results_.find(req_id);
  if (it == range_results_.end()) return std::nullopt;
  RangeResult res = std::move(it->second);
  range_results_.erase(it);
  return res;
}

std::optional<QueryClient::NNResult> QueryClient::take_nn(std::uint64_t req_id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = nn_results_.find(req_id);
  if (it == nn_results_.end()) return std::nullopt;
  NNResult res = std::move(it->second);
  nn_results_.erase(it);
  return res;
}

namespace {

/// Blocks on the condition variable until `take` yields a value or the
/// timeout elapses (wall clock; UDP transport only).
template <typename TakeFn>
auto wait_blocking(std::condition_variable& cv, std::mutex& mu, Duration timeout,
                   TakeFn take) -> decltype(take()) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(timeout);
  std::unique_lock<std::mutex> lock(mu);
  for (;;) {
    if (auto res = take()) return res;
    if (cv.wait_until(lock, deadline) == std::cv_status::timeout) {
      return take();
    }
  }
}

}  // namespace

std::optional<QueryClient::PosResult> QueryClient::pos_query_blocking(
    ObjectId oid, Duration timeout) {
  const std::uint64_t id = send_pos_query(oid);
  return wait_blocking(cv_, mu_, timeout, [&]() -> std::optional<PosResult> {
    const auto it = pos_results_.find(id);
    if (it == pos_results_.end()) return std::nullopt;
    PosResult res = it->second;
    pos_results_.erase(it);
    return res;
  });
}

std::optional<QueryClient::RangeResult> QueryClient::range_query_blocking(
    const geo::Polygon& area, double req_acc, double req_overlap, Duration timeout) {
  const std::uint64_t id = send_range_query(area, req_acc, req_overlap);
  return wait_blocking(cv_, mu_, timeout, [&]() -> std::optional<RangeResult> {
    const auto it = range_results_.find(id);
    if (it == range_results_.end()) return std::nullopt;
    RangeResult res = std::move(it->second);
    range_results_.erase(it);
    return res;
  });
}

std::optional<QueryClient::NNResult> QueryClient::nn_query_blocking(
    geo::Point p, double req_acc, double near_qual, Duration timeout) {
  const std::uint64_t id = send_nn_query(p, req_acc, near_qual);
  return wait_blocking(cv_, mu_, timeout, [&]() -> std::optional<NNResult> {
    const auto it = nn_results_.find(id);
    if (it == nn_results_.end()) return std::nullopt;
    NNResult res = std::move(it->second);
    nn_results_.erase(it);
    return res;
  });
}

std::uint64_t QueryClient::subscribe_area_count(const geo::Polygon& area,
                                                std::uint32_t threshold) {
  const std::uint64_t sub_id = (static_cast<std::uint64_t>(self_.value) << 32) |
                               next_req_id();
  wm::EventSubscribe sub;
  sub.sub_id = sub_id;
  sub.kind = wm::PredicateKind::kAreaCount;
  sub.area = area;
  sub.threshold = threshold;
  sub.subscriber = self_;
  send_msg(entry_, sub);
  return sub_id;
}

std::uint64_t QueryClient::subscribe_proximity(ObjectId a, ObjectId b, double dist) {
  const std::uint64_t sub_id = (static_cast<std::uint64_t>(self_.value) << 32) |
                               next_req_id();
  wm::EventSubscribe sub;
  sub.sub_id = sub_id;
  sub.kind = wm::PredicateKind::kProximity;
  sub.obj_a = a;
  sub.obj_b = b;
  sub.dist = dist;
  sub.subscriber = self_;
  send_msg(entry_, sub);
  return sub_id;
}

void QueryClient::unsubscribe(std::uint64_t sub_id) {
  send_msg(entry_, wm::EventUnsubscribe{sub_id});
}

std::vector<wire::EventNotify> QueryClient::take_events() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<wm::EventNotify> out;
  out.swap(events_);
  return out;
}

void QueryClient::handle(const std::uint8_t* data, std::size_t len) {
  // Only the node's single receive thread calls handle(), so the scratch
  // envelope needs no locking; the result maps below do.
  if (!wm::decode_envelope_into(rx_scratch_, data, len).is_ok()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::visit(
        [&](auto& m) {
          using T = std::decay_t<decltype(m)>;
          if constexpr (std::is_same_v<T, wm::PosQueryRes>) {
            pos_results_[m.req_id] = PosResult{m.found, m.ld};
            const auto target = pos_targets_.find(m.req_id);
            if (target != pos_targets_.end()) {
              if (cache_enabled_ && m.found) {
                position_cache_.learn(target->second, m.ld, clock_.now());
              }
              pos_targets_.erase(target);
            }
          } else if constexpr (std::is_same_v<T, wm::RangeQueryRes>) {
            // Client-facing boundary: unpack the packed framing into the
            // owned vectors the application API hands out.
            range_results_[m.req_id] = RangeResult{m.complete, m.results.to_vector()};
          } else if constexpr (std::is_same_v<T, wm::NNQueryRes>) {
            nn_results_[m.req_id] =
                NNResult{m.found, m.nearest, m.near_set.to_vector()};
          } else if constexpr (std::is_same_v<T, wm::EventNotify>) {
            events_.push_back(m);
          }
        },
        rx_scratch_.msg);
  }
  cv_.notify_all();
}

}  // namespace locs::core
