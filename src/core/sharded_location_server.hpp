// ShardedLocationServer -- one leaf NodeId, N single-threaded shard reactors.
//
// The paper's leaf servers absorb the overwhelming share of update and query
// traffic (§7.2), and a LocationServer is a single-threaded reactor, so one
// hot leaf is capped at one core. This class shards a leaf's OBJECT SPACE
// across N LocationServer instances behind the same NodeId and service area:
//
//   * routing -- every incoming datagram is peeked (wire::peek_object_key)
//     without a full decode; object-keyed messages go to the shard owning
//     hash(ObjectId) % N, area-keyed messages (range / NN / events) go to
//     shard 0, the coordinator shard (see the routing invariant in
//     core/location_server.hpp);
//   * state -- each shard owns a partition of the visitor records, a
//     SightingDb slice with its OWN spatial index, and a PRIVATE send
//     BufferPool (net/buffer_pool.hpp) so concurrent shards never contend on
//     the transport's shared free list;
//   * query fan-out -- the coordinator shard's range/NN/event paths read a
//     store::SightingsView spanning every slice (one slice lock at a time)
//     and merge sub-results in the existing query scratch state, so the leaf
//     emits exactly one sub-result per probe, like an unsharded leaf;
//   * events -- leaf predicates live on the coordinator shard; sibling
//     shards fan their sighting presence changes in through a hook (skipped
//     lock-free while no predicate is installed).
//
// Execution modes:
//   * inline (threaded = false): handle() runs the owning shard on the
//     calling thread. Used over the deterministic SimNetwork -- delivery
//     order is exactly the unsharded order, and with shards = 1 the whole
//     message trace is BIT-IDENTICAL to a plain LocationServer.
//   * threaded (threaded = true): handle() -- invoked from the node's single
//     transport receive context -- copies the datagram into the owning
//     shard's SPSC inbox (net/spsc_inbox.hpp); one reactor thread per shard
//     drains it. Used over UdpNetwork so a hot leaf scales across cores.
//
// The hierarchy protocol above the leaf is unchanged: parents, siblings and
// clients see one NodeId sending exactly the messages an unsharded leaf
// would send. The §6.5 caches are SHARED across the shard reactors (one
// LeafAreaCache / ObjectAgentCache / PositionCache per leaf, mutex-guarded
// only in threaded mode), so cache hit patterns -- and with them message
// counts -- also match an unsharded leaf with caches enabled.
//
// Fault tolerance: a restarted sharded leaf announces recovery once (shard 0
// sends the RecoveryHello); the parent's BatchedRefreshReq sweep is split
// per owning shard exactly like batched updates (wire::BatchedRefreshView),
// so each shard refreshes only the visitors of its own slice.
#pragma once

#include <array>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/location_server.hpp"
#include "net/spsc_inbox.hpp"
#include "store/sighting_view.hpp"

namespace locs::core {

class ShardedLocationServer {
 public:
  /// ObjectId routing granularity: ids map to this many coarse buckets, and
  /// buckets map to shards through a runtime table (initially bucket %
  /// shards). Whenever the shard count divides the bucket count -- every
  /// power of two up to 256 -- the default table routes IDENTICALLY to
  /// hash(ObjectId) % shards, so enabling the bucket layer changes nothing
  /// until the rebalancer actually moves a bucket.
  static constexpr std::uint32_t kRebalanceBuckets = 256;

  /// Skew-aware routing + incremental bucket re-assignment between shards.
  struct Balance {
    /// Run object ids through the splitmix64 finalizer before bucketing.
    /// Disable to reproduce raw `oid % N` routing (skew control runs and
    /// the distribution pin test) -- sequential/strided id allocations then
    /// alias onto few shards.
    bool mix_keys = true;
    /// Re-assign buckets between shards when occupancy skews. Driven from
    /// tick(): each sweep moves whole buckets -- soft state migrates through
    /// wire::BucketMigrate datagrams applied under both shard locks.
    bool rebalance = false;
    /// Rebalance only while max shard occupancy exceeds trigger_ratio x
    /// mean occupancy ...
    double trigger_ratio = 1.25;
    /// ... and the donor holds at least this many more sightings than the
    /// recipient (hysteresis: near-empty leaves never shuffle).
    std::size_t min_imbalance = 64;
    /// Upper bound on bucket moves per tick sweep (bounds tick latency).
    std::uint32_t max_buckets_per_sweep = 8;
  };

  struct Options {
    /// Number of shard reactors (1 behaves exactly like a LocationServer).
    std::uint32_t shards = 1;
    /// Spawn one reactor thread per shard and deliver through SPSC inboxes.
    /// Leave false over SimNetwork (inline execution keeps delivery
    /// deterministic); set true over UdpNetwork.
    bool threaded = false;
    /// Per-shard inbox capacity (threaded mode); overflow drops datagrams
    /// after a brief retry (UDP semantics -- senders own retries).
    std::size_t inbox_capacity = 4096;
    /// Adaptive busy-poll window (threaded mode; 0 = off). An idle reactor
    /// that has exhausted its yield rounds spins on the SPSC inbox for up
    /// to this many microseconds -- flushing its transmit channel along the
    /// way, which over an io_uring backend reaps the CQ without a syscall
    /// -- before falling back to the sleep/wake path. Work arriving inside
    /// the window skips a full sleep+wakeup round trip (and the producer's
    /// notify syscall); see busy_poll_stats().
    std::uint32_t busy_poll_us = 0;
    /// Options forwarded to every shard's LocationServer.
    LocationServer::Options server;
    /// Skew-aware routing / rebalancing knobs (see Balance).
    Balance balance;
  };

  /// Per-shard persistent visitorDB factory (default: in-memory).
  using ShardVisitorDbFactory = std::function<store::VisitorDb(std::uint32_t)>;

  ShardedLocationServer(NodeId self, ConfigRecord cfg, net::Transport& net,
                        Clock& clock, Options opts,
                        ShardVisitorDbFactory visitor_db_factory = {},
                        spatial::IndexFactory index_factory = nullptr);

  /// Detaches from the transport, then joins the shard reactors (each drains
  /// its inbox before exiting).
  ~ShardedLocationServer();

  ShardedLocationServer(const ShardedLocationServer&) = delete;
  ShardedLocationServer& operator=(const ShardedLocationServer&) = delete;

  /// Transport entry point. Must be invoked from a single context per node
  /// (SimNetwork delivery loop / the node's UdpNetwork receive thread): the
  /// inboxes are single-producer. Inline mode forwards the Datagram (and
  /// with it the pin escape hatch) to the owning shard; threaded mode
  /// copies through the SPSC inbox, where a shard-side pin degrades to a
  /// pooled copy (see net/transport.hpp).
  void handle(const net::Datagram& dg);

  /// Borrow-only convenience overload (tests, synthesized datagrams).
  void handle(const std::uint8_t* data, std::size_t len) {
    handle(net::Datagram(data, len));
  }

  /// Opens one dedicated transmit channel per shard (Transport::open_sender)
  /// and routes each shard reactor's sends through it: over UdpNetwork every
  /// shard then owns its own SO_REUSEPORT socket + transmit ring, so N
  /// shards do N independent sendmmsg-batched sends with zero shared
  /// send-side state. No-op in inline mode (one delivery context -- nothing
  /// to decouple) and on transports without per-sender channels (SimNetwork
  /// returns nullptr). Call AFTER the leaf's NodeId is attached -- the
  /// channels can then join the node's SO_REUSEPORT group (Deployment does
  /// this) -- and before traffic.
  void open_tx_senders();

  /// Sweeps soft-state expiry and pending-operation timeouts on every shard
  /// (serialized against the shard reactors in threaded mode).
  void tick(TimePoint now);

  /// Recovery hook: see LocationServer::request_refresh_all.
  void request_refresh_all();

  /// Crash-restart announcement: shard 0 sends the single RecoveryHello for
  /// this leaf NodeId (the parent's reply sweep is split per owning shard).
  /// A root leaf sweeps every shard's persisted visitors locally instead.
  void announce_recovery();

  /// Hot-standby wiring (Deployment::Config::leaf_standby): every shard tees
  /// its accepted sightings to `standby`; the replica side splits the tee per
  /// owning shard (handle()), so each standby shard mirrors exactly its own
  /// slice and promotion happens per-shard.
  void set_standby(NodeId standby);
  /// Replica role: every shard mirrors `primary` (ReplicaTee entries route to
  /// the shard owning each ObjectId; StandbyPromote/Demote broadcast to all).
  void set_standby_role(NodeId primary);

  /// The shard owning an object id under the DEFAULT bucket table; the same
  /// for every node, so a handover re-routes the object to the owning shard
  /// of the new agent. Live routing goes through shard_for(), which also
  /// honors rebalanced buckets.
  static std::uint32_t shard_of(ObjectId oid, std::uint32_t shard_count);

  /// The coarse bucket an object id routes through (honors balance.mix_keys).
  std::uint32_t bucket_of(ObjectId oid) const;

  /// The shard currently owning an object id (bucket table lookup).
  std::uint32_t shard_for(ObjectId oid) const {
    return bucket_to_shard_[bucket_of(oid)].load(std::memory_order_relaxed);
  }

  /// Point-in-time per-shard load snapshot (queue depth + occupancy): the
  /// rebalancer's decision inputs, also exported over the wire via
  /// encode_load_stats. Serialized against the shard reactors in threaded
  /// mode.
  struct ShardLoad {
    std::uint32_t shard = 0;
    std::size_t sightings = 0;     // slice SightingDb records
    std::size_t visitors = 0;      // slice visitorDB records
    std::uint64_t msgs_handled = 0;  // reactor lifetime message count
    std::size_t inbox_depth = 0;   // SPSC inbox backlog (threaded mode)
  };
  std::vector<ShardLoad> shard_loads() const;

  /// Encodes the current shard loads as one wire::ShardLoadStats envelope
  /// from this leaf's NodeId (monitoring export; sequence-stamped).
  void encode_load_stats(wire::Buffer& out);

  /// Buckets re-assigned / visitors migrated by the rebalancer so far.
  std::uint64_t buckets_migrated() const {
    return buckets_migrated_.load(std::memory_order_relaxed);
  }
  std::uint64_t objects_migrated() const {
    return objects_migrated_.load(std::memory_order_relaxed);
  }

  NodeId id() const { return self_; }
  std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(shards_.size());
  }

  /// Aggregated statistics across shards.
  LocationServer::Stats stats() const;

  /// Direct access to one shard reactor (tests / introspection). Do not
  /// mutate through this while shard threads run.
  LocationServer& shard(std::uint32_t index) { return *shards_[index]->server; }
  const LocationServer& shard(std::uint32_t index) const {
    return *shards_[index]->server;
  }

  /// Copies the sighting record for `oid` out of its owning slice (safe
  /// against concurrent shard reactors). Returns false if unknown.
  bool find_sighting(ObjectId oid, store::SightingDb::Record& out) const {
    return merged_view_.lookup(oid, out);
  }

  /// Datagrams dropped because a shard inbox stayed full (threaded mode).
  std::uint64_t inbox_dropped() const {
    return inbox_dropped_.load(std::memory_order_relaxed);
  }

  /// Idle-path counters, summed across shard reactors (threaded mode;
  /// all-zero inline). `sleeps` counts entries into the sleep/wake path and
  /// ticks with busy-poll off too, so the same counter shows the before /
  /// after of enabling Options::busy_poll_us.
  struct BusyPollStats {
    std::uint64_t spins = 0;    // busy-poll window iterations
    std::uint64_t sleeps = 0;   // falls into the wake_cv sleep path
    std::uint64_t wakeups_avoided = 0;  // work caught inside a spin window
  };
  BusyPollStats busy_poll_stats() const {
    BusyPollStats total;
    for (const auto& sh : shards_) {
      total.spins += sh->busy_spins.load(std::memory_order_relaxed);
      total.sleeps += sh->busy_sleeps.load(std::memory_order_relaxed);
      total.wakeups_avoided +=
          sh->wakeups_avoided.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct Shard {
    explicit Shard(std::size_t inbox_capacity) : inbox(inbox_capacity) {}

    std::uint32_t index = 0;
    std::shared_ptr<net::BufferPool> pool;  // private send pool (adopted by
                                            // the transport for lifetime)
    std::shared_ptr<net::Sender> tx;  // dedicated transmit channel (threaded
                                      // mode; see open_tx_senders)
    // Reactor-side view of `tx`: open_tx_senders() publishes here AFTER the
    // shard threads have started, so the loop reads an atomic instead of
    // racing the shared_ptr.
    std::atomic<net::Sender*> tx_raw{nullptr};
    std::unique_ptr<LocationServer> server;
    mutable std::mutex slice_mu;    // SightingDb slice vs. cross-shard reads
    mutable std::mutex reactor_mu;  // serializes handle()/tick() (threaded)
    net::SpscInbox inbox;
    std::thread thread;
    // Sleep/wake protocol: the consumer advertises `sleeping` before waiting
    // so producers only pay the wakeup syscall when someone actually sleeps.
    std::mutex wake_mu;
    std::condition_variable wake_cv;
    std::atomic<bool> sleeping{false};
    // Idle-path counters (busy_poll_stats()); relaxed -- monitoring only.
    std::atomic<std::uint64_t> busy_spins{0};
    std::atomic<std::uint64_t> busy_sleeps{0};
    std::atomic<std::uint64_t> wakeups_avoided{0};
  };

  struct SightingDelta {
    ObjectId oid;
    bool present;
    geo::Point pos;
  };

  std::uint32_t route(const std::uint8_t* data, std::size_t len) const;
  /// Delivers one datagram to a shard (inline call or SPSC inbox push).
  void deliver(Shard& sh, const net::Datagram& dg);
  /// Splits a BatchedUpdateReq per owning shard (wire::BatchedUpdateView
  /// delimits each packed sighting without a full envelope decode). A batch whose
  /// sightings all hash to one shard is forwarded unchanged; a straddling
  /// batch is re-framed into per-shard sub-batches (ascending shard order,
  /// keeping inline SimNetwork execution deterministic). Returns false if
  /// the datagram is not a well-formed batch (caller falls back to shard 0).
  bool split_batched_update(const std::uint8_t* data, std::size_t len);
  /// Refresh analogue of split_batched_update: splits a BatchedRefreshReq
  /// recovery sweep per owning shard (wire::BatchedRefreshView yields the
  /// packed oids without a full decode). Returns false if the datagram is
  /// not a well-formed refresh batch (caller falls back to shard 0).
  bool split_batched_refresh(const std::uint8_t* data, std::size_t len);
  /// Replication analogue: splits a ReplicaTee mirror stream per owning shard
  /// (wire::ReplicaTeeView delimits each packed entry; the entry's leading
  /// ObjectId picks the shard). Returns false if the datagram is not a
  /// well-formed tee (caller falls back to shard 0).
  bool split_replica_tee(const std::uint8_t* data, std::size_t len);
  void shard_loop(Shard& sh);
  void wake(Shard& sh);
  /// Applies queued sibling-shard sighting deltas on the coordinator shard.
  bool drain_sighting_deltas();
  /// One tick-driven rebalance sweep: repeatedly moves the fattest bucket
  /// from the most- to the least-loaded shard until occupancy is inside the
  /// trigger band or max_buckets_per_sweep is spent.
  void rebalance();
  /// Moves bucket `b` from shard `donor` to `recipient`: extracts the soft
  /// state under BOTH reactor locks (ordered by index), flips the bucket
  /// table, and applies the BucketMigrate on the recipient directly.
  void move_bucket(std::uint32_t b, std::uint32_t donor, std::uint32_t recipient);

  NodeId self_;
  net::Transport& net_;
  Options opts_;
  std::vector<std::unique_ptr<Shard>> shards_;
  store::SightingsView merged_view_;  // coordinator's cross-slice query view

  // Shared §6.5 caches (one set per leaf; every shard points here via
  // LocationServer::share_caches). cache_mu_ engages in threaded mode only.
  LeafAreaCache shared_leaf_cache_;
  ObjectAgentCache shared_agent_cache_;
  PositionCache shared_position_cache_;
  std::mutex cache_mu_;

  // Sibling-shard -> coordinator event fan-in (threaded mode; cold unless an
  // event predicate is installed).
  std::mutex delta_mu_;
  std::vector<SightingDelta> deltas_;
  std::vector<SightingDelta> delta_scratch_;  // coordinator-thread drain swap

  // Batch-split scratch (handle() runs in the node's single receive context,
  // so these are never touched concurrently): per-shard packed regions /
  // counts, and the sub-batch datagram under construction.
  std::vector<wire::Buffer> split_packed_;
  std::vector<std::uint64_t> split_counts_;
  wire::Buffer split_datagram_;

  // Bucket -> shard routing table. route() reads it from the node's receive
  // context while the tick thread's rebalancer flips entries, hence atomics;
  // a datagram routed over a just-flipped entry lands in the new owner's
  // inbox AFTER the migration applied (the mover holds the recipient's
  // reactor lock), and a stale in-flight datagram degrades to an
  // unknown-object drop/nack -- UDP semantics, like any lost update.
  std::array<std::atomic<std::uint32_t>, kRebalanceBuckets> bucket_to_shard_;

  // Rebalancer scratch + counters (tick-thread only; counters are read by
  // stats/monitoring threads).
  wire::BucketMigrate migrate_scratch_;
  wire::Buffer migrate_datagram_;
  std::uint64_t load_seq_ = 0;  // ShardLoadStats sequence stamp
  std::atomic<std::uint64_t> buckets_migrated_{0};
  std::atomic<std::uint64_t> objects_migrated_{0};

  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> inbox_dropped_{0};
};

}  // namespace locs::core
