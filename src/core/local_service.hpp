// LocalLocationService -- the synchronous single-process facade.
//
// Wraps a complete server hierarchy, a deterministic simulated network and
// the client machinery behind a blocking API: each call drives the network
// until its response arrives. This is the entry point for the quickstart
// example and for applications that want the paper's full semantics
// (accuracy negotiation, handover, range / NN queries, events, soft state)
// without operating a distributed deployment.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>

#include "core/client.hpp"
#include "core/deployment.hpp"
#include "core/hierarchy_builder.hpp"
#include "core/update_coalescer.hpp"
#include "net/sim_network.hpp"

namespace locs::core {

class LocalLocationService {
 public:
  struct Config {
    /// Root service area (metres). Default: the paper's 10 km x 10 km
    /// data-storage experiment area.
    geo::Rect area = geo::Rect{{0.0, 0.0}, {10000.0, 10000.0}};
    int fanout_x = 2;
    int fanout_y = 2;
    int levels = 2;  // 0 = single (centralized) server
    LocationServer::Options server;
    net::SimNetwork::Options network;
    /// Route position updates through an UpdateCoalescer: updates are packed
    /// into BatchedUpdateReq datagrams per agent leaf and flushed by the
    /// `coalescing` policy (size / byte budget / deadline). Queries observe
    /// buffered updates only after a flush -- call flush_updates() or
    /// advance_time() past the deadline for read-your-writes.
    bool coalesce_updates = false;
    UpdateCoalescer::Options coalescing;
    /// Options for every TrackedObject the facade creates (e.g. the
    /// reregister_on_agent_loss recovery behavior).
    TrackedObject::Options object;
  };

  LocalLocationService() : LocalLocationService(Config()) {}
  explicit LocalLocationService(Config cfg);

  /// register(s, desAcc, minAcc) -> offeredAcc (§3.1). Fails if the service
  /// cannot provide an accuracy within [desired, minimum] or the position is
  /// outside the service area.
  Result<double> register_object(ObjectId oid, geo::Point pos, double sensor_acc,
                                 AccuracyRange range);

  /// Sensor feed for a tracked object; sends an update / triggers handover
  /// when the §6.2 threshold is exceeded. Returns true if an update message
  /// went out.
  bool feed_position(ObjectId oid, geo::Point pos);

  /// changeAcc(o, desAcc, minAcc) -> offeredAcc (§3.1).
  Result<double> change_accuracy(ObjectId oid, AccuracyRange range);

  void deregister(ObjectId oid);

  /// posQuery(o) -> ld (§3.2).
  std::optional<LocationDescriptor> position(ObjectId oid);

  /// rangeQuery(a, reqAcc, reqOverlap) -> objSet (§3.2).
  std::vector<ObjectResult> range_query(const geo::Polygon& area, double req_acc,
                                        double req_overlap);

  /// neighborQuery(p, reqAcc, nearQual) -> (nearestObj, nearObjSet) (§3.2).
  QueryClient::NNResult neighbor_query(geo::Point p, double req_acc,
                                       double near_qual);

  // -- event mechanism (§1 / §8) --
  std::uint64_t subscribe_area_count(const geo::Polygon& area,
                                     std::uint32_t threshold);
  std::uint64_t subscribe_proximity(ObjectId a, ObjectId b, double dist);
  void unsubscribe(std::uint64_t sub_id);
  std::vector<wire::EventNotify> poll_events();

  /// Advances virtual time (drives soft-state expiry, pending sweeps, and
  /// coalescer deadline flushes).
  void advance_time(Duration d);

  /// Forces out every buffered (coalesced) update and delivers it. No-op
  /// when coalescing is disabled.
  void flush_updates();

  /// The coalescing stage, if enabled (stats / tests).
  const UpdateCoalescer* coalescer() const { return coalescer_.get(); }

  TimePoint now() const { return clock().now(); }
  std::size_t tracked_count() const { return objects_.size(); }
  bool is_tracked(ObjectId oid) const;
  NodeId agent_of(ObjectId oid) const;
  double offered_acc_of(ObjectId oid) const;

  // Escape hatches for tests and benchmarks.
  net::SimNetwork& network() { return net_; }
  Deployment& deployment() { return *deployment_; }
  const Clock& clock() const { return net_.clock(); }

 private:
  NodeId alloc_node_id() { return NodeId{next_node_id_++}; }
  void run();  // drain the simulated network

  Config cfg_;
  net::SimNetwork net_;
  std::unique_ptr<Deployment> deployment_;
  std::uint32_t next_node_id_;
  std::unique_ptr<QueryClient> query_client_;
  std::unique_ptr<UpdateCoalescer> coalescer_;  // only when coalesce_updates
  std::unordered_map<ObjectId, std::unique_ptr<TrackedObject>> objects_;
};

}  // namespace locs::core
