// Service areas and server configuration records (§4, §5).
//
// "A service area can be subdivided into sub service areas ... (1) A
// non-leaf service area consists of their child service areas, and
// (2) sibling service areas do not overlap."
//
// Each location server stores a configuration record c = (sa, parent,
// children) on persistent storage; the hierarchy builder generates a
// consistent set of these records.
#pragma once

#include <vector>

#include "geo/polygon.hpp"
#include "util/ids.hpp"

namespace locs::core {

struct ChildRecord {
  NodeId id;
  geo::Polygon sa;
};

struct ConfigRecord {
  geo::Polygon sa;                    // c.sa
  NodeId parent;                      // c.parent (kNoNode for the root)
  std::vector<ChildRecord> children;  // c.children (empty for a leaf)

  bool is_leaf() const { return children.empty(); }
  bool is_root() const { return !parent.valid(); }

  bool covers(geo::Point p) const { return sa.contains(p); }

  /// The child whose service area contains p (first match: boundary points
  /// belong to the lowest-numbered sibling, a deterministic tie-break for
  /// the paper's non-overlap requirement). kNoNode if none.
  NodeId child_for(geo::Point p) const {
    for (const ChildRecord& child : children) {
      if (child.sa.contains(p)) return child.id;
    }
    return kNoNode;
  }
};

/// A full hierarchy: one (id, config) per server plus the root id.
struct HierarchySpec {
  struct Node {
    NodeId id;
    ConfigRecord cfg;
    /// Deployment hint: shard this leaf's object space across N reactors
    /// (core/sharded_location_server.hpp). 1 = plain single reactor; ignored
    /// for non-leaf nodes. HierarchyBuilder::with_leaf_shards stamps it.
    std::uint32_t leaf_shards = 1;
  };
  std::vector<Node> nodes;
  NodeId root;

  const Node* find(NodeId id) const {
    for (const Node& n : nodes) {
      if (n.id == id) return &n;
    }
    return nullptr;
  }

  std::vector<NodeId> leaves() const {
    std::vector<NodeId> out;
    for (const Node& n : nodes) {
      if (n.cfg.is_leaf()) out.push_back(n.id);
    }
    return out;
  }

  /// The leaf server whose area contains p (entry-server discovery stand-in
  /// for the paper's Jini lookup).
  NodeId leaf_for(geo::Point p) const {
    for (const Node& n : nodes) {
      if (n.cfg.is_leaf() && n.cfg.covers(p)) return n.id;
    }
    return kNoNode;
  }
};

}  // namespace locs::core
