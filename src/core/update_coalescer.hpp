// Client-side update coalescing stage.
//
// Under millions of tracked objects, many UpdateReqs target the same leaf
// within one latency window, and each one pays a full envelope + syscall +
// per-message dispatch. An UpdateCoalescer sits between the update sources
// (TrackedObjects, sensor gateways, simulators) and the transport: it packs
// sightings bound for the same agent leaf into wire::BatchedUpdateReq
// datagrams, amortizing that per-message cost by the batching factor.
//
// Flush policy (the wire format itself carries no timing state; see the
// framing note in wire/messages.hpp):
//  * size    -- a pending batch reaching max_batch sightings flushes,
//  * bytes   -- a pending batch whose packed payload reaches max_bytes
//               flushes (keeps batches inside one datagram / MTU budget),
//  * deadline-- tick() flushes any batch whose OLDEST sighting has waited
//               max_delay (bounds the extra latency coalescing adds),
//  * forced  -- flush_all() drains everything (shutdown, simulation sync).
//
// The coalescer owns a NodeId: the leaf replies to the envelope source, so
// BatchedUpdateAck / AgentChanged messages arrive HERE and are fanned back
// out to the per-object owners through the registered callbacks. Thread
// safety matches QueryClient: enqueue/tick/flush may run on one thread while
// the transport's receive context invokes handle(); callbacks are invoked
// WITHOUT the internal lock held (they typically lock a TrackedObject that
// may itself be mid-enqueue on another thread).
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/types.hpp"
#include "net/transport.hpp"
#include "util/clock.hpp"
#include "wire/messages.hpp"

namespace locs::core {

class UpdateCoalescer {
 public:
  struct Options {
    /// Flush a pending batch at this many sightings. 1 degenerates to one
    /// datagram per update (useful for A/B runs; still batch-framed).
    std::size_t max_batch = 16;
    /// Flush when the packed payload reaches this many bytes (datagram /
    /// MTU budget; also sizes the private send pool).
    std::size_t max_bytes = 1200;
    /// Deadline flush: the oldest buffered sighting waits at most this long
    /// (enforced by tick(); the added update latency is bounded by it).
    Duration max_delay = milliseconds(5);
  };

  struct Stats {
    std::uint64_t sightings_enqueued = 0;
    std::uint64_t batches_sent = 0;
    std::uint64_t flushes_size = 0;      // max_batch reached
    std::uint64_t flushes_bytes = 0;     // max_bytes reached
    std::uint64_t flushes_deadline = 0;  // max_delay elapsed (tick)
    std::uint64_t flushes_forced = 0;    // flush_all
    std::uint64_t acks_received = 0;  // (oid, acc) entries across packed acks
  };

  using AckFn = std::function<void(ObjectId, double offered_acc)>;
  using AgentChangedFn =
      std::function<void(ObjectId, NodeId new_agent, double offered_acc)>;
  using RefreshFn = std::function<void(ObjectId)>;

  UpdateCoalescer(NodeId self, net::Transport& net, Clock& clock, Options opts);
  /// Flushes every pending batch, then detaches from the transport.
  ~UpdateCoalescer();

  UpdateCoalescer(const UpdateCoalescer&) = delete;
  UpdateCoalescer& operator=(const UpdateCoalescer&) = delete;

  /// Fan-out of the leaf's replies; set during setup, before traffic.
  void set_on_ack(AckFn fn) { on_ack_ = std::move(fn); }
  void set_on_agent_changed(AgentChangedFn fn) {
    on_agent_changed_ = std::move(fn);
  }
  /// Fan-out of batched recovery sweeps (wire::BatchedRefreshReq): a
  /// restarted leaf asks the registering instance -- this node, for
  /// gateway-style setups -- to refresh each listed object; the owner
  /// typically re-feeds the object's last position through enqueue().
  void set_on_refresh(RefreshFn fn) { on_refresh_ = std::move(fn); }

  /// Buffers one sighting bound for `agent`; may flush (size / byte budget).
  void enqueue(NodeId agent, const Sighting& s);

  /// Deadline sweep; call from the owner's periodic tick.
  void tick(TimePoint now);

  /// Drains every pending batch immediately.
  void flush_all();

  NodeId node() const { return self_; }
  const Options& options() const { return opts_; }
  Stats stats() const;
  std::size_t pending_sightings() const;

 private:
  struct Pending {
    wire::BatchedUpdateReq batch;  // packed in place; capacity reused
    TimePoint oldest = 0;          // enqueue time of the oldest sighting
  };

  void handle(const std::uint8_t* data, std::size_t len);
  void flush_locked(NodeId agent, Pending& p);

  NodeId self_;
  net::Transport& net_;
  Clock& clock_;
  Options opts_;
  // Private send pool sized for batches (batch-aware BufferPool caps); the
  // transport adopts it so in-flight batch buffers outlive this object.
  std::shared_ptr<net::BufferPool> pool_;

  mutable std::mutex mu_;  // guards pending_ and stats_
  std::unordered_map<NodeId, Pending> pending_;
  Stats stats_;

  wire::Envelope rx_scratch_;  // receive-side decode scratch (handle())
  AckFn on_ack_;
  AgentChangedFn on_agent_changed_;
  RefreshFn on_refresh_;
};

}  // namespace locs::core
