// Deployment: instantiates one LocationServer per hierarchy node over a
// Transport and wires the handlers. Works with SimNetwork (deterministic)
// and UdpNetwork (real sockets; enable handler locking so the receive
// thread and the bench driver can touch a server safely).
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/location_server.hpp"
#include "core/service_area.hpp"
#include "net/transport.hpp"

namespace locs::core {

class Deployment {
 public:
  struct Config {
    LocationServer::Options server;
    /// Per-server option overrides (e.g. heterogeneous sensor
    /// infrastructures: different min_supported_acc per leaf, §3.1). Applied
    /// on top of `server`; return the (possibly modified) options.
    std::function<LocationServer::Options(NodeId, const ConfigRecord&,
                                          LocationServer::Options)>
        options_fn;
    spatial::IndexFactory index_factory;  // default: point quadtree
    /// Per-server persistent visitorDB factory (recovery tests / durable
    /// deployments); default: in-memory.
    std::function<store::VisitorDb(NodeId)> visitor_db_factory;
    /// Serialize handle()/tick() per server (required over UdpNetwork).
    bool lock_handlers = false;
  };

  Deployment(net::Transport& net, Clock& clock, HierarchySpec spec);
  Deployment(net::Transport& net, Clock& clock, HierarchySpec spec, Config cfg);

  /// Detaches every server from the transport before the servers are
  /// destroyed (a UDP receive thread must not invoke a freed reactor).
  ~Deployment();

  LocationServer& server(NodeId id) { return *servers_.at(id).server; }
  const HierarchySpec& spec() const { return spec_; }

  NodeId root() const { return spec_.root; }
  std::vector<NodeId> leaf_ids() const { return spec_.leaves(); }
  NodeId entry_leaf_for(geo::Point p) const { return spec_.leaf_for(p); }

  /// Drives soft-state expiry and pending-operation timeout sweeps.
  void tick_all(TimePoint now);

  /// Aggregate server statistics across the hierarchy.
  LocationServer::Stats total_stats() const;

 private:
  struct Entry {
    std::unique_ptr<LocationServer> server;
    std::unique_ptr<std::mutex> mu;  // only when lock_handlers
  };

  net::Transport& net_;
  HierarchySpec spec_;
  std::unordered_map<NodeId, Entry> servers_;
};

}  // namespace locs::core
