// Deployment: instantiates one LocationServer per hierarchy node over a
// Transport and wires the handlers. Works with SimNetwork (deterministic)
// and UdpNetwork (real sockets; enable handler locking so the receive
// thread and the bench driver can touch a server safely).
//
// Leaves can be sharded across N internal reactors (set Config::leaf_shards
// or stamp per-node hints with HierarchyBuilder::with_leaf_shards); such
// leaves are ShardedLocationServers behind the same NodeId -- the hierarchy
// protocol above them is unchanged. Set Config::shard_threads over
// UdpNetwork so each shard runs its own reactor thread.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/location_server.hpp"
#include "core/service_area.hpp"
#include "core/sharded_location_server.hpp"
#include "net/transport.hpp"

namespace locs::core {

class Deployment {
 public:
  struct Config {
    LocationServer::Options server;
    /// Per-server option overrides (e.g. heterogeneous sensor
    /// infrastructures: different min_supported_acc per leaf, §3.1). Applied
    /// on top of `server`; return the (possibly modified) options.
    std::function<LocationServer::Options(NodeId, const ConfigRecord&,
                                          LocationServer::Options)>
        options_fn;
    spatial::IndexFactory index_factory;  // default: point quadtree
    /// Per-server persistent visitorDB factory (recovery tests / durable
    /// deployments); default: in-memory. A node-keyed factory cannot be
    /// split across shard reactors, so a leaf with BOTH this set and a
    /// shard count > 1 stays a single reactor unless
    /// sharded_visitor_db_factory is also provided.
    std::function<store::VisitorDb(NodeId)> visitor_db_factory;
    /// Shard-aware variant for sharded leaves: one (node, shard) visitorDB
    /// per shard reactor (each shard persists only its own objects).
    std::function<store::VisitorDb(NodeId, std::uint32_t)> sharded_visitor_db_factory;
    /// Serialize handle()/tick() per server (required over UdpNetwork).
    bool lock_handlers = false;
    /// Shard every leaf's object space across this many internal reactors
    /// (core/sharded_location_server.hpp). A per-node HierarchySpec hint
    /// overrides this when larger than 1. 1 = plain LocationServer leaves.
    std::uint32_t leaf_shards = 1;
    /// Run one reactor thread per shard (UdpNetwork). Leave false over
    /// SimNetwork: inline shard execution keeps delivery deterministic.
    bool shard_threads = false;
    /// Adaptive busy-poll window for threaded shard reactors, in
    /// microseconds (ShardedLocationServer::Options::busy_poll_us; 0 = off,
    /// the default -- idle reactors sleep/wake exactly as before).
    std::uint32_t shard_busy_poll_us = 0;
    /// Build ShardedLocationServer leaves even at shards == 1. Used by the
    /// determinism tests: the single-shard wrapper must be pass-through
    /// (trace bit-identical to plain LocationServer leaves).
    bool force_leaf_sharding = false;
    /// Skew-aware shard routing / bucket rebalancing knobs, forwarded to
    /// every sharded leaf (ShardedLocationServer::Balance). Defaults keep
    /// routing identical to the fixed hash and leave rebalancing off.
    ShardedLocationServer::Balance leaf_balance;
    /// Hot-standby replication: primary leaf NodeId -> standby NodeId. For
    /// each entry the deployment builds an EXTRA replica server (same
    /// service area and parent as the primary; not part of the
    /// HierarchySpec), tees the primary's accepted sightings to it, and
    /// registers it with the primary's parent as the failover target
    /// (promotion on miss-threshold suspicion, demotion on recovery).
    /// Empty (the default) changes nothing -- traces stay bit-identical.
    std::unordered_map<NodeId, NodeId> leaf_standby;
  };

  Deployment(net::Transport& net, Clock& clock, HierarchySpec spec);
  Deployment(net::Transport& net, Clock& clock, HierarchySpec spec, Config cfg);

  /// Detaches every server from the transport before the servers are
  /// destroyed (a UDP receive thread must not invoke a freed reactor).
  ~Deployment();

  // -- fault injection (crash-restart as a first-class scenario) --

  /// Crashes one node: detaches it from the transport and destroys its
  /// reactor(s). All volatile state (SightingDb, pending operations,
  /// caches) is LOST; a persistent visitorDB (visitor_db_factory) survives
  /// on disk, exactly like the paper's §5 crash model. In-flight datagrams
  /// addressed to the node are dropped at delivery. No-op if already down.
  void crash(NodeId id);

  /// Restarts a crashed node: rebuilds the reactor(s) from the same config
  /// (replaying the persistent visitorDB, if any) and re-attaches it. With
  /// `announce` a restarted leaf runs the recovery protocol -- RecoveryHello
  /// to the parent, whose BatchedRefreshReq sweep drives the batched
  /// soft-state rebuild. No-op if the node is up.
  void restart(NodeId id, bool announce = true);

  /// True while `id` is crashed (between crash() and restart()).
  bool is_down(NodeId id) const;

  /// The single reactor of an UNSHARDED node (shard 0 of a sharded leaf, so
  /// existing single-reactor call sites keep working; prefer sharded() /
  /// find_sighting() to inspect sharded leaves). Must not be called for a
  /// crashed node (see is_down()).
  LocationServer& server(NodeId id) {
    const Entry& entry = servers_.at(id);
    return entry.sharded != nullptr ? entry.sharded->shard(0) : *entry.server;
  }
  /// The sharded reactor group of a leaf, or nullptr if the node runs a
  /// plain LocationServer.
  ShardedLocationServer* sharded(NodeId id) {
    return servers_.at(id).sharded.get();
  }
  /// Copies the sighting record for `oid` at leaf `id`, looking through
  /// every shard slice. Returns false if unknown there.
  bool find_sighting(NodeId id, ObjectId oid, store::SightingDb::Record& out) const;

  const HierarchySpec& spec() const { return spec_; }

  NodeId root() const { return spec_.root; }
  std::vector<NodeId> leaf_ids() const { return spec_.leaves(); }
  NodeId entry_leaf_for(geo::Point p) const { return spec_.leaf_for(p); }

  /// Drives soft-state expiry and pending-operation timeout sweeps.
  void tick_all(TimePoint now);

  /// Aggregate server statistics across the hierarchy.
  LocationServer::Stats total_stats() const;

 private:
  struct Entry {
    std::unique_ptr<LocationServer> server;          // unsharded nodes
    std::unique_ptr<ShardedLocationServer> sharded;  // sharded leaves
    std::unique_ptr<std::mutex> mu;  // only when lock_handlers
    bool up() const { return server != nullptr || sharded != nullptr; }
  };

  /// Builds (or rebuilds, on restart) the reactor(s) of one node and
  /// attaches them to the transport.
  void make_entry(const HierarchySpec::Node& node, Entry& entry);

  /// (Re-)applies the hot-standby wiring of one leaf_standby pair: the
  /// primary tees to the standby, the standby mirrors the primary, and the
  /// primary's parent learns the failover target. Skips crashed entries, so
  /// it is safe to re-run after any restart().
  void wire_standby(NodeId primary, NodeId standby);

  net::Transport& net_;
  HierarchySpec spec_;
  Clock& clock_;
  Config cfg_;
  std::unordered_map<NodeId, Entry> servers_;
};

}  // namespace locs::core
