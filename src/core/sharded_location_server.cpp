#include "core/sharded_location_server.hpp"

#include <cassert>
#include <chrono>

namespace locs::core {

namespace {
// Consumer pacing: drain in small batches, spin-yield briefly when idle,
// then sleep with a bounded timeout (the producer's wakeup is best-effort).
constexpr int kDrainBatch = 64;
constexpr int kIdleSpinRounds = 64;
constexpr auto kSleepSlice = std::chrono::microseconds(200);
// Producer backoff before dropping on a persistently full inbox.
constexpr int kPushRetries = 1024;
}  // namespace

namespace {
// splitmix64 finalizer: spreads sequential object ids uniformly.
std::uint64_t mix_key(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}
}  // namespace

std::uint32_t ShardedLocationServer::shard_of(ObjectId oid,
                                              std::uint32_t shard_count) {
  return static_cast<std::uint32_t>(mix_key(oid.value) % shard_count);
}

std::uint32_t ShardedLocationServer::bucket_of(ObjectId oid) const {
  const std::uint64_t key =
      opts_.balance.mix_keys ? mix_key(oid.value) : oid.value;
  return static_cast<std::uint32_t>(key % kRebalanceBuckets);
}

ShardedLocationServer::ShardedLocationServer(NodeId self, ConfigRecord cfg,
                                             net::Transport& net, Clock& clock,
                                             Options opts,
                                             ShardVisitorDbFactory visitor_db_factory,
                                             spatial::IndexFactory index_factory)
    : self_(self), net_(net), opts_(opts) {
  assert(cfg.is_leaf() && "only leaf servers shard their object space");
  if (opts_.shards == 0) opts_.shards = 1;
  const std::uint32_t n = opts_.shards;

  // Default bucket table: bucket % shards. For shard counts dividing the
  // bucket count this routes identically to shard_of(), so the bucket layer
  // is invisible until the rebalancer moves a bucket.
  for (std::uint32_t b = 0; b < kRebalanceBuckets; ++b) {
    bucket_to_shard_[b].store(b % n, std::memory_order_relaxed);
  }

  for (std::uint32_t i = 0; i < n; ++i) {
    auto sh = std::make_unique<Shard>(opts_.inbox_capacity);
    sh->index = i;
    sh->pool = std::make_shared<net::BufferPool>();
    // In-flight PooledBuffers outlive this object (SimNetwork queues them);
    // the transport keeps the pool alive for them.
    net_.adopt_pool(sh->pool);
    store::VisitorDb vdb;
    if (visitor_db_factory) vdb = visitor_db_factory(i);
    sh->server = std::make_unique<LocationServer>(self, cfg, net, clock,
                                                  opts_.server, std::move(vdb),
                                                  index_factory);
    shards_.push_back(std::move(sh));
  }

  // Slice wiring: each slice gets a lock serializing its owning shard's
  // mutations against cross-shard reads -- the coordinator's query merges
  // (N > 1) and external find_sighting() probes (any threaded setup,
  // including a threaded single shard).
  for (auto& sh : shards_) {
    store::SightingDb* slice = sh->server->sightings_mutable();
    assert(slice != nullptr);
    std::mutex* mu = n > 1 || opts_.threaded ? &sh->slice_mu : nullptr;
    slice->set_slice_lock(mu);
    merged_view_.add_slice(slice, mu);
  }

  for (auto& sh : shards_) {
    const bool coordinator = sh->index == 0;
    LocationServer::SightingEventHook hook;
    if (!coordinator) {
      hook = [this](ObjectId oid, bool present, geo::Point pos) {
        LocationServer& coord = *shards_[0]->server;
        if (coord.leaf_event_count() == 0) return;  // hot path: no predicates
        if (!opts_.threaded) {
          coord.apply_sighting_event(oid, present, pos);
          return;
        }
        {
          std::lock_guard<std::mutex> lock(delta_mu_);
          deltas_.push_back({oid, present, pos});
        }
        wake(*shards_[0]);
      };
    }
    sh->server->configure_shard(sh->index, sh->pool.get(),
                                coordinator ? &merged_view_ : nullptr,
                                std::move(hook));
    // One shared §6.5 cache set per leaf: hit patterns (and the message
    // counts they produce) match an unsharded leaf. Inline mode needs no
    // lock -- datagrams arrive one at a time from the delivery loop.
    sh->server->share_caches(&shared_leaf_cache_, &shared_agent_cache_,
                             &shared_position_cache_,
                             opts_.threaded ? &cache_mu_ : nullptr);
  }

  if (opts_.threaded) {
    for (auto& sh : shards_) {
      sh->thread = std::thread([this, shard = sh.get()] { shard_loop(*shard); });
    }
  }
}

ShardedLocationServer::~ShardedLocationServer() {
  // Teardown protocol (see Transport::detach): unregister first so the
  // transport never delivers into a dying reactor, then stop the shards.
  net_.detach(self_);
  if (opts_.threaded) {
    stop_.store(true, std::memory_order_release);
    for (auto& sh : shards_) {
      std::lock_guard<std::mutex> lock(sh->wake_mu);
      sh->wake_cv.notify_all();
    }
    for (auto& sh : shards_) {
      if (sh->thread.joinable()) sh->thread.join();
    }
    // Deterministic send-side teardown: whatever the final drain bursts
    // left on the shard channels goes to the wire before destruction.
    for (auto& sh : shards_) {
      if (sh->tx != nullptr) sh->tx->flush();
    }
  }
}

void ShardedLocationServer::open_tx_senders() {
  if (!opts_.threaded) return;
  for (auto& sh : shards_) {
    if (sh->tx != nullptr) continue;
    sh->tx = net_.open_sender(self_);
    if (sh->tx == nullptr) return;  // transport has no per-sender channels
    {
      std::lock_guard<std::mutex> lock(sh->reactor_mu);
      sh->server->set_tx_sender(sh->tx.get());
    }
    // Publish to the already-running shard_loop last (release pairs with its
    // acquire load), so the reactor only corks a fully wired channel.
    sh->tx_raw.store(sh->tx.get(), std::memory_order_release);
  }
}

std::uint32_t ShardedLocationServer::route(const std::uint8_t* data,
                                           std::size_t len) const {
  if (shards_.size() == 1) return 0;
  const std::optional<ObjectId> key = wire::peek_object_key(data, len);
  // Area-keyed and malformed datagrams run on the coordinator shard (the
  // latter so exactly one shard counts the decode error).
  if (!key) return 0;
  return shard_for(*key);
}

void ShardedLocationServer::handle(const net::Datagram& dg) {
  const std::uint8_t* data = dg.data();
  const std::size_t len = dg.size();
  // Batched updates carry sightings for MANY objects: split them per owning
  // shard instead of routing the whole datagram to one reactor.
  if (shards_.size() > 1 && len > 1 &&
      static_cast<wire::MsgType>(data[1]) == wire::MsgType::kBatchedUpdateReq) {
    if (split_batched_update(data, len)) return;
    // Malformed batch: shard 0 runs the full decode and counts the error.
  }
  // Batched recovery sweeps likewise list MANY objects; each shard must
  // refresh only the visitors of its own slice.
  if (shards_.size() > 1 && len > 1 &&
      static_cast<wire::MsgType>(data[1]) == wire::MsgType::kBatchedRefreshReq) {
    if (split_batched_refresh(data, len)) return;
  }
  if (len > 1 &&
      static_cast<wire::MsgType>(data[1]) == wire::MsgType::kReplicaTee) {
    // Mirror stream from the primary: each packed entry routes to the shard
    // owning its ObjectId, so every standby shard mirrors its own slice.
    if (shards_.size() > 1 && split_replica_tee(data, len)) return;
    deliver(*shards_[0], dg);
    return;
  }
  if (len > 1 &&
      (static_cast<wire::MsgType>(data[1]) == wire::MsgType::kStandbyPromote ||
       static_cast<wire::MsgType>(data[1]) == wire::MsgType::kStandbyDemote)) {
    // Promotion flips every shard of the replica leaf (ascending index order
    // keeps inline SimNetwork execution deterministic): each shard fans
    // AgentChanged for -- or drops -- exactly its own mirrored slice.
    for (auto& sh : shards_) deliver(*sh, dg);
    return;
  }
  deliver(*shards_[route(data, len)], dg);
}

void ShardedLocationServer::deliver(Shard& sh, const net::Datagram& dg) {
  const std::uint8_t* data = dg.data();
  const std::size_t len = dg.size();
  if (!opts_.threaded) {
    // Inline: forward the Datagram itself so the coordinator's merge paths
    // can pin the receive buffer exactly like an unsharded server.
    sh.server->handle(dg);
    return;
  }
  for (int attempt = 0;; ++attempt) {
    if (sh.inbox.try_push(data, len)) break;
    if (attempt >= kPushRetries) {
      // Persistently full inbox: drop, like a full UDP socket buffer would.
      inbox_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    wake(sh);
    std::this_thread::yield();
  }
  wake(sh);
}

bool ShardedLocationServer::split_batched_update(const std::uint8_t* data,
                                                 std::size_t len) {
  const std::uint32_t n = static_cast<std::uint32_t>(shards_.size());
  // Pass 1: peek every sighting's owner; a batch that lands entirely on one
  // shard (or is empty) forwards unchanged -- no copy, no re-framing.
  {
    wire::BatchedUpdateView peek(data, len);
    if (!peek.valid()) return false;
    bool mixed = false;
    std::uint32_t first = 0;
    bool have_first = false;
    while (const auto item = peek.next()) {
      const std::uint32_t owner = shard_for(item->oid);
      if (!have_first) {
        first = owner;
        have_first = true;
      } else if (owner != first) {
        mixed = true;
        break;
      }
    }
    if (!mixed) {
      deliver(*shards_[have_first ? first : 0], net::Datagram(data, len));
      return true;
    }
  }
  // Pass 2: re-frame. The item byte ranges are copied verbatim into
  // per-shard packed regions (scratch buffers, capacity reused), then each
  // sub-batch is re-enveloped under the ORIGINAL header bytes so the source
  // node -- and with it the ack destination -- is preserved.
  split_packed_.resize(n);
  split_counts_.assign(n, 0);
  for (auto& buf : split_packed_) buf.clear();
  wire::BatchedUpdateView view(data, len);
  while (const auto item = view.next()) {
    const std::uint32_t owner = shard_for(item->oid);
    split_packed_[owner].insert(split_packed_[owner].end(), item->data,
                                item->data + item->len);
    ++split_counts_[owner];
  }
  constexpr std::size_t kHeaderLen = 6;  // [version][type][src u32_fixed]
  for (std::uint32_t s = 0; s < n; ++s) {
    if (split_counts_[s] == 0) continue;
    split_datagram_.clear();
    wire::Writer w(split_datagram_);
    w.reserve(kHeaderLen + 20 + split_packed_[s].size());
    w.bytes(data, kHeaderLen);
    w.u64(split_counts_[s]);
    w.u64(split_packed_[s].size());
    w.bytes(split_packed_[s].data(), split_packed_[s].size());
    w.flush();
    deliver(*shards_[s],
            net::Datagram(split_datagram_.data(), split_datagram_.size()));
  }
  return true;
}

bool ShardedLocationServer::split_batched_refresh(const std::uint8_t* data,
                                                  std::size_t len) {
  const std::uint32_t n = static_cast<std::uint32_t>(shards_.size());
  // Pass 1: a sweep whose oids all hash to one shard forwards unchanged.
  {
    wire::BatchedRefreshView peek(data, len);
    if (!peek.valid()) return false;
    bool mixed = false;
    std::uint32_t first = 0;
    bool have_first = false;
    while (const auto item = peek.next()) {
      const std::uint32_t owner = shard_for(item->oid);
      if (!have_first) {
        first = owner;
        have_first = true;
      } else if (owner != first) {
        mixed = true;
        break;
      }
    }
    if (!mixed) {
      deliver(*shards_[have_first ? first : 0], net::Datagram(data, len));
      return true;
    }
  }
  // Pass 2: re-frame per owning shard under the ORIGINAL header bytes (the
  // source node stays the parent, so replies route correctly). The item byte
  // ranges are copied verbatim -- no re-encoding, so this splitter never
  // duplicates the ObjectId wire format. Same scratch protocol as
  // split_batched_update -- handle() runs in the node's single receive
  // context.
  split_packed_.resize(n);
  split_counts_.assign(n, 0);
  for (auto& buf : split_packed_) buf.clear();
  wire::BatchedRefreshView view(data, len);
  while (const auto item = view.next()) {
    const std::uint32_t owner = shard_for(item->oid);
    split_packed_[owner].insert(split_packed_[owner].end(), item->data,
                                item->data + item->len);
    ++split_counts_[owner];
  }
  constexpr std::size_t kHeaderLen = 6;  // [version][type][src u32_fixed]
  for (std::uint32_t s = 0; s < n; ++s) {
    if (split_counts_[s] == 0) continue;
    split_datagram_.clear();
    wire::Writer w(split_datagram_);
    w.reserve(kHeaderLen + 20 + split_packed_[s].size());
    w.bytes(data, kHeaderLen);
    w.u64(split_counts_[s]);
    w.u64(split_packed_[s].size());
    w.bytes(split_packed_[s].data(), split_packed_[s].size());
    w.flush();
    deliver(*shards_[s],
            net::Datagram(split_datagram_.data(), split_datagram_.size()));
  }
  return true;
}

bool ShardedLocationServer::split_replica_tee(const std::uint8_t* data,
                                              std::size_t len) {
  const std::uint32_t n = static_cast<std::uint32_t>(shards_.size());
  // Pass 1: a tee whose entries all belong to one shard forwards unchanged.
  {
    wire::ReplicaTeeView peek(data, len);
    if (!peek.valid()) return false;
    bool mixed = false;
    std::uint32_t first = 0;
    bool have_first = false;
    while (const auto item = peek.next()) {
      const std::uint32_t owner = shard_for(item->oid);
      if (!have_first) {
        first = owner;
        have_first = true;
      } else if (owner != first) {
        mixed = true;
        break;
      }
    }
    if (!mixed) {
      deliver(*shards_[have_first ? first : 0], net::Datagram(data, len));
      return true;
    }
  }
  // Pass 2: re-frame per owning shard under the ORIGINAL header bytes (the
  // source stays the primary NodeId, which the replica shards verify against
  // their standby_primary_). Entry byte ranges are copied verbatim; ascending
  // shard order keeps inline SimNetwork execution deterministic.
  split_packed_.resize(n);
  split_counts_.assign(n, 0);
  for (auto& buf : split_packed_) buf.clear();
  wire::ReplicaTeeView view(data, len);
  while (const auto item = view.next()) {
    const std::uint32_t owner = shard_for(item->oid);
    split_packed_[owner].insert(split_packed_[owner].end(), item->data,
                                item->data + item->len);
    ++split_counts_[owner];
  }
  constexpr std::size_t kHeaderLen = 6;  // [version][type][src u32_fixed]
  for (std::uint32_t s = 0; s < n; ++s) {
    if (split_counts_[s] == 0) continue;
    split_datagram_.clear();
    wire::Writer w(split_datagram_);
    w.reserve(kHeaderLen + 20 + split_packed_[s].size());
    w.bytes(data, kHeaderLen);
    w.u64(split_counts_[s]);
    w.u64(split_packed_[s].size());
    w.bytes(split_packed_[s].data(), split_packed_[s].size());
    w.flush();
    deliver(*shards_[s],
            net::Datagram(split_datagram_.data(), split_datagram_.size()));
  }
  return true;
}

void ShardedLocationServer::set_standby(NodeId standby) {
  for (auto& sh : shards_) {
    if (opts_.threaded) {
      std::lock_guard<std::mutex> lock(sh->reactor_mu);
      sh->server->set_standby(standby);
    } else {
      sh->server->set_standby(standby);
    }
  }
}

void ShardedLocationServer::set_standby_role(NodeId primary) {
  for (auto& sh : shards_) {
    if (opts_.threaded) {
      std::lock_guard<std::mutex> lock(sh->reactor_mu);
      sh->server->set_standby_role(primary);
    } else {
      sh->server->set_standby_role(primary);
    }
  }
}

void ShardedLocationServer::wake(Shard& sh) {
  if (sh.sleeping.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(sh.wake_mu);
    sh.wake_cv.notify_one();
  }
}

void ShardedLocationServer::shard_loop(Shard& sh) {
  int idle_rounds = 0;
  while (true) {
    bool did_work = false;
    // Cork the shard's transmit channel across the drain burst: replies for
    // up to kDrainBatch datagrams coalesce into sendmmsg batches, flushed by
    // the uncork below (mirrors the UdpNetwork receive-loop bracket).
    net::Sender* tx = sh.tx_raw.load(std::memory_order_acquire);
    if (tx != nullptr) tx->cork();
    for (int i = 0; i < kDrainBatch; ++i) {
      const bool popped = sh.inbox.try_pop([&](const std::uint8_t* d, std::size_t l) {
        std::lock_guard<std::mutex> lock(sh.reactor_mu);
        sh.server->handle(d, l);
      });
      if (!popped) break;
      did_work = true;
    }
    if (sh.index == 0) did_work |= drain_sighting_deltas();
    if (tx != nullptr) tx->uncork();
    if (did_work) {
      idle_rounds = 0;
      continue;
    }
    // Idle with an empty inbox: exit once stop is requested (everything
    // already delivered has been processed).
    if (stop_.load(std::memory_order_acquire)) return;
    if (++idle_rounds < kIdleSpinRounds) {
      std::this_thread::yield();
      continue;
    }
    // Adaptive busy-poll (Options::busy_poll_us): spin on the inbox for a
    // bounded window before paying the sleep/wake path. The periodic
    // channel flush reaps transmit completions along the way -- over an
    // io_uring backend that is a CQ sweep with no syscall -- so a loaded
    // shard can run drain -> handle -> flush cycles entirely in user space.
    if (opts_.busy_poll_us > 0) {
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::microseconds(opts_.busy_poll_us);
      bool caught = false;
      std::uint32_t spin = 0;
      while (std::chrono::steady_clock::now() < deadline) {
        sh.busy_spins.fetch_add(1, std::memory_order_relaxed);
        if (stop_.load(std::memory_order_acquire)) break;
        if (!sh.inbox.empty()) {
          caught = true;
          break;
        }
        if (tx != nullptr && (++spin & 31u) == 0) tx->flush();
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#else
        std::this_thread::yield();
#endif
      }
      if (caught) {
        // A sleep (and the producer's notify_one) just got skipped.
        sh.wakeups_avoided.fetch_add(1, std::memory_order_relaxed);
        idle_rounds = 0;
        continue;
      }
      if (stop_.load(std::memory_order_acquire)) continue;  // drain + exit
    }
    sh.busy_sleeps.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::mutex> lock(sh.wake_mu);
    sh.sleeping.store(true, std::memory_order_release);
    sh.wake_cv.wait_for(lock, kSleepSlice, [&] {
      return stop_.load(std::memory_order_acquire) || !sh.inbox.empty();
    });
    sh.sleeping.store(false, std::memory_order_release);
    idle_rounds = 0;
  }
}

bool ShardedLocationServer::drain_sighting_deltas() {
  {
    std::lock_guard<std::mutex> lock(delta_mu_);
    if (deltas_.empty()) return false;
    delta_scratch_.swap(deltas_);
  }
  {
    std::lock_guard<std::mutex> lock(shards_[0]->reactor_mu);
    for (const SightingDelta& d : delta_scratch_) {
      shards_[0]->server->apply_sighting_event(d.oid, d.present, d.pos);
    }
  }
  delta_scratch_.clear();
  return true;
}

void ShardedLocationServer::tick(TimePoint now) {
  for (auto& sh : shards_) {
    if (opts_.threaded) {
      std::lock_guard<std::mutex> lock(sh->reactor_mu);
      sh->server->tick(now);
    } else {
      sh->server->tick(now);
    }
  }
  if (opts_.balance.rebalance && shards_.size() > 1) rebalance();
}

void ShardedLocationServer::request_refresh_all() {
  for (auto& sh : shards_) {
    if (opts_.threaded) {
      std::lock_guard<std::mutex> lock(sh->reactor_mu);
      sh->server->request_refresh_all();
    } else {
      sh->server->request_refresh_all();
    }
  }
}

void ShardedLocationServer::announce_recovery() {
  // One hello per leaf NodeId: shard 0 speaks for the node (a root leaf's
  // announce degenerates to a local sweep, which the other shards mirror for
  // their own slices via request_refresh_all below).
  {
    auto& coord = *shards_[0];
    if (opts_.threaded) {
      std::lock_guard<std::mutex> lock(coord.reactor_mu);
      coord.server->announce_recovery();
    } else {
      coord.server->announce_recovery();
    }
  }
  if (!shards_[0]->server->config().is_root()) return;
  for (std::size_t i = 1; i < shards_.size(); ++i) {
    auto& sh = *shards_[i];
    if (opts_.threaded) {
      std::lock_guard<std::mutex> lock(sh.reactor_mu);
      sh.server->request_refresh_all();
    } else {
      sh.server->request_refresh_all();
    }
  }
}

LocationServer::Stats ShardedLocationServer::stats() const {
  LocationServer::Stats total;
  for (const auto& sh : shards_) {
    if (opts_.threaded) {
      std::lock_guard<std::mutex> lock(sh->reactor_mu);
      total.add(sh->server->stats());
    } else {
      total.add(sh->server->stats());
    }
  }
  return total;
}

std::vector<ShardedLocationServer::ShardLoad> ShardedLocationServer::shard_loads()
    const {
  std::vector<ShardLoad> loads;
  loads.reserve(shards_.size());
  for (const auto& sh : shards_) {
    ShardLoad load;
    load.shard = sh->index;
    load.inbox_depth = sh->inbox.size();
    const auto snapshot = [&] {
      const store::SightingDb* slice = sh->server->sightings();
      load.sightings = slice != nullptr ? slice->size() : 0;
      load.visitors = sh->server->visitors().size();
      load.msgs_handled = sh->server->stats().msgs_handled;
    };
    if (opts_.threaded) {
      std::lock_guard<std::mutex> lock(sh->reactor_mu);
      snapshot();
    } else {
      snapshot();
    }
    loads.push_back(load);
  }
  return loads;
}

void ShardedLocationServer::encode_load_stats(wire::Buffer& out) {
  wire::ShardLoadStats msg;
  msg.seq = ++load_seq_;
  for (const ShardLoad& load : shard_loads()) {
    msg.append({load.shard, load.sightings, load.visitors, load.msgs_handled,
                load.inbox_depth});
  }
  wire::encode_envelope_into(out, self_, msg);
}

void ShardedLocationServer::rebalance() {
  const std::uint32_t n = static_cast<std::uint32_t>(shards_.size());
  for (std::uint32_t moves = 0; moves < opts_.balance.max_buckets_per_sweep;
       ++moves) {
    // Decision inputs: slice occupancy only. Queue depth is too noisy to act
    // on (threaded inboxes drain in bursts) -- it is exported, not acted on.
    const std::vector<ShardLoad> loads = shard_loads();
    std::uint32_t donor = 0;
    std::uint32_t recipient = 0;
    std::size_t total = 0;
    for (const ShardLoad& load : loads) {
      total += load.sightings;
      if (load.sightings > loads[donor].sightings) donor = load.shard;
      if (load.sightings < loads[recipient].sightings) recipient = load.shard;
    }
    const std::size_t max_occ = loads[donor].sightings;
    // Hysteresis: stop when inside the trigger band, or when the absolute
    // gap is too small to matter.
    if (max_occ < loads[recipient].sightings + opts_.balance.min_imbalance) {
      return;
    }
    if (static_cast<double>(max_occ) * n <=
        opts_.balance.trigger_ratio * static_cast<double>(total)) {
      return;
    }
    // Fattest donor-owned bucket (ties: lowest bucket id, keeping the sweep
    // deterministic). Recomputed each move: after a move the donor/recipient
    // pair usually changes, so a one-shot plan would chase a stale argmax.
    std::array<std::size_t, kRebalanceBuckets> bucket_occ{};
    shards_[donor]->server->sightings()->for_each(
        [&](ObjectId oid, const store::SightingDb::Record&) {
          ++bucket_occ[bucket_of(oid)];
        });
    std::uint32_t best = kRebalanceBuckets;
    std::size_t best_occ = 0;
    for (std::uint32_t b = 0; b < kRebalanceBuckets; ++b) {
      if (bucket_to_shard_[b].load(std::memory_order_relaxed) != donor) continue;
      if (bucket_occ[b] > best_occ) {
        best = b;
        best_occ = bucket_occ[b];
      }
    }
    if (best == kRebalanceBuckets || best_occ == 0) return;  // nothing movable
    move_bucket(best, donor, recipient);
  }
}

void ShardedLocationServer::move_bucket(std::uint32_t b, std::uint32_t donor,
                                        std::uint32_t recipient) {
  Shard& from = *shards_[donor];
  Shard& to = *shards_[recipient];
  // Both reactors pause for the move (ordered by index -- the only place two
  // reactor locks nest). Inline mode needs no locks: tick() runs in the one
  // delivery context.
  std::unique_lock<std::mutex> first_lock;
  std::unique_lock<std::mutex> second_lock;
  if (opts_.threaded) {
    Shard& first = donor < recipient ? from : to;
    Shard& second = donor < recipient ? to : from;
    first_lock = std::unique_lock<std::mutex>(first.reactor_mu);
    second_lock = std::unique_lock<std::mutex>(second.reactor_mu);
  }
  migrate_scratch_.clear();
  migrate_scratch_.bucket = b;
  from.server->extract_for_migration(
      [&](ObjectId oid) { return bucket_of(oid) == b; }, migrate_scratch_);
  // Flip the table BEFORE installing: datagrams routed from here on land in
  // the recipient's inbox and are processed after the install below (its
  // reactor lock is held). Stale datagrams already queued on the donor
  // degrade to unknown-object drops/nacks -- UDP semantics.
  bucket_to_shard_[b].store(recipient, std::memory_order_release);
  if (!migrate_scratch_.empty()) {
    // Through the real codec on purpose: migration exercises the same
    // validated framing whether the shards share an address space or not.
    wire::encode_envelope_into(migrate_datagram_, self_, migrate_scratch_);
    to.server->handle(migrate_datagram_.data(), migrate_datagram_.size());
    objects_migrated_.fetch_add(migrate_scratch_.count,
                                std::memory_order_relaxed);
  }
  buckets_migrated_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace locs::core
