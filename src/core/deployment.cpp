#include "core/deployment.hpp"

namespace locs::core {

Deployment::Deployment(net::Transport& net, Clock& clock, HierarchySpec spec)
    : Deployment(net, clock, std::move(spec), Config{}) {}

Deployment::Deployment(net::Transport& net, Clock& clock, HierarchySpec spec,
                       Config cfg)
    : net_(net), spec_(std::move(spec)), clock_(clock), cfg_(std::move(cfg)) {
  for (const HierarchySpec::Node& node : spec_.nodes) {
    Entry entry;
    make_entry(node, entry);
    servers_.emplace(node.id, std::move(entry));
  }
  // Hot standbys are EXTRA servers outside the spec: each replica reuses its
  // primary's ConfigRecord (same service area and parent, so a promoted
  // standby answers exactly the primary's slice of the query space) under
  // its own NodeId.
  for (const auto& [primary, standby] : cfg_.leaf_standby) {
    const HierarchySpec::Node* node = spec_.find(primary);
    if (node == nullptr || !node->cfg.is_leaf()) continue;
    if (servers_.count(standby) > 0) continue;  // id collision: skip
    HierarchySpec::Node replica = *node;
    replica.id = standby;
    Entry entry;
    make_entry(replica, entry);
    servers_.emplace(standby, std::move(entry));
    wire_standby(primary, standby);
  }
}

void Deployment::wire_standby(NodeId primary, NodeId standby) {
  const auto pit = servers_.find(primary);
  const auto sit = servers_.find(standby);
  if (pit == servers_.end() || sit == servers_.end()) return;
  if (sit->second.up()) {
    if (sit->second.sharded != nullptr) {
      sit->second.sharded->set_standby_role(primary);
    } else {
      sit->second.server->set_standby_role(primary);
    }
  }
  if (pit->second.up()) {
    if (pit->second.sharded != nullptr) {
      pit->second.sharded->set_standby(standby);
    } else {
      pit->second.server->set_standby(standby);
    }
  }
  const HierarchySpec::Node* node = spec_.find(primary);
  if (node == nullptr || !node->cfg.parent.valid()) return;
  const auto parent_it = servers_.find(node->cfg.parent);
  if (parent_it == servers_.end() || parent_it->second.server == nullptr) return;
  parent_it->second.server->set_child_standby(primary, standby);
}

void Deployment::make_entry(const HierarchySpec::Node& node, Entry& entry) {
  LocationServer::Options opts = cfg_.server;
  if (cfg_.options_fn) opts = cfg_.options_fn(node.id, node.cfg, opts);

  const std::uint32_t shards =
      node.cfg.is_leaf() ? std::max(cfg_.leaf_shards, node.leaf_shards) : 1;
  // A node-keyed visitor_db_factory cannot split a persistent visitorDB
  // across shards (each shard persists only its own objects); without a
  // shard-aware factory such a leaf stays a single reactor -- correctness
  // (recovery, §5) beats scaling. See Config::sharded_visitor_db_factory.
  const bool can_shard = !cfg_.visitor_db_factory || cfg_.sharded_visitor_db_factory;
  if (can_shard &&
      (shards > 1 || (cfg_.force_leaf_sharding && node.cfg.is_leaf()))) {
    ShardedLocationServer::Options sopts;
    sopts.shards = shards;
    sopts.threaded = cfg_.shard_threads;
    sopts.busy_poll_us = cfg_.shard_busy_poll_us;
    sopts.server = opts;
    sopts.balance = cfg_.leaf_balance;
    ShardedLocationServer::ShardVisitorDbFactory vdb_factory;
    if (cfg_.sharded_visitor_db_factory) {
      vdb_factory = [factory = cfg_.sharded_visitor_db_factory,
                     id = node.id](std::uint32_t shard) {
        return factory(id, shard);
      };
    }
    entry.sharded = std::make_unique<ShardedLocationServer>(
        node.id, node.cfg, net_, clock_, sopts, std::move(vdb_factory),
        cfg_.index_factory);
    ShardedLocationServer* server = entry.sharded.get();
    // Threaded shards serialize internally; inline shards piggyback on the
    // same handler lock unsharded servers use over UdpNetwork.
    if (cfg_.lock_handlers && !cfg_.shard_threads && entry.mu == nullptr) {
      entry.mu = std::make_unique<std::mutex>();
    }
    std::mutex* mu = cfg_.shard_threads ? nullptr : entry.mu.get();
    net_.attach(node.id, net::DatagramHandler([server, mu](const net::Datagram& dg) {
      if (mu != nullptr) {
        std::lock_guard<std::mutex> lock(*mu);
        server->handle(dg);
      } else {
        server->handle(dg);
      }
    }));
    // After attach, so each shard channel can join the node's SO_REUSEPORT
    // group (no-op for inline shards and channel-less transports).
    server->open_tx_senders();
  } else {
    store::VisitorDb vdb;
    if (cfg_.visitor_db_factory) vdb = cfg_.visitor_db_factory(node.id);
    entry.server = std::make_unique<LocationServer>(
        node.id, node.cfg, net_, clock_, opts, std::move(vdb), cfg_.index_factory);
    if (cfg_.lock_handlers && entry.mu == nullptr) {
      entry.mu = std::make_unique<std::mutex>();
    }
    LocationServer* server = entry.server.get();
    std::mutex* mu = entry.mu.get();
    net_.attach(node.id, net::DatagramHandler([server, mu](const net::Datagram& dg) {
      if (mu != nullptr) {
        std::lock_guard<std::mutex> lock(*mu);
        server->handle(dg);
      } else {
        server->handle(dg);
      }
    }));
  }
}

Deployment::~Deployment() {
  for (const auto& [id, entry] : servers_) net_.detach(id);
}

void Deployment::crash(NodeId id) {
  Entry& entry = servers_.at(id);
  if (!entry.up()) return;
  // Teardown protocol: detach first so the transport never delivers into a
  // dying reactor (UdpNetwork blocks on an in-flight callback), then drop
  // all volatile state. The persistent visitorDB log -- if any -- stays on
  // disk for the restart to replay.
  net_.detach(id);
  if (entry.mu != nullptr) {
    // Over UDP a driver thread may sit inside find_sighting; serialize.
    std::lock_guard<std::mutex> lock(*entry.mu);
    entry.server.reset();
    entry.sharded.reset();
  } else {
    entry.server.reset();
    entry.sharded.reset();
  }
}

void Deployment::restart(NodeId id, bool announce) {
  Entry& entry = servers_.at(id);
  if (entry.up()) return;
  const HierarchySpec::Node* node = spec_.find(id);
  if (node == nullptr) return;
  make_entry(*node, entry);
  // Rebuilt reactors lost their replication wiring; re-apply every pair the
  // restarted node participates in (as primary, as the parent of one, or --
  // for completeness -- as a standby brought back by hand).
  for (const auto& [primary, standby] : cfg_.leaf_standby) {
    const HierarchySpec::Node* pnode = spec_.find(primary);
    if (id == primary || id == standby ||
        (pnode != nullptr && pnode->cfg.parent == id)) {
      wire_standby(primary, standby);
    }
  }
  if (!announce || !node->cfg.is_leaf()) return;
  if (entry.sharded != nullptr) {
    entry.sharded->announce_recovery();
  } else {
    entry.server->announce_recovery();
  }
}

bool Deployment::is_down(NodeId id) const {
  return !servers_.at(id).up();
}

bool Deployment::find_sighting(NodeId id, ObjectId oid,
                               store::SightingDb::Record& out) const {
  const Entry& entry = servers_.at(id);
  if (entry.sharded != nullptr) return entry.sharded->find_sighting(oid, out);
  // Unsharded over UDP: the receive thread mutates the db under entry.mu,
  // so this cross-thread read must serialize against it too.
  std::unique_lock<std::mutex> lock;
  if (entry.mu != nullptr) lock = std::unique_lock<std::mutex>(*entry.mu);
  if (entry.server == nullptr) return false;  // crashed
  const store::SightingDb* db = entry.server->sightings();
  if (db == nullptr) return false;
  const store::SightingDb::Record* rec = db->find(oid);
  if (rec == nullptr) return false;
  out = *rec;
  return true;
}

void Deployment::tick_all(TimePoint now) {
  for (auto& [id, entry] : servers_) {
    if (entry.sharded != nullptr) {
      if (entry.mu != nullptr) {
        std::lock_guard<std::mutex> lock(*entry.mu);
        entry.sharded->tick(now);
      } else {
        entry.sharded->tick(now);  // threaded shards lock internally
      }
      continue;
    }
    if (entry.server == nullptr) continue;  // crashed node: nothing to sweep
    if (entry.mu != nullptr) {
      std::lock_guard<std::mutex> lock(*entry.mu);
      entry.server->tick(now);
    } else {
      entry.server->tick(now);
    }
  }
}

LocationServer::Stats Deployment::total_stats() const {
  LocationServer::Stats total;
  for (const auto& [id, entry] : servers_) {
    if (entry.sharded != nullptr) {
      total.add(entry.sharded->stats());
    } else if (entry.server != nullptr) {
      total.add(entry.server->stats());
    }
  }
  return total;
}

}  // namespace locs::core
