#include "core/deployment.hpp"

namespace locs::core {

Deployment::Deployment(net::Transport& net, Clock& clock, HierarchySpec spec)
    : Deployment(net, clock, std::move(spec), Config{}) {}

Deployment::Deployment(net::Transport& net, Clock& clock, HierarchySpec spec,
                       Config cfg)
    : net_(net), spec_(std::move(spec)) {
  for (const HierarchySpec::Node& node : spec_.nodes) {
    LocationServer::Options opts = cfg.server;
    if (cfg.options_fn) opts = cfg.options_fn(node.id, node.cfg, opts);

    Entry entry;
    const std::uint32_t shards =
        node.cfg.is_leaf() ? std::max(cfg.leaf_shards, node.leaf_shards) : 1;
    // A node-keyed visitor_db_factory cannot split a persistent visitorDB
    // across shards (each shard persists only its own objects); without a
    // shard-aware factory such a leaf stays a single reactor -- correctness
    // (recovery, §5) beats scaling. See Config::sharded_visitor_db_factory.
    const bool can_shard = !cfg.visitor_db_factory || cfg.sharded_visitor_db_factory;
    if (can_shard &&
        (shards > 1 || (cfg.force_leaf_sharding && node.cfg.is_leaf()))) {
      ShardedLocationServer::Options sopts;
      sopts.shards = shards;
      sopts.threaded = cfg.shard_threads;
      sopts.server = opts;
      ShardedLocationServer::ShardVisitorDbFactory vdb_factory;
      if (cfg.sharded_visitor_db_factory) {
        vdb_factory = [factory = cfg.sharded_visitor_db_factory,
                       id = node.id](std::uint32_t shard) {
          return factory(id, shard);
        };
      }
      entry.sharded = std::make_unique<ShardedLocationServer>(
          node.id, node.cfg, net, clock, sopts, std::move(vdb_factory),
          cfg.index_factory);
      ShardedLocationServer* server = entry.sharded.get();
      // Threaded shards serialize internally; inline shards piggyback on the
      // same handler lock unsharded servers use over UdpNetwork.
      if (cfg.lock_handlers && !cfg.shard_threads) {
        entry.mu = std::make_unique<std::mutex>();
      }
      std::mutex* mu = entry.mu.get();
      net.attach(node.id, [server, mu](const std::uint8_t* data, std::size_t len) {
        if (mu != nullptr) {
          std::lock_guard<std::mutex> lock(*mu);
          server->handle(data, len);
        } else {
          server->handle(data, len);
        }
      });
    } else {
      store::VisitorDb vdb;
      if (cfg.visitor_db_factory) vdb = cfg.visitor_db_factory(node.id);
      entry.server = std::make_unique<LocationServer>(
          node.id, node.cfg, net, clock, opts, std::move(vdb), cfg.index_factory);
      if (cfg.lock_handlers) entry.mu = std::make_unique<std::mutex>();
      LocationServer* server = entry.server.get();
      std::mutex* mu = entry.mu.get();
      net.attach(node.id, [server, mu](const std::uint8_t* data, std::size_t len) {
        if (mu != nullptr) {
          std::lock_guard<std::mutex> lock(*mu);
          server->handle(data, len);
        } else {
          server->handle(data, len);
        }
      });
    }
    servers_.emplace(node.id, std::move(entry));
  }
}

Deployment::~Deployment() {
  for (const auto& [id, entry] : servers_) net_.detach(id);
}

bool Deployment::find_sighting(NodeId id, ObjectId oid,
                               store::SightingDb::Record& out) const {
  const Entry& entry = servers_.at(id);
  if (entry.sharded != nullptr) return entry.sharded->find_sighting(oid, out);
  // Unsharded over UDP: the receive thread mutates the db under entry.mu,
  // so this cross-thread read must serialize against it too.
  std::unique_lock<std::mutex> lock;
  if (entry.mu != nullptr) lock = std::unique_lock<std::mutex>(*entry.mu);
  const store::SightingDb* db = entry.server->sightings();
  if (db == nullptr) return false;
  const store::SightingDb::Record* rec = db->find(oid);
  if (rec == nullptr) return false;
  out = *rec;
  return true;
}

void Deployment::tick_all(TimePoint now) {
  for (auto& [id, entry] : servers_) {
    if (entry.sharded != nullptr) {
      if (entry.mu != nullptr) {
        std::lock_guard<std::mutex> lock(*entry.mu);
        entry.sharded->tick(now);
      } else {
        entry.sharded->tick(now);  // threaded shards lock internally
      }
      continue;
    }
    if (entry.mu != nullptr) {
      std::lock_guard<std::mutex> lock(*entry.mu);
      entry.server->tick(now);
    } else {
      entry.server->tick(now);
    }
  }
}

LocationServer::Stats Deployment::total_stats() const {
  LocationServer::Stats total;
  for (const auto& [id, entry] : servers_) {
    if (entry.sharded != nullptr) {
      total.add(entry.sharded->stats());
    } else {
      total.add(entry.server->stats());
    }
  }
  return total;
}

}  // namespace locs::core
