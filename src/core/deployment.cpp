#include "core/deployment.hpp"

namespace locs::core {

Deployment::Deployment(net::Transport& net, Clock& clock, HierarchySpec spec)
    : Deployment(net, clock, std::move(spec), Config{}) {}

Deployment::Deployment(net::Transport& net, Clock& clock, HierarchySpec spec,
                       Config cfg)
    : net_(net), spec_(std::move(spec)) {
  for (const HierarchySpec::Node& node : spec_.nodes) {
    store::VisitorDb vdb;
    if (cfg.visitor_db_factory) vdb = cfg.visitor_db_factory(node.id);
    LocationServer::Options opts = cfg.server;
    if (cfg.options_fn) opts = cfg.options_fn(node.id, node.cfg, opts);
    Entry entry;
    entry.server = std::make_unique<LocationServer>(
        node.id, node.cfg, net, clock, opts, std::move(vdb), cfg.index_factory);
    if (cfg.lock_handlers) entry.mu = std::make_unique<std::mutex>();
    LocationServer* server = entry.server.get();
    std::mutex* mu = entry.mu.get();
    net.attach(node.id, [server, mu](const std::uint8_t* data, std::size_t len) {
      if (mu != nullptr) {
        std::lock_guard<std::mutex> lock(*mu);
        server->handle(data, len);
      } else {
        server->handle(data, len);
      }
    });
    servers_.emplace(node.id, std::move(entry));
  }
}

Deployment::~Deployment() {
  for (const auto& [id, entry] : servers_) net_.detach(id);
}

void Deployment::tick_all(TimePoint now) {
  for (auto& [id, entry] : servers_) {
    if (entry.mu != nullptr) {
      std::lock_guard<std::mutex> lock(*entry.mu);
      entry.server->tick(now);
    } else {
      entry.server->tick(now);
    }
  }
}

LocationServer::Stats Deployment::total_stats() const {
  LocationServer::Stats total;
  for (const auto& [id, entry] : servers_) {
    const LocationServer::Stats& s = entry.server->stats();
    total.msgs_handled += s.msgs_handled;
    total.msgs_sent += s.msgs_sent;
    total.decode_errors += s.decode_errors;
    total.registrations += s.registrations;
    total.registration_failures += s.registration_failures;
    total.updates_applied += s.updates_applied;
    total.updates_unknown += s.updates_unknown;
    total.handovers_initiated += s.handovers_initiated;
    total.handovers_accepted += s.handovers_accepted;
    total.handovers_direct += s.handovers_direct;
    total.pos_queries_served += s.pos_queries_served;
    total.pos_query_cache_hits += s.pos_query_cache_hits;
    total.agent_cache_hits += s.agent_cache_hits;
    total.range_direct += s.range_direct;
    total.range_sub_answered += s.range_sub_answered;
    total.nn_rings += s.nn_rings;
    total.sightings_expired += s.sightings_expired;
    total.pending_timeouts += s.pending_timeouts;
    total.refresh_requests += s.refresh_requests;
    total.events_fired += s.events_fired;
  }
  return total;
}

}  // namespace locs::core
