// Builders for location-server hierarchies.
//
// "The performance of the system is influenced by the height of the
// hierarchy, the fan-out of nodes and the size of the (leaf) service areas"
// (§4); grid() sweeps exactly these parameters (ablation A1). fig6() and
// table2() reproduce the paper's concrete topologies.
#pragma once

#include "core/service_area.hpp"
#include "geo/rect.hpp"

namespace locs::core {

class HierarchyBuilder {
 public:
  /// Uniform hierarchy over a rectangular root area: every non-leaf splits
  /// its rectangle into a fanout_x * fanout_y grid of children, `levels`
  /// levels below the root (levels = 0 -> a single server; the centralized
  /// baseline). Node ids are assigned breadth-first starting at `first_id`.
  static HierarchySpec grid(const geo::Rect& root_area, int fanout_x, int fanout_y,
                            int levels, std::uint32_t first_id = 1);

  /// The 7-server, 3-level hierarchy of Fig 6: root s1; children s2, s3;
  /// s2's children s4, s5; s3's children s6, s7 (left/right halves split
  /// into quarters). Ids 1..7 match the figure.
  static HierarchySpec fig6(const geo::Rect& root_area);

  /// The Table-2 test configuration (§7.2, Fig 8): one root (id 1) with four
  /// leaf children (ids 2..5), each responsible for a quarter of the
  /// root area (the paper used 1.5 km x 1.5 km).
  static HierarchySpec table2(const geo::Rect& root_area);

  /// Stamps every leaf of `spec` with a shard-count hint: the deployment
  /// then runs those leaves as ShardedLocationServers with `shards` reactors
  /// each (core/sharded_location_server.hpp). Non-leaf nodes are untouched
  /// -- only leaves absorb the update/query hot path worth sharding.
  static HierarchySpec with_leaf_shards(HierarchySpec spec, std::uint32_t shards);
};

}  // namespace locs::core
