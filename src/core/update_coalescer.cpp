#include "core/update_coalescer.hpp"

#include <algorithm>

namespace locs::core {

namespace wm = locs::wire;

UpdateCoalescer::UpdateCoalescer(NodeId self, net::Transport& net, Clock& clock,
                                 Options opts)
    : self_(self),
      net_(net),
      clock_(clock),
      opts_(opts),
      pool_(std::make_shared<net::BufferPool>(
          /*max_free=*/64,
          /*max_pooled_capacity=*/std::max<std::size_t>(
              net::BufferPool::kDefaultMaxPooledCapacity,
              2 * opts.max_bytes))) {
  if (opts_.max_batch == 0) opts_.max_batch = 1;
  net_.adopt_pool(pool_);
  net_.attach(self_, [this](const std::uint8_t* data, std::size_t len) {
    handle(data, len);
  });
}

UpdateCoalescer::~UpdateCoalescer() {
  flush_all();
  net_.detach(self_);
}

void UpdateCoalescer::enqueue(NodeId agent, const Sighting& s) {
  if (!agent.valid()) return;
  std::lock_guard<std::mutex> lock(mu_);
  Pending& p = pending_[agent];
  if (p.batch.empty()) p.oldest = clock_.now();
  p.batch.append(s);
  ++stats_.sightings_enqueued;
  if (p.batch.count >= opts_.max_batch) {
    ++stats_.flushes_size;
    flush_locked(agent, p);
  } else if (p.batch.payload_bytes() >= opts_.max_bytes) {
    ++stats_.flushes_bytes;
    flush_locked(agent, p);
  }
}

void UpdateCoalescer::flush_locked(NodeId agent, Pending& p) {
  if (p.batch.empty()) return;
  ++stats_.batches_sent;
  net::send_message(net_, *pool_, self_, agent, p.batch);
  p.batch.clear();  // count = 0; packed keeps its capacity
}

void UpdateCoalescer::tick(TimePoint now) {
  std::lock_guard<std::mutex> lock(mu_);
  // Send-burst bracket: a deadline sweep can flush one batch PER AGENT, so
  // cork the sender and let the transport coalesce those datagrams into
  // sendmmsg batches (no-op over SimNetwork; the enqueue-triggered single
  // flush in enqueue() stays inline, keeping per-batch latency unchanged).
  net_.cork(self_);
  for (auto& [agent, p] : pending_) {
    if (p.batch.empty() || now - p.oldest < opts_.max_delay) continue;
    ++stats_.flushes_deadline;
    flush_locked(agent, p);
  }
  net_.uncork(self_);
  net_.flush(self_);
}

void UpdateCoalescer::flush_all() {
  std::lock_guard<std::mutex> lock(mu_);
  net_.cork(self_);  // one per-agent batch each -- same bracket as tick()
  for (auto& [agent, p] : pending_) {
    if (p.batch.empty()) continue;
    ++stats_.flushes_forced;
    flush_locked(agent, p);
  }
  net_.uncork(self_);
  net_.flush(self_);
}

UpdateCoalescer::Stats UpdateCoalescer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t UpdateCoalescer::pending_sightings() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [agent, p] : pending_) n += p.batch.count;
  return n;
}

void UpdateCoalescer::handle(const std::uint8_t* data, std::size_t len) {
  // Only the node's single receive context calls handle(), so the scratch
  // envelope needs no lock; callbacks run WITHOUT mu_ (see header).
  if (!wm::decode_envelope_into(rx_scratch_, data, len).is_ok()) return;
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, wm::BatchedUpdateAck>) {
          wm::BatchedUpdateAck::Cursor cur = m.acks();
          ObjectId oid;
          double acc = 0.0;
          std::uint64_t n = 0;
          while (cur.next(oid, acc)) {
            ++n;
            if (on_ack_) on_ack_(oid, acc);
          }
          std::lock_guard<std::mutex> lock(mu_);
          stats_.acks_received += n;
        } else if constexpr (std::is_same_v<T, wm::AgentChanged>) {
          if (on_agent_changed_) {
            on_agent_changed_(m.oid, m.new_agent, m.offered_acc);
          }
        } else if constexpr (std::is_same_v<T, wm::BatchedRefreshReq>) {
          if (on_refresh_) {
            wm::BatchedRefreshReq::Cursor cur = m.oids();
            ObjectId oid;
            while (cur.next(oid)) on_refresh_(oid);
          }
        }
      },
      rx_scratch_.msg);
}

}  // namespace locs::core
