#include "core/hierarchy_builder.hpp"

#include <cassert>

namespace locs::core {

namespace {

geo::Rect sub_rect(const geo::Rect& r, int fx, int fy, int ix, int iy) {
  const double w = r.width() / fx;
  const double h = r.height() / fy;
  return geo::Rect{{r.min.x + w * ix, r.min.y + h * iy},
                   {r.min.x + w * (ix + 1), r.min.y + h * (iy + 1)}};
}

}  // namespace

HierarchySpec HierarchyBuilder::grid(const geo::Rect& root_area, int fanout_x,
                                     int fanout_y, int levels,
                                     std::uint32_t first_id) {
  assert(fanout_x >= 1 && fanout_y >= 1 && levels >= 0);
  HierarchySpec spec;
  std::uint32_t next_id = first_id;

  struct Pending {
    NodeId id;
    geo::Rect area;
    NodeId parent;
    int depth;
  };
  std::vector<Pending> queue;
  const NodeId root_id{next_id++};
  queue.push_back({root_id, root_area, kNoNode, 0});
  spec.root = root_id;

  // Breadth-first so sibling ids are contiguous (nicer traces).
  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    const Pending cur = queue[qi];
    HierarchySpec::Node node;
    node.id = cur.id;
    node.cfg.sa = geo::Polygon::from_rect(cur.area);
    node.cfg.parent = cur.parent;
    if (cur.depth < levels) {
      for (int iy = 0; iy < fanout_y; ++iy) {
        for (int ix = 0; ix < fanout_x; ++ix) {
          const NodeId child_id{next_id++};
          const geo::Rect child_area = sub_rect(cur.area, fanout_x, fanout_y, ix, iy);
          node.cfg.children.push_back(
              {child_id, geo::Polygon::from_rect(child_area)});
          queue.push_back({child_id, child_area, cur.id, cur.depth + 1});
        }
      }
    }
    spec.nodes.push_back(std::move(node));
  }
  return spec;
}

HierarchySpec HierarchyBuilder::fig6(const geo::Rect& root_area) {
  HierarchySpec spec;
  spec.root = NodeId{1};
  const double mid_x = (root_area.min.x + root_area.max.x) / 2;
  const double mid_y = (root_area.min.y + root_area.max.y) / 2;
  const geo::Rect left{root_area.min, {mid_x, root_area.max.y}};
  const geo::Rect right{{mid_x, root_area.min.y}, root_area.max};
  const geo::Rect s4{left.min, {left.max.x, mid_y}};                       // SW of left
  const geo::Rect s5{{left.min.x, mid_y}, left.max};                       // NW of left
  const geo::Rect s6{right.min, {right.max.x, mid_y}};                     // SE
  const geo::Rect s7{{right.min.x, mid_y}, right.max};                     // NE

  const auto poly = [](const geo::Rect& r) { return geo::Polygon::from_rect(r); };

  HierarchySpec::Node s1{NodeId{1}, {poly(root_area), kNoNode,
                                     {{NodeId{2}, poly(left)}, {NodeId{3}, poly(right)}}}};
  HierarchySpec::Node n2{NodeId{2}, {poly(left), NodeId{1},
                                     {{NodeId{4}, poly(s4)}, {NodeId{5}, poly(s5)}}}};
  HierarchySpec::Node n3{NodeId{3}, {poly(right), NodeId{1},
                                     {{NodeId{6}, poly(s6)}, {NodeId{7}, poly(s7)}}}};
  HierarchySpec::Node n4{NodeId{4}, {poly(s4), NodeId{2}, {}}};
  HierarchySpec::Node n5{NodeId{5}, {poly(s5), NodeId{2}, {}}};
  HierarchySpec::Node n6{NodeId{6}, {poly(s6), NodeId{3}, {}}};
  HierarchySpec::Node n7{NodeId{7}, {poly(s7), NodeId{3}, {}}};
  spec.nodes = {s1, n2, n3, n4, n5, n6, n7};
  return spec;
}

HierarchySpec HierarchyBuilder::table2(const geo::Rect& root_area) {
  return grid(root_area, 2, 2, 1);
}

HierarchySpec HierarchyBuilder::with_leaf_shards(HierarchySpec spec,
                                                 std::uint32_t shards) {
  assert(shards >= 1);
  for (HierarchySpec::Node& node : spec.nodes) {
    if (node.cfg.is_leaf()) node.leaf_shards = shards;
  }
  return spec;
}

}  // namespace locs::core
