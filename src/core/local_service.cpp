#include "core/local_service.hpp"

namespace locs::core {

namespace {
/// Client node ids live far above server ids.
constexpr std::uint32_t kFirstClientNode = 1u << 20;
}  // namespace

LocalLocationService::LocalLocationService(Config cfg)
    : cfg_(cfg), net_(cfg.network), next_node_id_(kFirstClientNode) {
  // Field assignment, not positional aggregate init: Deployment::Config
  // grows fields (sharding, factories) and positions would silently shift.
  Deployment::Config dep_cfg;
  dep_cfg.server = cfg_.server;
  deployment_ = std::make_unique<Deployment>(
      net_, net_.clock(),
      HierarchyBuilder::grid(cfg_.area, cfg_.fanout_x, cfg_.fanout_y, cfg_.levels),
      dep_cfg);
  query_client_ = std::make_unique<QueryClient>(alloc_node_id(), net_, net_.clock());
  if (cfg_.coalesce_updates) {
    coalescer_ = std::make_unique<UpdateCoalescer>(alloc_node_id(), net_,
                                                   net_.clock(), cfg_.coalescing);
    // The leaf replies to the coalescer's node; fan acks and agent changes
    // back out to the owning TrackedObjects.
    coalescer_->set_on_ack([this](ObjectId oid, double acc) {
      const auto it = objects_.find(oid);
      if (it != objects_.end()) it->second->apply_update_ack(acc);
    });
    coalescer_->set_on_agent_changed(
        [this](ObjectId oid, NodeId new_agent, double acc) {
          const auto it = objects_.find(oid);
          if (it != objects_.end()) it->second->apply_agent_changed(new_agent, acc);
        });
  }
}

void LocalLocationService::run() { net_.run_until_idle(); }

Result<double> LocalLocationService::register_object(ObjectId oid, geo::Point pos,
                                                     double sensor_acc,
                                                     AccuracyRange range) {
  const NodeId entry = deployment_->entry_leaf_for(pos);
  if (!entry.valid()) {
    return Status(StatusCode::kOutOfRange, "position outside the service area");
  }
  auto it = objects_.find(oid);
  if (it == objects_.end()) {
    auto obj = std::make_unique<TrackedObject>(alloc_node_id(), oid, net_,
                                               net_.clock(), cfg_.object);
    if (coalescer_) {
      obj->set_update_sink([this](NodeId agent, const Sighting& s) {
        coalescer_->enqueue(agent, s);
      });
    }
    it = objects_.emplace(oid, std::move(obj)).first;
  }
  TrackedObject& obj = *it->second;
  obj.start_register(entry, pos, sensor_acc, range);
  run();
  if (obj.state() == TrackedObject::State::kTracked) return obj.offered_acc();
  const double best = obj.register_failed_acc();
  objects_.erase(it);
  if (best < 0.0) {
    return Status(StatusCode::kOutOfRange, "position outside the service area");
  }
  return Status(StatusCode::kFailedPrecondition,
                "requested accuracy unavailable; best offer " +
                    std::to_string(best) + " m");
}

bool LocalLocationService::feed_position(ObjectId oid, geo::Point pos) {
  const auto it = objects_.find(oid);
  if (it == objects_.end()) return false;
  const bool sent = it->second->feed_position(pos);
  if (sent) run();
  if (it->second->state() == TrackedObject::State::kDeregistered) {
    objects_.erase(it);
  }
  return sent;
}

Result<double> LocalLocationService::change_accuracy(ObjectId oid,
                                                     AccuracyRange range) {
  const auto it = objects_.find(oid);
  if (it == objects_.end()) {
    return Status(StatusCode::kNotFound, "object not tracked");
  }
  it->second->request_change_acc(range);
  run();
  return it->second->offered_acc();
}

void LocalLocationService::deregister(ObjectId oid) {
  const auto it = objects_.find(oid);
  if (it == objects_.end()) return;
  it->second->deregister();
  run();
  objects_.erase(it);
}

std::optional<LocationDescriptor> LocalLocationService::position(ObjectId oid) {
  // Entry server: the agent-side leaf of the querying client is arbitrary
  // here; use the leaf responsible for the area the object registered in if
  // known, else the first leaf.
  NodeId entry = kNoNode;
  const auto it = objects_.find(oid);
  if (it != objects_.end()) entry = it->second->agent();
  if (!entry.valid()) entry = deployment_->leaf_ids().front();
  query_client_->set_entry(entry);
  const std::uint64_t id = query_client_->send_pos_query(oid);
  run();
  const auto res = query_client_->take_pos(id);
  if (!res || !res->found) return std::nullopt;
  return res->ld;
}

std::vector<ObjectResult> LocalLocationService::range_query(const geo::Polygon& area,
                                                            double req_acc,
                                                            double req_overlap) {
  NodeId entry = deployment_->entry_leaf_for(area.bounding_box().center());
  if (!entry.valid()) entry = deployment_->leaf_ids().front();
  query_client_->set_entry(entry);
  const std::uint64_t id = query_client_->send_range_query(area, req_acc, req_overlap);
  run();
  auto res = query_client_->take_range(id);
  if (!res) return {};
  return std::move(res->objects);
}

QueryClient::NNResult LocalLocationService::neighbor_query(geo::Point p,
                                                           double req_acc,
                                                           double near_qual) {
  NodeId entry = deployment_->entry_leaf_for(p);
  if (!entry.valid()) entry = deployment_->leaf_ids().front();
  query_client_->set_entry(entry);
  const std::uint64_t id = query_client_->send_nn_query(p, req_acc, near_qual);
  run();
  auto res = query_client_->take_nn(id);
  return res ? std::move(*res) : QueryClient::NNResult{};
}

std::uint64_t LocalLocationService::subscribe_area_count(const geo::Polygon& area,
                                                         std::uint32_t threshold) {
  NodeId entry = deployment_->entry_leaf_for(area.bounding_box().center());
  if (!entry.valid()) entry = deployment_->leaf_ids().front();
  query_client_->set_entry(entry);
  const std::uint64_t sub = query_client_->subscribe_area_count(area, threshold);
  run();
  return sub;
}

std::uint64_t LocalLocationService::subscribe_proximity(ObjectId a, ObjectId b,
                                                        double dist) {
  query_client_->set_entry(deployment_->leaf_ids().front());
  const std::uint64_t sub = query_client_->subscribe_proximity(a, b, dist);
  run();
  return sub;
}

void LocalLocationService::unsubscribe(std::uint64_t sub_id) {
  query_client_->unsubscribe(sub_id);
  run();
}

std::vector<wire::EventNotify> LocalLocationService::poll_events() {
  run();
  return query_client_->take_events();
}

void LocalLocationService::advance_time(Duration d) {
  // Advance in slices so expiry and timeout sweeps interleave with message
  // deliveries roughly the way wall-clock time would.
  constexpr int kSlices = 10;
  const Duration slice = d / kSlices;
  for (int i = 0; i < kSlices; ++i) {
    net_.clock().advance(slice);
    if (coalescer_) coalescer_->tick(net_.now());
    deployment_->tick_all(net_.now());
    run();
  }
}

void LocalLocationService::flush_updates() {
  if (!coalescer_) return;
  coalescer_->flush_all();
  run();
}

bool LocalLocationService::is_tracked(ObjectId oid) const {
  const auto it = objects_.find(oid);
  return it != objects_.end() && it->second->tracked();
}

NodeId LocalLocationService::agent_of(ObjectId oid) const {
  const auto it = objects_.find(oid);
  return it == objects_.end() ? kNoNode : it->second->agent();
}

double LocalLocationService::offered_acc_of(ObjectId oid) const {
  const auto it = objects_.find(oid);
  return it == objects_.end() ? 0.0 : it->second->offered_acc();
}

}  // namespace locs::core
