// The location server -- one node of the hierarchical architecture (§4-§6).
//
// A LocationServer is a single-threaded message reactor: handle() consumes
// one datagram and may emit datagrams through the Transport. The paper's
// blocking "receive ..." steps (Alg 6-2/6-3/6-5) become pending-operation
// tables swept by tick(). The same code runs over the deterministic
// SimNetwork and over real UDP.
//
// Implemented behaviour:
//  * Algorithm 6-1  registration (incl. createPath) with accuracy
//    negotiation [desAcc, minAcc] -> offeredAcc,
//  * Algorithm 6-2  position updates, soft-state TTL extension,
//  * Algorithm 6-3  handover with hop-by-hop forwarding-path repair and
//    automatic deregistration when an object leaves the root service area,
//  * Algorithm 6-4  position queries (entry-server collection),
//  * Algorithm 6-5  range queries with Enlarge(area, reqAcc) routing and
//    covered-area completion accounting,
//  * nearest-neighbor queries (§3.2 semantics) via an expanding-ring search,
//  * the three §6.5 caches (leaf-area / object-agent / position descriptor),
//  * soft-state expiry and removePath pruning (§5),
//  * crash recovery: persistent visitorDB replay + refreshReq (§5),
//  * changeAcc / notifyAvailAcc (§3.1),
//  * the event mechanism sketched in §1/§8 (area-count and proximity
//    predicates with leaf-side membership deltas).
//
// Fault tolerance (recovery-protocol invariants; wire/messages.hpp has the
// framing side):
//  * failure detection -- with Options::heartbeat_interval > 0 a non-leaf
//    parent probes each child every interval (wire::Heartbeat) and counts
//    consecutive unanswered probes; at heartbeat_miss_threshold the child is
//    SUSPECT. Any HeartbeatAck (or a RecoveryHello) clears suspicion -- a
//    reordered stale ack is still liveness evidence. Disabled by default
//    (interval 0) so no-fault message traces stay bit-identical to seeds.
//  * routing around suspects -- a query that would be forwarded into a
//    suspect subtree is answered ON BEHALF of that subtree instead of timing
//    out: position queries get an immediate not-found, range/NN routing
//    credits the suspect child's covered area with zero results
//    (availability over completeness; the soft state below the crash is
//    being rebuilt by refreshes anyway). Updates/handovers are NOT
//    short-circuited -- their loss is already handled by client retry.
//  * batched soft-state recovery -- a restarted leaf announces itself with
//    RecoveryHello; the parent answers with BatchedRefreshReq sweeps listing
//    every object it still forwards to that leaf; the leaf intersects that
//    list with its (persisted) leaf records and sweeps BatchedRefreshReq
//    datagrams to the registering instances -- one datagram per client chunk
//    instead of one RefreshReq per object. The resulting client updates
//    rebuild the volatile SightingDb (batch path: SightingDb::apply_batch).
//    Objects whose leaf records were ALSO lost (in-memory visitorDB) cannot
//    be reached this way; with Options::nack_unknown_updates their next
//    update is answered with AgentChanged{kNoNode} and clients configured
//    with TrackedObject::Options::reregister_on_agent_loss re-register,
//    rebuilding VisitorDb, forwarding path and sighting from scratch.
//
// Sharding (core/sharded_location_server.hpp): a heavily loaded leaf can run
// as N LocationServer instances -- one per shard -- behind a single NodeId.
// The shard-routing invariant is:
//
//   * every OBJECT-KEYED message (register, update, handover and its
//     response, per-object queries, changeAcc, deregister) is handled by the
//     shard that owns hash(ObjectId) % N, which keeps the object's visitor
//     record and sighting slice; a handover therefore stays INTRA-LEAF only
//     in the sense that the object's owning shard never changes while its
//     agent leaf does not change -- the hash is node-independent, so the new
//     agent's owning shard is recomputed from the same ObjectId;
//   * every AREA-KEYED message (range query, NN probe, event subscribe /
//     install / delta) is handled by shard 0, the coordinator shard, whose
//     query paths read a SightingsView spanning all slices -- so the leaf
//     emits exactly one sub-result per probe, as an unsharded leaf would;
//   * req-ids are striped per shard (shard index in bits 32..39 of the
//     counter), so concurrent shards never emit colliding ids upstream.
//
// With N = 1 all three rules degenerate to the unsharded server and the
// message trace is bit-identical. Shard-local caches (§6.5) are NOT merged:
// with caches enabled, message counts may differ from an unsharded run.
//
// Zero-materialization query merge (read-path invariants; wire/messages.hpp
// has the framing side):
//  * sub-results never decode into owned vectors. A version-2
//    RangeQuerySubRes/NNProbeSubRes datagram is consumed through
//    wire::SubResView straight off the receive buffer: NN candidates stream
//    item-by-item into the pending ring's candidate map; range sub-results
//    PIN the datagram (net::Datagram::take -- zero-copy on both transports)
//    and the pending operation holds just the packed byte range until the
//    merge completes. Legacy version-1 datagrams fall back to the full
//    decode path and are re-framed by one copy.
//  * the final RangeQueryRes is written DIRECTLY into an outgoing pooled
//    envelope: kept item byte ranges are memcpy'd from the pinned
//    sub-result buffers, deduplicated on emit (first occurrence of an
//    ObjectId wins, in arrival order -- identical to the historical
//    concatenation whenever leaf areas tile, which they do by
//    construction), and the pins are released as the segments drop.
//  * leaf-local answers stream from the store into the packed wire buffer
//    through the SightingDb/SightingsView *_emit sinks -- no intermediate
//    result vector exists anywhere between the spatial index and the
//    socket.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/caches.hpp"
#include "core/service_area.hpp"
#include "core/types.hpp"
#include "net/transport.hpp"
#include "spatial/spatial_index.hpp"
#include "store/sighting_db.hpp"
#include "store/sighting_view.hpp"
#include "store/visitor_db.hpp"
#include "util/clock.hpp"
#include "util/oid_set.hpp"
#include "wire/messages.hpp"

namespace locs::core {

class LocationServer {
 public:
  struct Options {
    /// Best (smallest) accuracy this server's sensor infrastructure can
    /// manage -- Alg 6-1 line 3. Registration fails if this exceeds minAcc.
    double min_supported_acc = 5.0;
    /// Maximum object speed assumed when aging cached descriptors (m/s).
    double default_max_speed = 30.0;
    /// Soft-state TTL for sighting records (§5).
    Duration sighting_ttl = seconds(120);
    /// Deadline for distributed operations before they complete partially.
    Duration pending_timeout = seconds(5);
    /// §6.5 caches (the paper's prototype ran without them; benches toggle).
    bool enable_leaf_area_cache = false;
    bool enable_agent_cache = false;
    bool enable_position_cache = false;
    /// Worst aged accuracy a position-cache hit may report.
    double position_cache_max_acc = 200.0;
    /// Attach (leaf, service-area) piggybacks to responses for peers' caches.
    bool piggyback_origin = true;
    /// Sides of the polygon circumscribing NN probe circles.
    int nn_probe_sides = 32;
    /// Give up expanding NN rings beyond this radius (empty database guard).
    double nn_max_radius = 1e7;
    /// Compact the persistent visitorDB log once it exceeds this many
    /// mutation records (bounds recovery time; §5).
    std::uint64_t visitor_compact_threshold = 1 << 18;
    /// Failure detection: probe interval for wire::Heartbeat sent to every
    /// child from tick(). 0 disables the detector entirely (default; keeps
    /// no-fault traces bit-identical to heartbeat-free builds).
    Duration heartbeat_interval = 0;
    /// Consecutive unanswered probes before a child is marked suspect.
    int heartbeat_miss_threshold = 3;
    /// Max ObjectIds packed into one BatchedRefreshReq datagram (recovery
    /// sweeps are chunked per client node; keeps sweeps MTU-friendly).
    std::size_t refresh_batch_max = 256;
    /// Answer updates for unknown objects with AgentChanged{kNoNode} so a
    /// client that outlived a total leaf-state loss (in-memory visitorDB)
    /// can re-register instead of retrying blindly. Off by default: in
    /// normal operation an unknown update is a transient handover race.
    bool nack_unknown_updates = false;
    /// Coalesce server-to-server CreatePath/RemovePath bursts bound for the
    /// parent into wire::BatchedPathUpdate datagrams (flushed at
    /// path_batch_max entries or by the tick() deadline sweep; entry order
    /// is preserved, so create/remove sequences replay in order). Off by
    /// default: unbatched traces stay bit-identical.
    bool coalesce_paths = false;
    /// Flush a pending path batch at this many entries.
    std::size_t path_batch_max = 64;
    /// Deadline flush: the oldest buffered path entry waits at most this
    /// long (enforced by tick(); bounds the forwarding-path staleness that
    /// coalescing can add).
    Duration path_batch_delay = milliseconds(2);
  };

  struct Stats {
    std::uint64_t msgs_handled = 0;
    std::uint64_t msgs_sent = 0;
    std::uint64_t decode_errors = 0;
    std::uint64_t registrations = 0;
    std::uint64_t registration_failures = 0;
    std::uint64_t updates_applied = 0;
    std::uint64_t updates_unknown = 0;
    std::uint64_t update_batches = 0;  // BatchedUpdateReq datagrams handled
    std::uint64_t handovers_initiated = 0;
    std::uint64_t handovers_accepted = 0;  // this server became the new agent
    std::uint64_t handovers_direct = 0;    // via leaf-area cache shortcut
    std::uint64_t pos_queries_served = 0;  // answered from this entry server
    std::uint64_t pos_query_cache_hits = 0;
    std::uint64_t agent_cache_hits = 0;
    std::uint64_t range_direct = 0;  // range served via leaf-area cache
    std::uint64_t range_sub_answered = 0;
    std::uint64_t nn_rings = 0;
    std::uint64_t sightings_expired = 0;
    std::uint64_t pending_timeouts = 0;
    std::uint64_t refresh_requests = 0;
    std::uint64_t events_fired = 0;
    std::uint64_t heartbeats_sent = 0;
    std::uint64_t children_suspected = 0;    // suspect transitions observed
    std::uint64_t suspect_short_circuits = 0;  // queries answered for suspects
    std::uint64_t recovery_hellos = 0;       // RecoveryHello received (parent)
    std::uint64_t refresh_batches_sent = 0;  // BatchedRefreshReq datagrams
    std::uint64_t path_batches_sent = 0;     // BatchedPathUpdate datagrams
    std::uint64_t sub_res_pinned = 0;    // sub-results merged without a copy
    std::uint64_t sub_res_copied = 0;    // sub-results merged via copy fallback
    std::uint64_t merge_dedup_dropped = 0;  // duplicate results dropped on emit
    std::uint64_t bucket_migrations = 0;    // BucketMigrate datagrams applied
    std::uint64_t objects_migrated_in = 0;  // visitors installed by migration
    std::uint64_t objects_migrated_out = 0;  // visitors extracted for migration
    std::uint64_t tee_datagrams_sent = 0;   // ReplicaTee datagrams to standby
    std::uint64_t tee_entries_applied = 0;  // tee entries mirrored (replica)
    std::uint64_t standby_promotions = 0;   // StandbyPromote handled (replica)
    std::uint64_t standby_demotions = 0;    // StandbyDemote handled (replica)
    std::uint64_t standbys_engaged = 0;     // suspicions routed to a standby
    std::uint64_t standby_routed_queries = 0;  // queries re-routed to standbys

    /// Accumulates `other` into this record (deployment / shard aggregation).
    void add(const Stats& other);
  };

  /// Fan-in hook for sighting presence changes; see configure_shard.
  using SightingEventHook = std::function<void(ObjectId, bool present, geo::Point)>;

  /// Result of one client-visible operation, delivered to the node that
  /// issued the request (see client.hpp for the client side).
  LocationServer(NodeId self, ConfigRecord cfg, net::Transport& net, Clock& clock,
                 Options opts, store::VisitorDb visitor_db = {},
                 spatial::IndexFactory index_factory = nullptr);

  /// Default options.
  LocationServer(NodeId self, ConfigRecord cfg, net::Transport& net, Clock& clock);

  LocationServer(const LocationServer&) = delete;
  LocationServer& operator=(const LocationServer&) = delete;

  /// Transport entry point: decode + dispatch one datagram. Packed query
  /// sub-results take the zero-materialization view path (may pin the
  /// datagram; see the read-path invariants above); everything else goes
  /// through the scratch-envelope decode.
  void handle(const net::Datagram& dg);

  /// Borrow-only convenience overload (tests, synthesized datagrams):
  /// identical dispatch, but a pin degrades to a copy.
  void handle(const std::uint8_t* data, std::size_t len) {
    handle(net::Datagram(data, len));
  }

  /// Periodic maintenance: soft-state expiry, pending-operation timeouts.
  void tick(TimePoint now);

  /// Recovery hook (§5): after constructing the server from a replayed
  /// persistent visitorDB, asks every leaf visitor whose sighting is missing
  /// for a position refresh -- batched per registering instance
  /// (wire::BatchedRefreshReq; one datagram per client chunk).
  void request_refresh_all();

  /// Crash-restart announcement (fault subsystem): a restarted leaf sends
  /// RecoveryHello to its parent, which answers with the BatchedRefreshReq
  /// sweep of objects it still forwards here (see the header invariants). A
  /// root leaf (single-server hierarchy) has no parent and sweeps locally.
  void announce_recovery();

  /// True while the failure detector considers `child` crashed/unreachable.
  bool child_suspect(NodeId child) const;

  // -- hot-standby replication wiring (Deployment::Config::leaf_standby) --
  //
  // Replication invariants (wire/messages.hpp has the framing side):
  //  * primary role -- a leaf with a standby tees every accepted sighting
  //    mutation (upsert / remove / accuracy change, with the ORIGINAL
  //    absolute expiry) into one wire::ReplicaTee per handled datagram/tick
  //    (flush_tee), so replication costs ~1 extra datagram per update batch.
  //  * replica role -- tee entries apply with insert-or-update semantics IN
  //    BATCH ORDER, reproducing the primary's exact spatial-index mutation
  //    sequence; that is what makes a promoted standby's range/NN answers
  //    byte-equal to the unfaulted primary's. The passive replica never
  //    fires events, sends paths/acks, or expires its mirror (removals
  //    arrive via the tee).
  //  * parent routing -- when the failure detector trips for a child with a
  //    registered standby, the parent engages it: queries that would hit the
  //    PR 4 zero-result short-circuit are forwarded to the standby instead,
  //    and a StandbyPromote tells the replica to fan AgentChanged at its
  //    mirrored visitors. Liveness evidence (ack / RecoveryHello) disengages
  //    and demotes; the primary rebuilds via the RecoveryHello sweep and the
  //    tee re-mirrors the standby. All of this is inert by default -- with
  //    no standby registered, traces stay bit-identical.

  /// Primary role: tee accepted sighting mutations to this replica NodeId.
  void set_standby(NodeId standby) { standby_ = standby; }
  /// Replica role: mirror tee datagrams arriving from this primary NodeId.
  void set_standby_role(NodeId primary) { standby_primary_ = primary; }
  /// Replica role: promoted and answering for the primary right now.
  bool standby_active() const { return standby_active_; }
  /// Parent routing: remember `standby` as the failover target for `child`.
  void set_child_standby(NodeId child, NodeId standby);
  /// Parent routing: the engaged standby for a suspect child (kNoNode when
  /// the child has no standby or the standby is not engaged).
  NodeId standby_for(NodeId child) const;

  /// Wires this server as one shard of a ShardedLocationServer (see the
  /// header comment for the routing invariant). `send_pool` replaces the
  /// transport's shared pool for outgoing messages; `query_view` (shard 0
  /// only) replaces the own-slice view on the area-query paths; `hook`
  /// (shards > 0) redirects sighting presence changes to the coordinator
  /// shard's event machinery instead of the (empty) local one. Also stripes
  /// the req-id counter by shard index. Call before any traffic.
  void configure_shard(std::uint32_t shard_index, net::BufferPool* send_pool,
                       const store::SightingsView* query_view,
                       SightingEventHook hook);

  /// Shares the §6.5 caches across the shard reactors of one leaf: every
  /// shard consults the SAME cache set (owned by the ShardedLocationServer),
  /// so cache hit patterns -- and the message counts they produce -- match
  /// an unsharded leaf. `mu` serializes cross-thread access in threaded
  /// mode; inline SimNetwork execution passes null (one datagram at a time).
  /// Call before any traffic. All three cache pointers must be non-null
  /// (all-or-nothing -- a partial set is ignored); `mu` may be null.
  void share_caches(LeafAreaCache* leaf, ObjectAgentCache* agent,
                    PositionCache* position, std::mutex* mu);

  /// Routes every outgoing message through a dedicated transmit channel
  /// (net::Sender) instead of Transport::send -- the per-shard SO_REUSEPORT
  /// socket + ring wiring (ShardedLocationServer::open_tx_senders), which
  /// takes the shared transport completely off this reactor's send path.
  /// The caller owns the channel and must keep it alive for the server's
  /// lifetime; null restores the default path. Call before any traffic.
  void set_tx_sender(net::Sender* sender) { tx_sender_ = sender; }

  /// Runs the leaf event predicates for an externally observed sighting
  /// change (fan-in from sibling shards; no-op outside sharded setups).
  void apply_sighting_event(ObjectId oid, bool present, geo::Point pos);

  /// Donor side of intra-leaf bucket migration (skew rebalancing): appends
  /// one wire::BucketMigrate entry per leaf visitor matched by `pred` --
  /// carrying the ORIGINAL soft-state expiry -- then drops the local
  /// records WITHOUT firing presence events or pruning forwarding paths
  /// (the object never leaves this leaf NodeId; only the owning shard
  /// slice changes). Visitors with a handover in flight are skipped: their
  /// state is about to leave the leaf through the handover protocol.
  /// Returns the number of visitors extracted. Extraction order is sorted
  /// by ObjectId so migration datagrams are bit-reproducible across runs.
  std::size_t extract_for_migration(const std::function<bool(ObjectId)>& pred,
                                    wire::BucketMigrate& out);

  /// Lock-free count of installed leaf predicates; sibling shards use it to
  /// skip the event fan-in entirely on the (hot) update path.
  std::size_t leaf_event_count() const {
    return leaf_pred_count_.load(std::memory_order_relaxed);
  }

  /// Mutable slice access for shard wiring (SightingDb::set_slice_lock).
  store::SightingDb* sightings_mutable() {
    return sightings_ ? &*sightings_ : nullptr;
  }

  NodeId id() const { return self_; }
  const ConfigRecord& config() const { return cfg_; }
  const Stats& stats() const { return stats_; }
  const store::VisitorDb& visitors() const { return visitor_db_; }
  const store::SightingDb* sightings() const {
    return sightings_ ? &*sightings_ : nullptr;
  }
  const Options& options() const { return opts_; }
  const LeafAreaCache& leaf_area_cache() const { return *leaf_cache_; }
  const ObjectAgentCache& agent_cache() const { return *agent_cache_; }

 private:
  // -- pending distributed operations (the paper's blocking "receive ..."
  //    steps become continuation state swept by tick()) --
  struct PendingNN {
    NodeId client;
    std::uint64_t client_req_id;
    geo::Point p;
    double req_acc = 0.0;
    double near_qual = 0.0;
    double radius = 0.0;
    bool final_ring = false;  // radius already covers d* + nearQual
    double target = 0.0;
    double covered = 0.0;
    // Flat candidate map (util/oid_set.hpp): streaming sub-result merge
    // with zero allocations at working size; retired maps recycle through
    // nn_map_pool_ with their slot arrays intact.
    util::OidMap<LocationDescriptor> candidates;
    TimePoint deadline = 0;
  };

  // -- message handlers (one per protocol message) --
  void on_register_req(NodeId src, const wire::RegisterReq& m);
  void on_create_path(NodeId src, const wire::CreatePath& m);
  void on_remove_path(NodeId src, const wire::RemovePath& m);
  void on_batched_path_update(NodeId src, const wire::BatchedPathUpdate& m);
  void on_update_req(NodeId src, const wire::UpdateReq& m);
  void on_batched_update_req(NodeId src, const wire::BatchedUpdateReq& m);
  void on_handover_req(NodeId src, wire::HandoverReq m);
  void on_handover_res(NodeId src, const wire::HandoverRes& m);
  void on_pos_query_req(NodeId src, const wire::PosQueryReq& m);
  void on_pos_query_fwd(NodeId src, const wire::PosQueryFwd& m);
  void on_pos_query_res(NodeId src, const wire::PosQueryRes& m);
  void on_range_query_req(NodeId src, const wire::RangeQueryReq& m);
  void on_range_query_fwd(NodeId src, const wire::RangeQueryFwd& m);
  void on_range_query_sub_res(NodeId src, const wire::RangeQuerySubRes& m);
  void on_nn_query_req(NodeId src, const wire::NNQueryReq& m);
  void on_nn_probe_fwd(NodeId src, const wire::NNProbeFwd& m);
  void on_nn_probe_sub_res(NodeId src, const wire::NNProbeSubRes& m);
  void on_change_acc_req(NodeId src, const wire::ChangeAccReq& m);
  void on_deregister_req(NodeId src, const wire::DeregisterReq& m);
  void on_event_subscribe(NodeId src, const wire::EventSubscribe& m);
  void on_event_install(NodeId src, const wire::EventInstall& m);
  void on_event_delta(NodeId src, const wire::EventDelta& m);
  void on_event_unsubscribe(NodeId src, const wire::EventUnsubscribe& m);
  void on_heartbeat(NodeId src, const wire::Heartbeat& m);
  void on_heartbeat_ack(NodeId src, const wire::HeartbeatAck& m);
  void on_recovery_hello(NodeId src, const wire::RecoveryHello& m);
  void on_batched_refresh_req(NodeId src, const wire::BatchedRefreshReq& m);
  void on_bucket_migrate(NodeId src, const wire::BucketMigrate& m);
  void on_replica_tee(NodeId src, const wire::ReplicaTee& m);
  void on_standby_promote(NodeId src, const wire::StandbyPromote& m);
  void on_standby_demote(NodeId src, const wire::StandbyDemote& m);

  // -- helpers --
  /// Encodes into a pooled transport buffer (zero allocations in steady
  /// state) and sends. Templated so concrete message types hit the per-type
  /// encode_envelope_into overloads -- no Message variant construction, no
  /// copy of embedded result vectors.
  template <typename M>
  void send_msg(NodeId to, const M& msg) {
    if (!to.valid()) return;
    ++stats_.msgs_sent;
    // send_pool_ is the transport's shared pool by default, a private
    // per-shard pool under sharding (no cross-shard send contention).
    if (tx_sender_ != nullptr) {
      // Dedicated transmit channel (per-shard socket + ring): encode into a
      // pooled envelope exactly like net::send_message, hand it to the
      // channel -- the shared transport is never touched.
      net::PooledBuffer buf(send_pool_, send_pool_->acquire());
      wire::encode_envelope_into(*buf, self_, msg);
      tx_sender_->send(to, std::move(buf));
      return;
    }
    net::send_message(net_, *send_pool_, self_, to, msg);
  }
  std::uint64_t next_req_id();
  /// §6.5 piggyback, cached at construction (config is immutable): avoids
  /// re-copying the service-area polygon on every leaf response.
  const std::optional<wire::OriginArea>& origin_piggyback() const {
    return origin_cache_;
  }
  void learn_origin(const std::optional<wire::OriginArea>& origin);
  double negotiate_offered_acc(const AccuracyRange& range) const;
  TimePoint now() const { return clock_.now(); }
  TimePoint sighting_expiry() const { return now() + opts_.sighting_ttl; }

  /// Becomes the new agent for a handed-over object (Alg 6-3 lines 2-7).
  void accept_handover(NodeId src, const wire::HandoverReq& m);
  /// Initiates a handover for a locally tracked object that left our area.
  void initiate_handover(NodeId object_node, const Sighting& s);
  /// Removes a leaf visitor entirely (dereg/expiry): records + path prune.
  void drop_leaf_visitor(ObjectId oid, bool prune_path);

  /// Routes a range query one hop further (Alg 6-5 range query fwd). `from`
  /// is the node the query arrived from (kNoNode at the entry server).
  void route_range(const geo::Polygon& area, const geo::Polygon& enlarged,
                   double req_acc, double req_overlap, NodeId entry,
                   std::uint64_t req_id, NodeId from);
  /// Leaf-local answer for a routed range query.
  void answer_range_locally(const geo::Polygon& area, const geo::Polygon& enlarged,
                            double req_acc, double req_overlap, NodeId entry,
                            std::uint64_t req_id, double extra_covered);

  /// Routes an NN probe (mirrors range routing over the probe polygon).
  void route_nn_probe(const wire::NNProbeFwd& probe, NodeId from);
  void answer_nn_probe_locally(const wire::NNProbeFwd& probe, double extra_covered);
  /// Starts (or restarts with a larger radius) the expanding-ring probe for
  /// a pending NN operation; returns the new ring key.
  std::uint64_t launch_nn_ring(PendingNN op);
  void check_nn_ring(std::uint64_t ring_key);
  void finish_nn(std::uint64_t ring_key);

  /// Inserts or refreshes a leaf sighting record (+ event maintenance).
  void put_sighting(const Sighting& s, double offered_acc);
  void try_complete_range(std::uint64_t key);
  void flush_awaiting_refresh(ObjectId oid);

  /// Zero-materialization sub-result intake (see the header invariants):
  /// consumes a valid SubResView straight off the receive buffer, pinning
  /// the datagram for range merges / streaming candidates for NN rings.
  void handle_sub_res_view(wire::SubResView& view, const net::Datagram& dg);
  /// Streams the merged range answer directly into an outgoing pooled
  /// envelope (dedup-on-emit) and releases the pinned segments.
  struct PendingRange;
  void emit_range_result(NodeId client, std::uint64_t client_req_id,
                         bool complete, PendingRange& pending);

  /// CreatePath/RemovePath toward the parent, coalesced into a
  /// BatchedPathUpdate when Options::coalesce_paths is on (entry order
  /// preserved; flushed at path_batch_max or by tick()).
  void send_path(bool create, ObjectId oid);
  void flush_path_batch();

  /// tick() minus the send-burst bracket (tick corks, runs this, flushes).
  void tick_body(TimePoint t);

  /// Packs (client, oid) refresh targets into per-client BatchedRefreshReq
  /// chunks (sorted for deterministic traces) and sends them.
  void send_refresh_batches(std::vector<std::pair<NodeId, ObjectId>>& targets);

  /// Whether an unknown update should be answered with the AgentChanged nack
  /// (suppressed for objects this server dropped deliberately just now).
  bool should_nack_unknown(ObjectId oid);

  // -- hot-standby replication helpers (no-ops without a standby wired) --
  /// Stages one tee entry; flush_tee (end of handle()/tick_body) sends the
  /// whole batch as ONE ReplicaTee datagram.
  void tee_upsert(const Sighting& s, double offered_acc, const RegInfo& reg);
  void tee_set_acc(ObjectId oid, double offered_acc, const RegInfo& reg);
  void tee_remove(ObjectId oid);
  void flush_tee();
  /// True in the replica role while NOT promoted: the primary owns the
  /// visitor state, this server only mirrors it.
  bool standby_passive() const {
    return standby_primary_.valid() && !standby_active_;
  }
  /// Demote-race redirect: stages/sends straggler client sightings back to
  /// the primary over the tee channel (see on_replica_tee's primary branch).
  void bounce_sighting(const Sighting& s);
  void flush_bounce();
  /// Parent routing: engage/disengage the standby registered for `child`
  /// (suspicion trip -> StandbyPromote; liveness evidence -> StandbyDemote).
  void engage_standby(NodeId child);
  void disengage_standby(NodeId child);
  /// Replica role: fan AgentChanged{agent} at every mirrored leaf visitor,
  /// sorted by (client, oid) for deterministic traces.
  void standby_fan_agent_changed(NodeId agent);

  // -- leaf-side event predicate maintenance --
  void events_on_sighting(ObjectId oid, bool present, geo::Point pos);
  void install_event(const wire::EventInstall& inst);
  void route_event_install(const wire::EventInstall& inst, NodeId from);
  void coordinator_handle_delta(NodeId reporting_leaf, const wire::EventDelta& m);

  /// The sightings view the area-query paths read: the merged cross-shard
  /// view on a coordinator shard, the own-slice view everywhere else.
  const store::SightingsView& query_view() const {
    return shard_view_ != nullptr ? *shard_view_ : own_view_;
  }

  NodeId self_;
  ConfigRecord cfg_;
  net::Transport& net_;
  Clock& clock_;
  Options opts_;
  Stats stats_;

  store::VisitorDb visitor_db_;
  std::optional<store::SightingDb> sightings_;  // leaf servers only

  // -- shard wiring (configure_shard; defaults are the unsharded server) --
  net::BufferPool* send_pool_;               // defaults to the transport pool
  net::Sender* tx_sender_ = nullptr;         // per-shard transmit channel
  store::SightingsView own_view_;            // single-slice view over sightings_
  const store::SightingsView* shard_view_ = nullptr;  // coordinator: all slices
  SightingEventHook sighting_event_hook_;    // shards > 0: fan-in to shard 0
  std::uint32_t shard_index_ = 0;
  std::atomic<std::size_t> leaf_pred_count_{0};

  // §6.5 caches: owned by default; a sharded leaf repoints every shard at
  // ONE shared set via share_caches() (cache_mu_ guards cross-thread use).
  LeafAreaCache own_leaf_cache_;
  ObjectAgentCache own_agent_cache_;
  PositionCache own_position_cache_;
  LeafAreaCache* leaf_cache_ = &own_leaf_cache_;
  ObjectAgentCache* agent_cache_ = &own_agent_cache_;
  PositionCache* position_cache_ = &own_position_cache_;
  std::mutex* cache_mu_ = nullptr;

  std::uint64_t req_counter_ = 0;
  std::optional<wire::OriginArea> origin_cache_;

  // -- fault-tolerance state (failure detector + recovery sweeps) --
  struct ChildHealth {
    std::uint64_t last_seq_sent = 0;
    std::uint64_t last_seq_acked = 0;
    int misses = 0;     // consecutive probe intervals without liveness
    bool suspect = false;
  };
  std::unordered_map<NodeId, ChildHealth> child_health_;
  TimePoint next_heartbeat_ = 0;
  std::uint64_t heartbeat_seq_ = 0;
  std::uint64_t recovery_incarnation_ = 0;
  // Objects recently handed away (nack_unknown_updates only): an update that
  // raced the handover must NOT be nacked -- the legitimate AgentChanged is
  // already in flight, and a nack would trigger a spurious re-registration.
  // Entries expire after pending_timeout (swept by tick()).
  std::unordered_map<ObjectId, TimePoint> recent_departures_;
  // Recovery-sweep scratch (sorted targets + the batch under construction).
  std::vector<std::pair<NodeId, ObjectId>> refresh_targets_scratch_;
  wire::BatchedRefreshReq refresh_batch_scratch_;

  // -- hot-standby replication state (all inert while the NodeIds are
  //    invalid / the maps are empty; see the replication invariants above) --
  NodeId standby_;              // primary role: tee target
  NodeId standby_primary_;      // replica role: the primary being mirrored
  bool standby_active_ = false; // replica role: promoted, answering queries
  struct ChildStandby {
    NodeId standby;
    bool engaged = false;       // authoritative for query re-routing
  };
  std::unordered_map<NodeId, ChildStandby> child_standbys_;  // parent routing
  std::uint64_t standby_incarnation_ = 0;  // stamps promote/demote datagrams
  wire::ReplicaTee tee_scratch_;  // tee batch under construction (flush_tee)

  // -- hot-path scratch state, reused across operations --
  // Receive-side scratch envelope for handle(); see decode_envelope_into.
  wire::Envelope rx_scratch_;
  // Message scratch: field assignment into an already-sized message reuses
  // vector/polygon capacity, so answering a query allocates nothing once the
  // scratch has reached its working size.
  wire::RangeQuerySubRes range_sub_scratch_;
  wire::NNProbeSubRes nn_sub_scratch_;
  wire::NNQueryRes nn_res_scratch_;
  std::vector<ObjectResult> nn_local_scratch_;
  // Batched-update scratch: accepted sightings staged for the single-lock
  // SightingDb::apply_batch, and the packed ack under construction.
  std::vector<store::SightingDb::BulkUpdate> batch_apply_scratch_;
  wire::BatchedUpdateAck batch_ack_scratch_;
  // Retired NN candidate maps (slot arrays intact) for the next ring.
  std::vector<util::OidMap<LocationDescriptor>> nn_map_pool_;
  // Merge scratch: dedup-on-emit seen set (flat table, capacity reused --
  // zero allocations at working size) and the origin piggyback decode
  // target for the sub-result view path (polygon capacity reused).
  util::OidSet merge_seen_scratch_;
  std::optional<wire::OriginArea> origin_scratch_;
  // Server-to-server path coalescing (Options::coalesce_paths): the batch
  // under construction toward the parent and its oldest-entry enqueue time.
  wire::BatchedPathUpdate path_batch_;
  TimePoint path_batch_oldest_ = 0;

  // -- pending distributed operations --
  struct PendingHandover {
    NodeId reply_to;     // where the HandoverRes must be propagated
    ObjectId oid;
    NodeId child;        // the child we forwarded down to (pointer repair)
    bool remove_on_res = false;  // upward forwarding: drop record on response
    bool reply_to_object = false;  // reply_to is the tracked object itself
    bool direct_prune = false;  // direct handover: prune old branch ourselves
    TimePoint deadline = 0;
  };
  std::unordered_map<std::uint64_t, PendingHandover> pending_handover_;
  std::unordered_set<ObjectId> handover_in_flight_;

  struct PendingPos {
    NodeId client;
    std::uint64_t client_req_id;
    ObjectId oid;
    bool via_agent_cache;  // on timeout: invalidate + retry via hierarchy
    TimePoint deadline;
  };
  std::unordered_map<std::uint64_t, PendingPos> pending_pos_;

  /// One contributed slice of a pending range merge: the raw packed-result
  /// bytes of a sub-result, held WITHOUT decoding. `buf` pins the receive
  /// buffer the bytes live in (zero-copy path) or owns a pooled copy
  /// (legacy/non-pinnable arrivals); (data, len) delimit the packed region.
  struct SubSegment {
    net::PooledBuffer buf;
    const std::uint8_t* data = nullptr;
    std::size_t len = 0;
    std::uint64_t count = 0;
  };
  struct PendingRange {
    NodeId client;
    std::uint64_t client_req_id;
    double target = 0.0;   // size of the enlarged query area
    double covered = 0.0;  // accumulated from sub-results
    std::vector<SubSegment> segments;  // local + sub-results, arrival order
    TimePoint deadline;
  };
  std::unordered_map<std::uint64_t, PendingRange> pending_range_;

  std::unordered_map<std::uint64_t, PendingNN> pending_nn_;  // key: ring req id

  // Position queries waiting for a post-recovery refresh (§5).
  struct WaitingQuery {
    NodeId entry;
    std::uint64_t req_id;
    TimePoint deadline;
  };
  std::unordered_map<ObjectId, std::vector<WaitingQuery>> awaiting_refresh_;

  // -- event mechanism state --
  struct CoordinatorPred {
    wire::EventSubscribe sub;
    // Area predicates: member -> leaf that reported it. Tracking the
    // reporting leaf makes handovers safe: a stale "left" delta from the old
    // agent must not cancel the fresher "entered" from the new agent.
    std::unordered_map<ObjectId, NodeId> inside;
    bool fired = false;
    // Proximity predicates: last known positions + reporting leaves.
    std::optional<geo::Point> pos_a, pos_b;
    NodeId src_a, src_b;
  };
  std::unordered_map<std::uint64_t, CoordinatorPred> coord_preds_;

  struct LeafPred {
    wire::EventInstall inst;
    std::unordered_set<ObjectId> members;
  };
  std::unordered_map<std::uint64_t, LeafPred> leaf_preds_;
};

}  // namespace locs::core
