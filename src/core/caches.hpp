// The three leaf-server caches of §6.5, each individually switchable
// (ablation A2).
//
//  1. (leaf server, service area): learned from the origin-area piggyback on
//     forwarded messages; lets an entry server contact leaves directly for
//     handovers and range queries without traversing the hierarchy.
//  2. (tracked object, current agent): learned from query responses; speeds
//     up position queries. Entries go stale when the object hands over --
//     consumers fall back to the hierarchy on a miss/timeout.
//  3. (tracked object, position descriptor): caches query results; a hit is
//     valid only while the accuracy, aged by the object's maximum speed
//     (acc + v * dt, §3/[15]), still meets the configured bound.
#pragma once

#include <optional>
#include <unordered_map>

#include "core/types.hpp"
#include "geo/polygon.hpp"
#include "util/clock.hpp"
#include "util/ids.hpp"

namespace locs::core {

/// Cache 1: leaf server -> service area.
class LeafAreaCache {
 public:
  explicit LeafAreaCache(std::size_t max_entries = 4096)
      : max_entries_(max_entries) {}

  void learn(NodeId leaf, geo::Polygon area) {
    if (!leaf.valid()) return;
    const auto it = entries_.find(leaf);
    if (it != entries_.end()) {
      it->second = std::move(area);
      return;
    }
    if (entries_.size() >= max_entries_) entries_.erase(entries_.begin());
    entries_.emplace(leaf, std::move(area));
  }

  const geo::Polygon* find(NodeId leaf) const {
    const auto it = entries_.find(leaf);
    return it == entries_.end() ? nullptr : &it->second;
  }

  /// The leaf whose cached area contains p (handover shortcut), if any.
  NodeId leaf_containing(geo::Point p) const {
    for (const auto& [id, area] : entries_) {
      if (area.contains(p)) return id;
    }
    return kNoNode;
  }

  /// All cached leaves whose areas intersect `query`, plus the total size of
  /// query ∩ (union of those areas) -- since leaf areas never overlap, the
  /// sum of pairwise intersection sizes is exact. The caller can contact the
  /// leaves directly iff the covered size equals the query size.
  struct Coverage {
    std::vector<NodeId> leaves;
    double covered_size = 0.0;
  };
  Coverage coverage_of(const geo::Polygon& query) const {
    Coverage cov;
    for (const auto& [id, area] : entries_) {
      const double inter = geo::intersection_area(query, area);
      if (inter > 0.0) {
        cov.leaves.push_back(id);
        cov.covered_size += inter;
      }
    }
    return cov;
  }

  std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

 private:
  std::size_t max_entries_;
  std::unordered_map<NodeId, geo::Polygon> entries_;
};

/// Cache 2: tracked object -> current agent.
class ObjectAgentCache {
 public:
  explicit ObjectAgentCache(std::size_t max_entries = 65536,
                            Duration ttl = seconds(300))
      : max_entries_(max_entries), ttl_(ttl) {}

  void learn(ObjectId oid, NodeId agent, TimePoint now) {
    if (!agent.valid()) return;
    if (entries_.size() >= max_entries_ && entries_.find(oid) == entries_.end()) {
      entries_.erase(entries_.begin());
    }
    entries_[oid] = {agent, now};
  }

  std::optional<NodeId> find(ObjectId oid, TimePoint now) const {
    const auto it = entries_.find(oid);
    if (it == entries_.end()) return std::nullopt;
    if (now - it->second.at > ttl_) return std::nullopt;
    return it->second.agent;
  }

  void invalidate(ObjectId oid) { entries_.erase(oid); }
  std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

 private:
  struct EntryRec {
    NodeId agent;
    TimePoint at;
  };
  std::size_t max_entries_;
  Duration ttl_;
  std::unordered_map<ObjectId, EntryRec> entries_;
};

/// Cache 3: tracked object -> position descriptor.
class PositionCache {
 public:
  explicit PositionCache(std::size_t max_entries = 65536)
      : max_entries_(max_entries) {}

  void learn(ObjectId oid, const LocationDescriptor& ld, TimePoint now) {
    if (entries_.size() >= max_entries_ && entries_.find(oid) == entries_.end()) {
      entries_.erase(entries_.begin());
    }
    entries_[oid] = {ld, now};
  }

  /// A cached descriptor aged to `now`: the accuracy degrades by
  /// max_speed * elapsed. Returns it only if the aged accuracy still meets
  /// `max_acceptable_acc`.
  std::optional<LocationDescriptor> find(ObjectId oid, TimePoint now,
                                         double max_speed,
                                         double max_acceptable_acc) const {
    const auto it = entries_.find(oid);
    if (it == entries_.end()) return std::nullopt;
    const double dt = now > it->second.at ? to_seconds(now - it->second.at) : 0.0;
    const double aged_acc = it->second.ld.acc + max_speed * dt;
    if (aged_acc > max_acceptable_acc) return std::nullopt;
    return LocationDescriptor{it->second.ld.pos, aged_acc};
  }

  void invalidate(ObjectId oid) { entries_.erase(oid); }
  std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

 private:
  struct EntryRec {
    LocationDescriptor ld;
    TimePoint at;
  };
  std::size_t max_entries_;
  std::unordered_map<ObjectId, EntryRec> entries_;
};

}  // namespace locs::core
