// Core model types of the location-service (paper §3).
#pragma once

#include <optional>

#include "geo/circle.hpp"
#include "geo/point.hpp"
#include "util/clock.hpp"
#include "util/ids.hpp"

namespace locs::core {

/// A sighting record s ∈ S (§3.1): object id, timestamp of the sighting,
/// position at that time, and sensor accuracy (max distance between the
/// reported and the actual position at s.t).
struct Sighting {
  ObjectId oid;
  TimePoint t = 0;
  geo::Point pos;
  double acc_sens = 0.0;

  friend bool operator==(const Sighting&, const Sighting&) = default;
};

/// Location descriptor ld(o) (§3): the stored position plus its accuracy,
/// defined as the worst-case deviation of ld.pos from the real position.
/// The object is guaranteed to reside in the circular location area
/// (ld.pos, ld.acc) -- Fig 2.
struct LocationDescriptor {
  geo::Point pos;
  double acc = 0.0;

  geo::Circle location_area() const { return {pos, acc}; }

  friend bool operator==(const LocationDescriptor&, const LocationDescriptor&) = default;
};

/// Requested accuracy range for registration / changeAcc (§3.1).
/// `desired` <= `minimum` numerically: a *smaller* value means *better*
/// accuracy, and minAcc is the worst the registrant will accept.
struct AccuracyRange {
  double desired = 0.0;
  double minimum = 0.0;

  friend bool operator==(const AccuracyRange&, const AccuracyRange&) = default;
};

/// Registration information record kept in a leaf visitor record (§5):
/// registering instance and the negotiated accuracy range.
struct RegInfo {
  NodeId reg_inst;
  AccuracyRange acc_range;

  friend bool operator==(const RegInfo&, const RegInfo&) = default;
};

/// One (object id, location descriptor) result pair as returned by range,
/// nearest-neighbor and position queries.
struct ObjectResult {
  ObjectId oid;
  LocationDescriptor ld;

  friend bool operator==(const ObjectResult&, const ObjectResult&) = default;
};

/// Worst-case accuracy bound for a sighting at query time t >= s.t:
/// the sensor accuracy plus how far the object may have moved since
/// (paper §3.1 footnote / [15]).
inline double accuracy_bound(const Sighting& s, double max_speed_m_per_s,
                             TimePoint now) {
  const double dt = now > s.t ? to_seconds(now - s.t) : 0.0;
  return s.acc_sens + max_speed_m_per_s * dt;
}

}  // namespace locs::core
