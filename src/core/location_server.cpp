#include "core/location_server.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace locs::core {

namespace wm = locs::wire;

namespace {

/// Sentinel best_acc in RegisterFailed meaning "position outside the
/// service area of the entire LS".
constexpr double kOutOfServiceArea = -1.0;

double coverage_epsilon(double target) {
  return std::max(1e-6, 1e-9 * target);
}

}  // namespace

LocationServer::LocationServer(NodeId self, ConfigRecord cfg, net::Transport& net,
                               Clock& clock)
    : LocationServer(self, std::move(cfg), net, clock, Options{}) {}

LocationServer::LocationServer(NodeId self, ConfigRecord cfg, net::Transport& net,
                               Clock& clock, Options opts,
                               store::VisitorDb visitor_db,
                               spatial::IndexFactory index_factory)
    : self_(self),
      cfg_(std::move(cfg)),
      net_(net),
      clock_(clock),
      opts_(opts),
      visitor_db_(std::move(visitor_db)),
      send_pool_(&net.pool()) {
  if (cfg_.is_leaf()) {
    if (!index_factory) index_factory = [] { return spatial::make_point_quadtree(); };
    sightings_.emplace(std::move(index_factory));
    own_view_.add_slice(&*sightings_, /*mu=*/nullptr);
  }
  if (opts_.piggyback_origin && cfg_.is_leaf()) {
    origin_cache_ = wm::OriginArea{self_, cfg_.sa};
  }
}

void LocationServer::Stats::add(const Stats& other) {
  msgs_handled += other.msgs_handled;
  msgs_sent += other.msgs_sent;
  decode_errors += other.decode_errors;
  registrations += other.registrations;
  registration_failures += other.registration_failures;
  updates_applied += other.updates_applied;
  updates_unknown += other.updates_unknown;
  update_batches += other.update_batches;
  handovers_initiated += other.handovers_initiated;
  handovers_accepted += other.handovers_accepted;
  handovers_direct += other.handovers_direct;
  pos_queries_served += other.pos_queries_served;
  pos_query_cache_hits += other.pos_query_cache_hits;
  agent_cache_hits += other.agent_cache_hits;
  range_direct += other.range_direct;
  range_sub_answered += other.range_sub_answered;
  nn_rings += other.nn_rings;
  sightings_expired += other.sightings_expired;
  pending_timeouts += other.pending_timeouts;
  refresh_requests += other.refresh_requests;
  events_fired += other.events_fired;
  heartbeats_sent += other.heartbeats_sent;
  children_suspected += other.children_suspected;
  suspect_short_circuits += other.suspect_short_circuits;
  recovery_hellos += other.recovery_hellos;
  refresh_batches_sent += other.refresh_batches_sent;
  path_batches_sent += other.path_batches_sent;
  sub_res_pinned += other.sub_res_pinned;
  sub_res_copied += other.sub_res_copied;
  merge_dedup_dropped += other.merge_dedup_dropped;
  bucket_migrations += other.bucket_migrations;
  objects_migrated_in += other.objects_migrated_in;
  objects_migrated_out += other.objects_migrated_out;
  tee_datagrams_sent += other.tee_datagrams_sent;
  tee_entries_applied += other.tee_entries_applied;
  standby_promotions += other.standby_promotions;
  standby_demotions += other.standby_demotions;
  standbys_engaged += other.standbys_engaged;
  standby_routed_queries += other.standby_routed_queries;
}

void LocationServer::configure_shard(std::uint32_t shard_index,
                                     net::BufferPool* send_pool,
                                     const store::SightingsView* query_view,
                                     SightingEventHook hook) {
  shard_index_ = shard_index;
  if (send_pool != nullptr) send_pool_ = send_pool;
  shard_view_ = query_view;
  sighting_event_hook_ = std::move(hook);
  // Stripe req-ids by shard so sibling shards of one NodeId never hand the
  // same id to an upstream server (shard 0 keeps the unsharded sequence).
  req_counter_ = static_cast<std::uint64_t>(shard_index) << 32;
}

void LocationServer::share_caches(LeafAreaCache* leaf, ObjectAgentCache* agent,
                                  PositionCache* position, std::mutex* mu) {
  // All-or-nothing: a partial cache set would split hit state between
  // private and shared instances (and a dangling mutex would guard neither).
  if (leaf == nullptr || agent == nullptr || position == nullptr) return;
  leaf_cache_ = leaf;
  agent_cache_ = agent;
  position_cache_ = position;
  cache_mu_ = mu;
}

// --------------------------------------------------------------------------
// dispatch

void LocationServer::handle(const net::Datagram& dg) {
  const std::uint8_t* data = dg.data();
  const std::size_t len = dg.size();
  // Zero-materialization fast path: packed query sub-results are consumed
  // through a view straight off the receive buffer -- no envelope decode,
  // no owned vectors (see the read-path invariants in the header). The view
  // itself validates the message type, so only the version byte is peeked.
  if (len > 1 && data[0] == wm::kWireVersionPacked) {
    wm::SubResView view(data, len);
    if (view.valid()) {
      ++stats_.msgs_handled;
      handle_sub_res_view(view, dg);
      return;
    }
    // Another packed type, or malformed: fall through to the full decode,
    // which handles (or reports and counts) it exactly once.
  }
  // Decode into the scratch envelope: a steady stream of one message type
  // reuses its vectors' capacity, so dispatch allocates nothing.
  if (!wm::decode_envelope_into(rx_scratch_, data, len).is_ok()) {
    ++stats_.decode_errors;
    return;
  }
  ++stats_.msgs_handled;
  const NodeId src = rx_scratch_.src;
  wm::Message& msg = rx_scratch_.msg;
  std::visit(
      [&](auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, wm::RegisterReq>) {
          on_register_req(src, m);
        } else if constexpr (std::is_same_v<T, wm::CreatePath>) {
          on_create_path(src, m);
        } else if constexpr (std::is_same_v<T, wm::RemovePath>) {
          on_remove_path(src, m);
        } else if constexpr (std::is_same_v<T, wm::BatchedPathUpdate>) {
          on_batched_path_update(src, m);
        } else if constexpr (std::is_same_v<T, wm::UpdateReq>) {
          on_update_req(src, m);
        } else if constexpr (std::is_same_v<T, wm::BatchedUpdateReq>) {
          on_batched_update_req(src, m);
        } else if constexpr (std::is_same_v<T, wm::HandoverReq>) {
          on_handover_req(src, std::move(m));
        } else if constexpr (std::is_same_v<T, wm::HandoverRes>) {
          on_handover_res(src, m);
        } else if constexpr (std::is_same_v<T, wm::PosQueryReq>) {
          on_pos_query_req(src, m);
        } else if constexpr (std::is_same_v<T, wm::PosQueryFwd>) {
          on_pos_query_fwd(src, m);
        } else if constexpr (std::is_same_v<T, wm::PosQueryRes>) {
          on_pos_query_res(src, m);
        } else if constexpr (std::is_same_v<T, wm::RangeQueryReq>) {
          on_range_query_req(src, m);
        } else if constexpr (std::is_same_v<T, wm::RangeQueryFwd>) {
          on_range_query_fwd(src, m);
        } else if constexpr (std::is_same_v<T, wm::RangeQuerySubRes>) {
          on_range_query_sub_res(src, m);
        } else if constexpr (std::is_same_v<T, wm::NNQueryReq>) {
          on_nn_query_req(src, m);
        } else if constexpr (std::is_same_v<T, wm::NNProbeFwd>) {
          on_nn_probe_fwd(src, m);
        } else if constexpr (std::is_same_v<T, wm::NNProbeSubRes>) {
          on_nn_probe_sub_res(src, m);
        } else if constexpr (std::is_same_v<T, wm::ChangeAccReq>) {
          on_change_acc_req(src, m);
        } else if constexpr (std::is_same_v<T, wm::DeregisterReq>) {
          on_deregister_req(src, m);
        } else if constexpr (std::is_same_v<T, wm::EventSubscribe>) {
          on_event_subscribe(src, m);
        } else if constexpr (std::is_same_v<T, wm::EventInstall>) {
          on_event_install(src, m);
        } else if constexpr (std::is_same_v<T, wm::EventDelta>) {
          on_event_delta(src, m);
        } else if constexpr (std::is_same_v<T, wm::EventUnsubscribe>) {
          on_event_unsubscribe(src, m);
        } else if constexpr (std::is_same_v<T, wm::Heartbeat>) {
          on_heartbeat(src, m);
        } else if constexpr (std::is_same_v<T, wm::HeartbeatAck>) {
          on_heartbeat_ack(src, m);
        } else if constexpr (std::is_same_v<T, wm::RecoveryHello>) {
          on_recovery_hello(src, m);
        } else if constexpr (std::is_same_v<T, wm::BatchedRefreshReq>) {
          on_batched_refresh_req(src, m);
        } else if constexpr (std::is_same_v<T, wm::BucketMigrate>) {
          on_bucket_migrate(src, m);
        } else if constexpr (std::is_same_v<T, wm::ReplicaTee>) {
          on_replica_tee(src, m);
        } else if constexpr (std::is_same_v<T, wm::StandbyPromote>) {
          on_standby_promote(src, m);
        } else if constexpr (std::is_same_v<T, wm::StandbyDemote>) {
          on_standby_demote(src, m);
        }
        // Other message types (responses to clients, RefreshReq, ...) are
        // not addressed to servers; ignore them defensively.
      },
      msg);
  // One tee datagram per handled datagram: every sighting the message above
  // accepted travels to the standby in the SAME apply order, so the replica's
  // index undergoes an identical mutation sequence (byte-equal answers).
  flush_tee();
}

// --------------------------------------------------------------------------
// helpers

std::uint64_t LocationServer::next_req_id() {
  return (static_cast<std::uint64_t>(self_.value) << 40) | ++req_counter_;
}

void LocationServer::learn_origin(const std::optional<wm::OriginArea>& origin) {
  if (!origin || !opts_.enable_leaf_area_cache) return;
  if (origin->leaf == self_) return;
  store::MaybeGuard guard(cache_mu_);
  leaf_cache_->learn(origin->leaf, origin->area);
}

double LocationServer::negotiate_offered_acc(const AccuracyRange& range) const {
  // Alg 6-1 line 8: offeredAcc = max(acc, desAcc) -- the service never
  // promises better than its sensors support nor better than requested.
  return std::max(opts_.min_supported_acc, range.desired);
}

void LocationServer::put_sighting(const Sighting& s, double offered_acc) {
  assert(sightings_);
  if (sightings_->find(s.oid) != nullptr) {
    sightings_->update(s, sighting_expiry());
    sightings_->set_offered_acc(s.oid, offered_acc);
  } else {
    sightings_->insert(s, offered_acc, sighting_expiry());
  }
  events_on_sighting(s.oid, true, s.pos);
}

// --------------------------------------------------------------------------
// registration (Algorithm 6-1)

void LocationServer::on_register_req(NodeId src, const wm::RegisterReq& m) {
  (void)src;
  if (cfg_.covers(m.s.pos)) {
    if (cfg_.is_leaf()) {
      if (standby_passive()) {
        // Stray registration at a passive replica: the primary owns
        // admission. RegisterReq carries reg_inst, so a plain forward keeps
        // the response path intact.
        send_msg(standby_primary_, m);
        return;
      }
      const double acc = opts_.min_supported_acc;
      if (acc <= m.acc_range.minimum) {
        // Registration successful: create the leaf records and the
        // forwarding path, then answer the registering instance.
        const double offered = negotiate_offered_acc(m.acc_range);
        send_path(true, m.s.oid);
        visitor_db_.insert_leaf(m.s.oid, offered,
                                RegInfo{m.reg_inst, m.acc_range});
        put_sighting(m.s, offered);
        tee_upsert(m.s, offered, RegInfo{m.reg_inst, m.acc_range});
        ++stats_.registrations;
        send_msg(m.reg_inst, wm::RegisterRes{self_, offered, m.req_id});
      } else {
        ++stats_.registration_failures;
        send_msg(m.reg_inst, wm::RegisterFailed{self_, acc, m.req_id});
      }
    } else {
      const NodeId child = cfg_.child_for(m.s.pos);
      if (child.valid()) {
        send_msg(child, m);
      } else {
        // Children must tile the parent area; treat a gap as failure.
        ++stats_.registration_failures;
        send_msg(m.reg_inst, wm::RegisterFailed{self_, kOutOfServiceArea, m.req_id});
      }
    }
  } else if (!cfg_.is_root()) {
    send_msg(cfg_.parent, m);
  } else {
    // Outside the root service area: the LS cannot track this object.
    ++stats_.registration_failures;
    send_msg(m.reg_inst, wm::RegisterFailed{self_, kOutOfServiceArea, m.req_id});
  }
}

void LocationServer::send_path(bool create, ObjectId oid) {
  if (cfg_.is_root()) return;
  if (!opts_.coalesce_paths) {
    if (create) {
      send_msg(cfg_.parent, wm::CreatePath{oid});
    } else {
      send_msg(cfg_.parent, wm::RemovePath{oid});
    }
    return;
  }
  if (path_batch_.empty()) path_batch_oldest_ = now();
  path_batch_.append(create, oid);
  if (path_batch_.count >= opts_.path_batch_max) flush_path_batch();
}

void LocationServer::flush_path_batch() {
  if (path_batch_.empty()) return;
  ++stats_.path_batches_sent;
  send_msg(cfg_.parent, path_batch_);
  path_batch_.clear();
}

void LocationServer::on_create_path(NodeId src, const wm::CreatePath& m) {
  visitor_db_.set_forward(m.oid, src);
  send_path(true, m.oid);
}

void LocationServer::on_remove_path(NodeId src, const wm::RemovePath& m) {
  const store::VisitorRecord* rec = visitor_db_.find(m.oid);
  // Conditional prune: only remove if our pointer still leads toward the
  // sender. If a concurrent createPath already repointed this record to a
  // fresh branch, we are a common ancestor of old and new agent and the
  // prune must stop here.
  if (rec == nullptr || rec->leaf.has_value() || rec->forward_ref != src) return;
  visitor_db_.remove(m.oid);
  send_path(false, m.oid);
}

void LocationServer::on_batched_path_update(NodeId src,
                                            const wm::BatchedPathUpdate& m) {
  // Entries replay in order, each exactly like its unbatched message; the
  // upward forwards re-enter this server's own coalescer, so a burst stays
  // batched hop by hop toward the root.
  wm::BatchedPathUpdate::Cursor cur = m.entries();
  bool create = false;
  ObjectId oid;
  while (cur.next(create, oid)) {
    if (create) {
      visitor_db_.set_forward(oid, src);
      send_path(true, oid);
    } else {
      const store::VisitorRecord* rec = visitor_db_.find(oid);
      if (rec == nullptr || rec->leaf.has_value() || rec->forward_ref != src)
        continue;
      visitor_db_.remove(oid);
      send_path(false, oid);
    }
  }
}

// --------------------------------------------------------------------------
// position updates and handover (Algorithms 6-2 / 6-3)

void LocationServer::on_update_req(NodeId src, const wm::UpdateReq& m) {
  if (!cfg_.is_leaf()) return;  // updates always go to the agent (a leaf)
  if (standby_passive()) {
    bounce_sighting(m.s);
    flush_bounce();
    return;
  }
  const store::VisitorRecord* rec = visitor_db_.find(m.s.oid);
  if (rec == nullptr || !rec->leaf) {
    ++stats_.updates_unknown;  // stale agent; the object relearns via timeout
    if (should_nack_unknown(m.s.oid)) {
      // Total state loss (crash without persistent visitorDB): tell the
      // client it has no agent so it can re-register (see header note).
      send_msg(src, wm::AgentChanged{m.s.oid, kNoNode, 0.0});
    }
    return;
  }
  if (!cfg_.covers(m.s.pos)) {
    initiate_handover(src, m.s);
    return;
  }
  put_sighting(m.s, rec->leaf->offered_acc);
  tee_upsert(m.s, rec->leaf->offered_acc, rec->leaf->reg_info);
  ++stats_.updates_applied;
  send_msg(src, wm::UpdateAck{m.s.oid, rec->leaf->offered_acc});
  flush_awaiting_refresh(m.s.oid);
}

void LocationServer::on_batched_update_req(NodeId src, const wm::BatchedUpdateReq& m) {
  if (!cfg_.is_leaf()) return;  // updates always go to the agent (a leaf)
  if (standby_passive()) {
    wm::BatchedUpdateReq::Cursor bcur = m.sightings();
    Sighting bs;
    while (bcur.next(bs)) bounce_sighting(bs);
    flush_bounce();
    return;
  }
  ++stats_.update_batches;
  // Single lazy pass over the packed sightings (wire framing note): each one
  // runs the exact per-sighting checks of on_update_req; accepted sightings
  // are staged and applied with ONE SightingDb lock/index pass, and their
  // acks travel back as one packed BatchedUpdateAck to the coalescing sender.
  batch_apply_scratch_.clear();
  wm::BatchedUpdateAck& ack = batch_ack_scratch_;
  ack.clear();
  wm::BatchedUpdateReq::Cursor cur = m.sightings();
  Sighting s;
  while (cur.next(s)) {
    const store::VisitorRecord* rec = visitor_db_.find(s.oid);
    if (rec == nullptr || !rec->leaf) {
      ++stats_.updates_unknown;  // stale agent; the object relearns via timeout
      if (should_nack_unknown(s.oid)) {
        send_msg(src, wm::AgentChanged{s.oid, kNoNode, 0.0});
      }
      continue;
    }
    if (!cfg_.covers(s.pos)) {
      initiate_handover(src, s);
      continue;
    }
    batch_apply_scratch_.push_back({s, rec->leaf->offered_acc});
    tee_upsert(s, rec->leaf->offered_acc, rec->leaf->reg_info);
    ack.append(s.oid, rec->leaf->offered_acc);
    ++stats_.updates_applied;
  }
  if (!batch_apply_scratch_.empty()) {
    sightings_->apply_batch(batch_apply_scratch_, sighting_expiry());
    for (const store::SightingDb::BulkUpdate& item : batch_apply_scratch_) {
      events_on_sighting(item.s.oid, true, item.s.pos);
      if (!awaiting_refresh_.empty()) flush_awaiting_refresh(item.s.oid);
    }
  }
  if (!ack.empty()) send_msg(src, ack);
}

void LocationServer::initiate_handover(NodeId object_node, const Sighting& s) {
  if (handover_in_flight_.count(s.oid) > 0) return;  // one at a time
  const store::VisitorRecord* rec = visitor_db_.find(s.oid);
  assert(rec != nullptr && rec->leaf);
  wm::HandoverReq req;
  req.s = s;
  req.reg_info = rec->leaf->reg_info;
  req.prev_offered_acc = rec->leaf->offered_acc;
  req.req_id = next_req_id();
  req.origin = origin_piggyback();

  PendingHandover pending;
  pending.reply_to = object_node;
  pending.oid = s.oid;
  pending.reply_to_object = true;
  pending.deadline = now() + opts_.pending_timeout;

  // §6.5 shortcut: if the leaf-area cache knows the leaf responsible for the
  // new position, hand over directly and repair the path explicitly.
  if (opts_.enable_leaf_area_cache) {
    const NodeId target = [&] {
      store::MaybeGuard guard(cache_mu_);
      return leaf_cache_->leaf_containing(s.pos);
    }();
    if (target.valid() && target != self_) {
      req.direct = true;
      pending.direct_prune = true;
      ++stats_.handovers_direct;
      ++stats_.handovers_initiated;
      handover_in_flight_.insert(s.oid);
      pending_handover_.emplace(req.req_id, pending);
      send_msg(target, req);
      return;
    }
  }
  if (cfg_.is_root()) {
    // Single-server hierarchy: leaving our area means leaving the LS.
    drop_leaf_visitor(s.oid, /*prune_path=*/false);
    send_msg(object_node, wm::AgentChanged{s.oid, kNoNode, 0.0});
    return;
  }
  ++stats_.handovers_initiated;
  handover_in_flight_.insert(s.oid);
  pending_handover_.emplace(req.req_id, pending);
  send_msg(cfg_.parent, req);
}

void LocationServer::accept_handover(NodeId src, const wm::HandoverReq& m) {
  const double offered = negotiate_offered_acc(m.reg_info.acc_range);
  visitor_db_.insert_leaf(m.s.oid, offered, m.reg_info);
  put_sighting(m.s, offered);
  tee_upsert(m.s, offered, m.reg_info);
  ++stats_.handovers_accepted;
  // Direct handover bypassed the hierarchy: build the new path ourselves.
  if (m.direct) send_path(true, m.s.oid);
  wm::HandoverRes res;
  res.oid = m.s.oid;
  res.new_agent = self_;
  res.offered_acc = offered;
  res.req_id = m.req_id;
  res.origin = origin_piggyback();
  send_msg(src, res);
  if (offered != m.prev_offered_acc) {
    // §3.1: "Whenever the currently offered accuracy changes, the LS sends
    // a notification to the registering instance."
    send_msg(m.reg_info.reg_inst, wm::NotifyAvailAcc{m.s.oid, offered});
  }
}

void LocationServer::on_handover_req(NodeId src, wm::HandoverReq m) {
  learn_origin(m.origin);
  if (cfg_.covers(m.s.pos)) {
    if (cfg_.is_leaf()) {
      accept_handover(src, m);
      return;
    }
    const NodeId child = cfg_.child_for(m.s.pos);
    if (!child.valid()) return;  // tiling gap; drop (request times out)
    PendingHandover pending;
    pending.reply_to = src;
    pending.oid = m.s.oid;
    pending.child = child;
    pending.deadline = now() + opts_.pending_timeout;
    pending_handover_.emplace(m.req_id, pending);
    send_msg(child, m);
    return;
  }
  if (cfg_.is_root()) {
    // The object left the root service area: automatic deregistration (§4).
    visitor_db_.remove(m.s.oid);
    send_msg(src, wm::HandoverRes{m.s.oid, kNoNode, 0.0, m.req_id, std::nullopt});
    return;
  }
  PendingHandover pending;
  pending.reply_to = src;
  pending.oid = m.s.oid;
  pending.remove_on_res = true;  // Alg 6-3 line 19
  pending.deadline = now() + opts_.pending_timeout;
  pending_handover_.emplace(m.req_id, pending);
  send_msg(cfg_.parent, m);
}

void LocationServer::on_handover_res(NodeId src, const wm::HandoverRes& m) {
  (void)src;
  const auto it = pending_handover_.find(m.req_id);
  if (it == pending_handover_.end()) return;  // timed out earlier
  const PendingHandover pending = it->second;
  pending_handover_.erase(it);
  learn_origin(m.origin);

  if (pending.reply_to_object) {
    // We are the old agent (Alg 6-2 lines 3-6).
    handover_in_flight_.erase(pending.oid);
    send_msg(pending.reply_to,
             wm::AgentChanged{pending.oid, m.new_agent, m.offered_acc});
    if (m.new_agent.valid() && pending.direct_prune) {
      send_path(false, pending.oid);
    }
    drop_leaf_visitor(pending.oid, /*prune_path=*/false);
    return;
  }
  // Intermediate server: repair or remove the forwarding pointer
  // (Alg 6-3 lines 11-14 / 18-20) and pass the response along.
  if (!m.new_agent.valid() || pending.remove_on_res) {
    visitor_db_.remove(pending.oid);
  } else {
    visitor_db_.set_forward(pending.oid, pending.child);
  }
  send_msg(pending.reply_to, m);
}

void LocationServer::drop_leaf_visitor(ObjectId oid, bool prune_path) {
  // The object was dropped DELIBERATELY (handover away, deregistration,
  // expiry), so an update racing that drop is not state loss: remember the
  // departure briefly and let the nack path ignore such stragglers.
  if (opts_.nack_unknown_updates) {
    recent_departures_[oid] = now() + opts_.pending_timeout;
  }
  if (sightings_) {
    const store::SightingDb::Record* rec = sightings_->find(oid);
    if (rec != nullptr) {
      events_on_sighting(oid, false, rec->sighting.pos);
      sightings_->remove(oid);
    }
  }
  visitor_db_.remove(oid);
  tee_remove(oid);
  if (prune_path) send_path(false, oid);
}

// --------------------------------------------------------------------------
// intra-leaf bucket migration (shard skew rebalancing)

std::size_t LocationServer::extract_for_migration(
    const std::function<bool(ObjectId)>& pred, wire::BucketMigrate& out) {
  if (!sightings_ || !cfg_.is_leaf()) return 0;
  // Collect-then-mutate: the SightingDb mutators take the slice lock
  // themselves, so the iteration must not remove in place. Sorting makes the
  // packed migration entries independent of hash-map layout.
  std::vector<ObjectId> matched;
  sightings_->for_each([&](ObjectId oid, const store::SightingDb::Record&) {
    if (handover_in_flight_.count(oid) == 0 && pred(oid)) matched.push_back(oid);
  });
  std::sort(matched.begin(), matched.end(),
            [](ObjectId a, ObjectId b) { return a.value < b.value; });
  std::size_t moved = 0;
  for (const ObjectId oid : matched) {
    const store::SightingDb::Record* rec = sightings_->find(oid);
    const store::VisitorRecord* vis = visitor_db_.find(oid);
    if (rec == nullptr || vis == nullptr || !vis->leaf) continue;
    out.append({rec->sighting, rec->offered_acc, rec->expiry,
                vis->leaf->reg_info});
    // Silent drop: no presence event (the object stays on this leaf) and no
    // path prune (the forwarding path still targets this NodeId).
    sightings_->remove(oid);
    visitor_db_.remove(oid);
    ++moved;
  }
  stats_.objects_migrated_out += moved;
  return moved;
}

void LocationServer::on_bucket_migrate(NodeId src, const wire::BucketMigrate& m) {
  // Intra-leaf only: the donor shard stamps the migration with the leaf's
  // own NodeId. Anything else is a stray or forged datagram -- drop it.
  if (!cfg_.is_leaf() || src != self_ || !sightings_) return;
  wire::BucketMigrate::Cursor cur = m.entries();
  wire::BucketMigrate::Entry e;
  while (cur.next(e)) {
    visitor_db_.insert_leaf(e.s.oid, e.offered_acc, e.reg);
    if (sightings_->find(e.s.oid) != nullptr) sightings_->remove(e.s.oid);
    // Install with the ORIGINAL expiry: migration must not extend the
    // soft-state TTL (§5 -- only visitor contact does).
    sightings_->insert(e.s, e.offered_acc, e.expiry);
    ++stats_.objects_migrated_in;
  }
  ++stats_.bucket_migrations;
}

// --------------------------------------------------------------------------
// leaf hot-standby replication (answer-complete failover)

void LocationServer::tee_upsert(const Sighting& s, double offered_acc,
                                const RegInfo& reg) {
  if (!standby_.valid()) return;
  wire::ReplicaTee::Entry e;
  e.op = wire::ReplicaTee::Op::kUpsert;
  e.s = s;
  e.offered_acc = offered_acc;
  // The ORIGINAL absolute expiry: the replica must not extend the soft-state
  // TTL (§5) beyond what the primary granted.
  e.expiry = sighting_expiry();
  e.reg = reg;
  tee_scratch_.append(e);
}

void LocationServer::tee_set_acc(ObjectId oid, double offered_acc,
                                 const RegInfo& reg) {
  if (!standby_.valid()) return;
  wire::ReplicaTee::Entry e;
  e.op = wire::ReplicaTee::Op::kSetAcc;
  e.s.oid = oid;
  e.offered_acc = offered_acc;
  e.reg = reg;
  tee_scratch_.append(e);
}

void LocationServer::tee_remove(ObjectId oid) {
  if (!standby_.valid()) return;
  wire::ReplicaTee::Entry e;
  e.op = wire::ReplicaTee::Op::kRemove;
  e.s.oid = oid;
  tee_scratch_.append(e);
}

void LocationServer::flush_tee() {
  if (!standby_.valid() || tee_scratch_.empty()) return;
  ++stats_.tee_datagrams_sent;
  send_msg(standby_, tee_scratch_);
  tee_scratch_.clear();
}

void LocationServer::bounce_sighting(const Sighting& s) {
  // A client refresh can race the demote fan-out and land on the passive
  // replica (the parent's BatchedRefreshReq reaches the client one hop
  // before the AgentChanged that re-points it). Dropping the update would
  // lose the freshest sighting until the next feed; applying it here would
  // shadow the recovered primary. Bounce it over the tee channel instead.
  wire::ReplicaTee::Entry e{};
  e.op = wire::ReplicaTee::Op::kUpsert;
  e.s = s;
  tee_scratch_.append(e);  // unused in the replica role outside bounces
}

void LocationServer::flush_bounce() {
  if (tee_scratch_.empty()) return;
  ++stats_.tee_datagrams_sent;
  send_msg(standby_primary_, tee_scratch_);
  tee_scratch_.clear();
}

void LocationServer::on_replica_tee(NodeId src, const wm::ReplicaTee& m) {
  if (!cfg_.is_leaf() || !sightings_) return;
  if (standby_.valid() && src == standby_) {
    // Reconciliation return traffic: sightings a straggler client delivered
    // to the demoted replica (see bounce_sighting). Apply each against OUR
    // registration record -- the primary is authoritative for admission
    // state -- and re-tee it so the rebuilding mirror sees it too.
    wire::ReplicaTee::Cursor cur = m.entries();
    wire::ReplicaTee::Entry e;
    while (cur.next(e)) {
      if (e.op != wire::ReplicaTee::Op::kUpsert) continue;
      const store::VisitorRecord* rec = visitor_db_.find(e.s.oid);
      if (rec == nullptr || !rec->leaf) continue;
      ++stats_.tee_entries_applied;
      put_sighting(e.s, rec->leaf->offered_acc);
      tee_upsert(e.s, rec->leaf->offered_acc, rec->leaf->reg_info);
      flush_awaiting_refresh(e.s.oid);
    }
    return;  // the end-of-handle() flush_tee sends the re-tee batch
  }
  // Replica role: accept only from the one primary this server mirrors.
  if (!standby_primary_.valid() || src != standby_primary_) return;
  wire::ReplicaTee::Cursor cur = m.entries();
  wire::ReplicaTee::Entry e;
  while (cur.next(e)) {
    ++stats_.tee_entries_applied;
    switch (e.op) {
      case wire::ReplicaTee::Op::kRemove:
        if (sightings_->find(e.s.oid) != nullptr) sightings_->remove(e.s.oid);
        visitor_db_.remove(e.s.oid);
        break;
      case wire::ReplicaTee::Op::kSetAcc:
        // Mirror of on_change_acc_req's store effect: record + offered acc
        // change WITHOUT any spatial-index operation (the primary performs
        // none, and byte-equal answers require identical index op sequences).
        visitor_db_.insert_leaf(e.s.oid, e.offered_acc, e.reg);
        sightings_->set_offered_acc(e.s.oid, e.offered_acc);
        break;
      case wire::ReplicaTee::Op::kUpsert:
        visitor_db_.insert_leaf(e.s.oid, e.offered_acc, e.reg);
        // Insert-or-update exactly like put_sighting / apply_batch on the
        // primary -- NOT remove+reinsert -- so the index mutation sequence
        // matches the primary's and packed query emission is byte-identical.
        if (sightings_->find(e.s.oid) != nullptr) {
          sightings_->update(e.s, e.expiry);
          sightings_->set_offered_acc(e.s.oid, e.offered_acc);
        } else {
          sightings_->insert(e.s, e.offered_acc, e.expiry);
        }
        break;
    }
  }
}

void LocationServer::on_standby_promote(NodeId src, const wm::StandbyPromote& m) {
  // Only our parent may promote us, and only for the primary we mirror.
  if (src != cfg_.parent || !standby_primary_.valid() ||
      m.primary != standby_primary_ || standby_active_) {
    return;
  }
  standby_active_ = true;
  ++stats_.standby_promotions;
  // Clients keep sending updates to the dead primary until told otherwise;
  // the AgentChanged fan-out re-points every mirrored visitor at us NOW
  // instead of waiting for per-update nacks.
  standby_fan_agent_changed(self_);
}

void LocationServer::on_standby_demote(NodeId src, const wm::StandbyDemote& m) {
  if (src != cfg_.parent || !standby_primary_.valid() ||
      m.primary != standby_primary_) {
    return;
  }
  if (!standby_active_) return;
  standby_active_ = false;
  ++stats_.standby_demotions;
  // Point the clients back at the recovered primary FIRST (while the mirror
  // still knows every visitor), then drop the mirrored state: the returning
  // primary rebuilds its volatile sightings via the RecoveryHello +
  // BatchedRefreshReq sweep, and a stale mirror here would shadow it.
  standby_fan_agent_changed(standby_primary_);
  std::vector<ObjectId> drop;
  visitor_db_.for_each([&](const store::VisitorRecord& rec) {
    if (rec.leaf) drop.push_back(rec.oid);
  });
  for (const ObjectId oid : drop) {
    if (sightings_ && sightings_->find(oid) != nullptr) sightings_->remove(oid);
  }
  visitor_db_.remove_batch(drop);
}

void LocationServer::standby_fan_agent_changed(NodeId agent) {
  // Deterministic fan-out: the visitorDB map iterates in hash order, so sort
  // (reg_inst, oid) before emitting -- reruns produce identical traces.
  refresh_targets_scratch_.clear();
  visitor_db_.for_each([&](const store::VisitorRecord& rec) {
    if (rec.leaf) {
      refresh_targets_scratch_.emplace_back(rec.leaf->reg_info.reg_inst, rec.oid);
    }
  });
  std::sort(refresh_targets_scratch_.begin(), refresh_targets_scratch_.end());
  for (const auto& [client, oid] : refresh_targets_scratch_) {
    const store::VisitorRecord* rec = visitor_db_.find(oid);
    if (rec == nullptr || !rec->leaf) continue;
    send_msg(client, wm::AgentChanged{oid, agent, rec->leaf->offered_acc});
  }
}

void LocationServer::set_child_standby(NodeId child, NodeId standby) {
  if (!child.valid() || !standby.valid()) return;
  // Keep `engaged` as-is for a re-registration: restart-time re-wiring must
  // not mask a pending demotion of an engaged standby.
  child_standbys_[child].standby = standby;
}

NodeId LocationServer::standby_for(NodeId child) const {
  const auto it = child_standbys_.find(child);
  if (it == child_standbys_.end() || !it->second.engaged) return kNoNode;
  return it->second.standby;
}

void LocationServer::engage_standby(NodeId child) {
  const auto it = child_standbys_.find(child);
  if (it == child_standbys_.end() || it->second.engaged) return;
  it->second.engaged = true;
  ++stats_.standbys_engaged;
  send_msg(it->second.standby, wm::StandbyPromote{child, ++standby_incarnation_});
}

void LocationServer::disengage_standby(NodeId child) {
  const auto it = child_standbys_.find(child);
  if (it == child_standbys_.end() || !it->second.engaged) return;
  it->second.engaged = false;
  send_msg(it->second.standby, wm::StandbyDemote{child, ++standby_incarnation_});
}

// --------------------------------------------------------------------------
// position queries (Algorithm 6-4)

void LocationServer::on_pos_query_req(NodeId src, const wm::PosQueryReq& m) {
  // §6.5 cache 3: a still-valid cached descriptor answers immediately.
  if (opts_.enable_position_cache) {
    const auto cached = [&] {
      store::MaybeGuard guard(cache_mu_);
      return position_cache_->find(m.oid, now(), opts_.default_max_speed,
                                   opts_.position_cache_max_acc);
    }();
    if (cached) {
      ++stats_.pos_query_cache_hits;
      send_msg(src, wm::PosQueryRes{m.oid, true, *cached, kNoNode, m.req_id,
                                    std::nullopt});
      return;
    }
  }
  // Local answer (Alg 6-4 lines 1-4).
  const store::VisitorRecord* rec = visitor_db_.find(m.oid);
  if (rec != nullptr && rec->leaf && sightings_) {
    const store::SightingDb::Record* srec = sightings_->find(m.oid);
    if (srec != nullptr) {
      ++stats_.pos_queries_served;
      const LocationDescriptor ld{srec->sighting.pos, rec->leaf->offered_acc};
      send_msg(src, wm::PosQueryRes{m.oid, true, ld, self_, m.req_id, std::nullopt});
      return;
    }
    // Visitor known persistently but sighting lost (recovery, §5): ask the
    // object for a refresh and answer when it arrives.
    ++stats_.refresh_requests;
    send_msg(rec->leaf->reg_info.reg_inst, wm::RefreshReq{m.oid});
    awaiting_refresh_[m.oid].push_back(
        {src, m.req_id, now() + opts_.pending_timeout});
    return;
  }

  const std::uint64_t internal_id = next_req_id();
  PendingPos pending{src, m.req_id, m.oid, false, now() + opts_.pending_timeout};

  // §6.5 cache 2: ask the cached agent directly; fall back on timeout.
  if (opts_.enable_agent_cache) {
    const auto agent = [&] {
      store::MaybeGuard guard(cache_mu_);
      return agent_cache_->find(m.oid, now());
    }();
    if (agent && *agent != self_) {
      ++stats_.agent_cache_hits;
      pending.via_agent_cache = true;
      pending_pos_.emplace(internal_id, pending);
      send_msg(*agent, wm::PosQueryFwd{m.oid, self_, internal_id});
      return;
    }
  }
  NodeId next = kNoNode;
  if (rec != nullptr && !rec->leaf) {
    next = rec->forward_ref;  // non-leaf entry with a pointer: go down
  } else if (!cfg_.is_root()) {
    next = cfg_.parent;  // Alg 6-4 line 6: forward query upwards
  }
  if (next.valid() && child_suspect(next)) {
    const NodeId standby = standby_for(next);
    if (standby.valid()) {
      // The crashed leaf has a promoted hot standby: route there and keep
      // the answer complete instead of short-circuiting to not-found.
      ++stats_.standby_routed_queries;
      pending_pos_.emplace(internal_id, pending);
      send_msg(standby, wm::PosQueryFwd{m.oid, self_, internal_id});
      return;
    }
  }
  if (!next.valid() || child_suspect(next)) {
    // No route -- or the route leads into a crashed subtree: answer fast
    // instead of letting the client wait out the pending timeout.
    if (next.valid()) ++stats_.suspect_short_circuits;
    send_msg(src, wm::PosQueryRes{m.oid, false, {}, kNoNode, m.req_id, std::nullopt});
    return;
  }
  pending_pos_.emplace(internal_id, pending);
  send_msg(next, wm::PosQueryFwd{m.oid, self_, internal_id});
}

void LocationServer::on_pos_query_fwd(NodeId src, const wm::PosQueryFwd& m) {
  (void)src;
  const store::VisitorRecord* rec = visitor_db_.find(m.oid);
  if (cfg_.is_leaf()) {
    if (rec != nullptr && rec->leaf && sightings_) {
      const store::SightingDb::Record* srec = sightings_->find(m.oid);
      if (srec != nullptr) {
        const LocationDescriptor ld{srec->sighting.pos, rec->leaf->offered_acc};
        send_msg(m.entry, wm::PosQueryRes{m.oid, true, ld, self_, m.req_id,
                                          origin_piggyback()});
        return;
      }
      ++stats_.refresh_requests;
      send_msg(rec->leaf->reg_info.reg_inst, wm::RefreshReq{m.oid});
      awaiting_refresh_[m.oid].push_back(
          {m.entry, m.req_id, now() + opts_.pending_timeout});
      return;
    }
    // Unknown at a leaf that was *sent* the query: a stale pointer or a
    // concurrent handover. Answer negatively rather than risk a routing
    // loop; the client may retry.
    send_msg(m.entry,
             wm::PosQueryRes{m.oid, false, {}, kNoNode, m.req_id, origin_piggyback()});
    return;
  }
  if (rec != nullptr && !rec->leaf && rec->forward_ref.valid()) {
    if (child_suspect(rec->forward_ref)) {
      const NodeId standby = standby_for(rec->forward_ref);
      if (standby.valid()) {
        // Promoted hot standby: the mirrored leaf state answers in place of
        // the crashed child -- the query stays answer-complete.
        ++stats_.standby_routed_queries;
        send_msg(standby, m);
        return;
      }
      // The forwarding path leads into a crashed subtree: answer for it
      // (not found) instead of letting the entry time out per query.
      ++stats_.suspect_short_circuits;
      send_msg(m.entry,
               wm::PosQueryRes{m.oid, false, {}, kNoNode, m.req_id, std::nullopt});
      return;
    }
    send_msg(rec->forward_ref, m);  // down the forwarding path
    return;
  }
  if (!cfg_.is_root()) {
    send_msg(cfg_.parent, m);  // upwards
    return;
  }
  // Root without a record: the object is not tracked.
  send_msg(m.entry, wm::PosQueryRes{m.oid, false, {}, kNoNode, m.req_id, std::nullopt});
}

void LocationServer::on_pos_query_res(NodeId src, const wm::PosQueryRes& m) {
  (void)src;
  const auto it = pending_pos_.find(m.req_id);
  if (it == pending_pos_.end()) return;
  const PendingPos pending = it->second;
  pending_pos_.erase(it);
  learn_origin(m.origin);
  if (m.found) {
    store::MaybeGuard guard(cache_mu_);
    if (opts_.enable_agent_cache && m.agent.valid()) {
      agent_cache_->learn(m.oid, m.agent, now());
    }
    if (opts_.enable_position_cache) position_cache_->learn(m.oid, m.ld, now());
  } else if (pending.via_agent_cache) {
    store::MaybeGuard guard(cache_mu_);
    agent_cache_->invalidate(m.oid);
  }
  send_msg(pending.client, wm::PosQueryRes{m.oid, m.found, m.ld, m.agent,
                                           pending.client_req_id, std::nullopt});
}

void LocationServer::flush_awaiting_refresh(ObjectId oid) {
  const auto it = awaiting_refresh_.find(oid);
  if (it == awaiting_refresh_.end()) return;
  const store::VisitorRecord* rec = visitor_db_.find(oid);
  const store::SightingDb::Record* srec = sightings_ ? sightings_->find(oid) : nullptr;
  if (rec == nullptr || !rec->leaf || srec == nullptr) return;
  const LocationDescriptor ld{srec->sighting.pos, rec->leaf->offered_acc};
  for (const WaitingQuery& wq : it->second) {
    send_msg(wq.entry,
             wm::PosQueryRes{oid, true, ld, self_, wq.req_id, origin_piggyback()});
  }
  awaiting_refresh_.erase(it);
}

// --------------------------------------------------------------------------
// range queries (Algorithm 6-5)

void LocationServer::on_range_query_req(NodeId src, const wm::RangeQueryReq& m) {
  const geo::Polygon enlarged = geo::enlarge(m.area, std::max(m.req_acc, 0.0));
  const std::uint64_t internal_id = next_req_id();
  PendingRange pending;
  pending.client = src;
  pending.client_req_id = m.req_id;
  pending.target = enlarged.area();
  pending.deadline = now() + opts_.pending_timeout;

  // Local contribution (Alg 6-5 lines 3-7): streamed from the store into a
  // packed segment -- already the merge input format -- so the entry's own
  // results never exist as a vector either.
  if (cfg_.is_leaf() && sightings_ && enlarged.intersects(cfg_.sa)) {
    SubSegment local;
    local.buf = net::PooledBuffer(send_pool_, send_pool_->acquire());
    {
      wm::Writer w(*local.buf);
      query_view().objects_in_area_emit(
          m.area, m.req_acc, m.req_overlap, [&](const ObjectResult& r) {
            wm::put_object_result(w, r);
            ++local.count;
          });
    }  // Writer flushes at scope exit
    local.data = local.buf->data();
    local.len = local.buf->size();
    if (local.count > 0) pending.segments.push_back(std::move(local));
    pending.covered += geo::intersection_area(enlarged, cfg_.sa);
  }
  if (cfg_.is_root()) {
    // Credit the part of the (enlarged) query that lies outside the entire
    // service area -- no server will ever report it.
    pending.covered +=
        enlarged.area() - geo::intersection_area(enlarged, cfg_.sa);
  }

  const bool needs_more = pending.covered < pending.target - coverage_epsilon(pending.target);
  if (needs_more && opts_.enable_leaf_area_cache) {
    // §6.5 cache 1: if cached leaf areas cover the whole remainder, contact
    // those leaves directly instead of traversing the hierarchy.
    const LeafAreaCache::Coverage cov = [&] {
      store::MaybeGuard guard(cache_mu_);
      return leaf_cache_->coverage_of(enlarged);
    }();
    if (pending.covered + cov.covered_size >=
        pending.target - coverage_epsilon(pending.target)) {
      ++stats_.range_direct;
      pending_range_.emplace(internal_id, std::move(pending));
      for (const NodeId leaf : cov.leaves) {
        if (leaf == self_) continue;
        send_msg(leaf, wm::RangeQueryFwd{m.area, m.req_acc, m.req_overlap, self_,
                                         internal_id, /*direct=*/true});
      }
      try_complete_range(internal_id);
      return;
    }
  }
  pending_range_.emplace(internal_id, std::move(pending));
  if (needs_more) {
    route_range(m.area, enlarged, m.req_acc, m.req_overlap, self_, internal_id,
                kNoNode);
  }
  try_complete_range(internal_id);
}

void LocationServer::route_range(const geo::Polygon& area,
                                 const geo::Polygon& enlarged, double req_acc,
                                 double req_overlap, NodeId entry,
                                 std::uint64_t req_id, NodeId from) {
  // Downwards: every child whose area intersects the enlarged query and that
  // did not send us the query (Alg 6-5 fwd lines 8-11).
  for (const ChildRecord& child : cfg_.children) {
    if (child.id == from) continue;
    if (!enlarged.intersects(child.sa)) continue;
    if (child_suspect(child.id)) {
      const NodeId standby = standby_for(child.id);
      if (standby.valid()) {
        // Promoted hot standby: forward the query there -- the mirror holds
        // the crashed leaf's full sighting set, so the sub-result (and thus
        // the merged answer) is identical to the unfaulted run.
        ++stats_.standby_routed_queries;
        send_msg(standby, wm::RangeQueryFwd{area, req_acc, req_overlap, entry,
                                            req_id, /*direct=*/true});
        continue;
      }
      // Answer FOR the crashed subtree: credit its covered portion with no
      // results so the entry completes promptly (availability over
      // completeness -- the soft state below the crash is being rebuilt by
      // refreshes) instead of timing the whole query out.
      ++stats_.suspect_short_circuits;
      wm::RangeQuerySubRes sub;
      sub.req_id = req_id;
      sub.covered_size = geo::intersection_area(enlarged, child.sa);
      send_msg(entry, sub);
      continue;
    }
    send_msg(child.id,
             wm::RangeQueryFwd{area, req_acc, req_overlap, entry, req_id, false});
  }
  // Upwards: while part of the enlarged area lies outside our service area
  // (Alg 6-5 fwd lines 13-14).
  if (!cfg_.is_root() && cfg_.parent != from &&
      !geo::convex_contains_polygon(cfg_.sa, enlarged)) {
    send_msg(cfg_.parent,
             wm::RangeQueryFwd{area, req_acc, req_overlap, entry, req_id, false});
  }
}

void LocationServer::answer_range_locally(const geo::Polygon& area,
                                          const geo::Polygon& enlarged,
                                          double req_acc, double req_overlap,
                                          NodeId entry, std::uint64_t req_id,
                                          double extra_covered) {
  assert(sightings_);
  // Scratch message: reusing the results vector and origin polygon capacity
  // makes the leaf's answer path allocation-free in steady state.
  wm::RangeQuerySubRes& sub = range_sub_scratch_;
  sub.req_id = req_id;
  sub.results.clear();
  // Results stream straight from the spatial index into the packed wire
  // framing; no result vector exists between store and socket.
  query_view().objects_in_area_emit(
      area, req_acc, req_overlap,
      [&](const ObjectResult& r) { sub.results.append(r); });
  sub.covered_size = geo::intersection_area(enlarged, cfg_.sa) + extra_covered;
  sub.origin = origin_piggyback();
  ++stats_.range_sub_answered;
  send_msg(entry, sub);
}

void LocationServer::on_range_query_fwd(NodeId src, const wm::RangeQueryFwd& m) {
  const geo::Polygon enlarged = geo::enlarge(m.area, std::max(m.req_acc, 0.0));
  double credit = 0.0;
  if (cfg_.is_root()) {
    credit = enlarged.area() - geo::intersection_area(enlarged, cfg_.sa);
  }
  if (cfg_.is_leaf()) {
    if (enlarged.intersects(cfg_.sa) || credit > 0.0) {
      answer_range_locally(m.area, enlarged, m.req_acc, m.req_overlap, m.entry,
                           m.req_id, credit);
    }
  } else if (credit > coverage_epsilon(enlarged.area())) {
    wm::RangeQuerySubRes sub;
    sub.req_id = m.req_id;
    sub.covered_size = credit;
    send_msg(m.entry, sub);
  }
  if (!m.direct) {
    route_range(m.area, enlarged, m.req_acc, m.req_overlap, m.entry, m.req_id, src);
  }
}

void LocationServer::on_range_query_sub_res(NodeId src,
                                            const wm::RangeQuerySubRes& m) {
  // Legacy (version-1) or re-framed arrival: the packed bytes were already
  // owned by the envelope decode, so re-frame them into a pooled segment by
  // one copy. Version-2 datagrams never reach this handler -- they take the
  // pinning view path (handle_sub_res_view).
  (void)src;
  const auto it = pending_range_.find(m.req_id);
  if (it == pending_range_.end()) return;
  learn_origin(m.origin);
  it->second.covered += m.covered_size;
  if (!m.results.empty()) {
    SubSegment seg;
    seg.buf = net::PooledBuffer(send_pool_, send_pool_->acquire());
    seg.buf->assign(m.results.packed.begin(), m.results.packed.end());
    seg.data = seg.buf->data();
    seg.len = seg.buf->size();
    seg.count = m.results.count;
    ++stats_.sub_res_copied;
    it->second.segments.push_back(std::move(seg));
  }
  try_complete_range(m.req_id);
}

void LocationServer::handle_sub_res_view(wm::SubResView& view,
                                         const net::Datagram& dg) {
  if (view.type() == wm::MsgType::kRangeQuerySubRes) {
    const auto it = pending_range_.find(view.req_id());
    if (it == pending_range_.end()) return;  // timed out earlier
    if (opts_.enable_leaf_area_cache && view.origin(origin_scratch_)) {
      learn_origin(origin_scratch_);
    }
    it->second.covered += view.covered_size();
    if (view.count() > 0) {
      // Pin the receive buffer for the duration of the merge: zero-copy on
      // both transports' native delivery paths; non-pinnable paths (SPSC
      // inbox rings, raw injection) degrade to one pooled copy.
      if (dg.zero_copy()) {
        ++stats_.sub_res_pinned;
      } else {
        ++stats_.sub_res_copied;
      }
      net::Datagram::Taken taken = dg.take(*send_pool_);
      SubSegment seg;
      seg.data = taken.data + (view.packed_data() - dg.data());
      seg.len = view.packed_size();
      seg.count = view.count();
      seg.buf = std::move(taken.buf);
      it->second.segments.push_back(std::move(seg));
    }
    try_complete_range(view.req_id());
    return;
  }
  // NN probe sub-result: candidates stream item-by-item off the datagram
  // into the pending ring's dedup map -- the map IS the merge state, so
  // nothing is pinned and no candidate vector ever exists.
  const auto it = pending_nn_.find(view.req_id());
  if (it == pending_nn_.end()) return;
  if (opts_.enable_leaf_area_cache && view.origin(origin_scratch_)) {
    learn_origin(origin_scratch_);
  }
  it->second.covered += view.covered_size();
  wm::ResultCursor cur = view.items();
  while (const auto item = cur.next()) {
    it->second.candidates[item->res.oid] = item->res.ld;
  }
  check_nn_ring(view.req_id());
}

void LocationServer::try_complete_range(std::uint64_t key) {
  const auto it = pending_range_.find(key);
  if (it == pending_range_.end()) return;
  PendingRange& pending = it->second;
  if (pending.covered < pending.target - coverage_epsilon(pending.target)) return;
  emit_range_result(pending.client, pending.client_req_id, /*complete=*/true,
                    pending);
  pending_range_.erase(it);
}

void LocationServer::emit_range_result(NodeId client, std::uint64_t client_req_id,
                                       bool complete, PendingRange& pending) {
  // Streaming merge: the final RangeQueryRes is written directly into an
  // outgoing pooled envelope by copying kept item byte ranges out of the
  // pinned segments -- the sub-results are never decoded. Dedup-on-emit:
  // the first occurrence of an ObjectId wins (arrival order), which equals
  // the historical plain concatenation whenever leaf areas tile (they do by
  // construction; direct/forwarded overlaps are the defensive case).
  //
  // Pass 1 sizes the answer (the dedup decisions are deterministic, so pass
  // 2 repeats them while copying); a lone segment skips the seen-set.
  const bool dedup = pending.segments.size() > 1;
  merge_seen_scratch_.clear();
  std::uint64_t kept = 0;
  std::size_t kept_bytes = 0;
  for (const SubSegment& seg : pending.segments) {
    wm::ResultCursor cur(seg.data, seg.len);
    while (const auto item = cur.next()) {
      if (dedup && !merge_seen_scratch_.insert(item->res.oid)) {
        ++stats_.merge_dedup_dropped;
        continue;
      }
      ++kept;
      kept_bytes += item->len;
    }
  }
  // Pass 2: emit. Byte-identical to encode_envelope_into of the equivalent
  // owned RangeQueryRes (pinned by test_query_merge).
  net::PooledBuffer out(send_pool_, send_pool_->acquire());
  {
    wm::Writer w(*out);
    w.reserve(64 + kept_bytes);
    wm::begin_envelope(w, self_, wm::MsgType::kRangeQueryRes);
    w.u64(client_req_id);
    w.boolean(complete);
    w.u64(kept);
    w.u64(kept_bytes);
    merge_seen_scratch_.clear();
    for (const SubSegment& seg : pending.segments) {
      wm::ResultCursor cur(seg.data, seg.len);
      while (const auto item = cur.next()) {
        if (dedup && !merge_seen_scratch_.insert(item->res.oid)) continue;
        w.bytes(item->data, item->len);
      }
    }
  }  // Writer flushes at scope exit
  pending.segments.clear();  // release the pinned receive buffers
  if (!client.valid()) return;
  ++stats_.msgs_sent;
  net_.send(self_, client, std::move(out));
}

// --------------------------------------------------------------------------
// nearest-neighbor queries (expanding-ring search; semantics of §3.2)

void LocationServer::on_nn_query_req(NodeId src, const wm::NNQueryReq& m) {
  PendingNN op;
  op.client = src;
  op.client_req_id = m.req_id;
  op.p = m.p;
  op.req_acc = m.req_acc;
  op.near_qual = std::max(m.near_qual, 0.0);
  if (!nn_map_pool_.empty()) {
    // Reuse a retired candidate map (bucket array intact) from an earlier
    // completed NN operation.
    op.candidates = std::move(nn_map_pool_.back());
    nn_map_pool_.pop_back();
    op.candidates.clear();
  }

  // Seed radius: the local nearest neighbor if we have one, else the size of
  // our own service area.
  const geo::Rect& own = cfg_.sa.bounding_box();
  double radius = std::max(own.width(), own.height());
  if (cfg_.is_leaf() && sightings_) {
    const auto local = query_view().k_nearest(m.p, 1, m.req_acc);
    if (!local.empty()) {
      radius = std::max(geo::distance(local[0].ld.pos, m.p) * 1.001, 1.0);
    }
  }
  op.radius = std::max(radius, 1.0);
  launch_nn_ring(std::move(op));
}

std::uint64_t LocationServer::launch_nn_ring(PendingNN op) {
  ++stats_.nn_rings;
  const std::uint64_t ring_key = next_req_id();
  const geo::Polygon probe_poly =
      geo::Polygon::circumscribed_circle(op.p, op.radius, opts_.nn_probe_sides);
  op.target = probe_poly.area();
  op.covered = 0.0;
  op.deadline = now() + opts_.pending_timeout;

  // Local contribution: streamed from the store straight into the ring's
  // candidate map (no intermediate vector).
  if (cfg_.is_leaf() && sightings_ && probe_poly.intersects(cfg_.sa)) {
    query_view().objects_in_circle_emit(
        {op.p, op.radius}, op.req_acc,
        [&](const ObjectResult& r) { op.candidates[r.oid] = r.ld; });
    op.covered += geo::intersection_area(probe_poly, cfg_.sa);
  }
  if (cfg_.is_root()) {
    op.covered += probe_poly.area() - geo::intersection_area(probe_poly, cfg_.sa);
  }

  wm::NNProbeFwd probe;
  probe.p = op.p;
  probe.radius = op.radius;
  probe.req_acc = op.req_acc;
  probe.coordinator = self_;
  probe.req_id = ring_key;

  pending_nn_.emplace(ring_key, std::move(op));
  route_nn_probe(probe, kNoNode);
  check_nn_ring(ring_key);
  return ring_key;
}

void LocationServer::route_nn_probe(const wm::NNProbeFwd& probe, NodeId from) {
  const geo::Polygon probe_poly =
      geo::Polygon::circumscribed_circle(probe.p, probe.radius, opts_.nn_probe_sides);
  for (const ChildRecord& child : cfg_.children) {
    if (child.id == from) continue;
    if (!probe_poly.intersects(child.sa)) continue;
    if (child_suspect(child.id)) {
      const NodeId standby = standby_for(child.id);
      if (standby.valid()) {
        // Promoted hot standby: probe the mirror instead of crediting empty
        // coverage -- the expanding ring sees the crashed leaf's candidates.
        ++stats_.standby_routed_queries;
        send_msg(standby, probe);
        continue;
      }
      // Mirror of the range-query fast path: credit the suspect child's
      // probe coverage so the expanding ring closes without a timeout.
      ++stats_.suspect_short_circuits;
      wm::NNProbeSubRes sub;
      sub.req_id = probe.req_id;
      sub.covered_size = geo::intersection_area(probe_poly, child.sa);
      send_msg(probe.coordinator, sub);
      continue;
    }
    send_msg(child.id, probe);
  }
  if (!cfg_.is_root() && cfg_.parent != from &&
      !geo::convex_contains_polygon(cfg_.sa, probe_poly)) {
    send_msg(cfg_.parent, probe);
  }
}

void LocationServer::answer_nn_probe_locally(const wm::NNProbeFwd& probe,
                                             double extra_covered) {
  assert(sightings_);
  const geo::Polygon probe_poly =
      geo::Polygon::circumscribed_circle(probe.p, probe.radius, opts_.nn_probe_sides);
  wm::NNProbeSubRes& sub = nn_sub_scratch_;
  sub.req_id = probe.req_id;
  sub.candidates.clear();
  // Candidates stream straight from the spatial index into the packed wire
  // framing; no candidate vector exists between store and socket.
  query_view().objects_in_circle_emit(
      {probe.p, probe.radius}, probe.req_acc,
      [&](const ObjectResult& r) { sub.candidates.append(r); });
  sub.covered_size = geo::intersection_area(probe_poly, cfg_.sa) + extra_covered;
  sub.origin = origin_piggyback();
  send_msg(probe.coordinator, sub);
}

void LocationServer::on_nn_probe_fwd(NodeId src, const wm::NNProbeFwd& m) {
  const geo::Polygon probe_poly =
      geo::Polygon::circumscribed_circle(m.p, m.radius, opts_.nn_probe_sides);
  double credit = 0.0;
  if (cfg_.is_root()) {
    credit = probe_poly.area() - geo::intersection_area(probe_poly, cfg_.sa);
  }
  if (cfg_.is_leaf()) {
    if (probe_poly.intersects(cfg_.sa) || credit > 0.0) {
      answer_nn_probe_locally(m, credit);
    }
  } else if (credit > coverage_epsilon(probe_poly.area())) {
    wm::NNProbeSubRes sub;
    sub.req_id = m.req_id;
    sub.covered_size = credit;
    send_msg(m.coordinator, sub);
  }
  route_nn_probe(m, src);
}

void LocationServer::on_nn_probe_sub_res(NodeId src, const wm::NNProbeSubRes& m) {
  (void)src;
  const auto it = pending_nn_.find(m.req_id);
  if (it == pending_nn_.end()) return;
  // Legacy (version-1) arrival; version-2 datagrams take the view path
  // (handle_sub_res_view). Same lazy per-item merge either way.
  learn_origin(m.origin);
  it->second.covered += m.covered_size;
  wm::PackedResults::Cursor cur = m.candidates.iter();
  ObjectResult r;
  while (cur.next(r)) it->second.candidates[r.oid] = r.ld;
  check_nn_ring(m.req_id);
}

void LocationServer::check_nn_ring(std::uint64_t ring_key) {
  const auto it = pending_nn_.find(ring_key);
  if (it == pending_nn_.end()) return;
  PendingNN& op = it->second;
  if (op.covered < op.target - coverage_epsilon(op.target)) return;  // ring open

  if (op.candidates.empty()) {
    if (op.radius >= opts_.nn_max_radius) {
      finish_nn(ring_key);
      return;
    }
    PendingNN next = std::move(op);
    pending_nn_.erase(it);
    next.radius = std::min(next.radius * 2.0, opts_.nn_max_radius);
    launch_nn_ring(std::move(next));
    return;
  }
  // d*: distance to the best candidate. The completed ring guarantees every
  // object (meeting reqAcc) within op.radius is known, so d* is the global
  // minimum. One more ring of radius d* + nearQual completes nearObjSet.
  double best = std::numeric_limits<double>::max();
  op.candidates.for_each([&](ObjectId, const LocationDescriptor& ld) {
    best = std::min(best, geo::distance(ld.pos, op.p));
  });
  const double needed = best + op.near_qual;
  if (op.final_ring || op.radius >= needed - 1e-9) {
    finish_nn(ring_key);
    return;
  }
  PendingNN next = std::move(op);
  pending_nn_.erase(it);
  next.radius = std::min(needed * 1.001, opts_.nn_max_radius);
  next.final_ring = true;
  launch_nn_ring(std::move(next));
}

void LocationServer::finish_nn(std::uint64_t ring_key) {
  const auto it = pending_nn_.find(ring_key);
  if (it == pending_nn_.end()) return;
  PendingNN op = std::move(it->second);
  pending_nn_.erase(it);

  wm::NNQueryRes& res = nn_res_scratch_;
  res.req_id = op.client_req_id;
  res.found = false;
  res.nearest = {};
  res.near_set.clear();
  if (!op.candidates.empty()) {
    // Deterministic winner: smallest distance, ties by object id.
    ObjectId best_oid;
    LocationDescriptor best_ld;
    double best_d = std::numeric_limits<double>::max();
    op.candidates.for_each([&](ObjectId oid, const LocationDescriptor& ld) {
      const double d = geo::distance(ld.pos, op.p);
      if (d < best_d || (d == best_d && oid < best_oid)) {
        best_d = d;
        best_oid = oid;
        best_ld = ld;
      }
    });
    res.found = true;
    res.nearest = {best_oid, best_ld};
    // nearObjSet: the only place the candidates materialize, bounded by the
    // near-quality disk and sorted before packing into the final framing.
    nn_local_scratch_.clear();
    op.candidates.for_each([&](ObjectId oid, const LocationDescriptor& ld) {
      if (oid == best_oid) return;
      if (geo::distance(ld.pos, op.p) <= best_d + op.near_qual + 1e-9) {
        nn_local_scratch_.push_back({oid, ld});
      }
    });
    // (distance, id): a total order, so the packed nearObjSet is identical
    // no matter which container or arrival order fed the candidates.
    std::sort(nn_local_scratch_.begin(), nn_local_scratch_.end(),
              [&](const ObjectResult& a, const ObjectResult& b) {
                const double da = geo::distance(a.ld.pos, op.p);
                const double db = geo::distance(b.ld.pos, op.p);
                return da != db ? da < db : a.oid < b.oid;
              });
    for (const ObjectResult& r : nn_local_scratch_) res.near_set.append(r);
  }
  send_msg(op.client, res);
  nn_map_pool_.push_back(std::move(op.candidates));
}

// --------------------------------------------------------------------------
// accuracy management / lifecycle

void LocationServer::on_change_acc_req(NodeId src, const wm::ChangeAccReq& m) {
  const store::VisitorRecord* rec = visitor_db_.find(m.oid);
  if (!cfg_.is_leaf() || rec == nullptr || !rec->leaf) {
    send_msg(src, wm::ChangeAccRes{m.req_id, false, 0.0});
    return;
  }
  const double acc = opts_.min_supported_acc;
  if (acc > m.acc_range.minimum) {
    send_msg(src, wm::ChangeAccRes{m.req_id, false, rec->leaf->offered_acc});
    return;
  }
  const double offered = negotiate_offered_acc(m.acc_range);
  const double old_offered = rec->leaf->offered_acc;
  const NodeId reg_inst = rec->leaf->reg_info.reg_inst;
  visitor_db_.insert_leaf(m.oid, offered, RegInfo{reg_inst, m.acc_range});
  if (sightings_) sightings_->set_offered_acc(m.oid, offered);
  tee_set_acc(m.oid, offered, RegInfo{reg_inst, m.acc_range});
  send_msg(src, wm::ChangeAccRes{m.req_id, true, offered});
  if (offered != old_offered && reg_inst != src) {
    send_msg(reg_inst, wm::NotifyAvailAcc{m.oid, offered});
  }
}

void LocationServer::on_deregister_req(NodeId src, const wm::DeregisterReq& m) {
  (void)src;
  if (!cfg_.is_leaf()) return;
  const store::VisitorRecord* rec = visitor_db_.find(m.oid);
  if (rec == nullptr || !rec->leaf) return;
  drop_leaf_visitor(m.oid, /*prune_path=*/true);
}

void LocationServer::request_refresh_all() {
  if (!cfg_.is_leaf()) return;
  refresh_targets_scratch_.clear();
  visitor_db_.for_each([&](const store::VisitorRecord& rec) {
    if (rec.leaf && (sightings_ == std::nullopt || !sightings_->find(rec.oid))) {
      refresh_targets_scratch_.emplace_back(rec.leaf->reg_info.reg_inst, rec.oid);
    }
  });
  send_refresh_batches(refresh_targets_scratch_);
}

void LocationServer::send_refresh_batches(
    std::vector<std::pair<NodeId, ObjectId>>& targets) {
  if (targets.empty()) return;
  // Sorting makes the sweep deterministic (the visitorDB map iterates in
  // hash order) and groups targets per client node.
  std::sort(targets.begin(), targets.end());
  wm::BatchedRefreshReq& batch = refresh_batch_scratch_;
  batch.clear();
  NodeId current = targets.front().first;
  const auto flush = [&](NodeId to) {
    if (batch.empty()) return;
    ++stats_.refresh_batches_sent;
    send_msg(to, batch);
    batch.clear();
  };
  for (const auto& [client, oid] : targets) {
    if (client != current) {
      flush(current);
      current = client;
    }
    batch.append(oid);
    ++stats_.refresh_requests;
    if (batch.count >= opts_.refresh_batch_max) flush(current);
  }
  flush(current);
}

void LocationServer::announce_recovery() {
  if (!cfg_.is_leaf()) return;
  if (cfg_.is_root()) {
    // Single-server hierarchy: nobody holds forwarding paths for us; sweep
    // the persisted leaf visitors directly.
    request_refresh_all();
    return;
  }
  // The parent answers with the BatchedRefreshReq sweep of every object it
  // still forwards here (on_recovery_hello); the sweep itself happens when
  // that reply arrives, filtered against whatever sightings already exist.
  send_msg(cfg_.parent, wm::RecoveryHello{++recovery_incarnation_});
}

bool LocationServer::child_suspect(NodeId child) const {
  const auto it = child_health_.find(child);
  return it != child_health_.end() && it->second.suspect;
}

bool LocationServer::should_nack_unknown(ObjectId oid) {
  if (!opts_.nack_unknown_updates) return false;
  // An update racing a deliberate drop (handover away, dereg, expiry) is not
  // state loss: the legitimate AgentChanged / silence is already on its way,
  // and a nack would trigger a spurious client re-registration.
  const auto it = recent_departures_.find(oid);
  if (it == recent_departures_.end()) return true;
  if (now() < it->second) return false;
  recent_departures_.erase(it);
  return true;
}

void LocationServer::on_heartbeat(NodeId src, const wm::Heartbeat& m) {
  send_msg(src, wm::HeartbeatAck{m.seq});
}

void LocationServer::on_heartbeat_ack(NodeId src, const wm::HeartbeatAck& m) {
  const auto it = child_health_.find(src);
  if (it == child_health_.end()) return;
  ChildHealth& h = it->second;
  // ANY ack is liveness evidence (even one reordered behind newer probes):
  // clear the miss counter and un-suspect without waiting for a hello.
  h.last_seq_acked = std::max(h.last_seq_acked, m.seq);
  if (h.suspect) disengage_standby(src);
  h.misses = 0;
  h.suspect = false;
}

void LocationServer::on_recovery_hello(NodeId src, const wm::RecoveryHello& m) {
  (void)m;  // the incarnation disambiguates log lines; protocol is idempotent
  ++stats_.recovery_hellos;
  disengage_standby(src);
  const auto it = child_health_.find(src);
  if (it != child_health_.end()) {
    it->second.suspect = false;
    it->second.misses = 0;
    it->second.last_seq_acked = it->second.last_seq_sent;
  }
  // Answer with every object we still forward to the restarted child; the
  // leaf intersects the list with its persisted records and sweeps refreshes
  // out to the registering instances.
  refresh_targets_scratch_.clear();
  visitor_db_.for_each([&](const store::VisitorRecord& rec) {
    if (!rec.leaf && rec.forward_ref == src) {
      refresh_targets_scratch_.emplace_back(src, rec.oid);
    }
  });
  send_refresh_batches(refresh_targets_scratch_);
}

void LocationServer::on_batched_refresh_req(NodeId src,
                                            const wm::BatchedRefreshReq& m) {
  (void)src;
  if (!cfg_.is_leaf()) return;  // sweeps target leaves (and, beyond, clients)
  // Parent-driven recovery sweep: refresh every listed object whose leaf
  // record survived (the persisted regInfo knows the registering instance)
  // but whose volatile sighting did not. Oids without a leaf record were
  // lost wholesale; those clients recover via nack_unknown_updates.
  refresh_targets_scratch_.clear();
  wm::BatchedRefreshReq::Cursor cur = m.oids();
  ObjectId oid;
  while (cur.next(oid)) {
    const store::VisitorRecord* rec = visitor_db_.find(oid);
    if (rec == nullptr || !rec->leaf) continue;
    if (sightings_ && sightings_->find(oid) != nullptr) continue;  // fresh
    refresh_targets_scratch_.emplace_back(rec->leaf->reg_info.reg_inst, oid);
  }
  send_refresh_batches(refresh_targets_scratch_);
}

// --------------------------------------------------------------------------
// event mechanism (extension)

void LocationServer::on_event_subscribe(NodeId src, const wm::EventSubscribe& m) {
  (void)src;
  const bool area_kind = m.kind == wm::PredicateKind::kAreaCount;
  const bool can_coordinate =
      cfg_.is_root() ||
      (area_kind && geo::convex_contains_polygon(cfg_.sa, m.area));
  if (!can_coordinate) {
    send_msg(cfg_.parent, m);
    return;
  }
  CoordinatorPred pred;
  pred.sub = m;
  coord_preds_[m.sub_id] = std::move(pred);
  wm::EventInstall inst;
  inst.sub_id = m.sub_id;
  inst.kind = m.kind;
  inst.area = m.area;
  inst.obj_a = m.obj_a;
  inst.obj_b = m.obj_b;
  inst.dist = m.dist;
  inst.coordinator = self_;
  if (cfg_.is_leaf()) install_event(inst);
  route_event_install(inst, kNoNode);
}

void LocationServer::route_event_install(const wm::EventInstall& inst, NodeId from) {
  for (const ChildRecord& child : cfg_.children) {
    if (child.id == from) continue;
    if (inst.kind == wm::PredicateKind::kAreaCount &&
        !inst.area.intersects(child.sa)) {
      continue;
    }
    send_msg(child.id, inst);
  }
}

void LocationServer::on_event_install(NodeId src, const wm::EventInstall& m) {
  if (cfg_.is_leaf()) {
    install_event(m);
  } else {
    route_event_install(m, src);
  }
}

void LocationServer::install_event(const wm::EventInstall& inst) {
  LeafPred& pred = leaf_preds_[inst.sub_id];
  leaf_pred_count_.store(leaf_preds_.size(), std::memory_order_relaxed);
  pred.inst = inst;
  pred.members.clear();
  // Seed with objects already tracked here (all shards of a sharded leaf).
  if (!sightings_) return;
  std::vector<std::pair<ObjectId, geo::Point>> present;
  if (inst.kind == wm::PredicateKind::kAreaCount) {
    std::vector<ObjectResult> inside;
    query_view().objects_in_area(inst.area, 1e18, 1e-9, inside);
    for (const ObjectResult& r : inside) {
      if (!inst.area.contains(r.ld.pos)) continue;  // membership by center
      pred.members.insert(r.oid);
      present.emplace_back(r.oid, r.ld.pos);
    }
  } else {
    for (const ObjectId oid : {inst.obj_a, inst.obj_b}) {
      store::SightingDb::Record rec;
      if (query_view().lookup(oid, rec)) present.emplace_back(oid, rec.sighting.pos);
    }
  }
  for (const auto& [oid, pos] : present) {
    wm::EventDelta delta{inst.sub_id, oid, true, pos};
    if (inst.coordinator == self_) {
      coordinator_handle_delta(self_, delta);
    } else {
      send_msg(inst.coordinator, delta);
    }
  }
}

void LocationServer::events_on_sighting(ObjectId oid, bool present, geo::Point pos) {
  // Sharded fan-in: secondary shards keep no leaf predicates (event messages
  // route to the coordinator shard), so presence changes are forwarded there
  // instead of walking the empty local table.
  if (sighting_event_hook_) {
    sighting_event_hook_(oid, present, pos);
    return;
  }
  apply_sighting_event(oid, present, pos);
}

void LocationServer::apply_sighting_event(ObjectId oid, bool present, geo::Point pos) {
  for (auto& [sub_id, pred] : leaf_preds_) {
    const wm::EventInstall& inst = pred.inst;
    if (inst.kind == wm::PredicateKind::kAreaCount) {
      const bool was_in = pred.members.count(oid) > 0;
      const bool now_in = present && inst.area.contains(pos);
      if (was_in == now_in) continue;
      if (now_in) {
        pred.members.insert(oid);
      } else {
        pred.members.erase(oid);
      }
      wm::EventDelta delta{sub_id, oid, now_in, pos};
      if (inst.coordinator == self_) {
        coordinator_handle_delta(self_, delta);
      } else {
        send_msg(inst.coordinator, delta);
      }
    } else {
      if (oid != inst.obj_a && oid != inst.obj_b) continue;
      wm::EventDelta delta{sub_id, oid, present, pos};
      if (inst.coordinator == self_) {
        coordinator_handle_delta(self_, delta);
      } else {
        send_msg(inst.coordinator, delta);
      }
    }
  }
}

void LocationServer::on_event_delta(NodeId src, const wm::EventDelta& m) {
  coordinator_handle_delta(src, m);
}

void LocationServer::coordinator_handle_delta(NodeId reporting_leaf,
                                              const wm::EventDelta& m) {
  const auto it = coord_preds_.find(m.sub_id);
  if (it == coord_preds_.end()) return;
  CoordinatorPred& pred = it->second;
  bool now_fired = pred.fired;
  std::uint32_t count = 0;
  if (pred.sub.kind == wm::PredicateKind::kAreaCount) {
    if (m.entered) {
      pred.inside[m.oid] = reporting_leaf;
    } else {
      // Only the leaf currently responsible may remove the membership; a
      // stale "left" from the pre-handover agent is ignored.
      const auto member = pred.inside.find(m.oid);
      if (member != pred.inside.end() && member->second == reporting_leaf) {
        pred.inside.erase(member);
      }
    }
    count = static_cast<std::uint32_t>(pred.inside.size());
    now_fired = count >= pred.sub.threshold;
  } else {
    const auto apply = [&](std::optional<geo::Point>& pos, NodeId& src) {
      if (m.entered) {
        pos = m.pos;
        src = reporting_leaf;
      } else if (src == reporting_leaf) {
        pos.reset();
        src = kNoNode;
      }
    };
    if (m.oid == pred.sub.obj_a) apply(pred.pos_a, pred.src_a);
    if (m.oid == pred.sub.obj_b) apply(pred.pos_b, pred.src_b);
    now_fired = pred.pos_a && pred.pos_b &&
                geo::distance(*pred.pos_a, *pred.pos_b) <= pred.sub.dist;
  }
  if (now_fired != pred.fired) {
    pred.fired = now_fired;
    ++stats_.events_fired;
    send_msg(pred.sub.subscriber, wm::EventNotify{m.sub_id, now_fired, count});
  }
}

void LocationServer::on_event_unsubscribe(NodeId src, const wm::EventUnsubscribe& m) {
  leaf_preds_.erase(m.sub_id);
  leaf_pred_count_.store(leaf_preds_.size(), std::memory_order_relaxed);
  const bool was_coordinator = coord_preds_.erase(m.sub_id) > 0;
  // Broadcast downwards so every leaf drops its local tracker; forward
  // upwards if we were not the coordinator (the coordinator is an ancestor).
  for (const ChildRecord& child : cfg_.children) {
    if (child.id != src) send_msg(child.id, m);
  }
  if (!was_coordinator && !cfg_.is_root() && cfg_.parent != src) {
    send_msg(cfg_.parent, m);
  }
}

// --------------------------------------------------------------------------
// maintenance

void LocationServer::tick(TimePoint t) {
  // Send-burst bracket: a tick can emit a storm (heartbeats to every child,
  // batch deadline flushes, expiry notifications), so cork the sender and
  // let the transport coalesce them into sendmmsg batches. SimNetwork
  // ignores the bracket (inline delivery, traces unchanged); the explicit
  // flush at the end guarantees nothing a tick produced outlives the tick.
  if (tx_sender_ != nullptr) {
    tx_sender_->cork();
  } else {
    net_.cork(self_);
  }
  tick_body(t);
  if (tx_sender_ != nullptr) {
    tx_sender_->uncork();
    tx_sender_->flush();
  } else {
    net_.uncork(self_);
    net_.flush(self_);
  }
}

void LocationServer::tick_body(TimePoint t) {
  // Failure detection: probe every child each interval; a child that let
  // heartbeat_miss_threshold whole intervals pass unanswered is suspect
  // (query routing then answers on its behalf; see the header invariants).
  if (opts_.heartbeat_interval > 0 && !cfg_.children.empty() &&
      t >= next_heartbeat_) {
    for (const ChildRecord& child : cfg_.children) {
      ChildHealth& h = child_health_[child.id];
      if (h.last_seq_sent > h.last_seq_acked) {
        if (++h.misses >= opts_.heartbeat_miss_threshold && !h.suspect) {
          h.suspect = true;
          ++stats_.children_suspected;
          engage_standby(child.id);
        }
      }
      h.last_seq_sent = ++heartbeat_seq_;
      ++stats_.heartbeats_sent;
      send_msg(child.id, wm::Heartbeat{h.last_seq_sent});
    }
    next_heartbeat_ = t + opts_.heartbeat_interval;
  }
  // Deadline flush for coalesced forwarding-path maintenance.
  if (opts_.coalesce_paths && !path_batch_.empty() &&
      t >= path_batch_oldest_ + opts_.path_batch_delay) {
    flush_path_batch();
  }
  // Bound the persistent log (and with it, recovery time).
  visitor_db_.maybe_compact(opts_.visitor_compact_threshold);
  // Forget deliberate departures once their nack-suppression window passed.
  for (auto it = recent_departures_.begin(); it != recent_departures_.end();) {
    it = it->second <= t ? recent_departures_.erase(it) : std::next(it);
  }
  // Soft-state expiry (§5): deregister objects whose sightings lapsed. The
  // visitor records are dropped in one bulk pass (remove_batch groups the
  // persistent-log appends); the per-object messages keep their order.
  // A PASSIVE replica never expires on its own clock: the primary owns the
  // TTL decision and tees the removal, so the mirror stays byte-identical
  // instead of racing the primary's sweep.
  if (sightings_ && !standby_passive()) {
    const std::vector<ObjectId> expired = sightings_->expire_until(t);
    for (const ObjectId oid : expired) {
      ++stats_.sightings_expired;
      events_on_sighting(oid, false, {});
      send_path(false, oid);
      tee_remove(oid);
    }
    visitor_db_.remove_batch(expired);
  }
  // Pending-operation timeouts.
  for (auto it = pending_pos_.begin(); it != pending_pos_.end();) {
    if (it->second.deadline > t) {
      ++it;
      continue;
    }
    PendingPos pending = it->second;
    if (pending.via_agent_cache) {
      // Stale agent cache: invalidate and retry through the hierarchy.
      {
        store::MaybeGuard guard(cache_mu_);
        agent_cache_->invalidate(pending.oid);
      }
      pending.via_agent_cache = false;
      pending.deadline = t + opts_.pending_timeout;
      const NodeId next = cfg_.is_root() ? kNoNode : cfg_.parent;
      if (next.valid()) {
        it->second = pending;
        send_msg(next, wm::PosQueryFwd{pending.oid, self_, it->first});
        ++it;
        continue;
      }
    }
    ++stats_.pending_timeouts;
    send_msg(pending.client, wm::PosQueryRes{pending.oid, false, {}, kNoNode,
                                             pending.client_req_id, std::nullopt});
    it = pending_pos_.erase(it);
  }
  for (auto it = pending_range_.begin(); it != pending_range_.end();) {
    if (it->second.deadline > t) {
      ++it;
      continue;
    }
    ++stats_.pending_timeouts;
    emit_range_result(it->second.client, it->second.client_req_id,
                      /*complete=*/false, it->second);
    it = pending_range_.erase(it);
  }
  std::vector<std::uint64_t> nn_timeouts;
  for (const auto& [key, op] : pending_nn_) {
    if (op.deadline <= t) nn_timeouts.push_back(key);
  }
  for (const std::uint64_t key : nn_timeouts) {
    ++stats_.pending_timeouts;
    finish_nn(key);  // best effort with whatever candidates arrived
  }
  for (auto it = pending_handover_.begin(); it != pending_handover_.end();) {
    if (it->second.deadline > t) {
      ++it;
      continue;
    }
    ++stats_.pending_timeouts;
    if (it->second.reply_to_object) handover_in_flight_.erase(it->second.oid);
    it = pending_handover_.erase(it);
  }
  for (auto it = awaiting_refresh_.begin(); it != awaiting_refresh_.end();) {
    auto& waiters = it->second;
    waiters.erase(std::remove_if(waiters.begin(), waiters.end(),
                                 [&](const WaitingQuery& wq) {
                                   if (wq.deadline > t) return false;
                                   ++stats_.pending_timeouts;
                                   send_msg(wq.entry,
                                            wm::PosQueryRes{it->first, false, {},
                                                            kNoNode, wq.req_id,
                                                            std::nullopt});
                                   return true;
                                 }),
                  waiters.end());
    it = waiters.empty() ? awaiting_refresh_.erase(it) : std::next(it);
  }
  // Anything the tick teed (expiry removals) rides out in one datagram.
  flush_tee();
}

}  // namespace locs::core
