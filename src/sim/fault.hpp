// Deterministic fault injection for crash-restart scenarios.
//
// The paper's soft-state design (§5) only pays off if servers actually
// crash: a FaultPlan is a virtual-time schedule of node crashes and restarts
// plus per-link fault knobs (drop / duplicate / delay / jitter), driven two
// ways:
//  * run() -- over the deterministic SimNetwork: deliveries, maintenance
//    ticks and fault events interleave at exact virtual times, so the whole
//    faulted execution is bit-identical run to run;
//  * take_due() -- the wall-clock harness hook: a UDP driver polls for due
//    events and applies them itself (see tests/test_sharded_stress.cpp).
//
// The plan does not know HOW to crash a node -- the hooks do (typically
// core::Deployment::crash / restart, which destroy and rebuild the reactor;
// pair with SimNetwork::set_node_down to also blackhole in-flight traffic).
#pragma once

#include <functional>
#include <tuple>
#include <vector>

#include "net/sim_network.hpp"
#include "util/clock.hpp"
#include "util/ids.hpp"

namespace locs::sim {

class FaultPlan {
 public:
  struct Event {
    TimePoint at = 0;
    enum class Kind { kCrash, kRestart } kind = Kind::kCrash;
    NodeId node;
  };

  struct Hooks {
    std::function<void(NodeId)> crash;
    std::function<void(NodeId)> restart;
    /// Periodic maintenance (Deployment::tick_all, coalescer ticks, ...)
    /// interleaved with deliveries every tick_every of virtual time.
    std::function<void(TimePoint)> tick;
    Duration tick_every = 0;
  };

  FaultPlan& crash_at(TimePoint at, NodeId node);
  FaultPlan& restart_at(TimePoint at, NodeId node);
  /// Installed on the network when run() starts (UDP harnesses apply their
  /// own loss; the knobs are SimNetwork-only).
  FaultPlan& link_fault(NodeId from, NodeId to, net::SimNetwork::LinkFault f);

  /// Drives `net` to `deadline`, firing ticks and crash/restart events at
  /// their exact virtual times. Events scheduled past the deadline stay
  /// pending (a later run() continues the plan). Deterministic: identical
  /// plans over identical networks yield identical executions.
  void run(net::SimNetwork& net, const Hooks& hooks, TimePoint deadline);

  /// Wall-clock harness hook: pops every not-yet-fired event with at <= now
  /// (in schedule order) for the caller to apply. `now` is whatever clock
  /// the harness drives -- e.g. milliseconds since soak start.
  std::vector<Event> take_due(TimePoint now);

  std::size_t pending_events() const { return events_.size() - next_; }

 private:
  void sort_events();

  std::vector<Event> events_;
  std::size_t next_ = 0;
  bool sorted_ = false;
  std::vector<std::tuple<NodeId, NodeId, net::SimNetwork::LinkFault>> link_faults_;
};

}  // namespace locs::sim
