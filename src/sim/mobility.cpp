#include "sim/mobility.hpp"

#include <algorithm>
#include <cmath>

namespace locs::sim {

namespace {

geo::Point clamp_to(const geo::Rect& area, geo::Point p) {
  return {std::clamp(p.x, area.min.x, area.max.x),
          std::clamp(p.y, area.min.y, area.max.y)};
}

class RandomWaypoint final : public MobilityModel {
 public:
  RandomWaypoint(const geo::Rect& area, geo::Point start, double min_speed,
                 double max_speed, Duration max_pause, Rng& rng)
      : area_(area),
        pos_(clamp_to(area, start)),
        min_speed_(min_speed),
        max_speed_(max_speed),
        max_pause_(max_pause),
        rng_(rng) {
    pick_waypoint();
  }

  geo::Point step(Duration dt) override {
    double remaining = to_seconds(dt);
    while (remaining > 0.0) {
      if (pause_left_ > 0.0) {
        const double pause = std::min(pause_left_, remaining);
        pause_left_ -= pause;
        remaining -= pause;
        continue;
      }
      const double dist_to_target = geo::distance(pos_, target_);
      const double travel = speed_ * remaining;
      if (travel >= dist_to_target) {
        pos_ = target_;
        remaining -= speed_ > 0.0 ? dist_to_target / speed_ : remaining;
        pause_left_ = rng_.uniform(0.0, to_seconds(max_pause_));
        pick_waypoint();
      } else {
        pos_ = pos_ + geo::normalized(target_ - pos_) * travel;
        remaining = 0.0;
      }
    }
    return pos_;
  }

  geo::Point position() const override { return pos_; }

 private:
  void pick_waypoint() {
    target_ = {rng_.uniform(area_.min.x, area_.max.x),
               rng_.uniform(area_.min.y, area_.max.y)};
    speed_ = rng_.uniform(min_speed_, max_speed_);
  }

  geo::Rect area_;
  geo::Point pos_;
  geo::Point target_;
  double speed_ = 0.0;
  double pause_left_ = 0.0;
  double min_speed_, max_speed_;
  Duration max_pause_;
  Rng& rng_;
};

class Manhattan final : public MobilityModel {
 public:
  Manhattan(const geo::Rect& area, geo::Point start, double block, double speed,
            Rng& rng)
      : area_(area), block_(block), speed_(speed), rng_(rng) {
    // Snap the start onto the nearest street (horizontal lines of the grid).
    pos_ = clamp_to(area, start);
    pos_.y = area.min.y + std::round((pos_.y - area.min.y) / block_) * block_;
    pos_ = clamp_to(area, pos_);
    dir_ = {1.0, 0.0};
  }

  geo::Point step(Duration dt) override {
    double remaining = speed_ * to_seconds(dt);
    while (remaining > 0.0) {
      const double to_corner = distance_to_next_corner();
      const double travel = std::min(remaining, to_corner);
      pos_ = clamp_to(area_, pos_ + dir_ * travel);
      remaining -= travel;
      if (travel >= to_corner - 1e-9) turn();
    }
    return pos_;
  }

  geo::Point position() const override { return pos_; }

 private:
  double distance_to_next_corner() const {
    // Corners are multiples of block_ from the area origin along the current
    // direction of travel.
    const double coord = dir_.x != 0.0 ? pos_.x - area_.min.x : pos_.y - area_.min.y;
    const double sign = dir_.x + dir_.y;  // +1 or -1
    const double within = coord - std::floor(coord / block_) * block_;
    double d = sign > 0.0 ? block_ - within : within;
    if (d < 1e-9) d = block_;
    // Do not run past the area boundary.
    double to_edge;
    if (dir_.x > 0) {
      to_edge = area_.max.x - pos_.x;
    } else if (dir_.x < 0) {
      to_edge = pos_.x - area_.min.x;
    } else if (dir_.y > 0) {
      to_edge = area_.max.y - pos_.y;
    } else {
      to_edge = pos_.y - area_.min.y;
    }
    return std::min(d, std::max(to_edge, 0.0));
  }

  void turn() {
    // At a corner: continue straight (50%), turn left (25%) or right (25%);
    // always turn around at the boundary.
    const bool at_x_edge = pos_.x <= area_.min.x + 1e-9 || pos_.x >= area_.max.x - 1e-9;
    const bool at_y_edge = pos_.y <= area_.min.y + 1e-9 || pos_.y >= area_.max.y - 1e-9;
    const double roll = rng_.next_double();
    geo::Point next = dir_;
    if (roll < 0.25) {
      next = geo::perp(dir_);
    } else if (roll < 0.5) {
      next = geo::perp(dir_) * -1.0;
    }
    const auto blocked = [&](geo::Point d) {
      return (d.x > 0 && pos_.x >= area_.max.x - 1e-9) ||
             (d.x < 0 && pos_.x <= area_.min.x + 1e-9) ||
             (d.y > 0 && pos_.y >= area_.max.y - 1e-9) ||
             (d.y < 0 && pos_.y <= area_.min.y + 1e-9);
    };
    if (blocked(next)) next = next * -1.0;
    if (blocked(next)) next = geo::perp(next);
    if (blocked(next)) next = next * -1.0;
    (void)at_x_edge;
    (void)at_y_edge;
    dir_ = next;
  }

  geo::Rect area_;
  geo::Point pos_;
  geo::Point dir_;
  double block_;
  double speed_;
  Rng& rng_;
};

class GaussMarkov final : public MobilityModel {
 public:
  GaussMarkov(const geo::Rect& area, geo::Point start, double mean_speed,
              double alpha, Rng& rng)
      : area_(area),
        pos_(clamp_to(area, start)),
        mean_speed_(mean_speed),
        speed_(mean_speed),
        heading_(rng.uniform(0.0, 2.0 * M_PI)),
        alpha_(alpha),
        rng_(rng) {}

  geo::Point step(Duration dt) override {
    const double a = alpha_;
    const double root = std::sqrt(std::max(0.0, 1.0 - a * a));
    speed_ = a * speed_ + (1.0 - a) * mean_speed_ +
             root * rng_.normal(0.0, mean_speed_ * 0.3);
    speed_ = std::max(0.0, speed_);
    heading_ = a * heading_ + (1.0 - a) * mean_heading_ +
               root * rng_.normal(0.0, 0.5);
    geo::Point next = pos_ + geo::Point{std::cos(heading_), std::sin(heading_)} *
                                 (speed_ * to_seconds(dt));
    // Reflect off the boundary and bias the mean heading back inwards.
    if (next.x < area_.min.x || next.x > area_.max.x) {
      heading_ = M_PI - heading_;
      mean_heading_ = heading_;
      next.x = std::clamp(next.x, area_.min.x, area_.max.x);
    }
    if (next.y < area_.min.y || next.y > area_.max.y) {
      heading_ = -heading_;
      mean_heading_ = heading_;
      next.y = std::clamp(next.y, area_.min.y, area_.max.y);
    }
    pos_ = next;
    return pos_;
  }

  geo::Point position() const override { return pos_; }

 private:
  geo::Rect area_;
  geo::Point pos_;
  double mean_speed_;
  double speed_;
  double heading_;
  double mean_heading_ = 0.0;
  double alpha_;
  Rng& rng_;
};

}  // namespace

std::unique_ptr<MobilityModel> make_random_waypoint(const geo::Rect& area,
                                                    geo::Point start,
                                                    double min_speed,
                                                    double max_speed,
                                                    Duration max_pause, Rng& rng) {
  return std::make_unique<RandomWaypoint>(area, start, min_speed, max_speed,
                                          max_pause, rng);
}

std::unique_ptr<MobilityModel> make_manhattan(const geo::Rect& area,
                                              geo::Point start, double block_size,
                                              double speed, Rng& rng) {
  return std::make_unique<Manhattan>(area, start, block_size, speed, rng);
}

std::unique_ptr<MobilityModel> make_gauss_markov(const geo::Rect& area,
                                                 geo::Point start, double mean_speed,
                                                 double alpha, Rng& rng) {
  return std::make_unique<GaussMarkov>(area, start, mean_speed, alpha, rng);
}

std::vector<geo::Point> uniform_placement(const geo::Rect& area, std::size_t n,
                                          Rng& rng) {
  std::vector<geo::Point> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({rng.uniform(area.min.x, area.max.x),
                   rng.uniform(area.min.y, area.max.y)});
  }
  return out;
}

std::vector<geo::Point> hotspot_placement(const geo::Rect& area, std::size_t n,
                                          std::size_t hotspot_count,
                                          double hotspot_fraction, double sigma,
                                          Rng& rng) {
  std::vector<geo::Point> centers = uniform_placement(area, hotspot_count, rng);
  std::vector<geo::Point> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!centers.empty() && rng.bernoulli(hotspot_fraction)) {
      const geo::Point c = centers[rng.next_below(centers.size())];
      geo::Point p{c.x + rng.normal(0.0, sigma), c.y + rng.normal(0.0, sigma)};
      out.push_back({std::clamp(p.x, area.min.x, area.max.x),
                     std::clamp(p.y, area.min.y, area.max.y)});
    } else {
      out.push_back({rng.uniform(area.min.x, area.max.x),
                     rng.uniform(area.min.y, area.max.y)});
    }
  }
  return out;
}

geo::Point sample_in_polygon(const geo::Polygon& poly, Rng& rng) {
  const auto tris = geo::triangulate(poly);
  if (tris.empty()) return poly.bounding_box().center();
  double total = 0.0;
  for (const auto& t : tris) total += t.area();
  double pick = rng.uniform(0.0, total);
  const geo::Triangle* chosen = &tris.back();
  for (const auto& t : tris) {
    pick -= t.area();
    if (pick <= 0.0) {
      chosen = &t;
      break;
    }
  }
  double u = rng.next_double();
  double v = rng.next_double();
  if (u + v > 1.0) {
    u = 1.0 - u;
    v = 1.0 - v;
  }
  return chosen->a + (chosen->b - chosen->a) * u + (chosen->c - chosen->a) * v;
}

}  // namespace locs::sim
