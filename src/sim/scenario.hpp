// City-scale macro scenarios (§7/§8: "the density of the tracked objects or
// their moving patterns"): deterministic, seed-parameterized object
// populations whose CORRELATED motion stresses exactly the load patterns a
// hierarchical location service must absorb.
//
//  * kUniform      -- random-waypoint wanderers, the no-skew control.
//  * kCommuterRush -- zone-to-zone flows: every commuter travels from a home
//                     cluster to a work cluster on its own schedule, so the
//                     leaves holding the work zones see a correlated inbound
//                     wave (spatial skew building up over rounds).
//  * kFlashCrowd   -- a stadium event: a crowd fraction converges on ONE
//                     point inside one leaf, AND crowd members carry strided
//                     ObjectIds -- the worst case for modulo shard routing
//                     (every crowd id lands on one shard unless the shard
//                     key is mixed; see ShardedLocationServer::Balance).
//  * kConvoys      -- vehicle fleets crossing the grid in formation: whole
//                     convoys hit leaf boundaries together, producing
//                     correlated handover storms.
//  * kDayNight     -- a sinusoidal active fraction (night floor -> full day
//                     load) with BurstModel gateway bursts: load cycles that
//                     exercise expiry sweeps and batch coalescing.
//
// Replay contract: a Scenario is a pure function of (params, seed). All rng
// draws happen in ascending object order, so two instances with equal
// params emit bit-identical update streams -- driven over SimNetwork (see
// drive_scenario) whole runs replay bit-identically (trace CRC equality,
// pinned by tests/test_macro_scenarios.cpp). A scenario-authoring guide
// lives in sim/workload.hpp next to the BurstModel it builds on.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/sharded_location_server.hpp"
#include "geo/point.hpp"
#include "geo/rect.hpp"
#include "sim/mobility.hpp"
#include "sim/workload.hpp"
#include "util/clock.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace locs::sim {

enum class ScenarioKind { kUniform, kCommuterRush, kFlashCrowd, kConvoys, kDayNight };

const char* scenario_name(ScenarioKind kind);

struct ScenarioParams {
  ScenarioKind kind = ScenarioKind::kUniform;
  std::uint64_t seed = 1;
  /// Population size; the suite runs 100k by default and scales to 1M.
  std::size_t objects = 100000;
  /// Update rounds driven through the deployment (one emit sweep each).
  int rounds = 8;
  /// Model-time step per round (mobility distance = speed * round_dt).
  Duration round_dt = seconds(10);
  geo::Rect area{{0.0, 0.0}, {6000.0, 6000.0}};

  // -- kCommuterRush --
  std::size_t zones = 8;          // home/work cluster count (each)
  double zone_sigma = 180.0;      // Gaussian cluster radius, metres
  // -- kFlashCrowd --
  double crowd_fraction = 0.6;    // fraction of objects in the crowd
  /// Crowd ObjectIds are `1 + j * stride`: with stride % shards == 0 a raw
  /// modulo shard key puts the WHOLE crowd on one shard (satellite pin:
  /// tests/test_macro_scenarios.cpp ShardKeyMixing*).
  std::uint64_t crowd_id_stride = 64;
  geo::Point stadium{750.0, 750.0};  // inside one leaf of the default grid
  int crowd_ramp_rounds = 4;         // rounds until the crowd has arrived
  // -- kConvoys --
  std::size_t convoys = 32;
  double convoy_speed = 30.0;     // leader speed, m/s (eastbound)
  double convoy_spread = 40.0;    // member offset sigma, metres
  // -- kDayNight --
  BurstModel burst;               // per-active-object gateway bursts
  double night_floor = 0.15;      // minimum active fraction
};

/// One deterministic scenario instance. Emission API: oid(i) names object
/// `i` on the wire, initial_position(i) seeds registration, and
/// step_round(round, emit) advances every object by round_dt and invokes
/// `emit(i, new_pos)` once per update (ascending i; day/night bursts emit
/// several per active object, inactive objects emit none).
class Scenario {
 public:
  explicit Scenario(ScenarioParams params);
  ~Scenario();

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  const ScenarioParams& params() const { return p_; }
  std::size_t object_count() const { return p_.objects; }

  ObjectId oid(std::size_t i) const;
  geo::Point initial_position(std::size_t i) const { return start_[i]; }

  using EmitFn = std::function<void(std::size_t index, geo::Point pos)>;
  void step_round(int round, const EmitFn& emit);

 private:
  struct Commuter {
    geo::Point home, work;
    int depart = 0, arrive = 1;
  };

  geo::Point clamped(geo::Point p) const;

  ScenarioParams p_;
  Rng rng_;
  std::vector<geo::Point> start_;
  // Model-driven kinds (uniform, flash-crowd wanderers, day/night); entries
  // for closed-form objects stay null.
  std::vector<std::unique_ptr<MobilityModel>> models_;
  std::vector<Commuter> commuters_;         // kCommuterRush
  std::size_t crowd_size_ = 0;              // kFlashCrowd
  std::vector<geo::Point> crowd_target_;    // per-member stadium offset
  std::vector<double> convoy_speed_;        // per-convoy leader speed
  std::vector<geo::Point> convoy_origin_;   // per-convoy start point
  std::vector<geo::Point> member_offset_;   // kConvoys, per object
  std::vector<double> activity_u_;          // kDayNight, per object
};

// --- Deterministic macro driver ---------------------------------------------

/// Topology / deployment knobs for one drive_scenario run. Defaults build a
/// 4x4 leaf grid over the scenario area with unsharded leaves; the
/// macro-balancing experiments turn on leaf_shards + balance.rebalance and
/// compare against a control run with rebalancing off.
struct DriveOptions {
  int grid_fanout_x = 4;
  int grid_fanout_y = 4;
  int grid_levels = 1;
  std::uint32_t leaf_shards = 1;
  bool force_leaf_sharding = false;
  core::ShardedLocationServer::Balance balance;
  std::uint64_t net_seed = 42;  // SimNetwork latency stream
  /// Position-query probes folded into answer_crc after the run (plus one
  /// whole-leaf range query per leaf).
  std::size_t pos_probes = 256;
};

struct DriveResult {
  /// CRC over every delivered datagram (time, endpoints, payload): equal
  /// CRCs mean bit-identical replay.
  std::uint32_t trace_crc = 0;
  /// CRC over canonicalized query answers (pos probes in probe order, range
  /// results sorted by oid): equal CRCs mean the deployments are
  /// answer-equivalent even when their traces differ (sharded vs unsharded,
  /// balanced vs control).
  std::uint32_t answer_crc = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t round_messages = 0;  // delivered during the update rounds
  std::uint64_t sightings_emitted = 0;
  std::vector<std::uint64_t> per_leaf_updates;  // update datagrams per leaf
  std::vector<std::size_t> leaf_occupancy;      // final sightings per leaf
  std::vector<std::size_t> shard_occupancy;     // flattened leaf-major slices
  std::uint64_t buckets_migrated = 0;
  std::uint64_t objects_migrated = 0;
  double virtual_ms = 0.0;
  double wall_seconds = 0.0;        // whole run (setup + rounds + probes)
  double rounds_wall_seconds = 0.0; // update rounds only (throughput basis)
};

DriveResult drive_scenario(const ScenarioParams& sp, const DriveOptions& opts);

}  // namespace locs::sim
