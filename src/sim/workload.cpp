#include "sim/workload.hpp"

#include <algorithm>
#include <cmath>

namespace locs::sim {

geo::Point WorkloadGenerator::anchor(geo::Point client_pos) {
  const geo::Rect& a = params_.area;
  if (rng_.bernoulli(params_.locality)) {
    const double ang = rng_.uniform(0.0, 2.0 * M_PI);
    const double r = params_.local_radius * std::sqrt(rng_.next_double());
    geo::Point p{client_pos.x + r * std::cos(ang), client_pos.y + r * std::sin(ang)};
    return {std::clamp(p.x, a.min.x, a.max.x), std::clamp(p.y, a.min.y, a.max.y)};
  }
  return {rng_.uniform(a.min.x, a.max.x), rng_.uniform(a.min.y, a.max.y)};
}

std::uint32_t WorkloadGenerator::next_update_burst() {
  const BurstModel& b = params_.update_burst;
  if (b.burst_max <= 1 || !rng_.bernoulli(b.burst_prob)) return 1;
  const std::uint32_t lo = std::max<std::uint32_t>(b.burst_min, 1);
  const std::uint32_t hi = std::max(b.burst_max, lo);
  return lo + static_cast<std::uint32_t>(rng_.next_below(hi - lo + 1));
}

QueryOp WorkloadGenerator::next(geo::Point client_pos,
                                const std::vector<ObjectId>& population) {
  QueryOp op;
  const double roll = rng_.next_double();
  const double total = params_.mix.p_pos + params_.mix.p_range + params_.mix.p_nn;
  const double p_pos = params_.mix.p_pos / total;
  const double p_range = params_.mix.p_range / total;
  if (roll < p_pos && !population.empty()) {
    op.kind = QueryOp::Kind::kPos;
    op.target = population[rng_.next_below(population.size())];
  } else if (roll < p_pos + p_range || population.empty()) {
    op.kind = QueryOp::Kind::kRange;
    const geo::Point c = anchor(client_pos);
    const double half = params_.range_extent / 2.0;
    op.area = geo::Polygon::from_rect(geo::Rect::from_center(c, half, half));
  } else {
    op.kind = QueryOp::Kind::kNN;
    op.p = anchor(client_pos);
  }
  return op;
}

}  // namespace locs::sim
