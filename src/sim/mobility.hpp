// Mobility models for workload generation (§8: "the density of the tracked
// objects or their moving patterns ... will be considered" -- these models
// drive exactly those future-work evaluations).
//
//  * RandomWaypoint -- the classic model: pick a destination uniformly in
//    the area, travel at a uniform-random speed, pause, repeat.
//  * ManhattanGrid  -- movement constrained to a street grid (city traffic).
//  * GaussMarkov    -- temporally correlated heading/speed (smooth paths,
//    tunable randomness).
//
// All models are deterministic given the Rng seed.
#pragma once

#include <memory>
#include <vector>

#include "geo/point.hpp"
#include "geo/polygon.hpp"
#include "geo/rect.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace locs::sim {

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Advances the object by dt and returns the new position (always inside
  /// the configured area).
  virtual geo::Point step(Duration dt) = 0;

  virtual geo::Point position() const = 0;
};

std::unique_ptr<MobilityModel> make_random_waypoint(const geo::Rect& area,
                                                    geo::Point start,
                                                    double min_speed,
                                                    double max_speed,
                                                    Duration max_pause, Rng& rng);

std::unique_ptr<MobilityModel> make_manhattan(const geo::Rect& area,
                                              geo::Point start, double block_size,
                                              double speed, Rng& rng);

std::unique_ptr<MobilityModel> make_gauss_markov(const geo::Rect& area,
                                                 geo::Point start, double mean_speed,
                                                 double alpha, Rng& rng);

/// Initial placement: uniform over the area.
std::vector<geo::Point> uniform_placement(const geo::Rect& area, std::size_t n,
                                          Rng& rng);

/// Initial placement with hot spots: a fraction of the objects cluster
/// around `hotspot_count` Gaussian centers (§4: "where hot spots are
/// located"); the rest are uniform. Positions are clamped into the area.
std::vector<geo::Point> hotspot_placement(const geo::Rect& area, std::size_t n,
                                          std::size_t hotspot_count,
                                          double hotspot_fraction, double sigma,
                                          Rng& rng);

/// Uniform sample inside an arbitrary simple polygon (via triangulation).
geo::Point sample_in_polygon(const geo::Polygon& poly, Rng& rng);

}  // namespace locs::sim
