#include "sim/scenario.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "core/deployment.hpp"
#include "core/hierarchy_builder.hpp"
#include "core/update_coalescer.hpp"
#include "net/sim_network.hpp"
#include "util/crc32.hpp"

namespace locs::sim {

const char* scenario_name(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kUniform: return "uniform";
    case ScenarioKind::kCommuterRush: return "commuter_rush";
    case ScenarioKind::kFlashCrowd: return "flash_crowd";
    case ScenarioKind::kConvoys: return "convoys";
    case ScenarioKind::kDayNight: return "day_night";
  }
  return "unknown";
}

geo::Point Scenario::clamped(geo::Point p) const {
  return {std::clamp(p.x, p_.area.min.x + 1.0, p_.area.max.x - 1.0),
          std::clamp(p.y, p_.area.min.y + 1.0, p_.area.max.y - 1.0)};
}

Scenario::Scenario(ScenarioParams params) : p_(std::move(params)), rng_(p_.seed) {
  const std::size_t n = p_.objects;
  // Every kind draws its placement first, then its per-object parameters, in
  // ascending object order -- the whole construction is one fixed rng
  // schedule, which is what makes same-seed instances bit-identical.
  start_ = uniform_placement(p_.area, n, rng_);
  switch (p_.kind) {
    case ScenarioKind::kUniform: {
      models_.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        models_.push_back(make_random_waypoint(p_.area, start_[i], 1.0, 15.0,
                                               seconds(30), rng_));
      }
      break;
    }
    case ScenarioKind::kCommuterRush: {
      const std::size_t z = std::max<std::size_t>(1, p_.zones);
      std::vector<geo::Point> home_centers, work_centers;
      for (std::size_t k = 0; k < z; ++k) {
        home_centers.push_back({rng_.uniform(p_.area.min.x + 1, p_.area.max.x - 1),
                                rng_.uniform(p_.area.min.y + 1, p_.area.max.y - 1)});
      }
      for (std::size_t k = 0; k < z; ++k) {
        work_centers.push_back({rng_.uniform(p_.area.min.x + 1, p_.area.max.x - 1),
                                rng_.uniform(p_.area.min.y + 1, p_.area.max.y - 1)});
      }
      commuters_.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        Commuter c;
        const geo::Point hc = home_centers[rng_.next_below(z)];
        const geo::Point wc = work_centers[rng_.next_below(z)];
        c.home = clamped({hc.x + rng_.normal(0.0, p_.zone_sigma),
                          hc.y + rng_.normal(0.0, p_.zone_sigma)});
        c.work = clamped({wc.x + rng_.normal(0.0, p_.zone_sigma),
                          wc.y + rng_.normal(0.0, p_.zone_sigma)});
        c.depart = static_cast<int>(
            rng_.uniform_int(0, std::max(0, p_.rounds / 3)));
        c.arrive = c.depart + static_cast<int>(rng_.uniform_int(
                                  1, std::max(1, p_.rounds / 2)));
        start_[i] = c.home;
        commuters_.push_back(c);
      }
      break;
    }
    case ScenarioKind::kFlashCrowd: {
      crowd_size_ = std::min(
          n, static_cast<std::size_t>(p_.crowd_fraction * static_cast<double>(n)));
      crowd_target_.reserve(crowd_size_);
      for (std::size_t j = 0; j < crowd_size_; ++j) {
        crowd_target_.push_back(clamped({p_.stadium.x + rng_.normal(0.0, 25.0),
                                         p_.stadium.y + rng_.normal(0.0, 25.0)}));
      }
      models_.resize(n);  // crowd entries stay null; wanderers get models
      for (std::size_t i = crowd_size_; i < n; ++i) {
        models_[i] = make_random_waypoint(p_.area, start_[i], 1.0, 15.0,
                                          seconds(30), rng_);
      }
      break;
    }
    case ScenarioKind::kConvoys: {
      const std::size_t c = std::max<std::size_t>(1, p_.convoys);
      for (std::size_t k = 0; k < c; ++k) {
        convoy_origin_.push_back(
            {p_.area.min.x + 1.0,
             rng_.uniform(p_.area.min.y + 1, p_.area.max.y - 1)});
        convoy_speed_.push_back(p_.convoy_speed * rng_.uniform(0.8, 1.2));
      }
      member_offset_.reserve(n);
      const std::size_t per = (n + c - 1) / c;
      for (std::size_t i = 0; i < n; ++i) {
        member_offset_.push_back({rng_.normal(0.0, p_.convoy_spread),
                                  rng_.normal(0.0, p_.convoy_spread)});
        start_[i] = clamped(convoy_origin_[i / per] + member_offset_[i]);
      }
      break;
    }
    case ScenarioKind::kDayNight: {
      models_.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        models_.push_back(make_random_waypoint(p_.area, start_[i], 1.0, 15.0,
                                               seconds(30), rng_));
      }
      activity_u_.reserve(n);
      for (std::size_t i = 0; i < n; ++i) activity_u_.push_back(rng_.next_double());
      break;
    }
  }
}

Scenario::~Scenario() = default;

ObjectId Scenario::oid(std::size_t i) const {
  if (p_.kind == ScenarioKind::kFlashCrowd) {
    const std::uint64_t stride = std::max<std::uint64_t>(1, p_.crowd_id_stride);
    if (i < crowd_size_) return ObjectId{1 + i * stride};
    // Non-crowd ids start past the largest crowd id, densely packed.
    return ObjectId{1 + crowd_size_ * stride + (i - crowd_size_)};
  }
  return ObjectId{1 + i};
}

void Scenario::step_round(int round, const EmitFn& emit) {
  const std::size_t n = p_.objects;
  switch (p_.kind) {
    case ScenarioKind::kUniform: {
      for (std::size_t i = 0; i < n; ++i) emit(i, models_[i]->step(p_.round_dt));
      break;
    }
    case ScenarioKind::kCommuterRush: {
      for (std::size_t i = 0; i < n; ++i) {
        const Commuter& c = commuters_[i];
        geo::Point pos;
        if (round + 1 <= c.depart) {
          pos = c.home;
        } else if (round + 1 >= c.arrive) {
          pos = c.work;
        } else {
          const double t = static_cast<double>(round + 1 - c.depart) /
                           static_cast<double>(c.arrive - c.depart);
          pos = c.home + (c.work - c.home) * t;
        }
        emit(i, pos);
      }
      break;
    }
    case ScenarioKind::kFlashCrowd: {
      const double t =
          std::min(1.0, static_cast<double>(round + 1) /
                            static_cast<double>(std::max(1, p_.crowd_ramp_rounds)));
      for (std::size_t i = 0; i < n; ++i) {
        if (i < crowd_size_) {
          emit(i, start_[i] + (crowd_target_[i] - start_[i]) * t);
        } else {
          emit(i, models_[i]->step(p_.round_dt));
        }
      }
      break;
    }
    case ScenarioKind::kConvoys: {
      const std::size_t c = convoy_origin_.size();
      const std::size_t per = (n + c - 1) / c;
      const double width = p_.area.max.x - p_.area.min.x;
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t k = i / per;
        // Leaders roll east and wrap; the whole formation crosses every leaf
        // boundary together (correlated handover bursts by construction).
        const double dist = convoy_speed_[k] * to_seconds(p_.round_dt) *
                            static_cast<double>(round + 1);
        const double x = p_.area.min.x +
                         std::fmod(convoy_origin_[k].x - p_.area.min.x + dist, width);
        emit(i, clamped({x + member_offset_[i].x,
                         convoy_origin_[k].y + member_offset_[i].y}));
      }
      break;
    }
    case ScenarioKind::kDayNight: {
      const double phase = 2.0 * M_PI * static_cast<double>(round + 1) /
                           static_cast<double>(std::max(1, p_.rounds));
      const double frac =
          p_.night_floor + (1.0 - p_.night_floor) * 0.5 * (1.0 - std::cos(phase));
      for (std::size_t i = 0; i < n; ++i) {
        if (activity_u_[i] >= frac) continue;  // off-shift: no report, no draw
        const std::uint32_t burst =
            rng_.bernoulli(p_.burst.burst_prob)
                ? static_cast<std::uint32_t>(rng_.uniform_int(
                      p_.burst.burst_min, p_.burst.burst_max))
                : 1;
        const Duration sub = p_.round_dt / static_cast<Duration>(burst);
        for (std::uint32_t k = 0; k < burst; ++k) {
          emit(i, models_[i]->step(sub));
        }
      }
      break;
    }
  }
}

// --- drive_scenario ----------------------------------------------------------

namespace {

constexpr NodeId kGateway{901};
constexpr NodeId kProbe{902};

}  // namespace

DriveResult drive_scenario(const ScenarioParams& sp, const DriveOptions& opts) {
  const auto wall_start = std::chrono::steady_clock::now();
  Scenario scn(sp);

  net::SimNetwork::Options nopts;
  nopts.seed = opts.net_seed;
  net::SimNetwork net(nopts);

  core::Deployment::Config cfg;
  cfg.leaf_shards = opts.leaf_shards;
  cfg.force_leaf_sharding = opts.force_leaf_sharding;
  cfg.leaf_balance = opts.balance;
  core::Deployment deployment(
      net, net.clock(),
      core::HierarchyBuilder::grid(sp.area, opts.grid_fanout_x,
                                   opts.grid_fanout_y, opts.grid_levels),
      cfg);

  DriveResult res;
  std::vector<NodeId> leaves = deployment.leaf_ids();
  std::sort(leaves.begin(), leaves.end());
  std::unordered_map<std::uint32_t, std::size_t> leaf_index;
  for (std::size_t i = 0; i < leaves.size(); ++i) leaf_index[leaves[i].value] = i;
  res.per_leaf_updates.assign(leaves.size(), 0);

  net.set_tracer([&](TimePoint at, NodeId from, NodeId to, const wire::Buffer& b) {
    res.trace_crc = crc32(&at, sizeof at, res.trace_crc);
    res.trace_crc = crc32(&from.value, sizeof from.value, res.trace_crc);
    res.trace_crc = crc32(&to.value, sizeof to.value, res.trace_crc);
    res.trace_crc = crc32(b.data(), b.size(), res.trace_crc);
    const auto it = leaf_index.find(to.value);
    if (it != leaf_index.end() && b.size() > 1) {
      const auto type = static_cast<wire::MsgType>(b[1]);
      if (type == wire::MsgType::kBatchedUpdateReq ||
          type == wire::MsgType::kUpdateReq ||
          type == wire::MsgType::kRegisterReq) {
        ++res.per_leaf_updates[it->second];
      }
    }
  });

  // The sensor gateway (bench_recovery idiom): one UpdateCoalescer feeds the
  // whole population; AgentChanged fan-in keeps the oid -> agent map current
  // as handovers retarget objects, refresh fan-in re-feeds last positions.
  std::unordered_map<ObjectId, NodeId> agent;
  std::unordered_map<ObjectId, geo::Point> last_pos;
  core::UpdateCoalescer coalescer(kGateway, net, net.clock(), {});
  coalescer.set_on_agent_changed(
      [&](ObjectId oid, NodeId new_agent, double) { agent[oid] = new_agent; });
  coalescer.set_on_refresh([&](ObjectId oid) {
    const auto it = last_pos.find(oid);
    if (it == last_pos.end()) return;
    coalescer.enqueue(agent[oid], core::Sighting{oid, 0, it->second, 5.0});
  });

  const std::size_t n = scn.object_count();
  agent.reserve(n);
  last_pos.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const ObjectId id = scn.oid(i);
    const geo::Point p = scn.initial_position(i);
    const NodeId leaf = deployment.entry_leaf_for(p);
    wire::RegisterReq req;
    req.s = core::Sighting{id, 0, p, 5.0};
    req.acc_range = {10.0, 100.0};
    req.reg_inst = kGateway;
    req.req_id = id.value;
    net.send(kGateway, leaf, wire::encode_envelope(kGateway, req));
    agent[id] = leaf;
    last_pos[id] = p;
    // Drain periodically so the event heap stays bounded at 1M objects.
    if ((i & 0xfff) == 0xfff) net.run_until_idle();
  }
  net.run_until_idle();
  deployment.tick_all(net.now());

  const auto rounds_start = std::chrono::steady_clock::now();
  const std::uint64_t msgs_before_rounds = net.messages_sent();
  for (int round = 0; round < sp.rounds; ++round) {
    scn.step_round(round, [&](std::size_t i, geo::Point pos) {
      const ObjectId id = scn.oid(i);
      last_pos[id] = pos;
      coalescer.enqueue(agent[id], core::Sighting{id, 0, pos, 5.0});
      ++res.sightings_emitted;
    });
    coalescer.flush_all();
    net.run_until_idle();
    deployment.tick_all(net.now());  // expiry sweeps + shard rebalancer
    net.run_until_idle();
  }
  res.rounds_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - rounds_start)
          .count();
  res.round_messages = net.messages_sent() - msgs_before_rounds;
  // Let an enabled rebalancer converge on the final distribution (each tick
  // moves at most Balance::max_buckets_per_sweep buckets per leaf).
  for (int k = 0; k < 4; ++k) {
    deployment.tick_all(net.now());
    net.run_until_idle();
  }

  // Final occupancy (leaf-major shard slices).
  for (const NodeId leaf : leaves) {
    if (core::ShardedLocationServer* sh = deployment.sharded(leaf)) {
      std::size_t total = 0;
      for (const auto& load : sh->shard_loads()) {
        res.shard_occupancy.push_back(load.sightings);
        total += load.sightings;
      }
      res.leaf_occupancy.push_back(total);
      res.buckets_migrated += sh->buckets_migrated();
      res.objects_migrated += sh->objects_migrated();
    } else {
      const store::SightingDb* db = deployment.server(leaf).sightings();
      const std::size_t size = db != nullptr ? db->size() : 0;
      res.leaf_occupancy.push_back(size);
      res.shard_occupancy.push_back(size);
    }
  }

  // Answer probes, folded into answer_crc in PROBE order (one outstanding
  // query at a time, so the fold order never depends on delivery
  // interleaving): pos queries over a deterministic population sample plus
  // one whole-leaf range query per leaf, results sorted by oid. Two runs
  // with equal answer_crc hold the same soft state, whatever their shard
  // layout or migration history (the balanced-vs-control equivalence gate).
  std::uint32_t acrc = 0;
  const auto fold_u64 = [&](std::uint64_t v) { acrc = crc32(&v, sizeof v, acrc); };
  const auto fold_f64 = [&](double v) { acrc = crc32(&v, sizeof v, acrc); };
  net.attach(kProbe, net::DatagramHandler([&](const net::Datagram& dg) {
    auto env = wire::decode_envelope(dg.data(), dg.size());
    if (!env.ok()) return;
    if (const auto* pr = std::get_if<wire::PosQueryRes>(&env.value().msg)) {
      fold_u64(pr->req_id);
      fold_u64(pr->oid.value);
      fold_u64(pr->found ? 1 : 0);
      fold_u64(pr->agent.value);
      fold_f64(pr->ld.pos.x);
      fold_f64(pr->ld.pos.y);
      fold_f64(pr->ld.acc);
    } else if (const auto* rr = std::get_if<wire::RangeQueryRes>(&env.value().msg)) {
      std::vector<wire::ObjectResult> results = rr->results.to_vector();
      std::sort(results.begin(), results.end(),
                [](const wire::ObjectResult& a, const wire::ObjectResult& b) {
                  return a.oid.value < b.oid.value;
                });
      fold_u64(rr->req_id);
      fold_u64(rr->complete ? 1 : 0);
      fold_u64(results.size());
      for (const wire::ObjectResult& r : results) {
        fold_u64(r.oid.value);
        fold_f64(r.ld.pos.x);
        fold_f64(r.ld.pos.y);
        fold_f64(r.ld.acc);
      }
    }
  }));

  const std::size_t stride = std::max<std::size_t>(1, n / std::max<std::size_t>(
                                                          1, opts.pos_probes));
  std::uint64_t req_id = 1;
  for (std::size_t i = 0; i < n; i += stride) {
    wire::PosQueryReq q;
    q.oid = scn.oid(i);
    q.req_id = req_id;
    net.send(kProbe, leaves[req_id % leaves.size()], wire::encode_envelope(kProbe, q));
    net.run_until_idle();
    ++req_id;
  }
  {
    wire::PosQueryReq q;  // unknown object: deterministic not-found path
    q.oid = ObjectId{0xffffffffff00ULL};
    q.req_id = req_id++;
    net.send(kProbe, leaves[0], wire::encode_envelope(kProbe, q));
    net.run_until_idle();
  }
  for (std::size_t li = 0; li < leaves.size(); ++li) {
    wire::RangeQueryReq q;
    q.area = geo::Polygon::from_rect(
        deployment.server(leaves[li]).config().sa.bounding_box());
    q.req_acc = 50.0;
    q.req_overlap = 0.5;
    q.req_id = 1000000 + li;
    net.send(kProbe, leaves[li], wire::encode_envelope(kProbe, q));
    net.run_until_idle();
  }
  net.detach(kProbe);
  net.set_tracer(nullptr);

  res.answer_crc = acrc;
  res.messages = net.messages_sent();
  res.bytes = net.bytes_sent();
  res.virtual_ms = static_cast<double>(net.now()) / 1000.0;
  res.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  return res;
}

}  // namespace locs::sim
