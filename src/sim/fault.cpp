#include "sim/fault.hpp"

#include <algorithm>

namespace locs::sim {

FaultPlan& FaultPlan::crash_at(TimePoint at, NodeId node) {
  events_.push_back({at, Event::Kind::kCrash, node});
  sorted_ = false;
  return *this;
}

FaultPlan& FaultPlan::restart_at(TimePoint at, NodeId node) {
  events_.push_back({at, Event::Kind::kRestart, node});
  sorted_ = false;
  return *this;
}

FaultPlan& FaultPlan::link_fault(NodeId from, NodeId to,
                                 net::SimNetwork::LinkFault f) {
  link_faults_.emplace_back(from, to, f);
  return *this;
}

void FaultPlan::sort_events() {
  if (sorted_) return;
  // Stable: events at the same instant fire in schedule order (crash before
  // the restart that was scheduled after it).
  std::stable_sort(events_.begin() + static_cast<std::ptrdiff_t>(next_),
                   events_.end(),
                   [](const Event& a, const Event& b) { return a.at < b.at; });
  sorted_ = true;
}

void FaultPlan::run(net::SimNetwork& net, const Hooks& hooks, TimePoint deadline) {
  sort_events();
  for (const auto& [from, to, fault] : link_faults_) {
    net.set_link_fault(from, to, fault);
  }
  link_faults_.clear();  // installed once; a re-run must not re-install
  const bool ticking = hooks.tick && hooks.tick_every > 0;
  TimePoint next_tick = ticking ? net.now() + hooks.tick_every : 0;
  for (;;) {
    // The next boundary: the earliest of deadline, maintenance tick and
    // scheduled fault event. run_until delivers everything due before it.
    TimePoint target = deadline;
    if (ticking && next_tick < target) target = next_tick;
    if (next_ < events_.size() && events_[next_].at < target) {
      target = events_[next_].at;
    }
    net.run_until(target);
    while (next_ < events_.size() && events_[next_].at <= target) {
      const Event& ev = events_[next_++];
      if (ev.kind == Event::Kind::kCrash) {
        if (hooks.crash) hooks.crash(ev.node);
      } else if (hooks.restart) {
        hooks.restart(ev.node);
      }
    }
    if (ticking && target >= next_tick) {
      hooks.tick(target);
      next_tick += hooks.tick_every;
    }
    if (target >= deadline) return;
  }
}

std::vector<FaultPlan::Event> FaultPlan::take_due(TimePoint now) {
  sort_events();
  std::vector<Event> due;
  while (next_ < events_.size() && events_[next_].at <= now) {
    due.push_back(events_[next_++]);
  }
  return due;
}

}  // namespace locs::sim
