// Query workload generation: "the concrete mix of different types of
// queries and their degree of locality" (§8).
//
// --- Authoring a macro scenario (sim/scenario.hpp) ---------------------------
//
// The city-scale suite composes three layers; a new scenario only ever adds
// to the first one:
//
//  1. Population model -- a ScenarioKind case in Scenario. Contract:
//     * ALL rng draws happen in the constructor and step_round() in
//       ascending object order, from the Scenario's single seeded Rng.
//       Never draw conditionally on anything except (params, round, i):
//       same params must mean the same draw schedule, or replay breaks.
//     * oid(i) defines the wire identity. Keep ids dense (1 + i) unless the
//       scenario is ABOUT id skew -- the flash crowd hands out strided ids
//       precisely to alias a raw modulo shard key.
//     * step_round(round, emit) calls emit(i, pos) once per update,
//       ascending i. Motion may be closed-form (commuters, convoys: cheap,
//       1M-object friendly) or per-object MobilityModels (wanderers).
//       Correlation is the point: move GROUPS together (a zone flow, a
//       convoy, a converging crowd), because correlated load is what the
//       hierarchy, the coalescer and the shard balancer must absorb.
//       Bursty arrival (day/night) draws per-active-object burst lengths
//       from the BurstModel below.
//  2. Deterministic driver -- drive_scenario() registers the population
//     through one gateway UpdateCoalescer, replays the rounds over
//     SimNetwork, and folds two CRCs: trace_crc (bit-identical replay) and
//     answer_crc (query-answer equivalence across shard layouts). New
//     scenarios get both for free; never add wall-clock-dependent logic to
//     the driven path.
//  3. Gates -- tests/test_macro_scenarios.cpp pins replay + equivalence;
//     bench/bench_macro.cpp emits BENCH_macro.json, gated by
//     bench/baselines/macro.json via scripts/check_bench.py.
#pragma once

#include <vector>

#include "geo/polygon.hpp"
#include "geo/rect.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace locs::sim {

struct QueryMix {
  double p_pos = 0.5;
  double p_range = 0.4;
  double p_nn = 0.1;
};

/// Update arrival model: real sensor feeds are bursty (a gateway uploads a
/// whole window of sightings at once, a fleet reports on a shared timer), so
/// many updates land on one leaf within one latency window -- exactly the
/// pattern batched coalescing (core/update_coalescer.hpp) amortizes. With
/// probability `burst_prob` an arrival slot opens a burst of
/// [burst_min, burst_max] updates; otherwise a single update arrives.
struct BurstModel {
  double burst_prob = 0.3;
  std::uint32_t burst_min = 4;
  std::uint32_t burst_max = 16;
};

struct WorkloadParams {
  geo::Rect area;
  QueryMix mix;
  /// Probability that a query targets the client's vicinity instead of a
  /// uniformly random location ("users ... are typically interested in
  /// objects in their vicinity", §4).
  double locality = 0.8;
  /// Radius of "the vicinity" in metres.
  double local_radius = 200.0;
  /// Edge length of range-query areas.
  double range_extent = 50.0;
  /// Arrival pattern for position updates (see BurstModel).
  BurstModel update_burst;
};

struct QueryOp {
  enum class Kind { kPos, kRange, kNN };
  Kind kind = Kind::kPos;
  ObjectId target;      // kPos
  geo::Polygon area;    // kRange
  geo::Point p;         // kNN
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(WorkloadParams params, std::uint64_t seed)
      : params_(params), rng_(seed) {}

  /// Produces the next query as seen from a client at `client_pos`, drawing
  /// position-query targets from `population`.
  QueryOp next(geo::Point client_pos, const std::vector<ObjectId>& population);

  /// The anchor point for a query issued at `client_pos` under the
  /// configured locality.
  geo::Point anchor(geo::Point client_pos);

  /// Number of updates arriving in the next arrival slot (>= 1), drawn from
  /// the configured BurstModel.
  std::uint32_t next_update_burst();

  Rng& rng() { return rng_; }

 private:
  WorkloadParams params_;
  Rng rng_;
};

}  // namespace locs::sim
