// Query workload generation: "the concrete mix of different types of
// queries and their degree of locality" (§8).
#pragma once

#include <vector>

#include "geo/polygon.hpp"
#include "geo/rect.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace locs::sim {

struct QueryMix {
  double p_pos = 0.5;
  double p_range = 0.4;
  double p_nn = 0.1;
};

struct WorkloadParams {
  geo::Rect area;
  QueryMix mix;
  /// Probability that a query targets the client's vicinity instead of a
  /// uniformly random location ("users ... are typically interested in
  /// objects in their vicinity", §4).
  double locality = 0.8;
  /// Radius of "the vicinity" in metres.
  double local_radius = 200.0;
  /// Edge length of range-query areas.
  double range_extent = 50.0;
};

struct QueryOp {
  enum class Kind { kPos, kRange, kNN };
  Kind kind = Kind::kPos;
  ObjectId target;      // kPos
  geo::Polygon area;    // kRange
  geo::Point p;         // kNN
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(WorkloadParams params, std::uint64_t seed)
      : params_(params), rng_(seed) {}

  /// Produces the next query as seen from a client at `client_pos`, drawing
  /// position-query targets from `population`.
  QueryOp next(geo::Point client_pos, const std::vector<ObjectId>& population);

  /// The anchor point for a query issued at `client_pos` under the
  /// configured locality.
  geo::Point anchor(geo::Point client_pos);

  Rng& rng() { return rng_; }

 private:
  WorkloadParams params_;
  Rng rng_;
};

}  // namespace locs::sim
