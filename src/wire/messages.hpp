// Protocol messages of the location service.
//
// One struct per message named in §6 of the paper (registerReq/Res/Failed,
// createPath, update, handoverReq/Res, posQueryReq/Fwd/Res,
// rangeQueryReq/Fwd/SubRes/Res), plus:
//  * neighborQuery messages and internal NN probes (the paper defines the
//    semantics in §3.2 but no distributed algorithm; see core/location_server),
//  * accuracy management (changeAcc, notifyAvailAcc) of §3.1,
//  * soft-state / recovery messages (removePath, refreshReq) of §5,
//  * the event mechanism sketched in §1/§8 (subscribe/delta/notify).
//
// Server-to-server messages carry an optional origin (leaf id + service
// area): the §6.5 piggyback that feeds the (leaf server -> service area)
// cache: "in each request and response message forwarded within the server
// hierarchy the originator of the message includes a specification of its
// (leaf) service area".
//
// Batched update framing (BatchedUpdateReq / BatchedUpdateAck): under heavy
// load many UpdateReqs land on the same leaf within one latency window, so a
// coalescing sender (core/update_coalescer.hpp) packs whole sighting lists
// into ONE datagram and the leaf acknowledges them with one packed ack.
// Invariants:
//  * framing -- payload is [count u64][packed_len u64][packed bytes]; the
//    packed region is the concatenation of the sightings (acks: oid +
//    offered_acc pairs) in the exact per-field encoding of the unbatched
//    messages, so batching changes the envelope count, never the field
//    format. `count` is advisory; consumers iterate the packed bytes and
//    stop at the first malformed entry (a truncated DATAGRAM still sticky-
//    fails the envelope decode via the packed_len prefix).
//  * decode is lazy -- handlers walk the packed region with a Reader-backed
//    Cursor, one sighting at a time; no intermediate vector of sightings is
//    ever materialized, and BatchedUpdateView routes a batch per owning
//    shard by peeking each sighting's leading ObjectId varint without a
//    full envelope decode (the batch analogue of peek_object_key).
//  * a single-sighting batch is intentionally DISTINCT from a plain
//    UpdateReq (different MsgType byte) -- receivers never have to guess,
//    and the unbatched hot path keeps its exact wire format.
//  * flush policy lives in the SENDER (size / byte-budget / deadline, see
//    UpdateCoalescer::Options); the wire format carries no timing state, so
//    a batch is valid no matter which policy emitted it.
//
// Packed query results (read-path analogue of the batched updates): the bulk
// result messages -- RangeQuerySubRes / NNProbeSubRes and the entry-server
// finals RangeQueryRes / NNQueryRes (near_set) -- carry their ObjectResult
// lists in the same [count][packed_len][packed] framing (PackedResults).
// Invariants:
//  * the per-result encoding inside `packed` is IDENTICAL to the historical
//    vector elements, so a merge loop re-frames sub-results into the final
//    answer by copying raw item byte ranges -- never decode + re-encode.
//  * these four messages are stamped with envelope version
//    kWireVersionPacked (2); a version-1 envelope of the same MsgType still
//    decodes (the legacy length-prefixed vector layout), so traces recorded
//    before the framing change stay comparable for one release. Everything
//    else remains version 1, byte for byte.
//  * decode is lazy -- receivers iterate `packed` with a Reader-backed
//    Cursor (or, without any envelope decode, through SubResView); `count`
//    is advisory exactly as in the batched updates.
//  * read-path borrow/lifetime contract: SubResView and ResultCursor point
//    INTO the datagram. They are valid only while the receive buffer is
//    alive and unmodified -- for the duration of the transport handler
//    invocation, unless the handler pins the buffer via
//    net::Datagram::take() (see net/transport.hpp), in which case views
//    stay valid for the lifetime of the returned PooledBuffer. The entry
//    server's merge loops rely on this to hold sub-result bytes across a
//    multi-datagram merge without copying.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "core/types.hpp"
#include "geo/polygon.hpp"
#include "util/ids.hpp"
#include "util/result.hpp"
#include "wire/codec.hpp"

namespace locs::wire {

using core::AccuracyRange;
using core::LocationDescriptor;
using core::ObjectResult;
using core::RegInfo;
using core::Sighting;

/// Envelope version bytes. Every message is stamped kWireVersion except the
/// packed query result messages (see is_packed_result_type below), which
/// carry kWireVersionPacked; their version-1 (legacy vector) layout stays
/// decodable for one release (see the packed-query-results invariants in
/// the header comment).
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::uint8_t kWireVersionPacked = 2;

enum class MsgType : std::uint8_t {
  kRegisterReq = 1,
  kRegisterRes,
  kRegisterFailed,
  kCreatePath,
  kRemovePath,
  kUpdateReq,
  kUpdateAck,
  kHandoverReq,
  kHandoverRes,
  kAgentChanged,
  kPosQueryReq,
  kPosQueryFwd,
  kPosQueryRes,
  kRangeQueryReq,
  kRangeQueryFwd,
  kRangeQuerySubRes,
  kRangeQueryRes,
  kNNQueryReq,
  kNNProbeFwd,
  kNNProbeSubRes,
  kNNQueryRes,
  kChangeAccReq,
  kChangeAccRes,
  kNotifyAvailAcc,
  kDeregisterReq,
  kRefreshReq,
  kEventSubscribe,
  kEventInstall,
  kEventDelta,
  kEventNotify,
  kEventUnsubscribe,
  kBatchedUpdateReq,
  kBatchedUpdateAck,
  kHeartbeat,
  kHeartbeatAck,
  kRecoveryHello,
  kBatchedRefreshReq,
  kBatchedPathUpdate,
  kShardLoadStats,
  kBucketMigrate,
  kReplicaTee,
  kStandbyPromote,
  kStandbyDemote,
};

const char* msg_type_name(MsgType t);

/// THE definition of which message types use the packed result framing and
/// the kWireVersionPacked envelope byte. Every version-dispatch site (the
/// encoder's version stamp, begin_envelope, the decode switch) keys off
/// this single predicate, so the set cannot silently drift.
constexpr bool is_packed_result_type(MsgType t) {
  return t == MsgType::kRangeQuerySubRes || t == MsgType::kRangeQueryRes ||
         t == MsgType::kNNProbeSubRes || t == MsgType::kNNQueryRes;
}

/// §6.5 piggyback: originating leaf server and its service area.
struct OriginArea {
  NodeId leaf;
  geo::Polygon area;
};

// --- Registration (Algorithm 6-1) ------------------------------------------

struct RegisterReq {
  static constexpr MsgType kType = MsgType::kRegisterReq;
  Sighting s;
  std::string obj_info;  // the paper's oInfo
  AccuracyRange acc_range;
  NodeId reg_inst;  // registering instance, receives the response
  std::uint64_t req_id = 0;
};

struct RegisterRes {
  static constexpr MsgType kType = MsgType::kRegisterRes;
  NodeId agent;  // the leaf server now responsible ("self" in Alg 6-1)
  double offered_acc = 0.0;
  std::uint64_t req_id = 0;
};

struct RegisterFailed {
  static constexpr MsgType kType = MsgType::kRegisterFailed;
  NodeId server;
  double best_acc = 0.0;  // the accuracy the server could have offered
  std::uint64_t req_id = 0;
};

/// Sent leaf-to-root to create the forwarding path (Alg 6-1 "create path");
/// the forwarding reference at each receiver points to the message's sender.
struct CreatePath {
  static constexpr MsgType kType = MsgType::kCreatePath;
  ObjectId oid;
};

/// Leaf-to-root removal of a forwarding path (deregistration §3.1 and
/// soft-state expiry §5).
struct RemovePath {
  static constexpr MsgType kType = MsgType::kRemovePath;
  ObjectId oid;
};

// --- Updates and handover (Algorithms 6-2 / 6-3) ---------------------------

struct UpdateReq {
  static constexpr MsgType kType = MsgType::kUpdateReq;
  Sighting s;
};

struct UpdateAck {
  static constexpr MsgType kType = MsgType::kUpdateAck;
  ObjectId oid;
  double offered_acc = 0.0;
};

/// Coalesced position updates: many sightings bound for one leaf in a single
/// datagram (see the batched-update framing invariants in the header
/// comment). The sightings live varint-packed in `packed`; append() packs on
/// the sender, Cursor lazily unpacks on the receiver -- no intermediate
/// vector of sightings exists on either side.
struct BatchedUpdateReq {
  static constexpr MsgType kType = MsgType::kBatchedUpdateReq;
  std::uint64_t count = 0;  // sightings in `packed` (advisory; see header)
  Buffer packed;            // concatenated per-field encodings of Sighting

  void clear() {
    count = 0;
    packed.clear();
  }
  bool empty() const { return count == 0; }
  std::size_t payload_bytes() const { return packed.size(); }

  /// Packs one sighting (same field encoding as UpdateReq carries).
  void append(const Sighting& s);

  /// Lazy Reader-backed unpacker: decodes one sighting per next() call,
  /// stopping at the end of the packed region or the first malformed entry.
  class Cursor {
   public:
    explicit Cursor(const Buffer& packed) : r_(packed) {}
    bool next(Sighting& out);

   private:
    Reader r_;
  };
  Cursor sightings() const { return Cursor(packed); }
};

/// Packed acknowledgement for a BatchedUpdateReq: one (oid, offered_acc)
/// entry per APPLIED sighting, same framing discipline as the request.
struct BatchedUpdateAck {
  static constexpr MsgType kType = MsgType::kBatchedUpdateAck;
  std::uint64_t count = 0;
  Buffer packed;  // concatenated [oid varint][offered_acc f64] entries

  void clear() {
    count = 0;
    packed.clear();
  }
  bool empty() const { return count == 0; }

  void append(ObjectId oid, double offered_acc);

  class Cursor {
   public:
    explicit Cursor(const Buffer& packed) : r_(packed) {}
    bool next(ObjectId& oid, double& offered_acc);

   private:
    Reader r_;
  };
  Cursor acks() const { return Cursor(packed); }
};

struct HandoverReq {
  static constexpr MsgType kType = MsgType::kHandoverReq;
  Sighting s;
  RegInfo reg_info;
  double prev_offered_acc = 0.0;  // so the new agent can detect acc changes
  // §6.5 cache shortcut: the old agent contacted the new leaf directly
  // (bypassing the hierarchy); the new agent must repair the forwarding path
  // itself via createPath, and the old agent prunes its stale branch with
  // removePath.
  bool direct = false;
  std::uint64_t req_id = 0;
  std::optional<OriginArea> origin;  // old agent's leaf area (cache piggyback)
};

/// Propagated back along the request path hop by hop; every intermediate
/// server repairs its forwarding pointer (Alg 6-3 lines 11-14).
struct HandoverRes {
  static constexpr MsgType kType = MsgType::kHandoverRes;
  ObjectId oid;
  NodeId new_agent;
  double offered_acc = 0.0;
  std::uint64_t req_id = 0;
  std::optional<OriginArea> origin;  // new agent's leaf area (cache piggyback)
};

/// Old agent -> tracked object: "your new agent is ...".
struct AgentChanged {
  static constexpr MsgType kType = MsgType::kAgentChanged;
  ObjectId oid;
  NodeId new_agent;
  double offered_acc = 0.0;
};

// --- Position query (Algorithm 6-4) -----------------------------------------

struct PosQueryReq {
  static constexpr MsgType kType = MsgType::kPosQueryReq;
  ObjectId oid;
  std::uint64_t req_id = 0;
};

struct PosQueryFwd {
  static constexpr MsgType kType = MsgType::kPosQueryFwd;
  ObjectId oid;
  NodeId entry;  // lse: entry server that receives the result directly
  std::uint64_t req_id = 0;
};

struct PosQueryRes {
  static constexpr MsgType kType = MsgType::kPosQueryRes;
  ObjectId oid;
  bool found = false;
  LocationDescriptor ld;
  NodeId agent;  // responding leaf; feeds the (object -> agent) cache
  std::uint64_t req_id = 0;
  std::optional<OriginArea> origin;
};

// --- Packed result lists (read-path batching helper) -------------------------

/// Reusable [count][packed_len][packed] list of ObjectResults -- the framing
/// discipline of the batched update/refresh messages applied to the query
/// read path (see the packed-query-results invariants in the header
/// comment). append() packs on the sender; Cursor lazily unpacks on the
/// receiver; to_vector()/assign() are cold-path conveniences for tests and
/// client-facing boundaries.
struct PackedResults {
  std::uint64_t count = 0;  // results in `packed` (advisory; see header)
  Buffer packed;            // concatenated per-field encodings of ObjectResult

  void clear() {
    count = 0;
    packed.clear();
  }
  bool empty() const { return count == 0; }
  std::size_t payload_bytes() const { return packed.size(); }

  /// Packs one result (same field encoding the vector framing carried).
  void append(const ObjectResult& r);

  /// Lazy Reader-backed unpacker: decodes one result per next() call,
  /// stopping at the end of the packed region or the first malformed entry.
  class Cursor {
   public:
    explicit Cursor(const Buffer& packed) : r_(packed) {}
    bool next(ObjectResult& out);

   private:
    Reader r_;
  };
  Cursor iter() const { return Cursor(packed); }

  std::vector<ObjectResult> to_vector() const;
  void assign(const std::vector<ObjectResult>& v);

  bool operator==(const PackedResults& other) const {
    return count == other.count && packed == other.packed;
  }
};

/// Writes one ObjectResult in the packed per-field encoding. The direct-emit
/// merge loops (core/location_server) use this to stream store results
/// straight into an outgoing buffer without an intermediate vector.
void put_object_result(Writer& w, const ObjectResult& r);

// --- Range query (Algorithm 6-5) --------------------------------------------

struct RangeQueryReq {
  static constexpr MsgType kType = MsgType::kRangeQueryReq;
  geo::Polygon area;
  double req_acc = 0.0;
  double req_overlap = 0.0;
  std::uint64_t req_id = 0;
};

struct RangeQueryFwd {
  static constexpr MsgType kType = MsgType::kRangeQueryFwd;
  geo::Polygon area;
  double req_acc = 0.0;
  double req_overlap = 0.0;
  NodeId entry;
  std::uint64_t req_id = 0;
  // §6.5 cache shortcut: sent directly to a known leaf; the receiver answers
  // locally and must not propagate the query further.
  bool direct = false;
};

/// Partial result from one leaf: its matching objects plus the size of the
/// covered portion (area ∩ leaf service area) for the entry server's
/// completion bookkeeping.
struct RangeQuerySubRes {
  static constexpr MsgType kType = MsgType::kRangeQuerySubRes;
  std::uint64_t req_id = 0;
  double covered_size = 0.0;
  PackedResults results;  // packed framing; see the header invariants
  std::optional<OriginArea> origin;
};

struct RangeQueryRes {
  static constexpr MsgType kType = MsgType::kRangeQueryRes;
  std::uint64_t req_id = 0;
  bool complete = true;  // false if assembled on timeout
  PackedResults results;  // packed framing; see the header invariants
};

// --- Nearest-neighbor query (§3.2 semantics) ---------------------------------

struct NNQueryReq {
  static constexpr MsgType kType = MsgType::kNNQueryReq;
  geo::Point p;
  double req_acc = 0.0;
  double near_qual = 0.0;
  std::uint64_t req_id = 0;
};

/// Internal expanding-ring probe: "report objects with ld.acc <= req_acc and
/// position within `radius` of p in your subtree".
struct NNProbeFwd {
  static constexpr MsgType kType = MsgType::kNNProbeFwd;
  geo::Point p;
  double radius = 0.0;
  double req_acc = 0.0;
  NodeId coordinator;
  std::uint64_t req_id = 0;
};

struct NNProbeSubRes {
  static constexpr MsgType kType = MsgType::kNNProbeSubRes;
  std::uint64_t req_id = 0;
  double covered_size = 0.0;  // size of probe-disk ∩ leaf area
  PackedResults candidates;  // packed framing; see the header invariants
  std::optional<OriginArea> origin;
};

struct NNQueryRes {
  static constexpr MsgType kType = MsgType::kNNQueryRes;
  std::uint64_t req_id = 0;
  bool found = false;
  ObjectResult nearest;
  PackedResults near_set;  // nearObjSet per §3.2; packed framing
};

// --- Accuracy management (§3.1) ---------------------------------------------

struct ChangeAccReq {
  static constexpr MsgType kType = MsgType::kChangeAccReq;
  ObjectId oid;
  AccuracyRange acc_range;
  std::uint64_t req_id = 0;
};

struct ChangeAccRes {
  static constexpr MsgType kType = MsgType::kChangeAccRes;
  std::uint64_t req_id = 0;
  bool ok = false;
  double offered_acc = 0.0;
};

struct NotifyAvailAcc {
  static constexpr MsgType kType = MsgType::kNotifyAvailAcc;
  ObjectId oid;
  double offered_acc = 0.0;
};

// --- Lifecycle ---------------------------------------------------------------

struct DeregisterReq {
  static constexpr MsgType kType = MsgType::kDeregisterReq;
  ObjectId oid;
};

/// Server -> tracked object: request an immediate position update (used
/// after recovery, when the persistent visitorDB survived but the in-memory
/// sightingDB did not; §5).
struct RefreshReq {
  static constexpr MsgType kType = MsgType::kRefreshReq;
  ObjectId oid;
};

// --- Fault tolerance (failure detection + batched soft-state recovery) -------
//
// Recovery-protocol invariants:
//  * Heartbeat/HeartbeatAck carry only a sequence number; liveness evidence
//    is ANY ack (a reordered old ack still proves the child processes
//    messages). The miss-threshold detector lives entirely in the parent
//    (core/location_server.hpp); the wire carries no timing state, so the
//    interval/threshold can differ per deployment without a format change.
//  * RecoveryHello is idempotent: a parent receiving it (re)learns that the
//    child is alive, clears suspicion, and answers with a BatchedRefreshReq
//    sweep of every object it still forwards to that child. Duplicate hellos
//    just repeat the sweep; refreshes are filtered against present sightings
//    on the leaf, so the steady state converges.
//  * BatchedRefreshReq reuses the batched-update framing discipline --
//    payload [count u64][packed_len u64][packed oid varints]; `count` is
//    advisory, consumers iterate the packed bytes lazily (Cursor) and stop at
//    the first malformed entry; a truncated datagram sticky-fails the
//    envelope decode via the packed_len prefix. The same message travels
//    parent -> restarted leaf (oids with forwarding paths into that leaf)
//    and leaf -> registering instance (oids whose sightings need a refresh),
//    replacing one RefreshReq datagram per object with one sweep datagram
//    per client node (chunked; see LocationServer::Options::refresh_batch_max).

/// Parent -> child liveness probe (miss-threshold failure detection).
struct Heartbeat {
  static constexpr MsgType kType = MsgType::kHeartbeat;
  std::uint64_t seq = 0;
};

/// Child -> parent heartbeat answer (echoes the probe's sequence number).
struct HeartbeatAck {
  static constexpr MsgType kType = MsgType::kHeartbeatAck;
  std::uint64_t seq = 0;
};

/// Restarted leaf -> parent: "I am back with incarnation N; tell me which
/// objects you still forward to me" (§5 crash recovery, batched).
struct RecoveryHello {
  static constexpr MsgType kType = MsgType::kRecoveryHello;
  std::uint64_t incarnation = 0;
};

/// Batched refresh sweep: a varint-packed list of ObjectIds that need an
/// immediate position refresh (the batch analogue of RefreshReq; see the
/// fault-tolerance framing invariants above).
struct BatchedRefreshReq {
  static constexpr MsgType kType = MsgType::kBatchedRefreshReq;
  std::uint64_t count = 0;  // oids in `packed` (advisory; see framing note)
  Buffer packed;            // concatenated ObjectId varints

  void clear() {
    count = 0;
    packed.clear();
  }
  bool empty() const { return count == 0; }

  void append(ObjectId oid);

  /// Lazy unpacker: one oid per next() call, stopping at the end of the
  /// packed region or the first malformed varint.
  class Cursor {
   public:
    explicit Cursor(const Buffer& packed) : r_(packed) {}
    bool next(ObjectId& out);

   private:
    Reader r_;
  };
  Cursor oids() const { return Cursor(packed); }
};

/// Coalesced server-to-server forwarding-path maintenance: a burst of
/// CreatePath/RemovePath messages bound for the same parent travels as ONE
/// datagram (same framing discipline as the batched updates; the entries
/// keep their relative order, so create/remove sequences for one object
/// replay in order). Each entry is [op u8: 1=create, 0=remove][oid varint].
/// Sent only when LocationServer::Options::coalesce_paths is on -- default
/// traces carry the unbatched messages bit for bit.
struct BatchedPathUpdate {
  static constexpr MsgType kType = MsgType::kBatchedPathUpdate;
  std::uint64_t count = 0;  // entries in `packed` (advisory; see framing note)
  Buffer packed;            // concatenated [op u8][oid varint] entries

  void clear() {
    count = 0;
    packed.clear();
  }
  bool empty() const { return count == 0; }
  std::size_t payload_bytes() const { return packed.size(); }

  void append(bool create, ObjectId oid);

  /// Lazy unpacker: one (op, oid) entry per next() call, stopping at the end
  /// of the packed region or the first malformed entry.
  class Cursor {
   public:
    explicit Cursor(const Buffer& packed) : r_(packed) {}
    bool next(bool& create, ObjectId& oid);

   private:
    Reader r_;
  };
  Cursor entries() const { return Cursor(packed); }
};

// --- Sharded-leaf skew balancing (core/sharded_location_server) --------------
//
// Balancing invariants:
//  * Both messages reuse the batched framing discipline -- the payload ends
//    with [count u64][packed_len u64][packed entries]; `count` is advisory,
//    consumers iterate the packed bytes lazily (Cursor) and stop at the
//    first malformed entry; a truncated datagram sticky-fails the envelope
//    decode via the packed_len prefix.
//  * BucketMigrate never leaves its leaf NodeId: the donor shard reactor
//    encodes it and a recipient shard reactor of the SAME sharded leaf
//    consumes it (envelope src == the leaf itself; other sources are
//    ignored), so soft state moves between slices with wire-validated
//    framing but no network hop.

/// Per-shard load snapshot of a sharded leaf (queue depth + occupancy),
/// published for monitors and rebalancer decision logs. Entry layout:
/// [shard u32][sightings u64][visitors u64][msgs_handled u64][inbox_depth u64].
struct ShardLoadStats {
  static constexpr MsgType kType = MsgType::kShardLoadStats;
  std::uint64_t seq = 0;    // snapshot sequence number
  std::uint64_t count = 0;  // entries in `packed` (advisory; see framing note)
  Buffer packed;            // concatenated per-shard entries

  struct Entry {
    std::uint32_t shard = 0;
    std::uint64_t sightings = 0;     // slice occupancy (SightingDb records)
    std::uint64_t visitors = 0;      // slice visitorDB records
    std::uint64_t msgs_handled = 0;  // reactor lifetime message count
    std::uint64_t inbox_depth = 0;   // SPSC inbox backlog (threaded mode)
  };

  void clear() {
    seq = 0;
    count = 0;
    packed.clear();
  }
  bool empty() const { return count == 0; }

  void append(const Entry& e);

  /// Lazy unpacker: one per-shard entry per next() call, stopping at the end
  /// of the packed region or the first malformed entry.
  class Cursor {
   public:
    explicit Cursor(const Buffer& packed) : r_(packed) {}
    bool next(Entry& out);

   private:
    Reader r_;
  };
  Cursor entries() const { return Cursor(packed); }
};

/// One ObjectId bucket's soft state moving between two shard reactors of the
/// same leaf (incremental skew rebalancing). Entries carry everything a leaf
/// slice stores per visitor -- the sighting, the offered accuracy, the
/// ABSOLUTE expiry (migration must not extend the soft-state TTL) and the
/// registration info: [sighting][offered_acc f64][expiry i64][reg_info].
struct BucketMigrate {
  static constexpr MsgType kType = MsgType::kBucketMigrate;
  std::uint32_t bucket = 0;  // ObjectId bucket being re-assigned
  std::uint64_t count = 0;   // entries in `packed` (advisory; see framing note)
  Buffer packed;             // concatenated visitor entries

  struct Entry {
    core::Sighting s;
    double offered_acc = 0.0;
    TimePoint expiry = 0;
    core::RegInfo reg;
  };

  void clear() {
    bucket = 0;
    count = 0;
    packed.clear();
  }
  bool empty() const { return count == 0; }

  void append(const Entry& e);

  /// Lazy unpacker: one visitor entry per next() call, stopping at the end
  /// of the packed region or the first malformed entry.
  class Cursor {
   public:
    explicit Cursor(const Buffer& packed) : r_(packed) {}
    bool next(Entry& out);

   private:
    Reader r_;
  };
  Cursor entries() const { return Cursor(packed); }
};

// --- Leaf hot-standby replication (answer-complete failover) -----------------
//
// Replication invariants:
//  * ReplicaTee reuses the batched framing discipline -- payload
//    [count u64][packed_len u64][packed entries]; `count` is advisory,
//    consumers iterate the packed bytes lazily (Cursor) and stop at the
//    first malformed entry; a truncated datagram sticky-fails the envelope
//    decode via the packed_len prefix.
//  * Entries carry the ABSOLUTE expiry the primary stored, so the replica's
//    soft-state TTLs match the primary's exactly (teeing must not extend a
//    TTL). The replica applies entries with insert-or-update semantics in
//    batch order -- the identical spatial-index mutation sequence the
//    primary performed -- which is what makes promoted-replica range/NN
//    answers byte-equal to the primary's.
//  * The tee is one datagram per handled inbound datagram/tick at most
//    (LocationServer::flush_tee), so the replication overhead is ~1 extra
//    datagram per update batch, never one per sighting.
//  * StandbyPromote/StandbyDemote travel parent -> standby only; the
//    incarnation counter makes reordered promote/demote pairs detectable in
//    traces (the parent's engaged flag is authoritative for routing).

/// Primary leaf -> standby replica: the accepted-sighting stream of one
/// handled datagram/tick, teed with original expiries (see the replication
/// invariants above). Entry ops: upsert (apply a sighting), remove (visitor
/// departed/expired), set_acc (accuracy change without an index mutation).
struct ReplicaTee {
  static constexpr MsgType kType = MsgType::kReplicaTee;

  enum class Op : std::uint8_t { kUpsert = 0, kRemove = 1, kSetAcc = 2 };

  std::uint64_t count = 0;  // entries in `packed` (advisory; see framing note)
  Buffer packed;            // concatenated [op u8][sighting][acc f64][expiry i64][reg]

  struct Entry {
    Op op = Op::kUpsert;
    core::Sighting s;          // kRemove: only s.oid is meaningful
    double offered_acc = 0.0;
    TimePoint expiry = 0;      // absolute, as stored by the primary
    core::RegInfo reg;
  };

  void clear() {
    count = 0;
    packed.clear();
  }
  bool empty() const { return count == 0; }
  std::size_t payload_bytes() const { return packed.size(); }

  void append(const Entry& e);

  /// Lazy unpacker: one entry per next() call, stopping at the end of the
  /// packed region or the first malformed entry.
  class Cursor {
   public:
    explicit Cursor(const Buffer& packed) : r_(packed) {}
    bool next(Entry& out);

   private:
    Reader r_;
  };
  Cursor entries() const { return Cursor(packed); }
};

/// Parent -> standby replica: "your primary is suspect; answer for it". The
/// standby fans AgentChanged to its mirrored visitors so clients re-point.
struct StandbyPromote {
  static constexpr MsgType kType = MsgType::kStandbyPromote;
  NodeId primary;
  std::uint64_t incarnation = 0;
};

/// Parent -> standby replica: "your primary is back; stand down". The standby
/// re-points clients at the primary and clears its mirror (the primary's
/// recovery sweep rebuilds it via the tee).
struct StandbyDemote {
  static constexpr MsgType kType = MsgType::kStandbyDemote;
  NodeId primary;
  std::uint64_t incarnation = 0;
};

// --- Event mechanism (extension; §1 / §8 future work) ------------------------

enum class PredicateKind : std::uint8_t {
  kAreaCount = 0,  // "more than N objects are in a certain area"
  kProximity = 1,  // "two users of the system meet"
};

struct EventSubscribe {
  static constexpr MsgType kType = MsgType::kEventSubscribe;
  std::uint64_t sub_id = 0;
  PredicateKind kind = PredicateKind::kAreaCount;
  geo::Polygon area;        // kAreaCount
  std::uint32_t threshold = 0;
  ObjectId obj_a, obj_b;    // kProximity
  double dist = 0.0;
  NodeId subscriber;
};

/// Coordinator -> leaf: install local membership tracking for a predicate.
struct EventInstall {
  static constexpr MsgType kType = MsgType::kEventInstall;
  std::uint64_t sub_id = 0;
  PredicateKind kind = PredicateKind::kAreaCount;
  geo::Polygon area;
  ObjectId obj_a, obj_b;
  double dist = 0.0;
  NodeId coordinator;
};

/// Leaf -> coordinator: membership change for a predicate.
struct EventDelta {
  static constexpr MsgType kType = MsgType::kEventDelta;
  std::uint64_t sub_id = 0;
  ObjectId oid;
  bool entered = false;  // entered (true) / left (false) the predicate scope
  geo::Point pos;        // current position (used by proximity predicates)
};

struct EventNotify {
  static constexpr MsgType kType = MsgType::kEventNotify;
  std::uint64_t sub_id = 0;
  bool fired = false;  // predicate became true (fired) / false again
  std::uint32_t count = 0;
};

struct EventUnsubscribe {
  static constexpr MsgType kType = MsgType::kEventUnsubscribe;
  std::uint64_t sub_id = 0;
};

// --- Envelope ----------------------------------------------------------------

/// Every protocol message type, in MsgType order. Drives the Message variant
/// helpers, the per-type encode overloads and the decode dispatch.
#define LOCS_WIRE_FOR_EACH_MESSAGE(X)                                          \
  X(RegisterReq)                                                               \
  X(RegisterRes)                                                               \
  X(RegisterFailed)                                                            \
  X(CreatePath)                                                                \
  X(RemovePath)                                                                \
  X(UpdateReq)                                                                 \
  X(UpdateAck)                                                                 \
  X(HandoverReq)                                                               \
  X(HandoverRes)                                                               \
  X(AgentChanged)                                                              \
  X(PosQueryReq)                                                               \
  X(PosQueryFwd)                                                               \
  X(PosQueryRes)                                                               \
  X(RangeQueryReq)                                                             \
  X(RangeQueryFwd)                                                             \
  X(RangeQuerySubRes)                                                          \
  X(RangeQueryRes)                                                             \
  X(NNQueryReq)                                                                \
  X(NNProbeFwd)                                                                \
  X(NNProbeSubRes)                                                             \
  X(NNQueryRes)                                                                \
  X(ChangeAccReq)                                                              \
  X(ChangeAccRes)                                                              \
  X(NotifyAvailAcc)                                                            \
  X(DeregisterReq)                                                             \
  X(RefreshReq)                                                                \
  X(EventSubscribe)                                                            \
  X(EventInstall)                                                              \
  X(EventDelta)                                                                \
  X(EventNotify)                                                               \
  X(EventUnsubscribe)                                                          \
  X(BatchedUpdateReq)                                                          \
  X(BatchedUpdateAck)                                                          \
  X(Heartbeat)                                                                 \
  X(HeartbeatAck)                                                              \
  X(RecoveryHello)                                                             \
  X(BatchedRefreshReq)                                                         \
  X(BatchedPathUpdate)                                                         \
  X(ShardLoadStats)                                                            \
  X(BucketMigrate)                                                             \
  X(ReplicaTee)                                                                \
  X(StandbyPromote)                                                            \
  X(StandbyDemote)

using Message = std::variant<
    RegisterReq, RegisterRes, RegisterFailed, CreatePath, RemovePath, UpdateReq,
    UpdateAck, HandoverReq, HandoverRes, AgentChanged, PosQueryReq, PosQueryFwd,
    PosQueryRes, RangeQueryReq, RangeQueryFwd, RangeQuerySubRes, RangeQueryRes,
    NNQueryReq, NNProbeFwd, NNProbeSubRes, NNQueryRes, ChangeAccReq, ChangeAccRes,
    NotifyAvailAcc, DeregisterReq, RefreshReq, EventSubscribe, EventInstall,
    EventDelta, EventNotify, EventUnsubscribe, BatchedUpdateReq, BatchedUpdateAck,
    Heartbeat, HeartbeatAck, RecoveryHello, BatchedRefreshReq, BatchedPathUpdate,
    ShardLoadStats, BucketMigrate, ReplicaTee, StandbyPromote, StandbyDemote>;

struct Envelope {
  NodeId src;
  Message msg;
};

MsgType message_type(const Message& msg);

// Hot-path encode: serializes [version][type][src][payload] into `out`
// (cleared first), reserving a per-message size hint so a recycled buffer
// never reallocates in steady state. The per-type overloads skip Message
// variant construction entirely -- senders holding a concrete message type
// (the common case in core/) pay no copy of embedded vectors/polygons.
#define LOCS_WIRE_DECLARE_ENCODE_INTO(T) \
  void encode_envelope_into(Buffer& out, NodeId src, const T& msg);
LOCS_WIRE_FOR_EACH_MESSAGE(LOCS_WIRE_DECLARE_ENCODE_INTO)
#undef LOCS_WIRE_DECLARE_ENCODE_INTO
void encode_envelope_into(Buffer& out, NodeId src, const Message& msg);

/// Convenience wrapper allocating a fresh buffer (cold paths, tests).
Buffer encode_envelope(NodeId src, const Message& msg);

/// Hot-path decode into a reusable scratch envelope. When `env.msg` already
/// holds the incoming message type, the contained vectors/polygons/strings
/// keep their capacity -- decoding a steady message stream allocates
/// nothing. All variable-length fields are OWNED by the envelope (the §
/// "own() step" happens inside), so the envelope may outlive the datagram.
Status decode_envelope_into(Envelope& env, const std::uint8_t* data,
                            std::size_t len);

/// Convenience wrapper decoding into a fresh envelope (cold paths, tests).
Result<Envelope> decode_envelope(const std::uint8_t* data, std::size_t len);
inline Result<Envelope> decode_envelope(const Buffer& buf) {
  return decode_envelope(buf.data(), buf.size());
}

/// Cheap routing peek for sharded dispatch (core/sharded_location_server):
/// for object-keyed messages -- every message whose payload leads with an
/// ObjectId (updates, handover, per-object queries and their responses) --
/// returns that id WITHOUT a full envelope decode. Returns nullopt for
/// area-keyed / coordinator messages (range, NN, events) and for malformed
/// datagrams (the full decode then reports the error).
std::optional<ObjectId> peek_object_key(const std::uint8_t* data, std::size_t len);

/// Batch analogue of peek_object_key: walks an ENCODED BatchedUpdateReq
/// datagram and yields each sighting's ObjectId plus the raw byte range of
/// its packed encoding, without a full envelope decode. A sharded leaf uses
/// this to split one incoming batch into per-shard sub-batches by memcpy of
/// the item ranges (core/sharded_location_server). Iteration stops at the
/// end of the packed region or the first malformed entry; a datagram that is
/// not a well-formed batch envelope yields valid() == false.
class BatchedUpdateView {
 public:
  BatchedUpdateView(const std::uint8_t* data, std::size_t len);

  bool valid() const { return valid_; }
  std::uint64_t count() const { return count_; }  // advisory (see framing note)

  struct Item {
    ObjectId oid;
    const std::uint8_t* data;  // raw packed encoding of this sighting
    std::size_t len;
  };
  std::optional<Item> next();

 private:
  Reader r_;
  const std::uint8_t* packed_base_ = nullptr;
  std::size_t packed_len_ = 0;
  std::uint64_t count_ = 0;
  bool valid_ = false;
};

/// Shard-routing view over an ENCODED BatchedRefreshReq datagram: yields each
/// packed ObjectId without a full envelope decode, so a sharded leaf can
/// split one recovery sweep into per-shard sub-batches (the refresh analogue
/// of BatchedUpdateView; core/sharded_location_server). Iteration stops at
/// the end of the packed region or the first malformed varint; a datagram
/// that is not a well-formed refresh batch yields valid() == false.
class BatchedRefreshView {
 public:
  BatchedRefreshView(const std::uint8_t* data, std::size_t len);

  bool valid() const { return valid_; }
  std::uint64_t count() const { return count_; }  // advisory (see framing note)

  /// Like BatchedUpdateView::Item: the decoded key PLUS the raw byte range
  /// of its packed encoding, so shard splitting re-frames by memcpy and
  /// never duplicates the ObjectId wire encoding.
  struct Item {
    ObjectId oid;
    const std::uint8_t* data;
    std::size_t len;
  };
  std::optional<Item> next();

 private:
  Reader r_;
  const std::uint8_t* packed_base_ = nullptr;
  std::size_t packed_len_ = 0;
  std::uint64_t count_ = 0;
  bool valid_ = false;
};

/// Shard-routing view over an ENCODED ReplicaTee datagram: yields each
/// entry's leading ObjectId plus the raw byte range of its packed encoding,
/// without a full envelope decode, so a sharded standby splits one tee into
/// per-shard sub-tees by memcpy of the item ranges (the replication analogue
/// of BatchedUpdateView; core/sharded_location_server). Iteration stops at
/// the end of the packed region or the first malformed entry; a datagram
/// that is not a well-formed tee envelope yields valid() == false.
class ReplicaTeeView {
 public:
  ReplicaTeeView(const std::uint8_t* data, std::size_t len);

  bool valid() const { return valid_; }
  std::uint64_t count() const { return count_; }  // advisory (see framing note)

  struct Item {
    ObjectId oid;
    const std::uint8_t* data;  // raw packed encoding of this entry
    std::size_t len;
  };
  std::optional<Item> next();

 private:
  Reader r_;
  const std::uint8_t* packed_base_ = nullptr;
  std::size_t packed_len_ = 0;
  std::uint64_t count_ = 0;
  bool valid_ = false;
};

/// Iterates a raw packed-ObjectResult region (the `packed` bytes of any
/// PackedResults-framed message), yielding each decoded result PLUS the raw
/// byte range of its encoding -- the merge loops copy kept ranges verbatim
/// into the outgoing envelope, never re-encoding. Stops at the end of the
/// region or the first malformed entry. Borrow contract: items point into
/// the caller's buffer (see the read-path lifetime invariants above).
class ResultCursor {
 public:
  ResultCursor(const std::uint8_t* data, std::size_t len)
      : r_(data, len), base_(data), len_(len) {}

  struct Item {
    ObjectResult res;
    const std::uint8_t* data;  // raw packed encoding of this result
    std::size_t len;
  };
  std::optional<Item> next();

 private:
  Reader r_;
  const std::uint8_t* base_;
  std::size_t len_;
};

/// Read-path analogue of BatchedUpdateView: a peek over an ENCODED
/// version-2 RangeQuerySubRes or NNProbeSubRes datagram. Exposes the header
/// fields and the raw packed-results region without a full envelope decode,
/// so the entry server can merge a sub-result by borrowing its bytes (pin
/// the receive buffer via net::Datagram::take) instead of materializing an
/// owned vector. valid() == false for malformed datagrams, other message
/// types, and version-1 (legacy vector) framings -- those fall back to the
/// full decode path.
class SubResView {
 public:
  SubResView(const std::uint8_t* data, std::size_t len);

  bool valid() const { return valid_; }
  MsgType type() const { return type_; }
  NodeId src() const { return src_; }
  std::uint64_t req_id() const { return req_id_; }
  double covered_size() const { return covered_size_; }
  std::uint64_t count() const { return count_; }  // advisory (framing note)

  /// The raw packed-results region (borrowed from the datagram).
  const std::uint8_t* packed_data() const { return packed_base_; }
  std::size_t packed_size() const { return packed_len_; }

  /// Lazy per-item iteration over the packed region.
  ResultCursor items() const { return ResultCursor(packed_base_, packed_len_); }

  /// Decodes the trailing §6.5 origin piggyback (cold: cache learning only).
  /// Returns false when absent or malformed.
  bool origin(std::optional<OriginArea>& out) const;

 private:
  MsgType type_ = MsgType::kRangeQuerySubRes;
  NodeId src_;
  std::uint64_t req_id_ = 0;
  double covered_size_ = 0.0;
  std::uint64_t count_ = 0;
  const std::uint8_t* packed_base_ = nullptr;
  std::size_t packed_len_ = 0;
  const std::uint8_t* tail_base_ = nullptr;  // origin piggyback bytes
  std::size_t tail_len_ = 0;
  bool valid_ = false;
};

/// Direct-emit support for the merge loops: writes the envelope prefix
/// ([version][type][src]) for `type`, choosing the version byte the normal
/// encode path would use. A merge loop that follows this with the exact
/// per-field writes of the message body produces bytes IDENTICAL to
/// encode_envelope_into of the equivalent owned message (pinned by test).
void begin_envelope(Writer& w, NodeId src, MsgType type);

}  // namespace locs::wire
