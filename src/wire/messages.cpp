#include "wire/messages.hpp"

namespace locs::wire {

namespace {

constexpr std::uint8_t kWireVersion = 1;

// --- field helpers -----------------------------------------------------------

void put(Writer& w, geo::Point p) {
  w.f64(p.x);
  w.f64(p.y);
}

geo::Point get_point(Reader& r) {
  geo::Point p;
  p.x = r.f64();
  p.y = r.f64();
  return p;
}

void put(Writer& w, const geo::Polygon& poly) {
  w.u64(poly.size());
  for (const geo::Point& p : poly.vertices()) put(w, p);
}

geo::Polygon get_polygon(Reader& r) {
  const std::uint64_t n = r.u64();
  if (!r.ok() || n > 1'000'000) return geo::Polygon{};
  std::vector<geo::Point> pts;
  pts.reserve(n);
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) pts.push_back(get_point(r));
  return geo::Polygon(std::move(pts));
}

void put(Writer& w, ObjectId id) { w.u64(id.value); }
ObjectId get_oid(Reader& r) { return ObjectId{r.u64()}; }

void put(Writer& w, NodeId id) { w.u32(id.value); }
NodeId get_node(Reader& r) { return NodeId{r.u32()}; }

void put(Writer& w, const Sighting& s) {
  put(w, s.oid);
  w.i64(s.t);
  put(w, s.pos);
  w.f64(s.acc_sens);
}

Sighting get_sighting(Reader& r) {
  Sighting s;
  s.oid = get_oid(r);
  s.t = r.i64();
  s.pos = get_point(r);
  s.acc_sens = r.f64();
  return s;
}

void put(Writer& w, const LocationDescriptor& ld) {
  put(w, ld.pos);
  w.f64(ld.acc);
}

LocationDescriptor get_ld(Reader& r) {
  LocationDescriptor ld;
  ld.pos = get_point(r);
  ld.acc = r.f64();
  return ld;
}

void put(Writer& w, const AccuracyRange& a) {
  w.f64(a.desired);
  w.f64(a.minimum);
}

AccuracyRange get_acc_range(Reader& r) {
  AccuracyRange a;
  a.desired = r.f64();
  a.minimum = r.f64();
  return a;
}

void put(Writer& w, const RegInfo& ri) {
  put(w, ri.reg_inst);
  put(w, ri.acc_range);
}

RegInfo get_reg_info(Reader& r) {
  RegInfo ri;
  ri.reg_inst = get_node(r);
  ri.acc_range = get_acc_range(r);
  return ri;
}

void put(Writer& w, const ObjectResult& res) {
  put(w, res.oid);
  put(w, res.ld);
}

ObjectResult get_object_result(Reader& r) {
  ObjectResult res;
  res.oid = get_oid(r);
  res.ld = get_ld(r);
  return res;
}

void put(Writer& w, const std::vector<ObjectResult>& v) {
  w.u64(v.size());
  for (const auto& res : v) put(w, res);
}

std::vector<ObjectResult> get_results(Reader& r) {
  const std::uint64_t n = r.u64();
  if (!r.ok() || n > 10'000'000) return {};
  std::vector<ObjectResult> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) v.push_back(get_object_result(r));
  return v;
}

void put(Writer& w, const std::optional<OriginArea>& origin) {
  w.boolean(origin.has_value());
  if (origin) {
    put(w, origin->leaf);
    put(w, origin->area);
  }
}

std::optional<OriginArea> get_origin(Reader& r) {
  if (!r.boolean()) return std::nullopt;
  OriginArea o;
  o.leaf = get_node(r);
  o.area = get_polygon(r);
  return o;
}

// --- per-message encode ------------------------------------------------------

void encode(Writer& w, const RegisterReq& m) {
  put(w, m.s);
  w.str(m.obj_info);
  put(w, m.acc_range);
  put(w, m.reg_inst);
  w.u64(m.req_id);
}

void encode(Writer& w, const RegisterRes& m) {
  put(w, m.agent);
  w.f64(m.offered_acc);
  w.u64(m.req_id);
}

void encode(Writer& w, const RegisterFailed& m) {
  put(w, m.server);
  w.f64(m.best_acc);
  w.u64(m.req_id);
}

void encode(Writer& w, const CreatePath& m) { put(w, m.oid); }
void encode(Writer& w, const RemovePath& m) { put(w, m.oid); }
void encode(Writer& w, const UpdateReq& m) { put(w, m.s); }

void encode(Writer& w, const UpdateAck& m) {
  put(w, m.oid);
  w.f64(m.offered_acc);
}

void encode(Writer& w, const HandoverReq& m) {
  put(w, m.s);
  put(w, m.reg_info);
  w.f64(m.prev_offered_acc);
  w.boolean(m.direct);
  w.u64(m.req_id);
  put(w, m.origin);
}

void encode(Writer& w, const HandoverRes& m) {
  put(w, m.oid);
  put(w, m.new_agent);
  w.f64(m.offered_acc);
  w.u64(m.req_id);
  put(w, m.origin);
}

void encode(Writer& w, const AgentChanged& m) {
  put(w, m.oid);
  put(w, m.new_agent);
  w.f64(m.offered_acc);
}

void encode(Writer& w, const PosQueryReq& m) {
  put(w, m.oid);
  w.u64(m.req_id);
}

void encode(Writer& w, const PosQueryFwd& m) {
  put(w, m.oid);
  put(w, m.entry);
  w.u64(m.req_id);
}

void encode(Writer& w, const PosQueryRes& m) {
  put(w, m.oid);
  w.boolean(m.found);
  put(w, m.ld);
  put(w, m.agent);
  w.u64(m.req_id);
  put(w, m.origin);
}

void encode(Writer& w, const RangeQueryReq& m) {
  put(w, m.area);
  w.f64(m.req_acc);
  w.f64(m.req_overlap);
  w.u64(m.req_id);
}

void encode(Writer& w, const RangeQueryFwd& m) {
  put(w, m.area);
  w.f64(m.req_acc);
  w.f64(m.req_overlap);
  put(w, m.entry);
  w.u64(m.req_id);
  w.boolean(m.direct);
}

void encode(Writer& w, const RangeQuerySubRes& m) {
  w.u64(m.req_id);
  w.f64(m.covered_size);
  put(w, m.results);
  put(w, m.origin);
}

void encode(Writer& w, const RangeQueryRes& m) {
  w.u64(m.req_id);
  w.boolean(m.complete);
  put(w, m.results);
}

void encode(Writer& w, const NNQueryReq& m) {
  put(w, m.p);
  w.f64(m.req_acc);
  w.f64(m.near_qual);
  w.u64(m.req_id);
}

void encode(Writer& w, const NNProbeFwd& m) {
  put(w, m.p);
  w.f64(m.radius);
  w.f64(m.req_acc);
  put(w, m.coordinator);
  w.u64(m.req_id);
}

void encode(Writer& w, const NNProbeSubRes& m) {
  w.u64(m.req_id);
  w.f64(m.covered_size);
  put(w, m.candidates);
  put(w, m.origin);
}

void encode(Writer& w, const NNQueryRes& m) {
  w.u64(m.req_id);
  w.boolean(m.found);
  put(w, m.nearest);
  put(w, m.near_set);
}

void encode(Writer& w, const ChangeAccReq& m) {
  put(w, m.oid);
  put(w, m.acc_range);
  w.u64(m.req_id);
}

void encode(Writer& w, const ChangeAccRes& m) {
  w.u64(m.req_id);
  w.boolean(m.ok);
  w.f64(m.offered_acc);
}

void encode(Writer& w, const NotifyAvailAcc& m) {
  put(w, m.oid);
  w.f64(m.offered_acc);
}

void encode(Writer& w, const DeregisterReq& m) { put(w, m.oid); }
void encode(Writer& w, const RefreshReq& m) { put(w, m.oid); }

void encode(Writer& w, const EventSubscribe& m) {
  w.u64(m.sub_id);
  w.u8(static_cast<std::uint8_t>(m.kind));
  put(w, m.area);
  w.u32(m.threshold);
  put(w, m.obj_a);
  put(w, m.obj_b);
  w.f64(m.dist);
  put(w, m.subscriber);
}

void encode(Writer& w, const EventInstall& m) {
  w.u64(m.sub_id);
  w.u8(static_cast<std::uint8_t>(m.kind));
  put(w, m.area);
  put(w, m.obj_a);
  put(w, m.obj_b);
  w.f64(m.dist);
  put(w, m.coordinator);
}

void encode(Writer& w, const EventDelta& m) {
  w.u64(m.sub_id);
  put(w, m.oid);
  w.boolean(m.entered);
  put(w, m.pos);
}

void encode(Writer& w, const EventNotify& m) {
  w.u64(m.sub_id);
  w.boolean(m.fired);
  w.u32(m.count);
}

void encode(Writer& w, const EventUnsubscribe& m) { w.u64(m.sub_id); }

// --- per-message decode ------------------------------------------------------

template <typename T>
T decode(Reader& r);

template <>
RegisterReq decode(Reader& r) {
  RegisterReq m;
  m.s = get_sighting(r);
  m.obj_info = r.str();
  m.acc_range = get_acc_range(r);
  m.reg_inst = get_node(r);
  m.req_id = r.u64();
  return m;
}

template <>
RegisterRes decode(Reader& r) {
  RegisterRes m;
  m.agent = get_node(r);
  m.offered_acc = r.f64();
  m.req_id = r.u64();
  return m;
}

template <>
RegisterFailed decode(Reader& r) {
  RegisterFailed m;
  m.server = get_node(r);
  m.best_acc = r.f64();
  m.req_id = r.u64();
  return m;
}

template <>
CreatePath decode(Reader& r) {
  return CreatePath{get_oid(r)};
}

template <>
RemovePath decode(Reader& r) {
  return RemovePath{get_oid(r)};
}

template <>
UpdateReq decode(Reader& r) {
  return UpdateReq{get_sighting(r)};
}

template <>
UpdateAck decode(Reader& r) {
  UpdateAck m;
  m.oid = get_oid(r);
  m.offered_acc = r.f64();
  return m;
}

template <>
HandoverReq decode(Reader& r) {
  HandoverReq m;
  m.s = get_sighting(r);
  m.reg_info = get_reg_info(r);
  m.prev_offered_acc = r.f64();
  m.direct = r.boolean();
  m.req_id = r.u64();
  m.origin = get_origin(r);
  return m;
}

template <>
HandoverRes decode(Reader& r) {
  HandoverRes m;
  m.oid = get_oid(r);
  m.new_agent = get_node(r);
  m.offered_acc = r.f64();
  m.req_id = r.u64();
  m.origin = get_origin(r);
  return m;
}

template <>
AgentChanged decode(Reader& r) {
  AgentChanged m;
  m.oid = get_oid(r);
  m.new_agent = get_node(r);
  m.offered_acc = r.f64();
  return m;
}

template <>
PosQueryReq decode(Reader& r) {
  PosQueryReq m;
  m.oid = get_oid(r);
  m.req_id = r.u64();
  return m;
}

template <>
PosQueryFwd decode(Reader& r) {
  PosQueryFwd m;
  m.oid = get_oid(r);
  m.entry = get_node(r);
  m.req_id = r.u64();
  return m;
}

template <>
PosQueryRes decode(Reader& r) {
  PosQueryRes m;
  m.oid = get_oid(r);
  m.found = r.boolean();
  m.ld = get_ld(r);
  m.agent = get_node(r);
  m.req_id = r.u64();
  m.origin = get_origin(r);
  return m;
}

template <>
RangeQueryReq decode(Reader& r) {
  RangeQueryReq m;
  m.area = get_polygon(r);
  m.req_acc = r.f64();
  m.req_overlap = r.f64();
  m.req_id = r.u64();
  return m;
}

template <>
RangeQueryFwd decode(Reader& r) {
  RangeQueryFwd m;
  m.area = get_polygon(r);
  m.req_acc = r.f64();
  m.req_overlap = r.f64();
  m.entry = get_node(r);
  m.req_id = r.u64();
  m.direct = r.boolean();
  return m;
}

template <>
RangeQuerySubRes decode(Reader& r) {
  RangeQuerySubRes m;
  m.req_id = r.u64();
  m.covered_size = r.f64();
  m.results = get_results(r);
  m.origin = get_origin(r);
  return m;
}

template <>
RangeQueryRes decode(Reader& r) {
  RangeQueryRes m;
  m.req_id = r.u64();
  m.complete = r.boolean();
  m.results = get_results(r);
  return m;
}

template <>
NNQueryReq decode(Reader& r) {
  NNQueryReq m;
  m.p = get_point(r);
  m.req_acc = r.f64();
  m.near_qual = r.f64();
  m.req_id = r.u64();
  return m;
}

template <>
NNProbeFwd decode(Reader& r) {
  NNProbeFwd m;
  m.p = get_point(r);
  m.radius = r.f64();
  m.req_acc = r.f64();
  m.coordinator = get_node(r);
  m.req_id = r.u64();
  return m;
}

template <>
NNProbeSubRes decode(Reader& r) {
  NNProbeSubRes m;
  m.req_id = r.u64();
  m.covered_size = r.f64();
  m.candidates = get_results(r);
  m.origin = get_origin(r);
  return m;
}

template <>
NNQueryRes decode(Reader& r) {
  NNQueryRes m;
  m.req_id = r.u64();
  m.found = r.boolean();
  m.nearest = get_object_result(r);
  m.near_set = get_results(r);
  return m;
}

template <>
ChangeAccReq decode(Reader& r) {
  ChangeAccReq m;
  m.oid = get_oid(r);
  m.acc_range = get_acc_range(r);
  m.req_id = r.u64();
  return m;
}

template <>
ChangeAccRes decode(Reader& r) {
  ChangeAccRes m;
  m.req_id = r.u64();
  m.ok = r.boolean();
  m.offered_acc = r.f64();
  return m;
}

template <>
NotifyAvailAcc decode(Reader& r) {
  NotifyAvailAcc m;
  m.oid = get_oid(r);
  m.offered_acc = r.f64();
  return m;
}

template <>
DeregisterReq decode(Reader& r) {
  return DeregisterReq{get_oid(r)};
}

template <>
RefreshReq decode(Reader& r) {
  return RefreshReq{get_oid(r)};
}

template <>
EventSubscribe decode(Reader& r) {
  EventSubscribe m;
  m.sub_id = r.u64();
  m.kind = static_cast<PredicateKind>(r.u8());
  m.area = get_polygon(r);
  m.threshold = r.u32();
  m.obj_a = get_oid(r);
  m.obj_b = get_oid(r);
  m.dist = r.f64();
  m.subscriber = get_node(r);
  return m;
}

template <>
EventInstall decode(Reader& r) {
  EventInstall m;
  m.sub_id = r.u64();
  m.kind = static_cast<PredicateKind>(r.u8());
  m.area = get_polygon(r);
  m.obj_a = get_oid(r);
  m.obj_b = get_oid(r);
  m.dist = r.f64();
  m.coordinator = get_node(r);
  return m;
}

template <>
EventDelta decode(Reader& r) {
  EventDelta m;
  m.sub_id = r.u64();
  m.oid = get_oid(r);
  m.entered = r.boolean();
  m.pos = get_point(r);
  return m;
}

template <>
EventNotify decode(Reader& r) {
  EventNotify m;
  m.sub_id = r.u64();
  m.fired = r.boolean();
  m.count = r.u32();
  return m;
}

template <>
EventUnsubscribe decode(Reader& r) {
  return EventUnsubscribe{r.u64()};
}

}  // namespace

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kRegisterReq: return "RegisterReq";
    case MsgType::kRegisterRes: return "RegisterRes";
    case MsgType::kRegisterFailed: return "RegisterFailed";
    case MsgType::kCreatePath: return "CreatePath";
    case MsgType::kRemovePath: return "RemovePath";
    case MsgType::kUpdateReq: return "UpdateReq";
    case MsgType::kUpdateAck: return "UpdateAck";
    case MsgType::kHandoverReq: return "HandoverReq";
    case MsgType::kHandoverRes: return "HandoverRes";
    case MsgType::kAgentChanged: return "AgentChanged";
    case MsgType::kPosQueryReq: return "PosQueryReq";
    case MsgType::kPosQueryFwd: return "PosQueryFwd";
    case MsgType::kPosQueryRes: return "PosQueryRes";
    case MsgType::kRangeQueryReq: return "RangeQueryReq";
    case MsgType::kRangeQueryFwd: return "RangeQueryFwd";
    case MsgType::kRangeQuerySubRes: return "RangeQuerySubRes";
    case MsgType::kRangeQueryRes: return "RangeQueryRes";
    case MsgType::kNNQueryReq: return "NNQueryReq";
    case MsgType::kNNProbeFwd: return "NNProbeFwd";
    case MsgType::kNNProbeSubRes: return "NNProbeSubRes";
    case MsgType::kNNQueryRes: return "NNQueryRes";
    case MsgType::kChangeAccReq: return "ChangeAccReq";
    case MsgType::kChangeAccRes: return "ChangeAccRes";
    case MsgType::kNotifyAvailAcc: return "NotifyAvailAcc";
    case MsgType::kDeregisterReq: return "DeregisterReq";
    case MsgType::kRefreshReq: return "RefreshReq";
    case MsgType::kEventSubscribe: return "EventSubscribe";
    case MsgType::kEventInstall: return "EventInstall";
    case MsgType::kEventDelta: return "EventDelta";
    case MsgType::kEventNotify: return "EventNotify";
    case MsgType::kEventUnsubscribe: return "EventUnsubscribe";
  }
  return "Unknown";
}

MsgType message_type(const Message& msg) {
  return std::visit([](const auto& m) { return std::decay_t<decltype(m)>::kType; },
                    msg);
}

Buffer encode_envelope(NodeId src, const Message& msg) {
  Buffer buf;
  buf.reserve(64);
  Writer w(buf);
  w.u8(kWireVersion);
  w.u8(static_cast<std::uint8_t>(message_type(msg)));
  w.u32_fixed(src.value);
  std::visit([&w](const auto& m) { encode(w, m); }, msg);
  return buf;
}

Result<Envelope> decode_envelope(const std::uint8_t* data, std::size_t len) {
  Reader r(data, len);
  const std::uint8_t version = r.u8();
  if (!r.ok() || version != kWireVersion) {
    return Status(StatusCode::kCorruptData, "bad wire version");
  }
  const auto type = static_cast<MsgType>(r.u8());
  const NodeId src{r.u32_fixed()};
  Envelope env;
  env.src = src;
  switch (type) {
    case MsgType::kRegisterReq: env.msg = decode<RegisterReq>(r); break;
    case MsgType::kRegisterRes: env.msg = decode<RegisterRes>(r); break;
    case MsgType::kRegisterFailed: env.msg = decode<RegisterFailed>(r); break;
    case MsgType::kCreatePath: env.msg = decode<CreatePath>(r); break;
    case MsgType::kRemovePath: env.msg = decode<RemovePath>(r); break;
    case MsgType::kUpdateReq: env.msg = decode<UpdateReq>(r); break;
    case MsgType::kUpdateAck: env.msg = decode<UpdateAck>(r); break;
    case MsgType::kHandoverReq: env.msg = decode<HandoverReq>(r); break;
    case MsgType::kHandoverRes: env.msg = decode<HandoverRes>(r); break;
    case MsgType::kAgentChanged: env.msg = decode<AgentChanged>(r); break;
    case MsgType::kPosQueryReq: env.msg = decode<PosQueryReq>(r); break;
    case MsgType::kPosQueryFwd: env.msg = decode<PosQueryFwd>(r); break;
    case MsgType::kPosQueryRes: env.msg = decode<PosQueryRes>(r); break;
    case MsgType::kRangeQueryReq: env.msg = decode<RangeQueryReq>(r); break;
    case MsgType::kRangeQueryFwd: env.msg = decode<RangeQueryFwd>(r); break;
    case MsgType::kRangeQuerySubRes: env.msg = decode<RangeQuerySubRes>(r); break;
    case MsgType::kRangeQueryRes: env.msg = decode<RangeQueryRes>(r); break;
    case MsgType::kNNQueryReq: env.msg = decode<NNQueryReq>(r); break;
    case MsgType::kNNProbeFwd: env.msg = decode<NNProbeFwd>(r); break;
    case MsgType::kNNProbeSubRes: env.msg = decode<NNProbeSubRes>(r); break;
    case MsgType::kNNQueryRes: env.msg = decode<NNQueryRes>(r); break;
    case MsgType::kChangeAccReq: env.msg = decode<ChangeAccReq>(r); break;
    case MsgType::kChangeAccRes: env.msg = decode<ChangeAccRes>(r); break;
    case MsgType::kNotifyAvailAcc: env.msg = decode<NotifyAvailAcc>(r); break;
    case MsgType::kDeregisterReq: env.msg = decode<DeregisterReq>(r); break;
    case MsgType::kRefreshReq: env.msg = decode<RefreshReq>(r); break;
    case MsgType::kEventSubscribe: env.msg = decode<EventSubscribe>(r); break;
    case MsgType::kEventInstall: env.msg = decode<EventInstall>(r); break;
    case MsgType::kEventDelta: env.msg = decode<EventDelta>(r); break;
    case MsgType::kEventNotify: env.msg = decode<EventNotify>(r); break;
    case MsgType::kEventUnsubscribe: env.msg = decode<EventUnsubscribe>(r); break;
    default:
      return Status(StatusCode::kCorruptData, "unknown message type");
  }
  if (!r.ok()) {
    return Status(StatusCode::kCorruptData, "truncated message");
  }
  return env;
}

}  // namespace locs::wire
