#include "wire/messages.hpp"

#include <algorithm>

namespace locs::wire {

namespace {

// --- field helpers -----------------------------------------------------------

void put(Writer& w, geo::Point p) {
  w.f64(p.x);
  w.f64(p.y);
}

geo::Point get_point(Reader& r) {
  geo::Point p;
  p.x = r.f64();
  p.y = r.f64();
  return p;
}

void put(Writer& w, const geo::Polygon& poly) {
  w.u64(poly.size());
  for (const geo::Point& p : poly.vertices()) put(w, p);
}

/// In-place polygon decode: steals the target's vertex vector so its
/// capacity is reused across messages (zero allocations in steady state).
void get_polygon_into(Reader& r, geo::Polygon& out) {
  std::vector<geo::Point> pts = out.take_vertices();
  pts.clear();
  const std::uint64_t n = r.u64();
  if (r.ok() && n <= 1'000'000) {
    // Clamp the reserve by the bytes actually present (16 per point): a
    // corrupt length prefix must not pin megabytes in the scratch envelope.
    pts.reserve(std::min<std::uint64_t>(n, r.remaining() / 16 + 1));
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) pts.push_back(get_point(r));
  }
  out = geo::Polygon(std::move(pts));
}

void put(Writer& w, ObjectId id) { w.u64(id.value); }
ObjectId get_oid(Reader& r) { return ObjectId{r.u64()}; }

void put(Writer& w, NodeId id) { w.u32(id.value); }
NodeId get_node(Reader& r) { return NodeId{r.u32()}; }

void put(Writer& w, const Sighting& s) {
  put(w, s.oid);
  w.i64(s.t);
  put(w, s.pos);
  w.f64(s.acc_sens);
}

Sighting get_sighting(Reader& r) {
  Sighting s;
  s.oid = get_oid(r);
  s.t = r.i64();
  s.pos = get_point(r);
  s.acc_sens = r.f64();
  return s;
}

void put(Writer& w, const LocationDescriptor& ld) {
  put(w, ld.pos);
  w.f64(ld.acc);
}

LocationDescriptor get_ld(Reader& r) {
  LocationDescriptor ld;
  ld.pos = get_point(r);
  ld.acc = r.f64();
  return ld;
}

void put(Writer& w, const AccuracyRange& a) {
  w.f64(a.desired);
  w.f64(a.minimum);
}

AccuracyRange get_acc_range(Reader& r) {
  AccuracyRange a;
  a.desired = r.f64();
  a.minimum = r.f64();
  return a;
}

void put(Writer& w, const RegInfo& ri) {
  put(w, ri.reg_inst);
  put(w, ri.acc_range);
}

RegInfo get_reg_info(Reader& r) {
  RegInfo ri;
  ri.reg_inst = get_node(r);
  ri.acc_range = get_acc_range(r);
  return ri;
}

void put(Writer& w, const ObjectResult& res) {
  put(w, res.oid);
  put(w, res.ld);
}

ObjectResult get_object_result(Reader& r) {
  ObjectResult res;
  res.oid = get_oid(r);
  res.ld = get_ld(r);
  return res;
}

/// Packed result list, current (version 2) framing: [count][packed_len]
/// [packed] -- the packed bytes are emitted verbatim (built by append()).
void put(Writer& w, const PackedResults& v) {
  w.u64(v.count);
  w.u64(v.packed.size());
  w.bytes(v.packed.data(), v.packed.size());
}

/// Legacy (version 1) result-list decode: [n][results...]. The old element
/// encoding is byte-identical to the packed region, so the raw bytes of the
/// n results are captured into `packed` without re-encoding: probe-parse to
/// find the region's end, then take it verbatim.
void get_results_v1_into(Reader& r, PackedResults& out) {
  out.clear();
  out.count = r.u64();
  if (!r.ok()) return;
  if (out.count > 10'000'000) {
    r.fail();
    return;
  }
  Reader probe = r;
  for (std::uint64_t i = 0; i < out.count; ++i) (void)get_object_result(probe);
  if (!probe.ok()) {
    out.count = 0;
    r.fail();
    return;
  }
  const std::size_t len = r.remaining() - probe.remaining();
  const std::span<const std::uint8_t> bytes = r.bytes(len);
  out.packed.assign(bytes.begin(), bytes.end());
}

void put(Writer& w, const std::optional<OriginArea>& origin) {
  w.boolean(origin.has_value());
  if (origin) {
    put(w, origin->leaf);
    put(w, origin->area);
  }
}

void get_origin_into(Reader& r, std::optional<OriginArea>& out) {
  if (!r.boolean()) {
    out.reset();
    return;
  }
  if (!out) out.emplace();
  out->leaf = get_node(r);
  get_polygon_into(r, out->area);
}

// --- per-message encode ------------------------------------------------------

void encode(Writer& w, const RegisterReq& m) {
  put(w, m.s);
  w.str(m.obj_info);
  put(w, m.acc_range);
  put(w, m.reg_inst);
  w.u64(m.req_id);
}

void encode(Writer& w, const RegisterRes& m) {
  put(w, m.agent);
  w.f64(m.offered_acc);
  w.u64(m.req_id);
}

void encode(Writer& w, const RegisterFailed& m) {
  put(w, m.server);
  w.f64(m.best_acc);
  w.u64(m.req_id);
}

void encode(Writer& w, const CreatePath& m) { put(w, m.oid); }
void encode(Writer& w, const RemovePath& m) { put(w, m.oid); }
void encode(Writer& w, const UpdateReq& m) { put(w, m.s); }

void encode(Writer& w, const UpdateAck& m) {
  put(w, m.oid);
  w.f64(m.offered_acc);
}

// Batched messages: the packed region was built by append() and is emitted
// verbatim behind a length prefix (see the framing invariants in the header).
void encode(Writer& w, const BatchedUpdateReq& m) {
  w.u64(m.count);
  w.u64(m.packed.size());
  w.bytes(m.packed.data(), m.packed.size());
}

void encode(Writer& w, const BatchedUpdateAck& m) {
  w.u64(m.count);
  w.u64(m.packed.size());
  w.bytes(m.packed.data(), m.packed.size());
}

void encode(Writer& w, const HandoverReq& m) {
  put(w, m.s);
  put(w, m.reg_info);
  w.f64(m.prev_offered_acc);
  w.boolean(m.direct);
  w.u64(m.req_id);
  put(w, m.origin);
}

void encode(Writer& w, const HandoverRes& m) {
  put(w, m.oid);
  put(w, m.new_agent);
  w.f64(m.offered_acc);
  w.u64(m.req_id);
  put(w, m.origin);
}

void encode(Writer& w, const AgentChanged& m) {
  put(w, m.oid);
  put(w, m.new_agent);
  w.f64(m.offered_acc);
}

void encode(Writer& w, const PosQueryReq& m) {
  put(w, m.oid);
  w.u64(m.req_id);
}

void encode(Writer& w, const PosQueryFwd& m) {
  put(w, m.oid);
  put(w, m.entry);
  w.u64(m.req_id);
}

void encode(Writer& w, const PosQueryRes& m) {
  put(w, m.oid);
  w.boolean(m.found);
  put(w, m.ld);
  put(w, m.agent);
  w.u64(m.req_id);
  put(w, m.origin);
}

void encode(Writer& w, const RangeQueryReq& m) {
  put(w, m.area);
  w.f64(m.req_acc);
  w.f64(m.req_overlap);
  w.u64(m.req_id);
}

void encode(Writer& w, const RangeQueryFwd& m) {
  put(w, m.area);
  w.f64(m.req_acc);
  w.f64(m.req_overlap);
  put(w, m.entry);
  w.u64(m.req_id);
  w.boolean(m.direct);
}

// Packed query results (version-2 envelopes; see the header invariants).
void encode(Writer& w, const RangeQuerySubRes& m) {
  w.u64(m.req_id);
  w.f64(m.covered_size);
  put(w, m.results);
  put(w, m.origin);
}

void encode(Writer& w, const RangeQueryRes& m) {
  w.u64(m.req_id);
  w.boolean(m.complete);
  put(w, m.results);
}

void encode(Writer& w, const NNQueryReq& m) {
  put(w, m.p);
  w.f64(m.req_acc);
  w.f64(m.near_qual);
  w.u64(m.req_id);
}

void encode(Writer& w, const NNProbeFwd& m) {
  put(w, m.p);
  w.f64(m.radius);
  w.f64(m.req_acc);
  put(w, m.coordinator);
  w.u64(m.req_id);
}

void encode(Writer& w, const NNProbeSubRes& m) {
  w.u64(m.req_id);
  w.f64(m.covered_size);
  put(w, m.candidates);
  put(w, m.origin);
}

void encode(Writer& w, const NNQueryRes& m) {
  w.u64(m.req_id);
  w.boolean(m.found);
  put(w, m.nearest);
  put(w, m.near_set);
}

void encode(Writer& w, const ChangeAccReq& m) {
  put(w, m.oid);
  put(w, m.acc_range);
  w.u64(m.req_id);
}

void encode(Writer& w, const ChangeAccRes& m) {
  w.u64(m.req_id);
  w.boolean(m.ok);
  w.f64(m.offered_acc);
}

void encode(Writer& w, const NotifyAvailAcc& m) {
  put(w, m.oid);
  w.f64(m.offered_acc);
}

void encode(Writer& w, const DeregisterReq& m) { put(w, m.oid); }
void encode(Writer& w, const RefreshReq& m) { put(w, m.oid); }

void encode(Writer& w, const EventSubscribe& m) {
  w.u64(m.sub_id);
  w.u8(static_cast<std::uint8_t>(m.kind));
  put(w, m.area);
  w.u32(m.threshold);
  put(w, m.obj_a);
  put(w, m.obj_b);
  w.f64(m.dist);
  put(w, m.subscriber);
}

void encode(Writer& w, const EventInstall& m) {
  w.u64(m.sub_id);
  w.u8(static_cast<std::uint8_t>(m.kind));
  put(w, m.area);
  put(w, m.obj_a);
  put(w, m.obj_b);
  w.f64(m.dist);
  put(w, m.coordinator);
}

void encode(Writer& w, const EventDelta& m) {
  w.u64(m.sub_id);
  put(w, m.oid);
  w.boolean(m.entered);
  put(w, m.pos);
}

void encode(Writer& w, const EventNotify& m) {
  w.u64(m.sub_id);
  w.boolean(m.fired);
  w.u32(m.count);
}

void encode(Writer& w, const EventUnsubscribe& m) { w.u64(m.sub_id); }

void encode(Writer& w, const Heartbeat& m) { w.u64(m.seq); }
void encode(Writer& w, const HeartbeatAck& m) { w.u64(m.seq); }
void encode(Writer& w, const RecoveryHello& m) { w.u64(m.incarnation); }

void encode(Writer& w, const BatchedRefreshReq& m) {
  w.u64(m.count);
  w.u64(m.packed.size());
  w.bytes(m.packed.data(), m.packed.size());
}

void encode(Writer& w, const BatchedPathUpdate& m) {
  w.u64(m.count);
  w.u64(m.packed.size());
  w.bytes(m.packed.data(), m.packed.size());
}

void encode(Writer& w, const ShardLoadStats& m) {
  w.u64(m.seq);
  w.u64(m.count);
  w.u64(m.packed.size());
  w.bytes(m.packed.data(), m.packed.size());
}

void encode(Writer& w, const BucketMigrate& m) {
  w.u32(m.bucket);
  w.u64(m.count);
  w.u64(m.packed.size());
  w.bytes(m.packed.data(), m.packed.size());
}

void encode(Writer& w, const ReplicaTee& m) {
  w.u64(m.count);
  w.u64(m.packed.size());
  w.bytes(m.packed.data(), m.packed.size());
}

void encode(Writer& w, const StandbyPromote& m) {
  put(w, m.primary);
  w.u64(m.incarnation);
}

void encode(Writer& w, const StandbyDemote& m) {
  put(w, m.primary);
  w.u64(m.incarnation);
}

// --- per-message decode ------------------------------------------------------
//
// decode_into fills an existing message in place: vectors/polygons/strings
// keep their capacity, so decoding a steady stream of one message type into
// a scratch envelope allocates nothing.

void decode_into(Reader& r, RegisterReq& m) {
  m.s = get_sighting(r);
  // Messages outlive the datagram, so the string view must be owned here
  // (assign reuses the existing capacity).
  const std::string_view info = r.str();
  m.obj_info.assign(info.data(), info.size());
  m.acc_range = get_acc_range(r);
  m.reg_inst = get_node(r);
  m.req_id = r.u64();
}

void decode_into(Reader& r, RegisterRes& m) {
  m.agent = get_node(r);
  m.offered_acc = r.f64();
  m.req_id = r.u64();
}

void decode_into(Reader& r, RegisterFailed& m) {
  m.server = get_node(r);
  m.best_acc = r.f64();
  m.req_id = r.u64();
}

void decode_into(Reader& r, CreatePath& m) { m.oid = get_oid(r); }
void decode_into(Reader& r, RemovePath& m) { m.oid = get_oid(r); }
void decode_into(Reader& r, UpdateReq& m) { m.s = get_sighting(r); }

void decode_into(Reader& r, UpdateAck& m) {
  m.oid = get_oid(r);
  m.offered_acc = r.f64();
}

/// Shared by both batched messages: owns the packed region (assign reuses
/// the scratch buffer's capacity); the Cursors unpack it lazily later.
void get_packed_into(Reader& r, std::uint64_t& count, Buffer& packed) {
  count = r.u64();
  const std::uint64_t n = r.u64();
  const std::span<const std::uint8_t> bytes =
      r.bytes(static_cast<std::size_t>(n));
  if (!r.ok()) {
    count = 0;
    packed.clear();
    return;
  }
  packed.assign(bytes.begin(), bytes.end());
}

void decode_into(Reader& r, BatchedUpdateReq& m) {
  get_packed_into(r, m.count, m.packed);
}

void decode_into(Reader& r, BatchedUpdateAck& m) {
  get_packed_into(r, m.count, m.packed);
}

void decode_into(Reader& r, HandoverReq& m) {
  m.s = get_sighting(r);
  m.reg_info = get_reg_info(r);
  m.prev_offered_acc = r.f64();
  m.direct = r.boolean();
  m.req_id = r.u64();
  get_origin_into(r, m.origin);
}

void decode_into(Reader& r, HandoverRes& m) {
  m.oid = get_oid(r);
  m.new_agent = get_node(r);
  m.offered_acc = r.f64();
  m.req_id = r.u64();
  get_origin_into(r, m.origin);
}

void decode_into(Reader& r, AgentChanged& m) {
  m.oid = get_oid(r);
  m.new_agent = get_node(r);
  m.offered_acc = r.f64();
}

void decode_into(Reader& r, PosQueryReq& m) {
  m.oid = get_oid(r);
  m.req_id = r.u64();
}

void decode_into(Reader& r, PosQueryFwd& m) {
  m.oid = get_oid(r);
  m.entry = get_node(r);
  m.req_id = r.u64();
}

void decode_into(Reader& r, PosQueryRes& m) {
  m.oid = get_oid(r);
  m.found = r.boolean();
  m.ld = get_ld(r);
  m.agent = get_node(r);
  m.req_id = r.u64();
  get_origin_into(r, m.origin);
}

void decode_into(Reader& r, RangeQueryReq& m) {
  get_polygon_into(r, m.area);
  m.req_acc = r.f64();
  m.req_overlap = r.f64();
  m.req_id = r.u64();
}

void decode_into(Reader& r, RangeQueryFwd& m) {
  get_polygon_into(r, m.area);
  m.req_acc = r.f64();
  m.req_overlap = r.f64();
  m.entry = get_node(r);
  m.req_id = r.u64();
  m.direct = r.boolean();
}

/// Version-dispatched result-list decode: version 2 is the packed framing,
/// version 1 the legacy vector layout (captured verbatim; see above).
void get_results_into(Reader& r, PackedResults& out, std::uint8_t version) {
  if (version == kWireVersionPacked) {
    get_packed_into(r, out.count, out.packed);
  } else {
    get_results_v1_into(r, out);
  }
}

void decode_into(Reader& r, RangeQuerySubRes& m, std::uint8_t version) {
  m.req_id = r.u64();
  m.covered_size = r.f64();
  get_results_into(r, m.results, version);
  get_origin_into(r, m.origin);
}

void decode_into(Reader& r, RangeQueryRes& m, std::uint8_t version) {
  m.req_id = r.u64();
  m.complete = r.boolean();
  get_results_into(r, m.results, version);
}

void decode_into(Reader& r, NNQueryReq& m) {
  m.p = get_point(r);
  m.req_acc = r.f64();
  m.near_qual = r.f64();
  m.req_id = r.u64();
}

void decode_into(Reader& r, NNProbeFwd& m) {
  m.p = get_point(r);
  m.radius = r.f64();
  m.req_acc = r.f64();
  m.coordinator = get_node(r);
  m.req_id = r.u64();
}

void decode_into(Reader& r, NNProbeSubRes& m, std::uint8_t version) {
  m.req_id = r.u64();
  m.covered_size = r.f64();
  get_results_into(r, m.candidates, version);
  get_origin_into(r, m.origin);
}

void decode_into(Reader& r, NNQueryRes& m, std::uint8_t version) {
  m.req_id = r.u64();
  m.found = r.boolean();
  m.nearest = get_object_result(r);
  get_results_into(r, m.near_set, version);
}

void decode_into(Reader& r, ChangeAccReq& m) {
  m.oid = get_oid(r);
  m.acc_range = get_acc_range(r);
  m.req_id = r.u64();
}

void decode_into(Reader& r, ChangeAccRes& m) {
  m.req_id = r.u64();
  m.ok = r.boolean();
  m.offered_acc = r.f64();
}

void decode_into(Reader& r, NotifyAvailAcc& m) {
  m.oid = get_oid(r);
  m.offered_acc = r.f64();
}

void decode_into(Reader& r, DeregisterReq& m) { m.oid = get_oid(r); }
void decode_into(Reader& r, RefreshReq& m) { m.oid = get_oid(r); }

void decode_into(Reader& r, EventSubscribe& m) {
  m.sub_id = r.u64();
  m.kind = static_cast<PredicateKind>(r.u8());
  get_polygon_into(r, m.area);
  m.threshold = r.u32();
  m.obj_a = get_oid(r);
  m.obj_b = get_oid(r);
  m.dist = r.f64();
  m.subscriber = get_node(r);
}

void decode_into(Reader& r, EventInstall& m) {
  m.sub_id = r.u64();
  m.kind = static_cast<PredicateKind>(r.u8());
  get_polygon_into(r, m.area);
  m.obj_a = get_oid(r);
  m.obj_b = get_oid(r);
  m.dist = r.f64();
  m.coordinator = get_node(r);
}

void decode_into(Reader& r, EventDelta& m) {
  m.sub_id = r.u64();
  m.oid = get_oid(r);
  m.entered = r.boolean();
  m.pos = get_point(r);
}

void decode_into(Reader& r, EventNotify& m) {
  m.sub_id = r.u64();
  m.fired = r.boolean();
  m.count = r.u32();
}

void decode_into(Reader& r, EventUnsubscribe& m) { m.sub_id = r.u64(); }

void decode_into(Reader& r, Heartbeat& m) { m.seq = r.u64(); }
void decode_into(Reader& r, HeartbeatAck& m) { m.seq = r.u64(); }
void decode_into(Reader& r, RecoveryHello& m) { m.incarnation = r.u64(); }

void decode_into(Reader& r, BatchedRefreshReq& m) {
  get_packed_into(r, m.count, m.packed);
}

void decode_into(Reader& r, BatchedPathUpdate& m) {
  get_packed_into(r, m.count, m.packed);
}

void decode_into(Reader& r, ShardLoadStats& m) {
  m.seq = r.u64();
  get_packed_into(r, m.count, m.packed);
}

void decode_into(Reader& r, BucketMigrate& m) {
  m.bucket = r.u32();
  get_packed_into(r, m.count, m.packed);
}

void decode_into(Reader& r, ReplicaTee& m) {
  get_packed_into(r, m.count, m.packed);
}

void decode_into(Reader& r, StandbyPromote& m) {
  m.primary = get_node(r);
  m.incarnation = r.u64();
}

void decode_into(Reader& r, StandbyDemote& m) {
  m.primary = get_node(r);
  m.incarnation = r.u64();
}

/// Uniform decode entry used by the envelope switch: most messages require a
/// version-1 envelope; the packed query result types dispatch on the version
/// byte (and so keep the legacy framing decodable).
template <typename M>
void decode_msg(Reader& r, M& m, std::uint8_t version) {
  if (version != kWireVersion) {
    r.fail();
    return;
  }
  decode_into(r, m);
}
void decode_msg(Reader& r, RangeQuerySubRes& m, std::uint8_t version) {
  decode_into(r, m, version);
}
void decode_msg(Reader& r, RangeQueryRes& m, std::uint8_t version) {
  decode_into(r, m, version);
}
void decode_msg(Reader& r, NNProbeSubRes& m, std::uint8_t version) {
  decode_into(r, m, version);
}
void decode_msg(Reader& r, NNQueryRes& m, std::uint8_t version) {
  decode_into(r, m, version);
}

// --- per-message size hints --------------------------------------------------
//
// Upper-bound-ish estimates of the encoded payload, used by the Writer
// reserve() size-hint protocol. Exactness is not required: the hint only has
// to make buffer growth converge quickly so pooled buffers stop reallocating.

constexpr std::size_t kEnvelopeBase = 64;

std::size_t extra_hint(const geo::Polygon& p) { return 16 * p.size(); }
std::size_t extra_hint(const std::optional<OriginArea>& o) {
  return o ? 8 + extra_hint(o->area) : 1;
}
std::size_t extra_hint(const PackedResults& v) {
  return 20 + v.packed.size();  // count + packed_len varints + packed bytes
}

template <typename M>
std::size_t size_hint(const M&) {
  return kEnvelopeBase;
}
std::size_t size_hint(const RegisterReq& m) {
  return kEnvelopeBase + m.obj_info.size();
}
std::size_t size_hint(const HandoverReq& m) {
  return kEnvelopeBase + extra_hint(m.origin);
}
std::size_t size_hint(const HandoverRes& m) {
  return kEnvelopeBase + extra_hint(m.origin);
}
std::size_t size_hint(const PosQueryRes& m) {
  return kEnvelopeBase + extra_hint(m.origin);
}
std::size_t size_hint(const RangeQueryReq& m) {
  return kEnvelopeBase + extra_hint(m.area);
}
std::size_t size_hint(const RangeQueryFwd& m) {
  return kEnvelopeBase + extra_hint(m.area);
}
std::size_t size_hint(const RangeQuerySubRes& m) {
  return kEnvelopeBase + extra_hint(m.results) + extra_hint(m.origin);
}
std::size_t size_hint(const RangeQueryRes& m) {
  return kEnvelopeBase + extra_hint(m.results);
}
std::size_t size_hint(const NNProbeSubRes& m) {
  return kEnvelopeBase + extra_hint(m.candidates) + extra_hint(m.origin);
}
std::size_t size_hint(const NNQueryRes& m) {
  return kEnvelopeBase + extra_hint(m.near_set);
}
std::size_t size_hint(const EventSubscribe& m) {
  return kEnvelopeBase + extra_hint(m.area);
}
std::size_t size_hint(const EventInstall& m) {
  return kEnvelopeBase + extra_hint(m.area);
}
std::size_t size_hint(const BatchedUpdateReq& m) {
  return kEnvelopeBase + m.packed.size();
}
std::size_t size_hint(const BatchedUpdateAck& m) {
  return kEnvelopeBase + m.packed.size();
}
std::size_t size_hint(const BatchedRefreshReq& m) {
  return kEnvelopeBase + m.packed.size();
}
std::size_t size_hint(const BatchedPathUpdate& m) {
  return kEnvelopeBase + m.packed.size();
}
std::size_t size_hint(const ShardLoadStats& m) {
  return kEnvelopeBase + m.packed.size();
}
std::size_t size_hint(const BucketMigrate& m) {
  return kEnvelopeBase + m.packed.size();
}
std::size_t size_hint(const ReplicaTee& m) {
  return kEnvelopeBase + m.packed.size();
}

/// Envelope version stamp, keyed off the one shared predicate (header).
template <typename M>
constexpr std::uint8_t version_for() {
  return is_packed_result_type(M::kType) ? kWireVersionPacked : kWireVersion;
}

template <typename M>
void encode_envelope_impl(Buffer& out, NodeId src, const M& m) {
  out.clear();
  Writer w(out);
  w.reserve(size_hint(m));
  w.u8(version_for<M>());
  w.u8(static_cast<std::uint8_t>(M::kType));
  w.u32_fixed(src.value);
  encode(w, m);
}

}  // namespace

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kRegisterReq: return "RegisterReq";
    case MsgType::kRegisterRes: return "RegisterRes";
    case MsgType::kRegisterFailed: return "RegisterFailed";
    case MsgType::kCreatePath: return "CreatePath";
    case MsgType::kRemovePath: return "RemovePath";
    case MsgType::kUpdateReq: return "UpdateReq";
    case MsgType::kUpdateAck: return "UpdateAck";
    case MsgType::kHandoverReq: return "HandoverReq";
    case MsgType::kHandoverRes: return "HandoverRes";
    case MsgType::kAgentChanged: return "AgentChanged";
    case MsgType::kPosQueryReq: return "PosQueryReq";
    case MsgType::kPosQueryFwd: return "PosQueryFwd";
    case MsgType::kPosQueryRes: return "PosQueryRes";
    case MsgType::kRangeQueryReq: return "RangeQueryReq";
    case MsgType::kRangeQueryFwd: return "RangeQueryFwd";
    case MsgType::kRangeQuerySubRes: return "RangeQuerySubRes";
    case MsgType::kRangeQueryRes: return "RangeQueryRes";
    case MsgType::kNNQueryReq: return "NNQueryReq";
    case MsgType::kNNProbeFwd: return "NNProbeFwd";
    case MsgType::kNNProbeSubRes: return "NNProbeSubRes";
    case MsgType::kNNQueryRes: return "NNQueryRes";
    case MsgType::kChangeAccReq: return "ChangeAccReq";
    case MsgType::kChangeAccRes: return "ChangeAccRes";
    case MsgType::kNotifyAvailAcc: return "NotifyAvailAcc";
    case MsgType::kDeregisterReq: return "DeregisterReq";
    case MsgType::kRefreshReq: return "RefreshReq";
    case MsgType::kEventSubscribe: return "EventSubscribe";
    case MsgType::kEventInstall: return "EventInstall";
    case MsgType::kEventDelta: return "EventDelta";
    case MsgType::kEventNotify: return "EventNotify";
    case MsgType::kEventUnsubscribe: return "EventUnsubscribe";
    case MsgType::kBatchedUpdateReq: return "BatchedUpdateReq";
    case MsgType::kBatchedUpdateAck: return "BatchedUpdateAck";
    case MsgType::kHeartbeat: return "Heartbeat";
    case MsgType::kHeartbeatAck: return "HeartbeatAck";
    case MsgType::kRecoveryHello: return "RecoveryHello";
    case MsgType::kBatchedRefreshReq: return "BatchedRefreshReq";
    case MsgType::kBatchedPathUpdate: return "BatchedPathUpdate";
    case MsgType::kShardLoadStats: return "ShardLoadStats";
    case MsgType::kBucketMigrate: return "BucketMigrate";
    case MsgType::kReplicaTee: return "ReplicaTee";
    case MsgType::kStandbyPromote: return "StandbyPromote";
    case MsgType::kStandbyDemote: return "StandbyDemote";
  }
  return "Unknown";
}

// --- packed query results: packing / lazy unpacking --------------------------

void put_object_result(Writer& w, const ObjectResult& r) { put(w, r); }

void PackedResults::append(const ObjectResult& r) {
  Writer w(packed);
  put(w, r);
  ++count;
}

bool PackedResults::Cursor::next(ObjectResult& out) {
  if (r_.remaining() == 0) return false;
  out = get_object_result(r_);
  return r_.ok();
}

std::vector<ObjectResult> PackedResults::to_vector() const {
  std::vector<ObjectResult> v;
  // `count` is wire-advisory and UNVALIDATED; clamp the reserve by the bytes
  // actually present (>= 25 per result) so a corrupt or hostile count can
  // never pin memory (the Cursor stops at the real packed region anyway).
  v.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(count, packed.size() / 25 + 1)));
  Cursor cur = iter();
  ObjectResult r;
  while (cur.next(r)) v.push_back(r);
  return v;
}

void PackedResults::assign(const std::vector<ObjectResult>& v) {
  clear();
  for (const ObjectResult& r : v) append(r);
}

std::optional<ResultCursor::Item> ResultCursor::next() {
  if (r_.remaining() == 0) return std::nullopt;
  const std::size_t start = len_ - r_.remaining();
  // Delimit the item with the one true ObjectResult decoder: the byte range
  // tracks any future layout change automatically.
  const ObjectResult res = get_object_result(r_);
  if (!r_.ok()) return std::nullopt;  // malformed tail: stop iterating
  const std::size_t end = len_ - r_.remaining();
  return Item{res, base_ + start, end - start};
}

SubResView::SubResView(const std::uint8_t* data, std::size_t len) {
  Reader r(data, len);
  // Envelope prefix: [version u8][type u8][src u32_fixed]. Only version-2
  // (packed) framings are viewable; legacy version-1 datagrams take the full
  // decode path.
  if (r.u8() != kWireVersionPacked) return;
  type_ = static_cast<MsgType>(r.u8());
  if (type_ != MsgType::kRangeQuerySubRes && type_ != MsgType::kNNProbeSubRes)
    return;
  src_ = NodeId{r.u32_fixed()};
  req_id_ = r.u64();
  covered_size_ = r.f64();
  count_ = r.u64();
  const std::size_t packed_len = static_cast<std::size_t>(r.u64());
  if (!r.ok() || packed_len > r.remaining()) return;
  packed_base_ = data + (len - r.remaining());
  packed_len_ = packed_len;
  tail_base_ = packed_base_ + packed_len_;
  tail_len_ = r.remaining() - packed_len_;
  valid_ = true;
}

bool SubResView::origin(std::optional<OriginArea>& out) const {
  if (!valid_) return false;
  Reader r(tail_base_, tail_len_);
  get_origin_into(r, out);
  if (!r.ok()) {
    out.reset();
    return false;
  }
  return out.has_value();
}

void begin_envelope(Writer& w, NodeId src, MsgType type) {
  w.u8(is_packed_result_type(type) ? kWireVersionPacked : kWireVersion);
  w.u8(static_cast<std::uint8_t>(type));
  w.u32_fixed(src.value);
}

// --- batched path maintenance: packing / lazy unpacking ----------------------

void BatchedPathUpdate::append(bool create, ObjectId oid) {
  Writer w(packed);
  w.u8(create ? 1 : 0);
  put(w, oid);
  ++count;
}

bool BatchedPathUpdate::Cursor::next(bool& create, ObjectId& oid) {
  if (r_.remaining() == 0) return false;
  create = r_.u8() != 0;
  oid = get_oid(r_);
  return r_.ok();
}

// --- batched-update packing / lazy unpacking ---------------------------------

void BatchedUpdateReq::append(const Sighting& s) {
  Writer w(packed);
  put(w, s);
  ++count;
}

bool BatchedUpdateReq::Cursor::next(Sighting& out) {
  if (r_.remaining() == 0) return false;
  out = get_sighting(r_);
  return r_.ok();
}

void BatchedUpdateAck::append(ObjectId oid, double offered_acc) {
  Writer w(packed);
  put(w, oid);
  w.f64(offered_acc);
  ++count;
}

bool BatchedUpdateAck::Cursor::next(ObjectId& oid, double& offered_acc) {
  if (r_.remaining() == 0) return false;
  oid = get_oid(r_);
  offered_acc = r_.f64();
  return r_.ok();
}

void BatchedRefreshReq::append(ObjectId oid) {
  Writer w(packed);
  put(w, oid);
  ++count;
}

bool BatchedRefreshReq::Cursor::next(ObjectId& out) {
  if (r_.remaining() == 0) return false;
  out = get_oid(r_);
  return r_.ok();
}

// --- shard load / bucket migration: packing / lazy unpacking -----------------

void ShardLoadStats::append(const Entry& e) {
  Writer w(packed);
  w.u32(e.shard);
  w.u64(e.sightings);
  w.u64(e.visitors);
  w.u64(e.msgs_handled);
  w.u64(e.inbox_depth);
  ++count;
}

bool ShardLoadStats::Cursor::next(Entry& out) {
  if (r_.remaining() == 0) return false;
  out.shard = r_.u32();
  out.sightings = r_.u64();
  out.visitors = r_.u64();
  out.msgs_handled = r_.u64();
  out.inbox_depth = r_.u64();
  return r_.ok();
}

void BucketMigrate::append(const Entry& e) {
  Writer w(packed);
  put(w, e.s);
  w.f64(e.offered_acc);
  w.i64(e.expiry);
  put(w, e.reg);
  ++count;
}

bool BucketMigrate::Cursor::next(Entry& out) {
  if (r_.remaining() == 0) return false;
  out.s = get_sighting(r_);
  out.offered_acc = r_.f64();
  out.expiry = r_.i64();
  out.reg = get_reg_info(r_);
  return r_.ok();
}

// --- replica tee: packing / lazy unpacking -----------------------------------

void ReplicaTee::append(const Entry& e) {
  Writer w(packed);
  w.u8(static_cast<std::uint8_t>(e.op));
  put(w, e.s);
  w.f64(e.offered_acc);
  w.i64(e.expiry);
  put(w, e.reg);
  ++count;
}

bool ReplicaTee::Cursor::next(Entry& out) {
  if (r_.remaining() == 0) return false;
  const std::uint8_t op = r_.u8();
  if (op > static_cast<std::uint8_t>(Op::kSetAcc)) {
    r_.fail();
    return false;
  }
  out.op = static_cast<Op>(op);
  out.s = get_sighting(r_);
  out.offered_acc = r_.f64();
  out.expiry = r_.i64();
  out.reg = get_reg_info(r_);
  return r_.ok();
}

ReplicaTeeView::ReplicaTeeView(const std::uint8_t* data, std::size_t len)
    : r_(data, len) {
  // Envelope prefix: [version u8][type u8][src u32_fixed].
  if (r_.u8() != kWireVersion) return;
  if (static_cast<MsgType>(r_.u8()) != MsgType::kReplicaTee) return;
  (void)r_.u32_fixed();
  count_ = r_.u64();
  packed_len_ = static_cast<std::size_t>(r_.u64());
  if (!r_.ok() || packed_len_ > r_.remaining()) return;
  packed_base_ = data + (len - r_.remaining());
  // Re-anchor the reader on exactly the packed region, so iteration cannot
  // run into trailing bytes.
  r_ = Reader(packed_base_, packed_len_);
  valid_ = true;
}

std::optional<ReplicaTeeView::Item> ReplicaTeeView::next() {
  if (!valid_ || r_.remaining() == 0) return std::nullopt;
  const std::size_t start = packed_len_ - r_.remaining();
  // Delimit the item with the one true entry decoder layout: op byte, then
  // the BucketMigrate-style visitor fields. The sighting's leading ObjectId
  // is the shard-routing key.
  const std::uint8_t op = r_.u8();
  if (op > static_cast<std::uint8_t>(ReplicaTee::Op::kSetAcc)) return std::nullopt;
  const Sighting s = get_sighting(r_);
  (void)r_.f64();
  (void)r_.i64();
  (void)get_reg_info(r_);
  if (!r_.ok()) return std::nullopt;  // malformed tail: stop iterating
  const std::size_t end = packed_len_ - r_.remaining();
  return Item{s.oid, packed_base_ + start, end - start};
}

BatchedRefreshView::BatchedRefreshView(const std::uint8_t* data, std::size_t len)
    : r_(data, len) {
  // Envelope prefix: [version u8][type u8][src u32_fixed].
  if (r_.u8() != kWireVersion) return;
  if (static_cast<MsgType>(r_.u8()) != MsgType::kBatchedRefreshReq) return;
  (void)r_.u32_fixed();
  count_ = r_.u64();
  packed_len_ = static_cast<std::size_t>(r_.u64());
  if (!r_.ok() || packed_len_ > r_.remaining()) return;
  packed_base_ = data + (len - r_.remaining());
  // Re-anchor the reader on exactly the packed region, so iteration cannot
  // run into trailing bytes.
  r_ = Reader(packed_base_, packed_len_);
  valid_ = true;
}

std::optional<BatchedRefreshView::Item> BatchedRefreshView::next() {
  if (!valid_ || r_.remaining() == 0) return std::nullopt;
  const std::size_t start = packed_len_ - r_.remaining();
  // Delimit the item with the one true ObjectId decoder: the byte range
  // tracks any future encoding change automatically.
  const ObjectId oid = get_oid(r_);
  if (!r_.ok()) return std::nullopt;  // malformed tail: stop iterating
  const std::size_t end = packed_len_ - r_.remaining();
  return Item{oid, packed_base_ + start, end - start};
}

BatchedUpdateView::BatchedUpdateView(const std::uint8_t* data, std::size_t len)
    : r_(data, len) {
  // Envelope prefix: [version u8][type u8][src u32_fixed].
  if (r_.u8() != kWireVersion) return;
  if (static_cast<MsgType>(r_.u8()) != MsgType::kBatchedUpdateReq) return;
  (void)r_.u32_fixed();
  count_ = r_.u64();
  packed_len_ = static_cast<std::size_t>(r_.u64());
  if (!r_.ok() || packed_len_ > r_.remaining()) return;
  packed_base_ = data + (len - r_.remaining());
  // Re-anchor the reader on exactly the packed region, so iteration cannot
  // run into trailing bytes.
  r_ = Reader(packed_base_, packed_len_);
  valid_ = true;
}

std::optional<BatchedUpdateView::Item> BatchedUpdateView::next() {
  if (!valid_ || r_.remaining() == 0) return std::nullopt;
  const std::size_t start = packed_len_ - r_.remaining();
  // Delimit the item with the one true Sighting decoder: the byte range
  // tracks any future layout change automatically.
  const Sighting s = get_sighting(r_);
  if (!r_.ok()) return std::nullopt;  // malformed tail: stop iterating
  const std::size_t end = packed_len_ - r_.remaining();
  return Item{s.oid, packed_base_ + start, end - start};
}

MsgType message_type(const Message& msg) {
  return std::visit([](const auto& m) { return std::decay_t<decltype(m)>::kType; },
                    msg);
}

#define LOCS_WIRE_DEFINE_ENCODE_INTO(T)                             \
  void encode_envelope_into(Buffer& out, NodeId src, const T& msg) { \
    encode_envelope_impl(out, src, msg);                             \
  }
LOCS_WIRE_FOR_EACH_MESSAGE(LOCS_WIRE_DEFINE_ENCODE_INTO)
#undef LOCS_WIRE_DEFINE_ENCODE_INTO

void encode_envelope_into(Buffer& out, NodeId src, const Message& msg) {
  std::visit([&](const auto& m) { encode_envelope_impl(out, src, m); }, msg);
}

Buffer encode_envelope(NodeId src, const Message& msg) {
  Buffer buf;
  encode_envelope_into(buf, src, msg);
  return buf;
}

Status decode_envelope_into(Envelope& env, const std::uint8_t* data,
                            std::size_t len) {
  Reader r(data, len);
  const std::uint8_t version = r.u8();
  if (!r.ok() || (version != kWireVersion && version != kWireVersionPacked)) {
    return Status(StatusCode::kCorruptData, "bad wire version");
  }
  const auto type = static_cast<MsgType>(r.u8());
  env.src = NodeId{r.u32_fixed()};
  switch (type) {
// Reuse the envelope's current alternative when the type matches -- its
// vectors/polygons keep their capacity across messages. decode_msg rejects
// version mismatches (only the packed query results accept version 2).
#define LOCS_WIRE_DECODE_CASE(T)                  \
  case MsgType::k##T:                             \
    if (T* m = std::get_if<T>(&env.msg)) {        \
      decode_msg(r, *m, version);                 \
    } else {                                      \
      decode_msg(r, env.msg.emplace<T>(), version); \
    }                                             \
    break;
    LOCS_WIRE_FOR_EACH_MESSAGE(LOCS_WIRE_DECODE_CASE)
#undef LOCS_WIRE_DECODE_CASE
    default:
      return Status(StatusCode::kCorruptData, "unknown message type");
  }
  if (!r.ok()) {
    return Status(StatusCode::kCorruptData, "truncated message");
  }
  return Status::ok();
}

std::optional<ObjectId> peek_object_key(const std::uint8_t* data, std::size_t len) {
  // Envelope layout: [version u8][type u8][src u32_fixed][payload].
  constexpr std::size_t kPayloadOffset = 6;
  if (len <= kPayloadOffset || data[0] != kWireVersion) return std::nullopt;
  switch (static_cast<MsgType>(data[1])) {
    // Payload leads with a Sighting, whose first field is the ObjectId.
    case MsgType::kRegisterReq:
    case MsgType::kUpdateReq:
    case MsgType::kHandoverReq:
    // Payload leads with the ObjectId itself.
    case MsgType::kCreatePath:
    case MsgType::kRemovePath:
    case MsgType::kUpdateAck:
    case MsgType::kHandoverRes:
    case MsgType::kAgentChanged:
    case MsgType::kPosQueryReq:
    case MsgType::kPosQueryFwd:
    case MsgType::kPosQueryRes:
    case MsgType::kChangeAccReq:
    case MsgType::kNotifyAvailAcc:
    case MsgType::kDeregisterReq:
    case MsgType::kRefreshReq:
      break;
    default:
      return std::nullopt;  // area-keyed / coordinator-bound / unknown
  }
  Reader r(data + kPayloadOffset, len - kPayloadOffset);
  const std::uint64_t oid = r.u64();
  if (!r.ok()) return std::nullopt;
  return ObjectId{oid};
}

Result<Envelope> decode_envelope(const std::uint8_t* data, std::size_t len) {
  Envelope env;
  Status status = decode_envelope_into(env, data, len);
  if (!status.is_ok()) return status;
  return env;
}

}  // namespace locs::wire
