// Binary wire codec: bounds-checked little-endian reader/writer with varint
// compression. All protocol messages (wire/messages.hpp) serialize through
// this, both over real UDP and over the in-process simulated network, so
// serialization cost is always on the measured path (as it was in the
// paper's UDP prototype).
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace locs::wire {

using Buffer = std::vector<std::uint8_t>;

class Writer {
 public:
  explicit Writer(Buffer& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }

  void u32_fixed(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  /// LEB128 varint.
  void u64(std::uint64_t v) {
    while (v >= 0x80) {
      out_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    out_.push_back(static_cast<std::uint8_t>(v));
  }

  void u32(std::uint32_t v) { u64(v); }

  /// ZigZag-encoded signed varint.
  void i64(std::int64_t v) {
    u64((static_cast<std::uint64_t>(v) << 1) ^
        static_cast<std::uint64_t>(v >> 63));
  }

  void f64(double v) { u64_fixed(std::bit_cast<std::uint64_t>(v)); }

  void str(std::string_view s) {
    u64(s.size());
    out_.insert(out_.end(), s.begin(), s.end());
  }

  void boolean(bool b) { u8(b ? 1 : 0); }

  void bytes(const std::uint8_t* data, std::size_t len) {
    out_.insert(out_.end(), data, data + len);
  }

 private:
  void u64_fixed(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  Buffer& out_;
};

/// Bounds-checked reader. On any overrun sets a sticky failure flag; callers
/// check ok() once after decoding a whole message (monadic style keeps the
/// per-field code branch-free).
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t len) : data_(data), len_(len) {}
  explicit Reader(const Buffer& buf) : Reader(buf.data(), buf.size()) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return len_ - pos_; }

  std::uint8_t u8() {
    if (!ensure(1)) return 0;
    return data_[pos_++];
  }

  std::uint32_t u32_fixed() {
    if (!ensure(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (!ensure(1) || shift > 63) {
        ok_ = false;
        return 0;
      }
      const std::uint8_t byte = data_[pos_++];
      v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
    }
    return v;
  }

  std::uint32_t u32() {
    const std::uint64_t v = u64();
    if (v > 0xffffffffULL) ok_ = false;
    return static_cast<std::uint32_t>(v);
  }

  std::int64_t i64() {
    const std::uint64_t z = u64();
    return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }

  double f64() { return std::bit_cast<double>(u64_fixed()); }

  std::string str() {
    const std::uint64_t n = u64();
    if (!ensure(n)) return {};
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  bool boolean() { return u8() != 0; }

  Status status() const {
    return ok_ ? Status::ok()
               : Status(StatusCode::kCorruptData, "wire decode out of bounds");
  }

 private:
  std::uint64_t u64_fixed() {
    if (!ensure(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  bool ensure(std::uint64_t n) {
    if (!ok_ || n > len_ - pos_) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace locs::wire
