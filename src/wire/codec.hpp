// Binary wire codec: bounds-checked little-endian reader/writer with varint
// compression. All protocol messages (wire/messages.hpp) serialize through
// this, both over real UDP and over the in-process simulated network, so
// serialization cost is always on the measured path (as it was in the
// paper's UDP prototype).
//
// Hot-path design (zero-allocation steady state):
//  * Writer is cursor-based: fields are stored through a raw pointer with
//    one bounds check each (never per-byte container bookkeeping), and the
//    buffer size is finalized by flush(). Its reserve() size-hint protocol
//    lets encode_envelope_into() pre-size the buffer per message, so a
//    pooled buffer reaches steady-state capacity after the first few
//    messages and never reallocates again.
//  * Reader is zero-copy: str() and bytes() return views INTO the datagram
//    being decoded. View lifetime contract: a view is valid only while the
//    receive buffer it points into is alive and unmodified -- i.e. for the
//    duration of the transport handler invocation. A decoded message that
//    must outlive the datagram (stored, queued, re-sent later) must take an
//    explicit owning copy of every view field via own().
//  * Varint decode is hardened: encodings longer than 10 bytes, or whose
//    10th byte carries bits beyond 2^64, set the sticky failure flag
//    (never UB, never silent truncation).
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace locs::wire {

using Buffer = std::vector<std::uint8_t>;

/// The explicit "own" step of the view lifetime contract: copies a view
/// returned by Reader::str() into an owning string.
inline std::string own(std::string_view v) { return std::string(v); }

/// Cursor-based writer appending to a Buffer. Fields are written through a
/// raw pointer (one bounds check per field, no per-byte container
/// bookkeeping); the buffer's SIZE is only correct after flush(), which the
/// destructor also runs. Idiom:
///
///   { Writer w(buf); w.u64(...); ... }   // flushed by scope exit, or
///   Writer w(buf); ...; w.flush();       // explicit, then read buf
///
/// Growth doubles the working region, so with a reserve() size hint (or a
/// pooled buffer at working capacity) a message encodes with zero
/// reallocations.
class Writer {
 public:
  explicit Writer(Buffer& out) : out_(out) {
    cur_ = end_ = out_.data() + out_.size();
  }

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  // Only flushes when there is an unflushed tail: after an explicit flush()
  // cur_ == end_, which also makes it safe to move the buffer out (flush
  // first!) and let the Writer die afterwards.
  ~Writer() {
    if (cur_ != end_) flush();
  }

  /// Shrinks the buffer to the bytes actually written. Idempotent; writing
  /// may continue after a flush. Call this before reading the buffer or
  /// moving it elsewhere.
  void flush() {
    out_.resize(static_cast<std::size_t>(cur_ - out_.data()));
    end_ = cur_;
  }

  /// Size-hint protocol: pre-grows the working region by `n` bytes so the
  /// writes that follow never reallocate.
  void reserve(std::size_t n) { ensure(n); }

  void u8(std::uint8_t v) {
    ensure(1);
    *cur_++ = v;
  }

  void u32_fixed(std::uint32_t v) {
    ensure(4);
    store_le(cur_, v);
    cur_ += 4;
  }

  /// LEB128 varint; one capacity check, then raw stores.
  void u64(std::uint64_t v) {
    ensure(10);
    while (v >= 0x80) {
      *cur_++ = static_cast<std::uint8_t>(v) | 0x80;
      v >>= 7;
    }
    *cur_++ = static_cast<std::uint8_t>(v);
  }

  void u32(std::uint32_t v) { u64(v); }

  /// ZigZag-encoded signed varint.
  void i64(std::int64_t v) {
    u64((static_cast<std::uint64_t>(v) << 1) ^
        static_cast<std::uint64_t>(v >> 63));
  }

  void f64(double v) {
    ensure(8);
    store_le(cur_, std::bit_cast<std::uint64_t>(v));
    cur_ += 8;
  }

  void str(std::string_view s) {
    u64(s.size());
    bytes(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  }

  void boolean(bool b) { u8(b ? 1 : 0); }

  void bytes(const std::uint8_t* data, std::size_t len) {
    ensure(len);
    if (len > 0) std::memcpy(cur_, data, len);
    cur_ += len;
  }

 private:
  void ensure(std::size_t n) {
    if (static_cast<std::size_t>(end_ - cur_) < n) grow(n);
  }

  void grow(std::size_t n) {
    const std::size_t used = static_cast<std::size_t>(cur_ - out_.data());
    const std::size_t grown = std::max(used + n, 2 * out_.size());
    out_.resize(std::max<std::size_t>(grown, 64));
    cur_ = out_.data() + used;
    end_ = out_.data() + out_.size();
  }

  template <typename T>
  static void store_le(std::uint8_t* p, T v) {
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(p, &v, sizeof v);
    } else {
      for (std::size_t i = 0; i < sizeof v; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
  }

  Buffer& out_;
  std::uint8_t* cur_;
  std::uint8_t* end_;
};

/// Bounds-checked reader over a datagram. On any overrun or malformed field
/// it sets a sticky failure flag; callers check ok() once after decoding a
/// whole message (monadic style keeps the per-field code branch-free).
///
/// Zero-copy: str() and bytes() return views into the datagram (see the
/// lifetime contract in the header comment; copy via own() to outlive it).
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t len)
      : p_(data), end_(data + len) {}
  explicit Reader(const Buffer& buf) : Reader(buf.data(), buf.size()) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }

  std::uint8_t u8() {
    if (!ensure(1)) return 0;
    return *p_++;
  }

  std::uint32_t u32_fixed() {
    if (!ensure(4)) return 0;
    const std::uint32_t v = load_le<std::uint32_t>(p_);
    p_ += 4;
    return v;
  }

  /// Hardened LEB128 decode: accepts at most 10 bytes, and the 10th byte may
  /// only contribute bit 63 (values 0x00/0x01). Overlong >10-byte encodings
  /// and 2^64 overflow set the sticky failure flag instead of truncating.
  std::uint64_t u64() {
    if (!ok_) return 0;
    const std::uint8_t* p = p_;
    const std::uint8_t* lim = end_ - p > 10 ? p + 10 : end_;
    std::uint64_t v = 0;
    int shift = 0;
    while (p != lim) {
      const std::uint64_t byte = *p++;
      v |= (byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        if (shift == 63 && byte > 1) break;  // bits beyond 2^64: malformed
        p_ = p;
        return v;
      }
      shift += 7;
    }
    ok_ = false;  // truncated, continuation past 10 bytes, or overflow
    return 0;
  }

  std::uint32_t u32() {
    const std::uint64_t v = u64();
    if (v > 0xffffffffULL) ok_ = false;
    return static_cast<std::uint32_t>(v);
  }

  std::int64_t i64() {
    const std::uint64_t z = u64();
    return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }

  double f64() {
    if (!ensure(8)) return 0.0;
    const std::uint64_t v = load_le<std::uint64_t>(p_);
    p_ += 8;
    return std::bit_cast<double>(v);
  }

  /// View into the datagram (length-prefixed); copies nothing. See the
  /// lifetime contract above -- use own() for a copy that outlives it.
  std::string_view str() {
    const std::uint64_t n = u64();
    if (!ensure(n)) return {};
    std::string_view v(reinterpret_cast<const char*>(p_),
                       static_cast<std::size_t>(n));
    p_ += n;
    return v;
  }

  /// View of the next `n` raw bytes; copies nothing (same contract as str).
  std::span<const std::uint8_t> bytes(std::size_t n) {
    if (!ensure(n)) return {};
    std::span<const std::uint8_t> v(p_, n);
    p_ += n;
    return v;
  }

  bool boolean() { return u8() != 0; }

  /// Forces the sticky failure flag. Decoders use this to reject payloads
  /// whose structure (not bounds) is malformed, e.g. an implausible element
  /// count discovered mid-message.
  void fail() { ok_ = false; }

  Status status() const {
    return ok_ ? Status::ok()
               : Status(StatusCode::kCorruptData, "wire decode out of bounds");
  }

 private:
  template <typename T>
  static T load_le(const std::uint8_t* p) {
    if constexpr (std::endian::native == std::endian::little) {
      T v;
      std::memcpy(&v, p, sizeof v);
      return v;
    } else {
      T v = 0;
      for (std::size_t i = 0; i < sizeof v; ++i)
        v |= static_cast<T>(p[i]) << (8 * i);
      return v;
    }
  }

  bool ensure(std::uint64_t n) {
    if (!ok_ || n > static_cast<std::size_t>(end_ - p_)) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const std::uint8_t* p_;
  const std::uint8_t* end_;
  bool ok_ = true;
};

}  // namespace locs::wire
