// 2-D points/vectors on the local tangent plane, in metres.
//
// The location service core operates on planar coordinates (all quantities
// in the paper -- areas, accuracies, distances -- are metres). geo/projection
// maps WGS84 geodetic coordinates onto this plane.
#pragma once

#include <cmath>

namespace locs::geo {

struct Point {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Point operator+(Point a, Point b) { return {a.x + b.x, a.y + b.y}; }
  friend constexpr Point operator-(Point a, Point b) { return {a.x - b.x, a.y - b.y}; }
  friend constexpr Point operator*(Point a, double s) { return {a.x * s, a.y * s}; }
  friend constexpr Point operator*(double s, Point a) { return a * s; }
  friend constexpr Point operator/(Point a, double s) { return {a.x / s, a.y / s}; }
  friend constexpr bool operator==(Point a, Point b) { return a.x == b.x && a.y == b.y; }
  friend constexpr bool operator!=(Point a, Point b) { return !(a == b); }
};

constexpr double dot(Point a, Point b) { return a.x * b.x + a.y * b.y; }

/// z-component of the 3-D cross product; >0 iff b is counter-clockwise of a.
constexpr double cross(Point a, Point b) { return a.x * b.y - a.y * b.x; }

constexpr double norm2(Point a) { return dot(a, a); }

inline double norm(Point a) { return std::sqrt(norm2(a)); }

/// Euclidean distance -- the paper's DISTANCE() on the local plane.
inline double distance(Point a, Point b) { return norm(a - b); }

constexpr double distance2(Point a, Point b) { return norm2(a - b); }

/// Unit vector in the direction of a; returns (0,0) for the zero vector.
inline Point normalized(Point a) {
  const double n = norm(a);
  return n > 0.0 ? a / n : Point{};
}

/// Left-hand perpendicular (rotate +90 degrees).
constexpr Point perp(Point a) { return {-a.y, a.x}; }

}  // namespace locs::geo
