// WGS84 geodetic coordinates and a local tangent-plane projection.
//
// The paper assumes "position information to be based on geographic
// coordinate systems, such as WGS84" (§3). The service core works on a local
// plane in metres; LocalProjection maps between the two (equirectangular
// approximation -- sub-metre error over city-scale service areas, which is
// far below typical sensor accuracy).
#pragma once

#include "geo/point.hpp"

namespace locs::geo {

/// WGS84 latitude/longitude in degrees.
struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
};

/// Mean Earth radius (metres) used by the spherical approximations.
inline constexpr double kEarthRadiusM = 6371008.8;

/// Great-circle (haversine) distance in metres.
double haversine_m(GeoPoint a, GeoPoint b);

/// Equirectangular projection around a fixed origin. x = east, y = north,
/// both in metres.
class LocalProjection {
 public:
  explicit LocalProjection(GeoPoint origin);

  Point to_local(GeoPoint g) const;
  GeoPoint to_geo(Point p) const;
  GeoPoint origin() const { return origin_; }

 private:
  GeoPoint origin_;
  double cos_lat0_;
};

}  // namespace locs::geo
