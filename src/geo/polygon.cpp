#include "geo/polygon.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace locs::geo {

namespace {
constexpr double kEps = 1e-9;

double point_segment_distance2(Point p, Point a, Point b) {
  const Point ab = b - a;
  const double len2 = norm2(ab);
  if (len2 <= 0.0) return distance2(p, a);
  double t = dot(p - a, ab) / len2;
  t = std::clamp(t, 0.0, 1.0);
  return distance2(p, a + ab * t);
}

bool segments_intersect(Point a, Point b, Point c, Point d) {
  const auto orient = [](Point p, Point q, Point r) {
    const double v = cross(q - p, r - p);
    if (v > kEps) return 1;
    if (v < -kEps) return -1;
    return 0;
  };
  const int o1 = orient(a, b, c);
  const int o2 = orient(a, b, d);
  const int o3 = orient(c, d, a);
  const int o4 = orient(c, d, b);
  if (o1 != o2 && o3 != o4) return true;
  const auto on_segment = [](Point p, Point q, Point r) {
    return std::min(p.x, q.x) - kEps <= r.x && r.x <= std::max(p.x, q.x) + kEps &&
           std::min(p.y, q.y) - kEps <= r.y && r.y <= std::max(p.y, q.y) + kEps;
  };
  if (o1 == 0 && on_segment(a, b, c)) return true;
  if (o2 == 0 && on_segment(a, b, d)) return true;
  if (o3 == 0 && on_segment(c, d, a)) return true;
  if (o4 == 0 && on_segment(c, d, b)) return true;
  return false;
}

}  // namespace

double signed_area(const std::vector<Point>& ring) {
  double sum = 0.0;
  const std::size_t n = ring.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Point& p = ring[i];
    const Point& q = ring[(i + 1) % n];
    sum += cross(p, q);
  }
  return sum / 2.0;
}

Polygon::Polygon(std::vector<Point> vertices) : vertices_(std::move(vertices)) {
  if (vertices_.size() >= 3 && signed_area(vertices_) < 0.0) {
    std::reverse(vertices_.begin(), vertices_.end());
  }
  for (const Point& p : vertices_) bbox_.extend(p);
}

Polygon Polygon::from_rect(const Rect& r) {
  return Polygon({{r.min.x, r.min.y},
                  {r.max.x, r.min.y},
                  {r.max.x, r.max.y},
                  {r.min.x, r.max.y}});
}

Polygon Polygon::circumscribed_circle(Point center, double radius, int sides) {
  assert(sides >= 3);
  // Scale so that the polygon's inscribed circle has the requested radius:
  // vertices lie at radius / cos(pi/n).
  const double scale = radius / std::cos(M_PI / sides);
  std::vector<Point> pts;
  pts.reserve(static_cast<std::size_t>(sides));
  for (int i = 0; i < sides; ++i) {
    const double ang = 2.0 * M_PI * i / sides;
    pts.push_back({center.x + scale * std::cos(ang), center.y + scale * std::sin(ang)});
  }
  return Polygon(std::move(pts));
}

double Polygon::area() const {
  if (empty()) return 0.0;
  return std::abs(signed_area(vertices_));
}

bool Polygon::contains(Point p) const {
  if (empty() || !bbox_.contains(p)) return false;
  // Boundary counts as inside.
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (point_segment_distance2(p, vertices_[i], vertices_[(i + 1) % n]) <
        kEps * kEps) {
      return true;
    }
  }
  bool inside = false;
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[j];
    if ((a.y > p.y) != (b.y > p.y)) {
      const double x_cross = (b.x - a.x) * (p.y - a.y) / (b.y - a.y) + a.x;
      if (p.x < x_cross) inside = !inside;
    }
  }
  return inside;
}

bool Polygon::is_convex() const {
  if (empty()) return false;
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % n];
    const Point& c = vertices_[(i + 2) % n];
    if (cross(b - a, c - b) < -kEps) return false;  // CCW => all turns left
  }
  return true;
}

double Polygon::distance_to(Point p) const {
  if (empty()) return 0.0;
  if (contains(p)) return 0.0;
  double best = std::numeric_limits<double>::max();
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0; i < n; ++i) {
    best = std::min(best,
                    point_segment_distance2(p, vertices_[i], vertices_[(i + 1) % n]));
  }
  return std::sqrt(best);
}

bool Polygon::intersects(const Polygon& other) const {
  if (empty() || other.empty()) return false;
  if (!bbox_.intersects(other.bbox_)) return false;
  // Vertex containment either way.
  for (const Point& p : other.vertices_) {
    if (contains(p)) return true;
  }
  for (const Point& p : vertices_) {
    if (other.contains(p)) return true;
  }
  // Edge crossings.
  const std::size_t n = vertices_.size();
  const std::size_t m = other.vertices_.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      if (segments_intersect(vertices_[i], vertices_[(i + 1) % n],
                             other.vertices_[j], other.vertices_[(j + 1) % m])) {
        return true;
      }
    }
  }
  return false;
}

Polygon clip_convex(const Polygon& subject, const Polygon& clip) {
  if (subject.empty() || clip.empty()) return Polygon{};
  assert(clip.is_convex() && "clip_convex requires a convex clip polygon");
  std::vector<Point> output(subject.vertices().begin(), subject.vertices().end());
  const auto& cv = clip.vertices();
  const std::size_t cn = cv.size();
  for (std::size_t ci = 0; ci < cn && !output.empty(); ++ci) {
    const Point a = cv[ci];
    const Point b = cv[(ci + 1) % cn];
    // Inside = left of edge a->b (clip is CCW).
    const auto inside = [&](Point p) { return cross(b - a, p - a) >= -kEps; };
    const auto intersect = [&](Point p, Point q) {
      const Point dir = q - p;
      const double denom = cross(b - a, dir);
      // Parallel edge: fall back to endpoint (degenerate, area impact ~0).
      if (std::abs(denom) < 1e-30) return p;
      const double t = cross(b - a, a - p) / denom;
      return p + dir * t;
    };
    std::vector<Point> input;
    input.swap(output);
    const std::size_t in_n = input.size();
    for (std::size_t i = 0; i < in_n; ++i) {
      const Point cur = input[i];
      const Point prev = input[(i + in_n - 1) % in_n];
      const bool cur_in = inside(cur);
      const bool prev_in = inside(prev);
      if (cur_in) {
        if (!prev_in) output.push_back(intersect(prev, cur));
        output.push_back(cur);
      } else if (prev_in) {
        output.push_back(intersect(prev, cur));
      }
    }
  }
  if (output.size() < 3) return Polygon{};
  return Polygon(std::move(output));
}

double intersection_area(const Polygon& subject, const Polygon& convex_clip) {
  return clip_convex(subject, convex_clip).area();
}

bool convex_contains_polygon(const Polygon& convex_outer, const Polygon& inner) {
  if (inner.empty()) return true;
  if (convex_outer.empty()) return false;
  for (const Point& p : inner.vertices()) {
    if (!convex_outer.contains(p)) return false;
  }
  return true;
}

Polygon convex_hull(std::vector<Point> points) {
  if (points.size() < 3) return Polygon{};
  std::sort(points.begin(), points.end(), [](Point a, Point b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  points.erase(std::unique(points.begin(), points.end()), points.end());
  const std::size_t n = points.size();
  if (n < 3) return Polygon{};
  std::vector<Point> hull(2 * n);
  std::size_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {  // lower
    while (k >= 2 && cross(hull[k - 1] - hull[k - 2], points[i] - hull[k - 2]) <= 0) {
      --k;
    }
    hull[k++] = points[i];
  }
  for (std::size_t i = n - 1, t = k + 1; i-- > 0;) {  // upper
    while (k >= t && cross(hull[k - 1] - hull[k - 2], points[i] - hull[k - 2]) <= 0) {
      --k;
    }
    hull[k++] = points[i];
  }
  hull.resize(k - 1);
  if (hull.size() < 3) return Polygon{};
  return Polygon(std::move(hull));
}

Polygon enlarge(const Polygon& area, double margin) {
  if (area.empty()) return area;
  if (margin <= 0.0) return area;
  Polygon hull = area.is_convex() ? area : convex_hull(area.vertices());
  if (hull.empty()) {
    // Degenerate (collinear) input: fall back to an inflated bounding box.
    return Polygon::from_rect(area.bounding_box().inflated(margin));
  }
  // Mitre offset: shift every edge outward by `margin` along its normal and
  // intersect consecutive offset edges. For a convex CCW polygon the mitre
  // join covers the round (Minkowski) join, so the result is a superset of
  // the true Minkowski sum with a disk of radius `margin`.
  const auto& v = hull.vertices();
  const std::size_t n = v.size();
  std::vector<Point> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Point prev = v[(i + n - 1) % n];
    const Point cur = v[i];
    const Point next = v[(i + 1) % n];
    // Outward normals of the two adjacent edges (CCW => outward = -perp).
    const Point n1 = normalized(perp(cur - prev)) * -1.0;
    const Point n2 = normalized(perp(next - cur)) * -1.0;
    // Offset lines: (prev + m*n1, cur + m*n1) and (cur + m*n2, next + m*n2).
    const Point p1 = prev + n1 * margin;
    const Point d1 = cur - prev;
    const Point p2 = cur + n2 * margin;
    const Point d2 = next - cur;
    const double denom = cross(d1, d2);
    if (std::abs(denom) < 1e-12) {
      // Nearly collinear edges: simple vertex offset.
      out.push_back(cur + n1 * margin);
    } else {
      const double t = cross(p2 - p1, d2) / denom;
      out.push_back(p1 + d1 * t);
    }
  }
  return Polygon(std::move(out));
}

std::vector<Triangle> triangulate(const Polygon& poly) {
  std::vector<Triangle> result;
  if (poly.empty()) return result;
  std::vector<Point> v(poly.vertices().begin(), poly.vertices().end());
  // Ear clipping (O(n^2), fine for the small polygons the service handles).
  const auto is_ear = [&](std::size_t i) {
    const std::size_t n = v.size();
    const Point a = v[(i + n - 1) % n];
    const Point b = v[i];
    const Point c = v[(i + 1) % n];
    if (cross(b - a, c - b) <= kEps) return false;  // reflex or degenerate
    for (std::size_t j = 0; j < n; ++j) {
      if (j == (i + n - 1) % n || j == i || j == (i + 1) % n) continue;
      const Point p = v[j];
      // Strict point-in-triangle.
      const double d1 = cross(b - a, p - a);
      const double d2 = cross(c - b, p - b);
      const double d3 = cross(a - c, p - c);
      if (d1 > -kEps && d2 > -kEps && d3 > -kEps) return false;
    }
    return true;
  };
  std::size_t guard = 0;
  while (v.size() > 3 && guard < 100000) {
    bool clipped = false;
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (is_ear(i)) {
        const std::size_t n = v.size();
        result.push_back({v[(i + n - 1) % n], v[i], v[(i + 1) % n]});
        v.erase(v.begin() + static_cast<std::ptrdiff_t>(i));
        clipped = true;
        break;
      }
    }
    if (!clipped) break;  // numerically degenerate remainder
    ++guard;
  }
  if (v.size() == 3) result.push_back({v[0], v[1], v[2]});
  return result;
}

}  // namespace locs::geo
