// Circles (the paper's circular location areas, Fig 2) and the exact
// circle-polygon intersection area that defines the range-query overlap
// degree: Overlap(a, o) = SIZE(a ∩ ld(o)) / SIZE(ld(o))  (§3.2).
#pragma once

#include "geo/point.hpp"
#include "geo/polygon.hpp"
#include "geo/rect.hpp"

namespace locs::geo {

struct Circle {
  Point center;
  double radius = 0.0;

  double area() const { return M_PI * radius * radius; }
  bool contains(Point p) const { return distance2(p, center) <= radius * radius; }

  bool intersects(const Rect& r) const {
    return r.distance2_to(center) <= radius * radius;
  }
};

/// Exact area of circle ∩ simple polygon, via Green's theorem on the polygon
/// boundary (sums per-edge disk-segment contributions; works for convex and
/// non-convex simple polygons alike).
double circle_polygon_intersection_area(const Circle& circle, const Polygon& poly);

/// The paper's overlap degree in [0, 1]:
///   Overlap(area, location-area) = SIZE(area ∩ disk) / SIZE(disk).
/// A zero-radius location area degenerates to point containment (1 or 0).
double overlap_degree(const Polygon& area, const Circle& location_area);

}  // namespace locs::geo
