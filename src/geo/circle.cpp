#include "geo/circle.hpp"

#include <algorithm>
#include <cmath>

namespace locs::geo {

namespace {

/// Signed area of the circular sector (centered at the origin, radius r)
/// swept from direction a to direction b (shorter way, signed by
/// orientation).
double sector_area(Point a, Point b, double r) {
  const double ang = std::atan2(cross(a, b), dot(a, b));
  return 0.5 * r * r * ang;
}

/// Signed area of disk(0, r) ∩ triangle(0, p, q). Summed over the directed
/// edges of a CCW polygon (with vertices translated so the circle center is
/// the origin) this yields the polygon-disk intersection area.
double edge_contribution(Point p, Point q, double r) {
  const double r2 = r * r;
  const bool p_in = norm2(p) <= r2;
  const bool q_in = norm2(q) <= r2;
  if (p_in && q_in) return cross(p, q) / 2.0;

  // Solve |p + t (q - p)|^2 = r^2 for t.
  const Point d = q - p;
  const double A = dot(d, d);
  if (A <= 0.0) return 0.0;  // degenerate zero-length edge
  const double B = 2.0 * dot(p, d);
  const double C = dot(p, p) - r2;
  const double disc = B * B - 4.0 * A * C;
  if (disc <= 0.0) {
    // Chord line misses the circle entirely: pure sector.
    return sector_area(p, q, r);
  }
  const double sq = std::sqrt(disc);
  const double t1 = (-B - sq) / (2.0 * A);
  const double t2 = (-B + sq) / (2.0 * A);

  if (p_in) {  // exits the disk at t2
    const Point s = p + d * t2;
    return cross(p, s) / 2.0 + sector_area(s, q, r);
  }
  if (q_in) {  // enters the disk at t1
    const Point s = p + d * t1;
    return sector_area(p, s, r) + cross(s, q) / 2.0;
  }
  // Both endpoints outside; the segment may still cut through the disk.
  if (t1 > 0.0 && t2 < 1.0 && t1 < t2) {
    const Point s1 = p + d * t1;
    const Point s2 = p + d * t2;
    return sector_area(p, s1, r) + cross(s1, s2) / 2.0 + sector_area(s2, q, r);
  }
  return sector_area(p, q, r);
}

}  // namespace

double circle_polygon_intersection_area(const Circle& circle, const Polygon& poly) {
  if (poly.empty() || circle.radius <= 0.0) return 0.0;
  // Fast reject / accept on the bounding box.
  if (!circle.intersects(poly.bounding_box())) return 0.0;
  const auto& v = poly.vertices();
  const std::size_t n = v.size();
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const Point p = v[i] - circle.center;
    const Point q = v[(i + 1) % n] - circle.center;
    total += edge_contribution(p, q, circle.radius);
  }
  // CCW polygons give a positive sum; clamp tiny negative round-off.
  return std::max(0.0, std::min(total, circle.area()));
}

double overlap_degree(const Polygon& area, const Circle& location_area) {
  if (area.empty()) return 0.0;
  if (location_area.radius <= 0.0) {
    // Exact position: overlap is 1 if the point is inside, else 0 (§3.2
    // degenerates to point membership).
    return area.contains(location_area.center) ? 1.0 : 0.0;
  }
  const double inter = circle_polygon_intersection_area(location_area, area);
  return std::clamp(inter / location_area.area(), 0.0, 1.0);
}

}  // namespace locs::geo
