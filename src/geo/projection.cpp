#include "geo/projection.hpp"

#include <cmath>

namespace locs::geo {

namespace {
constexpr double kDegToRad = M_PI / 180.0;
constexpr double kRadToDeg = 180.0 / M_PI;
}  // namespace

double haversine_m(GeoPoint a, GeoPoint b) {
  const double lat1 = a.lat_deg * kDegToRad;
  const double lat2 = b.lat_deg * kDegToRad;
  const double dlat = (b.lat_deg - a.lat_deg) * kDegToRad;
  const double dlon = (b.lon_deg - a.lon_deg) * kDegToRad;
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusM * std::asin(std::min(1.0, std::sqrt(h)));
}

LocalProjection::LocalProjection(GeoPoint origin)
    : origin_(origin), cos_lat0_(std::cos(origin.lat_deg * kDegToRad)) {}

Point LocalProjection::to_local(GeoPoint g) const {
  const double dlat = (g.lat_deg - origin_.lat_deg) * kDegToRad;
  const double dlon = (g.lon_deg - origin_.lon_deg) * kDegToRad;
  return {kEarthRadiusM * dlon * cos_lat0_, kEarthRadiusM * dlat};
}

GeoPoint LocalProjection::to_geo(Point p) const {
  const double dlat = p.y / kEarthRadiusM;
  const double dlon = p.x / (kEarthRadiusM * cos_lat0_);
  return {origin_.lat_deg + dlat * kRadToDeg, origin_.lon_deg + dlon * kRadToDeg};
}

}  // namespace locs::geo
