// Axis-aligned rectangles (bounding boxes, grid service areas).
#pragma once

#include <algorithm>
#include <cassert>

#include "geo/point.hpp"

namespace locs::geo {

struct Rect {
  Point min;
  Point max;

  static Rect from_corners(Point a, Point b) {
    return Rect{{std::min(a.x, b.x), std::min(a.y, b.y)},
                {std::max(a.x, b.x), std::max(a.y, b.y)}};
  }

  static Rect from_center(Point c, double half_width, double half_height) {
    return Rect{{c.x - half_width, c.y - half_height},
                {c.x + half_width, c.y + half_height}};
  }

  /// An "empty" rect that extends nothing; grow it with extend().
  static Rect empty() {
    constexpr double inf = 1e300;
    return Rect{{inf, inf}, {-inf, -inf}};
  }

  bool is_empty() const { return min.x > max.x || min.y > max.y; }

  double width() const { return max.x - min.x; }
  double height() const { return max.y - min.y; }
  double area() const { return is_empty() ? 0.0 : width() * height(); }
  Point center() const { return {(min.x + max.x) / 2, (min.y + max.y) / 2}; }

  bool contains(Point p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }

  bool contains(const Rect& r) const {
    return r.min.x >= min.x && r.max.x <= max.x && r.min.y >= min.y &&
           r.max.y <= max.y;
  }

  bool intersects(const Rect& r) const {
    return !(r.min.x > max.x || r.max.x < min.x || r.min.y > max.y ||
             r.max.y < min.y);
  }

  Rect intersection(const Rect& r) const {
    return Rect{{std::max(min.x, r.min.x), std::max(min.y, r.min.y)},
                {std::min(max.x, r.max.x), std::min(max.y, r.max.y)}};
  }

  void extend(Point p) {
    min.x = std::min(min.x, p.x);
    min.y = std::min(min.y, p.y);
    max.x = std::max(max.x, p.x);
    max.y = std::max(max.y, p.y);
  }

  void extend(const Rect& r) {
    if (r.is_empty()) return;
    extend(r.min);
    extend(r.max);
  }

  /// Inflate by `margin` on all sides (the trivial form of the paper's
  /// Enlarge() for axis-aligned areas).
  Rect inflated(double margin) const {
    return Rect{{min.x - margin, min.y - margin}, {max.x + margin, max.y + margin}};
  }

  /// Squared distance from p to the rectangle (0 if inside).
  double distance2_to(Point p) const {
    const double dx = std::max({min.x - p.x, 0.0, p.x - max.x});
    const double dy = std::max({min.y - p.y, 0.0, p.y - max.y});
    return dx * dx + dy * dy;
  }
};

}  // namespace locs::geo
