// Simple polygons -- the paper's geographic areas ("an arbitrary connected
// polygon given by the geographic coordinates of its corners", §3.2).
//
// Conventions: vertices are stored counter-clockwise (normalize() enforces
// this); polygons are simple (non-self-intersecting). Service areas produced
// by the hierarchy builder are convex (rectangles); query areas may be any
// simple polygon.
#pragma once

#include <vector>

#include "geo/point.hpp"
#include "geo/rect.hpp"

namespace locs::geo {

class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Point> vertices);

  static Polygon from_rect(const Rect& r);

  /// Regular n-gon circumscribed about the circle (center, radius): contains
  /// the full disk. Used to turn circular probe areas into polygons.
  static Polygon circumscribed_circle(Point center, double radius, int sides = 32);

  const std::vector<Point>& vertices() const { return vertices_; }
  std::size_t size() const { return vertices_.size(); }

  /// Steals the vertex vector (leaves the polygon empty). Lets decoders
  /// recycle the vector's capacity: take, refill, reconstruct.
  std::vector<Point> take_vertices() {
    bbox_ = Rect::empty();
    return std::move(vertices_);
  }
  bool empty() const { return vertices_.size() < 3; }

  /// Positive area (vertices are kept CCW).
  double area() const;

  /// Axis-aligned bounding box (cached).
  const Rect& bounding_box() const { return bbox_; }

  /// Point-in-polygon by the crossing-number rule; boundary points count as
  /// inside (needed so that sibling service areas tile their parent without
  /// gaps).
  bool contains(Point p) const;

  bool is_convex() const;

  /// Euclidean distance from p to the polygon (0 if inside).
  double distance_to(Point p) const;

  /// True iff the polygon's bounding boxes overlap AND some vertex / edge
  /// evidence of real intersection exists. Exact for convex `other`.
  bool intersects(const Polygon& other) const;

 private:
  std::vector<Point> vertices_;
  Rect bbox_ = Rect::empty();
};

/// Signed area of the polygon ring (positive if CCW).
double signed_area(const std::vector<Point>& ring);

/// Clips `subject` (any simple polygon) against a *convex* `clip` polygon
/// (Sutherland-Hodgman). Returns the clipped ring; may be empty.
Polygon clip_convex(const Polygon& subject, const Polygon& clip);

/// Area of subject ∩ clip, exact for convex `clip` (the shape of all service
/// areas). Used for the `covered` bookkeeping of Algorithm 6-5.
double intersection_area(const Polygon& subject, const Polygon& convex_clip);

/// True iff every point of `inner` lies within convex polygon `outer`
/// (vertex containment suffices for convex outer).
/// Implements the paper's test "Enlarge(area, reqAcc) - c.sa = empty".
bool convex_contains_polygon(const Polygon& convex_outer, const Polygon& inner);

/// Convex hull (Andrew monotone chain), CCW.
Polygon convex_hull(std::vector<Point> points);

/// The paper's Enlarge(area, margin): a polygon guaranteed to contain every
/// point within `margin` of `area` (conservative Minkowski-sum superset,
/// implemented as a mitre offset of the convex hull). Enlarging can only add
/// candidate servers to a range query, never lose one.
Polygon enlarge(const Polygon& area, double margin);

/// Ear-clipping triangulation of a simple polygon (CCW). Each triangle is a
/// (a, b, c) triple. Used by tests (uniform sampling inside polygons) and by
/// the workload generator.
struct Triangle {
  Point a, b, c;
  double area() const { return cross(b - a, c - a) / 2.0; }
};
std::vector<Triangle> triangulate(const Polygon& poly);

}  // namespace locs::geo
