// Two-tier HLR/VLR-style baseline (related work §2: GSM location
// management [14], where "the location information of a mobile phone is
// stored in the Home Location Register it is assigned to and in a Visitor
// Location Register responsible for its current location area").
//
// A flat set of region servers partitions the service area. Every object is
// assigned a *home* server by hashing its id. The region server covering the
// object's position is its *serving* server (VLR analogue) and stores the
// sighting; the home server (HLR analogue) stores a pointer to the serving
// server. Compared with the paper's hierarchy:
//  * a region change always updates the (potentially distant) home server,
//  * position queries for non-local objects always detour via the home,
//  * range queries have no hierarchy to aggregate through -- the entry
//    contacts every overlapping region directly (it knows the flat map).
//
// Used by ablation bench A4. Reuses the same wire messages, stores and
// transports as the hierarchical system so message counts are comparable.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"
#include "geo/polygon.hpp"
#include "net/transport.hpp"
#include "store/sighting_db.hpp"
#include "store/visitor_db.hpp"
#include "util/clock.hpp"
#include "wire/messages.hpp"

namespace locs::baseline {

using core::AccuracyRange;
using core::LocationDescriptor;
using core::ObjectResult;
using core::RegInfo;
using core::Sighting;

/// The flat region map shared by all two-tier servers.
struct RegionMap {
  struct Region {
    NodeId id;
    geo::Polygon area;
  };
  std::vector<Region> regions;

  NodeId region_for(geo::Point p) const {
    for (const Region& r : regions) {
      if (r.area.contains(p)) return r.id;
    }
    return kNoNode;
  }

  NodeId home_for(ObjectId oid) const {
    return regions[std::hash<ObjectId>{}(oid) % regions.size()].id;
  }

  /// Splits `area` into a uniform cols x rows grid of regions with ids
  /// first_id, first_id+1, ...
  static RegionMap grid(const geo::Rect& area, int cols, int rows,
                        std::uint32_t first_id = 1);
};

class TwoTierServer {
 public:
  struct Options {
    double min_supported_acc = 5.0;
    Duration sighting_ttl = seconds(120);
    Duration pending_timeout = seconds(5);
  };

  struct Stats {
    std::uint64_t msgs_handled = 0;
    std::uint64_t msgs_sent = 0;
    std::uint64_t updates_applied = 0;
    std::uint64_t handovers = 0;
    std::uint64_t home_updates = 0;  // pointer writes at the home server
    std::uint64_t pos_queries_served = 0;
    std::uint64_t range_sub_answered = 0;
  };

  TwoTierServer(NodeId self, RegionMap map, net::Transport& net, Clock& clock,
                Options opts);

  void handle(const std::uint8_t* data, std::size_t len);
  void tick(TimePoint now);

  NodeId id() const { return self_; }
  const Stats& stats() const { return stats_; }

 private:
  void send_msg(NodeId to, const wire::Message& msg);
  const geo::Polygon& my_area() const;
  std::uint64_t next_req_id();

  void on_register_req(NodeId src, const wire::RegisterReq& m);
  void on_update_req(NodeId src, const wire::UpdateReq& m);
  void on_handover_req(NodeId src, const wire::HandoverReq& m);
  void on_handover_res(NodeId src, const wire::HandoverRes& m);
  void on_create_path(NodeId src, const wire::CreatePath& m);  // home pointer
  void on_pos_query_req(NodeId src, const wire::PosQueryReq& m);
  void on_pos_query_fwd(NodeId src, const wire::PosQueryFwd& m);
  void on_pos_query_res(NodeId src, const wire::PosQueryRes& m);
  void on_range_query_req(NodeId src, const wire::RangeQueryReq& m);
  void on_range_query_fwd(NodeId src, const wire::RangeQueryFwd& m);
  void on_range_query_sub_res(NodeId src, const wire::RangeQuerySubRes& m);
  void on_deregister_req(NodeId src, const wire::DeregisterReq& m);
  void try_complete_range(std::uint64_t key);

  NodeId self_;
  RegionMap map_;
  net::Transport& net_;
  Clock& clock_;
  Options opts_;
  Stats stats_;

  store::SightingDb sightings_;       // serving-role state
  store::VisitorDb home_pointers_;    // home-role state: oid -> serving region
  std::unordered_map<ObjectId, RegInfo> reg_info_;
  std::uint64_t req_counter_ = 0;

  struct PendingPos {
    NodeId client;
    std::uint64_t client_req_id;
  };
  std::unordered_map<std::uint64_t, PendingPos> pending_pos_;

  struct PendingRange {
    NodeId client;
    std::uint64_t client_req_id;
    double target = 0.0;
    double covered = 0.0;
    std::vector<ObjectResult> results;
    TimePoint deadline = 0;
  };
  std::unordered_map<std::uint64_t, PendingRange> pending_range_;

  struct PendingHandover {
    NodeId object_node;
    ObjectId oid;
  };
  std::unordered_map<std::uint64_t, PendingHandover> pending_handover_;
};

/// Instantiates one TwoTierServer per region and attaches handlers.
class TwoTierDeployment {
 public:
  TwoTierDeployment(net::Transport& net, Clock& clock, RegionMap map,
                    TwoTierServer::Options opts = {});
  /// Detaches every server before they are destroyed.
  ~TwoTierDeployment();

  TwoTierServer& server(NodeId id) { return *servers_.at(id); }
  const RegionMap& map() const { return map_; }
  NodeId entry_for(geo::Point p) const { return map_.region_for(p); }
  void tick_all(TimePoint now);
  TwoTierServer::Stats total_stats() const;

 private:
  net::Transport& net_;
  RegionMap map_;
  std::unordered_map<NodeId, std::unique_ptr<TwoTierServer>> servers_;
};

}  // namespace locs::baseline
