#include "baseline/two_tier.hpp"

#include <algorithm>
#include <cassert>

namespace locs::baseline {

namespace wm = locs::wire;

RegionMap RegionMap::grid(const geo::Rect& area, int cols, int rows,
                          std::uint32_t first_id) {
  RegionMap map;
  const double w = area.width() / cols;
  const double h = area.height() / rows;
  std::uint32_t id = first_id;
  for (int iy = 0; iy < rows; ++iy) {
    for (int ix = 0; ix < cols; ++ix) {
      const geo::Rect r{{area.min.x + w * ix, area.min.y + h * iy},
                        {area.min.x + w * (ix + 1), area.min.y + h * (iy + 1)}};
      map.regions.push_back({NodeId{id++}, geo::Polygon::from_rect(r)});
    }
  }
  return map;
}

TwoTierServer::TwoTierServer(NodeId self, RegionMap map, net::Transport& net,
                             Clock& clock, Options opts)
    : self_(self),
      map_(std::move(map)),
      net_(net),
      clock_(clock),
      opts_(opts),
      sightings_([] { return spatial::make_point_quadtree(); }) {}

const geo::Polygon& TwoTierServer::my_area() const {
  for (const RegionMap::Region& r : map_.regions) {
    if (r.id == self_) return r.area;
  }
  assert(false && "server not in region map");
  static const geo::Polygon empty;
  return empty;
}

void TwoTierServer::send_msg(NodeId to, const wire::Message& msg) {
  if (!to.valid()) return;
  ++stats_.msgs_sent;
  net::send_message(net_, self_, to, msg);
}

std::uint64_t TwoTierServer::next_req_id() {
  return (static_cast<std::uint64_t>(self_.value) << 40) | ++req_counter_;
}

void TwoTierServer::handle(const std::uint8_t* data, std::size_t len) {
  auto decoded = wm::decode_envelope(data, len);
  if (!decoded.ok()) return;
  ++stats_.msgs_handled;
  const NodeId src = decoded.value().src;
  std::visit(
      [&](auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, wm::RegisterReq>) {
          on_register_req(src, m);
        } else if constexpr (std::is_same_v<T, wm::UpdateReq>) {
          on_update_req(src, m);
        } else if constexpr (std::is_same_v<T, wm::HandoverReq>) {
          on_handover_req(src, m);
        } else if constexpr (std::is_same_v<T, wm::HandoverRes>) {
          on_handover_res(src, m);
        } else if constexpr (std::is_same_v<T, wm::CreatePath>) {
          on_create_path(src, m);
        } else if constexpr (std::is_same_v<T, wm::RemovePath>) {
          home_pointers_.remove(m.oid);
        } else if constexpr (std::is_same_v<T, wm::PosQueryReq>) {
          on_pos_query_req(src, m);
        } else if constexpr (std::is_same_v<T, wm::PosQueryFwd>) {
          on_pos_query_fwd(src, m);
        } else if constexpr (std::is_same_v<T, wm::PosQueryRes>) {
          on_pos_query_res(src, m);
        } else if constexpr (std::is_same_v<T, wm::RangeQueryReq>) {
          on_range_query_req(src, m);
        } else if constexpr (std::is_same_v<T, wm::RangeQueryFwd>) {
          on_range_query_fwd(src, m);
        } else if constexpr (std::is_same_v<T, wm::RangeQuerySubRes>) {
          on_range_query_sub_res(src, m);
        } else if constexpr (std::is_same_v<T, wm::DeregisterReq>) {
          on_deregister_req(src, m);
        }
      },
      decoded.value().msg);
}

void TwoTierServer::on_register_req(NodeId src, const wire::RegisterReq& m) {
  (void)src;
  const NodeId serving = map_.region_for(m.s.pos);
  if (serving != self_) {
    if (serving.valid()) {
      send_msg(serving, m);  // one redirect to the right region
    } else {
      send_msg(m.reg_inst, wm::RegisterFailed{self_, -1.0, m.req_id});
    }
    return;
  }
  if (opts_.min_supported_acc > m.acc_range.minimum) {
    send_msg(m.reg_inst, wm::RegisterFailed{self_, opts_.min_supported_acc, m.req_id});
    return;
  }
  const double offered = std::max(opts_.min_supported_acc, m.acc_range.desired);
  reg_info_[m.s.oid] = RegInfo{m.reg_inst, m.acc_range};
  if (sightings_.find(m.s.oid) != nullptr) {
    sightings_.update(m.s, clock_.now() + opts_.sighting_ttl);
    sightings_.set_offered_acc(m.s.oid, offered);
  } else {
    sightings_.insert(m.s, offered, clock_.now() + opts_.sighting_ttl);
  }
  // Install the home pointer (the HLR write).
  const NodeId home = map_.home_for(m.s.oid);
  if (home == self_) {
    ++stats_.home_updates;
    home_pointers_.set_forward(m.s.oid, self_);
  } else {
    send_msg(home, wm::CreatePath{m.s.oid});
  }
  send_msg(m.reg_inst, wm::RegisterRes{self_, offered, m.req_id});
}

void TwoTierServer::on_create_path(NodeId src, const wire::CreatePath& m) {
  ++stats_.home_updates;
  home_pointers_.set_forward(m.oid, src);
}

void TwoTierServer::on_update_req(NodeId src, const wire::UpdateReq& m) {
  const store::SightingDb::Record* rec = sightings_.find(m.s.oid);
  if (rec == nullptr) return;  // not serving this object
  if (my_area().contains(m.s.pos)) {
    const double offered = rec->offered_acc;
    sightings_.update(m.s, clock_.now() + opts_.sighting_ttl);
    ++stats_.updates_applied;
    send_msg(src, wm::UpdateAck{m.s.oid, offered});
    return;
  }
  // Region change: hand over directly to the new serving region (the flat
  // map is global knowledge) -- but the home must always be updated too.
  const NodeId target = map_.region_for(m.s.pos);
  if (!target.valid()) {
    // Left the service area entirely.
    sightings_.remove(m.s.oid);
    const NodeId home = map_.home_for(m.s.oid);
    if (home == self_) {
      home_pointers_.remove(m.s.oid);
    } else {
      send_msg(home, wm::RemovePath{m.s.oid});
    }
    send_msg(src, wm::AgentChanged{m.s.oid, kNoNode, 0.0});
    return;
  }
  ++stats_.handovers;
  wm::HandoverReq req;
  req.s = m.s;
  const auto reg_it = reg_info_.find(m.s.oid);
  req.reg_info = reg_it != reg_info_.end() ? reg_it->second : RegInfo{};
  req.prev_offered_acc = rec->offered_acc;
  req.req_id = next_req_id();
  pending_handover_[req.req_id] = {src, m.s.oid};
  send_msg(target, req);
}

void TwoTierServer::on_handover_req(NodeId src, const wire::HandoverReq& m) {
  const double offered = std::max(opts_.min_supported_acc,
                                  m.reg_info.acc_range.desired);
  reg_info_[m.s.oid] = m.reg_info;
  if (sightings_.find(m.s.oid) != nullptr) {
    sightings_.update(m.s, clock_.now() + opts_.sighting_ttl);
    sightings_.set_offered_acc(m.s.oid, offered);
  } else {
    sightings_.insert(m.s, offered, clock_.now() + opts_.sighting_ttl);
  }
  // HLR write on every region change.
  const NodeId home = map_.home_for(m.s.oid);
  if (home == self_) {
    ++stats_.home_updates;
    home_pointers_.set_forward(m.s.oid, self_);
  } else {
    send_msg(home, wm::CreatePath{m.s.oid});
  }
  send_msg(src, wm::HandoverRes{m.s.oid, self_, offered, m.req_id, std::nullopt});
}

void TwoTierServer::on_handover_res(NodeId src, const wire::HandoverRes& m) {
  (void)src;
  const auto it = pending_handover_.find(m.req_id);
  if (it == pending_handover_.end()) return;
  const PendingHandover pending = it->second;
  pending_handover_.erase(it);
  sightings_.remove(pending.oid);
  reg_info_.erase(pending.oid);
  send_msg(pending.object_node,
           wm::AgentChanged{pending.oid, m.new_agent, m.offered_acc});
}

void TwoTierServer::on_pos_query_req(NodeId src, const wire::PosQueryReq& m) {
  const store::SightingDb::Record* rec = sightings_.find(m.oid);
  if (rec != nullptr) {
    ++stats_.pos_queries_served;
    send_msg(src, wm::PosQueryRes{m.oid, true,
                                  {rec->sighting.pos, rec->offered_acc}, self_,
                                  m.req_id, std::nullopt});
    return;
  }
  // Detour via the home server.
  const std::uint64_t internal = next_req_id();
  pending_pos_[internal] = {src, m.req_id};
  const NodeId home = map_.home_for(m.oid);
  if (home == self_) {
    const store::VisitorRecord* ptr = home_pointers_.find(m.oid);
    if (ptr == nullptr || !ptr->forward_ref.valid()) {
      pending_pos_.erase(internal);
      send_msg(src, wm::PosQueryRes{m.oid, false, {}, kNoNode, m.req_id, std::nullopt});
      return;
    }
    send_msg(ptr->forward_ref, wm::PosQueryFwd{m.oid, self_, internal});
    return;
  }
  send_msg(home, wm::PosQueryFwd{m.oid, self_, internal});
}

void TwoTierServer::on_pos_query_fwd(NodeId src, const wire::PosQueryFwd& m) {
  (void)src;
  const store::SightingDb::Record* rec = sightings_.find(m.oid);
  if (rec != nullptr) {
    send_msg(m.entry, wm::PosQueryRes{m.oid, true,
                                      {rec->sighting.pos, rec->offered_acc}, self_,
                                      m.req_id, std::nullopt});
    return;
  }
  // Acting as home: follow the pointer.
  const store::VisitorRecord* ptr = home_pointers_.find(m.oid);
  if (ptr != nullptr && ptr->forward_ref.valid() && ptr->forward_ref != self_) {
    send_msg(ptr->forward_ref, m);
    return;
  }
  send_msg(m.entry, wm::PosQueryRes{m.oid, false, {}, kNoNode, m.req_id, std::nullopt});
}

void TwoTierServer::on_pos_query_res(NodeId src, const wire::PosQueryRes& m) {
  (void)src;
  const auto it = pending_pos_.find(m.req_id);
  if (it == pending_pos_.end()) return;
  const PendingPos pending = it->second;
  pending_pos_.erase(it);
  send_msg(pending.client, wm::PosQueryRes{m.oid, m.found, m.ld, m.agent,
                                           pending.client_req_id, std::nullopt});
}

void TwoTierServer::on_range_query_req(NodeId src, const wire::RangeQueryReq& m) {
  const geo::Polygon enlarged = geo::enlarge(m.area, std::max(m.req_acc, 0.0));
  const std::uint64_t internal = next_req_id();
  PendingRange pending;
  pending.client = src;
  pending.client_req_id = m.req_id;
  pending.target = enlarged.area();
  pending.deadline = clock_.now() + opts_.pending_timeout;

  double outside = enlarged.area();
  for (const RegionMap::Region& region : map_.regions) {
    const double inter = geo::intersection_area(enlarged, region.area);
    outside -= inter;
    if (inter <= 0.0) continue;
    if (region.id == self_) {
      sightings_.objects_in_area(m.area, m.req_acc, m.req_overlap, pending.results);
      pending.covered += inter;
    }
  }
  pending.covered += std::max(outside, 0.0);
  pending_range_.emplace(internal, std::move(pending));
  for (const RegionMap::Region& region : map_.regions) {
    if (region.id == self_) continue;
    if (geo::intersection_area(enlarged, region.area) > 0.0) {
      send_msg(region.id, wm::RangeQueryFwd{m.area, m.req_acc, m.req_overlap, self_,
                                            internal, true});
    }
  }
  try_complete_range(internal);
}

void TwoTierServer::on_range_query_fwd(NodeId src, const wire::RangeQueryFwd& m) {
  (void)src;
  const geo::Polygon enlarged = geo::enlarge(m.area, std::max(m.req_acc, 0.0));
  wm::RangeQuerySubRes sub;
  sub.req_id = m.req_id;
  sightings_.objects_in_area_emit(
      m.area, m.req_acc, m.req_overlap,
      [&](const core::ObjectResult& r) { sub.results.append(r); });
  sub.covered_size = geo::intersection_area(enlarged, my_area());
  ++stats_.range_sub_answered;
  send_msg(m.entry, sub);
}

void TwoTierServer::on_range_query_sub_res(NodeId src,
                                           const wire::RangeQuerySubRes& m) {
  (void)src;
  const auto it = pending_range_.find(m.req_id);
  if (it == pending_range_.end()) return;
  it->second.covered += m.covered_size;
  wm::PackedResults::Cursor cur = m.results.iter();
  core::ObjectResult r;
  while (cur.next(r)) it->second.results.push_back(r);
  try_complete_range(m.req_id);
}

void TwoTierServer::try_complete_range(std::uint64_t key) {
  const auto it = pending_range_.find(key);
  if (it == pending_range_.end()) return;
  PendingRange& pending = it->second;
  const double eps = std::max(1e-6, 1e-9 * pending.target);
  if (pending.covered < pending.target - eps) return;
  wm::RangeQueryRes res;
  res.req_id = pending.client_req_id;
  res.complete = true;
  res.results.assign(pending.results);
  const NodeId client = pending.client;
  pending_range_.erase(it);
  send_msg(client, res);
}

void TwoTierServer::on_deregister_req(NodeId src, const wire::DeregisterReq& m) {
  (void)src;
  if (sightings_.remove(m.oid)) {
    reg_info_.erase(m.oid);
    const NodeId home = map_.home_for(m.oid);
    if (home == self_) {
      home_pointers_.remove(m.oid);
    } else {
      send_msg(home, wm::RemovePath{m.oid});
    }
  } else {
    home_pointers_.remove(m.oid);
  }
}

void TwoTierServer::tick(TimePoint now) {
  for (const ObjectId oid : sightings_.expire_until(now)) {
    reg_info_.erase(oid);
    const NodeId home = map_.home_for(oid);
    if (home == self_) {
      home_pointers_.remove(oid);
    } else {
      send_msg(home, wm::RemovePath{oid});
    }
  }
  for (auto it = pending_range_.begin(); it != pending_range_.end();) {
    if (it->second.deadline > now) {
      ++it;
      continue;
    }
    wm::RangeQueryRes res;
    res.req_id = it->second.client_req_id;
    res.complete = false;
    res.results.assign(it->second.results);
    send_msg(it->second.client, res);
    it = pending_range_.erase(it);
  }
}

TwoTierDeployment::TwoTierDeployment(net::Transport& net, Clock& clock,
                                     RegionMap map, TwoTierServer::Options opts)
    : net_(net), map_(std::move(map)) {
  for (const RegionMap::Region& region : map_.regions) {
    auto server = std::make_unique<TwoTierServer>(region.id, map_, net, clock, opts);
    TwoTierServer* raw = server.get();
    net.attach(region.id, [raw](const std::uint8_t* data, std::size_t len) {
      raw->handle(data, len);
    });
    servers_.emplace(region.id, std::move(server));
  }
}

TwoTierDeployment::~TwoTierDeployment() {
  for (const auto& [id, server] : servers_) net_.detach(id);
}

void TwoTierDeployment::tick_all(TimePoint now) {
  for (auto& [id, server] : servers_) server->tick(now);
}

TwoTierServer::Stats TwoTierDeployment::total_stats() const {
  TwoTierServer::Stats total;
  for (const auto& [id, server] : servers_) {
    const TwoTierServer::Stats& s = server->stats();
    total.msgs_handled += s.msgs_handled;
    total.msgs_sent += s.msgs_sent;
    total.updates_applied += s.updates_applied;
    total.handovers += s.handovers;
    total.home_updates += s.home_updates;
    total.pos_queries_served += s.pos_queries_served;
    total.range_sub_answered += s.range_sub_answered;
  }
  return total;
}

}  // namespace locs::baseline
