// Spatial index interface over (ObjectId, position) entries.
//
// The paper's leaf servers keep "a spatial index containing the position
// information of the tracked objects ... to find the candidates for a range
// or nearest neighbor query" (§5). The prototype used a Point Quadtree [17];
// an R-Tree [6] is named as an alternative. All implementations share this
// interface so the data-storage component can swap them (ablation A3).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "geo/circle.hpp"
#include "geo/point.hpp"
#include "geo/rect.hpp"
#include "util/ids.hpp"

namespace locs::spatial {

struct Entry {
  ObjectId id;
  geo::Point pos;
};

class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  /// Inserts an entry. Precondition: `id` is not currently present.
  virtual void insert(ObjectId id, geo::Point pos) = 0;

  /// Removes the entry for `id`; returns false if not present.
  virtual bool remove(ObjectId id) = 0;

  /// Moves an existing entry (position update). Default: remove + insert.
  virtual void update(ObjectId id, geo::Point pos) {
    remove(id);
    insert(id, pos);
  }

  /// Appends all entries inside the axis-aligned rectangle to `out`.
  virtual void query_rect(const geo::Rect& rect, std::vector<Entry>& out) const = 0;

  /// Appends all entries within the circle to `out`. Default: bounding-box
  /// query + exact distance filter.
  virtual void query_circle(const geo::Circle& circle, std::vector<Entry>& out) const {
    std::vector<Entry> candidates;
    query_rect(geo::Rect::from_center(circle.center, circle.radius, circle.radius),
               candidates);
    for (const Entry& e : candidates) {
      if (circle.contains(e.pos)) out.push_back(e);
    }
  }

  /// The k entries nearest to `p`, ordered by increasing distance.
  virtual std::vector<Entry> k_nearest(geo::Point p, std::size_t k) const = 0;

  virtual std::size_t size() const = 0;
  virtual void clear() = 0;
  virtual const char* name() const = 0;
};

using IndexFactory = std::function<std::unique_ptr<SpatialIndex>()>;

std::unique_ptr<SpatialIndex> make_point_quadtree();
std::unique_ptr<SpatialIndex> make_rtree();
/// Grid over `bounds` with roughly `target_cells` cells.
std::unique_ptr<SpatialIndex> make_grid_index(const geo::Rect& bounds,
                                              std::size_t target_cells = 4096);
std::unique_ptr<SpatialIndex> make_linear_index();

}  // namespace locs::spatial
