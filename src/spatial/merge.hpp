// Merge helpers for per-shard spatial indexes.
//
// A sharded leaf server (core/sharded_location_server.hpp) keeps one spatial
// index per shard; range and circle queries simply concatenate per-shard
// candidate lists, but k-nearest must re-establish the global distance order
// across partial results. These helpers keep that logic in one place and
// make the order deterministic (ties broken by object id) so sharded and
// unsharded servers return the same winners.
//
// merge_k_nearest is a streaming bounded-k heap: the accumulator never grows
// beyond k entries (a max-heap on (distance, id) whose root is the current
// worst survivor), so merging S shards of k candidates each costs
// O(S*k*log k) and touches O(k) memory -- the old concatenate-sort-truncate
// needed O(S*k) scratch and a full O(S*k*log(S*k)) sort per merge step. The
// winners and their final order are IDENTICAL (same strict weak order, final
// sort of the surviving k).
#pragma once

#include <algorithm>
#include <vector>

#include "geo/point.hpp"

namespace locs::spatial {

/// Merges `part` (one shard's k-nearest candidates) into `acc`, keeping the
/// `k` globally nearest entries ordered by (distance to `p`, id). `T` needs
/// a position accessor `pos_fn(t) -> geo::Point` and an id accessor
/// `id_fn(t)` with a strict weak order (both shard-invariant).
template <typename T, typename PosFn, typename IdFn>
void merge_k_nearest(std::vector<T>& acc, std::vector<T>&& part, geo::Point p,
                     std::size_t k, PosFn pos_fn, IdFn id_fn) {
  // "a precedes b": nearer first, ties by id.
  const auto before = [&](const T& a, const T& b) {
    const double da = geo::distance(pos_fn(a), p);
    const double db = geo::distance(pos_fn(b), p);
    return da != db ? da < db : id_fn(a) < id_fn(b);
  };
  // Max-heap: the WORST survivor sits at the root, ready to be evicted.
  // (acc arrives sorted from the previous merge step; re-heapify is O(k).)
  const auto worse_at_top = [&](const T& a, const T& b) { return before(a, b); };
  std::make_heap(acc.begin(), acc.end(), worse_at_top);
  for (T& cand : part) {
    if (acc.size() < k) {
      acc.push_back(std::move(cand));
      std::push_heap(acc.begin(), acc.end(), worse_at_top);
      continue;
    }
    if (k == 0 || !before(cand, acc.front())) continue;  // not among the k best
    std::pop_heap(acc.begin(), acc.end(), worse_at_top);
    acc.back() = std::move(cand);
    std::push_heap(acc.begin(), acc.end(), worse_at_top);
  }
  std::sort(acc.begin(), acc.end(), before);
}

}  // namespace locs::spatial
