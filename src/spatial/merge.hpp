// Merge helpers for per-shard spatial indexes.
//
// A sharded leaf server (core/sharded_location_server.hpp) keeps one spatial
// index per shard; range and circle queries simply concatenate per-shard
// candidate lists, but k-nearest must re-establish the global distance order
// across partial results. These helpers keep that logic in one place and
// make the order deterministic (ties broken by object id) so sharded and
// unsharded servers return the same winners.
#pragma once

#include <algorithm>
#include <vector>

#include "geo/point.hpp"

namespace locs::spatial {

/// Merges `part` (one shard's k-nearest candidates) into `acc`, keeping the
/// `k` globally nearest entries ordered by (distance to `p`, id). `T` needs
/// a position accessor `pos_fn(t) -> geo::Point` and an id accessor
/// `id_fn(t)` with a strict weak order (both shard-invariant).
template <typename T, typename PosFn, typename IdFn>
void merge_k_nearest(std::vector<T>& acc, std::vector<T>&& part, geo::Point p,
                     std::size_t k, PosFn pos_fn, IdFn id_fn) {
  acc.insert(acc.end(), std::make_move_iterator(part.begin()),
             std::make_move_iterator(part.end()));
  std::sort(acc.begin(), acc.end(), [&](const T& a, const T& b) {
    const double da = geo::distance(pos_fn(a), p);
    const double db = geo::distance(pos_fn(b), p);
    return da != db ? da < db : id_fn(a) < id_fn(b);
  });
  if (acc.size() > k) acc.resize(k);
}

}  // namespace locs::spatial
