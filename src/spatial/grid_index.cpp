// Uniform grid index (ablation baseline A3): buckets over a fixed bounding
// area. Positions outside the configured bounds are clamped into border
// cells, so the index stays correct (if slower) for out-of-bounds points.
#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "spatial/spatial_index.hpp"

namespace locs::spatial {

namespace {

class GridIndex final : public SpatialIndex {
 public:
  GridIndex(const geo::Rect& bounds, std::size_t target_cells) : bounds_(bounds) {
    const double aspect = bounds.width() > 0 && bounds.height() > 0
                              ? bounds.width() / bounds.height()
                              : 1.0;
    const double ny = std::sqrt(static_cast<double>(target_cells) / std::max(aspect, 1e-9));
    rows_ = std::max<std::int64_t>(1, static_cast<std::int64_t>(std::lround(ny)));
    cols_ = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::lround(static_cast<double>(target_cells) /
                                                 static_cast<double>(rows_))));
  }

  void insert(ObjectId id, geo::Point pos) override {
    assert(where_.find(id) == where_.end());
    const std::int64_t key = cell_key(pos);
    cells_[key].push_back({id, pos});
    where_[id] = key;
    ++size_;
  }

  bool remove(ObjectId id) override {
    auto it = where_.find(id);
    if (it == where_.end()) return false;
    auto& bucket = cells_[it->second];
    const auto entry_it = std::find_if(bucket.begin(), bucket.end(),
                                       [&](const Entry& e) { return e.id == id; });
    assert(entry_it != bucket.end());
    bucket.erase(entry_it);
    where_.erase(it);
    --size_;
    return true;
  }

  void query_rect(const geo::Rect& rect, std::vector<Entry>& out) const override {
    const auto [c0, r0] = cell_of(rect.min);
    const auto [c1, r1] = cell_of(rect.max);
    for (std::int64_t r = r0; r <= r1; ++r) {
      for (std::int64_t c = c0; c <= c1; ++c) {
        const auto it = cells_.find(r * cols_ + c);
        if (it == cells_.end()) continue;
        for (const Entry& e : it->second) {
          if (rect.contains(e.pos)) out.push_back(e);
        }
      }
    }
  }

  std::vector<Entry> k_nearest(geo::Point p, std::size_t k) const override {
    // Expanding ring of cells around p; stop once the k-th best distance is
    // covered by the scanned radius.
    std::vector<Entry> best;
    const double cell_w = bounds_.width() / static_cast<double>(cols_);
    const double cell_h = bounds_.height() / static_cast<double>(rows_);
    const double step = std::max(std::min(cell_w, cell_h), 1e-6);
    double radius = step;
    const double max_radius =
        std::max(bounds_.width(), bounds_.height()) * 2.0 + step;
    while (radius <= max_radius) {
      std::vector<Entry> found;
      query_rect(geo::Rect::from_center(p, radius, radius), found);
      if (found.size() >= k || radius >= max_radius) {
        std::sort(found.begin(), found.end(), [&](const Entry& a, const Entry& b) {
          return geo::distance2(p, a.pos) < geo::distance2(p, b.pos);
        });
        // The square of half-width `radius` is only guaranteed to contain
        // every point within distance `radius`.
        if (found.size() >= k &&
            geo::distance(p, found[std::min(found.size(), k) - 1].pos) <= radius) {
          found.resize(std::min(found.size(), k));
          return found;
        }
        if (radius >= max_radius) {
          found.resize(std::min(found.size(), k));
          return found;
        }
      }
      radius *= 2.0;
    }
    return best;
  }

  std::size_t size() const override { return size_; }

  void clear() override {
    cells_.clear();
    where_.clear();
    size_ = 0;
  }

  const char* name() const override { return "grid"; }

 private:
  std::pair<std::int64_t, std::int64_t> cell_of(geo::Point p) const {
    const double fx = (p.x - bounds_.min.x) / std::max(bounds_.width(), 1e-9);
    const double fy = (p.y - bounds_.min.y) / std::max(bounds_.height(), 1e-9);
    const std::int64_t c = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(fx * static_cast<double>(cols_)), 0, cols_ - 1);
    const std::int64_t r = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(fy * static_cast<double>(rows_)), 0, rows_ - 1);
    return {c, r};
  }

  std::int64_t cell_key(geo::Point p) const {
    const auto [c, r] = cell_of(p);
    return r * cols_ + c;
  }

  geo::Rect bounds_;
  std::int64_t cols_ = 1;
  std::int64_t rows_ = 1;
  std::unordered_map<std::int64_t, std::vector<Entry>> cells_;
  std::unordered_map<ObjectId, std::int64_t> where_;
  std::size_t size_ = 0;
};

class LinearIndex final : public SpatialIndex {
 public:
  void insert(ObjectId id, geo::Point pos) override {
    assert(where_.find(id) == where_.end());
    where_[id] = entries_.size();
    entries_.push_back({id, pos});
  }

  bool remove(ObjectId id) override {
    auto it = where_.find(id);
    if (it == where_.end()) return false;
    const std::size_t idx = it->second;
    where_.erase(it);
    if (idx + 1 != entries_.size()) {
      entries_[idx] = entries_.back();
      where_[entries_[idx].id] = idx;
    }
    entries_.pop_back();
    return true;
  }

  void update(ObjectId id, geo::Point pos) override {
    const auto it = where_.find(id);
    assert(it != where_.end());
    entries_[it->second].pos = pos;
  }

  void query_rect(const geo::Rect& rect, std::vector<Entry>& out) const override {
    for (const Entry& e : entries_) {
      if (rect.contains(e.pos)) out.push_back(e);
    }
  }

  std::vector<Entry> k_nearest(geo::Point p, std::size_t k) const override {
    std::vector<Entry> sorted = entries_;
    std::sort(sorted.begin(), sorted.end(), [&](const Entry& a, const Entry& b) {
      return geo::distance2(p, a.pos) < geo::distance2(p, b.pos);
    });
    sorted.resize(std::min(sorted.size(), k));
    return sorted;
  }

  std::size_t size() const override { return entries_.size(); }

  void clear() override {
    entries_.clear();
    where_.clear();
  }

  const char* name() const override { return "linear"; }

 private:
  std::vector<Entry> entries_;
  std::unordered_map<ObjectId, std::size_t> where_;
};

}  // namespace

std::unique_ptr<SpatialIndex> make_grid_index(const geo::Rect& bounds,
                                              std::size_t target_cells) {
  return std::make_unique<GridIndex>(bounds, target_cells);
}

std::unique_ptr<SpatialIndex> make_linear_index() {
  return std::make_unique<LinearIndex>();
}

}  // namespace locs::spatial
