// R-Tree with quadratic split (Guttman [6]) -- the paper's named alternative
// spatial index (§5). Point entries only (sighting positions).
#include <algorithm>
#include <cassert>
#include <limits>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "spatial/spatial_index.hpp"

namespace locs::spatial {

namespace {

constexpr std::size_t kMaxEntries = 16;
constexpr std::size_t kMinEntries = 6;

struct RNode;

struct LeafSlot {
  ObjectId id;
  geo::Point pos;
};

struct RNode {
  bool leaf = true;
  RNode* parent = nullptr;
  geo::Rect box = geo::Rect::empty();
  std::vector<std::unique_ptr<RNode>> children;  // if !leaf
  std::vector<LeafSlot> slots;                   // if leaf

  std::size_t count() const { return leaf ? slots.size() : children.size(); }
};

double enlargement(const geo::Rect& box, geo::Point p) {
  geo::Rect grown = box;
  grown.extend(p);
  return grown.area() - box.area();
}

geo::Rect slot_box(const LeafSlot& s) { return geo::Rect{s.pos, s.pos}; }

class RTree final : public SpatialIndex {
 public:
  RTree() : root_(std::make_unique<RNode>()) {}

  void insert(ObjectId id, geo::Point pos) override {
    assert(leaf_of_.find(id) == leaf_of_.end());
    insert_slot({id, pos});
    ++size_;
  }

  bool remove(ObjectId id) override {
    auto it = leaf_of_.find(id);
    if (it == leaf_of_.end()) return false;
    RNode* leaf = it->second;
    auto& slots = leaf->slots;
    const auto slot_it = std::find_if(slots.begin(), slots.end(),
                                      [&](const LeafSlot& s) { return s.id == id; });
    assert(slot_it != slots.end());
    slots.erase(slot_it);
    leaf_of_.erase(it);
    --size_;
    condense(leaf);
    return true;
  }

  void query_rect(const geo::Rect& rect, std::vector<Entry>& out) const override {
    query_rec(root_.get(), rect, out);
  }

  std::vector<Entry> k_nearest(geo::Point p, std::size_t k) const override {
    struct Item {
      double dist2;
      const RNode* node;       // subtree, or
      const LeafSlot* slot;    // candidate point
    };
    const auto cmp = [](const Item& a, const Item& b) { return a.dist2 > b.dist2; };
    std::priority_queue<Item, std::vector<Item>, decltype(cmp)> heap(cmp);
    heap.push({0.0, root_.get(), nullptr});
    std::vector<Entry> result;
    while (!heap.empty() && result.size() < k) {
      const Item item = heap.top();
      heap.pop();
      if (item.slot != nullptr) {
        result.push_back({item.slot->id, item.slot->pos});
        continue;
      }
      const RNode* n = item.node;
      if (n->leaf) {
        for (const LeafSlot& s : n->slots) {
          heap.push({geo::distance2(p, s.pos), nullptr, &s});
        }
      } else {
        for (const auto& c : n->children) {
          heap.push({c->box.distance2_to(p), c.get(), nullptr});
        }
      }
    }
    return result;
  }

  std::size_t size() const override { return size_; }

  void clear() override {
    root_ = std::make_unique<RNode>();
    leaf_of_.clear();
    size_ = 0;
  }

  const char* name() const override { return "rtree"; }

 private:
  void insert_slot(LeafSlot slot) {
    RNode* leaf = choose_leaf(root_.get(), slot.pos);
    leaf->slots.push_back(slot);
    leaf_of_[slot.id] = leaf;
    leaf->box.extend(slot.pos);
    if (leaf->slots.size() > kMaxEntries) {
      split_leaf(leaf);
    } else {
      adjust_boxes_upward(leaf->parent);
    }
  }

  RNode* choose_leaf(RNode* n, geo::Point p) {
    while (!n->leaf) {
      RNode* best = nullptr;
      double best_enl = std::numeric_limits<double>::max();
      double best_area = std::numeric_limits<double>::max();
      for (const auto& c : n->children) {
        const double enl = enlargement(c->box, p);
        const double area = c->box.area();
        if (enl < best_enl || (enl == best_enl && area < best_area)) {
          best = c.get();
          best_enl = enl;
          best_area = area;
        }
      }
      n = best;
    }
    return n;
  }

  void recompute_box(RNode* n) {
    n->box = geo::Rect::empty();
    if (n->leaf) {
      for (const LeafSlot& s : n->slots) n->box.extend(s.pos);
    } else {
      for (const auto& c : n->children) n->box.extend(c->box);
    }
  }

  void adjust_boxes_upward(RNode* n) {
    for (; n != nullptr; n = n->parent) recompute_box(n);
  }

  /// Guttman's quadratic split applied to an overfull leaf.
  void split_leaf(RNode* leaf) {
    std::vector<LeafSlot> all;
    all.swap(leaf->slots);
    // Pick seeds: the pair wasting the most area.
    std::size_t seed_a = 0, seed_b = 1;
    double worst = -1.0;
    for (std::size_t i = 0; i < all.size(); ++i) {
      for (std::size_t j = i + 1; j < all.size(); ++j) {
        geo::Rect combined = slot_box(all[i]);
        combined.extend(all[j].pos);
        const double waste = combined.area();
        if (waste > worst) {
          worst = waste;
          seed_a = i;
          seed_b = j;
        }
      }
    }
    auto sibling = std::make_unique<RNode>();
    sibling->leaf = true;
    RNode* group_a = leaf;
    RNode* group_b = sibling.get();
    geo::Rect box_a = slot_box(all[seed_a]);
    geo::Rect box_b = slot_box(all[seed_b]);
    group_a->slots.push_back(all[seed_a]);
    group_b->slots.push_back(all[seed_b]);
    for (std::size_t i = 0; i < all.size(); ++i) {
      if (i == seed_a || i == seed_b) continue;
      const LeafSlot& s = all[i];
      const std::size_t remaining = all.size() - i;
      // Force assignment if a group must take all remaining to reach kMin.
      if (group_a->slots.size() + remaining <= kMinEntries) {
        group_a->slots.push_back(s);
        box_a.extend(s.pos);
        continue;
      }
      if (group_b->slots.size() + remaining <= kMinEntries) {
        group_b->slots.push_back(s);
        box_b.extend(s.pos);
        continue;
      }
      geo::Rect grown_a = box_a;
      grown_a.extend(s.pos);
      geo::Rect grown_b = box_b;
      grown_b.extend(s.pos);
      const double d_a = grown_a.area() - box_a.area();
      const double d_b = grown_b.area() - box_b.area();
      if (d_a < d_b || (d_a == d_b && group_a->slots.size() < group_b->slots.size())) {
        group_a->slots.push_back(s);
        box_a = grown_a;
      } else {
        group_b->slots.push_back(s);
        box_b = grown_b;
      }
    }
    group_a->box = box_a;
    group_b->box = box_b;
    for (const LeafSlot& s : group_b->slots) leaf_of_[s.id] = group_b;
    install_sibling(leaf, std::move(sibling));
  }

  /// Hooks a freshly split-off sibling next to `node`, splitting internal
  /// nodes (by middle-of-sorted-centers, a simpler but adequate policy)
  /// upward as needed.
  void install_sibling(RNode* node, std::unique_ptr<RNode> sibling) {
    RNode* parent = node->parent;
    if (parent == nullptr) {
      // node was the root: grow the tree.
      auto new_root = std::make_unique<RNode>();
      new_root->leaf = false;
      auto old_root = std::move(root_);
      old_root->parent = new_root.get();
      sibling->parent = new_root.get();
      new_root->children.push_back(std::move(old_root));
      new_root->children.push_back(std::move(sibling));
      recompute_box(new_root.get());
      root_ = std::move(new_root);
      return;
    }
    sibling->parent = parent;
    parent->children.push_back(std::move(sibling));
    recompute_box(parent);
    if (parent->children.size() > kMaxEntries) {
      split_internal(parent);
    } else {
      adjust_boxes_upward(parent->parent);
    }
  }

  void split_internal(RNode* node) {
    // Sort children by box center x (or y, whichever axis is wider) and cut
    // in half -- a linear split that keeps the code tractable.
    auto& kids = node->children;
    const bool by_x = node->box.width() >= node->box.height();
    std::sort(kids.begin(), kids.end(), [&](const auto& a, const auto& b) {
      return by_x ? a->box.center().x < b->box.center().x
                  : a->box.center().y < b->box.center().y;
    });
    auto sibling = std::make_unique<RNode>();
    sibling->leaf = false;
    const std::size_t half = kids.size() / 2;
    for (std::size_t i = half; i < kids.size(); ++i) {
      kids[i]->parent = sibling.get();
      sibling->children.push_back(std::move(kids[i]));
    }
    kids.resize(half);
    recompute_box(node);
    recompute_box(sibling.get());
    install_sibling(node, std::move(sibling));
  }

  void condense(RNode* leaf) {
    // Collect orphaned slots from underfull nodes on the path to the root.
    std::vector<LeafSlot> orphans;
    RNode* n = leaf;
    while (n->parent != nullptr) {
      RNode* parent = n->parent;
      if (n->count() < kMinEntries) {
        collect_slots(n, orphans);
        auto& siblings = parent->children;
        const auto it = std::find_if(siblings.begin(), siblings.end(),
                                     [&](const auto& c) { return c.get() == n; });
        assert(it != siblings.end());
        siblings.erase(it);
      } else {
        recompute_box(n);
      }
      n = parent;
    }
    recompute_box(root_.get());
    // Shrink a root that lost all but one child.
    while (!root_->leaf && root_->children.size() == 1) {
      std::unique_ptr<RNode> child = std::move(root_->children.front());
      child->parent = nullptr;
      root_ = std::move(child);
    }
    if (!root_->leaf && root_->children.empty()) {
      root_ = std::make_unique<RNode>();
    }
    for (const LeafSlot& s : orphans) {
      leaf_of_.erase(s.id);  // will be re-added by insert_slot
    }
    for (const LeafSlot& s : orphans) {
      insert_slot(s);
    }
  }

  void collect_slots(RNode* n, std::vector<LeafSlot>& out) {
    if (n->leaf) {
      out.insert(out.end(), n->slots.begin(), n->slots.end());
      return;
    }
    for (const auto& c : n->children) collect_slots(c.get(), out);
  }

  void query_rec(const RNode* n, const geo::Rect& rect, std::vector<Entry>& out) const {
    if (n->count() > 0 && !rect.intersects(n->box)) return;
    if (n->leaf) {
      for (const LeafSlot& s : n->slots) {
        if (rect.contains(s.pos)) out.push_back({s.id, s.pos});
      }
      return;
    }
    for (const auto& c : n->children) query_rec(c.get(), rect, out);
  }

  std::unique_ptr<RNode> root_;
  std::unordered_map<ObjectId, RNode*> leaf_of_;
  std::size_t size_ = 0;
};

}  // namespace

std::unique_ptr<SpatialIndex> make_rtree() { return std::make_unique<RTree>(); }

}  // namespace locs::spatial
