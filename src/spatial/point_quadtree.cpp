// Point Quadtree (Samet [17]) -- the spatial index used by the paper's
// prototype (§7.1). Every node stores one data point which splits its region
// into four quadrants.
//
// Deletion in point quadtrees is notoriously awkward (Samet §2.3.1); like
// many production systems we use tombstones plus amortized rebuilding, which
// keeps removal O(1) and preserves query complexity.
#include <algorithm>
#include <cassert>
#include <limits>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "spatial/spatial_index.hpp"
#include "util/rng.hpp"

namespace locs::spatial {

namespace {

class PointQuadtree final : public SpatialIndex {
 public:
  void insert(ObjectId id, geo::Point pos) override {
    assert(by_id_.find(id) == by_id_.end());
    Node* node = insert_node(id, pos);
    by_id_.emplace(id, node);
    ++alive_;
  }

  bool remove(ObjectId id) override {
    auto it = by_id_.find(id);
    if (it == by_id_.end()) return false;
    it->second->alive = false;
    by_id_.erase(it);
    --alive_;
    ++dead_;
    maybe_rebuild();
    return true;
  }

  /// Position update without the remove+insert hash churn of the default.
  /// One root walk finds where `pos` would insert; if that terminates at the
  /// object's own (childless) node, the point moves in place -- every
  /// ancestor's quadrant relation still holds. Otherwise the old node is
  /// tombstoned and a recycled node attaches at the walk's end, reusing the
  /// existing by_id_ slot. Steady-state updates allocate nothing: the node
  /// free list is restocked wholesale by the amortized rebuilds.
  void update(ObjectId id, geo::Point pos) override {
    const auto it = by_id_.find(id);
    if (it == by_id_.end()) {
      insert(id, pos);
      return;
    }
    Node* node = it->second;
    Node* cur = root_.get();
    for (;;) {
      const int q = quadrant_of(cur->pos, pos);
      Node* next = cur->child[q].get();
      if (next == nullptr) {
        if (cur == node && is_leaf(node)) {
          node->pos = pos;
          return;
        }
        node->alive = false;
        ++dead_;
        cur->child[q] = make_node(id, pos);
        it->second = cur->child[q].get();
        maybe_rebuild();
        return;
      }
      cur = next;
    }
  }

  void query_rect(const geo::Rect& rect, std::vector<Entry>& out) const override {
    query_rect_rec(root_.get(), rect, out);
  }

  std::vector<Entry> k_nearest(geo::Point p, std::size_t k) const override {
    // Best-first search over (node, enclosing-region) pairs.
    struct Item {
      double dist2;
      bool is_point;  // true: a candidate data point; false: a subtree
      const Node* node;
      geo::Rect region;
    };
    const auto cmp = [](const Item& a, const Item& b) { return a.dist2 > b.dist2; };
    std::priority_queue<Item, std::vector<Item>, decltype(cmp)> heap(cmp);

    constexpr double inf = 1e300;
    const geo::Rect whole{{-inf, -inf}, {inf, inf}};
    if (root_) heap.push({0.0, false, root_.get(), whole});

    std::vector<Entry> result;
    while (!heap.empty() && result.size() < k) {
      const Item item = heap.top();
      heap.pop();
      if (item.is_point) {
        result.push_back({item.node->id, item.node->pos});
        continue;
      }
      const Node* n = item.node;
      if (n->alive) {
        heap.push({geo::distance2(p, n->pos), true, n, item.region});
      }
      for (int q = 0; q < 4; ++q) {
        if (!n->child[q]) continue;
        const geo::Rect sub = quadrant_region(item.region, n->pos, q);
        heap.push({sub.distance2_to(p), false, n->child[q].get(), sub});
      }
    }
    return result;
  }

  std::size_t size() const override { return alive_; }

  void clear() override {
    root_.reset();
    by_id_.clear();
    free_.clear();
    alive_ = 0;
    dead_ = 0;
  }

  const char* name() const override { return "point_quadtree"; }

 private:
  struct Node {
    ObjectId id;
    geo::Point pos;
    bool alive = true;
    std::unique_ptr<Node> child[4];
  };

  // Quadrants: 0 = SW, 1 = SE, 2 = NW, 3 = NE relative to the node's point.
  static int quadrant_of(geo::Point split, geo::Point p) {
    const int east = p.x >= split.x ? 1 : 0;
    const int north = p.y >= split.y ? 2 : 0;
    return east + north;
  }

  static geo::Rect quadrant_region(const geo::Rect& region, geo::Point split, int q) {
    geo::Rect r = region;
    if (q & 1) {
      r.min.x = std::max(r.min.x, split.x);
    } else {
      r.max.x = std::min(r.max.x, split.x);
    }
    if (q & 2) {
      r.min.y = std::max(r.min.y, split.y);
    } else {
      r.max.y = std::min(r.max.y, split.y);
    }
    return r;
  }

  static bool is_leaf(const Node* n) {
    return !n->child[0] && !n->child[1] && !n->child[2] && !n->child[3];
  }

  std::unique_ptr<Node> make_node(ObjectId id, geo::Point pos) {
    std::unique_ptr<Node> node;
    if (!free_.empty()) {
      node = std::move(free_.back());
      free_.pop_back();
      node->alive = true;
      for (auto& c : node->child) c.reset();
    } else {
      node = std::make_unique<Node>();
    }
    node->id = id;
    node->pos = pos;
    return node;
  }

  /// Moves an entire subtree into the free list (children first).
  void harvest(std::unique_ptr<Node> n) {
    if (!n) return;
    for (auto& c : n->child) harvest(std::move(c));
    free_.push_back(std::move(n));
  }

  Node* insert_node(ObjectId id, geo::Point pos) {
    if (!root_) {
      root_ = make_node(id, pos);
      return root_.get();
    }
    Node* cur = root_.get();
    for (;;) {
      const int q = quadrant_of(cur->pos, pos);
      if (!cur->child[q]) {
        cur->child[q] = make_node(id, pos);
        return cur->child[q].get();
      }
      cur = cur->child[q].get();
    }
  }

  void query_rect_rec(const Node* n, const geo::Rect& rect,
                      std::vector<Entry>& out) const {
    if (!n) return;
    if (n->alive && rect.contains(n->pos)) out.push_back({n->id, n->pos});
    // Prune quadrants that cannot intersect the query rectangle.
    const bool west = rect.min.x < n->pos.x;
    const bool east = rect.max.x >= n->pos.x;
    const bool south = rect.min.y < n->pos.y;
    const bool north = rect.max.y >= n->pos.y;
    if (west && south) query_rect_rec(n->child[0].get(), rect, out);
    if (east && south) query_rect_rec(n->child[1].get(), rect, out);
    if (west && north) query_rect_rec(n->child[2].get(), rect, out);
    if (east && north) query_rect_rec(n->child[3].get(), rect, out);
  }

  void maybe_rebuild() {
    if (dead_ < 64 || dead_ < alive_) return;
    std::vector<Entry> entries;
    entries.reserve(alive_);
    collect(root_.get(), entries);
    // Shuffle before reinsertion: point quadtree balance depends on
    // insertion order; a deterministic shuffle restores expected O(log n).
    Rng rng(0x9d7f3c2b1ULL + entries.size());
    std::shuffle(entries.begin(), entries.end(), rng);
    // Recycle every node (live and tombstoned): the free list this leaves
    // behind feeds make_node until the next rebuild, making steady-state
    // updates allocation-free.
    harvest(std::move(root_));
    by_id_.clear();
    dead_ = 0;
    alive_ = 0;
    for (const Entry& e : entries) {
      insert(e.id, e.pos);
    }
  }

  void collect(const Node* n, std::vector<Entry>& out) const {
    if (!n) return;
    if (n->alive) out.push_back({n->id, n->pos});
    for (const auto& c : n->child) collect(c.get(), out);
  }

  std::unique_ptr<Node> root_;
  std::vector<std::unique_ptr<Node>> free_;
  std::unordered_map<ObjectId, Node*> by_id_;
  std::size_t alive_ = 0;
  std::size_t dead_ = 0;
};

}  // namespace

std::unique_ptr<SpatialIndex> make_point_quadtree() {
  return std::make_unique<PointQuadtree>();
}

}  // namespace locs::spatial
