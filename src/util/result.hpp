// Minimal Status / Result<T> error handling, used instead of exceptions on
// hot message-processing paths (decode errors, I/O failures).
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace locs {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kCorruptData,
  kIoError,
  kFailedPrecondition,
  kTimeout,
  kUnavailable,
};

const char* status_code_name(StatusCode code);

class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status{}; }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const {
    if (is_ok()) return "OK";
    return std::string(status_code_name(code_)) + ": " + message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Value-or-status. `value()` asserts on error paths; callers must check
/// `ok()` first (enforced in debug builds).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.is_ok() && "Result(Status) requires an error status");
  }
  Result(StatusCode code, std::string message)
      : status_(code, std::move(message)) {}

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace locs
