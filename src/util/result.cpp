#include "util/result.hpp"

namespace locs {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kCorruptData: return "CORRUPT_DATA";
    case StatusCode::kIoError: return "IO_ERROR";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kTimeout: return "TIMEOUT";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

}  // namespace locs
