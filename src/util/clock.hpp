// Time handling. All timestamps are microseconds since an arbitrary epoch.
//
// The paper assumes synchronized clocks for sighting timestamps (§3.1,
// footnote: "achieved by using the very accurate time provided by a GPS
// receiver"); a shared Clock instance models exactly that. ManualClock
// drives the deterministic network simulation in virtual time,
// SystemClock is used with the real UDP transport.
#pragma once

#include <chrono>
#include <cstdint>

namespace locs {

/// Microseconds since epoch.
using TimePoint = std::int64_t;
/// Microseconds.
using Duration = std::int64_t;

constexpr Duration microseconds(std::int64_t us) { return us; }
constexpr Duration milliseconds(std::int64_t ms) { return ms * 1000; }
constexpr Duration seconds(std::int64_t s) { return s * 1000000; }
constexpr double to_seconds(Duration d) { return static_cast<double>(d) / 1e6; }
constexpr double to_millis(Duration d) { return static_cast<double>(d) / 1e3; }

class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimePoint now() const = 0;
};

/// Virtual time, advanced explicitly (by SimNetwork or tests).
class ManualClock : public Clock {
 public:
  explicit ManualClock(TimePoint start = 0) : now_(start) {}

  TimePoint now() const override { return now_; }
  void advance(Duration d) { now_ += d; }
  void set(TimePoint t) { now_ = t; }

 private:
  TimePoint now_;
};

/// Wall clock (steady, monotonic).
class SystemClock : public Clock {
 public:
  TimePoint now() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

}  // namespace locs
