// Deterministic random number generation for simulations and property tests.
//
// xoshiro256** seeded via SplitMix64 -- fast, high quality, and fully
// reproducible across platforms (unlike std::default_random_engine).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace locs {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 to fill the xoshiro state from a single seed.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t next_below(std::uint64_t n) {
    // Lemire's unbiased bounded generation.
    std::uint64_t x = next_u64();
    unsigned __int128 m = static_cast<unsigned __int128>(x) * n;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < n) {
      std::uint64_t t = -n % n;
      while (l < t) {
        x = next_u64();
        m = static_cast<unsigned __int128>(x) * n;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  bool bernoulli(double p) { return next_double() < p; }

  /// Standard normal via Marsaglia polar method.
  double normal(double mean = 0.0, double stddev = 1.0) {
    if (have_spare_) {
      have_spare_ = false;
      return mean + stddev * spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    have_spare_ = true;
    return mean + stddev * u * factor;
  }

  /// Exponential with given rate (lambda).
  double exponential(double rate) {
    double u;
    do {
      u = next_double();
    } while (u <= 0.0);
    return -std::log(u) / rate;
  }

  // UniformRandomBitGenerator interface for std::shuffle et al.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next_u64(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace locs
