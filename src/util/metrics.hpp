// Latency histograms and throughput counters used by the benchmark harness
// and the load generator (paper §7: response time + overall throughput).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "util/clock.hpp"

namespace locs {

/// Records latency samples (microseconds) and reports mean / percentiles.
/// Stores raw samples; intended for bench runs of up to a few million ops.
class LatencyHistogram {
 public:
  void record(Duration us) { samples_.push_back(us); }

  std::size_t count() const { return samples_.size(); }

  double mean_us() const {
    if (samples_.empty()) return 0.0;
    double sum = 0.0;
    for (Duration s : samples_) sum += static_cast<double>(s);
    return sum / static_cast<double>(samples_.size());
  }

  /// q in [0,1]; e.g. 0.5 for the median, 0.99 for p99.
  Duration percentile_us(double q) const {
    if (samples_.empty()) return 0;
    std::vector<Duration> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto idx = static_cast<std::size_t>(pos);
    return sorted[std::min(idx, sorted.size() - 1)];
  }

  void clear() { samples_.clear(); }

 private:
  std::vector<Duration> samples_;
};

/// Operations-per-second over an explicitly delimited interval.
class ThroughputMeter {
 public:
  void start(TimePoint now) { start_ = now; ops_ = 0; }
  void add(std::uint64_t n = 1) { ops_ += n; }
  std::uint64_t ops() const { return ops_; }

  double ops_per_sec(TimePoint now) const {
    const double elapsed = to_seconds(now - start_);
    return elapsed > 0 ? static_cast<double>(ops_) / elapsed : 0.0;
  }

 private:
  TimePoint start_ = 0;
  std::uint64_t ops_ = 0;
};

}  // namespace locs
