// CRC-32 (IEEE 802.3 polynomial), used to checksum persistent-log records.
#pragma once

#include <cstddef>
#include <cstdint>

namespace locs {

/// Computes CRC-32 over `len` bytes, continuing from `seed` (pass the result
/// of a previous call to checksum data in chunks).
std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed = 0);

}  // namespace locs
