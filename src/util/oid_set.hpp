// Open-addressing ObjectId set with reusable capacity.
//
// The query merge's dedup-on-emit needs a membership test per merged result,
// twice per merge (size pass + copy pass). A node-based std::unordered_set
// heap-allocates one node per insert -- two allocations per merged result,
// which alone would dominate the zero-materialization merge path. OidSet is
// a flat linear-probing table: clear() keeps the slot array, insert()
// allocates only when the table grows, so a scratch instance reaches its
// working size once and then dedups merge after merge allocation-free.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/ids.hpp"

namespace locs::util {

class OidSet {
 public:
  /// Inserts `id`; returns true if it was not present before.
  bool insert(ObjectId id) {
    if (id.value == kEmptySlot) {
      // The sentinel value cannot live in the table; track it out of band.
      const bool added = !has_sentinel_;
      has_sentinel_ = true;
      return added;
    }
    // Grow at ~70% load (and on first use).
    if ((size_ + 1) * 10 > slots_.size() * 7) grow();
    std::size_t i = slot_of(id.value);
    while (slots_[i] != kEmptySlot) {
      if (slots_[i] == id.value) return false;
      i = (i + 1) & (slots_.size() - 1);
    }
    slots_[i] = id.value;
    ++size_;
    return true;
  }

  bool contains(ObjectId id) const {
    if (id.value == kEmptySlot) return has_sentinel_;
    if (slots_.empty()) return false;
    std::size_t i = slot_of(id.value);
    while (slots_[i] != kEmptySlot) {
      if (slots_[i] == id.value) return true;
      i = (i + 1) & (slots_.size() - 1);
    }
    return false;
  }

  /// Empties the set, KEEPING the slot array (the reuse contract).
  void clear() {
    std::fill(slots_.begin(), slots_.end(), kEmptySlot);
    size_ = 0;
    has_sentinel_ = false;
  }

  std::size_t size() const { return size_ + (has_sentinel_ ? 1 : 0); }
  std::size_t capacity() const { return slots_.size(); }

 private:
  static constexpr std::uint64_t kEmptySlot = 0;  // ObjectId{0}: see insert

  std::size_t slot_of(std::uint64_t v) const {
    // splitmix64 finalizer: sequential ids spread uniformly.
    std::uint64_t x = v + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x) & (slots_.size() - 1);
  }

  void grow() {
    const std::size_t next_cap = slots_.empty() ? 64 : slots_.size() * 2;
    std::vector<std::uint64_t> old = std::move(slots_);
    slots_.assign(next_cap, kEmptySlot);
    size_ = 0;
    for (const std::uint64_t v : old) {
      if (v == kEmptySlot) continue;
      std::size_t i = slot_of(v);
      while (slots_[i] != kEmptySlot) i = (i + 1) & (slots_.size() - 1);
      slots_[i] = v;
      ++size_;
    }
  }

  std::vector<std::uint64_t> slots_;
  std::size_t size_ = 0;
  bool has_sentinel_ = false;
};

/// Companion flat map (ObjectId -> V) with the same reuse contract: clear()
/// keeps the slot array, operator[] allocates only on growth. The NN merge
/// uses this for its candidate state -- a node-based std::unordered_map
/// pays one heap node per candidate streamed off a probe sub-result.
/// Iteration (for_each) runs in slot order; callers needing a canonical
/// order must impose a total order themselves (the NN paths do: winner and
/// nearObjSet are selected by (distance, id)).
template <typename V>
class OidMap {
 public:
  V& operator[](ObjectId id) {
    if (id.value == kEmptySlot) {
      has_sentinel_ = true;
      return sentinel_value_;
    }
    if ((size_ + 1) * 10 > slots_.size() * 7) grow();
    std::size_t i = slot_of(id.value);
    while (slots_[i].key != kEmptySlot) {
      if (slots_[i].key == id.value) return slots_[i].value;
      i = (i + 1) & (slots_.size() - 1);
    }
    slots_[i].key = id.value;
    slots_[i].value = V{};
    ++size_;
    return slots_[i].value;
  }

  void clear() {
    for (auto& slot : slots_) slot.key = kEmptySlot;
    size_ = 0;
    has_sentinel_ = false;
  }

  bool empty() const { return size_ == 0 && !has_sentinel_; }
  std::size_t size() const { return size_ + (has_sentinel_ ? 1 : 0); }

  /// Invokes fn(ObjectId, const V&) per entry, in slot order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (has_sentinel_) fn(ObjectId{kEmptySlot}, sentinel_value_);
    for (const auto& slot : slots_) {
      if (slot.key != kEmptySlot) fn(ObjectId{slot.key}, slot.value);
    }
  }

 private:
  static constexpr std::uint64_t kEmptySlot = 0;

  struct Slot {
    std::uint64_t key = kEmptySlot;
    V value{};
  };

  std::size_t slot_of(std::uint64_t v) const {
    std::uint64_t x = v + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x) & (slots_.size() - 1);
  }

  void grow() {
    const std::size_t next_cap = slots_.empty() ? 64 : slots_.size() * 2;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(next_cap, Slot{});
    size_ = 0;
    for (Slot& slot : old) {
      if (slot.key == kEmptySlot) continue;
      std::size_t i = slot_of(slot.key);
      while (slots_[i].key != kEmptySlot) i = (i + 1) & (slots_.size() - 1);
      slots_[i] = std::move(slot);
      ++size_;
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  bool has_sentinel_ = false;
  V sentinel_value_{};
};

}  // namespace locs::util
