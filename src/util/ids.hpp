// Strong identifier types used across the location service.
//
// The paper's namespace OId (tracked-object identifiers) maps to ObjectId;
// location servers and clients are both network nodes and are addressed by
// NodeId on the transport layer.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace locs {

/// Identifier of a tracked object, unique in the location service's
/// namespace OId (paper §3.1, sighting record field s.oId).
struct ObjectId {
  std::uint64_t value = 0;

  constexpr ObjectId() = default;
  constexpr explicit ObjectId(std::uint64_t v) : value(v) {}

  friend constexpr bool operator==(ObjectId a, ObjectId b) { return a.value == b.value; }
  friend constexpr bool operator!=(ObjectId a, ObjectId b) { return a.value != b.value; }
  friend constexpr bool operator<(ObjectId a, ObjectId b) { return a.value < b.value; }
};

/// Address of a node (location server, tracked object or client) on the
/// transport layer. NodeId 0 is reserved as "invalid / undefined" -- the
/// paper's epsilon, e.g. c.parent of the root server.
struct NodeId {
  std::uint32_t value = 0;

  constexpr NodeId() = default;
  constexpr explicit NodeId(std::uint32_t v) : value(v) {}

  constexpr bool valid() const { return value != 0; }

  friend constexpr bool operator==(NodeId a, NodeId b) { return a.value == b.value; }
  friend constexpr bool operator!=(NodeId a, NodeId b) { return a.value != b.value; }
  friend constexpr bool operator<(NodeId a, NodeId b) { return a.value < b.value; }
};

/// The paper's epsilon: "For the root server s.parent is undefined".
inline constexpr NodeId kNoNode{};

inline std::string to_string(ObjectId id) { return "o" + std::to_string(id.value); }
inline std::string to_string(NodeId id) { return "n" + std::to_string(id.value); }

}  // namespace locs

template <>
struct std::hash<locs::ObjectId> {
  std::size_t operator()(locs::ObjectId id) const noexcept {
    // SplitMix64 finalizer: ObjectIds are often sequential, spread them.
    std::uint64_t x = id.value + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};

template <>
struct std::hash<locs::NodeId> {
  std::size_t operator()(locs::NodeId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
