#include "net/uring_backend.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <vector>

// The backend needs <linux/io_uring.h> plus the io_uring syscall numbers;
// when either is missing (non-Linux, ancient glibc, or the LOCS_IO_URING
// CMake knob is OFF so LOCS_HAVE_IO_URING is undefined) the whole engine
// compiles down to "unsupported" stubs and UdpNetwork keeps the sendmmsg
// path unconditionally.
#if defined(LOCS_HAVE_IO_URING) && defined(__linux__)
#if __has_include(<linux/io_uring.h>)
#include <linux/io_uring.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <unistd.h>
#if defined(__NR_io_uring_setup) && defined(__NR_io_uring_enter) && \
    defined(__NR_io_uring_register)
#define LOCS_URING_IMPL 1
#endif
#endif
#endif

namespace locs::net {

namespace {

bool env_disabled() {
  // Read on every call (not cached): tests set/unset LOCS_NO_IO_URING
  // in-process to exercise the graceful-fallback path.
  const char* v = std::getenv("LOCS_NO_IO_URING");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

}  // namespace

#ifdef LOCS_URING_IMPL

namespace {

constexpr std::uint32_t kNil = 0xffffffffu;

int sys_uring_setup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(syscall(__NR_io_uring_setup, entries, p));
}

int sys_uring_enter(int ring_fd, unsigned to_submit, unsigned min_complete,
                    unsigned flags) {
  return static_cast<int>(syscall(__NR_io_uring_enter, ring_fd, to_submit,
                                  min_complete, flags, nullptr, 0));
}

int sys_uring_register(int ring_fd, unsigned op, void* arg, unsigned nr) {
  return static_cast<int>(syscall(__NR_io_uring_register, ring_fd, op, arg, nr));
}

// Capability probe, run once per process: can a ring be set up at all, does
// the register-probe confirm IORING_OP_SENDMSG, and does the kernel accept
// an SQPOLL ring from this (possibly unprivileged) process?
// 0 = unusable, 1 = plain rings, 2 = plain + SQPOLL.
int probe_tier() {
  static const int tier = [] {
    io_uring_params p{};
    const int fd = sys_uring_setup(8, &p);
    if (fd < 0) return 0;
    // io_uring_probe ends in a flexible array member; give it room for 64
    // per-opcode entries in a flat byte buffer.
    alignas(io_uring_probe) std::uint8_t
        pb_raw[sizeof(io_uring_probe) + 64 * sizeof(io_uring_probe_op)] = {};
    auto* pb = reinterpret_cast<io_uring_probe*>(pb_raw);
    const bool sendmsg_ok =
        sys_uring_register(fd, IORING_REGISTER_PROBE, pb, 64) == 0 &&
        IORING_OP_SENDMSG < pb->ops_len &&
        (pb->ops[IORING_OP_SENDMSG].flags & IO_URING_OP_SUPPORTED) != 0;
    ::close(fd);
    if (!sendmsg_ok) return 0;
    io_uring_params sp{};
    sp.flags = IORING_SETUP_SQPOLL;
    sp.sq_thread_idle = 50;
    const int sfd = sys_uring_setup(8, &sp);
    if (sfd < 0) return 1;
    ::close(sfd);
    return 2;
  }();
  return tier;
}

inline unsigned load_acquire(const unsigned* p) {
  return __atomic_load_n(p, __ATOMIC_ACQUIRE);
}

inline void store_release(unsigned* p, unsigned v) {
  __atomic_store_n(p, v, __ATOMIC_RELEASE);
}

}  // namespace

struct UringBackend::Impl {
  // One in-flight datagram: the SQE's msghdr/iovecs/fragment-header scratch
  // must outlive the SQE (under SQPOLL the kernel thread reads the SQE --
  // and the msghdr it points at -- asynchronously), so everything lives
  // here until the CQE is reaped.
  // Room for the fragment wire header (kFragHeader = 10 today) with slack.
  static constexpr std::size_t kHeaderScratch = 16;

  struct Entry {
    std::uint8_t header[kHeaderScratch];
    std::size_t header_len = 0;
    sockaddr_in dst{};
    bool has_dst = false;
    iovec iov[2];
    msghdr mh{};
    std::uint32_t park = kNil;
    std::uint16_t retries = 0;
    std::uint32_t next_free = kNil;
  };

  // A parked message buffer: recycled into its BufferPool when the last
  // fragment referencing it completes (or is dropped).
  struct Parked {
    PooledBuffer buf;
    std::uint32_t refs = 0;
    std::uint32_t next_free = kNil;
  };

  int ring_fd = -1;
  int sock_fd = -1;
  bool sqpoll = false;

  void* sq_ring = nullptr;
  std::size_t sq_ring_sz = 0;
  void* cq_ring = nullptr;  // == sq_ring under IORING_FEAT_SINGLE_MMAP
  std::size_t cq_ring_sz = 0;
  io_uring_sqe* sqes = nullptr;
  std::size_t sqes_sz = 0;

  unsigned* sq_head = nullptr;  // kernel-written consumer index
  unsigned* sq_tail = nullptr;  // our producer index
  unsigned sq_mask = 0;
  unsigned sq_entries = 0;
  unsigned* sq_flags = nullptr;  // IORING_SQ_NEED_WAKEUP lives here
  unsigned* sq_array = nullptr;
  unsigned* cq_head = nullptr;  // our consumer index
  unsigned* cq_tail = nullptr;  // kernel-written producer index
  unsigned cq_mask = 0;
  io_uring_cqe* cqes = nullptr;

  Entry entries[kInflight];
  std::uint32_t entry_free = kNil;
  std::size_t inflight = 0;
  std::vector<Parked> parked;
  std::uint32_t parked_free = kNil;
  unsigned pending_sqes = 0;  // written but not yet io_uring_enter'ed
  int retry_polls = 64;
  int retry_timeout_ms = 5;
  UringTxStats st;

  ~Impl() {
    if (ring_fd >= 0) {
      // Never unmap rings with datagrams still in flight: the SQPOLL thread
      // (or deferred op) may touch entry msghdrs until its CQE lands.
      drain();
      ::close(ring_fd);
      ring_fd = -1;
    }
    if (sqes != nullptr) ::munmap(sqes, sqes_sz);
    if (cq_ring != nullptr && cq_ring != sq_ring) ::munmap(cq_ring, cq_ring_sz);
    if (sq_ring != nullptr) ::munmap(sq_ring, sq_ring_sz);
  }

  bool setup(int fd, bool want_sqpoll) {
    sock_fd = fd;
    io_uring_params p{};
    if (want_sqpoll) {
      p.flags = IORING_SETUP_SQPOLL;
      // Short idle: on small hosts a perpetually spinning poll thread
      // steals the very core the reactors run on. 50ms keeps a saturated
      // sender syscall-free while letting an idle one sleep quickly.
      p.sq_thread_idle = 50;
    }
    ring_fd = sys_uring_setup(static_cast<unsigned>(kInflight), &p);
    if (ring_fd < 0 && want_sqpoll) {
      // SQPOLL refused (permissions, old kernel): degrade to a plain ring.
      p = io_uring_params{};
      ring_fd = sys_uring_setup(static_cast<unsigned>(kInflight), &p);
    }
    if (ring_fd < 0) return false;
    sqpoll = (p.flags & IORING_SETUP_SQPOLL) != 0;

    sq_ring_sz = p.sq_off.array + p.sq_entries * sizeof(unsigned);
    cq_ring_sz = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
    if ((p.features & IORING_FEAT_SINGLE_MMAP) != 0) {
      sq_ring_sz = cq_ring_sz = std::max(sq_ring_sz, cq_ring_sz);
    }
    sq_ring = ::mmap(nullptr, sq_ring_sz, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_SQ_RING);
    if (sq_ring == MAP_FAILED) {
      sq_ring = nullptr;
      return false;
    }
    if ((p.features & IORING_FEAT_SINGLE_MMAP) != 0) {
      cq_ring = sq_ring;
    } else {
      cq_ring = ::mmap(nullptr, cq_ring_sz, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_CQ_RING);
      if (cq_ring == MAP_FAILED) {
        cq_ring = nullptr;
        return false;
      }
    }
    sqes_sz = p.sq_entries * sizeof(io_uring_sqe);
    sqes = static_cast<io_uring_sqe*>(::mmap(nullptr, sqes_sz,
                                             PROT_READ | PROT_WRITE,
                                             MAP_SHARED | MAP_POPULATE,
                                             ring_fd, IORING_OFF_SQES));
    if (sqes == MAP_FAILED) {
      sqes = nullptr;
      return false;
    }

    auto* sq = static_cast<std::uint8_t*>(sq_ring);
    sq_head = reinterpret_cast<unsigned*>(sq + p.sq_off.head);
    sq_tail = reinterpret_cast<unsigned*>(sq + p.sq_off.tail);
    sq_mask = *reinterpret_cast<unsigned*>(sq + p.sq_off.ring_mask);
    sq_entries = *reinterpret_cast<unsigned*>(sq + p.sq_off.ring_entries);
    sq_flags = reinterpret_cast<unsigned*>(sq + p.sq_off.flags);
    sq_array = reinterpret_cast<unsigned*>(sq + p.sq_off.array);
    auto* cq = static_cast<std::uint8_t*>(cq_ring);
    cq_head = reinterpret_cast<unsigned*>(cq + p.cq_off.head);
    cq_tail = reinterpret_cast<unsigned*>(cq + p.cq_off.tail);
    cq_mask = *reinterpret_cast<unsigned*>(cq + p.cq_off.ring_mask);
    cqes = reinterpret_cast<io_uring_cqe*>(cq + p.cq_off.cqes);

    for (std::uint32_t i = 0; i < kInflight; ++i) {
      entries[i].next_free = entry_free;
      entry_free = i;
    }
    return true;
  }

  // -- parked-buffer slab ----------------------------------------------

  std::uint32_t park(PooledBuffer buf, std::uint32_t refs) {
    std::uint32_t idx;
    if (parked_free != kNil) {
      idx = parked_free;
      parked_free = parked[idx].next_free;
    } else {
      idx = static_cast<std::uint32_t>(parked.size());
      parked.emplace_back();
    }
    parked[idx].buf = std::move(buf);
    parked[idx].refs = refs;
    parked[idx].next_free = kNil;
    return idx;
  }

  void unpark_ref(std::uint32_t idx) {
    if (idx == kNil) return;
    Parked& p = parked[idx];
    if (--p.refs > 0) return;
    p.buf.reset();  // recycle into the owning BufferPool (or plain free)
    p.next_free = parked_free;
    parked_free = idx;
  }

  // -- submission ------------------------------------------------------

  // Makes the kernel see everything written to the SQ: one io_uring_enter
  // for the accumulated batch on a plain ring; on SQPOLL, only an
  // ENTER_SQ_WAKEUP when the poll thread has gone to sleep.
  void kick() {
    if (sqpoll) {
      pending_sqes = 0;
      if ((load_acquire(sq_flags) & IORING_SQ_NEED_WAKEUP) != 0) {
        sys_uring_enter(ring_fd, 0, 0, IORING_ENTER_SQ_WAKEUP);
        ++st.enter_syscalls;
        ++st.sqpoll_wakeups;
      }
      return;
    }
    while (pending_sqes > 0) {
      const int r = sys_uring_enter(ring_fd, pending_sqes, 0, 0);
      ++st.enter_syscalls;
      if (r < 0) {
        if (errno == EINTR) continue;
        break;  // catastrophic; the drain guard bounds any fallout
      }
      if (r == 0) break;
      pending_sqes -= static_cast<unsigned>(std::min<int>(r, pending_sqes));
    }
  }

  void push_sqe(std::uint32_t entry_idx, bool link) {
    unsigned tail = *sq_tail;
    while (tail - load_acquire(sq_head) >= sq_entries) {
      // SQ full: force the kernel to consume. (Can only happen when
      // resubmits pile on top of a full in-flight table.)
      kick();
      if (sqpoll) {
        pollfd pfd{ring_fd, POLLIN, 0};
        ::poll(&pfd, 1, 1);
      }
    }
    const unsigned slot = tail & sq_mask;
    io_uring_sqe* sqe = &sqes[slot];
    std::memset(sqe, 0, sizeof *sqe);
    sqe->opcode = IORING_OP_SENDMSG;
    sqe->fd = sock_fd;
    sqe->addr = reinterpret_cast<std::uint64_t>(&entries[entry_idx].mh);
    // MSG_DONTWAIT keeps completion inline and prompt -- backpressure is
    // surfaced as a CQE -EAGAIN (handled under the retry budget), never as
    // an op parked indefinitely in kernel worker context.
    sqe->msg_flags = MSG_DONTWAIT;
    sqe->user_data = entry_idx;
    // Fragment chains submit in order; a chain silently breaks across an
    // enter boundary (SQ-full above), which only costs ordering -- the
    // receive side reassembles by fragment index, not arrival order.
    sqe->flags = link ? IOSQE_IO_LINK : 0;
    sq_array[slot] = slot;
    store_release(sq_tail, tail + 1);
    ++pending_sqes;
    ++st.sqes_submitted;
  }

  std::uint32_t alloc_entry() {
    if (entry_free == kNil) {
      // In-flight table exhausted: everything queued is already submitted
      // (or about to be), so wait for completions under the same bounded
      // budget the sendmmsg path gives POLLOUT.
      kick();
      for (int polls = 0; entry_free == kNil && polls < retry_polls; ++polls) {
        reap_pass();
        if (entry_free != kNil) break;
        ++st.eagain_retries;
        pollfd pfd{ring_fd, POLLIN, 0};
        ::poll(&pfd, 1, retry_timeout_ms);
        reap_pass();
      }
      if (entry_free == kNil) return kNil;  // budget exhausted: caller drops
    }
    const std::uint32_t idx = entry_free;
    entry_free = entries[idx].next_free;
    entries[idx].next_free = kNil;
    return idx;
  }

  void free_entry(std::uint32_t idx) {
    unpark_ref(entries[idx].park);
    entries[idx].park = kNil;
    entries[idx].next_free = entry_free;
    entry_free = idx;
    --inflight;
  }

  void submit(const SendDesc* descs, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      const SendDesc& d = descs[i];
      const std::uint32_t idx = alloc_entry();
      if (idx == kNil) {
        // Same contract as the sendmmsg tail drop: counted, never silent.
        ++st.dropped;
        unpark_ref(d.park);
        continue;
      }
      Entry& e = entries[idx];
      e.header_len = std::min(d.header_len, sizeof e.header);
      std::memcpy(e.header, d.header, e.header_len);
      e.iov[0] = {e.header, e.header_len};
      std::size_t iov_count = 1;
      if (d.payload_len > 0) {
        e.iov[1] = {const_cast<std::uint8_t*>(d.payload), d.payload_len};
        iov_count = 2;
      }
      std::memset(&e.mh, 0, sizeof e.mh);
      e.has_dst = d.dst != nullptr;
      if (e.has_dst) {
        e.dst = *d.dst;
        e.mh.msg_name = &e.dst;
        e.mh.msg_namelen = sizeof e.dst;
      }
      e.mh.msg_iov = e.iov;
      e.mh.msg_iovlen = iov_count;
      e.park = d.park;
      e.retries = 0;
      ++inflight;
      push_sqe(idx, d.link_next);
    }
    kick();
    reap_pass();
  }

  // -- completion ------------------------------------------------------

  bool cq_ready() const { return *cq_head != load_acquire(cq_tail); }

  void reap_pass() {
    // Resubmit lists are collected first so one pass performs at most ONE
    // POLLOUT wait however many datagrams the full socket bounced -- the
    // sendmmsg path, likewise, polls once per flush attempt, not per slot.
    std::uint32_t again[kInflight];
    std::size_t n_again = 0;
    std::uint32_t canceled[kInflight];
    std::size_t n_canceled = 0;
    unsigned head = *cq_head;
    const unsigned tail = load_acquire(cq_tail);
    while (head != tail) {
      const io_uring_cqe& cqe = cqes[head & cq_mask];
      const auto idx = static_cast<std::uint32_t>(cqe.user_data);
      const int res = cqe.res;
      ++head;
      ++st.cqes_reaped;
      if (res >= 0) {
        ++st.datagrams_sent;
        free_entry(idx);
      } else if (res == -EAGAIN || res == -EWOULDBLOCK || res == -ENOBUFS) {
        if (entries[idx].retries >= retry_polls) {
          ++st.dropped;  // backpressure budget exhausted
          free_entry(idx);
        } else {
          again[n_again++] = idx;
        }
      } else if (res == -ECANCELED) {
        // Linked tail canceled because its chain head failed; resubmit
        // unlinked (once -- the retry stands on its own budget after).
        canceled[n_canceled++] = idx;
      } else {
        ++st.dropped;  // hard error: skip exactly this datagram
        free_entry(idx);
      }
    }
    store_release(cq_head, head);
    if (n_again > 0) {
      ++st.eagain_retries;
      pollfd pfd{sock_fd, POLLOUT, 0};
      ::poll(&pfd, 1, retry_timeout_ms);
      for (std::size_t i = 0; i < n_again; ++i) {
        ++entries[again[i]].retries;
        push_sqe(again[i], false);
      }
    }
    for (std::size_t i = 0; i < n_canceled; ++i) push_sqe(canceled[i], false);
    if (n_again + n_canceled > 0) kick();
  }

  void drain() {
    kick();
    // Bounded teardown wait: with MSG_DONTWAIT ops this converges in a few
    // passes (each entry either completes, resubmits under its budget, or
    // drops). The guard only matters if the kernel wedges; then we leave
    // the stragglers parked -- their buffers and entries stay alive until
    // the ring fd is closed, so nothing the kernel may still read is freed.
    for (int rounds = 0; inflight > 0 && rounds < 2000; ++rounds) {
      reap_pass();
      if (inflight == 0) break;
      kick();
      if (!cq_ready()) {
        pollfd pfd{ring_fd, POLLIN, 0};
        ::poll(&pfd, 1, 5);
      }
    }
  }
};

bool UringBackend::kernel_supported() {
  return !env_disabled() && probe_tier() >= 1;
}

bool UringBackend::sqpoll_supported() {
  return !env_disabled() && probe_tier() >= 2;
}

std::unique_ptr<UringBackend> UringBackend::create(int fd, bool sqpoll) {
  if (fd < 0 || !kernel_supported()) return nullptr;
  auto impl = std::make_unique<Impl>();
  if (!impl->setup(fd, sqpoll && sqpoll_supported())) return nullptr;
  return std::unique_ptr<UringBackend>(new UringBackend(std::move(impl)));
}

UringBackend::UringBackend(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
UringBackend::~UringBackend() = default;

bool UringBackend::sqpoll() const { return impl_->sqpoll; }

void UringBackend::set_retry_budget(int polls, int poll_timeout_ms) {
  impl_->retry_polls = polls;
  impl_->retry_timeout_ms = poll_timeout_ms;
}

std::uint32_t UringBackend::park(PooledBuffer buf, std::uint32_t refs) {
  return impl_->park(std::move(buf), refs);
}

const std::uint8_t* UringBackend::parked_data(std::uint32_t handle) const {
  return impl_->parked[handle].buf.data();
}

void UringBackend::release_ref(std::uint32_t handle) {
  impl_->unpark_ref(handle);
}

void UringBackend::submit(const SendDesc* descs, std::size_t count) {
  impl_->submit(descs, count);
}

void UringBackend::reap() {
  impl_->kick();  // flush any SQ backlog (idle-timeout safety net)
  impl_->reap_pass();
}

void UringBackend::drain() { impl_->drain(); }

const UringTxStats& UringBackend::stats() const { return impl_->st; }

std::size_t UringBackend::in_flight() const { return impl_->inflight; }

#else  // !LOCS_URING_IMPL: stubs -- every caller falls back to sendmmsg.

struct UringBackend::Impl {};

bool UringBackend::kernel_supported() { return false; }
bool UringBackend::sqpoll_supported() { return false; }

std::unique_ptr<UringBackend> UringBackend::create(int, bool) {
  (void)env_disabled();
  return nullptr;
}

UringBackend::UringBackend(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
UringBackend::~UringBackend() = default;
bool UringBackend::sqpoll() const { return false; }
void UringBackend::set_retry_budget(int, int) {}
std::uint32_t UringBackend::park(PooledBuffer, std::uint32_t) { return 0; }
const std::uint8_t* UringBackend::parked_data(std::uint32_t) const {
  return nullptr;
}
void UringBackend::release_ref(std::uint32_t) {}
void UringBackend::submit(const SendDesc*, std::size_t) {}
void UringBackend::reap() {}
void UringBackend::drain() {}
const UringTxStats& UringBackend::stats() const {
  static const UringTxStats empty;
  return empty;
}
std::size_t UringBackend::in_flight() const { return 0; }

#endif  // LOCS_URING_IMPL

}  // namespace locs::net
