// Single-producer / single-consumer datagram inbox for sharded reactors.
//
// A sharded leaf server (core/sharded_location_server.hpp) receives every
// datagram on ONE transport context -- the SimNetwork delivery loop or the
// node's single UdpNetwork receive thread -- and routes it to the shard that
// owns the message's ObjectId. Under real threads the router (the single
// producer) copies the datagram into the owning shard's inbox and the shard
// reactor (the single consumer) drains it; under the deterministic
// SimNetwork the router bypasses the inbox and invokes the shard inline, so
// delivery order -- and with it the whole seed-42 trace -- is exactly the
// unsharded order.
//
// The ring reuses its slot buffers (capacity intact), so steady-state
// enqueue is one memcpy and no allocation -- the same discipline as
// net::BufferPool on the send side. try_pop hands the consumer a pointer
// into the slot and only publishes the slot back to the producer AFTER the
// callback returns, so the payload is stable for the duration of the
// handler, mirroring the Transport handler contract.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <vector>

#include "wire/codec.hpp"

namespace locs::net {

class SpscInbox {
 public:
  /// Capacity is rounded up to a power of two.
  explicit SpscInbox(std::size_t capacity = 4096) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscInbox(const SpscInbox&) = delete;
  SpscInbox& operator=(const SpscInbox&) = delete;

  /// Producer side: copies the datagram into the ring. Returns false when
  /// the ring is full (the caller decides whether to retry or drop -- UDP
  /// semantics make dropping legal).
  bool try_push(const std::uint8_t* data, std::size_t len) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) > mask_) return false;
    wire::Buffer& slot = slots_[tail & mask_];
    slot.assign(data, data + len);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: invokes `fn(data, len)` on the oldest datagram, then
  /// releases the slot. Returns false when the ring is empty. The pointer
  /// passed to `fn` is valid only for the duration of the call.
  template <typename Fn>
  bool try_pop(Fn&& fn) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    const wire::Buffer& slot = slots_[head & mask_];
    fn(slot.data(), slot.size());
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  std::size_t size() const {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_acquire));
  }

  std::size_t capacity() const { return slots_.size(); }

 private:
  std::vector<wire::Buffer> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::uint64_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // producer cursor
};

}  // namespace locs::net
