#include "net/udp_network.hpp"

#include <arpa/inet.h>
#include <linux/filter.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cassert>
#include <chrono>
#include <cstring>

namespace locs::net {

namespace {

sockaddr_in addr_for(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

int make_socket(std::uint16_t bind_port, bool reuseport = false) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return -1;
  const int buf_size = 4 * 1024 * 1024;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &buf_size, sizeof buf_size);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &buf_size, sizeof buf_size);
  if (reuseport) {
    const int one = 1;
    if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) != 0) {
      ::close(fd);
      return -1;
    }
  }
  if (bind_port != 0) {
    sockaddr_in addr = addr_for(bind_port);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(fd);
      return -1;
    }
  }
  return fd;
}

// Installs the classic-BPF steering program that pins EVERY inbound packet
// of a SO_REUSEPORT group to member index 0 -- the primary receive socket
// bound first -- so transmit channels joining the group later never siphon
// receive traffic (the kernel would otherwise hash by 4-tuple). Returns
// false when the kernel lacks the option; callers then refuse same-port
// channel binds.
bool steer_group_to_primary(int fd) {
#ifdef SO_ATTACH_REUSEPORT_CBPF
  sock_filter code[] = {{BPF_RET | BPF_K, 0, 0, 0}};
  sock_fprog prog{};
  prog.len = 1;
  prog.filter = code;
  return ::setsockopt(fd, SOL_SOCKET, SO_ATTACH_REUSEPORT_CBPF, &prog,
                      sizeof prog) == 0;
#else
  (void)fd;
  return false;
#endif
}

// Thread-local send cache: one (transport instance, sender) -> Node mapping
// per thread. Reactors send as themselves from one thread and client threads
// send as one id, so steady-state sends resolve their ring with three
// compares -- no transport mutex, no hash lookup. The instance id guards
// against a recycled UdpNetwork address.
struct SendCache {
  const void* net = nullptr;
  std::uint64_t instance = 0;
  std::uint32_t from = 0;
  void* node = nullptr;
};
thread_local SendCache t_send_cache;
std::atomic<std::uint64_t> g_instance_ids{1};

}  // namespace

struct UdpNetwork::Node {
  NodeId id;
  int fd = -1;
  // Transmit ring on this node's socket (never null once attached). The
  // Node -- and with it the ring and its stats -- survives stop() so stale
  // thread-local cache entries and late stats reads stay valid; stop()
  // poisons the ring's fd instead.
  std::unique_ptr<TxRing> ring;
  // io_uring flush backend for the ring (Options::use_io_uring + a capable
  // kernel; nullptr keeps sendmmsg). Survives stop() alongside the ring so
  // folded stats stay readable; the set_fd(-1) poison drains it first.
  std::unique_ptr<UringBackend> uring;
  bool steering_ok = false;  // REUSEPORT group steering installed
  // Guards handler invocation vs detach(): a reactor clearing its handler
  // before destruction must not race an in-flight callback.
  std::mutex handler_mu;
  DatagramHandler handler;
  std::thread thread;
  // Reassembly buffers keyed by (sender msg_id); single-threaded per node.
  struct Partial {
    std::vector<wire::Buffer> frags;
    std::size_t received = 0;
  };
  std::map<std::uint64_t, Partial> partials;
  // Buffer reuse: retired fragment arrays (inner buffers keep capacity) and
  // the reassembled-message scratch, so steady multi-fragment traffic stops
  // allocating once the buffers reach their working sizes. The scratch is a
  // pooled slot so a handler can pin a reassembled message zero-copy
  // (Datagram::take steals it; the loop re-provisions on demand).
  std::vector<std::vector<wire::Buffer>> frag_pool;
  PooledBuffer reassembly;

  std::vector<wire::Buffer> take_frags(std::size_t count) {
    if (frag_pool.empty()) return std::vector<wire::Buffer>(count);
    std::vector<wire::Buffer> frags = std::move(frag_pool.back());
    frag_pool.pop_back();
    for (wire::Buffer& b : frags) b.clear();
    frags.resize(count);
    return frags;
  }

  void recycle_frags(std::vector<wire::Buffer>&& frags) {
    if (frag_pool.size() < 8) frag_pool.push_back(std::move(frags));
  }
};

// A per-sender transmit channel: its own socket (SO_REUSEPORT group member
// when possible, ephemeral otherwise) + private ring. Owned jointly by the
// opener (shard reactor) and the transport's channel registry, so stats and
// the socket outlive the reactor.
class UdpNetwork::TxChannel : public Sender {
 public:
  TxChannel(UdpNetwork& net, int fd)
      : base_port_(net.base_port_), fd_(fd), ring_(fd, net.next_msg_id_) {
    if (net.opts_.use_io_uring) {
      uring_ = UringBackend::create(fd, net.opts_.sqpoll);
      if (uring_ != nullptr) ring_.set_uring(uring_.get());
    }
  }
  ~TxChannel() override { shutdown(); }

  void send(NodeId to, PooledBuffer bytes) override {
    ring_.enqueue(addr_for(static_cast<std::uint16_t>(base_port_ + to.value)),
                  std::move(bytes));
  }
  void flush() override { ring_.flush(); }
  void cork() override { ring_.cork(); }
  void uncork() override { ring_.uncork(); }

  TxRing::Stats ring_stats() const { return ring_.stats(); }
  bool uring_active() const { return ring_.uring_active(); }

  /// Flush-and-wait teardown sibling of Sender::flush (detach path).
  void drain() { ring_.drain(); }

  /// Flushes, poisons the ring (which drains any uring in-flights) and
  /// closes the socket (idempotent).
  void shutdown() {
    ring_.flush();
    ring_.set_fd(-1);
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  std::uint16_t base_port_;
  int fd_;
  // Declared before ring_ (destroyed after it): the ring's teardown paths
  // reference the backend until its last drain.
  std::unique_ptr<UringBackend> uring_;
  TxRing ring_;
};

UdpNetwork::UdpNetwork(std::uint16_t base_port)
    : UdpNetwork(base_port, Options{}) {}

UdpNetwork::UdpNetwork(std::uint16_t base_port, Options opts)
    : base_port_(base_port),
      opts_(opts),
      instance_id_(g_instance_ids.fetch_add(1, std::memory_order_relaxed)) {}

std::uint16_t UdpNetwork::pick_free_base_port(std::uint16_t span) {
  static std::atomic<std::uint32_t> counter{0};
  // splitmix64 over (pid, wall clock, in-process counter): distinct processes
  // and repeated calls land in distinct regions of the port space.
  std::uint64_t x = static_cast<std::uint64_t>(::getpid()) +
                    static_cast<std::uint64_t>(
                        std::chrono::steady_clock::now().time_since_epoch().count()) +
                    (static_cast<std::uint64_t>(counter.fetch_add(1)) << 32);
  const auto next = [&x] {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  const auto bindable = [](std::uint16_t port) {
    // Probe WITHOUT SO_REUSEPORT: a port held by a live REUSEPORT group
    // still reports as taken.
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd < 0) return false;
    sockaddr_in addr = addr_for(port);
    const bool ok =
        ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
    ::close(fd);
    return ok;
  };
  const std::uint32_t room = 64000u - 17000u - span;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const auto base = static_cast<std::uint16_t>(17000u + next() % room);
    if (bindable(static_cast<std::uint16_t>(base + 1)) &&
        bindable(static_cast<std::uint16_t>(base + span / 2)) &&
        bindable(static_cast<std::uint16_t>(base + span))) {
      return base;
    }
  }
  return 25000;  // last resort: the historical fixed base
}

UdpNetwork::~UdpNetwork() {
  stop();
  std::lock_guard<std::mutex> lock(mu_);
  nodes_.clear();
  channels_.clear();
  fallback_ring_.reset();
}

void UdpNetwork::attach(NodeId node, DatagramHandler handler) {
  // Re-attach after detach (crash-restart harness hook): the socket and its
  // receive thread survived the detach and keep draining; just swap the
  // handler in so delivery resumes for the restarted reactor.
  Node* existing = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = nodes_.find(node);
    if (it != nodes_.end()) existing = it->second.get();
  }
  if (existing != nullptr) {
    // handler_mu taken WITHOUT mu_ held: a receive thread holds handler_mu
    // while its handler sends (which may lock mu_) -- same order as detach().
    std::lock_guard<std::mutex> hlock(existing->handler_mu);
    existing->handler = std::move(handler);
    return;
  }
  auto n = std::make_unique<Node>();
  n->id = node;
  n->handler = std::move(handler);
  // The primary socket opens the node's SO_REUSEPORT group and installs the
  // steering program, so open_sender() channels can later join the same port
  // transmit-only. Kernels without SO_REUSEPORT fall back to a plain bind
  // (channels then use ephemeral ports).
  const auto port = static_cast<std::uint16_t>(base_port_ + node.value);
  n->fd = make_socket(port, /*reuseport=*/true);
  if (n->fd >= 0) {
    n->steering_ok = steer_group_to_primary(n->fd);
  } else {
    n->fd = make_socket(port);
  }
  assert(n->fd >= 0 && "UDP bind failed (port collision?)");
  n->ring = std::make_unique<TxRing>(n->fd, next_msg_id_);
  if (opts_.use_io_uring) {
    // Runtime feature detection: a failed probe (old kernel, sysctl'd off,
    // LOCS_NO_IO_URING) returns nullptr and the ring keeps sendmmsg.
    n->uring = UringBackend::create(n->fd, opts_.sqpoll);
    if (n->uring != nullptr) n->ring->set_uring(n->uring.get());
  }
  Node* raw = n.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    nodes_[node] = std::move(n);
  }
  raw->thread = std::thread([this, raw] { receive_loop(*raw); });
}

void UdpNetwork::detach(NodeId node) {
  Node* raw = nullptr;
  std::vector<std::shared_ptr<TxChannel>> chans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = nodes_.find(node);
    if (it == nodes_.end()) return;
    raw = it->second.get();
    for (auto& [id, ch] : channels_) {
      if (id == node) chans.push_back(ch);
    }
  }
  {
    // Taken without mu_ held: the handler itself may send (which can lock
    // mu_ on a cold lookup).
    std::lock_guard<std::mutex> lock(raw->handler_mu);
    raw->handler = nullptr;
  }
  // Deterministic send-side teardown: whatever the detached reactor left
  // queued (corked replies, shard-channel batches) is on the wire -- or a
  // counted drop -- before detach returns. drain() (= flush on the
  // sendmmsg path) additionally waits out uring in-flight completions.
  raw->ring->drain();
  for (const auto& ch : chans) ch->drain();
}

UdpNetwork::Node* UdpNetwork::node_for_send(NodeId from) {
  SendCache& cache = t_send_cache;
  if (cache.net == this && cache.instance == instance_id_ &&
      cache.from == from.value) {
    return static_cast<Node*>(cache.node);
  }
  tx_lookup_locks_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = nodes_.find(from);
  if (it == nodes_.end()) return nullptr;  // uncached: attach may follow
  cache = SendCache{this, instance_id_, from.value, it->second.get()};
  return it->second.get();
}

void UdpNetwork::send(NodeId from, NodeId to, PooledBuffer bytes) {
  const sockaddr_in dst =
      addr_for(static_cast<std::uint16_t>(base_port_ + to.value));
  if (Node* node = node_for_send(from)) {
    node->ring->enqueue(dst, std::move(bytes));
    return;
  }
  // Never-attached sender (bare clients, tests): shared fallback socket +
  // ring behind the transport mutex -- the documented cold path.
  std::lock_guard<std::mutex> lock(mu_);
  if (fallback_send_fd_ < 0) {
    fallback_send_fd_ = make_socket(0);
    if (fallback_send_fd_ < 0) return;
    fallback_ring_ = std::make_unique<TxRing>(fallback_send_fd_, next_msg_id_);
  }
  fallback_ring_->enqueue(dst, std::move(bytes));
}

void UdpNetwork::cork(NodeId from) {
  if (Node* node = node_for_send(from)) node->ring->cork();
}

void UdpNetwork::uncork(NodeId from) {
  if (Node* node = node_for_send(from)) node->ring->uncork();
}

void UdpNetwork::flush(NodeId from) {
  if (Node* node = node_for_send(from)) node->ring->flush();
  std::vector<std::shared_ptr<TxChannel>> chans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, ch] : channels_) {
      if (id == from) chans.push_back(ch);
    }
  }
  for (const auto& ch : chans) ch->flush();
}

std::shared_ptr<Sender> UdpNetwork::open_sender(NodeId from) {
  bool group_member = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = nodes_.find(from);
    group_member = it != nodes_.end() && it->second->fd >= 0 &&
                   it->second->steering_ok;
  }
  // Join the node's REUSEPORT group only when the primary socket exists AND
  // carries the steering program -- otherwise a same-port bind could siphon
  // inbound packets. Never-attached senders get an ephemeral-port socket:
  // same semantics, different source port.
  int fd = -1;
  if (group_member) {
    fd = make_socket(static_cast<std::uint16_t>(base_port_ + from.value),
                     /*reuseport=*/true);
  }
  if (fd < 0) fd = make_socket(0);
  if (fd < 0) return nullptr;
  auto ch = std::make_shared<TxChannel>(*this, fd);
  std::lock_guard<std::mutex> lock(mu_);
  channels_.emplace_back(from, ch);
  return ch;
}

bool UdpNetwork::uring_active(NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = nodes_.find(node);
  return it != nodes_.end() && it->second->ring->uring_active();
}

UdpNetwork::TxStats UdpNetwork::tx_stats(NodeId node) const {
  TxStats total;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = nodes_.find(node);
  if (it != nodes_.end()) total.add(it->second->ring->stats());
  for (const auto& [id, ch] : channels_) {
    if (id == node) total.add(ch->ring_stats());
  }
  return total;
}

std::uint64_t UdpNetwork::datagrams_sent() const {
  std::uint64_t n = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, node] : nodes_) {
    n += node->ring->stats().datagrams_sent;
  }
  for (const auto& [id, ch] : channels_) n += ch->ring_stats().datagrams_sent;
  if (fallback_ring_ != nullptr) n += fallback_ring_->stats().datagrams_sent;
  return n;
}

std::uint64_t UdpNetwork::send_errors() const {
  std::uint64_t n = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, node] : nodes_) n += node->ring->stats().dropped;
  for (const auto& [id, ch] : channels_) n += ch->ring_stats().dropped;
  if (fallback_ring_ != nullptr) n += fallback_ring_->stats().dropped;
  return n;
}

void UdpNetwork::handle_datagram(Node& node, PooledBuffer& slot,
                                 std::size_t len) {
  const std::uint8_t* buf = slot->data();
  if (len < kFragHeader) return;
  if (frag::get_u16(buf) != kFragMagic) return;
  const std::uint32_t msg_id = frag::get_u32(buf + 2);
  const std::uint16_t index = frag::get_u16(buf + 6);
  const std::uint16_t count = frag::get_u16(buf + 8);
  const std::uint8_t* payload = buf + kFragHeader;
  const std::size_t payload_len = len - kFragHeader;
  if (count <= 1) {
    // Single-fragment message (the common case): deliver straight out of
    // the receive slot. A handler pin steals the slot's buffer; the loop
    // re-provisions before the next recvmmsg batch.
    const Datagram dg(payload, payload_len, &slot);
    std::lock_guard<std::mutex> lock(node.handler_mu);
    if (node.handler) node.handler(dg);
    return;
  }
  // Multi-fragment message: stash and deliver once complete. Fragment
  // arrays and the reassembled-message buffer are recycled (capacity
  // intact) instead of freshly allocated per message.
  auto& partial = node.partials[msg_id];
  if (partial.frags.empty()) partial.frags = node.take_frags(count);
  if (index < count && index < partial.frags.size() &&
      partial.frags[index].empty()) {
    partial.frags[index].assign(payload, payload + payload_len);
    if (++partial.received == count) {
      // Reassemble into the pooled scratch slot so the handler can pin the
      // whole message zero-copy, exactly like a single-fragment datagram.
      if (!node.reassembly.armed()) {
        node.reassembly = PooledBuffer(&rx_pool_, rx_pool_.acquire());
      }
      wire::Buffer& whole = *node.reassembly;
      whole.clear();
      for (const auto& frag : partial.frags) {
        whole.insert(whole.end(), frag.begin(), frag.end());
      }
      node.recycle_frags(std::move(partial.frags));
      node.partials.erase(msg_id);
      const Datagram dg(whole.data(), whole.size(), &node.reassembly);
      std::lock_guard<std::mutex> lock(node.handler_mu);
      if (node.handler) node.handler(dg);
    }
  }
  // Bound reassembly memory: drop oldest partials beyond a small cap
  // (recycling their fragment arrays too).
  while (node.partials.size() > 64) {
    node.recycle_frags(std::move(node.partials.begin()->second.frags));
    node.partials.erase(node.partials.begin());
  }
}

void UdpNetwork::receive_loop(Node& node) {
  // One pooled slot per recvmmsg entry, provisioned at full datagram size
  // once and then reused batch after batch; a slot is re-provisioned (one
  // pool round-trip) only after a handler stole its buffer via
  // Datagram::take. Pool exhaustion just allocates -- never blocks.
  constexpr std::size_t kSlotSize = kMaxFragPayload + kFragHeader + 1024;
  PooledBuffer slots[kRecvBatch];
  const auto provision = [&](PooledBuffer& slot) {
    slot = PooledBuffer(&rx_pool_, rx_pool_.acquire());
    slot->resize(kSlotSize);
  };
  for (PooledBuffer& slot : slots) provision(slot);
  mmsghdr msgs[kRecvBatch];
  iovec iovs[kRecvBatch];
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{node.fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready <= 0) {
      // Tick-deadline safety net: push out anything an overlapping cork
      // window left queued on this node's ring. In uring mode a flush with
      // nothing queued STILL submits the SQ backlog and reaps stale CQEs,
      // so a corked-but-idle node never strands submitted-but-unflushed
      // datagrams (or their parked buffers).
      node.ring->flush();
      continue;
    }
    for (std::size_t i = 0; i < kRecvBatch; ++i) {
      if (!slots[i].armed()) provision(slots[i]);
      iovs[i] = {slots[i]->data(), slots[i]->size()};
      std::memset(&msgs[i], 0, sizeof msgs[i]);
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
    }
    // Batched receive: one syscall drains up to kRecvBatch queued datagrams
    // (under load the syscall cost amortizes across the whole batch).
    const int n = ::recvmmsg(node.fd, msgs, kRecvBatch, MSG_DONTWAIT, nullptr);
    if (n <= 0) continue;
    // Cork the node's ring across the batch: every reply the handlers send
    // coalesces into sendmmsg batches, flushed by the closing uncork -- the
    // transmit dual of the recvmmsg amortization above.
    node.ring->cork();
    for (int i = 0; i < n; ++i) {
      handle_datagram(node, slots[i], msgs[i].msg_len);
    }
    node.ring->uncork();
  }
}

void UdpNetwork::stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, node] : nodes_) {
    if (node->thread.joinable()) node->thread.join();
  }
  // Sends have quiesced (reactors stop before their transport): drain what
  // is left, then poison the ring fds so a stale thread-local cache entry
  // turns a late send into a counted drop instead of a write to a recycled
  // descriptor. Node/channel objects survive until destruction, keeping
  // tx_stats() readable after stop().
  for (auto& [id, node] : nodes_) {
    node->ring->flush();
    node->ring->set_fd(-1);
    if (node->fd >= 0) ::close(node->fd);
    node->fd = -1;
  }
  for (auto& [id, ch] : channels_) ch->shutdown();
  if (fallback_ring_ != nullptr) {
    fallback_ring_->flush();
    fallback_ring_->set_fd(-1);
  }
  if (fallback_send_fd_ >= 0) {
    ::close(fallback_send_fd_);
    fallback_send_fd_ = -1;
  }
}

}  // namespace locs::net
