#include "net/udp_network.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cassert>
#include <chrono>
#include <cstring>

namespace locs::net {

namespace {

// Fragmentation header: [magic u16][msg_id u32][index u16][count u16].
constexpr std::uint16_t kFragMagic = 0x4c53;  // "LS"
constexpr std::size_t kFragHeader = 10;
// Stay well below the 65507-byte UDP payload limit.
constexpr std::size_t kMaxFragPayload = 32 * 1024;

sockaddr_in addr_for(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

void put_u16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

void put_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

int make_socket(std::uint16_t bind_port) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return -1;
  const int buf_size = 4 * 1024 * 1024;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &buf_size, sizeof buf_size);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &buf_size, sizeof buf_size);
  if (bind_port != 0) {
    sockaddr_in addr = addr_for(bind_port);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(fd);
      return -1;
    }
  }
  return fd;
}

}  // namespace

struct UdpNetwork::Node {
  NodeId id;
  int fd = -1;
  // Guards handler invocation vs detach(): a reactor clearing its handler
  // before destruction must not race an in-flight callback.
  std::mutex handler_mu;
  DatagramHandler handler;
  std::thread thread;
  // Reassembly buffers keyed by (sender msg_id); single-threaded per node.
  struct Partial {
    std::vector<wire::Buffer> frags;
    std::size_t received = 0;
  };
  std::map<std::uint64_t, Partial> partials;
  // Buffer reuse: retired fragment arrays (inner buffers keep capacity) and
  // the reassembled-message scratch, so steady multi-fragment traffic stops
  // allocating once the buffers reach their working sizes. The scratch is a
  // pooled slot so a handler can pin a reassembled message zero-copy
  // (Datagram::take steals it; the loop re-provisions on demand).
  std::vector<std::vector<wire::Buffer>> frag_pool;
  PooledBuffer reassembly;

  std::vector<wire::Buffer> take_frags(std::size_t count) {
    if (frag_pool.empty()) return std::vector<wire::Buffer>(count);
    std::vector<wire::Buffer> frags = std::move(frag_pool.back());
    frag_pool.pop_back();
    for (wire::Buffer& b : frags) b.clear();
    frags.resize(count);
    return frags;
  }

  void recycle_frags(std::vector<wire::Buffer>&& frags) {
    if (frag_pool.size() < 8) frag_pool.push_back(std::move(frags));
  }
};

UdpNetwork::UdpNetwork(std::uint16_t base_port) : base_port_(base_port) {}

std::uint16_t UdpNetwork::pick_free_base_port(std::uint16_t span) {
  static std::atomic<std::uint32_t> counter{0};
  // splitmix64 over (pid, wall clock, in-process counter): distinct processes
  // and repeated calls land in distinct regions of the port space.
  std::uint64_t x = static_cast<std::uint64_t>(::getpid()) +
                    static_cast<std::uint64_t>(
                        std::chrono::steady_clock::now().time_since_epoch().count()) +
                    (static_cast<std::uint64_t>(counter.fetch_add(1)) << 32);
  const auto next = [&x] {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  const auto bindable = [](std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd < 0) return false;
    sockaddr_in addr = addr_for(port);
    const bool ok =
        ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
    ::close(fd);
    return ok;
  };
  const std::uint32_t room = 64000u - 17000u - span;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const auto base = static_cast<std::uint16_t>(17000u + next() % room);
    if (bindable(static_cast<std::uint16_t>(base + 1)) &&
        bindable(static_cast<std::uint16_t>(base + span / 2)) &&
        bindable(static_cast<std::uint16_t>(base + span))) {
      return base;
    }
  }
  return 25000;  // last resort: the historical fixed base
}

UdpNetwork::~UdpNetwork() { stop(); }

void UdpNetwork::attach(NodeId node, DatagramHandler handler) {
  // Re-attach after detach (crash-restart harness hook): the socket and its
  // receive thread survived the detach and keep draining; just swap the
  // handler in so delivery resumes for the restarted reactor.
  Node* existing = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = nodes_.find(node);
    if (it != nodes_.end()) existing = it->second.get();
  }
  if (existing != nullptr) {
    // handler_mu taken WITHOUT mu_ held: a receive thread holds handler_mu
    // while its handler sends (which locks mu_) -- same order as detach().
    std::lock_guard<std::mutex> hlock(existing->handler_mu);
    existing->handler = std::move(handler);
    return;
  }
  auto n = std::make_unique<Node>();
  n->id = node;
  n->handler = std::move(handler);
  n->fd = make_socket(static_cast<std::uint16_t>(base_port_ + node.value));
  assert(n->fd >= 0 && "UDP bind failed (port collision?)");
  Node* raw = n.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    nodes_[node] = std::move(n);
  }
  raw->thread = std::thread([this, raw] { receive_loop(*raw); });
}

void UdpNetwork::detach(NodeId node) {
  Node* raw = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = nodes_.find(node);
    if (it == nodes_.end()) return;
    raw = it->second.get();
  }
  // Taken without mu_ held: the handler itself may send (which locks mu_).
  std::lock_guard<std::mutex> lock(raw->handler_mu);
  raw->handler = nullptr;
}

int UdpNetwork::socket_for_send(NodeId from) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = nodes_.find(from);
    if (it != nodes_.end()) return it->second->fd;
    if (fallback_send_fd_ < 0) fallback_send_fd_ = make_socket(0);
    return fallback_send_fd_;
  }
}

void UdpNetwork::send(NodeId from, NodeId to, PooledBuffer bytes) {
  const int fd = socket_for_send(from);
  if (fd < 0) {
    send_errors_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  sockaddr_in dst = addr_for(static_cast<std::uint16_t>(base_port_ + to.value));
  const std::size_t total = bytes.size();
  const std::size_t frag_count = (total + kMaxFragPayload - 1) / kMaxFragPayload;
  const std::uint32_t msg_id = next_msg_id_.fetch_add(1, std::memory_order_relaxed);
  std::uint8_t header[kFragHeader];
  for (std::size_t i = 0; i < std::max<std::size_t>(frag_count, 1); ++i) {
    const std::size_t off = i * kMaxFragPayload;
    const std::size_t len = std::min(kMaxFragPayload, total - off);
    put_u16(header, kFragMagic);
    put_u32(header + 2, msg_id);
    put_u16(header + 6, static_cast<std::uint16_t>(i));
    put_u16(header + 8, static_cast<std::uint16_t>(frag_count));
    // Scatter/gather write: header + payload slice straight from the pooled
    // buffer, no per-fragment datagram assembly.
    iovec iov[2];
    iov[0] = {header, kFragHeader};
    iov[1] = {const_cast<std::uint8_t*>(bytes.data()) + off, len};
    msghdr msg{};
    msg.msg_name = &dst;
    msg.msg_namelen = sizeof dst;
    msg.msg_iov = iov;
    msg.msg_iovlen = len > 0 ? 2 : 1;
    const ssize_t sent = ::sendmsg(fd, &msg, 0);
    if (sent < 0) {
      send_errors_.fetch_add(1, std::memory_order_relaxed);
    } else {
      datagrams_sent_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // `bytes` is recycled into the pool on return.
}

void UdpNetwork::handle_datagram(Node& node, PooledBuffer& slot,
                                 std::size_t len) {
  const std::uint8_t* buf = slot->data();
  if (len < kFragHeader) return;
  if (get_u16(buf) != kFragMagic) return;
  const std::uint32_t msg_id = get_u32(buf + 2);
  const std::uint16_t index = get_u16(buf + 6);
  const std::uint16_t count = get_u16(buf + 8);
  const std::uint8_t* payload = buf + kFragHeader;
  const std::size_t payload_len = len - kFragHeader;
  if (count <= 1) {
    // Single-fragment message (the common case): deliver straight out of
    // the receive slot. A handler pin steals the slot's buffer; the loop
    // re-provisions before the next recvmmsg batch.
    const Datagram dg(payload, payload_len, &slot);
    std::lock_guard<std::mutex> lock(node.handler_mu);
    if (node.handler) node.handler(dg);
    return;
  }
  // Multi-fragment message: stash and deliver once complete. Fragment
  // arrays and the reassembled-message buffer are recycled (capacity
  // intact) instead of freshly allocated per message.
  auto& partial = node.partials[msg_id];
  if (partial.frags.empty()) partial.frags = node.take_frags(count);
  if (index < count && index < partial.frags.size() &&
      partial.frags[index].empty()) {
    partial.frags[index].assign(payload, payload + payload_len);
    if (++partial.received == count) {
      // Reassemble into the pooled scratch slot so the handler can pin the
      // whole message zero-copy, exactly like a single-fragment datagram.
      if (!node.reassembly.armed()) {
        node.reassembly = PooledBuffer(&rx_pool_, rx_pool_.acquire());
      }
      wire::Buffer& whole = *node.reassembly;
      whole.clear();
      for (const auto& frag : partial.frags) {
        whole.insert(whole.end(), frag.begin(), frag.end());
      }
      node.recycle_frags(std::move(partial.frags));
      node.partials.erase(msg_id);
      const Datagram dg(whole.data(), whole.size(), &node.reassembly);
      std::lock_guard<std::mutex> lock(node.handler_mu);
      if (node.handler) node.handler(dg);
    }
  }
  // Bound reassembly memory: drop oldest partials beyond a small cap
  // (recycling their fragment arrays too).
  while (node.partials.size() > 64) {
    node.recycle_frags(std::move(node.partials.begin()->second.frags));
    node.partials.erase(node.partials.begin());
  }
}

void UdpNetwork::receive_loop(Node& node) {
  // One pooled slot per recvmmsg entry, provisioned at full datagram size
  // once and then reused batch after batch; a slot is re-provisioned (one
  // pool round-trip) only after a handler stole its buffer via
  // Datagram::take. Pool exhaustion just allocates -- never blocks.
  constexpr std::size_t kSlotSize = kMaxFragPayload + kFragHeader + 1024;
  PooledBuffer slots[kRecvBatch];
  const auto provision = [&](PooledBuffer& slot) {
    slot = PooledBuffer(&rx_pool_, rx_pool_.acquire());
    slot->resize(kSlotSize);
  };
  for (PooledBuffer& slot : slots) provision(slot);
  mmsghdr msgs[kRecvBatch];
  iovec iovs[kRecvBatch];
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{node.fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready <= 0) continue;
    for (std::size_t i = 0; i < kRecvBatch; ++i) {
      if (!slots[i].armed()) provision(slots[i]);
      iovs[i] = {slots[i]->data(), slots[i]->size()};
      std::memset(&msgs[i], 0, sizeof msgs[i]);
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
    }
    // Batched receive: one syscall drains up to kRecvBatch queued datagrams
    // (under load the syscall cost amortizes across the whole batch).
    const int n = ::recvmmsg(node.fd, msgs, kRecvBatch, MSG_DONTWAIT, nullptr);
    if (n <= 0) continue;
    for (int i = 0; i < n; ++i) {
      handle_datagram(node, slots[i], msgs[i].msg_len);
    }
  }
}

void UdpNetwork::stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, node] : nodes_) {
    if (node->thread.joinable()) node->thread.join();
    if (node->fd >= 0) ::close(node->fd);
  }
  nodes_.clear();
  if (fallback_send_fd_ >= 0) {
    ::close(fallback_send_fd_);
    fallback_send_fd_ = -1;
  }
}

}  // namespace locs::net
