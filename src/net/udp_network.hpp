// Real UDP transport over loopback.
//
// The paper's prototype implemented its protocols "on top of UDP to achieve
// efficient client/server and server/server interactions" (§7.2); the
// Table-2 benchmark runs over this transport. Each attached node gets its
// own socket (port = base_port + node id) and receive thread, so a node's
// handler is always invoked from a single thread -- the same single-threaded
// reactor discipline the simulator provides, with real parallelism between
// nodes (the paper ran one server per machine).
//
// Receive path (recvmmsg + receive-side BufferPool): each receive thread
// drains its socket in batches of up to kRecvBatch datagrams per syscall
// (recvmmsg), one pooled slot buffer per batch entry. Handlers get a
// net::Datagram backed by the slot; the borrow/lifetime rules are:
//  * by default the slot buffer is REUSED for the next batch the moment the
//    handler returns -- views into the datagram are valid only during the
//    callback;
//  * a handler that pins the datagram (Datagram::take) steals the slot's
//    pooled buffer zero-copy; the loop re-provisions that slot from the
//    receive pool before the next batch, and the stolen buffer returns to
//    the pool when the pin is released (e.g. when a query merge completes).
//    Pinning therefore costs one pool round-trip, never a byte copy;
//  * reassembled multi-fragment messages live in a pooled scratch buffer
//    under the same steal/re-provision protocol, so even >32 KiB sub-results
//    can be pinned without copying;
//  * the receive pool never blocks: exhaustion (every buffer pinned) simply
//    allocates fresh buffers, and non-poolable delivery paths degrade to
//    copy inside Datagram::take -- never to a dangling view.
//
// Datagrams larger than the safe UDP payload are fragmented and reassembled
// with a small header (large range-query results can exceed 64 KiB).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/transport.hpp"

namespace locs::net {

class UdpNetwork : public Transport {
 public:
  /// Nodes bind to 127.0.0.1:(base_port + node.value).
  explicit UdpNetwork(std::uint16_t base_port);
  ~UdpNetwork() override;

  UdpNetwork(const UdpNetwork&) = delete;
  UdpNetwork& operator=(const UdpNetwork&) = delete;

  /// Binds the node's socket and starts its receive thread. Re-attaching a
  /// previously detached node swaps the handler in on the surviving socket
  /// (the crash-restart harness hook: a restarted reactor resumes delivery
  /// without rebinding the port).
  using Transport::attach;
  void attach(NodeId node, DatagramHandler handler) override;
  /// Clears the node's handler; blocks until an in-flight callback on the
  /// receive thread has returned. The socket keeps draining (and dropping)
  /// datagrams until stop().
  void detach(NodeId node) override;
  using Transport::send;
  // Fragments are written with scatter/gather I/O (header + payload slice),
  // so sending allocates nothing; the pooled buffer is recycled on return.
  void send(NodeId from, NodeId to, PooledBuffer bytes) override;

  /// Joins all receive threads and closes sockets. Called by the destructor.
  void stop();

  /// Best-effort free base port for a deployment whose node/client ids span
  /// [1, span]: randomizes the base from the pid + an in-process counter (so
  /// parallel test runners pick disjoint ranges) and probe-binds a few
  /// representative ports before settling. Collisions remain possible --
  /// another process can grab a port between probe and bind -- but ctest -j
  /// runs no longer contend for one hardcoded pair.
  static std::uint16_t pick_free_base_port(std::uint16_t span);

  std::uint64_t datagrams_sent() const { return datagrams_sent_.load(); }
  std::uint64_t send_errors() const { return send_errors_.load(); }

  /// Receive-side pool feeding the recvmmsg slot buffers and reassembly
  /// scratch (shared by all receive threads; see the header contract).
  BufferPool& rx_pool() { return rx_pool_; }

  /// Datagrams per recvmmsg syscall (and pooled slots per receive thread).
  static constexpr std::size_t kRecvBatch = 16;

 private:
  struct Node;

  int socket_for_send(NodeId from);
  void receive_loop(Node& node);
  /// Parses one received datagram (frag header, reassembly) and invokes the
  /// node's handler with `slot` as the Datagram backing.
  void handle_datagram(Node& node, PooledBuffer& slot, std::size_t len);

  std::uint16_t base_port_;
  BufferPool rx_pool_;  // receive-side buffers (recvmmsg slots + reassembly)
  std::mutex mu_;  // guards nodes_ map mutation (setup/teardown only)
  std::unordered_map<NodeId, std::unique_ptr<Node>> nodes_;
  int fallback_send_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> datagrams_sent_{0};
  std::atomic<std::uint64_t> send_errors_{0};
  std::atomic<std::uint32_t> next_msg_id_{1};
};

}  // namespace locs::net
