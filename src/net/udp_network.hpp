// Real UDP transport over loopback.
//
// The paper's prototype implemented its protocols "on top of UDP to achieve
// efficient client/server and server/server interactions" (§7.2); the
// Table-2 benchmark runs over this transport. Each attached node gets its
// own socket (port = base_port + node id) and receive thread, so a node's
// handler is always invoked from a single thread -- the same single-threaded
// reactor discipline the simulator provides, with real parallelism between
// nodes (the paper ran one server per machine).
//
// Receive path (recvmmsg + receive-side BufferPool): each receive thread
// drains its socket in batches of up to kRecvBatch datagrams per syscall
// (recvmmsg), one pooled slot buffer per batch entry. Handlers get a
// net::Datagram backed by the slot; the borrow/lifetime rules are:
//  * by default the slot buffer is REUSED for the next batch the moment the
//    handler returns -- views into the datagram are valid only during the
//    callback;
//  * a handler that pins the datagram (Datagram::take) steals the slot's
//    pooled buffer zero-copy; the loop re-provisions that slot from the
//    receive pool before the next batch, and the stolen buffer returns to
//    the pool when the pin is released (e.g. when a query merge completes).
//    Pinning therefore costs one pool round-trip, never a byte copy;
//  * reassembled multi-fragment messages live in a pooled scratch buffer
//    under the same steal/re-provision protocol, so even >32 KiB sub-results
//    can be pinned without copying;
//  * the receive pool never blocks: exhaustion (every buffer pinned) simply
//    allocates fresh buffers, and non-poolable delivery paths degrade to
//    copy inside Datagram::take -- never to a dangling view.
//
// Send path (net/tx_ring.hpp): every attached node owns a TxRing on its
// socket. send(from, ...) enqueues on the sender's ring -- located through a
// thread-local cache, so the steady-state send path touches NO global lock
// and NO hash lookup (tx_lookup_locks() counts the slow-path exceptions) --
// and the ring writes sendmmsg batches. The receive loop corks the node's
// ring around each recvmmsg batch, so all handler replies of one batch
// leave in one syscall; uncorked sends (clients, tests) flush inline.
// Backpressure (EAGAIN/ENOBUFS) waits for POLLOUT under a bounded budget and
// is surfaced -- never silently swallowed -- via tx_stats(node):
// {datagrams_sent, batches_flushed, eagain_retries, dropped}.
// With Options::use_io_uring the same rings flush through an io_uring
// SENDMSG backend instead of sendmmsg (zero send syscalls under the SQPOLL
// tier); see net/uring_backend.hpp and the Options comments below.
//
// SO_REUSEPORT per-sender channels (open_sender): each call hands out a
// Sender backed by its own socket + private ring. When the node is already
// attached the channel's socket joins the node's SO_REUSEPORT group bound to
// the SAME port, and a classic-BPF steering program
// (SO_ATTACH_REUSEPORT_CBPF, installed on the primary socket) pins ALL
// inbound packets to group index 0 -- the receive socket -- so channel
// sockets are transmit-only by construction. N shard reactors behind one
// NodeId thus send concurrently with zero shared state (no lock, no ring
// contention, distinct fds). If the node is not attached (bare clients) or
// steering is unavailable, the channel degrades to an ephemeral-port socket
// -- same semantics, different source port. The transport keeps every opened
// channel (and its stats) alive until teardown.
//
// Datagrams larger than the safe UDP payload are fragmented and reassembled
// with a small header (large range-query results can exceed 64 KiB).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/transport.hpp"
#include "net/tx_ring.hpp"

namespace locs::net {

class UdpNetwork : public Transport {
 public:
  struct Options {
    /// Route every attached node's (and open_sender channel's) transmit
    /// ring through an io_uring SENDMSG backend (net/uring_backend.hpp).
    /// Feature-detected at attach time: kernels without io_uring -- or a
    /// set LOCS_NO_IO_URING environment variable -- silently keep the PR 6
    /// sendmmsg path, bit-for-bit. The never-attached-sender fallback ring
    /// (a cold path behind the transport mutex) always stays on sendmmsg.
    bool use_io_uring = false;
    /// Second tier on top of use_io_uring: ask for IORING_SETUP_SQPOLL
    /// submission polling, so a saturated sender's flushes make zero send
    /// syscalls (the kernel's poll thread consumes the SQ). Degrades to a
    /// plain ring when the kernel refuses SQPOLL.
    bool sqpoll = false;
  };

  /// Nodes bind to 127.0.0.1:(base_port + node.value).
  explicit UdpNetwork(std::uint16_t base_port);
  UdpNetwork(std::uint16_t base_port, Options opts);
  ~UdpNetwork() override;

  UdpNetwork(const UdpNetwork&) = delete;
  UdpNetwork& operator=(const UdpNetwork&) = delete;

  /// Binds the node's socket and starts its receive thread. Re-attaching a
  /// previously detached node swaps the handler in on the surviving socket
  /// (the crash-restart harness hook: a restarted reactor resumes delivery
  /// without rebinding the port).
  using Transport::attach;
  void attach(NodeId node, DatagramHandler handler) override;
  /// Clears the node's handler; blocks until an in-flight callback on the
  /// receive thread has returned, then flushes the node's transmit ring --
  /// anything the dying reactor queued is on the wire (or a counted drop)
  /// before detach returns, and the handler is never invoked again. The
  /// socket keeps draining (and dropping) datagrams until stop().
  void detach(NodeId node) override;
  using Transport::send;
  // Enqueues on the sender's transmit ring (fragmented with scatter/gather
  // iovecs, zero copies); an uncorked ring flushes before returning.
  void send(NodeId from, NodeId to, PooledBuffer bytes) override;

  /// Send-burst brackets and the explicit flush for `from`'s ring (see the
  /// Transport contract; no-ops for unknown senders).
  void cork(NodeId from) override;
  void uncork(NodeId from) override;
  void flush(NodeId from) override;

  /// Opens a per-sender SO_REUSEPORT transmit channel (header comment).
  std::shared_ptr<Sender> open_sender(NodeId from) override;

  /// Joins all receive threads, flushes every transmit ring and closes
  /// sockets. Called by the destructor. Stats remain readable afterwards.
  void stop();

  /// Best-effort free base port for a deployment whose node/client ids span
  /// [1, span]: randomizes the base from the pid + an in-process counter (so
  /// parallel test runners pick disjoint ranges) and probe-binds a few
  /// representative ports before settling. Collisions remain possible --
  /// another process can grab a port between probe and bind -- but ctest -j
  /// runs no longer contend for one hardcoded pair. (The probe binds WITHOUT
  /// SO_REUSEPORT, so it still reports ports held by a live REUSEPORT group
  /// as taken.)
  static std::uint16_t pick_free_base_port(std::uint16_t span);

  /// Per-node transmit stats: the node's own ring plus every channel opened
  /// for it via open_sender. Unknown nodes read all-zero. In uring mode the
  /// totals fold in the backend's completion counters (uring_sqes,
  /// uring_cqes, sqpoll_wakeups; batches_flushed counts io_uring_enter
  /// calls), so sent/flushed/eagain/dropped stay comparable across backends.
  using TxStats = TxRing::Stats;
  TxStats tx_stats(NodeId node) const;

  /// True when `node`'s transmit ring runs the io_uring backend (false for
  /// unknown nodes, on unsupported kernels, and with Options defaults).
  bool uring_active(NodeId node) const;

  /// Times a send had to take the transport mutex to locate its socket (the
  /// slow path: first send from a thread, or a never-attached sender).
  /// Steady-state sends from attached nodes hit a thread-local cache and
  /// never touch it -- the regression tests pin that down.
  std::uint64_t tx_lookup_locks() const {
    return tx_lookup_locks_.load(std::memory_order_relaxed);
  }

  /// Aggregate transmit counters across all rings (legacy accessors).
  std::uint64_t datagrams_sent() const;
  std::uint64_t send_errors() const;

  /// Receive-side pool feeding the recvmmsg slot buffers and reassembly
  /// scratch (shared by all receive threads; see the header contract).
  BufferPool& rx_pool() { return rx_pool_; }

  /// Datagrams per recvmmsg syscall (and pooled slots per receive thread).
  static constexpr std::size_t kRecvBatch = 16;

 private:
  struct Node;
  class TxChannel;

  /// Locates the sender's Node through the thread-local send cache; falls
  /// back to one locked map lookup (counted in tx_lookup_locks_) and
  /// re-primes the cache. Returns nullptr for never-attached senders.
  Node* node_for_send(NodeId from);
  void receive_loop(Node& node);
  /// Parses one received datagram (frag header, reassembly) and invokes the
  /// node's handler with `slot` as the Datagram backing.
  void handle_datagram(Node& node, PooledBuffer& slot, std::size_t len);

  std::uint16_t base_port_;
  Options opts_;
  const std::uint64_t instance_id_;  // guards the TLS cache across reuse
  BufferPool rx_pool_;  // receive-side buffers (recvmmsg slots + reassembly)
  mutable std::mutex mu_;  // guards nodes_/channels_ (setup/teardown + the
                           // cold send-lookup path)
  std::unordered_map<NodeId, std::unique_ptr<Node>> nodes_;
  std::vector<std::pair<NodeId, std::shared_ptr<TxChannel>>> channels_;
  int fallback_send_fd_ = -1;
  std::unique_ptr<TxRing> fallback_ring_;  // never-attached senders
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> tx_lookup_locks_{0};
  std::atomic<std::uint32_t> next_msg_id_{1};
};

}  // namespace locs::net
