#include "net/sim_network.hpp"

#include <algorithm>
#include <cmath>

namespace locs::net {

void SimNetwork::send(NodeId from, NodeId to, PooledBuffer bytes) {
  ++messages_sent_;
  bytes_sent_ += bytes.size();
  if (drop_fn_ && drop_fn_(from, to)) {
    ++messages_dropped_;
    return;
  }
  if (!down_nodes_.empty() &&
      (down_nodes_.count(from) > 0 || down_nodes_.count(to) > 0)) {
    ++messages_dropped_;
    return;
  }
  // Per-link fault model (fault decisions draw from fault_rng_ ONLY, so the
  // main latency-jitter stream is untouched by installed faults).
  const LinkFault* fault = nullptr;
  if (!link_faults_.empty()) {
    const auto it = link_faults_.find({from.value, to.value});
    if (it != link_faults_.end()) fault = &it->second;
  }
  if (fault != nullptr && fault->drop_prob > 0.0 &&
      fault_rng_.bernoulli(fault->drop_prob)) {
    ++messages_dropped_;
    return;
  }
  if (opts_.loss_prob > 0.0 && rng_.bernoulli(opts_.loss_prob)) {
    ++messages_dropped_;
    return;
  }
  double latency = static_cast<double>(opts_.base_latency) +
                   static_cast<double>(opts_.per_kilobyte) *
                       (static_cast<double>(bytes.size()) / 1024.0);
  if (opts_.jitter_frac > 0.0) {
    latency *= 1.0 + opts_.jitter_frac * (2.0 * rng_.next_double() - 1.0);
  }
  double faulted = latency;
  if (fault != nullptr) {
    faulted += static_cast<double>(fault->extra_delay);
    if (fault->jitter_frac > 0.0) {
      faulted *= 1.0 + fault->jitter_frac * (2.0 * fault_rng_.next_double() - 1.0);
    }
  }
  const auto delay = static_cast<Duration>(std::llround(std::max(faulted, 0.0)));
  if (fault != nullptr && fault->dup_prob > 0.0 &&
      fault_rng_.bernoulli(fault->dup_prob)) {
    // Duplicate delivery: an independently delayed unpooled copy (the
    // original keeps its pooled buffer; the copy frees on delivery).
    const double dup_latency =
        faulted * (1.0 + fault_rng_.next_double());  // lands at or after
    enqueue(from, to, PooledBuffer(wire::Buffer(*bytes)),
            static_cast<Duration>(std::llround(std::max(dup_latency, 0.0))));
  }
  enqueue(from, to, std::move(bytes), delay);
}

void SimNetwork::enqueue(NodeId from, NodeId to, PooledBuffer bytes,
                         Duration delay) {
  queue_.push_back(Event{clock_.now() + delay, seq_++, from, to, std::move(bytes)});
  std::push_heap(queue_.begin(), queue_.end(), Later{});
}

bool SimNetwork::step() {
  if (queue_.empty()) return false;
  std::pop_heap(queue_.begin(), queue_.end(), Later{});
  Event ev = std::move(queue_.back());
  queue_.pop_back();
  if (ev.at > clock_.now()) clock_.set(ev.at);
  if (tracer_) tracer_(ev.at, ev.from, ev.to, *ev.bytes);
  const auto it = handlers_.find(ev.to);
  if (it != handlers_.end() && it->second) {
    // Deliver with the pooled event buffer as backing: a handler that pins
    // the datagram (Datagram::take) steals the handle zero-copy, and the
    // buffer returns to its pool whenever the pin is released. Untaken
    // buffers recycle right below, exactly as before -- delivery order,
    // bytes and timing are unchanged either way.
    const Datagram dg(ev.bytes.data(), ev.bytes.size(), &ev.bytes);
    it->second(dg);
  }
  // `ev.bytes` (unless taken) returns to the pool here, ready for the next
  // send.
  return true;
}

std::size_t SimNetwork::run_until_idle(std::size_t max_events) {
  std::size_t delivered = 0;
  while (delivered < max_events && step()) ++delivered;
  return delivered;
}

std::size_t SimNetwork::run_until(TimePoint deadline) {
  std::size_t delivered = 0;
  while (!queue_.empty() && queue_.front().at <= deadline) {
    step();
    ++delivered;
  }
  if (clock_.now() < deadline) clock_.set(deadline);
  return delivered;
}

}  // namespace locs::net
