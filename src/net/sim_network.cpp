#include "net/sim_network.hpp"

#include <algorithm>
#include <cmath>

namespace locs::net {

void SimNetwork::send(NodeId from, NodeId to, PooledBuffer bytes) {
  ++messages_sent_;
  bytes_sent_ += bytes.size();
  if (drop_fn_ && drop_fn_(from, to)) {
    ++messages_dropped_;
    return;
  }
  if (opts_.loss_prob > 0.0 && rng_.bernoulli(opts_.loss_prob)) {
    ++messages_dropped_;
    return;
  }
  double latency = static_cast<double>(opts_.base_latency) +
                   static_cast<double>(opts_.per_kilobyte) *
                       (static_cast<double>(bytes.size()) / 1024.0);
  if (opts_.jitter_frac > 0.0) {
    latency *= 1.0 + opts_.jitter_frac * (2.0 * rng_.next_double() - 1.0);
  }
  const auto delay = static_cast<Duration>(std::llround(std::max(latency, 0.0)));
  queue_.push_back(Event{clock_.now() + delay, seq_++, from, to, std::move(bytes)});
  std::push_heap(queue_.begin(), queue_.end(), Later{});
}

bool SimNetwork::step() {
  if (queue_.empty()) return false;
  std::pop_heap(queue_.begin(), queue_.end(), Later{});
  Event ev = std::move(queue_.back());
  queue_.pop_back();
  if (ev.at > clock_.now()) clock_.set(ev.at);
  if (tracer_) tracer_(ev.at, ev.from, ev.to, *ev.bytes);
  const auto it = handlers_.find(ev.to);
  if (it != handlers_.end() && it->second) {
    it->second(ev.bytes.data(), ev.bytes.size());
  }
  // `ev.bytes` returns to the pool here, ready for the next send.
  return true;
}

std::size_t SimNetwork::run_until_idle(std::size_t max_events) {
  std::size_t delivered = 0;
  while (delivered < max_events && step()) ++delivered;
  return delivered;
}

std::size_t SimNetwork::run_until(TimePoint deadline) {
  std::size_t delivered = 0;
  while (!queue_.empty() && queue_.front().at <= deadline) {
    step();
    ++delivered;
  }
  if (clock_.now() < deadline) clock_.set(deadline);
  return delivered;
}

}  // namespace locs::net
