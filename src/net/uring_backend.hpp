// io_uring transmit backend: the opt-in successor to TxRing's sendmmsg
// flush path (PR 6).
//
// A TxRing in uring mode still batches, corks and fragments exactly as
// before, but flush() no longer calls sendmmsg: each queued datagram
// becomes one IORING_OP_SENDMSG SQE (the fragments of one message chained
// with IOSQE_IO_LINK), submitted with a single io_uring_enter per flush --
// or with ZERO syscalls when the SQPOLL tier is on and the kernel's
// submission-poll thread is awake. Completions are reaped off the CQ ring;
// a CQE recycles the parked PooledBuffer back to its owning BufferPool once
// every fragment of the message has completed.
//
// Semantics are the sendmmsg path's, preserved deliberately:
//  * success CQE            -> Stats::datagrams_sent
//  * submit io_uring_enter  -> Stats::batches_flushed (so the bench's
//                              syscalls-per-datagram ratio stays derivable;
//                              ~0 under SQPOLL)
//  * CQE -EAGAIN/-ENOBUFS   -> one bounded POLLOUT wait per reap pass and a
//                              resubmit, under the same retry budget as the
//                              sendmmsg path; budget exhaustion is a counted
//                              drop (Stats::dropped), never a silent one
//  * other error CQE        -> drop exactly that datagram (poison datagrams
//                              cannot wedge the ring)
//
// The backend is built on raw io_uring_setup/enter/register syscalls plus
// <linux/io_uring.h> -- no liburing link dependency -- and is compiled out
// (every probe returns false, create() returns nullptr) when the kernel
// header is missing or the LOCS_IO_URING CMake knob is off. At runtime,
// kernel_supported() probes an actual ring once per process; setting the
// LOCS_NO_IO_URING environment variable forces the sendmmsg fallback even
// on capable kernels (read on every call so tests can flip it in-process).
//
// Threading: a backend belongs to exactly one TxRing and every method is
// called under that ring's mutex -- no internal locking.
#pragma once

#include <netinet/in.h>

#include <cstddef>
#include <cstdint>
#include <memory>

#include "net/buffer_pool.hpp"

namespace locs::net {

/// The backend's slice of TxRing::Stats, folded into the ring's totals by
/// TxRing::stats(). enter_syscalls maps onto batches_flushed; the uring_*
/// and sqpoll_* fields surface as the Stats extension of the same names.
struct UringTxStats {
  std::uint64_t datagrams_sent = 0;
  std::uint64_t enter_syscalls = 0;   // io_uring_enter calls (submit + wait)
  std::uint64_t eagain_retries = 0;   // POLLOUT waits on CQE -EAGAIN/-ENOBUFS
  std::uint64_t dropped = 0;          // retry budget exhausted / hard errors
  std::uint64_t sqes_submitted = 0;   // SQEs pushed (including resubmits)
  std::uint64_t cqes_reaped = 0;      // CQEs consumed
  std::uint64_t sqpoll_wakeups = 0;   // enter calls made only to wake SQPOLL
};

class UringBackend {
 public:
  /// In-flight table size: how many datagrams may sit between submit and
  /// CQE. Matches the ring size passed to io_uring_setup, so the CQ (2x)
  /// can never overflow.
  static constexpr std::size_t kInflight = 256;

  /// One queued datagram, described by the owning TxRing at flush time.
  /// `header` points at the ring slot's fragment-header scratch (copied
  /// into the backend's own in-flight entry, so the slot may be reused the
  /// moment submit() returns); `payload` points into the buffer parked
  /// under `park` and must stay valid until that parked ref completes.
  struct SendDesc {
    const std::uint8_t* header;
    std::size_t header_len;
    const sockaddr_in* dst;  // nullptr on connected sockets
    const std::uint8_t* payload;
    std::size_t payload_len;
    std::uint32_t park;
    bool link_next;  // this fragment chains to the next desc (IOSQE_IO_LINK)
  };

  /// True when the running kernel accepts io_uring_setup AND supports
  /// IORING_OP_SENDMSG (register-probe), and LOCS_NO_IO_URING is not set.
  static bool kernel_supported();
  /// True when, additionally, an IORING_SETUP_SQPOLL ring can be created
  /// (needs kernel >= 5.11 for unprivileged SQPOLL).
  static bool sqpoll_supported();

  /// Builds a backend transmitting on socket `fd` (not owned). Asks for the
  /// SQPOLL tier when `sqpoll` is set, silently degrading to a plain ring
  /// if the kernel refuses it. Returns nullptr when no ring can be set up
  /// at all -- the caller keeps the sendmmsg path, bit-for-bit.
  static std::unique_ptr<UringBackend> create(int fd, bool sqpoll);

  UringBackend(const UringBackend&) = delete;
  UringBackend& operator=(const UringBackend&) = delete;
  ~UringBackend();

  /// True when this ring runs the SQPOLL submission-poll tier.
  bool sqpoll() const;

  /// Mirrors TxRing::set_retry_budget: up to `polls` POLLOUT waits of
  /// `poll_timeout_ms` each per datagram before its drop is counted.
  void set_retry_budget(int polls, int poll_timeout_ms);

  /// Parks a message buffer until `refs` fragment completions release it
  /// (one ref per SendDesc naming the handle). Returns the park handle.
  std::uint32_t park(PooledBuffer buf, std::uint32_t refs);
  /// Stable payload pointer of a parked buffer (slot iovecs point here).
  const std::uint8_t* parked_data(std::uint32_t handle) const;

  /// Releases one fragment ref of a parked buffer without submitting it
  /// (the owning ring drops queued slots when its fd has been poisoned).
  void release_ref(std::uint32_t handle);

  /// Submits `count` descriptors as SENDMSG SQEs and reaps whatever has
  /// already completed. One io_uring_enter for the whole batch (none, bar a
  /// wakeup, under SQPOLL). When the in-flight table is exhausted the call
  /// waits under the retry budget, then counts further datagrams dropped.
  void submit(const SendDesc* descs, std::size_t count);

  /// Non-blocking completion sweep: reap CQEs, resubmit backpressured
  /// entries, recycle finished buffers. The TxRing flush path calls this
  /// even with nothing newly queued, so the owner's idle/poll-timeout
  /// safety net also drains SQ backlogs and stale completions.
  void reap();

  /// Teardown flush: submit everything pending and wait (bounded) until no
  /// datagram is in flight, so parked buffers recycle and counters are
  /// final before the socket fd is closed or the backend is destroyed.
  void drain();

  /// Counters slice; see UringTxStats.
  const UringTxStats& stats() const;

  /// Datagrams submitted and not yet completed (tests / drain logic).
  std::size_t in_flight() const;

 private:
  struct Impl;
  explicit UringBackend(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace locs::net
