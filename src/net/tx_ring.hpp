// Transmit ring: the send-side dual of the recvmmsg receive path.
//
// PR 5 made receiving syscall-efficient (one recvmmsg drains a whole batch
// into pooled slots); before this ring every SEND was still one sendmsg
// syscall. A TxRing enqueues outgoing messages -- fragmented into
// scatter/gather slots whose headers live in per-slot scratch, payload
// straight from the pooled buffer, zero copies -- and flushes them with ONE
// sendmmsg per batch of up to kSendBatch datagrams.
//
// Flush policy (same shape as core/update_coalescer.hpp):
//  * batch-full      -- kSendBatch slots queued,
//  * byte budget     -- kMaxBatchBytes pending,
//  * explicit flush()-- Transport::flush(NodeId) / Sender::flush(),
//  * uncork          -- the last uncork() of a cork window flushes,
//  * tick deadline   -- the owner's idle/poll-timeout path calls flush()
//                       (UdpNetwork's receive loop, LocationServer::tick).
// An UNCORKED ring flushes at the end of every enqueue, so request/reply
// latency is unchanged for plain sends -- a multi-fragment message goes out
// immediately, its fragments grouped into as few syscalls as the byte
// budget allows (one for anything up to kMaxBatchBytes).
//
// Backpressure: flushes use MSG_DONTWAIT. A partial sendmmsg resumes at the
// unsent tail; EAGAIN/ENOBUFS waits for POLLOUT under a bounded retry budget
// (counted in Stats::eagain_retries) and only then counts drops -- the old
// path's silent send_errors_ swallow is gone. Hard per-datagram errors skip
// exactly one slot so a poison datagram cannot wedge the ring.
//
// Ownership: enqueue() parks the PooledBuffer in the ring; the wire::Buffer
// heap storage is stable across the handle move, so slot iovecs stay valid
// until the flush that transmits them, after which buffers recycle into
// their pool. A message whose fragments straddle a mid-enqueue flush keeps
// its buffer parked until the tail fragments go out (mid_message_).
//
// Threading: every operation serializes on an internal mutex. That lock is
// PER-RING (per sender), uncontended on the hot path -- unlike the global
// transport mutex it replaces, which every send of every node used to take.
//
// io_uring delegation (opt-in; see net/uring_backend.hpp): with set_uring()
// the ring keeps ALL of the above -- slots, cork windows, byte budgets,
// fragment framing -- but flush_locked() hands the queued slots to a
// UringBackend as SENDMSG SQEs instead of calling sendmmsg, and buffers
// park in the backend's refcounted slab (released per fragment CQE) rather
// than in owned_. A flush with nothing queued still reaps the backend, so
// the owner's idle/poll-timeout safety net drains SQ backlogs too.
#pragma once

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <vector>

#include "net/buffer_pool.hpp"
#include "net/uring_backend.hpp"

namespace locs::net {

// Fragmentation wire format, shared by the transmit ring (framing) and
// UdpNetwork's receive path (reassembly):
//   [magic u16][msg_id u32][index u16][count u16], little-endian.
constexpr std::uint16_t kFragMagic = 0x4c53;  // "LS"
constexpr std::size_t kFragHeader = 10;
// Stay well below the 65507-byte UDP payload limit.
constexpr std::size_t kMaxFragPayload = 32 * 1024;

namespace frag {

inline void put_u16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

inline void put_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

inline std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

inline std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace frag

class TxRing {
 public:
  /// Datagrams per sendmmsg syscall (mirrors UdpNetwork::kRecvBatch).
  static constexpr std::size_t kSendBatch = 16;
  /// Pending-byte budget: flush early when queued payload crosses this, so
  /// corked bursts of large fragments don't sit on half a megabyte.
  static constexpr std::size_t kMaxBatchBytes = 64 * 1024;

  struct Stats {
    std::uint64_t datagrams_sent = 0;
    // Send syscalls: sendmmsg calls that sent >= 1, or -- in uring mode --
    // io_uring_enter calls (submits AND waits; ~0 under SQPOLL). Either
    // way, batches_flushed / datagrams_sent is the syscalls-per-datagram
    // ratio the send-path bench gates on.
    std::uint64_t batches_flushed = 0;
    std::uint64_t eagain_retries = 0;   // POLLOUT waits on EAGAIN/ENOBUFS
    std::uint64_t dropped = 0;          // backpressure budget / hard errors
    // io_uring backend only (all zero on the sendmmsg path):
    std::uint64_t uring_sqes = 0;       // SQEs submitted (incl. resubmits)
    std::uint64_t uring_cqes = 0;       // completions reaped
    std::uint64_t sqpoll_wakeups = 0;   // enters made only to wake SQPOLL

    void add(const Stats& o) {
      datagrams_sent += o.datagrams_sent;
      batches_flushed += o.batches_flushed;
      eagain_retries += o.eagain_retries;
      dropped += o.dropped;
      uring_sqes += o.uring_sqes;
      uring_cqes += o.uring_cqes;
      sqpoll_wakeups += o.sqpoll_wakeups;
    }
  };

  /// The ring writes to `fd` but does not own it; `msg_ids` is the
  /// transport-wide fragment-id source (shared so reassembly keys never
  /// collide across the rings of one process).
  TxRing(int fd, std::atomic<std::uint32_t>& msg_ids)
      : fd_(fd), msg_ids_(msg_ids) {}

  TxRing(const TxRing&) = delete;
  TxRing& operator=(const TxRing&) = delete;

  /// Switches the flush path to an io_uring backend (nullptr reverts to
  /// sendmmsg). Must be called before traffic: the two modes park buffers
  /// differently, so flipping mid-stream would strand parked refs.
  void set_uring(UringBackend* uring) {
    std::lock_guard<std::mutex> lock(mu_);
    uring_ = uring;
    if (uring_ != nullptr) {
      uring_->set_retry_budget(retry_polls_, retry_poll_timeout_ms_);
    }
  }

  /// True when flushes go through the io_uring backend.
  bool uring_active() const {
    std::lock_guard<std::mutex> lock(mu_);
    return uring_ != nullptr;
  }

  /// Datagrams submitted to the uring backend and not yet completed
  /// (always 0 on the sendmmsg path, whose flushes are synchronous).
  std::size_t uring_in_flight() const {
    std::lock_guard<std::mutex> lock(mu_);
    return uring_ != nullptr ? uring_->in_flight() : 0;
  }

  /// Teardown hook: set_fd(-1) makes every later enqueue/flush a counted
  /// drop instead of a write to a possibly recycled descriptor. In uring
  /// mode the poison first drains in-flight datagrams, so the caller may
  /// close the socket immediately after.
  void set_fd(int fd) {
    std::lock_guard<std::mutex> lock(mu_);
    if (uring_ != nullptr && fd < 0 && fd_ >= 0) {
      flush_locked();
      uring_->drain();
    }
    fd_ = fd;
  }

  /// Backpressure budget: up to `polls` POLLOUT waits of `poll_timeout_ms`
  /// each per flush before the unsent tail is dropped.
  void set_retry_budget(int polls, int poll_timeout_ms) {
    std::lock_guard<std::mutex> lock(mu_);
    retry_polls_ = polls;
    retry_poll_timeout_ms_ = poll_timeout_ms;
    if (uring_ != nullptr) {
      uring_->set_retry_budget(polls, poll_timeout_ms);
    }
  }

  /// Cork/uncork nest (receive-batch handling + a concurrent tick may
  /// overlap); the uncork that drops the depth to zero flushes.
  void cork() {
    std::lock_guard<std::mutex> lock(mu_);
    ++cork_depth_;
  }

  void uncork() {
    std::lock_guard<std::mutex> lock(mu_);
    if (cork_depth_ > 0) --cork_depth_;
    if (cork_depth_ == 0) flush_locked();
  }

  /// Unconditional flush, cork depth notwithstanding -- the explicit
  /// Transport::flush(NodeId) / tick-deadline path.
  void flush() {
    std::lock_guard<std::mutex> lock(mu_);
    flush_locked();
  }

  /// Flush AND wait until nothing is in flight (bounded). On the sendmmsg
  /// path this is flush() -- sends are synchronous; in uring mode it also
  /// drains outstanding CQEs so "on the wire or counted drop" holds before
  /// detach/teardown returns.
  void drain() {
    std::lock_guard<std::mutex> lock(mu_);
    flush_locked();
    if (uring_ != nullptr) uring_->drain();
  }

  /// Fragments `bytes` into ring slots addressed to `dst`. Flushes inline
  /// when uncorked, on batch-full, and on the byte budget.
  void enqueue(const sockaddr_in& dst, PooledBuffer bytes) {
    enqueue_impl(&dst, std::move(bytes));
  }

  /// Connected-socket form (no per-datagram address; tests drive this over
  /// AF_UNIX datagram pairs to exercise real EAGAIN backpressure).
  void enqueue(PooledBuffer bytes) { enqueue_impl(nullptr, std::move(bytes)); }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    Stats s = stats_;
    if (uring_ != nullptr) {
      // Fold the backend's slice in: enqueue-side drops live in stats_,
      // everything past flush_locked() is counted by the backend.
      const UringTxStats& u = uring_->stats();
      s.datagrams_sent += u.datagrams_sent;
      s.batches_flushed += u.enter_syscalls;
      s.eagain_retries += u.eagain_retries;
      s.dropped += u.dropped;
      s.uring_sqes += u.sqes_submitted;
      s.uring_cqes += u.cqes_reaped;
      s.sqpoll_wakeups += u.sqpoll_wakeups;
    }
    return s;
  }

  bool empty() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_ == 0;
  }

 private:
  struct Slot {
    std::uint8_t header[kFragHeader];
    sockaddr_in dst;
    bool has_dst = false;
    iovec iov[2];
    std::size_t iov_count = 1;
    std::size_t bytes = 0;
    // uring mode only: parked-buffer handle backing iov[1], and whether the
    // next slot is the next fragment of the same message (IOSQE_IO_LINK).
    std::uint32_t park = 0;
    bool link = false;
  };

  void enqueue_impl(const sockaddr_in* dst, PooledBuffer bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    if (fd_ < 0) {
      ++stats_.dropped;
      return;
    }
    // Park the buffer first: its heap storage is stable across the handle
    // move, so the slot iovecs built below stay valid until the flush that
    // transmits them. In uring mode the park lives in the backend's
    // refcounted slab (one ref per fragment, released per CQE) because the
    // buffer must survive until completion, not merely until submit.
    const std::size_t total = bytes.size();
    const std::size_t frag_count =
        total == 0 ? 1 : (total + kMaxFragPayload - 1) / kMaxFragPayload;
    const std::uint8_t* payload = nullptr;
    std::uint32_t park = 0;
    if (uring_ != nullptr) {
      park = uring_->park(std::move(bytes),
                          static_cast<std::uint32_t>(frag_count));
      payload = uring_->parked_data(park);
    } else {
      owned_.push_back(std::move(bytes));
      payload = owned_.back().data();
    }
    const std::uint32_t msg_id =
        msg_ids_.fetch_add(1, std::memory_order_relaxed);
    // Fragments of one message enqueue contiguously; when they outgrow the
    // remaining slots the ring flushes mid-message, keeping every parked
    // buffer alive (mid_message_) until the tail fragments have gone out.
    mid_message_ = true;
    for (std::size_t i = 0; i < frag_count; ++i) {
      if (count_ == kSendBatch || bytes_pending_ >= kMaxBatchBytes) {
        flush_locked();
      }
      Slot& slot = slots_[count_++];
      const std::size_t off = i * kMaxFragPayload;
      const std::size_t len = std::min(kMaxFragPayload, total - off);
      frag::put_u16(slot.header, kFragMagic);
      frag::put_u32(slot.header + 2, msg_id);
      frag::put_u16(slot.header + 6, static_cast<std::uint16_t>(i));
      frag::put_u16(slot.header + 8, static_cast<std::uint16_t>(frag_count));
      slot.iov[0] = {slot.header, kFragHeader};
      slot.iov_count = 1;
      if (len > 0) {
        slot.iov[1] = {const_cast<std::uint8_t*>(payload) + off, len};
        slot.iov_count = 2;
      }
      slot.has_dst = dst != nullptr;
      if (dst != nullptr) slot.dst = *dst;
      slot.bytes = kFragHeader + len;
      slot.park = park;
      slot.link = i + 1 < frag_count;
      bytes_pending_ += slot.bytes;
    }
    mid_message_ = false;
    if (cork_depth_ == 0 || count_ == kSendBatch ||
        bytes_pending_ >= kMaxBatchBytes) {
      flush_locked();
    }
  }

  void flush_locked() {
    if (uring_ != nullptr) {
      flush_uring();
      return;
    }
    if (count_ == 0) return;
    if (fd_ < 0) {
      stats_.dropped += count_;
      reset_pending();
      return;
    }
    std::size_t off = 0;
    int polls = 0;
    mmsghdr msgs[kSendBatch];
    while (off < count_) {
      const unsigned n = static_cast<unsigned>(count_ - off);
      for (unsigned i = 0; i < n; ++i) {
        Slot& slot = slots_[off + i];
        std::memset(&msgs[i], 0, sizeof msgs[i]);
        if (slot.has_dst) {
          msgs[i].msg_hdr.msg_name = &slot.dst;
          msgs[i].msg_hdr.msg_namelen = sizeof slot.dst;
        }
        msgs[i].msg_hdr.msg_iov = slot.iov;
        msgs[i].msg_hdr.msg_iovlen = slot.iov_count;
      }
      const int sent = ::sendmmsg(fd_, msgs, n, MSG_DONTWAIT);
      if (sent > 0) {
        ++stats_.batches_flushed;
        stats_.datagrams_sent += static_cast<std::uint64_t>(sent);
        off += static_cast<std::size_t>(sent);  // partial send: resume tail
        continue;
      }
      if (sent < 0 && errno == EINTR) continue;
      if (sent < 0 &&
          (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS)) {
        if (polls >= retry_polls_) {
          // Backpressure budget exhausted: drop the unsent tail, counted.
          stats_.dropped += count_ - off;
          break;
        }
        ++polls;
        ++stats_.eagain_retries;
        pollfd pfd{fd_, POLLOUT, 0};
        ::poll(&pfd, 1, retry_poll_timeout_ms_);
        continue;
      }
      // Hard per-datagram error (EBADF at teardown, EMSGSIZE, ...): skip
      // exactly one slot so a poison datagram cannot wedge the ring.
      ++stats_.dropped;
      ++off;
    }
    reset_pending();
  }

  // uring-mode flush: hand the queued slots to the backend as SENDMSG SQEs.
  // Cork windows, batch sizing and framing already happened in enqueue; the
  // backend owns everything from submission to buffer recycling.
  void flush_uring() {
    if (count_ == 0) {
      // Idle safety net (UdpNetwork's 50ms poll timeout, tick deadlines):
      // nothing newly queued, but the SQ backlog still needs submitting and
      // finished CQEs still need reaping.
      if (fd_ >= 0) uring_->reap();
      return;
    }
    if (fd_ < 0) {
      // Poisoned descriptor: counted drops, and the parked refs the queued
      // fragments held must come back so their buffers recycle.
      stats_.dropped += count_;
      for (std::size_t i = 0; i < count_; ++i) {
        uring_->release_ref(slots_[i].park);
      }
      count_ = 0;
      bytes_pending_ = 0;
      return;
    }
    UringBackend::SendDesc descs[kSendBatch];
    for (std::size_t i = 0; i < count_; ++i) {
      const Slot& slot = slots_[i];
      descs[i].header = slot.header;
      descs[i].header_len = kFragHeader;
      descs[i].dst = slot.has_dst ? &slot.dst : nullptr;
      descs[i].payload = slot.iov_count == 2
                             ? static_cast<const std::uint8_t*>(slot.iov[1].iov_base)
                             : nullptr;
      descs[i].payload_len = slot.iov_count == 2 ? slot.iov[1].iov_len : 0;
      descs[i].park = slot.park;
      descs[i].link_next = slot.link;
    }
    // A link chain cannot span flush batches (each submit is its own
    // submission window), so never leave the last desc dangling a link.
    descs[count_ - 1].link_next = false;
    uring_->submit(descs, count_);
    count_ = 0;
    bytes_pending_ = 0;
  }

  void reset_pending() {
    count_ = 0;
    bytes_pending_ = 0;
    // A mid-enqueue flush keeps the parked buffers: the message's remaining
    // fragments still point into them.
    if (!mid_message_) owned_.clear();
  }

  mutable std::mutex mu_;
  int fd_;
  std::atomic<std::uint32_t>& msg_ids_;
  UringBackend* uring_ = nullptr;  // not owned; nullptr = sendmmsg path
  Slot slots_[kSendBatch];
  std::size_t count_ = 0;
  std::size_t bytes_pending_ = 0;
  std::vector<PooledBuffer> owned_;
  bool mid_message_ = false;
  int cork_depth_ = 0;
  int retry_polls_ = 64;
  int retry_poll_timeout_ms_ = 5;
  Stats stats_;
};

}  // namespace locs::net
