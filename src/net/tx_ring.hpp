// Transmit ring: the send-side dual of the recvmmsg receive path.
//
// PR 5 made receiving syscall-efficient (one recvmmsg drains a whole batch
// into pooled slots); before this ring every SEND was still one sendmsg
// syscall. A TxRing enqueues outgoing messages -- fragmented into
// scatter/gather slots whose headers live in per-slot scratch, payload
// straight from the pooled buffer, zero copies -- and flushes them with ONE
// sendmmsg per batch of up to kSendBatch datagrams.
//
// Flush policy (same shape as core/update_coalescer.hpp):
//  * batch-full      -- kSendBatch slots queued,
//  * byte budget     -- kMaxBatchBytes pending,
//  * explicit flush()-- Transport::flush(NodeId) / Sender::flush(),
//  * uncork          -- the last uncork() of a cork window flushes,
//  * tick deadline   -- the owner's idle/poll-timeout path calls flush()
//                       (UdpNetwork's receive loop, LocationServer::tick).
// An UNCORKED ring flushes at the end of every enqueue, so request/reply
// latency is unchanged for plain sends -- a multi-fragment message goes out
// immediately, its fragments grouped into as few syscalls as the byte
// budget allows (one for anything up to kMaxBatchBytes).
//
// Backpressure: flushes use MSG_DONTWAIT. A partial sendmmsg resumes at the
// unsent tail; EAGAIN/ENOBUFS waits for POLLOUT under a bounded retry budget
// (counted in Stats::eagain_retries) and only then counts drops -- the old
// path's silent send_errors_ swallow is gone. Hard per-datagram errors skip
// exactly one slot so a poison datagram cannot wedge the ring.
//
// Ownership: enqueue() parks the PooledBuffer in the ring; the wire::Buffer
// heap storage is stable across the handle move, so slot iovecs stay valid
// until the flush that transmits them, after which buffers recycle into
// their pool. A message whose fragments straddle a mid-enqueue flush keeps
// its buffer parked until the tail fragments go out (mid_message_).
//
// Threading: every operation serializes on an internal mutex. That lock is
// PER-RING (per sender), uncontended on the hot path -- unlike the global
// transport mutex it replaces, which every send of every node used to take.
#pragma once

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <vector>

#include "net/buffer_pool.hpp"

namespace locs::net {

// Fragmentation wire format, shared by the transmit ring (framing) and
// UdpNetwork's receive path (reassembly):
//   [magic u16][msg_id u32][index u16][count u16], little-endian.
constexpr std::uint16_t kFragMagic = 0x4c53;  // "LS"
constexpr std::size_t kFragHeader = 10;
// Stay well below the 65507-byte UDP payload limit.
constexpr std::size_t kMaxFragPayload = 32 * 1024;

namespace frag {

inline void put_u16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

inline void put_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

inline std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

inline std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace frag

class TxRing {
 public:
  /// Datagrams per sendmmsg syscall (mirrors UdpNetwork::kRecvBatch).
  static constexpr std::size_t kSendBatch = 16;
  /// Pending-byte budget: flush early when queued payload crosses this, so
  /// corked bursts of large fragments don't sit on half a megabyte.
  static constexpr std::size_t kMaxBatchBytes = 64 * 1024;

  struct Stats {
    std::uint64_t datagrams_sent = 0;
    std::uint64_t batches_flushed = 0;  // sendmmsg syscalls that sent >= 1
    std::uint64_t eagain_retries = 0;   // POLLOUT waits on EAGAIN/ENOBUFS
    std::uint64_t dropped = 0;          // backpressure budget / hard errors

    void add(const Stats& o) {
      datagrams_sent += o.datagrams_sent;
      batches_flushed += o.batches_flushed;
      eagain_retries += o.eagain_retries;
      dropped += o.dropped;
    }
  };

  /// The ring writes to `fd` but does not own it; `msg_ids` is the
  /// transport-wide fragment-id source (shared so reassembly keys never
  /// collide across the rings of one process).
  TxRing(int fd, std::atomic<std::uint32_t>& msg_ids)
      : fd_(fd), msg_ids_(msg_ids) {}

  TxRing(const TxRing&) = delete;
  TxRing& operator=(const TxRing&) = delete;

  /// Teardown hook: set_fd(-1) makes every later enqueue/flush a counted
  /// drop instead of a write to a possibly recycled descriptor.
  void set_fd(int fd) {
    std::lock_guard<std::mutex> lock(mu_);
    fd_ = fd;
  }

  /// Backpressure budget: up to `polls` POLLOUT waits of `poll_timeout_ms`
  /// each per flush before the unsent tail is dropped.
  void set_retry_budget(int polls, int poll_timeout_ms) {
    std::lock_guard<std::mutex> lock(mu_);
    retry_polls_ = polls;
    retry_poll_timeout_ms_ = poll_timeout_ms;
  }

  /// Cork/uncork nest (receive-batch handling + a concurrent tick may
  /// overlap); the uncork that drops the depth to zero flushes.
  void cork() {
    std::lock_guard<std::mutex> lock(mu_);
    ++cork_depth_;
  }

  void uncork() {
    std::lock_guard<std::mutex> lock(mu_);
    if (cork_depth_ > 0) --cork_depth_;
    if (cork_depth_ == 0) flush_locked();
  }

  /// Unconditional flush, cork depth notwithstanding -- the explicit
  /// Transport::flush(NodeId) / tick-deadline path.
  void flush() {
    std::lock_guard<std::mutex> lock(mu_);
    flush_locked();
  }

  /// Fragments `bytes` into ring slots addressed to `dst`. Flushes inline
  /// when uncorked, on batch-full, and on the byte budget.
  void enqueue(const sockaddr_in& dst, PooledBuffer bytes) {
    enqueue_impl(&dst, std::move(bytes));
  }

  /// Connected-socket form (no per-datagram address; tests drive this over
  /// AF_UNIX datagram pairs to exercise real EAGAIN backpressure).
  void enqueue(PooledBuffer bytes) { enqueue_impl(nullptr, std::move(bytes)); }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  bool empty() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_ == 0;
  }

 private:
  struct Slot {
    std::uint8_t header[kFragHeader];
    sockaddr_in dst;
    bool has_dst = false;
    iovec iov[2];
    std::size_t iov_count = 1;
    std::size_t bytes = 0;
  };

  void enqueue_impl(const sockaddr_in* dst, PooledBuffer bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    if (fd_ < 0) {
      ++stats_.dropped;
      return;
    }
    // Park the buffer first: its heap storage is stable across the handle
    // move, so the slot iovecs built below stay valid until the flush that
    // transmits them.
    owned_.push_back(std::move(bytes));
    const PooledBuffer& buf = owned_.back();
    const std::size_t total = buf.size();
    const std::size_t frag_count =
        total == 0 ? 1 : (total + kMaxFragPayload - 1) / kMaxFragPayload;
    const std::uint32_t msg_id =
        msg_ids_.fetch_add(1, std::memory_order_relaxed);
    // Fragments of one message enqueue contiguously; when they outgrow the
    // remaining slots the ring flushes mid-message, keeping every parked
    // buffer alive (mid_message_) until the tail fragments have gone out.
    mid_message_ = true;
    for (std::size_t i = 0; i < frag_count; ++i) {
      if (count_ == kSendBatch || bytes_pending_ >= kMaxBatchBytes) {
        flush_locked();
      }
      Slot& slot = slots_[count_++];
      const std::size_t off = i * kMaxFragPayload;
      const std::size_t len = std::min(kMaxFragPayload, total - off);
      frag::put_u16(slot.header, kFragMagic);
      frag::put_u32(slot.header + 2, msg_id);
      frag::put_u16(slot.header + 6, static_cast<std::uint16_t>(i));
      frag::put_u16(slot.header + 8, static_cast<std::uint16_t>(frag_count));
      slot.iov[0] = {slot.header, kFragHeader};
      slot.iov_count = 1;
      if (len > 0) {
        slot.iov[1] = {const_cast<std::uint8_t*>(buf.data()) + off, len};
        slot.iov_count = 2;
      }
      slot.has_dst = dst != nullptr;
      if (dst != nullptr) slot.dst = *dst;
      slot.bytes = kFragHeader + len;
      bytes_pending_ += slot.bytes;
    }
    mid_message_ = false;
    if (cork_depth_ == 0 || count_ == kSendBatch ||
        bytes_pending_ >= kMaxBatchBytes) {
      flush_locked();
    }
  }

  void flush_locked() {
    if (count_ == 0) return;
    if (fd_ < 0) {
      stats_.dropped += count_;
      reset_pending();
      return;
    }
    std::size_t off = 0;
    int polls = 0;
    mmsghdr msgs[kSendBatch];
    while (off < count_) {
      const unsigned n = static_cast<unsigned>(count_ - off);
      for (unsigned i = 0; i < n; ++i) {
        Slot& slot = slots_[off + i];
        std::memset(&msgs[i], 0, sizeof msgs[i]);
        if (slot.has_dst) {
          msgs[i].msg_hdr.msg_name = &slot.dst;
          msgs[i].msg_hdr.msg_namelen = sizeof slot.dst;
        }
        msgs[i].msg_hdr.msg_iov = slot.iov;
        msgs[i].msg_hdr.msg_iovlen = slot.iov_count;
      }
      const int sent = ::sendmmsg(fd_, msgs, n, MSG_DONTWAIT);
      if (sent > 0) {
        ++stats_.batches_flushed;
        stats_.datagrams_sent += static_cast<std::uint64_t>(sent);
        off += static_cast<std::size_t>(sent);  // partial send: resume tail
        continue;
      }
      if (sent < 0 && errno == EINTR) continue;
      if (sent < 0 &&
          (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS)) {
        if (polls >= retry_polls_) {
          // Backpressure budget exhausted: drop the unsent tail, counted.
          stats_.dropped += count_ - off;
          break;
        }
        ++polls;
        ++stats_.eagain_retries;
        pollfd pfd{fd_, POLLOUT, 0};
        ::poll(&pfd, 1, retry_poll_timeout_ms_);
        continue;
      }
      // Hard per-datagram error (EBADF at teardown, EMSGSIZE, ...): skip
      // exactly one slot so a poison datagram cannot wedge the ring.
      ++stats_.dropped;
      ++off;
    }
    reset_pending();
  }

  void reset_pending() {
    count_ = 0;
    bytes_pending_ = 0;
    // A mid-enqueue flush keeps the parked buffers: the message's remaining
    // fragments still point into them.
    if (!mid_message_) owned_.clear();
  }

  mutable std::mutex mu_;
  int fd_;
  std::atomic<std::uint32_t>& msg_ids_;
  Slot slots_[kSendBatch];
  std::size_t count_ = 0;
  std::size_t bytes_pending_ = 0;
  std::vector<PooledBuffer> owned_;
  bool mid_message_ = false;
  int cork_depth_ = 0;
  int retry_polls_ = 64;
  int retry_poll_timeout_ms_ = 5;
  Stats stats_;
};

}  // namespace locs::net
