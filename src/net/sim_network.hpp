// Deterministic in-process network simulation.
//
// Messages are serialized through the real wire codec, delayed by a
// configurable latency model (base + per-byte + jitter), optionally dropped
// or blocked (failure injection), and delivered in virtual time from a
// single event queue. Identical seeds yield identical executions; buffer
// pooling recycles payloads after delivery and is trace-invariant (the
// determinism tests compare pooled vs unpooled runs byte for byte).
//
// Fault injection (sim/fault.hpp drives this): per-link drop / duplicate /
// delay / jitter knobs and whole-node blackouts. All fault randomness draws
// from a DEDICATED rng stream, so installing a fault on one link never
// perturbs the latency jitter of the others -- and with no faults installed
// the delivery path performs no extra rng draws, keeping no-fault traces
// bit-identical to fault-free builds.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "net/transport.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace locs::net {

class SimNetwork : public Transport {
 public:
  struct Options {
    Duration base_latency = microseconds(250);  // one-way LAN-ish latency
    Duration per_kilobyte = microseconds(80);   // ~100 Mbit/s serialization
    double jitter_frac = 0.1;                   // +/- fraction of the latency
    double loss_prob = 0.0;
    std::uint64_t seed = 42;
  };

  SimNetwork() : SimNetwork(Options{}) {}
  explicit SimNetwork(Options opts)
      : opts_(opts),
        rng_(opts.seed),
        fault_rng_(opts.seed ^ 0x9e3779b97f4a7c15ULL) {}

  using Transport::attach;
  void attach(NodeId node, DatagramHandler handler) override {
    handlers_[node] = std::move(handler);
  }

  /// Queued messages addressed to a detached node are dropped at delivery.
  void detach(NodeId node) override { handlers_.erase(node); }

  using Transport::send;
  void send(NodeId from, NodeId to, PooledBuffer bytes) override;

  /// Delivers the next pending message (advancing virtual time). Returns
  /// false if the queue is empty. The delivered payload returns to the
  /// buffer pool afterwards.
  bool step();

  /// Runs until no messages are pending (or `max_events` deliveries).
  /// Returns the number of messages delivered.
  std::size_t run_until_idle(std::size_t max_events = SIZE_MAX);

  /// Runs until virtual time reaches `deadline` (messages scheduled later
  /// stay queued).
  std::size_t run_until(TimePoint deadline);

  ManualClock& clock() { return clock_; }
  const ManualClock& clock() const { return clock_; }
  TimePoint now() const { return clock_.now(); }

  /// Failure injection: return true to drop the message.
  using DropFn = std::function<bool(NodeId from, NodeId to)>;
  void set_drop_fn(DropFn fn) { drop_fn_ = std::move(fn); }

  /// Per-link fault knobs (fault subsystem; see the header note).
  struct LinkFault {
    double drop_prob = 0.0;  // lose the datagram
    double dup_prob = 0.0;   // deliver a second, independently delayed copy
    Duration extra_delay = 0;  // fixed skew (reorders vs other links)
    double jitter_frac = 0.0;  // extra +/- latency fraction on this link
  };
  void set_link_fault(NodeId from, NodeId to, LinkFault fault) {
    link_faults_[{from.value, to.value}] = fault;
  }
  void clear_link_fault(NodeId from, NodeId to) {
    link_faults_.erase({from.value, to.value});
  }

  /// Transport-level blackout: while down, every datagram to or from the
  /// node is dropped (counted in messages_dropped). Crash emulation pairs
  /// this with destroying the reactor (core::Deployment::crash).
  void set_node_down(NodeId node, bool down) {
    if (down) {
      down_nodes_.insert(node);
    } else {
      down_nodes_.erase(node);
    }
  }
  bool node_down(NodeId node) const { return down_nodes_.count(node) > 0; }

  /// Observer for every delivered message (Fig-6 hop tracing in tests).
  using Tracer =
      std::function<void(TimePoint at, NodeId from, NodeId to, const wire::Buffer&)>;
  void set_tracer(Tracer t) { tracer_ = std::move(t); }

  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t messages_dropped() const { return messages_dropped_; }
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    TimePoint at;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    NodeId from, to;
    PooledBuffer bytes;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  /// Queues one delivery event after the fault/latency model ran.
  void enqueue(NodeId from, NodeId to, PooledBuffer bytes, Duration delay);

  Options opts_;
  Rng rng_;
  Rng fault_rng_;  // dedicated stream for fault decisions (see header)
  ManualClock clock_;
  // Binary heap over a plain vector (std::push_heap/pop_heap) instead of
  // std::priority_queue: the top event can be MOVED out (priority_queue::top
  // is const&, forcing a payload copy), and the vector's capacity is reused
  // across the run -- both matter on the zero-allocation delivery path.
  std::vector<Event> queue_;
  std::unordered_map<NodeId, DatagramHandler> handlers_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, LinkFault> link_faults_;
  std::unordered_set<NodeId> down_nodes_;
  DropFn drop_fn_;
  Tracer tracer_;
  std::uint64_t seq_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t messages_dropped_ = 0;
};

}  // namespace locs::net
