// Transport abstraction.
//
// Location servers and clients are message reactors: they receive a datagram
// (handler callback) and may send datagrams in response. The same server
// code runs over two transports:
//   * SimNetwork  -- deterministic in-process delivery in virtual time
//                    (tests, latency ablations),
//   * UdpNetwork  -- real UDP sockets over loopback (the Table-2 benchmark,
//                    matching the paper's UDP prototype).
//
// Hot-path buffer ownership (see net/buffer_pool.hpp for the full rules):
// every transport owns a BufferPool. Senders acquire a recycled buffer with
// make_buffer(), encode into it, and pass the handle to send(); the
// transport returns the buffer to the pool once the datagram has been
// delivered (SimNetwork) or written to the socket (UdpNetwork). Steady-state
// send therefore allocates nothing.
//
// Send-side batching contract (cork / uncork / flush / open_sender):
// transports MAY defer sends to amortize syscalls (UdpNetwork queues them on
// per-sender transmit rings and writes sendmmsg batches; see net/tx_ring.hpp).
// The knobs all default to no-ops so SimNetwork keeps delivering inline --
// every existing simulated trace stays bit-identical:
//  * cork(from)/uncork(from) bracket a burst (a receive-batch's handler
//    replies, a tick's heartbeats): sends in between may queue, the last
//    uncork flushes. Calls nest and may overlap across threads.
//  * flush(from) unconditionally pushes everything still queued for that
//    sender to the wire. Reactor drive loops (LocationServer::tick, bench
//    drivers) call it so a deferred datagram never outlives the burst that
//    produced it; it is always safe to call and a no-op when nothing queues.
//    "To the wire" is backend-relative: UdpNetwork's opt-in io_uring mode
//    (Options::use_io_uring; net/uring_backend.hpp) turns flush into an SQE
//    submission whose completion is reaped asynchronously -- callers keep
//    the exact same cork/uncork/flush discipline, and teardown paths
//    (detach, stop) drain outstanding completions before returning.
//  * open_sender(from) returns a dedicated per-sender transmit channel
//    (Sender) when the transport supports one -- UdpNetwork hands out an
//    SO_REUSEPORT socket + private ring per call, which is what lets N shard
//    reactors behind one NodeId transmit with zero shared state -- or
//    nullptr (SimNetwork), in which case callers fall back to plain send().
//
// Receive-side borrow/lifetime contract: handler callbacks receive a
// Datagram -- a borrowed view into a transport-owned receive buffer that is
// only valid for the duration of the callback. Decoded views
// (wire::Reader::str()/bytes(), wire::SubResView items) inherit that
// lifetime. A handler that needs datagram bytes to OUTLIVE the callback --
// the entry server pinning sub-result payloads across a multi-datagram
// query merge -- calls Datagram::take(): when the transport delivered the
// datagram in a poolable buffer (SimNetwork events, UdpNetwork recvmmsg
// slots and reassembled messages) this is a zero-copy ownership transfer
// and every pointer into the datagram stays valid for the lifetime of the
// returned PooledBuffer; otherwise (SPSC inbox rings, raw injections) the
// bytes are copied into a fresh pooled buffer -- degrade to copy, never
// dangle. Both transports honor the same contract, so inline SimNetwork
// traces stay bit-identical to UDP behavior.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/buffer_pool.hpp"
#include "util/ids.hpp"
#include "wire/codec.hpp"
#include "wire/messages.hpp"

namespace locs::net {

/// One received datagram as presented to a handler: a borrowed view plus an
/// optional zero-copy ownership escape hatch (see the receive-side contract
/// in the header comment).
class Datagram {
 public:
  /// Borrow-only view (no backing buffer; take() degrades to a copy).
  Datagram(const std::uint8_t* data, std::size_t len)
      : data_(data), len_(len) {}
  /// View backed by a poolable receive buffer; take() may steal it.
  Datagram(const std::uint8_t* data, std::size_t len, PooledBuffer* backing)
      : data_(data), len_(len), backing_(backing) {}

  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return len_; }

  /// True while take() would be a zero-copy ownership transfer.
  bool zero_copy() const { return backing_ != nullptr; }

  struct Taken {
    PooledBuffer buf;                  // owns (at least) the datagram bytes
    const std::uint8_t* data = nullptr;  // the datagram within buf
  };

  /// Takes ownership of the datagram bytes. With a backing buffer this is a
  /// zero-copy transfer: the buffer handle moves out (only the FIRST take
  /// is zero-copy) and `Taken::data` equals data() -- every pointer into
  /// the datagram remains valid for the lifetime of Taken::buf. Without one
  /// the bytes are copied into a buffer from `fallback` and pointers must
  /// be rebased onto Taken::data. Either way the caller never dangles.
  Taken take(BufferPool& fallback) const {
    if (backing_ != nullptr) {
      Taken t{std::move(*backing_), data_};
      backing_ = nullptr;
      return t;
    }
    Taken t{PooledBuffer(&fallback, fallback.acquire()), nullptr};
    t.buf->assign(data_, data_ + len_);
    t.data = t.buf->data();
    return t;
  }

 private:
  const std::uint8_t* data_;
  std::size_t len_;
  mutable PooledBuffer* backing_ = nullptr;
};

/// Raw-bytes handler form (clients, tests): invoked with the datagram view;
/// the source node is inside the envelope.
using MessageHandler = std::function<void(const std::uint8_t* data, std::size_t len)>;

/// Full-contract handler form (server dispatch): receives the Datagram so
/// merge paths can pin the receive buffer (see header comment).
using DatagramHandler = std::function<void(const Datagram& dg)>;

/// A dedicated per-sender transmit channel (see Transport::open_sender).
/// send() consumes pooled envelopes exactly like Transport::send but
/// transmits them over the channel's private path (UdpNetwork: an
/// SO_REUSEPORT socket + TxRing owned by this channel alone), so concurrent
/// shard reactors never share send-side state. cork()/uncork() bracket a
/// burst; flush() pushes everything queued. Channels are NOT thread-safe
/// against each other's owner -- one reactor per channel.
class Sender {
 public:
  virtual ~Sender() = default;
  virtual void send(NodeId to, PooledBuffer bytes) = 0;
  virtual void flush() = 0;
  virtual void cork() {}
  virtual void uncork() {}
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Registers a node and its datagram handler.
  virtual void attach(NodeId node, DatagramHandler handler) = 0;

  /// Convenience overload for raw-bytes handlers (no pin support).
  void attach(NodeId node, MessageHandler handler) {
    attach(node, DatagramHandler([h = std::move(handler)](const Datagram& dg) {
             h(dg.data(), dg.size());
           }));
  }

  /// Unregisters a node's handler. After this returns, the handler is never
  /// invoked again (UdpNetwork waits for an in-flight callback to finish),
  /// so a reactor can safely detach itself before destruction. Must not be
  /// called concurrently with the transport's own teardown.
  virtual void detach(NodeId node) { (void)node; }

  /// Sends a datagram from `from` to `to`. Fire and forget (UDP semantics);
  /// the protocol layer owns retries/timeouts. Consumes the handle; the
  /// buffer is recycled into the pool after delivery.
  virtual void send(NodeId from, NodeId to, PooledBuffer bytes) = 0;

  /// Convenience overload for raw buffers (tests, cold paths); the buffer
  /// joins the pool after delivery.
  void send(NodeId from, NodeId to, wire::Buffer bytes) {
    send(from, to, PooledBuffer(&pool_, std::move(bytes)));
  }

  /// Begins a send burst for `from`: the transport may defer sends until the
  /// matching uncork() to batch syscalls. Nests; no-op by default (SimNetwork
  /// delivers inline, keeping simulated traces bit-identical).
  virtual void cork(NodeId /*from*/) {}
  /// Ends a burst; the uncork that closes the outermost cork flushes.
  virtual void uncork(NodeId /*from*/) {}
  /// Unconditionally pushes everything still queued for `from` to the wire
  /// (cork depth notwithstanding). Safe to call anytime; no-op when nothing
  /// is queued or the transport never defers.
  virtual void flush(NodeId /*from*/) {}
  /// Opens a dedicated transmit channel for `from`, or nullptr when the
  /// transport has no per-sender path (SimNetwork). Call after attach(from)
  /// so UdpNetwork can join the node's SO_REUSEPORT group; the transport
  /// keeps the channel's stats (and its socket) alive until teardown.
  virtual std::shared_ptr<Sender> open_sender(NodeId /*from*/) {
    return nullptr;
  }

  /// Acquires an empty recycled buffer to encode an outgoing message into.
  PooledBuffer make_buffer() { return PooledBuffer(&pool_, pool_.acquire()); }

  BufferPool& pool() { return pool_; }

  /// Pins an external pool (e.g. a shard's private send pool) to the
  /// transport's lifetime. In-flight PooledBuffers carry a raw pointer to
  /// their pool; the transport outlives every queued datagram (SimNetwork
  /// events, UDP sends), so adopting the pool here lets the reactor that
  /// created it be destroyed while its buffers are still queued. Call during
  /// setup only (not thread-safe against concurrent sends).
  void adopt_pool(std::shared_ptr<BufferPool> pool) {
    adopted_pools_.push_back(std::move(pool));
  }

 protected:
  BufferPool pool_;
  std::vector<std::shared_ptr<BufferPool>> adopted_pools_;
};

/// The canonical hot-path send used by every reactor: encodes `msg` into a
/// buffer recycled from `pool` (zero allocations in steady state) and sends
/// it. Concrete message types hit the per-type encode_envelope_into
/// overloads, skipping Message variant construction. Shard reactors pass
/// their private pool (no cross-shard contention on the free list); the
/// transport returns the buffer to that same pool after delivery.
template <typename M>
void send_message(Transport& net, BufferPool& pool, NodeId from, NodeId to,
                  const M& msg) {
  PooledBuffer buf(&pool, pool.acquire());
  wire::encode_envelope_into(*buf, from, msg);
  net.send(from, to, std::move(buf));
}

/// Convenience overload drawing from the transport's shared pool.
template <typename M>
void send_message(Transport& net, NodeId from, NodeId to, const M& msg) {
  send_message(net, net.pool(), from, to, msg);
}

}  // namespace locs::net
