// Transport abstraction.
//
// Location servers and clients are message reactors: they receive a datagram
// (handler callback) and may send datagrams in response. The same server
// code runs over two transports:
//   * SimNetwork  -- deterministic in-process delivery in virtual time
//                    (tests, latency ablations),
//   * UdpNetwork  -- real UDP sockets over loopback (the Table-2 benchmark,
//                    matching the paper's UDP prototype).
#pragma once

#include <cstdint>
#include <functional>

#include "util/ids.hpp"
#include "wire/codec.hpp"

namespace locs::net {

/// Invoked with the raw datagram; the source node is inside the envelope.
using MessageHandler = std::function<void(const std::uint8_t* data, std::size_t len)>;

class Transport {
 public:
  virtual ~Transport() = default;

  /// Registers a node and its datagram handler.
  virtual void attach(NodeId node, MessageHandler handler) = 0;

  /// Sends a datagram from `from` to `to`. Fire and forget (UDP semantics);
  /// the protocol layer owns retries/timeouts.
  virtual void send(NodeId from, NodeId to, wire::Buffer bytes) = 0;
};

}  // namespace locs::net
