// Buffer pool for the message hot path.
//
// Every datagram the location service sends is encoded into a wire::Buffer;
// under steady traffic that used to be one heap allocation per message on
// each side. BufferPool keeps a free list of retired buffers (capacity
// intact) so the encode -> send -> deliver -> recycle cycle allocates
// nothing once buffers have grown to their working size.
//
// Ownership rules:
//  * acquire() hands out an EMPTY buffer (cleared, capacity retained).
//  * A buffer travels inside a PooledBuffer handle; whoever holds the handle
//    owns the buffer. The transport consumes the handle in send(); when the
//    handle dies (after real or simulated delivery) the buffer returns to
//    the pool automatically.
//  * release() / handle destruction may run on any thread (UdpNetwork
//    receive threads send replies); the free list is mutex-guarded.
//  * A disabled pool (set_enabled(false)) degrades to plain allocation --
//    used by determinism tests to compare pooled vs unpooled traces.
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "wire/codec.hpp"

namespace locs::net {

class BufferPool {
 public:
  // Default bounds on pool memory under bursts; beyond these, releases
  // degrade to frees. 64 KiB comfortably covers every steady-state message
  // (UDP fragments are 32 KiB) while letting oversized result buffers die.
  static constexpr std::size_t kDefaultMaxFree = 4096;
  static constexpr std::size_t kDefaultMaxPooledCapacity = 64 * 1024;

  BufferPool() = default;

  /// Batch-aware sizing: a sender that coalesces many messages into one
  /// datagram (core/update_coalescer.hpp) retires buffers at its batch
  /// byte-budget, so it passes a capacity cap covering that budget (and
  /// typically a much smaller free-list bound -- a handful of in-flight
  /// batches, not thousands of singletons).
  BufferPool(std::size_t max_free, std::size_t max_pooled_capacity)
      : max_free_(max_free), max_pooled_capacity_(max_pooled_capacity) {}

  /// Returns an empty buffer, reusing a retired one when available.
  wire::Buffer acquire() {
    SpinGuard guard(lock_);
    ++acquired_;
    if (free_.empty()) return {};
    wire::Buffer b = std::move(free_.back());
    free_.pop_back();
    ++reused_;
    b.clear();
    return b;
  }

  /// Retires a buffer into the free list. Dropped (plain free) when the
  /// pool is disabled, already holds max_free buffers, or the buffer grew
  /// beyond max_pooled_capacity -- a burst of huge range results must not
  /// pin gigabytes of capacity behind the pool forever.
  void release(wire::Buffer&& b) {
    SpinGuard guard(lock_);
    if (!enabled_ || free_.size() >= max_free_ ||
        b.capacity() > max_pooled_capacity_) {
      return;
    }
    free_.push_back(std::move(b));
  }

  /// Pooling toggle; disabling also drops the current free list.
  void set_enabled(bool on) {
    SpinGuard guard(lock_);
    enabled_ = on;
    if (!on) free_.clear();
  }

  std::uint64_t acquired() const {
    SpinGuard guard(lock_);
    return acquired_;
  }
  std::uint64_t reused() const {
    SpinGuard guard(lock_);
    return reused_;
  }
  std::size_t free_count() const {
    SpinGuard guard(lock_);
    return free_.size();
  }

 private:
  // The critical sections are a handful of instructions, and on the
  // single-threaded SimNetwork hot path acquire/release run once per
  // message: an uncontended atomic-flag spinlock costs a few ns where a
  // std::mutex round trip costs tens.
  struct SpinGuard {
    explicit SpinGuard(std::atomic_flag& f) : flag(f) {
      while (flag.test_and_set(std::memory_order_acquire)) {
      }
    }
    ~SpinGuard() { flag.clear(std::memory_order_release); }
    std::atomic_flag& flag;
  };

  mutable std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
  std::size_t max_free_ = kDefaultMaxFree;
  std::size_t max_pooled_capacity_ = kDefaultMaxPooledCapacity;
  std::vector<wire::Buffer> free_;
  bool enabled_ = true;
  std::uint64_t acquired_ = 0;
  std::uint64_t reused_ = 0;
};

/// Move-only owning handle for a pooled buffer. Returns the buffer to its
/// pool on destruction; a handle without a pool (default-constructed or made
/// from a raw buffer) owns the buffer like a plain vector.
class PooledBuffer {
 public:
  PooledBuffer() = default;
  PooledBuffer(BufferPool* pool, wire::Buffer buf)
      : pool_(pool), buf_(std::move(buf)) {}
  explicit PooledBuffer(wire::Buffer buf) : buf_(std::move(buf)) {}

  PooledBuffer(PooledBuffer&& other) noexcept
      : pool_(std::exchange(other.pool_, nullptr)), buf_(std::move(other.buf_)) {}
  PooledBuffer& operator=(PooledBuffer&& other) noexcept {
    if (this != &other) {
      reset();
      pool_ = std::exchange(other.pool_, nullptr);
      buf_ = std::move(other.buf_);
    }
    return *this;
  }
  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;

  ~PooledBuffer() { reset(); }

  /// True while the handle still owns a pool-bound buffer. Moved-from (e.g.
  /// stolen via net::Datagram::take) and default-constructed handles are
  /// disarmed; the UDP receive loop uses this to re-provision stolen slots.
  bool armed() const { return pool_ != nullptr; }

  /// Returns the buffer to the pool (if any) and empties the handle.
  void reset() {
    if (pool_ != nullptr) {
      pool_->release(std::move(buf_));
      pool_ = nullptr;
    }
    buf_ = wire::Buffer{};
  }

  wire::Buffer& operator*() { return buf_; }
  const wire::Buffer& operator*() const { return buf_; }
  wire::Buffer* operator->() { return &buf_; }
  const wire::Buffer* operator->() const { return &buf_; }

  const std::uint8_t* data() const { return buf_.data(); }
  std::size_t size() const { return buf_.size(); }

 private:
  BufferPool* pool_ = nullptr;
  wire::Buffer buf_;
};

}  // namespace locs::net
