#!/usr/bin/env python3
"""Bench-regression gate: compare BENCH_*.json against committed baselines.

Usage:
    scripts/check_bench.py --build-dir build [--baseline-dir bench/baselines]
                           [--summary-file "$GITHUB_STEP_SUMMARY"]

Each baseline file under --baseline-dir describes one bench output:

    {
      "bench_file": "BENCH_batched.json",
      "checks": [
        {"metric": "leaf_datagram_ratio", "kind": "min_ratio",
         "baseline": 5.677, "tolerance": 0.15},
        {"metric": "batched_updates_per_sec", "kind": "min", "floor": 200000},
        {"metric": "updates_applied_equivalent", "kind": "equals",
         "expected": true}
      ]
    }

Check kinds:
  min_ratio -- fail if value < baseline * (1 - tolerance). Used for
               DETERMINISTIC metrics (message counts, datagram ratios,
               batching factors): any >15% regression is a real code change,
               not runner noise, so the default tolerance is 0.15.
  min       -- fail if value < floor. Used for wall-clock throughput, whose
               absolute value varies across runners; the floor is set
               conservatively low so it only catches order-of-magnitude
               collapses (a 1-core container and a 4-core CI runner must
               both pass the same committed baseline).
  max       -- fail if value > ceiling (lower-is-better metrics, e.g.
               allocations per message on the zero-alloc hot path).
  equals    -- fail if value != expected (booleans / exact counts).

Conditional checks (bands that only make sense on some hosts / configs):
  "min_cores": N  -- SKIP the check (visible notice, not a pass) when the
                     bench host had fewer than N cores. The host's core
                     count is read from the bench doc itself ("nproc", then
                     "host_cores" -- every bench records it at run time) and
                     falls back to os.cpu_count() for older outputs. Lets a
                     baseline gate e.g. a >= 1.2x sharding speedup that a
                     1-core container can never reach.
  "requires": "field" (or a list of fields) -- SKIP unless every named
                     field is truthy in the bench doc. Used for optional
                     backends: the io_uring rows only gate runs where the
                     bench actually engaged the backend ("uring_ran").

Skipped checks are listed in the stdout report and the markdown summary, so
a band that silently never runs is visible, not lost.

Exit status: 0 when every non-skipped check passes, 1 otherwise. A delta
summary is always printed to stdout (the CI job log) and, when
--summary-file is given, appended there as a markdown table
($GITHUB_STEP_SUMMARY).
"""

import argparse
import json
import os
import sys


def lookup(doc, dotted_path):
    """Resolves 'a.b.c' inside nested dicts."""
    node = doc
    for part in dotted_path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def host_cores(doc):
    """Core count of the machine that RAN the bench, from the bench doc
    ("nproc" preferred, "host_cores" the established field), falling back to
    this machine's count for outputs that predate core recording."""
    for field in ("nproc", "host_cores"):
        value = lookup(doc, field)
        if isinstance(value, int) and value > 0:
            return value
    return os.cpu_count() or 1


def skip_reason(check, doc):
    """Returns a human-readable reason to SKIP this check, or None to run
    it. See the module docstring: "min_cores" gates multi-core-only bands,
    "requires" gates optional backends on doc fields being truthy."""
    min_cores = check.get("min_cores")
    if min_cores is not None:
        cores = host_cores(doc)
        if cores < min_cores:
            return f"needs >= {min_cores} cores, bench host had {cores}"
    requires = check.get("requires", [])
    if isinstance(requires, str):
        requires = [requires]
    for field in requires:
        if not lookup(doc, field):
            return f"requires bench field {field!r} truthy"
    return None


def run_check(check, doc):
    """Returns (passed, detail_string, value)."""
    metric = check["metric"]
    value = lookup(doc, metric)
    if value is None:
        return False, "metric missing from bench output", None
    kind = check["kind"]
    if kind == "min_ratio":
        base = check["baseline"]
        tol = check.get("tolerance", 0.15)
        bar = base * (1.0 - tol)
        delta = (value - base) / base if base else 0.0
        detail = f"{value:g} vs baseline {base:g} ({delta:+.1%}, bar {bar:g})"
        return value >= bar, detail, value
    if kind == "min":
        floor = check["floor"]
        detail = f"{value:g} vs floor {floor:g}"
        return value >= floor, detail, value
    if kind == "max":
        ceiling = check["ceiling"]
        detail = f"{value:g} vs ceiling {ceiling:g}"
        return value <= ceiling, detail, value
    if kind == "equals":
        expected = check["expected"]
        detail = f"{value!r} vs expected {expected!r}"
        return value == expected, detail, value
    return False, f"unknown check kind {kind!r}", value


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build",
                        help="directory holding the BENCH_*.json outputs")
    parser.add_argument("--baseline-dir", default="bench/baselines",
                        help="directory holding the committed baseline specs")
    parser.add_argument("--summary-file", default=os.environ.get(
        "GITHUB_STEP_SUMMARY", ""),
        help="markdown summary sink (defaults to $GITHUB_STEP_SUMMARY)")
    parser.add_argument("--only", default="",
                        help="gate only baseline specs whose filename "
                             "contains this substring (e.g. 'send_path' in "
                             "the backend-specific CI jobs)")
    args = parser.parse_args()

    specs = sorted(
        f for f in os.listdir(args.baseline_dir)
        if f.endswith(".json") and args.only in f)
    if not specs:
        print(f"error: no baseline specs in {args.baseline_dir}"
              + (f" matching --only {args.only!r}" if args.only else ""))
        return 1

    rows = []
    failures = 0
    skips = 0
    for spec_name in specs:
        with open(os.path.join(args.baseline_dir, spec_name)) as f:
            spec = json.load(f)
        bench_path = os.path.join(args.build_dir, spec["bench_file"])
        if not os.path.exists(bench_path):
            print(f"FAIL {spec['bench_file']}: output missing "
                  f"(did the bench step run?)")
            rows.append((spec["bench_file"], "-", "output missing", "FAIL"))
            failures += 1
            continue
        with open(bench_path) as f:
            doc = json.load(f)
        for check in spec["checks"]:
            reason = skip_reason(check, doc)
            if reason is not None:
                print(f"SKIP {spec['bench_file']}: {check['metric']}: {reason}")
                rows.append((spec["bench_file"], check["metric"], reason,
                             "SKIP"))
                skips += 1
                continue
            passed, detail, _ = run_check(check, doc)
            status = "ok" if passed else "FAIL"
            print(f"{status:4} {spec['bench_file']}: {check['metric']}: {detail}")
            rows.append((spec["bench_file"], check["metric"], detail, status))
            if not passed:
                failures += 1

    print(f"\nbench gate: {len(rows) - failures - skips}/{len(rows)} checks "
          f"passed"
          + (f", {skips} skipped" if skips else "")
          + (f", {failures} FAILED" if failures else ""))

    if args.summary_file:
        with open(args.summary_file, "a") as f:
            f.write("## Bench regression gate\n\n")
            f.write("| bench | metric | delta | status |\n")
            f.write("|---|---|---|---|\n")
            for bench, metric, detail, status in rows:
                icon = {"ok": "✅", "SKIP": "⏭️"}.get(status, "❌")
                f.write(f"| {bench} | {metric} | {detail} | {icon} |\n")
            f.write("\n")

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
