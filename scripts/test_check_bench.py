#!/usr/bin/env python3
"""Unit tests for the bench-regression gate (scripts/check_bench.py).

Covers run_check() band boundaries for every check kind (min_ratio
tolerance bars, min collapse floors, max ceilings, equals invariants),
missing-metric and unknown-kind failure paths, and dotted-path lookup()
nesting. Run directly or via ctest (test_check_bench).
"""

import importlib.util
import os
import unittest

_SPEC = importlib.util.spec_from_file_location(
    "check_bench",
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "check_bench.py"))
check_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_bench)


class LookupTest(unittest.TestCase):
    def test_flat_key(self):
        self.assertEqual(check_bench.lookup({"a": 3}, "a"), 3)

    def test_nested_path(self):
        self.assertEqual(check_bench.lookup({"a": {"b": {"c": 7}}}, "a.b.c"), 7)

    def test_missing_key_returns_none(self):
        self.assertIsNone(check_bench.lookup({"a": 1}, "b"))

    def test_descending_into_scalar_returns_none(self):
        self.assertIsNone(check_bench.lookup({"a": 5}, "a.b"))


class MinRatioTest(unittest.TestCase):
    def check(self, value, baseline=10.0, tolerance=None):
        spec = {"metric": "m", "kind": "min_ratio", "baseline": baseline}
        if tolerance is not None:
            spec["tolerance"] = tolerance
        passed, detail, got = check_bench.run_check(spec, {"m": value})
        self.assertEqual(got, value, detail)
        return passed

    def test_value_at_baseline_passes(self):
        self.assertTrue(self.check(10.0))

    def test_value_above_baseline_passes(self):
        self.assertTrue(self.check(15.0))

    def test_default_tolerance_band_is_15_percent(self):
        self.assertTrue(self.check(8.5))     # exactly at the bar
        self.assertFalse(self.check(8.49))   # just below

    def test_explicit_tolerance_overrides_default(self):
        self.assertTrue(self.check(9.5, tolerance=0.05))
        self.assertFalse(self.check(9.49, tolerance=0.05))

    def test_zero_baseline_passes_nonnegative_value(self):
        # bar = 0: any value >= 0 passes, no division by zero in the delta.
        self.assertTrue(self.check(0.0, baseline=0.0))


class MinFloorTest(unittest.TestCase):
    def check(self, value, floor):
        spec = {"metric": "m", "kind": "min", "floor": floor}
        passed, _, _ = check_bench.run_check(spec, {"m": value})
        return passed

    def test_collapse_floor_boundaries(self):
        self.assertTrue(self.check(200000, 200000))
        self.assertTrue(self.check(200001, 200000))
        self.assertFalse(self.check(199999, 200000))


class MaxCeilingTest(unittest.TestCase):
    def check(self, value, ceiling):
        spec = {"metric": "m", "kind": "max", "ceiling": ceiling}
        passed, _, _ = check_bench.run_check(spec, {"m": value})
        return passed

    def test_ceiling_boundaries(self):
        self.assertTrue(self.check(1.5, 1.5))
        self.assertTrue(self.check(0.0, 1.5))
        self.assertFalse(self.check(1.51, 1.5))


class EqualsTest(unittest.TestCase):
    def check(self, value, expected):
        spec = {"metric": "m", "kind": "equals", "expected": expected}
        passed, _, _ = check_bench.run_check(spec, {"m": value})
        return passed

    def test_boolean_invariants(self):
        self.assertTrue(self.check(True, True))
        self.assertFalse(self.check(False, True))

    def test_exact_counts(self):
        self.assertTrue(self.check(48, 48))
        self.assertFalse(self.check(47, 48))


class FailurePathTest(unittest.TestCase):
    def test_missing_metric_fails_with_detail(self):
        spec = {"metric": "absent", "kind": "min", "floor": 1}
        passed, detail, value = check_bench.run_check(spec, {"m": 1})
        self.assertFalse(passed)
        self.assertIn("missing", detail)
        self.assertIsNone(value)

    def test_unknown_kind_fails(self):
        spec = {"metric": "m", "kind": "median"}
        passed, detail, _ = check_bench.run_check(spec, {"m": 1})
        self.assertFalse(passed)
        self.assertIn("unknown", detail)


if __name__ == "__main__":
    unittest.main()
