#!/usr/bin/env python3
"""Unit tests for the bench-regression gate (scripts/check_bench.py).

Covers run_check() band boundaries for every check kind (min_ratio
tolerance bars, min collapse floors, max ceilings, equals invariants),
missing-metric and unknown-kind failure paths, dotted-path lookup()
nesting, and the conditional-check skip logic (min_cores core gates with
nproc/host_cores resolution, `requires` backend gates). Run directly or
via ctest (test_check_bench).
"""

import importlib.util
import os
import unittest

_SPEC = importlib.util.spec_from_file_location(
    "check_bench",
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "check_bench.py"))
check_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_bench)


class LookupTest(unittest.TestCase):
    def test_flat_key(self):
        self.assertEqual(check_bench.lookup({"a": 3}, "a"), 3)

    def test_nested_path(self):
        self.assertEqual(check_bench.lookup({"a": {"b": {"c": 7}}}, "a.b.c"), 7)

    def test_missing_key_returns_none(self):
        self.assertIsNone(check_bench.lookup({"a": 1}, "b"))

    def test_descending_into_scalar_returns_none(self):
        self.assertIsNone(check_bench.lookup({"a": 5}, "a.b"))


class MinRatioTest(unittest.TestCase):
    def check(self, value, baseline=10.0, tolerance=None):
        spec = {"metric": "m", "kind": "min_ratio", "baseline": baseline}
        if tolerance is not None:
            spec["tolerance"] = tolerance
        passed, detail, got = check_bench.run_check(spec, {"m": value})
        self.assertEqual(got, value, detail)
        return passed

    def test_value_at_baseline_passes(self):
        self.assertTrue(self.check(10.0))

    def test_value_above_baseline_passes(self):
        self.assertTrue(self.check(15.0))

    def test_default_tolerance_band_is_15_percent(self):
        self.assertTrue(self.check(8.5))     # exactly at the bar
        self.assertFalse(self.check(8.49))   # just below

    def test_explicit_tolerance_overrides_default(self):
        self.assertTrue(self.check(9.5, tolerance=0.05))
        self.assertFalse(self.check(9.49, tolerance=0.05))

    def test_zero_baseline_passes_nonnegative_value(self):
        # bar = 0: any value >= 0 passes, no division by zero in the delta.
        self.assertTrue(self.check(0.0, baseline=0.0))


class MinFloorTest(unittest.TestCase):
    def check(self, value, floor):
        spec = {"metric": "m", "kind": "min", "floor": floor}
        passed, _, _ = check_bench.run_check(spec, {"m": value})
        return passed

    def test_collapse_floor_boundaries(self):
        self.assertTrue(self.check(200000, 200000))
        self.assertTrue(self.check(200001, 200000))
        self.assertFalse(self.check(199999, 200000))


class MaxCeilingTest(unittest.TestCase):
    def check(self, value, ceiling):
        spec = {"metric": "m", "kind": "max", "ceiling": ceiling}
        passed, _, _ = check_bench.run_check(spec, {"m": value})
        return passed

    def test_ceiling_boundaries(self):
        self.assertTrue(self.check(1.5, 1.5))
        self.assertTrue(self.check(0.0, 1.5))
        self.assertFalse(self.check(1.51, 1.5))


class EqualsTest(unittest.TestCase):
    def check(self, value, expected):
        spec = {"metric": "m", "kind": "equals", "expected": expected}
        passed, _, _ = check_bench.run_check(spec, {"m": value})
        return passed

    def test_boolean_invariants(self):
        self.assertTrue(self.check(True, True))
        self.assertFalse(self.check(False, True))

    def test_exact_counts(self):
        self.assertTrue(self.check(48, 48))
        self.assertFalse(self.check(47, 48))


class HostCoresTest(unittest.TestCase):
    def test_nproc_preferred_over_host_cores(self):
        self.assertEqual(
            check_bench.host_cores({"nproc": 8, "host_cores": 4}), 8)

    def test_host_cores_fallback(self):
        self.assertEqual(check_bench.host_cores({"host_cores": 4}), 4)

    def test_machine_fallback_when_doc_silent(self):
        self.assertEqual(check_bench.host_cores({}), os.cpu_count() or 1)

    def test_bogus_values_ignored(self):
        self.assertEqual(
            check_bench.host_cores({"nproc": 0, "host_cores": 2}), 2)


class SkipReasonTest(unittest.TestCase):
    def test_unconditional_check_runs(self):
        spec = {"metric": "m", "kind": "min", "floor": 1}
        self.assertIsNone(check_bench.skip_reason(spec, {"m": 5}))

    def test_min_cores_skips_small_hosts(self):
        spec = {"metric": "speedup", "kind": "min", "floor": 1.2,
                "min_cores": 4}
        reason = check_bench.skip_reason(spec, {"host_cores": 1})
        self.assertIsNotNone(reason)
        self.assertIn("4 cores", reason)
        self.assertIn("had 1", reason)

    def test_min_cores_runs_on_big_hosts(self):
        spec = {"metric": "speedup", "kind": "min", "floor": 1.2,
                "min_cores": 4}
        self.assertIsNone(check_bench.skip_reason(spec, {"host_cores": 4}))

    def test_requires_single_field(self):
        spec = {"metric": "m", "kind": "max", "ceiling": 0.01,
                "requires": "uring_ran"}
        self.assertIsNotNone(
            check_bench.skip_reason(spec, {"uring_ran": False}))
        self.assertIsNone(check_bench.skip_reason(spec, {"uring_ran": True}))

    def test_requires_missing_field_skips(self):
        spec = {"metric": "m", "kind": "max", "ceiling": 0.01,
                "requires": "uring_ran"}
        reason = check_bench.skip_reason(spec, {})
        self.assertIsNotNone(reason)
        self.assertIn("uring_ran", reason)

    def test_requires_list_needs_every_field(self):
        spec = {"metric": "m", "kind": "max", "ceiling": 0.01,
                "requires": ["uring_ran", "sqpoll_supported"]}
        doc = {"uring_ran": True, "sqpoll_supported": False}
        self.assertIsNotNone(check_bench.skip_reason(spec, doc))
        doc["sqpoll_supported"] = True
        self.assertIsNone(check_bench.skip_reason(spec, doc))

    def test_min_cores_and_requires_compose(self):
        spec = {"metric": "m", "kind": "min", "floor": 1, "min_cores": 2,
                "requires": "flag"}
        doc = {"nproc": 4, "flag": True}
        self.assertIsNone(check_bench.skip_reason(spec, doc))
        self.assertIsNotNone(
            check_bench.skip_reason(spec, {"nproc": 1, "flag": True}))


class FailurePathTest(unittest.TestCase):
    def test_missing_metric_fails_with_detail(self):
        spec = {"metric": "absent", "kind": "min", "floor": 1}
        passed, detail, value = check_bench.run_check(spec, {"m": 1})
        self.assertFalse(passed)
        self.assertIn("missing", detail)
        self.assertIsNone(value)

    def test_unknown_kind_fails(self):
        spec = {"metric": "m", "kind": "median"}
        passed, detail, _ = check_bench.run_check(spec, {"m": 1})
        self.assertFalse(passed)
        self.assertIn("unknown", detail)


if __name__ == "__main__":
    unittest.main()
