#!/usr/bin/env python3
"""Docs gate: keep README.md and docs/ consistent with the code.

Usage:
    scripts/check_docs.py [--repo-root .]

Checks, in order:

  links     -- every relative markdown link in README.md and docs/*.md
               resolves to an existing file or directory (anchors are
               stripped; http(s)/mailto links are skipped).
  msgtypes  -- docs/WIRE_PROTOCOL.md names every MsgType enumerator
               declared in src/wire/messages.hpp (completeness), and
               every `kSomething` identifier the doc mentions exists
               somewhere in src/wire/*.hpp (no stale names after a
               rename).

Exit status: 0 when every check passes, 1 otherwise; one line per
failure on stdout. Wired through ctest as test_check_docs and run by
the CI docs job, so a message-type rename or a moved file fails the
build instead of silently rotting the documentation.
"""

import argparse
import pathlib
import re
import sys

# [text](target) -- excluding images; target may carry a #fragment.
LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
# Lowercase-k constants as written in code and docs: kRegisterReq, kType...
KCONST_RE = re.compile(r"\bk[A-Z][A-Za-z0-9]*\b")
ENUM_RE = re.compile(r"enum\s+class\s+MsgType[^{]*\{(.*?)\};", re.DOTALL)


def iter_doc_files(root):
    yield root / "README.md"
    docs = root / "docs"
    if docs.is_dir():
        yield from sorted(docs.glob("*.md"))


def check_links(root):
    failures = []
    for doc in iter_doc_files(root):
        if not doc.is_file():
            failures.append(f"{doc.relative_to(root)}: file missing")
            continue
        text = doc.read_text(encoding="utf-8")
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (doc.parent / path).resolve()
            if not resolved.exists():
                failures.append(
                    f"{doc.relative_to(root)}: broken link -> {target}")
    return failures


def msg_type_enumerators(messages_hpp):
    """The MsgType enumerator names declared in src/wire/messages.hpp."""
    text = messages_hpp.read_text(encoding="utf-8")
    m = ENUM_RE.search(text)
    if m is None:
        return None
    body = re.sub(r"//[^\n]*", "", m.group(1))  # strip comments
    names = set()
    for entry in body.split(","):
        entry = entry.split("=")[0].strip()
        if entry:
            names.add(entry)
    return names


def check_msg_types(root):
    failures = []
    messages_hpp = root / "src" / "wire" / "messages.hpp"
    protocol_md = root / "docs" / "WIRE_PROTOCOL.md"
    if not messages_hpp.is_file():
        return [f"{messages_hpp.relative_to(root)}: file missing"]
    if not protocol_md.is_file():
        return [f"{protocol_md.relative_to(root)}: file missing"]

    enums = msg_type_enumerators(messages_hpp)
    if enums is None:
        return ["src/wire/messages.hpp: could not parse enum class MsgType"]

    # Every k-identifier declared anywhere in the wire headers is a valid
    # name for the doc to mention (MsgType values, version constants,
    # nested enum values like ReplicaTee::Op::kUpsert, kType members...).
    known = set()
    for header in sorted((root / "src" / "wire").glob("*.hpp")):
        known.update(KCONST_RE.findall(header.read_text(encoding="utf-8")))

    doc_names = set(KCONST_RE.findall(protocol_md.read_text(encoding="utf-8")))

    for missing in sorted(enums - doc_names):
        failures.append(
            f"docs/WIRE_PROTOCOL.md: MsgType::{missing} is not documented")
    for stale in sorted(doc_names - known):
        failures.append(
            f"docs/WIRE_PROTOCOL.md: names {stale}, which no longer exists "
            "in src/wire/*.hpp")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo-root", default=None,
                        help="repository root (default: this script's parent)")
    args = parser.parse_args()

    root = (pathlib.Path(args.repo_root).resolve() if args.repo_root
            else pathlib.Path(__file__).resolve().parent.parent)

    failures = check_links(root) + check_msg_types(root)
    for failure in failures:
        print(f"FAIL {failure}")
    if failures:
        print(f"check_docs: {len(failures)} failure(s)")
        return 1
    print("check_docs: all links resolve, all message types documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
