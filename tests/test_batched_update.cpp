// Batched update coalescing: end-to-end equivalence and edge cases.
//
//  * batched-vs-unbatched ANSWER equivalence over the deterministic
//    SimNetwork (the way test_sharded_server pins shard equivalence): the
//    same seeded workload -- bursty updates, cross-leaf jumps (handover in
//    the middle of a batch), all three query types -- must yield identical
//    answers with strictly fewer network datagrams,
//  * coalescer flush policies: size, byte budget, deadline, forced,
//  * sharded leaves: a batch straddling shard boundaries splits per owning
//    shard (and a single-shard batch forwards unchanged), equivalent to the
//    unsharded application,
//  * wire edge cases: empty batch, single-sighting batch (explicitly
//    distinct from a plain UpdateReq on the wire, same effect).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/local_service.hpp"
#include "core/sharded_location_server.hpp"
#include "core/update_coalescer.hpp"
#include "test_support.hpp"

namespace locs::test {
namespace {

using core::ShardedLocationServer;
using core::UpdateCoalescer;

// --------------------------------------------------------------------------
// end-to-end equivalence through LocalLocationService

struct ServiceObservation {
  std::vector<std::string> answers;
  std::uint64_t messages = 0;
  std::uint64_t updates_applied = 0;
};

std::string fmt_ld(const core::LocationDescriptor& ld) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "(%.6f,%.6f,%.3f)", ld.pos.x, ld.pos.y, ld.acc);
  return buf;
}

std::string fmt_results(std::vector<ObjectResult> rs) {
  std::sort(rs.begin(), rs.end(),
            [](const ObjectResult& a, const ObjectResult& b) {
              return a.oid < b.oid;
            });
  std::string out;
  for (const ObjectResult& r : rs) {
    out += std::to_string(r.oid.value) + fmt_ld(r.ld) + ";";
  }
  return out;
}

ServiceObservation run_service_workload(bool coalesce) {
  constexpr double kArea = 4000.0;
  constexpr std::size_t kObjects = 96;
  core::LocalLocationService::Config cfg;
  cfg.area = geo::Rect{{0, 0}, {kArea, kArea}};
  cfg.coalesce_updates = coalesce;
  cfg.coalescing.max_batch = 8;
  cfg.coalescing.max_delay = milliseconds(5);
  core::LocalLocationService ls(cfg);

  ServiceObservation obs;
  Rng rng(0xBA7C4);
  std::vector<geo::Point> pos(kObjects + 1);
  for (std::uint64_t i = 1; i <= kObjects; ++i) {
    pos[i] = {rng.uniform(10, kArea - 10), rng.uniform(10, kArea - 10)};
    const auto offered = ls.register_object(ObjectId{i}, pos[i], 5.0, {10.0, 100.0});
    EXPECT_TRUE(offered.ok()) << "object " << i;
  }

  std::vector<std::uint64_t> ids(kObjects);
  for (std::uint64_t i = 0; i < kObjects; ++i) ids[i] = i + 1;

  for (int round = 0; round < 5; ++round) {
    // Bursty feeds: one arrival window where a random subset of objects
    // reports once each (the gateway pattern) -- local jitter plus
    // occasional cross-leaf jumps, so some batches carry handover-triggering
    // sightings in the middle. Each object reports at most once per window:
    // an object whose handover is still in flight would drop a second
    // update, batched or not, but at different points in time.
    std::shuffle(ids.begin(), ids.end(), rng);
    for (int u = 0; u < 72; ++u) {
      const std::uint64_t oid = ids[static_cast<std::size_t>(u)];
      geo::Point next;
      if (u % 7 == 0) {
        next = {rng.uniform(10, kArea - 10), rng.uniform(10, kArea - 10)};
      } else {
        next = {std::clamp(pos[oid].x + rng.uniform(-60, 60), 10.0, kArea - 10),
                std::clamp(pos[oid].y + rng.uniform(-60, 60), 10.0, kArea - 10)};
      }
      pos[oid] = next;
      ls.feed_position(ObjectId{oid}, next);
    }
    // End of the arrival window: drain buffered batches, then query.
    ls.flush_updates();

    for (int q = 0; q < 10; ++q) {
      const std::uint64_t oid = 1 + rng.next_below(kObjects);
      const auto ld = ls.position(ObjectId{oid});
      obs.answers.push_back("pos:" + std::to_string(oid) + ":" +
                            (ld ? fmt_ld(*ld) : "miss"));
    }
    for (int q = 0; q < 4; ++q) {
      const geo::Point c{rng.uniform(100, kArea - 100), rng.uniform(100, kArea - 100)};
      const geo::Polygon area =
          geo::Polygon::from_rect(geo::Rect::from_center(c, 150 + 100 * q, 200));
      obs.answers.push_back(
          "range:" + fmt_results(ls.range_query(area, 50.0, 0.3)));
    }
    for (int q = 0; q < 3; ++q) {
      const geo::Point p{rng.uniform(0, kArea), rng.uniform(0, kArea)};
      const auto nn = ls.neighbor_query(p, 60.0, 30.0);
      obs.answers.push_back(
          "nn:" + (nn.found ? std::to_string(nn.nearest.oid.value) +
                                  fmt_ld(nn.nearest.ld) + "|" +
                                  fmt_results(nn.near_set)
                            : std::string("miss")));
    }
    ls.advance_time(seconds(1));
  }
  obs.messages = ls.network().messages_sent();
  obs.updates_applied = ls.deployment().total_stats().updates_applied;
  return obs;
}

TEST(BatchedUpdateEquivalence, AnswersMatchUnbatchedWithFewerDatagrams) {
  const ServiceObservation plain = run_service_workload(false);
  const ServiceObservation batched = run_service_workload(true);
  EXPECT_EQ(plain.answers, batched.answers);
  EXPECT_EQ(plain.updates_applied, batched.updates_applied);
  // Coalescing must strictly reduce the datagram count (updates dominate
  // this workload; acks are batched too).
  EXPECT_LT(batched.messages, plain.messages);
}

TEST(BatchedUpdateEquivalence, DeterministicAcrossRuns) {
  const ServiceObservation a = run_service_workload(true);
  const ServiceObservation b = run_service_workload(true);
  EXPECT_EQ(a.answers, b.answers);
  EXPECT_EQ(a.messages, b.messages);
}

// --------------------------------------------------------------------------
// coalescer flush policies (size / byte budget / deadline / forced)

struct CoalescerHarness {
  SimWorld w;
  NodeId leaf;
  std::unique_ptr<TrackedObject> obj;

  CoalescerHarness()
      : w(core::HierarchyBuilder::table2(geo::Rect{{0, 0}, {1000, 1000}})) {
    obj = w.register_object(ObjectId{1}, {100, 100});
    leaf = obj->agent();
  }

  core::Sighting sighting(double x, double y) const {
    return {ObjectId{1}, w.net.now(), {x, y}, 5.0};
  }
};

TEST(UpdateCoalescer, SizeFlush) {
  CoalescerHarness h;
  UpdateCoalescer::Options opts;
  opts.max_batch = 4;
  opts.max_delay = seconds(10);
  UpdateCoalescer c(h.w.client_node(), h.w.net, h.w.net.clock(), opts);
  const std::uint64_t before = h.w.net.messages_sent();
  for (int i = 0; i < 3; ++i) c.enqueue(h.leaf, h.sighting(100 + i, 100));
  EXPECT_EQ(h.w.net.messages_sent(), before);  // under every threshold
  EXPECT_EQ(c.pending_sightings(), 3u);
  c.enqueue(h.leaf, h.sighting(110, 100));  // 4th: size flush
  EXPECT_EQ(h.w.net.messages_sent(), before + 1);
  EXPECT_EQ(c.pending_sightings(), 0u);
  h.w.run();
  EXPECT_EQ(c.stats().flushes_size, 1u);
  EXPECT_EQ(c.stats().acks_received, 4u);
  EXPECT_EQ(h.w.deployment->total_stats().updates_applied, 4u);
  EXPECT_EQ(h.w.deployment->total_stats().update_batches, 1u);
}

TEST(UpdateCoalescer, ByteBudgetFlush) {
  CoalescerHarness h;
  UpdateCoalescer::Options opts;
  opts.max_batch = 1000;
  opts.max_bytes = 3 * 33;  // a packed sighting is at most ~33 bytes
  opts.max_delay = seconds(10);
  UpdateCoalescer c(h.w.client_node(), h.w.net, h.w.net.clock(), opts);
  const std::uint64_t before = h.w.net.messages_sent();
  for (int i = 0; i < 16 && h.w.net.messages_sent() == before; ++i) {
    c.enqueue(h.leaf, h.sighting(100 + i, 100));
  }
  EXPECT_EQ(h.w.net.messages_sent(), before + 1);
  EXPECT_EQ(c.stats().flushes_bytes, 1u);
  EXPECT_LE(c.stats().sightings_enqueued, 5u);  // budget bit long before 16
}

TEST(UpdateCoalescer, DeadlineFlush) {
  CoalescerHarness h;
  UpdateCoalescer::Options opts;
  opts.max_batch = 1000;
  opts.max_delay = milliseconds(5);
  UpdateCoalescer c(h.w.client_node(), h.w.net, h.w.net.clock(), opts);
  const std::uint64_t before = h.w.net.messages_sent();
  c.enqueue(h.leaf, h.sighting(120, 100));
  c.tick(h.w.net.now());  // deadline not reached yet
  EXPECT_EQ(h.w.net.messages_sent(), before);
  h.w.net.clock().advance(milliseconds(5));
  c.tick(h.w.net.now());
  EXPECT_EQ(h.w.net.messages_sent(), before + 1);
  EXPECT_EQ(c.stats().flushes_deadline, 1u);
}

TEST(UpdateCoalescer, ForcedFlushAndAgentChangeFanIn) {
  CoalescerHarness h;
  UpdateCoalescer::Options opts;
  opts.max_batch = 1000;
  opts.max_delay = seconds(10);
  UpdateCoalescer c(h.w.client_node(), h.w.net, h.w.net.clock(), opts);
  std::vector<std::pair<ObjectId, NodeId>> changes;
  c.set_on_agent_changed([&](ObjectId oid, NodeId agent, double) {
    changes.emplace_back(oid, agent);
  });
  // A sighting OUTSIDE the agent's quadrant triggers a handover; the
  // AgentChanged lands on the coalescer and fans back out.
  c.enqueue(h.leaf, h.sighting(900, 900));
  c.flush_all();
  EXPECT_EQ(c.stats().flushes_forced, 1u);
  h.w.run();
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].first, ObjectId{1});
  EXPECT_TRUE(changes[0].second.valid());
  EXPECT_NE(changes[0].second, h.leaf);
}

// --------------------------------------------------------------------------
// sharded leaves: per-shard batch splitting

/// Sends one raw BatchedUpdateReq from `src` to `leaf` and runs the network.
void send_batch(SimWorld& w, NodeId src, NodeId leaf,
                const wire::BatchedUpdateReq& batch) {
  w.net.send(src, leaf, wire::encode_envelope(src, wire::Message{batch}));
  w.run();
}

TEST(ShardedBatchSplit, BatchStraddlingShardBoundariesAppliesEverywhere) {
  constexpr std::uint32_t kShards = 4;
  core::Deployment::Config cfg;
  cfg.leaf_shards = kShards;
  SimWorld w(core::HierarchyBuilder::table2(geo::Rect{{0, 0}, {1000, 1000}}), cfg);

  std::vector<std::unique_ptr<TrackedObject>> objs;
  for (std::uint64_t i = 1; i <= 32; ++i) {
    objs.push_back(w.register_object(ObjectId{i}, {10.0 + i, 10.0 + i}));
  }
  const NodeId leaf = objs[0]->agent();
  ShardedLocationServer* sharded = w.deployment->sharded(leaf);
  ASSERT_NE(sharded, nullptr);

  // One batch touching every shard.
  wire::BatchedUpdateReq batch;
  std::vector<bool> shard_hit(kShards, false);
  for (std::uint64_t i = 1; i <= 32; ++i) {
    batch.append({ObjectId{i}, 1, {50.0 + i, 60.0 + i}, 5.0});
    shard_hit[ShardedLocationServer::shard_of(ObjectId{i}, kShards)] = true;
  }
  for (std::uint32_t s = 0; s < kShards; ++s) {
    ASSERT_TRUE(shard_hit[s]) << "test ids do not straddle every shard";
  }

  send_batch(w, w.client_node(), leaf, batch);

  // Every sighting landed, in its owning shard's slice.
  const core::LocationServer::Stats stats = sharded->stats();
  EXPECT_EQ(stats.updates_applied, 32u);
  EXPECT_EQ(stats.update_batches, kShards);  // one sub-batch per shard
  for (std::uint64_t i = 1; i <= 32; ++i) {
    const std::uint32_t owner = ShardedLocationServer::shard_of(ObjectId{i}, kShards);
    const store::SightingDb::Record* rec =
        sharded->shard(owner).sightings()->find(ObjectId{i});
    ASSERT_NE(rec, nullptr) << "object " << i;
    EXPECT_EQ(rec->sighting.pos, (geo::Point{50.0 + i, 60.0 + i}));
  }
}

TEST(ShardedBatchSplit, SingleShardBatchForwardsUnchanged) {
  constexpr std::uint32_t kShards = 4;
  core::Deployment::Config cfg;
  cfg.leaf_shards = kShards;
  SimWorld w(core::HierarchyBuilder::table2(geo::Rect{{0, 0}, {1000, 1000}}), cfg);

  // Pick object ids that all hash to one shard.
  std::vector<ObjectId> same_shard;
  const std::uint32_t target = ShardedLocationServer::shard_of(ObjectId{1}, kShards);
  for (std::uint64_t i = 1; same_shard.size() < 6; ++i) {
    if (ShardedLocationServer::shard_of(ObjectId{i}, kShards) == target) {
      same_shard.push_back(ObjectId{i});
    }
  }
  std::vector<std::unique_ptr<TrackedObject>> objs;
  for (const ObjectId oid : same_shard) {
    objs.push_back(w.register_object(oid, {20.0 + static_cast<double>(oid.value), 20}));
  }
  const NodeId leaf = objs[0]->agent();

  wire::BatchedUpdateReq batch;
  for (const ObjectId oid : same_shard) {
    batch.append({oid, 1, {40.0 + static_cast<double>(oid.value), 44}, 5.0});
  }
  send_batch(w, w.client_node(), leaf, batch);

  ShardedLocationServer* sharded = w.deployment->sharded(leaf);
  ASSERT_NE(sharded, nullptr);
  // Exactly one batch datagram reached exactly the owning shard.
  EXPECT_EQ(sharded->stats().update_batches, 1u);
  EXPECT_EQ(sharded->shard(target).stats().update_batches, 1u);
  EXPECT_EQ(sharded->stats().updates_applied, same_shard.size());
}

TEST(ShardedBatchSplit, ShardedMatchesUnshardedApplication) {
  for (const std::uint32_t shards : {1u, 4u}) {
    core::Deployment::Config cfg;
    cfg.leaf_shards = shards;
    SimWorld w(core::HierarchyBuilder::table2(geo::Rect{{0, 0}, {1000, 1000}}), cfg);
    std::vector<std::unique_ptr<TrackedObject>> objs;
    for (std::uint64_t i = 1; i <= 24; ++i) {
      objs.push_back(w.register_object(ObjectId{i}, {30.0 + i, 40.0}));
    }
    const NodeId leaf = objs[0]->agent();
    wire::BatchedUpdateReq batch;
    for (std::uint64_t i = 1; i <= 24; ++i) {
      batch.append({ObjectId{i}, 2, {90.0 + i, 77.0}, 5.0});
    }
    send_batch(w, w.client_node(), leaf, batch);
    // Identical application and identical positions regardless of sharding.
    for (std::uint64_t i = 1; i <= 24; ++i) {
      store::SightingDb::Record rec;
      ASSERT_TRUE(w.deployment->find_sighting(leaf, ObjectId{i}, rec))
          << "shards=" << shards << " object " << i;
      EXPECT_EQ(rec.sighting.pos, (geo::Point{90.0 + i, 77.0}));
    }
  }
}

// --------------------------------------------------------------------------
// wire edge cases against a live server

TEST(BatchedUpdateEdge, EmptyBatchIsHandledSilently) {
  SimWorld w(core::HierarchyBuilder::table2(geo::Rect{{0, 0}, {1000, 1000}}));
  auto obj = w.register_object(ObjectId{1}, {100, 100});
  const NodeId leaf = obj->agent();
  const std::uint64_t before = w.net.messages_sent();
  wire::BatchedUpdateReq empty;
  send_batch(w, w.client_node(), leaf, empty);
  const core::LocationServer::Stats stats = w.deployment->total_stats();
  EXPECT_EQ(stats.update_batches, 1u);
  EXPECT_EQ(stats.updates_applied, 0u);
  EXPECT_EQ(stats.decode_errors, 0u);
  // No ack for an empty batch: the only datagram was ours.
  EXPECT_EQ(w.net.messages_sent(), before + 1);
}

TEST(BatchedUpdateEdge, SingleSightingBatchIsDistinctButEquivalent) {
  const core::Sighting s{ObjectId{7}, 3, {120, 130}, 5.0};
  // Explicitly distinct on the wire from a plain UpdateReq (MsgType byte).
  wire::BatchedUpdateReq batch;
  batch.append(s);
  const wire::Buffer batch_wire = wire::encode_envelope(NodeId{5}, batch);
  const wire::Buffer plain_wire =
      wire::encode_envelope(NodeId{5}, wire::UpdateReq{s});
  EXPECT_NE(batch_wire, plain_wire);
  ASSERT_GT(batch_wire.size(), 2u);
  EXPECT_EQ(static_cast<wire::MsgType>(batch_wire[1]),
            wire::MsgType::kBatchedUpdateReq);
  EXPECT_EQ(static_cast<wire::MsgType>(plain_wire[1]), wire::MsgType::kUpdateReq);

  // ... and equivalent in effect: same sighting applied, one packed ack.
  SimWorld w(core::HierarchyBuilder::table2(geo::Rect{{0, 0}, {1000, 1000}}));
  auto obj = w.register_object(ObjectId{7}, {100, 100});
  const NodeId leaf = obj->agent();

  std::vector<std::pair<ObjectId, double>> acks;
  const NodeId ack_sink = w.client_node();
  w.net.attach(ack_sink, [&](const std::uint8_t* data, std::size_t len) {
    const auto env = wire::decode_envelope(data, len);
    ASSERT_TRUE(env.ok());
    if (const auto* m = std::get_if<wire::BatchedUpdateAck>(&env.value().msg)) {
      wire::BatchedUpdateAck::Cursor cur = m->acks();
      ObjectId oid;
      double acc = 0.0;
      while (cur.next(oid, acc)) acks.emplace_back(oid, acc);
    }
  });
  send_batch(w, ack_sink, leaf, batch);
  store::SightingDb::Record rec;
  ASSERT_TRUE(w.deployment->find_sighting(leaf, ObjectId{7}, rec));
  EXPECT_EQ(rec.sighting.pos, (geo::Point{120, 130}));
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].first, ObjectId{7});
  w.net.detach(ack_sink);
}

TEST(BatchedUpdateEdge, UnknownObjectsAreSkippedKnownOnesApplied) {
  SimWorld w(core::HierarchyBuilder::table2(geo::Rect{{0, 0}, {1000, 1000}}));
  auto obj = w.register_object(ObjectId{1}, {100, 100});
  const NodeId leaf = obj->agent();
  wire::BatchedUpdateReq batch;
  batch.append({ObjectId{999}, 1, {110, 110}, 5.0});  // never registered
  batch.append({ObjectId{1}, 1, {140, 150}, 5.0});
  send_batch(w, w.client_node(), leaf, batch);
  const core::LocationServer::Stats stats = w.deployment->total_stats();
  EXPECT_EQ(stats.updates_applied, 1u);
  EXPECT_EQ(stats.updates_unknown, 1u);
  store::SightingDb::Record rec;
  ASSERT_TRUE(w.deployment->find_sighting(leaf, ObjectId{1}, rec));
  EXPECT_EQ(rec.sighting.pos, (geo::Point{140, 150}));
}

}  // namespace
}  // namespace locs::test
