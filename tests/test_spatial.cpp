// Spatial index implementations validated against a brute-force oracle --
// parameterized over all four index types (paper's Point Quadtree, R-Tree,
// plus grid / linear ablation baselines), so every implementation satisfies
// the same contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "spatial/spatial_index.hpp"
#include "util/rng.hpp"

namespace locs::spatial {
namespace {

struct IndexCase {
  const char* name;
  IndexFactory factory;
};

const geo::Rect kArea{{0, 0}, {1000, 1000}};

std::vector<IndexCase> index_cases() {
  return {
      {"quadtree", [] { return make_point_quadtree(); }},
      {"rtree", [] { return make_rtree(); }},
      {"grid", [] { return make_grid_index(kArea, 1024); }},
      {"linear", [] { return make_linear_index(); }},
  };
}

class SpatialIndexContract
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {
 protected:
  std::unique_ptr<SpatialIndex> make() {
    return index_cases()[std::get<0>(GetParam())].factory();
  }
  std::uint64_t seed() const { return std::get<1>(GetParam()); }
};

std::vector<Entry> brute_rect(const std::map<std::uint64_t, geo::Point>& truth,
                              const geo::Rect& rect) {
  std::vector<Entry> out;
  for (const auto& [id, pos] : truth) {
    if (rect.contains(pos)) out.push_back({ObjectId{id}, pos});
  }
  return out;
}

std::vector<std::uint64_t> ids_of(std::vector<Entry> entries) {
  std::vector<std::uint64_t> ids;
  for (const Entry& e : entries) ids.push_back(e.id.value);
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST_P(SpatialIndexContract, InsertQueryRemoveMatchesBruteForce) {
  auto index = make();
  Rng rng(seed());
  std::map<std::uint64_t, geo::Point> truth;

  // Mixed workload: inserts, removes, updates, with interleaved queries.
  for (int step = 0; step < 400; ++step) {
    const double roll = rng.next_double();
    if (roll < 0.5 || truth.empty()) {
      const std::uint64_t id = rng.next_below(100000);
      if (truth.count(id)) continue;
      const geo::Point p{rng.uniform(0, 1000), rng.uniform(0, 1000)};
      truth[id] = p;
      index->insert(ObjectId{id}, p);
    } else if (roll < 0.7) {
      auto it = truth.begin();
      std::advance(it, static_cast<long>(rng.next_below(truth.size())));
      index->remove(ObjectId{it->first});
      truth.erase(it);
    } else if (roll < 0.9) {
      auto it = truth.begin();
      std::advance(it, static_cast<long>(rng.next_below(truth.size())));
      const geo::Point p{rng.uniform(0, 1000), rng.uniform(0, 1000)};
      it->second = p;
      index->update(ObjectId{it->first}, p);
    } else {
      const geo::Rect q = geo::Rect::from_center(
          {rng.uniform(0, 1000), rng.uniform(0, 1000)}, rng.uniform(10, 300),
          rng.uniform(10, 300));
      std::vector<Entry> got;
      index->query_rect(q, got);
      EXPECT_EQ(ids_of(std::move(got)), ids_of(brute_rect(truth, q)))
          << "step " << step;
    }
    ASSERT_EQ(index->size(), truth.size()) << "step " << step;
  }
}

TEST_P(SpatialIndexContract, KNearestOrderedAndCorrect) {
  auto index = make();
  Rng rng(seed() * 31 + 7);
  std::map<std::uint64_t, geo::Point> truth;
  for (std::uint64_t i = 0; i < 300; ++i) {
    const geo::Point p{rng.uniform(0, 1000), rng.uniform(0, 1000)};
    truth[i] = p;
    index->insert(ObjectId{i}, p);
  }
  for (int q = 0; q < 20; ++q) {
    const geo::Point p{rng.uniform(-100, 1100), rng.uniform(-100, 1100)};
    const std::size_t k = 1 + rng.next_below(20);
    const auto got = index->k_nearest(p, k);
    ASSERT_EQ(got.size(), std::min<std::size_t>(k, truth.size()));
    // Ordered by distance.
    for (std::size_t i = 1; i < got.size(); ++i) {
      EXPECT_LE(geo::distance(got[i - 1].pos, p), geo::distance(got[i].pos, p) + 1e-9);
    }
    // Matches brute force k-th distance (positions may tie).
    std::vector<double> dists;
    for (const auto& [id, pos] : truth) dists.push_back(geo::distance(pos, p));
    std::sort(dists.begin(), dists.end());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(geo::distance(got[i].pos, p), dists[i], 1e-9) << "rank " << i;
    }
  }
}

TEST_P(SpatialIndexContract, QueryCircleFiltersExactly) {
  auto index = make();
  Rng rng(seed() * 97 + 3);
  std::map<std::uint64_t, geo::Point> truth;
  for (std::uint64_t i = 0; i < 500; ++i) {
    const geo::Point p{rng.uniform(0, 1000), rng.uniform(0, 1000)};
    truth[i] = p;
    index->insert(ObjectId{i}, p);
  }
  for (int q = 0; q < 10; ++q) {
    const geo::Circle c{{rng.uniform(0, 1000), rng.uniform(0, 1000)},
                        rng.uniform(20, 400)};
    std::vector<Entry> got;
    index->query_circle(c, got);
    std::vector<std::uint64_t> expected;
    for (const auto& [id, pos] : truth) {
      if (c.contains(pos)) expected.push_back(id);
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(ids_of(std::move(got)), expected);
  }
}

TEST_P(SpatialIndexContract, ClearEmptiesIndex) {
  auto index = make();
  for (std::uint64_t i = 0; i < 50; ++i) {
    index->insert(ObjectId{i}, {static_cast<double>(i), static_cast<double>(i)});
  }
  index->clear();
  EXPECT_EQ(index->size(), 0u);
  std::vector<Entry> got;
  index->query_rect(geo::Rect{{-1e9, -1e9}, {1e9, 1e9}}, got);
  EXPECT_TRUE(got.empty());
  // Usable after clear.
  index->insert(ObjectId{7}, {1, 1});
  EXPECT_EQ(index->size(), 1u);
}

TEST_P(SpatialIndexContract, RemoveReturnsFalseForUnknown) {
  auto index = make();
  EXPECT_FALSE(index->remove(ObjectId{424242}));
  index->insert(ObjectId{1}, {5, 5});
  EXPECT_TRUE(index->remove(ObjectId{1}));
  EXPECT_FALSE(index->remove(ObjectId{1}));
}

TEST_P(SpatialIndexContract, DuplicatePositionsSupported) {
  auto index = make();
  const geo::Point same{100, 100};
  for (std::uint64_t i = 0; i < 20; ++i) index->insert(ObjectId{i}, same);
  std::vector<Entry> got;
  index->query_rect(geo::Rect::from_center(same, 1, 1), got);
  EXPECT_EQ(got.size(), 20u);
  const auto nn = index->k_nearest({101, 101}, 5);
  EXPECT_EQ(nn.size(), 5u);
}

INSTANTIATE_TEST_SUITE_P(
    AllIndexes, SpatialIndexContract,
    ::testing::Combine(::testing::Range(0, 4), ::testing::Values(11u, 22u, 33u)),
    [](const ::testing::TestParamInfo<std::tuple<int, std::uint64_t>>& info) {
      return std::string(index_cases()[std::get<0>(info.param)].name) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(PointQuadtree, TombstoneRebuildKeepsAnswers) {
  // Heavy churn triggers the amortized rebuild; answers must stay exact.
  auto index = make_point_quadtree();
  Rng rng(5150);
  std::map<std::uint64_t, geo::Point> truth;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    const geo::Point p{rng.uniform(0, 100), rng.uniform(0, 100)};
    truth[i] = p;
    index->insert(ObjectId{i}, p);
  }
  // Remove 90%.
  std::uint64_t removed = 0;
  for (std::uint64_t i = 0; i < 2000 && removed < 1800; ++i, ++removed) {
    index->remove(ObjectId{i});
    truth.erase(i);
  }
  EXPECT_EQ(index->size(), truth.size());
  std::vector<Entry> got;
  index->query_rect(geo::Rect{{0, 0}, {100, 100}}, got);
  EXPECT_EQ(got.size(), truth.size());
}

TEST(RTree, DeepDeleteCondenses) {
  auto index = make_rtree();
  Rng rng(777);
  std::vector<std::uint64_t> ids;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    index->insert(ObjectId{i}, {rng.uniform(0, 1000), rng.uniform(0, 1000)});
    ids.push_back(i);
  }
  std::shuffle(ids.begin(), ids.end(), rng);
  for (std::size_t i = 0; i < 995; ++i) {
    ASSERT_TRUE(index->remove(ObjectId{ids[i]})) << i;
  }
  EXPECT_EQ(index->size(), 5u);
  std::vector<Entry> got;
  index->query_rect(geo::Rect{{-1, -1}, {1001, 1001}}, got);
  EXPECT_EQ(got.size(), 5u);
}

}  // namespace
}  // namespace locs::spatial
