// Hot-path invariants of the zero-allocation message pipeline:
//  * view-based (zero-copy) Reader decoding and the own() contract,
//  * scratch-envelope decode (decode_envelope_into) correctness across
//    alternating message types,
//  * BufferPool recycling without use-after-recycle,
//  * SimNetwork determinism: pooled and unpooled runs produce bit-identical
//    traces and counters (seed 42).
#include <gtest/gtest.h>

#include <vector>

#include "core/client.hpp"
#include "core/deployment.hpp"
#include "core/hierarchy_builder.hpp"
#include "net/buffer_pool.hpp"
#include "net/sim_network.hpp"
#include "util/rng.hpp"
#include "wire/messages.hpp"

namespace locs {
namespace {

using namespace locs::wire;

// --- zero-copy Reader views --------------------------------------------------

TEST(HotpathCodec, StrReturnsViewIntoDatagram) {
  Buffer buf;
  {
    Writer w(buf);
    w.str("zero-copy");
  }
  Reader r(buf);
  const std::string_view v = r.str();
  EXPECT_EQ(v, "zero-copy");
  // The view aliases the datagram -- no copy was made.
  EXPECT_GE(reinterpret_cast<const std::uint8_t*>(v.data()), buf.data());
  EXPECT_LT(reinterpret_cast<const std::uint8_t*>(v.data()), buf.data() + buf.size());
  // own() detaches the data from the buffer's lifetime.
  const std::string owned = own(v);
  EXPECT_EQ(owned, "zero-copy");
  EXPECT_NE(static_cast<const void*>(owned.data()), static_cast<const void*>(v.data()));
}

TEST(HotpathCodec, BytesReturnsBoundedView) {
  Buffer buf;
  {
    Writer w(buf);
    const std::uint8_t raw[] = {1, 2, 3, 4};
    w.bytes(raw, sizeof raw);
  }
  Reader r(buf);
  const auto view = r.bytes(4);
  ASSERT_EQ(view.size(), 4u);
  EXPECT_EQ(view[2], 3);
  EXPECT_TRUE(r.ok());
  // Over-read fails sticky and yields an empty view.
  EXPECT_TRUE(r.bytes(1).empty());
  EXPECT_FALSE(r.ok());
}

TEST(HotpathCodec, WriterFlushShrinksToWrittenBytes) {
  Buffer buf;
  Writer w(buf);
  w.u8(7);
  w.u64(1234567);
  w.flush();
  Reader r(buf);
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u64(), 1234567u);
  EXPECT_EQ(r.remaining(), 0u);
}

// --- scratch-envelope decode -------------------------------------------------

TEST(HotpathCodec, ScratchEnvelopeDecodesAlternatingTypes) {
  RangeQuerySubRes sub;
  sub.req_id = 42;
  sub.covered_size = 10.0;
  sub.results.assign({{ObjectId{1}, {{1, 2}, 3}}, {ObjectId{2}, {{4, 5}, 6}}});
  sub.origin = OriginArea{NodeId{9}, geo::Polygon::from_rect({{0, 0}, {10, 10}})};
  const Buffer sub_buf = encode_envelope(NodeId{5}, Message{sub});
  const Buffer upd_buf = encode_envelope(
      NodeId{6}, Message{UpdateReq{core::Sighting{ObjectId{3}, 1, {7, 8}, 9.0}}});

  Envelope env;
  // Same type twice (capacity reuse path), then a different type, then back.
  for (int round = 0; round < 2; ++round) {
    ASSERT_TRUE(decode_envelope_into(env, sub_buf.data(), sub_buf.size()).is_ok());
    EXPECT_EQ(env.src, NodeId{5});
    const auto& got = std::get<RangeQuerySubRes>(env.msg);
    EXPECT_EQ(got.results, sub.results);
    ASSERT_TRUE(got.origin.has_value());
    EXPECT_EQ(got.origin->leaf, NodeId{9});
    EXPECT_EQ(got.origin->area.vertices().size(), 4u);

    ASSERT_TRUE(decode_envelope_into(env, upd_buf.data(), upd_buf.size()).is_ok());
    EXPECT_EQ(env.src, NodeId{6});
    EXPECT_EQ(std::get<UpdateReq>(env.msg).s.oid, ObjectId{3});
  }
}

TEST(HotpathCodec, ScratchEnvelopeClearsStaleOptionalFields) {
  // A message WITH origin decoded over a scratch that previously held the
  // same type WITHOUT origin (and vice versa) must not leak stale state.
  RangeQuerySubRes with_origin;
  with_origin.req_id = 1;
  with_origin.origin = OriginArea{NodeId{3}, geo::Polygon::from_rect({{0, 0}, {1, 1}})};
  RangeQuerySubRes without_origin;
  without_origin.req_id = 2;

  const Buffer a = encode_envelope(NodeId{1}, Message{with_origin});
  const Buffer b = encode_envelope(NodeId{1}, Message{without_origin});
  Envelope env;
  ASSERT_TRUE(decode_envelope_into(env, a.data(), a.size()).is_ok());
  EXPECT_TRUE(std::get<RangeQuerySubRes>(env.msg).origin.has_value());
  ASSERT_TRUE(decode_envelope_into(env, b.data(), b.size()).is_ok());
  EXPECT_FALSE(std::get<RangeQuerySubRes>(env.msg).origin.has_value());
  EXPECT_EQ(std::get<RangeQuerySubRes>(env.msg).req_id, 2u);
}

// --- buffer pool ------------------------------------------------------------

TEST(BufferPoolTest, RecyclesCapacity) {
  net::BufferPool pool;
  wire::Buffer a = pool.acquire();
  a.resize(512);
  const void* storage = a.data();
  pool.release(std::move(a));
  wire::Buffer b = pool.acquire();
  EXPECT_EQ(b.size(), 0u) << "recycled buffers must come back empty";
  EXPECT_GE(b.capacity(), 512u);
  EXPECT_EQ(static_cast<const void*>(b.data()), storage);
  EXPECT_EQ(pool.reused(), 1u);
}

TEST(BufferPoolTest, DisabledPoolDegradesToPlainAllocation) {
  net::BufferPool pool;
  pool.set_enabled(false);
  wire::Buffer a = pool.acquire();
  a.resize(64);
  pool.release(std::move(a));
  EXPECT_EQ(pool.free_count(), 0u);
  EXPECT_EQ(pool.acquire().capacity(), 0u);
}

TEST(BufferPoolTest, NoUseAfterRecycleThroughSimNetwork) {
  // Two messages sent back to back: the second reuses the first's recycled
  // buffer; delivered payloads must be the bytes of their own message.
  net::SimNetwork net;
  std::vector<std::vector<std::uint8_t>> delivered;
  net.attach(NodeId{1}, [&](const std::uint8_t* data, std::size_t len) {
    delivered.emplace_back(data, data + len);
  });

  auto send_payload = [&](std::uint8_t fill, std::size_t len) {
    net::PooledBuffer buf = net.make_buffer();
    buf->assign(len, fill);
    net.send(NodeId{2}, NodeId{1}, std::move(buf));
  };
  send_payload(0xaa, 100);
  net.run_until_idle();  // delivers and recycles the 0xaa buffer
  send_payload(0xbb, 60);
  send_payload(0xcc, 40);
  net.run_until_idle();

  ASSERT_EQ(delivered.size(), 3u);
  EXPECT_EQ(delivered[0], std::vector<std::uint8_t>(100, 0xaa));
  EXPECT_EQ(delivered[1], std::vector<std::uint8_t>(60, 0xbb));
  EXPECT_EQ(delivered[2], std::vector<std::uint8_t>(40, 0xcc));
  EXPECT_GT(net.pool().reused(), 0u) << "the pool was never exercised";
}

// --- determinism: pooled vs unpooled -----------------------------------------

struct TraceRecord {
  TimePoint at;
  NodeId from, to;
  wire::Buffer bytes;

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

/// Runs the same registration + update + query workload on a fresh world and
/// returns the full delivery trace (seed 42 everywhere).
std::vector<TraceRecord> run_workload(bool pooling) {
  net::SimNetwork::Options opts;
  opts.seed = 42;
  net::SimNetwork net(opts);
  net.pool().set_enabled(pooling);
  std::vector<TraceRecord> trace;
  net.set_tracer([&](TimePoint at, NodeId from, NodeId to, const wire::Buffer& b) {
    trace.push_back({at, from, to, b});
  });

  core::Deployment deployment(
      net, net.clock(),
      core::HierarchyBuilder::grid(geo::Rect{{0, 0}, {1000, 1000}}, 2, 2, 1));

  Rng rng(7);
  std::vector<std::unique_ptr<core::TrackedObject>> objects;
  for (std::uint64_t i = 1; i <= 40; ++i) {
    const geo::Point p{rng.uniform(1, 999), rng.uniform(1, 999)};
    auto obj = std::make_unique<core::TrackedObject>(
        NodeId{static_cast<std::uint32_t>(1000 + i)}, ObjectId{i}, net, net.clock());
    obj->start_register(deployment.entry_leaf_for(p), p, 1.0, {10.0, 100.0});
    net.run_until_idle();
    objects.push_back(std::move(obj));
  }
  // Updates (including cross-leaf moves that trigger handover).
  for (int round = 0; round < 5; ++round) {
    for (auto& obj : objects) {
      obj->feed_position({rng.uniform(1, 999), rng.uniform(1, 999)});
    }
    net.run_until_idle();
  }
  core::QueryClient client(NodeId{5000}, net, net.clock());
  client.set_entry(deployment.leaf_ids().front());
  for (std::uint64_t i = 1; i <= 10; ++i) {
    client.send_pos_query(ObjectId{i});
    net.run_until_idle();
  }
  client.send_range_query(geo::Polygon::from_rect({{100, 100}, {900, 900}}), 50.0,
                          0.5);
  net.run_until_idle();

  EXPECT_EQ(net.messages_dropped(), 0u);
  EXPECT_GT(net.messages_sent(), 0u);
  if (pooling) {
    EXPECT_GT(net.pool().reused(), 0u) << "pooled run never recycled a buffer";
  } else {
    EXPECT_EQ(net.pool().reused(), 0u);
  }
  return trace;
}

TEST(SimNetworkDeterminism, PoolingIsTraceInvariant) {
  const std::vector<TraceRecord> pooled = run_workload(/*pooling=*/true);
  const std::vector<TraceRecord> unpooled = run_workload(/*pooling=*/false);
  ASSERT_EQ(pooled.size(), unpooled.size());
  for (std::size_t i = 0; i < pooled.size(); ++i) {
    ASSERT_EQ(pooled[i], unpooled[i]) << "trace diverged at message " << i;
  }
}

TEST(SimNetworkDeterminism, IdenticalSeedsIdenticalTraces) {
  const std::vector<TraceRecord> a = run_workload(/*pooling=*/true);
  const std::vector<TraceRecord> b = run_workload(/*pooling=*/true);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "trace diverged at message " << i;
  }
}

TEST(SimNetworkDetach, DetachedNodeMessagesAreDropped) {
  net::SimNetwork net;
  int delivered = 0;
  net.attach(NodeId{1}, [&](const std::uint8_t*, std::size_t) { ++delivered; });
  net.send(NodeId{2}, NodeId{1}, wire::Buffer{1});
  net.detach(NodeId{1});
  net.send(NodeId{2}, NodeId{1}, wire::Buffer{2});
  net.run_until_idle();
  EXPECT_EQ(delivered, 0) << "messages queued before detach must also be dropped";
}

}  // namespace
}  // namespace locs
