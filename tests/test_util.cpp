#include <gtest/gtest.h>

#include <set>

#include "util/clock.hpp"
#include "util/crc32.hpp"
#include "util/ids.hpp"
#include "util/metrics.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace locs {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformDoubleInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-5.0, 5.0);
    EXPECT_GE(v, -5.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, NextBelowBounds) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalRoughMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Crc32, KnownVectors) {
  // "123456789" -> 0xCBF43926 (standard CRC-32 check value).
  const char data[] = "123456789";
  EXPECT_EQ(crc32(data, 9), 0xcbf43926u);
  EXPECT_EQ(crc32("", 0), 0u);
}

TEST(Crc32, ChunkedEqualsWhole) {
  const std::string s = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t whole = crc32(s.data(), s.size());
  const std::uint32_t first = crc32(s.data(), 10);
  // Chunked continuation uses the previous CRC as seed.
  const std::uint32_t chunked = crc32(s.data() + 10, s.size() - 10, first);
  EXPECT_EQ(whole, chunked);
}

TEST(Crc32, DetectsBitFlip) {
  std::string s = "hello world";
  const std::uint32_t before = crc32(s.data(), s.size());
  s[3] ^= 0x01;
  EXPECT_NE(before, crc32(s.data(), s.size()));
}

TEST(Result, ValueAndStatus) {
  Result<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);

  Result<int> err(StatusCode::kNotFound, "nope");
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(err.value_or(7), 7);
}

TEST(Result, StatusToString) {
  const Status s(StatusCode::kIoError, "disk on fire");
  EXPECT_EQ(s.to_string(), "IO_ERROR: disk on fire");
  EXPECT_EQ(Status::ok().to_string(), "OK");
}

TEST(Ids, NodeValidity) {
  EXPECT_FALSE(kNoNode.valid());
  EXPECT_TRUE(NodeId{3}.valid());
  EXPECT_EQ(NodeId{3}, NodeId{3});
  EXPECT_NE(NodeId{3}, NodeId{4});
}

TEST(Ids, ObjectIdHashSpreads) {
  std::set<std::size_t> hashes;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    hashes.insert(std::hash<ObjectId>{}(ObjectId{i}));
  }
  EXPECT_EQ(hashes.size(), 1000u);
}

TEST(Clock, ManualClockAdvances) {
  ManualClock clock(100);
  EXPECT_EQ(clock.now(), 100);
  clock.advance(milliseconds(5));
  EXPECT_EQ(clock.now(), 100 + 5000);
  clock.set(0);
  EXPECT_EQ(clock.now(), 0);
}

TEST(Clock, DurationConversions) {
  EXPECT_EQ(seconds(2), 2'000'000);
  EXPECT_EQ(milliseconds(3), 3'000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(5)), 5.0);
  EXPECT_DOUBLE_EQ(to_millis(milliseconds(7)), 7.0);
}

TEST(Metrics, HistogramPercentiles) {
  LatencyHistogram h;
  for (int i = 1; i <= 100; ++i) h.record(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.mean_us(), 50.5, 1e-9);
  EXPECT_EQ(h.percentile_us(0.0), 1);
  EXPECT_EQ(h.percentile_us(1.0), 100);
  EXPECT_NEAR(static_cast<double>(h.percentile_us(0.5)), 50, 1);
}

TEST(Metrics, ThroughputMeter) {
  ThroughputMeter m;
  m.start(0);
  m.add(500);
  EXPECT_DOUBLE_EQ(m.ops_per_sec(seconds(2)), 250.0);
}

}  // namespace
}  // namespace locs
