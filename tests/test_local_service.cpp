// LocalLocationService facade: the paper's full §3 API surface behind a
// synchronous single-process interface.
#include <gtest/gtest.h>

#include "core/local_service.hpp"

namespace locs::core {
namespace {

LocalLocationService::Config small_config() {
  LocalLocationService::Config cfg;
  cfg.area = geo::Rect{{0, 0}, {1000, 1000}};
  cfg.levels = 2;
  return cfg;
}

TEST(LocalService, RegisterUpdateQueryLifecycle) {
  LocalLocationService ls(small_config());
  const auto offered = ls.register_object(ObjectId{1}, {100, 100}, 1.0, {10.0, 50.0});
  ASSERT_TRUE(offered.ok());
  EXPECT_DOUBLE_EQ(offered.value(), 10.0);
  EXPECT_TRUE(ls.is_tracked(ObjectId{1}));

  const auto ld = ls.position(ObjectId{1});
  ASSERT_TRUE(ld.has_value());
  EXPECT_EQ(ld->pos, (geo::Point{100, 100}));

  // Small move: no update sent; position unchanged server-side.
  EXPECT_FALSE(ls.feed_position(ObjectId{1}, {104, 100}));
  // Large move: update flows through.
  EXPECT_TRUE(ls.feed_position(ObjectId{1}, {300, 300}));
  const auto ld2 = ls.position(ObjectId{1});
  ASSERT_TRUE(ld2.has_value());
  EXPECT_EQ(ld2->pos, (geo::Point{300, 300}));

  ls.deregister(ObjectId{1});
  EXPECT_FALSE(ls.position(ObjectId{1}).has_value());
  EXPECT_FALSE(ls.is_tracked(ObjectId{1}));
}

TEST(LocalService, RegistrationFailures) {
  LocalLocationService ls(small_config());
  // Outside the service area.
  const auto outside = ls.register_object(ObjectId{1}, {5000, 5000}, 1.0, {10, 50});
  EXPECT_FALSE(outside.ok());
  EXPECT_EQ(outside.status().code(), StatusCode::kOutOfRange);
  // Unachievable accuracy (server default min_supported_acc = 5).
  const auto too_fine = ls.register_object(ObjectId{2}, {100, 100}, 1.0, {1.0, 2.0});
  EXPECT_FALSE(too_fine.ok());
  EXPECT_EQ(too_fine.status().code(), StatusCode::kFailedPrecondition);
}

TEST(LocalService, RangeAndNeighborQueries) {
  LocalLocationService ls(small_config());
  ASSERT_TRUE(ls.register_object(ObjectId{1}, {100, 100}, 1.0, {10, 50}).ok());
  ASSERT_TRUE(ls.register_object(ObjectId{2}, {200, 200}, 1.0, {10, 50}).ok());
  ASSERT_TRUE(ls.register_object(ObjectId{3}, {900, 900}, 1.0, {10, 50}).ok());

  const auto in_range = ls.range_query(
      geo::Polygon::from_rect(geo::Rect{{50, 50}, {250, 250}}), 25.0, 0.5);
  EXPECT_EQ(in_range.size(), 2u);

  const auto nn = ls.neighbor_query({110, 110}, 50.0, 200.0);
  ASSERT_TRUE(nn.found);
  EXPECT_EQ(nn.nearest.oid, ObjectId{1});
  ASSERT_EQ(nn.near_set.size(), 1u);
  EXPECT_EQ(nn.near_set[0].oid, ObjectId{2});
}

TEST(LocalService, ChangeAccuracy) {
  LocalLocationService ls(small_config());
  ASSERT_TRUE(ls.register_object(ObjectId{1}, {100, 100}, 1.0, {10, 50}).ok());
  const auto changed = ls.change_accuracy(ObjectId{1}, {30.0, 100.0});
  ASSERT_TRUE(changed.ok());
  EXPECT_DOUBLE_EQ(changed.value(), 30.0);
  EXPECT_DOUBLE_EQ(ls.offered_acc_of(ObjectId{1}), 30.0);
}

TEST(LocalService, HandoverIsTransparent) {
  LocalLocationService ls(small_config());
  ASSERT_TRUE(ls.register_object(ObjectId{1}, {100, 100}, 1.0, {10, 50}).ok());
  const NodeId first_agent = ls.agent_of(ObjectId{1});
  ASSERT_TRUE(ls.feed_position(ObjectId{1}, {900, 900}));
  EXPECT_NE(ls.agent_of(ObjectId{1}), first_agent);
  const auto ld = ls.position(ObjectId{1});
  ASSERT_TRUE(ld.has_value());
  EXPECT_EQ(ld->pos, (geo::Point{900, 900}));
}

TEST(LocalService, SoftStateExpiryViaAdvanceTime) {
  LocalLocationService::Config cfg = small_config();
  cfg.server.sighting_ttl = seconds(10);
  LocalLocationService ls(cfg);
  ASSERT_TRUE(ls.register_object(ObjectId{1}, {100, 100}, 1.0, {10, 50}).ok());
  ls.advance_time(seconds(30));
  EXPECT_FALSE(ls.position(ObjectId{1}).has_value());
}

TEST(LocalService, EventsThroughFacade) {
  LocalLocationService ls(small_config());
  const auto sub = ls.subscribe_area_count(
      geo::Polygon::from_rect(geo::Rect{{0, 0}, {300, 300}}), 1);
  ASSERT_TRUE(ls.register_object(ObjectId{1}, {100, 100}, 1.0, {10, 50}).ok());
  const auto events = ls.poll_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].sub_id, sub);
  EXPECT_TRUE(events[0].fired);
  ls.unsubscribe(sub);
}

TEST(LocalService, CentralizedSingleServerConfig) {
  LocalLocationService::Config cfg = small_config();
  cfg.levels = 0;  // one server = centralized baseline
  LocalLocationService ls(cfg);
  ASSERT_TRUE(ls.register_object(ObjectId{1}, {100, 100}, 1.0, {10, 50}).ok());
  ASSERT_TRUE(ls.register_object(ObjectId{2}, {900, 900}, 1.0, {10, 50}).ok());
  EXPECT_TRUE(ls.position(ObjectId{1}).has_value());
  EXPECT_EQ(ls.range_query(geo::Polygon::from_rect(geo::Rect{{0, 0}, {1000, 1000}}),
                           50.0, 0.5)
                .size(),
            2u);
  const auto nn = ls.neighbor_query({850, 850}, 50.0, 0.0);
  ASSERT_TRUE(nn.found);
  EXPECT_EQ(nn.nearest.oid, ObjectId{2});
}

TEST(LocalService, ManyObjectsConsistency) {
  LocalLocationService ls(small_config());
  Rng rng(321);
  for (std::uint64_t i = 1; i <= 100; ++i) {
    ASSERT_TRUE(ls.register_object(ObjectId{i},
                                   {rng.uniform(0, 1000), rng.uniform(0, 1000)},
                                   1.0, {10, 50})
                    .ok());
  }
  EXPECT_EQ(ls.tracked_count(), 100u);
  const auto all = ls.range_query(
      geo::Polygon::from_rect(geo::Rect{{-20, -20}, {1020, 1020}}), 50.0, 0.1);
  EXPECT_EQ(all.size(), 100u);
}

}  // namespace
}  // namespace locs::core
