// Data-storage components: persistent log (WAL), sighting DB (main memory),
// visitor DB (persistent forwarding paths). §5 of the paper.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "store/persistent_log.hpp"
#include "store/sighting_db.hpp"
#include "store/visitor_db.hpp"
#include "util/rng.hpp"

namespace locs::store {
namespace {

namespace fs = std::filesystem;

class TempDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("locs_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  fs::path dir_;
};

using PersistentLogTest = TempDir;
using VisitorDbTest = TempDir;

TEST_F(PersistentLogTest, AppendAndReplay) {
  auto log = PersistentLog::open(path("wal"));
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 10; ++i) {
    wire::Buffer rec{static_cast<std::uint8_t>(i), 0xaa, 0xbb};
    ASSERT_TRUE(log.value().append(rec).is_ok());
  }
  std::vector<int> seen;
  ASSERT_TRUE(log.value()
                  .replay([&](const std::uint8_t* d, std::size_t n) {
                    ASSERT_EQ(n, 3u);
                    seen.push_back(d[0]);
                  })
                  .is_ok());
  EXPECT_EQ(seen.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(seen[i], i);
}

TEST_F(PersistentLogTest, SurvivesReopen) {
  {
    auto log = PersistentLog::open(path("wal"));
    ASSERT_TRUE(log.ok());
    log.value().append({1, 2, 3});
  }
  auto log = PersistentLog::open(path("wal"));
  ASSERT_TRUE(log.ok());
  int count = 0;
  log.value().replay([&](const std::uint8_t*, std::size_t) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST_F(PersistentLogTest, TornTailIgnored) {
  {
    auto log = PersistentLog::open(path("wal"));
    ASSERT_TRUE(log.ok());
    log.value().append({1});
    log.value().append({2});
  }
  // Chop a few bytes off the end (simulated crash mid-append).
  const auto full = fs::file_size(path("wal"));
  fs::resize_file(path("wal"), full - 3);
  auto log = PersistentLog::open(path("wal"));
  std::vector<int> seen;
  log.value().replay([&](const std::uint8_t* d, std::size_t) { seen.push_back(d[0]); });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], 1);
}

TEST_F(PersistentLogTest, CorruptRecordStopsReplay) {
  {
    auto log = PersistentLog::open(path("wal"));
    ASSERT_TRUE(log.ok());
    log.value().append({10, 20, 30, 40});
    log.value().append({50});
  }
  // Flip a payload byte of the first record (offset 8 = after len+crc).
  {
    FILE* f = std::fopen(path("wal").c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 9, SEEK_SET);
    std::fputc(0xEE, f);
    std::fclose(f);
  }
  auto log = PersistentLog::open(path("wal"));
  int count = 0;
  log.value().replay([&](const std::uint8_t*, std::size_t) { ++count; });
  EXPECT_EQ(count, 0);  // CRC failure stops the replay at the bad frame
}

TEST_F(PersistentLogTest, RewriteCompacts) {
  auto log = PersistentLog::open(path("wal"));
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 100; ++i) log.value().append({static_cast<std::uint8_t>(i)});
  ASSERT_TRUE(log.value().rewrite({{7}, {8}}).is_ok());
  std::vector<int> seen;
  log.value().replay([&](const std::uint8_t* d, std::size_t) { seen.push_back(d[0]); });
  EXPECT_EQ(seen, (std::vector<int>{7, 8}));
  // Still appendable after rewrite.
  ASSERT_TRUE(log.value().append({9}).is_ok());
  seen.clear();
  log.value().replay([&](const std::uint8_t* d, std::size_t) { seen.push_back(d[0]); });
  EXPECT_EQ(seen, (std::vector<int>{7, 8, 9}));
}

// --------------------------------------------------------------------------

core::Sighting sighting(std::uint64_t oid, double x, double y) {
  return {ObjectId{oid}, 1000, {x, y}, 5.0};
}

SightingDb make_db() {
  return SightingDb([] { return spatial::make_point_quadtree(); });
}

TEST(SightingDb, InsertFindUpdateRemove) {
  SightingDb db = make_db();
  db.insert(sighting(1, 10, 10), 20.0, 5000);
  ASSERT_NE(db.find(ObjectId{1}), nullptr);
  EXPECT_EQ(db.find(ObjectId{1})->offered_acc, 20.0);
  EXPECT_TRUE(db.update(sighting(1, 30, 30), 6000));
  EXPECT_EQ(db.find(ObjectId{1})->sighting.pos, (geo::Point{30, 30}));
  EXPECT_TRUE(db.remove(ObjectId{1}));
  EXPECT_EQ(db.find(ObjectId{1}), nullptr);
  EXPECT_FALSE(db.update(sighting(1, 0, 0), 7000));
}

TEST(SightingDb, ExpiryPopsDueRecords) {
  SightingDb db = make_db();
  db.insert(sighting(1, 0, 0), 10, 1000);
  db.insert(sighting(2, 1, 1), 10, 2000);
  db.insert(sighting(3, 2, 2), 10, 3000);
  auto expired = db.expire_until(2000);
  std::sort(expired.begin(), expired.end());
  EXPECT_EQ(expired, (std::vector<ObjectId>{ObjectId{1}, ObjectId{2}}));
  EXPECT_EQ(db.size(), 1u);
}

TEST(SightingDb, UpdateExtendsExpiry) {
  SightingDb db = make_db();
  db.insert(sighting(1, 0, 0), 10, 1000);
  db.update(sighting(1, 1, 1), 5000);  // visitor contacted the server again
  EXPECT_TRUE(db.expire_until(1500).empty());
  const auto expired = db.expire_until(5000);
  EXPECT_EQ(expired.size(), 1u);
}

TEST(SightingDb, RemovedObjectNeverExpires) {
  SightingDb db = make_db();
  db.insert(sighting(1, 0, 0), 10, 1000);
  db.remove(ObjectId{1});
  EXPECT_TRUE(db.expire_until(10000).empty());
}

TEST(SightingDb, ObjectsInAreaAppliesAccuracyAndOverlap) {
  SightingDb db = make_db();
  // Fig 3 scenario: query area [0,100]^2.
  const geo::Polygon area = geo::Polygon::from_rect(geo::Rect{{0, 0}, {100, 100}});
  db.insert(sighting(1, 50, 50), 10.0, 1e9);    // fully inside
  db.insert(sighting(2, 300, 300), 10.0, 1e9);  // fully outside
  db.insert(sighting(3, 0, 50), 10.0, 1e9);     // straddles: overlap 0.5
  db.insert(sighting(4, 50, 50), 200.0, 1e9);   // insufficient accuracy (o5)

  std::vector<core::ObjectResult> out;
  db.objects_in_area(area, 50.0, 0.4, out);
  std::vector<std::uint64_t> ids;
  for (const auto& r : out) ids.push_back(r.oid.value);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{1, 3}));

  out.clear();
  db.objects_in_area(area, 50.0, 0.6, out);  // overlap 0.5 no longer qualifies
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].oid, ObjectId{1});
}

TEST(SightingDb, ObjectsInAreaCandidateMarginCatchesOutsideCenters) {
  SightingDb db = make_db();
  // Center outside the area but the location circle overlaps heavily.
  db.insert(sighting(1, 104, 50), 10.0, 1e9);
  const geo::Polygon area = geo::Polygon::from_rect(geo::Rect{{0, 0}, {100, 100}});
  std::vector<core::ObjectResult> out;
  db.objects_in_area(area, 10.0, 0.1, out);
  ASSERT_EQ(out.size(), 1u);
}

TEST(SightingDb, KNearestRespectsAccuracyFilter) {
  SightingDb db = make_db();
  db.insert(sighting(1, 10, 0), 100.0, 1e9);  // nearest but inaccurate
  db.insert(sighting(2, 20, 0), 5.0, 1e9);
  db.insert(sighting(3, 30, 0), 5.0, 1e9);
  const auto nn = db.k_nearest({0, 0}, 1, 50.0);
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0].oid, ObjectId{2});
}

TEST(SightingDb, ClearResets) {
  SightingDb db = make_db();
  db.insert(sighting(1, 0, 0), 10, 1000);
  db.clear();
  EXPECT_EQ(db.size(), 0u);
  EXPECT_EQ(db.find(ObjectId{1}), nullptr);
  db.insert(sighting(1, 0, 0), 10, 1000);  // usable after clear
  EXPECT_EQ(db.size(), 1u);
}

// --------------------------------------------------------------------------

TEST(VisitorDb, InMemoryBasics) {
  VisitorDb db;
  db.set_forward(ObjectId{1}, NodeId{5});
  ASSERT_NE(db.find(ObjectId{1}), nullptr);
  EXPECT_EQ(db.find(ObjectId{1})->forward_ref, NodeId{5});
  EXPECT_FALSE(db.find(ObjectId{1})->leaf.has_value());

  db.insert_leaf(ObjectId{2}, 25.0, {NodeId{9}, {10, 100}});
  ASSERT_TRUE(db.find(ObjectId{2})->leaf.has_value());
  EXPECT_EQ(db.find(ObjectId{2})->leaf->offered_acc, 25.0);

  // A leaf record can become a forwarding record (never both).
  db.set_forward(ObjectId{2}, NodeId{7});
  EXPECT_FALSE(db.find(ObjectId{2})->leaf.has_value());

  EXPECT_TRUE(db.remove(ObjectId{1}));
  EXPECT_FALSE(db.remove(ObjectId{1}));
  EXPECT_EQ(db.size(), 1u);
}

TEST_F(VisitorDbTest, PersistsAcrossReopen) {
  {
    auto db = VisitorDb::open(path("vdb"));
    ASSERT_TRUE(db.ok());
    db.value().set_forward(ObjectId{1}, NodeId{5});
    db.value().insert_leaf(ObjectId{2}, 25.0, {NodeId{9}, {10.0, 100.0}});
    db.value().set_offered_acc(ObjectId{2}, 30.0);
    db.value().set_forward(ObjectId{3}, NodeId{6});
    db.value().remove(ObjectId{3});
  }
  auto db = VisitorDb::open(path("vdb"));
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db.value().size(), 2u);
  ASSERT_NE(db.value().find(ObjectId{1}), nullptr);
  EXPECT_EQ(db.value().find(ObjectId{1})->forward_ref, NodeId{5});
  ASSERT_NE(db.value().find(ObjectId{2}), nullptr);
  ASSERT_TRUE(db.value().find(ObjectId{2})->leaf.has_value());
  EXPECT_EQ(db.value().find(ObjectId{2})->leaf->offered_acc, 30.0);
  EXPECT_EQ(db.value().find(ObjectId{2})->leaf->reg_info.reg_inst, NodeId{9});
  EXPECT_EQ(db.value().find(ObjectId{3}), nullptr);
}

TEST_F(PersistentLogTest, AppendBatchMatchesIndividualAppends) {
  {
    auto log = PersistentLog::open(path("batched"));
    ASSERT_TRUE(log.ok());
    std::vector<wire::Buffer> records;
    for (std::uint8_t i = 0; i < 10; ++i) records.push_back({i, 0xcc});
    ASSERT_TRUE(log.value().append_batch(records).is_ok());
    EXPECT_EQ(log.value().appended(), 10u);
    ASSERT_TRUE(log.value().append_batch({}).is_ok());  // empty batch: no-op
    EXPECT_EQ(log.value().appended(), 10u);
  }
  {
    auto log = PersistentLog::open(path("individual"));
    ASSERT_TRUE(log.ok());
    for (std::uint8_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(log.value().append({i, 0xcc}).is_ok());
    }
  }
  // One frame write per batch, but byte-identical on disk.
  std::ifstream a(path("batched"), std::ios::binary);
  std::ifstream b(path("individual"), std::ios::binary);
  const std::string bytes_a((std::istreambuf_iterator<char>(a)), {});
  const std::string bytes_b((std::istreambuf_iterator<char>(b)), {});
  EXPECT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, bytes_b);
}

TEST_F(VisitorDbTest, RemoveBatchPersistsAndSkipsUnknown) {
  {
    auto db = VisitorDb::open(path("vdb"), /*fsync_each=*/true);
    ASSERT_TRUE(db.ok());
    for (std::uint64_t i = 1; i <= 8; ++i) {
      db.value().insert_leaf(ObjectId{i}, 25.0, {NodeId{9}, {10.0, 100.0}});
    }
    const std::vector<ObjectId> to_remove = {ObjectId{2}, ObjectId{4},
                                             ObjectId{99}, ObjectId{6}};
    EXPECT_EQ(db.value().remove_batch(to_remove), 3u);  // 99 was never there
    EXPECT_EQ(db.value().size(), 5u);
    // One batched append of 3 remove records on top of the 8 inserts.
    EXPECT_EQ(db.value().log_appended(), 11u);
  }
  auto db = VisitorDb::open(path("vdb"));
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db.value().size(), 5u);
  EXPECT_EQ(db.value().find(ObjectId{2}), nullptr);
  EXPECT_EQ(db.value().find(ObjectId{4}), nullptr);
  EXPECT_EQ(db.value().find(ObjectId{6}), nullptr);
  ASSERT_NE(db.value().find(ObjectId{5}), nullptr);
}

TEST_F(VisitorDbTest, CompactionPreservesState) {
  {
    auto db = VisitorDb::open(path("vdb"));
    ASSERT_TRUE(db.ok());
    for (std::uint64_t i = 0; i < 100; ++i) {
      db.value().set_forward(ObjectId{i}, NodeId{static_cast<std::uint32_t>(i % 7 + 1)});
    }
    for (std::uint64_t i = 0; i < 90; ++i) db.value().remove(ObjectId{i});
    ASSERT_TRUE(db.value().compact().is_ok());
  }
  const auto size_after = fs::file_size(path("vdb"));
  EXPECT_LT(size_after, 1000u);  // 10 small records, not 190 log entries
  auto db = VisitorDb::open(path("vdb"));
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db.value().size(), 10u);
  EXPECT_EQ(db.value().find(ObjectId{95})->forward_ref, NodeId{95 % 7 + 1});
}

}  // namespace
}  // namespace locs::store
