// Multi-threaded soak of the sharded leaf server over REAL UDP loopback:
// a table-2 deployment whose leaves run 4 shard reactors each (threaded
// mode, SPSC inboxes), hammered by concurrent updater threads (including
// cross-leaf moves, i.e. handovers) and query threads, with a bounded
// runtime. Verifies liveness (operations keep completing), final
// consistency (every object's last acknowledged position is queryable), and
// -- under TSan in CI -- the absence of data races across shard reactors,
// slice locks and the cross-shard query merge.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "core/client.hpp"
#include "core/deployment.hpp"
#include "core/hierarchy_builder.hpp"
#include "net/udp_network.hpp"
#include "sim/fault.hpp"
#include "util/rng.hpp"

namespace locs::test {
namespace {

constexpr double kArea = 1500.0;
constexpr auto kSoakDuration = std::chrono::milliseconds(1200);
constexpr Duration kOpTimeout = seconds(2);

/// Thread-confined synchronous client driving registration and updates for a
/// disjoint set of objects (the update path of a tracked object, minus the
/// accuracy-threshold logic, so every call is a real wire round trip).
class SyncUpdater {
 public:
  SyncUpdater(NodeId self, net::Transport& net) : self_(self), net_(net) {
    net_.attach(self_, [this](const std::uint8_t* data, std::size_t len) {
      const auto env = wire::decode_envelope(data, len);
      if (!env.ok()) return;
      std::lock_guard<std::mutex> lock(mu_);
      if (const auto* res = std::get_if<wire::RegisterRes>(&env.value().msg)) {
        agents_[ObjectId{res->req_id}] = res->agent;  // req_id == oid below
        ++completions_;
      } else if (const auto* ack = std::get_if<wire::UpdateAck>(&env.value().msg)) {
        acked_[ack->oid] = pending_pos_[ack->oid];
        ++completions_;
      } else if (const auto* ch = std::get_if<wire::AgentChanged>(&env.value().msg)) {
        if (ch->new_agent.valid()) {
          agents_[ch->oid] = ch->new_agent;
          // The handover carried the triggering sighting to the new agent.
          acked_[ch->oid] = pending_pos_[ch->oid];
        } else {
          // A restarted leaf that lost its state nacked the update
          // (nack_unknown_updates); update_blocking re-registers.
          nacked_.insert(ch->oid);
        }
        ++completions_;
      }
      cv_.notify_all();
    });
  }

  ~SyncUpdater() { net_.detach(self_); }

  bool register_blocking(ObjectId oid, geo::Point pos, NodeId entry) {
    {
      // Forget any previous agent so the completion wait below really waits
      // for THIS registration's response (re-registration after a nack).
      std::lock_guard<std::mutex> lock(mu_);
      agents_.erase(oid);
    }
    wire::RegisterReq req;
    req.s = core::Sighting{oid, 0, pos, 5.0};
    req.acc_range = {10.0, 100.0};
    req.reg_inst = self_;
    req.req_id = oid.value;  // lets the handler key the agent map
    const std::uint64_t wait_for = completion_count() + 1;
    net::send_message(net_, self_, entry, req);
    if (!wait_until([&] { return agents_.count(oid) > 0; }, wait_for)) return false;
    std::lock_guard<std::mutex> lock(mu_);
    acked_[oid] = pos;
    return true;
  }

  /// Registration entry point used when an update is nacked (the agent lost
  /// its state in a crash) and the object must re-register.
  void set_reregister_entry(NodeId entry) { reregister_entry_ = entry; }

  /// Sends an update and waits for the UpdateAck (or the AgentChanged that a
  /// cross-leaf move produces). Retries around handover races; a nack from a
  /// restarted leaf triggers re-registration when an entry hint is set.
  bool update_blocking(ObjectId oid, geo::Point pos, int attempts = 8) {
    for (int i = 0; i < attempts; ++i) {
      NodeId agent;
      {
        std::lock_guard<std::mutex> lock(mu_);
        agent = agents_[oid];
        pending_pos_[oid] = pos;
        nacked_.erase(oid);
      }
      if (!agent.valid()) return false;
      const std::uint64_t wait_for = completion_count() + 1;
      net::send_message(net_, self_, agent,
                        wire::UpdateReq{core::Sighting{oid, 0, pos, 5.0}});
      const bool done = wait_until(
          [&] { return acked_[oid] == pos || nacked_.count(oid) > 0; }, wait_for);
      if (done) {
        const bool nacked = [&] {
          std::lock_guard<std::mutex> lock(mu_);
          return nacked_.erase(oid) > 0;
        }();
        if (!nacked) return true;
        if (!reregister_entry_.valid()) return false;
        if (!register_blocking(oid, pos, reregister_entry_)) continue;
        return true;  // registration carried the position as its sighting
      }
      // Timeout: stale agent or a dropped datagram; re-resolve and retry.
    }
    return false;
  }

  geo::Point acked_position(ObjectId oid) {
    std::lock_guard<std::mutex> lock(mu_);
    return acked_[oid];
  }

  NodeId agent_of(ObjectId oid) {
    std::lock_guard<std::mutex> lock(mu_);
    return agents_[oid];
  }

 private:
  std::uint64_t completion_count() {
    std::lock_guard<std::mutex> lock(mu_);
    return completions_;
  }

  template <typename Pred>
  bool wait_until(Pred done, std::uint64_t min_completions) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, std::chrono::microseconds(kOpTimeout), [&] {
      return completions_ >= min_completions && done();
    });
  }

  NodeId self_;
  net::Transport& net_;
  NodeId reregister_entry_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t completions_ = 0;
  std::unordered_map<ObjectId, NodeId> agents_;
  std::unordered_map<ObjectId, geo::Point> pending_pos_;
  std::unordered_map<ObjectId, geo::Point> acked_;
  std::unordered_set<ObjectId> nacked_;
};

TEST(ShardedStress, ConcurrentUpdatesQueriesAndHandovers) {
  constexpr int kUpdaterThreads = 4;
  constexpr int kQueryThreads = 2;
  constexpr std::uint64_t kObjectsPerThread = 16;

  net::UdpNetwork net(net::UdpNetwork::pick_free_base_port(/*span=*/300));
  SystemClock clock;
  core::Deployment::Config cfg;
  cfg.lock_handlers = true;  // root stays a plain single reactor
  cfg.leaf_shards = 4;
  cfg.shard_threads = true;
  core::Deployment deployment(
      net, clock, core::HierarchyBuilder::table2(geo::Rect{{0, 0}, {kArea, kArea}}),
      cfg);
  const std::vector<NodeId> leaves = [&] {
    auto l = deployment.leaf_ids();
    std::sort(l.begin(), l.end());
    return l;
  }();

  // Register every object up front (serially; the soak then runs bounded).
  std::vector<std::unique_ptr<SyncUpdater>> updaters;
  for (int t = 0; t < kUpdaterThreads; ++t) {
    updaters.push_back(std::make_unique<SyncUpdater>(
        NodeId{100 + static_cast<std::uint32_t>(t)}, net));
  }
  Rng seed_rng(5);
  for (int t = 0; t < kUpdaterThreads; ++t) {
    for (std::uint64_t i = 0; i < kObjectsPerThread; ++i) {
      const ObjectId oid{static_cast<std::uint64_t>(t) * kObjectsPerThread + i + 1};
      const geo::Point p{seed_rng.uniform(10, kArea - 10),
                         seed_rng.uniform(10, kArea - 10)};
      ASSERT_TRUE(
          updaters[static_cast<std::size_t>(t)]->register_blocking(
              oid, p, deployment.entry_leaf_for(p)))
          << "registration failed for object " << oid.value;
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> updates_ok{0}, updates_failed{0};
  std::atomic<std::uint64_t> queries_done{0}, queries_timed_out{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kUpdaterThreads; ++t) {
    threads.emplace_back([&, t] {
      SyncUpdater& up = *updaters[static_cast<std::size_t>(t)];
      Rng rng(1000 + static_cast<std::uint64_t>(t));
      while (!stop.load(std::memory_order_acquire)) {
        const ObjectId oid{static_cast<std::uint64_t>(t) * kObjectsPerThread +
                           rng.next_below(kObjectsPerThread) + 1};
        // 1-in-4 updates jump to a uniformly random position -- frequently a
        // different quadrant, forcing a handover between sharded leaves.
        const geo::Point p{rng.uniform(10, kArea - 10), rng.uniform(10, kArea - 10)};
        if (up.update_blocking(oid, p)) {
          updates_ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          updates_failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int t = 0; t < kQueryThreads; ++t) {
    threads.emplace_back([&, t] {
      core::QueryClient qc(NodeId{150 + static_cast<std::uint32_t>(t)}, net, clock);
      Rng rng(2000 + static_cast<std::uint64_t>(t));
      while (!stop.load(std::memory_order_acquire)) {
        qc.set_entry(leaves[rng.next_below(leaves.size())]);
        const std::uint64_t kind = rng.next_below(3);
        bool completed = false;
        if (kind == 0) {
          const ObjectId oid{rng.next_below(kUpdaterThreads * kObjectsPerThread) + 1};
          completed = qc.pos_query_blocking(oid, kOpTimeout).has_value();
        } else if (kind == 1) {
          const geo::Point c{rng.uniform(100, kArea - 100),
                             rng.uniform(100, kArea - 100)};
          const auto res = qc.range_query_blocking(
              geo::Polygon::from_rect(geo::Rect::from_center(c, 150, 150)),
              /*req_acc=*/60.0, /*req_overlap=*/0.3, kOpTimeout);
          completed = res.has_value();
        } else {
          const geo::Point p{rng.uniform(0, kArea), rng.uniform(0, kArea)};
          completed = qc.nn_query_blocking(p, 60.0, 10.0, kOpTimeout).has_value();
        }
        if (completed) {
          queries_done.fetch_add(1, std::memory_order_relaxed);
        } else {
          queries_timed_out.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Main thread: periodic maintenance sweeps racing the reactors (tick is
  // serialized per shard internally).
  const auto deadline = std::chrono::steady_clock::now() + kSoakDuration;
  while (std::chrono::steady_clock::now() < deadline) {
    deployment.tick_all(clock.now());
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& th : threads) th.join();

  // Liveness: the soak must have made real progress on both sides.
  EXPECT_GT(updates_ok.load(), 100u);
  EXPECT_GT(queries_done.load(), 10u);
  // A few failures are legal under handover races / dropped datagrams, but
  // they must stay the exception.
  EXPECT_LT(updates_failed.load(), updates_ok.load() / 4 + 8);

  // Final consistency: settle every object with one more acknowledged
  // update, then its position must be queryable everywhere.
  core::QueryClient verifier(NodeId{160}, net, clock);
  Rng rng(3);
  for (int t = 0; t < kUpdaterThreads; ++t) {
    for (std::uint64_t i = 0; i < kObjectsPerThread; ++i) {
      const ObjectId oid{static_cast<std::uint64_t>(t) * kObjectsPerThread + i + 1};
      const geo::Point p{rng.uniform(10, kArea - 10), rng.uniform(10, kArea - 10)};
      ASSERT_TRUE(updaters[static_cast<std::size_t>(t)]->update_blocking(oid, p, 20))
          << "object " << oid.value << " failed to settle";
      verifier.set_entry(leaves[i % leaves.size()]);
      const auto res = verifier.pos_query_blocking(oid, kOpTimeout);
      ASSERT_TRUE(res.has_value()) << "object " << oid.value;
      ASSERT_TRUE(res->found) << "object " << oid.value;
      EXPECT_EQ(res->ld.pos, p) << "object " << oid.value;
    }
  }

  // Every sharded leaf processed traffic without drowning its inboxes.
  std::uint64_t dropped = 0;
  for (const NodeId leaf : leaves) {
    ASSERT_NE(deployment.sharded(leaf), nullptr);
    dropped += deployment.sharded(leaf)->inbox_dropped();
  }
  EXPECT_EQ(dropped, 0u) << "shard inboxes overflowed under closed-loop load";
}

/// Crash/restart soak over real UDP: a sharded leaf is killed and restarted
/// WHILE updater and query threads hammer the deployment. Drives the
/// sim::FaultPlan wall-clock hook (take_due), Deployment::crash/restart over
/// a live UdpNetwork (handler swap on the surviving socket), and the
/// nack-driven client re-registration path; under ASan/TSan in CI this is
/// the teardown-vs-traffic race check for the whole fault subsystem.
TEST(ShardedStress, CrashRestartUnderConcurrentLoad) {
  constexpr int kUpdaterThreads = 3;
  constexpr std::uint64_t kObjectsPerThread = 12;
  constexpr auto kSoak = std::chrono::milliseconds(1500);

  net::UdpNetwork net(net::UdpNetwork::pick_free_base_port(/*span=*/300));
  SystemClock clock;
  core::Deployment::Config cfg;
  cfg.lock_handlers = true;
  cfg.leaf_shards = 2;
  cfg.shard_threads = true;
  // In-memory visitorDBs: the crash is a TOTAL state loss, recovered through
  // nacked updates + client re-registration.
  cfg.server.nack_unknown_updates = true;
  core::Deployment deployment(
      net, clock, core::HierarchyBuilder::table2(geo::Rect{{0, 0}, {kArea, kArea}}),
      cfg);
  const std::vector<NodeId> leaves = [&] {
    auto l = deployment.leaf_ids();
    std::sort(l.begin(), l.end());
    return l;
  }();
  const NodeId victim = leaves[0];

  std::vector<std::unique_ptr<SyncUpdater>> updaters;
  for (int t = 0; t < kUpdaterThreads; ++t) {
    updaters.push_back(std::make_unique<SyncUpdater>(
        NodeId{200 + static_cast<std::uint32_t>(t)}, net));
    updaters.back()->set_reregister_entry(leaves[1]);
  }
  Rng seed_rng(17);
  for (int t = 0; t < kUpdaterThreads; ++t) {
    for (std::uint64_t i = 0; i < kObjectsPerThread; ++i) {
      const ObjectId oid{static_cast<std::uint64_t>(t) * kObjectsPerThread + i + 1};
      const geo::Point p{seed_rng.uniform(10, kArea - 10),
                         seed_rng.uniform(10, kArea - 10)};
      ASSERT_TRUE(updaters[static_cast<std::size_t>(t)]->register_blocking(
          oid, p, deployment.entry_leaf_for(p)));
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> updates_ok{0}, updates_failed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kUpdaterThreads; ++t) {
    threads.emplace_back([&, t] {
      SyncUpdater& up = *updaters[static_cast<std::size_t>(t)];
      Rng rng(4000 + static_cast<std::uint64_t>(t));
      while (!stop.load(std::memory_order_acquire)) {
        const ObjectId oid{static_cast<std::uint64_t>(t) * kObjectsPerThread +
                           rng.next_below(kObjectsPerThread) + 1};
        const geo::Point p{rng.uniform(10, kArea - 10), rng.uniform(10, kArea - 10)};
        // One attempt per op: while the victim is down these time out fast
        // enough for the thread to keep making progress elsewhere.
        if (up.update_blocking(oid, p, /*attempts=*/1)) {
          updates_ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          updates_failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::thread query_thread([&] {
    core::QueryClient qc(NodeId{250}, net, clock);
    Rng rng(5000);
    while (!stop.load(std::memory_order_acquire)) {
      qc.set_entry(leaves[1 + rng.next_below(leaves.size() - 1)]);
      const geo::Point c{rng.uniform(100, kArea - 100), rng.uniform(100, kArea - 100)};
      (void)qc.range_query_blocking(
          geo::Polygon::from_rect(geo::Rect::from_center(c, 150, 150)),
          /*req_acc=*/60.0, /*req_overlap=*/0.3, kOpTimeout);
    }
  });

  // Wall-clock fault schedule through the UDP harness hook: TimePoints are
  // microseconds since soak start.
  sim::FaultPlan plan;
  plan.crash_at(milliseconds(300), victim).restart_at(milliseconds(700), victim);
  const auto start = std::chrono::steady_clock::now();
  bool crashed = false, restarted = false;
  while (std::chrono::steady_clock::now() - start < kSoak) {
    const auto now_us = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    for (const sim::FaultPlan::Event& ev : plan.take_due(now_us)) {
      if (ev.kind == sim::FaultPlan::Event::Kind::kCrash) {
        deployment.crash(ev.node);
        crashed = true;
      } else {
        deployment.restart(ev.node, /*announce=*/true);
        restarted = true;
      }
    }
    deployment.tick_all(clock.now());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& th : threads) th.join();
  query_thread.join();
  ASSERT_TRUE(crashed);
  ASSERT_TRUE(restarted);
  EXPECT_FALSE(deployment.is_down(victim));
  EXPECT_GT(updates_ok.load(), 50u);

  // Settle-phase maintenance: handovers that were initiated INTO the dead
  // leaf stay pending until the timeout sweep clears them; without ticks the
  // blocked objects could never settle. Safe to run from its own thread now
  // -- crash/restart is over, so tick_all races no teardown. RAII so an
  // ASSERT early-return still joins the thread.
  struct Ticker {
    core::Deployment& deployment;
    SystemClock& clock;
    std::atomic<bool> stop{false};
    std::thread thread;
    explicit Ticker(core::Deployment& d, SystemClock& c) : deployment(d), clock(c) {
      thread = std::thread([this] {
        while (!stop.load(std::memory_order_acquire)) {
          deployment.tick_all(clock.now());
          std::this_thread::sleep_for(std::chrono::milliseconds(25));
        }
      });
    }
    ~Ticker() {
      stop.store(true, std::memory_order_release);
      thread.join();
    }
  } ticker(deployment, clock);

  // Final consistency: every object settles (re-registering through the
  // nack path where the crash erased it) and is queryable everywhere.
  core::QueryClient verifier(NodeId{260}, net, clock);
  Rng rng(6);
  for (int t = 0; t < kUpdaterThreads; ++t) {
    for (std::uint64_t i = 0; i < kObjectsPerThread; ++i) {
      const ObjectId oid{static_cast<std::uint64_t>(t) * kObjectsPerThread + i + 1};
      const geo::Point p{rng.uniform(10, kArea - 10), rng.uniform(10, kArea - 10)};
      SyncUpdater& up = *updaters[static_cast<std::size_t>(t)];
      ASSERT_TRUE(up.update_blocking(oid, p, 20))
          << "object " << oid.value << " failed to settle after restart";
      // Query via the object's CURRENT agent: re-registration (unlike
      // handover) leaves the previous agent's replica to soft-state expiry,
      // so a third-party entry may legally serve a stale answer until the
      // TTL -- the agent's own answer is the authoritative convergence
      // check.
      verifier.set_entry(up.agent_of(oid));
      const auto res = verifier.pos_query_blocking(oid, kOpTimeout);
      ASSERT_TRUE(res.has_value()) << "object " << oid.value;
      ASSERT_TRUE(res->found) << "object " << oid.value;
      EXPECT_EQ(res->ld.pos, p) << "object " << oid.value;
    }
  }
}

/// Regression: cross-thread find_sighting probes must serialize against the
/// reactor on BOTH deployment flavors -- a threaded single-shard wrapper
/// (slice lock must engage even at N = 1) and a plain locked unsharded
/// server. TSan is the real assertion here.
TEST(ShardedStress, FindSightingRacesReactorSafely) {
  for (const bool force_sharding : {true, false}) {
    net::UdpNetwork net(net::UdpNetwork::pick_free_base_port(/*span=*/300));
    SystemClock clock;
    core::Deployment::Config cfg;
    cfg.lock_handlers = true;
    cfg.force_leaf_sharding = force_sharding;
    cfg.shard_threads = force_sharding;  // threaded single shard
    core::Deployment deployment(
        net, clock,
        core::HierarchyBuilder::table2(geo::Rect{{0, 0}, {kArea, kArea}}), cfg);

    SyncUpdater updater(NodeId{120}, net);
    const geo::Point start{200, 200};
    const NodeId leaf = deployment.entry_leaf_for(start);
    ASSERT_TRUE(updater.register_blocking(ObjectId{1}, start, leaf));
    EXPECT_EQ(deployment.sharded(leaf) != nullptr, force_sharding);

    std::atomic<bool> stop{false};
    std::thread prober([&] {
      store::SightingDb::Record rec;
      while (!stop.load(std::memory_order_acquire)) {
        (void)deployment.find_sighting(leaf, ObjectId{1}, rec);
      }
    });
    Rng rng(11);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(300);
    while (std::chrono::steady_clock::now() < deadline) {
      ASSERT_TRUE(updater.update_blocking(
          ObjectId{1}, {rng.uniform(10, kArea / 2 - 10), rng.uniform(10, kArea / 2 - 10)}));
    }
    stop.store(true, std::memory_order_release);
    prober.join();

    store::SightingDb::Record rec;
    ASSERT_TRUE(deployment.find_sighting(leaf, ObjectId{1}, rec));
    EXPECT_EQ(rec.sighting.pos, updater.acked_position(ObjectId{1}));
  }
}

}  // namespace
}  // namespace locs::test
