// Zero-materialization query merge: end-to-end equivalence, dedup-on-emit,
// legacy-framing compat, partial answers on timeout, and the coalesced
// CreatePath/RemovePath machinery riding on the same batch framing.
//
// The merge path under test (core/location_server): version-2 sub-results
// are consumed through wire::SubResView straight off the receive buffer,
// range segments PIN the datagram until the merge completes, and the final
// RangeQueryRes is emitted directly into an outgoing pooled envelope --
// byte-identical to the canonical encoder.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "test_support.hpp"
#include "util/crc32.hpp"
#include "wire/messages.hpp"

namespace locs::test {
namespace {

namespace wm = locs::wire;

constexpr double kArea = 1400.0;

geo::Polygon rect_poly(double x0, double y0, double x1, double y1) {
  return geo::Polygon::from_rect(geo::Rect{{x0, y0}, {x1, y1}});
}

/// Registers `n` objects on a table2 world at deterministic positions.
std::vector<std::unique_ptr<TrackedObject>> populate(
    SimWorld& w, std::size_t n, std::vector<ObjectResult>& all) {
  Rng rng(2026);
  std::vector<std::unique_ptr<TrackedObject>> objs;
  for (std::uint64_t i = 1; i <= n; ++i) {
    const geo::Point p{rng.uniform(10, kArea - 10), rng.uniform(10, kArea - 10)};
    objs.push_back(w.register_object(ObjectId{i}, p));
    EXPECT_TRUE(objs.back()->tracked());
    all.push_back({ObjectId{i}, {p, objs.back()->offered_acc()}});
  }
  return objs;
}

// --- end-to-end merge equivalence --------------------------------------------

TEST(QueryMerge, WideFanOutRangeAnswersMatchOracleWithoutDuplicates) {
  SimWorld w(core::HierarchyBuilder::table2(geo::Rect{{0, 0}, {kArea, kArea}}));
  std::vector<ObjectResult> all;
  const auto objs = populate(w, 160, all);
  auto qc = w.make_query_client(w.deployment->leaf_ids()[0]);

  const geo::Polygon areas[] = {
      rect_poly(0, 0, kArea, kArea),              // full fan-out, every leaf
      rect_poly(kArea / 4, kArea / 4, 3 * kArea / 4, 3 * kArea / 4),  // center
      rect_poly(10, 10, kArea / 3, kArea / 3),    // one corner
      rect_poly(kArea / 2 - 1, 0, kArea / 2 + 1, kArea),  // thin seam strip
  };
  for (const geo::Polygon& area : areas) {
    const auto res = w.range_query(*qc, area, 50.0, 0.9);
    EXPECT_TRUE(res.complete);
    // No duplicates: dedup-on-emit must never let an object appear twice.
    std::vector<ObjectId> ids = sorted_ids(res.objects);
    EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
    EXPECT_EQ(ids, sorted_ids(oracle_range(all, area, 50.0, 0.9)));
  }

  // The wide query fans out to every leaf, so the entry must have pinned
  // sub-result datagrams (zero-copy merge) rather than copying them.
  const auto stats = w.deployment->total_stats();
  EXPECT_GT(stats.sub_res_pinned, 0u);
  EXPECT_EQ(stats.sub_res_copied, 0u);

  for (int i = 0; i < 24; ++i) {
    const geo::Point p{37.0 * (i + 1), kArea - 31.0 * (i + 1) * 0.7};
    const auto nn = w.nn_query(*qc, p, 50.0, 0.0);
    const auto expected = oracle_nearest(all, p, 50.0);
    ASSERT_EQ(nn.found, expected.has_value());
    if (expected) {
      EXPECT_EQ(nn.nearest.oid, expected->oid);
    }
  }
}

TEST(QueryMerge, EmittedRangeResultIsByteIdenticalToCanonicalEncoding) {
  SimWorld w(core::HierarchyBuilder::table2(geo::Rect{{0, 0}, {kArea, kArea}}));
  std::vector<ObjectResult> all;
  const auto objs = populate(w, 80, all);
  auto qc = w.make_query_client(w.deployment->leaf_ids()[1]);

  // Capture every RangeQueryRes datagram the entry emits.
  std::vector<wm::Buffer> finals;
  w.net.set_tracer([&](TimePoint, NodeId, NodeId, const wm::Buffer& b) {
    if (b.size() > 1 && static_cast<wm::MsgType>(b[1]) == wm::MsgType::kRangeQueryRes) {
      finals.push_back(b);
    }
  });
  const auto res = w.range_query(*qc, rect_poly(0, 0, kArea, kArea), 50.0, 0.9);
  EXPECT_TRUE(res.complete);
  ASSERT_EQ(finals.size(), 1u);

  // The direct-emit bytes must decode and re-encode to the very same bytes
  // (i.e. the merge loop writes the canonical encoding).
  const auto decoded = wm::decode_envelope(finals[0]);
  ASSERT_TRUE(decoded.ok());
  const wm::Buffer reencoded =
      wm::encode_envelope(decoded.value().src, decoded.value().msg);
  EXPECT_EQ(finals[0], reencoded);
}

// --- handcrafted sub-results: dedup, legacy framing, timeouts ----------------

/// Harness around one ENTRY server with two fake children: the test plays
/// the children, so it controls exactly which sub-results arrive and how
/// they are framed.
struct EntryHarness {
  net::SimNetwork net;
  core::ConfigRecord cfg;
  core::LocationServer server;
  NodeId client{900};
  std::uint64_t fwd_req_id = 0;
  geo::Polygon fwd_area;
  int fwds_seen = 0;
  std::optional<core::QueryClient::RangeResult> answer;

  static core::ConfigRecord entry_cfg() {
    core::ConfigRecord cfg;
    cfg.sa = geo::Polygon::from_rect(geo::Rect{{0, 0}, {1000, 1000}});
    cfg.parent = kNoNode;
    // Two children tiling the root area: the entry is a pure coordinator.
    cfg.children.push_back(
        {NodeId{2}, geo::Polygon::from_rect(geo::Rect{{0, 0}, {500, 1000}})});
    cfg.children.push_back(
        {NodeId{3}, geo::Polygon::from_rect(geo::Rect{{500, 0}, {1000, 1000}})});
    return cfg;
  }

  EntryHarness() : server(NodeId{1}, entry_cfg(), net, net.clock(), {}) {
    net.attach(NodeId{1}, net::DatagramHandler([this](const net::Datagram& dg) {
                 server.handle(dg);
               }));
    // Both fake children record the forwarded query's internal req id.
    for (const std::uint32_t child : {2u, 3u}) {
      net.attach(NodeId{child}, [this](const std::uint8_t* d, std::size_t l) {
        const auto decoded = wm::decode_envelope(d, l);
        ASSERT_TRUE(decoded.ok());
        if (const auto* fwd = std::get_if<wm::RangeQueryFwd>(&decoded.value().msg)) {
          fwd_req_id = fwd->req_id;
          fwd_area = fwd->area;
          ++fwds_seen;
        }
      });
    }
    net.attach(client, [this](const std::uint8_t* d, std::size_t l) {
      const auto decoded = wm::decode_envelope(d, l);
      ASSERT_TRUE(decoded.ok());
      if (const auto* res = std::get_if<wm::RangeQueryRes>(&decoded.value().msg)) {
        answer = core::QueryClient::RangeResult{res->complete,
                                                res->results.to_vector()};
      }
    });
  }

  void start_query() {
    wm::RangeQueryReq req;
    req.area = geo::Polygon::from_rect(geo::Rect{{0, 0}, {1000, 1000}});
    req.req_id = 77;
    net.send(client, NodeId{1}, wm::encode_envelope(client, req));
    net.run_until_idle();
    ASSERT_EQ(fwds_seen, 2);
  }

  /// One child's packed (version 2) sub-result.
  void send_packed_sub(NodeId from, double covered,
                       const std::vector<ObjectResult>& results) {
    wm::RangeQuerySubRes sub;
    sub.req_id = fwd_req_id;
    sub.covered_size = covered;
    sub.results.assign(results);
    net.send(from, NodeId{1}, wm::encode_envelope(from, sub));
    net.run_until_idle();
  }

  /// One child's LEGACY (version 1, length-prefixed vector) sub-result.
  void send_v1_sub(NodeId from, double covered,
                   const std::vector<ObjectResult>& results) {
    wm::Buffer v1;
    {
      wm::Writer w(v1);
      w.u8(wm::kWireVersion);
      w.u8(static_cast<std::uint8_t>(wm::MsgType::kRangeQuerySubRes));
      w.u32_fixed(from.value);
      w.u64(fwd_req_id);
      w.f64(covered);
      w.u64(results.size());
      for (const ObjectResult& r : results) {
        w.u64(r.oid.value);
        w.f64(r.ld.pos.x);
        w.f64(r.ld.pos.y);
        w.f64(r.ld.acc);
      }
      w.boolean(false);  // no origin piggyback
    }
    net.send(from, NodeId{1}, std::move(v1));
    net.run_until_idle();
  }
};

TEST(QueryMerge, DedupOnEmitDropsCrossSegmentDuplicates) {
  EntryHarness h;
  h.start_query();
  const ObjectResult dup{ObjectId{42}, {{500.0, 500.0}, 10.0}};
  // Both children report the seam object (overlapping coverage, as a §6.5
  // direct query against stale cached areas could produce).
  h.send_packed_sub(NodeId{2}, h.fwd_area.area() / 2.0,
                    {{ObjectId{10}, {{100, 100}, 10.0}}, dup});
  h.send_packed_sub(NodeId{3}, h.fwd_area.area() / 2.0,
                    {dup, {ObjectId{11}, {{900, 100}, 10.0}}});
  ASSERT_TRUE(h.answer.has_value());
  EXPECT_TRUE(h.answer->complete);
  const std::vector<ObjectId> ids = sorted_ids(h.answer->objects);
  EXPECT_EQ(ids, (std::vector<ObjectId>{ObjectId{10}, ObjectId{11}, ObjectId{42}}));
  EXPECT_EQ(h.server.stats().merge_dedup_dropped, 1u);
  EXPECT_EQ(h.server.stats().sub_res_pinned, 2u);
}

TEST(QueryMerge, LegacyV1SubResultsStillMerge) {
  EntryHarness h;
  h.start_query();
  h.send_v1_sub(NodeId{2}, h.fwd_area.area() / 2.0,
                {{ObjectId{7}, {{10, 10}, 5.0}}});
  h.send_packed_sub(NodeId{3}, h.fwd_area.area() / 2.0,
                    {{ObjectId{8}, {{990, 990}, 5.0}}});
  ASSERT_TRUE(h.answer.has_value());
  EXPECT_TRUE(h.answer->complete);
  EXPECT_EQ(sorted_ids(h.answer->objects),
            (std::vector<ObjectId>{ObjectId{7}, ObjectId{8}}));
  // One legacy copy, one pinned view.
  EXPECT_EQ(h.server.stats().sub_res_copied, 1u);
  EXPECT_EQ(h.server.stats().sub_res_pinned, 1u);
}

TEST(QueryMerge, TimeoutEmitsPartialAnswerAndReleasesPins) {
  EntryHarness h;
  h.start_query();
  h.send_packed_sub(NodeId{2}, h.fwd_area.area() / 2.0,
                    {{ObjectId{5}, {{50, 50}, 5.0}}});
  ASSERT_FALSE(h.answer.has_value());  // half the coverage still missing
  // Let the pending deadline lapse: the entry must answer with what it has.
  h.net.clock().advance(h.server.options().pending_timeout + 1);
  h.server.tick(h.net.now());
  h.net.run_until_idle();
  ASSERT_TRUE(h.answer.has_value());
  EXPECT_FALSE(h.answer->complete);
  EXPECT_EQ(sorted_ids(h.answer->objects), (std::vector<ObjectId>{ObjectId{5}}));
}

// --- coalesced forwarding-path maintenance -----------------------------------

struct PathTraffic {
  std::uint64_t create_or_remove = 0;  // unbatched CreatePath/RemovePath
  std::uint64_t path_batches = 0;      // BatchedPathUpdate datagrams
};

/// Runs a registration burst + deregistration sweep and returns the final
/// per-object position answers plus the observed path traffic.
std::pair<std::vector<std::string>, PathTraffic> run_path_workload(bool coalesce) {
  core::LocationServer::Options opts;
  opts.coalesce_paths = coalesce;
  SimWorld w(core::HierarchyBuilder::table2(geo::Rect{{0, 0}, {kArea, kArea}}),
             opts);
  auto counts = std::make_shared<PathTraffic>();
  w.net.set_tracer([counts](TimePoint, NodeId, NodeId, const wm::Buffer& b) {
    if (b.size() < 2) return;
    const auto t = static_cast<wm::MsgType>(b[1]);
    if (t == wm::MsgType::kCreatePath || t == wm::MsgType::kRemovePath) {
      ++counts->create_or_remove;
    } else if (t == wm::MsgType::kBatchedPathUpdate) {
      ++counts->path_batches;
    }
  });

  // Registration BURST: all requests enter the network before any delivery,
  // so the leaves' path coalescers see back-to-back CreatePaths.
  constexpr std::uint64_t kObjects = 120;
  Rng rng(99);
  std::vector<geo::Point> pos(kObjects + 1);
  for (std::uint64_t i = 1; i <= kObjects; ++i) {
    pos[i] = {rng.uniform(10, kArea - 10), rng.uniform(10, kArea - 10)};
    wm::RegisterReq req;
    req.s = {ObjectId{i}, 0, pos[i], 1.0};
    req.acc_range = {10.0, 100.0};
    req.reg_inst = NodeId{901};
    req.req_id = i;
    w.net.send(NodeId{901}, w.deployment->entry_leaf_for(pos[i]),
               wm::encode_envelope(NodeId{901}, req));
  }
  w.run();
  // Deadline-flush any partial path batches and deliver them.
  for (int i = 0; i < 3; ++i) {
    w.net.clock().advance(core::LocationServer::Options{}.path_batch_delay + 1);
    w.tick();
    w.run();
  }

  // Deregister a third of the objects as a burst (RemovePath pruning), then
  // flush again.
  for (std::uint64_t i = 1; i <= kObjects; i += 3) {
    w.net.send(NodeId{901}, w.deployment->entry_leaf_for(pos[i]),
               wm::encode_envelope(NodeId{901}, wm::DeregisterReq{ObjectId{i}}));
  }
  w.run();
  for (int i = 0; i < 3; ++i) {
    w.net.clock().advance(core::LocationServer::Options{}.path_batch_delay + 1);
    w.tick();
    w.run();
  }

  // Final observable state: position answers for every object, issued from a
  // REMOTE leaf so they traverse the forwarding paths built above.
  auto qc = w.make_query_client(w.deployment->leaf_ids()[3]);
  std::vector<std::string> answers;
  for (std::uint64_t i = 1; i <= kObjects; ++i) {
    const auto res = w.pos_query(*qc, ObjectId{i});
    char buf[96];
    std::snprintf(buf, sizeof buf, "%llu:%d(%.6f,%.6f)",
                  static_cast<unsigned long long>(i), res.found ? 1 : 0,
                  res.found ? res.ld.pos.x : 0.0, res.found ? res.ld.pos.y : 0.0);
    answers.emplace_back(buf);
  }
  return {answers, *counts};
}

TEST(QueryMerge, CoalescedPathMaintenanceMatchesUnbatchedWithFewerDatagrams) {
  const auto [plain_answers, plain_traffic] = run_path_workload(false);
  const auto [coalesced_answers, coalesced_traffic] = run_path_workload(true);

  // Identical externally observable state...
  EXPECT_EQ(plain_answers, coalesced_answers);

  // ...with the per-object path messages collapsed into batches.
  EXPECT_EQ(coalesced_traffic.create_or_remove, 0u);
  EXPECT_GT(plain_traffic.create_or_remove, 0u);
  EXPECT_GT(coalesced_traffic.path_batches, 0u);
  EXPECT_LT(coalesced_traffic.path_batches, plain_traffic.create_or_remove / 4);
}

}  // namespace
}  // namespace locs::test
