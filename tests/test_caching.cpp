// §6.5 caching: the three cache types, their hit paths, staleness handling,
// and that cached answers remain semantically correct.
#include <gtest/gtest.h>

#include "core/caches.hpp"
#include "test_support.hpp"

namespace locs::test {
namespace {

const geo::Rect kArea{{0, 0}, {1000, 1000}};

core::LocationServer::Options cached_opts() {
  core::LocationServer::Options opts;
  opts.enable_leaf_area_cache = true;
  opts.enable_agent_cache = true;
  opts.enable_position_cache = false;  // enabled per-test (changes semantics)
  return opts;
}

TEST(CacheUnits, LeafAreaCoverage) {
  core::LeafAreaCache cache;
  cache.learn(NodeId{1}, geo::Polygon::from_rect(geo::Rect{{0, 0}, {100, 100}}));
  cache.learn(NodeId{2}, geo::Polygon::from_rect(geo::Rect{{100, 0}, {200, 100}}));
  const auto cov = cache.coverage_of(
      geo::Polygon::from_rect(geo::Rect{{50, 10}, {150, 90}}));
  EXPECT_EQ(cov.leaves.size(), 2u);
  EXPECT_NEAR(cov.covered_size, 100.0 * 80.0, 1e-6);
  EXPECT_EQ(cache.leaf_containing({150, 50}), NodeId{2});
  EXPECT_EQ(cache.leaf_containing({500, 500}), kNoNode);
}

TEST(CacheUnits, AgentCacheTtl) {
  core::ObjectAgentCache cache(10, seconds(10));
  cache.learn(ObjectId{1}, NodeId{5}, 0);
  EXPECT_EQ(cache.find(ObjectId{1}, seconds(5)).value_or(kNoNode), NodeId{5});
  EXPECT_FALSE(cache.find(ObjectId{1}, seconds(11)).has_value());
  cache.invalidate(ObjectId{1});
  EXPECT_FALSE(cache.find(ObjectId{1}, 0).has_value());
}

TEST(CacheUnits, PositionCacheAgesAccuracy) {
  core::PositionCache cache;
  cache.learn(ObjectId{1}, {{100, 100}, 10.0}, 0);
  // After 5 s at max speed 4 m/s the accuracy degraded to 30.
  const auto aged = cache.find(ObjectId{1}, seconds(5), 4.0, 50.0);
  ASSERT_TRUE(aged.has_value());
  EXPECT_DOUBLE_EQ(aged->acc, 30.0);
  // Beyond the acceptable bound: miss.
  EXPECT_FALSE(cache.find(ObjectId{1}, seconds(20), 4.0, 50.0).has_value());
}

TEST(Caching, AgentCacheShortensSecondQuery) {
  SimWorld world(core::HierarchyBuilder::fig6(kArea), cached_opts());
  auto obj = world.register_object(ObjectId{1}, {600, 100}, 1.0, {10.0, 50.0});
  ASSERT_EQ(obj->agent(), NodeId{6});
  auto qc = world.make_query_client(NodeId{4});

  const auto res1 = world.pos_query(*qc, ObjectId{1});
  ASSERT_TRUE(res1.found);
  const std::uint64_t msgs_before = world.net.messages_sent();
  const auto res2 = world.pos_query(*qc, ObjectId{1});
  ASSERT_TRUE(res2.found);
  const std::uint64_t second_query_msgs = world.net.messages_sent() - msgs_before;
  // Direct: client->entry, entry->agent, agent->entry, entry->client = 4
  // (vs 7 via the hierarchy: 4-2-1-3-6 + 6->4 + 4->client).
  EXPECT_EQ(second_query_msgs, 4u);
  EXPECT_EQ(world.deployment->server(NodeId{4}).stats().agent_cache_hits, 1u);
}

TEST(Caching, StaleAgentCacheFallsBackAndRecovers) {
  SimWorld world(core::HierarchyBuilder::fig6(kArea), cached_opts());
  auto obj = world.register_object(ObjectId{1}, {600, 100}, 1.0, {10.0, 50.0});
  auto qc = world.make_query_client(NodeId{4});
  ASSERT_TRUE(world.pos_query(*qc, ObjectId{1}).found);  // seeds cache: agent 6

  obj->feed_position({600, 900});  // handover s6 -> s7
  world.run();
  ASSERT_EQ(obj->agent(), NodeId{7});

  // Next query from s4 hits the stale cache entry (s6). s6 answers
  // negatively; the entry returns not-found for this query (documented
  // semantics under concurrent movement) and invalidates the entry...
  const auto stale = world.pos_query(*qc, ObjectId{1});
  // ...so the following query goes through the hierarchy and succeeds.
  const auto fresh = world.pos_query(*qc, ObjectId{1});
  ASSERT_TRUE(fresh.found);
  EXPECT_EQ(fresh.ld.pos, (geo::Point{600, 900}));
  (void)stale;
}

TEST(Caching, DirectHandoverViaLeafAreaCache) {
  SimWorld world(core::HierarchyBuilder::fig6(kArea), cached_opts());
  auto obj = world.register_object(ObjectId{1}, {100, 100}, 1.0, {10.0, 50.0});
  ASSERT_EQ(obj->agent(), NodeId{4});

  // Seed s4's leaf-area cache with s5's area via a range query whose
  // sub-result piggybacks s5's service area.
  auto qc = world.make_query_client(NodeId{4});
  world.range_query(
      *qc, geo::Polygon::from_rect(geo::Rect{{100, 600, }, {200, 700}}), 25.0, 0.5);
  ASSERT_GT(world.deployment->server(NodeId{4}).leaf_area_cache().size(), 0u);

  // Handover into s5's area now goes directly (stats: handovers_direct).
  obj->feed_position({150, 650});
  world.run();
  EXPECT_EQ(obj->agent(), NodeId{5});
  EXPECT_EQ(world.deployment->server(NodeId{4}).stats().handovers_direct, 1u);
  // The forwarding path must still be repaired (createPath + removePath).
  const auto* root_rec = world.deployment->server(NodeId{1}).visitors().find(ObjectId{1});
  ASSERT_NE(root_rec, nullptr);
  EXPECT_EQ(root_rec->forward_ref, NodeId{2});
  const auto* s2_rec = world.deployment->server(NodeId{2}).visitors().find(ObjectId{1});
  ASSERT_NE(s2_rec, nullptr);
  EXPECT_EQ(s2_rec->forward_ref, NodeId{5});
  // Queries still find the object.
  const auto res = world.pos_query(*qc, ObjectId{1});
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.ld.pos, (geo::Point{150, 650}));
}

TEST(Caching, DirectRangeQueryWhenCacheCoversArea) {
  SimWorld world(core::HierarchyBuilder::fig6(kArea), cached_opts());
  auto o6 = world.register_object(ObjectId{1}, {700, 300}, 1.0, {10.0, 50.0});
  auto o7 = world.register_object(ObjectId{2}, {700, 700}, 1.0, {10.0, 50.0});
  auto qc = world.make_query_client(NodeId{4});
  const geo::Polygon area =
      geo::Polygon::from_rect(geo::Rect{{650, 250}, {750, 750}});
  // First query goes through the hierarchy and learns s6/s7 areas.
  const auto res1 = world.range_query(*qc, area, 25.0, 0.5);
  EXPECT_EQ(res1.objects.size(), 2u);
  // Second identical query can go direct if the cached areas cover it.
  const std::uint64_t direct_before =
      world.deployment->server(NodeId{4}).stats().range_direct;
  const auto res2 = world.range_query(*qc, area, 25.0, 0.5);
  EXPECT_EQ(sorted_ids(res2.objects), sorted_ids(res1.objects));
  EXPECT_EQ(world.deployment->server(NodeId{4}).stats().range_direct,
            direct_before + 1);
}

TEST(Caching, PositionCacheServesRepeatQueriesWithAgedAccuracy) {
  auto opts = cached_opts();
  opts.enable_position_cache = true;
  opts.default_max_speed = 10.0;
  opts.position_cache_max_acc = 100.0;
  SimWorld world(core::HierarchyBuilder::fig6(kArea), opts);
  auto obj = world.register_object(ObjectId{1}, {600, 100}, 1.0, {10.0, 50.0});
  auto qc = world.make_query_client(NodeId{4});
  ASSERT_TRUE(world.pos_query(*qc, ObjectId{1}).found);  // seeds the cache

  world.advance(seconds(2));
  const std::uint64_t msgs_before = world.net.messages_sent();
  const auto res = world.pos_query(*qc, ObjectId{1});
  ASSERT_TRUE(res.found);
  // Served from cache: exactly 2 messages (client->entry, entry->client).
  EXPECT_EQ(world.net.messages_sent() - msgs_before, 2u);
  // Accuracy aged by ~2 s * 10 m/s on top of the stored 10 m.
  EXPECT_GT(res.ld.acc, 10.0);
  EXPECT_LE(res.ld.acc, 40.0);
  EXPECT_GE(world.deployment->server(NodeId{4}).stats().pos_query_cache_hits, 1u);
}

TEST(Caching, PositionCacheExpiresByAccuracyBound) {
  auto opts = cached_opts();
  opts.enable_position_cache = true;
  opts.default_max_speed = 10.0;
  opts.position_cache_max_acc = 50.0;
  SimWorld world(core::HierarchyBuilder::fig6(kArea), opts);
  auto obj = world.register_object(ObjectId{1}, {600, 100}, 1.0, {10.0, 50.0});
  auto qc = world.make_query_client(NodeId{4});
  ASSERT_TRUE(world.pos_query(*qc, ObjectId{1}).found);
  // After 10 s the aged accuracy (10 + 100) exceeds the 50 m bound: the
  // query must go to the network again.
  world.advance(seconds(10));
  const std::uint64_t msgs_before = world.net.messages_sent();
  ASSERT_TRUE(world.pos_query(*qc, ObjectId{1}).found);
  EXPECT_GT(world.net.messages_sent() - msgs_before, 2u);
}

TEST(Caching, DisabledCachesNeverHit) {
  SimWorld world(core::HierarchyBuilder::fig6(kArea));  // defaults: all off
  auto obj = world.register_object(ObjectId{1}, {600, 100}, 1.0, {10.0, 50.0});
  auto qc = world.make_query_client(NodeId{4});
  world.pos_query(*qc, ObjectId{1});
  world.pos_query(*qc, ObjectId{1});
  const auto& stats = world.deployment->server(NodeId{4}).stats();
  EXPECT_EQ(stats.agent_cache_hits, 0u);
  EXPECT_EQ(stats.pos_query_cache_hits, 0u);
  EXPECT_EQ(world.deployment->server(NodeId{4}).leaf_area_cache().size(), 0u);
}

}  // namespace
}  // namespace locs::test
