// City-scale macro-scenario suite (sim/scenario.hpp) + skew-aware shard
// balancing (ShardedLocationServer::Balance):
//
//  * every scenario kind replays bit-identically (same seed => same trace
//    CRC, the ISSUE's determinism bar; population via LOCS_MACRO_OBJECTS,
//    default 100k -- the suite carries the `macro`/`slow` ctest labels),
//  * sharded leaves answer exactly like unsharded ones at N in {1, 4}, with
//    the bucket rebalancer on or off (answer-CRC equivalence),
//  * the balancer never loses or duplicates a visitor: after a skewed run
//    every object lives in EXACTLY one shard slice, at its last position,
//  * the shard-key fix is pinned: raw modulo routing aliases a strided-id
//    crowd onto ONE shard (the old behavior, kept under mix_keys = false
//    for control runs), the splitmix64-mixed key spreads it evenly.
#include <gtest/gtest.h>

#include <cstdlib>
#include <unordered_map>
#include <vector>

#include "core/update_coalescer.hpp"
#include "sim/scenario.hpp"
#include "test_support.hpp"

namespace locs::test {
namespace {

using core::ShardedLocationServer;

std::size_t macro_objects() {
  const char* v = std::getenv("LOCS_MACRO_OBJECTS");
  if (v == nullptr || *v == '\0') return 100000;
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

sim::ScenarioParams macro_params(sim::ScenarioKind kind, std::size_t objects,
                                 int rounds) {
  sim::ScenarioParams p;
  p.kind = kind;
  p.seed = 23;
  p.objects = objects;
  p.rounds = rounds;
  return p;
}

TEST(MacroScenarios, EveryKindReplaysBitIdentically) {
  const std::size_t objects = macro_objects();
  const sim::ScenarioKind kinds[] = {
      sim::ScenarioKind::kCommuterRush, sim::ScenarioKind::kFlashCrowd,
      sim::ScenarioKind::kConvoys, sim::ScenarioKind::kDayNight};
  for (const sim::ScenarioKind kind : kinds) {
    SCOPED_TRACE(sim::scenario_name(kind));
    const sim::ScenarioParams p = macro_params(kind, objects, 3);
    sim::DriveOptions opts;
    opts.pos_probes = 64;
    const sim::DriveResult a = sim::drive_scenario(p, opts);
    const sim::DriveResult b = sim::drive_scenario(p, opts);
    EXPECT_EQ(a.trace_crc, b.trace_crc);
    EXPECT_EQ(a.answer_crc, b.answer_crc);
    EXPECT_EQ(a.messages, b.messages);
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(a.sightings_emitted, b.sightings_emitted);
    EXPECT_GT(a.sightings_emitted, 0u);
  }
}

TEST(MacroScenarios, DifferentSeedsDiverge) {
  sim::ScenarioParams p = macro_params(sim::ScenarioKind::kCommuterRush, 2000, 2);
  sim::DriveOptions opts;
  opts.pos_probes = 32;
  const sim::DriveResult a = sim::drive_scenario(p, opts);
  p.seed = 24;
  const sim::DriveResult b = sim::drive_scenario(p, opts);
  EXPECT_NE(a.trace_crc, b.trace_crc);
}

// Sharding is an implementation detail of a leaf: for N in {1, 4}, with and
// without the rebalancer, the flash-crowd run must produce the same query
// answers as plain LocationServer leaves (the trace differs -- batches are
// split per shard -- but the soft state and the answers must not).
TEST(MacroScenarios, ShardedAnswersMatchUnshardedAtN1AndN4) {
  const sim::ScenarioParams p =
      macro_params(sim::ScenarioKind::kFlashCrowd, 4000, 3);
  sim::DriveOptions unsharded;
  unsharded.pos_probes = 64;
  const sim::DriveResult base = sim::drive_scenario(p, unsharded);
  ASSERT_GT(base.sightings_emitted, 0u);

  sim::DriveOptions n1 = unsharded;
  n1.leaf_shards = 1;
  n1.force_leaf_sharding = true;
  const sim::DriveResult one = sim::drive_scenario(p, n1);
  EXPECT_EQ(one.answer_crc, base.answer_crc);
  // The single-shard wrapper is pass-through: even the trace is identical.
  EXPECT_EQ(one.trace_crc, base.trace_crc);

  sim::DriveOptions n4 = unsharded;
  n4.leaf_shards = 4;
  const sim::DriveResult four = sim::drive_scenario(p, n4);
  EXPECT_EQ(four.answer_crc, base.answer_crc);

  sim::DriveOptions balanced = n4;
  balanced.balance.mix_keys = false;  // alias the crowd onto one shard...
  balanced.balance.rebalance = true;  // ...and make the sweep repair it
  balanced.balance.min_imbalance = 16;
  const sim::DriveResult rebal = sim::drive_scenario(p, balanced);
  EXPECT_EQ(rebal.answer_crc, base.answer_crc);
  EXPECT_GT(rebal.buckets_migrated, 0u);
  EXPECT_GT(rebal.objects_migrated, 0u);
}

// Drives a skewed population directly (strided ids, one hot leaf) and then
// audits every shard slice: a migrated visitor must exist in EXACTLY one
// slice, at its last reported position -- the balancer moves soft state, it
// never forks or drops it.
TEST(MacroScenarios, BalancerNeverLosesOrDuplicatesAVisitor) {
  constexpr double kArea = 2000.0;
  constexpr std::size_t kObjects = 2000;
  constexpr std::uint64_t kStride = 64;

  core::Deployment::Config cfg;
  cfg.leaf_shards = 4;
  cfg.leaf_balance.mix_keys = false;
  cfg.leaf_balance.rebalance = true;
  cfg.leaf_balance.min_imbalance = 16;
  SimWorld w(core::HierarchyBuilder::grid(geo::Rect{{0, 0}, {kArea, kArea}}, 2, 2, 1),
             cfg);
  const NodeId gateway{901};

  std::unordered_map<ObjectId, geo::Point> last;
  core::UpdateCoalescer coalescer(gateway, w.net, w.net.clock(), {});

  Rng rng(5);
  std::vector<ObjectId> oids;
  for (std::size_t j = 0; j < kObjects; ++j) {
    const ObjectId oid{1 + j * kStride};
    // Everything in the lower-left leaf: one hot leaf, one hot shard.
    const geo::Point p{rng.uniform(1.0, kArea / 2 - 1),
                       rng.uniform(1.0, kArea / 2 - 1)};
    wire::RegisterReq req;
    req.s = core::Sighting{oid, 0, p, 5.0};
    req.acc_range = {10.0, 100.0};
    req.reg_inst = gateway;
    req.req_id = oid.value;
    const NodeId leaf = w.deployment->entry_leaf_for(p);
    w.net.send(gateway, leaf, wire::encode_envelope(gateway, req));
    last[oid] = p;
    oids.push_back(oid);
  }
  w.run();

  const NodeId hot_leaf = w.deployment->entry_leaf_for({1.0, 1.0});
  for (int round = 0; round < 4; ++round) {
    for (const ObjectId oid : oids) {
      const geo::Point p{rng.uniform(1.0, kArea / 2 - 1),
                         rng.uniform(1.0, kArea / 2 - 1)};
      coalescer.enqueue(hot_leaf, core::Sighting{oid, 0, p, 5.0});
      last[oid] = p;
    }
    coalescer.flush_all();
    w.run();
    w.tick();  // rebalance sweep
    w.run();
  }
  for (int k = 0; k < 8; ++k) {  // let the sweep converge
    w.tick();
    w.run();
  }

  ShardedLocationServer* sharded = w.deployment->sharded(hot_leaf);
  ASSERT_NE(sharded, nullptr);
  EXPECT_GT(sharded->buckets_migrated(), 0u);
  EXPECT_GT(sharded->objects_migrated(), 0u);

  std::size_t total = 0;
  for (std::uint32_t s = 0; s < sharded->shard_count(); ++s) {
    total += sharded->shard(s).sightings()->size();
  }
  EXPECT_EQ(total, kObjects);
  for (const ObjectId oid : oids) {
    int copies = 0;
    const store::SightingDb::Record* found = nullptr;
    for (std::uint32_t s = 0; s < sharded->shard_count(); ++s) {
      const store::SightingDb::Record* rec = sharded->shard(s).sightings()->find(oid);
      if (rec != nullptr) {
        ++copies;
        found = rec;
      }
    }
    ASSERT_EQ(copies, 1) << "oid " << oid.value;
    EXPECT_EQ(found->sighting.pos, last[oid]) << "oid " << oid.value;
  }
  // Post-sweep routing agrees with where the objects actually live.
  for (const ObjectId oid : oids) {
    const std::uint32_t s = sharded->shard_for(oid);
    EXPECT_NE(sharded->shard(s).sightings()->find(oid), nullptr);
  }
}

// Pin the shard-key distributions: raw modulo (mix_keys = false, the
// pre-fix key) sends EVERY strided id to one shard; the splitmix64
// finalizer spreads them -- and with rebalancing off its bucket table must
// route exactly like the static mixed hash (the existing sharded-trace
// fingerprints depend on this).
TEST(MacroScenarios, ShardKeyMixingFixesStridedAliasing) {
  constexpr double kArea = 1000.0;
  constexpr std::uint32_t kShards = 4;
  constexpr std::size_t kIds = 512;
  constexpr std::uint64_t kStride = 64;

  const auto make_world = [&](bool mix) {
    core::Deployment::Config cfg;
    cfg.leaf_shards = kShards;
    cfg.leaf_balance.mix_keys = mix;
    return std::make_unique<SimWorld>(
        core::HierarchyBuilder::grid(geo::Rect{{0, 0}, {kArea, kArea}}, 2, 2, 1),
        cfg);
  };

  const auto raw = make_world(false);
  const auto mixed = make_world(true);
  const NodeId leaf = raw->deployment->leaf_ids().front();
  ShardedLocationServer* raw_sh = raw->deployment->sharded(leaf);
  ShardedLocationServer* mix_sh = mixed->deployment->sharded(leaf);
  ASSERT_NE(raw_sh, nullptr);
  ASSERT_NE(mix_sh, nullptr);

  std::vector<std::size_t> raw_counts(kShards, 0), mix_counts(kShards, 0);
  for (std::size_t j = 0; j < kIds; ++j) {
    const ObjectId oid{1 + j * kStride};
    ++raw_counts[raw_sh->shard_for(oid)];
    ++mix_counts[mix_sh->shard_for(oid)];
    // Default table == static mixed hash (bucket indirection is invisible
    // until a rebalance actually moves something).
    EXPECT_EQ(mix_sh->shard_for(oid),
              ShardedLocationServer::shard_of(oid, kShards));
  }
  // Old behavior, kept as the control knob: total aliasing onto one shard.
  EXPECT_EQ(*std::max_element(raw_counts.begin(), raw_counts.end()), kIds);
  // Fixed key: no shard holds more than ~35% of a worst-case strided set.
  for (const std::size_t c : mix_counts) {
    EXPECT_LT(c, static_cast<std::size_t>(0.35 * kIds));
    EXPECT_GT(c, 0u);
  }
}

}  // namespace
}  // namespace locs::test
