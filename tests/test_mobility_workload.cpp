// Mobility models and workload generation (sim substrate).
#include <gtest/gtest.h>

#include "sim/mobility.hpp"
#include "sim/workload.hpp"

namespace locs::sim {
namespace {

const geo::Rect kArea{{0, 0}, {1000, 1000}};

class MobilityModels : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<MobilityModel> make(Rng& rng) {
    switch (GetParam()) {
      case 0:
        return make_random_waypoint(kArea, {500, 500}, 1.0, 10.0, seconds(5), rng);
      case 1:
        return make_manhattan(kArea, {500, 500}, 100.0, 5.0, rng);
      default:
        return make_gauss_markov(kArea, {500, 500}, 5.0, 0.8, rng);
    }
  }
};

TEST_P(MobilityModels, StaysInsideArea) {
  Rng rng(42 + GetParam());
  auto model = make(rng);
  for (int i = 0; i < 2000; ++i) {
    const geo::Point p = model->step(seconds(1));
    ASSERT_GE(p.x, kArea.min.x - 1e-9);
    ASSERT_LE(p.x, kArea.max.x + 1e-9);
    ASSERT_GE(p.y, kArea.min.y - 1e-9);
    ASSERT_LE(p.y, kArea.max.y + 1e-9);
  }
}

TEST_P(MobilityModels, SpeedBounded) {
  Rng rng(77 + GetParam());
  auto model = make(rng);
  geo::Point prev = model->position();
  for (int i = 0; i < 500; ++i) {
    const geo::Point p = model->step(seconds(1));
    // Max configured speed is 10 m/s; Gauss-Markov can overshoot its mean
    // with noise, so allow generous headroom.
    ASSERT_LE(geo::distance(prev, p), 40.0) << "step " << i;
    prev = p;
  }
}

TEST_P(MobilityModels, ActuallyMoves) {
  Rng rng(99 + GetParam());
  auto model = make(rng);
  const geo::Point start = model->position();
  double total = 0.0;
  geo::Point prev = start;
  for (int i = 0; i < 600; ++i) {
    const geo::Point p = model->step(seconds(1));
    total += geo::distance(prev, p);
    prev = p;
  }
  EXPECT_GT(total, 100.0);
}

TEST_P(MobilityModels, DeterministicUnderSeed) {
  Rng rng1(123), rng2(123);
  auto a = make(rng1);
  auto b = make(rng2);
  for (int i = 0; i < 200; ++i) {
    const geo::Point pa = a->step(seconds(1));
    const geo::Point pb = b->step(seconds(1));
    ASSERT_EQ(pa, pb) << "step " << i;
  }
}

std::string model_name(const ::testing::TestParamInfo<int>& info) {
  static const char* kNames[] = {"waypoint", "manhattan", "gauss_markov"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(Models, MobilityModels, ::testing::Values(0, 1, 2),
                         model_name);

TEST(Placement, UniformCoversArea) {
  Rng rng(5);
  const auto points = uniform_placement(kArea, 1000, rng);
  ASSERT_EQ(points.size(), 1000u);
  int quadrant_counts[4] = {};
  for (const geo::Point& p : points) {
    ASSERT_TRUE(kArea.contains(p));
    const int q = (p.x >= 500 ? 1 : 0) + (p.y >= 500 ? 2 : 0);
    ++quadrant_counts[q];
  }
  for (const int count : quadrant_counts) EXPECT_GT(count, 150);
}

TEST(Placement, HotspotsConcentrate) {
  Rng rng(6);
  const auto points = hotspot_placement(kArea, 2000, 3, 0.9, 30.0, rng);
  ASSERT_EQ(points.size(), 2000u);
  // With sigma 30 and 3 hotspots, density must be very uneven: measure the
  // max count over a 10x10 grid vs the uniform expectation.
  int grid[100] = {};
  for (const geo::Point& p : points) {
    ASSERT_TRUE(kArea.contains(p));
    const int gx = std::min(9, static_cast<int>(p.x / 100));
    const int gy = std::min(9, static_cast<int>(p.y / 100));
    ++grid[gy * 10 + gx];
  }
  EXPECT_GT(*std::max_element(grid, grid + 100), 100);  // uniform would be ~20
}

TEST(Placement, SampleInPolygonStaysInside) {
  Rng rng(7);
  const geo::Polygon l({{0, 0}, {40, 0}, {40, 20}, {20, 20}, {20, 40}, {0, 40}});
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(l.contains(sample_in_polygon(l, rng)));
  }
}

TEST(Workload, MixProportionsRoughlyRespected) {
  WorkloadParams params;
  params.area = kArea;
  params.mix = {0.6, 0.3, 0.1};
  WorkloadGenerator gen(params, 11);
  std::vector<ObjectId> population{ObjectId{1}, ObjectId{2}};
  int counts[3] = {};
  for (int i = 0; i < 5000; ++i) {
    const QueryOp op = gen.next({500, 500}, population);
    ++counts[static_cast<int>(op.kind)];
  }
  EXPECT_NEAR(counts[0] / 5000.0, 0.6, 0.05);
  EXPECT_NEAR(counts[1] / 5000.0, 0.3, 0.05);
  EXPECT_NEAR(counts[2] / 5000.0, 0.1, 0.05);
}

TEST(Workload, LocalityKeepsAnchorsNearby) {
  WorkloadParams params;
  params.area = kArea;
  params.locality = 1.0;
  params.local_radius = 100.0;
  WorkloadGenerator gen(params, 12);
  for (int i = 0; i < 500; ++i) {
    const geo::Point a = gen.anchor({500, 500});
    EXPECT_LE(geo::distance(a, {500, 500}), 100.0 + 1e-9);
  }
  // Zero locality: anchors spread over the whole area.
  WorkloadParams spread = params;
  spread.locality = 0.0;
  WorkloadGenerator gen2(spread, 13);
  double max_d = 0.0;
  for (int i = 0; i < 500; ++i) {
    max_d = std::max(max_d, geo::distance(gen2.anchor({500, 500}), {500, 500}));
  }
  EXPECT_GT(max_d, 300.0);
}

TEST(Workload, UpdateBurstsStayInBoundsAndMix) {
  WorkloadParams params;
  params.area = kArea;
  params.update_burst = {/*burst_prob=*/0.5, /*burst_min=*/4, /*burst_max=*/16};
  WorkloadGenerator gen(params, 21);
  std::size_t singles = 0, bursts = 0, total = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::uint32_t n = gen.next_update_burst();
    total += n;
    if (n == 1) {
      ++singles;
    } else {
      EXPECT_GE(n, 4u);
      EXPECT_LE(n, 16u);
      ++bursts;
    }
  }
  // Both arrival modes occur, and bursts push the mean well above 1 (the
  // batching lever bench_batched_update exercises).
  EXPECT_GT(singles, 0u);
  EXPECT_GT(bursts, 0u);
  EXPECT_GT(static_cast<double>(total) / 2000.0, 2.0);

  // Degenerate model: never bursts.
  WorkloadParams flat = params;
  flat.update_burst = {0.0, 4, 16};
  WorkloadGenerator gen2(flat, 22);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(gen2.next_update_burst(), 1u);
}

TEST(Workload, RangeAreasHaveConfiguredExtent) {
  WorkloadParams params;
  params.area = kArea;
  params.mix = {0.0, 1.0, 0.0};
  params.range_extent = 50.0;
  WorkloadGenerator gen(params, 14);
  const QueryOp op = gen.next({500, 500}, {});
  ASSERT_EQ(op.kind, QueryOp::Kind::kRange);
  const geo::Rect box = op.area.bounding_box();
  EXPECT_NEAR(box.width(), 50.0, 1e-9);
  EXPECT_NEAR(box.height(), 50.0, 1e-9);
}

}  // namespace
}  // namespace locs::sim
