// Receive-path borrow/lifetime contract (net/transport.hpp):
//  * Datagram::take is zero-copy when a backing buffer exists, a pooled copy
//    otherwise -- never a dangling view;
//  * the recvmmsg receive loop delivers bursts intact, re-provisions stolen
//    slots, and a pinned buffer stays valid across later batches (ASan in
//    the CI sanitize matrix verifies the lifetime claims for real);
//  * reassembled multi-fragment messages honor the same pin protocol;
//  * an entry server's range merge over real UDP -- sub-results pinned
//    across multiple recvmmsg batches -- produces correct answers.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "core/client.hpp"
#include "core/deployment.hpp"
#include "core/hierarchy_builder.hpp"
#include "net/udp_network.hpp"
#include "test_support.hpp"
#include "util/clock.hpp"

namespace locs::test {
namespace {

using net::BufferPool;
using net::Datagram;
using net::PooledBuffer;

wire::Buffer bytes_of(const char* s) {
  return wire::Buffer(reinterpret_cast<const std::uint8_t*>(s),
                      reinterpret_cast<const std::uint8_t*>(s) + std::strlen(s));
}

TEST(RxPath, TakeIsZeroCopyWithBackingAndCopiesWithout) {
  BufferPool pool;
  wire::Buffer payload = bytes_of("pinned payload");
  const std::uint8_t* heap = payload.data();

  // Backed datagram: take() steals the buffer; no bytes move.
  PooledBuffer backing(&pool, std::move(payload));
  Datagram dg(backing.data() + 7, backing.size() - 7, &backing);
  EXPECT_TRUE(dg.zero_copy());
  Datagram::Taken taken = dg.take(pool);
  EXPECT_EQ(taken.buf->data(), heap);     // same heap block
  EXPECT_EQ(taken.data, heap + 7);        // view preserved verbatim
  EXPECT_FALSE(backing.armed());          // handle was stolen cleanly
  EXPECT_FALSE(dg.zero_copy());           // only the first take is zero-copy

  // Second take of the same datagram: degrade to copy, never dangle.
  Datagram::Taken again = dg.take(pool);
  EXPECT_NE(again.data, heap + 7);
  EXPECT_EQ(0, std::memcmp(again.data, taken.data, dg.size()));

  // Borrow-only datagram: copy from the start.
  const wire::Buffer raw = bytes_of("borrow-only");
  Datagram borrow(raw.data(), raw.size());
  EXPECT_FALSE(borrow.zero_copy());
  Datagram::Taken copied = borrow.take(pool);
  EXPECT_NE(copied.data, raw.data());
  ASSERT_EQ(copied.buf->size(), raw.size());
  EXPECT_EQ(0, std::memcmp(copied.data, raw.data(), raw.size()));
}

TEST(RxPath, ExhaustedOrDisabledPoolStillServesCopies) {
  // "Pool exhaustion" is not a failure mode: an empty -- or even disabled --
  // fallback pool just allocates, so take() always degrades to copy, never
  // to a crash or a dangling view. (Pool LIFETIME is a separate contract:
  // transports own their pools and outlive every pin; see adopt_pool.)
  BufferPool pool;
  pool.set_enabled(false);
  const wire::Buffer raw = bytes_of("no pooling available");
  for (int i = 0; i < 3; ++i) {
    Datagram::Taken taken = Datagram(raw.data(), raw.size()).take(pool);
    ASSERT_EQ(taken.buf->size(), raw.size());
    EXPECT_EQ(0, std::memcmp(taken.data, raw.data(), raw.size()));
  }
  EXPECT_EQ(pool.free_count(), 0u);  // disabled: releases were plain frees
}

// --- real UDP receive loop ---------------------------------------------------

struct UdpEcho {
  std::mutex mu;
  std::vector<wire::Buffer> received;
  std::vector<Datagram::Taken> pinned;
  std::atomic<std::size_t> count{0};
};

TEST(RxPath, RecvmmsgBurstDeliversEveryDatagramIntact) {
  const std::uint16_t base = net::UdpNetwork::pick_free_base_port(4);
  net::UdpNetwork net(base);
  UdpEcho echo;
  constexpr std::size_t kBurst = 4 * net::UdpNetwork::kRecvBatch + 3;

  net.attach(NodeId{1}, [&](const std::uint8_t* d, std::size_t l) {
    std::lock_guard<std::mutex> lock(echo.mu);
    echo.received.emplace_back(d, d + l);
    echo.count.fetch_add(1);
  });
  net.attach(NodeId{2}, [](const std::uint8_t*, std::size_t) {});

  // Fire the whole burst back-to-back so the receiver drains it in
  // multi-datagram recvmmsg batches.
  for (std::size_t i = 0; i < kBurst; ++i) {
    wire::Buffer b(64);
    for (std::size_t j = 0; j < b.size(); ++j) {
      b[j] = static_cast<std::uint8_t>(i ^ (j * 7));
    }
    net.send(NodeId{2}, NodeId{1}, std::move(b));
  }
  for (int spin = 0; spin < 400 && echo.count.load() < kBurst; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(echo.count.load(), kBurst);

  // Every payload arrived bit-exact (order may differ; match by content).
  std::lock_guard<std::mutex> lock(echo.mu);
  std::vector<bool> seen(kBurst, false);
  for (const wire::Buffer& b : echo.received) {
    ASSERT_EQ(b.size(), 64u);
    const std::size_t i = b[0] ^ 0;  // j = 0 term recovers the index byte
    ASSERT_LT(i, kBurst);
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
    for (std::size_t j = 0; j < b.size(); ++j) {
      ASSERT_EQ(b[j], static_cast<std::uint8_t>(i ^ (j * 7)));
    }
  }
}

TEST(RxPath, PinnedDatagramSurvivesLaterBatches) {
  const std::uint16_t base = net::UdpNetwork::pick_free_base_port(4);
  net::UdpNetwork net(base);
  UdpEcho echo;
  constexpr std::size_t kTotal = 3 * net::UdpNetwork::kRecvBatch;

  // Pin EVERY datagram as it arrives: each steals its receive slot, forcing
  // the loop to re-provision slots continuously across batches.
  net.attach(NodeId{1}, net::DatagramHandler([&](const Datagram& dg) {
               std::lock_guard<std::mutex> lock(echo.mu);
               EXPECT_TRUE(dg.zero_copy());
               echo.pinned.push_back(dg.take(net.rx_pool()));
               echo.count.fetch_add(1);
             }));
  net.attach(NodeId{2}, [](const std::uint8_t*, std::size_t) {});

  for (std::size_t i = 0; i < kTotal; ++i) {
    wire::Buffer b(48, static_cast<std::uint8_t>(i));
    net.send(NodeId{2}, NodeId{1}, std::move(b));
  }
  for (int spin = 0; spin < 400 && echo.count.load() < kTotal; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(echo.count.load(), kTotal);

  // Every pinned view must still read its original payload -- buffers taken
  // in batch 1 must not have been recycled into batch 2 (ASan would flag a
  // use-after-free here if the loop reused stolen slots).
  std::lock_guard<std::mutex> lock(echo.mu);
  std::vector<bool> seen(kTotal, false);
  for (const Datagram::Taken& t : echo.pinned) {
    const std::uint8_t tag = t.data[0];
    ASSERT_LT(tag, kTotal);
    EXPECT_FALSE(seen[tag]);
    seen[tag] = true;
    for (std::size_t j = 0; j < 48; ++j) ASSERT_EQ(t.data[j], tag);
  }
}

TEST(RxPath, ReassembledFragmentsArePinnableZeroCopy) {
  const std::uint16_t base = net::UdpNetwork::pick_free_base_port(4);
  net::UdpNetwork net(base);
  UdpEcho echo;

  net.attach(NodeId{1}, net::DatagramHandler([&](const Datagram& dg) {
               std::lock_guard<std::mutex> lock(echo.mu);
               EXPECT_TRUE(dg.zero_copy());  // reassembly scratch is pooled
               echo.pinned.push_back(dg.take(net.rx_pool()));
               echo.count.fetch_add(1);
             }));
  net.attach(NodeId{2}, [](const std::uint8_t*, std::size_t) {});

  // Two messages large enough to fragment (> 32 KiB payload each).
  constexpr std::size_t kBig = 80 * 1024;
  for (int m = 0; m < 2; ++m) {
    wire::Buffer b(kBig);
    for (std::size_t j = 0; j < b.size(); ++j) {
      b[j] = static_cast<std::uint8_t>((j + m) * 31);
    }
    net.send(NodeId{2}, NodeId{1}, std::move(b));
    // Serialize the two messages so per-message reassembly state is simple.
    for (int spin = 0; spin < 400 && echo.count.load() < std::size_t(m + 1);
         ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  ASSERT_EQ(echo.count.load(), 2u);
  std::lock_guard<std::mutex> lock(echo.mu);
  for (int m = 0; m < 2; ++m) {
    const Datagram::Taken& t = echo.pinned[m];
    ASSERT_EQ(t.buf->size(), kBig);
    for (std::size_t j = 0; j < kBig; j += 997) {
      ASSERT_EQ(t.data[j], static_cast<std::uint8_t>((j + m) * 31));
    }
  }
}

// --- end-to-end: pinned merge over real UDP ----------------------------------

TEST(RxPath, UdpRangeMergePinsSubResultsAcrossBatches) {
  // A real deployment over UDP loopback: the entry leaf's range merge holds
  // borrowed sub-result views across however many recvmmsg batches the
  // fan-out responses arrive in.
  auto spec = core::HierarchyBuilder::table2(geo::Rect{{0, 0}, {1200, 1200}});
  // Node ids reach 5, client ids 5200+: cover that span with the base port.
  const std::uint16_t base = net::UdpNetwork::pick_free_base_port(5400);
  net::UdpNetwork net(base);
  SystemClock clock;
  core::Deployment::Config cfg;
  cfg.lock_handlers = true;
  core::Deployment dep(net, clock, spec, cfg);

  std::vector<std::unique_ptr<core::TrackedObject>> objs;
  std::vector<ObjectResult> all;
  Rng rng(7);
  for (std::uint64_t i = 1; i <= 48; ++i) {
    const geo::Point p{rng.uniform(20, 1180), rng.uniform(20, 1180)};
    auto obj = std::make_unique<core::TrackedObject>(
        NodeId{static_cast<std::uint32_t>(5200 + i)}, ObjectId{i}, net, clock);
    const NodeId entry = dep.entry_leaf_for(p);
    ASSERT_TRUE(entry.valid());
    obj->start_register(entry, p, 1.0, {10.0, 100.0});
    for (int spin = 0; spin < 400 && !obj->tracked(); ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_TRUE(obj->tracked()) << "object " << i;
    all.push_back({ObjectId{i}, {p, obj->offered_acc()}});
    objs.push_back(std::move(obj));
  }

  core::QueryClient qc(NodeId{5100}, net, clock);
  qc.set_entry(dep.leaf_ids()[0]);
  const geo::Polygon area =
      geo::Polygon::from_rect(geo::Rect{{0, 0}, {1200, 1200}});
  for (int round = 0; round < 5; ++round) {
    const auto res = qc.range_query_blocking(area, 50.0, 0.9, seconds(10));
    ASSERT_TRUE(res.has_value());
    EXPECT_TRUE(res->complete);
    EXPECT_EQ(sorted_ids(res->objects), sorted_ids(oracle_range(all, area, 50.0, 0.9)));
  }
  const auto stats = dep.total_stats();
  EXPECT_GT(stats.sub_res_pinned, 0u);
}

}  // namespace
}  // namespace locs::test
