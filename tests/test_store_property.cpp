// Randomized property suites for the storage layer: SightingDb against a
// plain-map oracle under mixed insert/update/remove/expiry churn, and
// VisitorDb persistence equivalence across random mutation sequences and
// reopen/compaction cycles.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "store/sighting_db.hpp"
#include "store/visitor_db.hpp"
#include "util/rng.hpp"

namespace locs::store {
namespace {

namespace fs = std::filesystem;

class SightingDbChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SightingDbChurn, MatchesOracleUnderMixedOps) {
  SightingDb db([] { return spatial::make_point_quadtree(); });
  struct OracleRec {
    geo::Point pos;
    double acc;
    TimePoint expiry;
  };
  std::map<std::uint64_t, OracleRec> oracle;
  Rng rng(GetParam());
  TimePoint now = 0;

  for (int step = 0; step < 3000; ++step) {
    const double roll = rng.next_double();
    now += static_cast<Duration>(rng.next_below(1000));
    if (roll < 0.40) {
      const std::uint64_t oid = rng.next_below(500);
      const geo::Point p{rng.uniform(0, 1000), rng.uniform(0, 1000)};
      const double acc = rng.uniform(1, 100);
      const TimePoint expiry = now + static_cast<Duration>(rng.next_below(100000));
      if (oracle.count(oid)) {
        db.update({ObjectId{oid}, now, p, 1.0}, expiry);
        db.set_offered_acc(ObjectId{oid}, acc);
        oracle[oid] = {p, acc, expiry};
      } else {
        db.insert({ObjectId{oid}, now, p, 1.0}, acc, expiry);
        oracle[oid] = {p, acc, expiry};
      }
    } else if (roll < 0.55 && !oracle.empty()) {
      auto it = oracle.begin();
      std::advance(it, static_cast<long>(rng.next_below(oracle.size())));
      EXPECT_TRUE(db.remove(ObjectId{it->first}));
      oracle.erase(it);
    } else if (roll < 0.70) {
      // Expiry sweep.
      const auto expired = db.expire_until(now);
      for (const ObjectId oid : expired) {
        const auto it = oracle.find(oid.value);
        ASSERT_NE(it, oracle.end()) << "expired unknown object " << oid.value;
        EXPECT_LE(it->second.expiry, now);
        oracle.erase(it);
      }
      // Everything left must be unexpired.
      for (const auto& [oid, rec] : oracle) {
        EXPECT_GT(rec.expiry, now) << "object " << oid << " should have expired";
      }
    } else if (roll < 0.85) {
      // Point lookup.
      const std::uint64_t oid = rng.next_below(500);
      const SightingDb::Record* rec = db.find(ObjectId{oid});
      const auto it = oracle.find(oid);
      ASSERT_EQ(rec != nullptr, it != oracle.end()) << "oid " << oid;
      if (rec != nullptr) {
        EXPECT_EQ(rec->sighting.pos, it->second.pos);
        EXPECT_EQ(rec->offered_acc, it->second.acc);
      }
    } else {
      // Area query vs oracle.
      const geo::Polygon area = geo::Polygon::from_rect(geo::Rect::from_center(
          {rng.uniform(0, 1000), rng.uniform(0, 1000)}, rng.uniform(20, 200),
          rng.uniform(20, 200)));
      const double req_acc = rng.uniform(5, 120);
      std::vector<core::ObjectResult> got;
      db.objects_in_area(area, req_acc, 0.3, got);
      std::vector<std::uint64_t> got_ids;
      for (const auto& r : got) got_ids.push_back(r.oid.value);
      std::sort(got_ids.begin(), got_ids.end());
      std::vector<std::uint64_t> want_ids;
      for (const auto& [oid, rec] : oracle) {
        if (rec.acc > req_acc) continue;
        if (geo::overlap_degree(area, {rec.pos, rec.acc}) >= 0.3) {
          want_ids.push_back(oid);
        }
      }
      EXPECT_EQ(got_ids, want_ids) << "step " << step;
    }
    ASSERT_EQ(db.size(), oracle.size()) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SightingDbChurn, ::testing::Values(3u, 5u, 8u, 13u));

using Record = SightingDb::Record;

class VisitorDbPersistence : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    path_ = (fs::temp_directory_path() /
             ("locs_vdb_prop_" + std::to_string(::getpid()) + "_" +
              std::to_string(GetParam())))
                .string();
    fs::remove(path_);
  }
  void TearDown() override { fs::remove(path_); }
  std::string path_;
};

TEST_P(VisitorDbPersistence, RandomMutationsSurviveReopenAndCompaction) {
  struct OracleRec {
    bool leaf;
    std::uint32_t fwd;
    double acc;
  };
  std::map<std::uint64_t, OracleRec> oracle;
  Rng rng(GetParam() * 7 + 1);

  const auto verify = [&](const VisitorDb& db) {
    ASSERT_EQ(db.size(), oracle.size());
    for (const auto& [oid, rec] : oracle) {
      const VisitorRecord* got = db.find(ObjectId{oid});
      ASSERT_NE(got, nullptr) << "oid " << oid;
      EXPECT_EQ(got->leaf.has_value(), rec.leaf);
      if (rec.leaf) {
        EXPECT_DOUBLE_EQ(got->leaf->offered_acc, rec.acc);
      } else {
        EXPECT_EQ(got->forward_ref.value, rec.fwd);
      }
    }
  };

  for (int round = 0; round < 4; ++round) {
    auto opened = VisitorDb::open(path_);
    ASSERT_TRUE(opened.ok());
    VisitorDb db = std::move(opened).value();
    verify(db);
    for (int step = 0; step < 300; ++step) {
      const double roll = rng.next_double();
      const std::uint64_t oid = rng.next_below(200);
      if (roll < 0.4) {
        const auto fwd = static_cast<std::uint32_t>(1 + rng.next_below(30));
        db.set_forward(ObjectId{oid}, NodeId{fwd});
        oracle[oid] = {false, fwd, 0};
      } else if (roll < 0.7) {
        const double acc = rng.uniform(1, 100);
        db.insert_leaf(ObjectId{oid}, acc, {NodeId{9}, {acc, acc * 2}});
        oracle[oid] = {true, 0, acc};
      } else if (roll < 0.85) {
        const double acc = rng.uniform(1, 100);
        db.set_offered_acc(ObjectId{oid}, acc);
        const auto it = oracle.find(oid);
        if (it != oracle.end() && it->second.leaf) it->second.acc = acc;
      } else {
        db.remove(ObjectId{oid});
        oracle.erase(oid);
      }
    }
    if (round % 2 == 1) {
      ASSERT_TRUE(db.compact().is_ok());
    }
    verify(db);
    // db goes out of scope = clean close; next round reopens from disk.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VisitorDbPersistence, ::testing::Values(1u, 2u, 3u));

TEST(VisitorDbCompaction, ServerTickTriggersCompaction) {
  const std::string path =
      (fs::temp_directory_path() / "locs_vdb_autocompact").string();
  fs::remove(path);
  auto opened = VisitorDb::open(path);
  ASSERT_TRUE(opened.ok());
  VisitorDb db = std::move(opened).value();
  for (std::uint64_t i = 0; i < 600; ++i) {
    db.set_forward(ObjectId{i % 10}, NodeId{static_cast<std::uint32_t>(i % 5 + 1)});
  }
  EXPECT_GE(db.log_appended(), 600u);
  ASSERT_TRUE(db.maybe_compact(500).is_ok());
  EXPECT_EQ(db.log_appended(), 0u);  // fresh log after rewrite
  EXPECT_EQ(db.size(), 10u);
  // Below threshold: no-op.
  db.set_forward(ObjectId{1}, NodeId{2});
  ASSERT_TRUE(db.maybe_compact(500).is_ok());
  EXPECT_EQ(db.log_appended(), 1u);
  fs::remove(path);
}

}  // namespace
}  // namespace locs::store
