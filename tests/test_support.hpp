// Shared helpers for the test suite: simulated deployments, synchronous
// drivers, and brute-force oracles for the paper's query semantics.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/client.hpp"
#include "core/deployment.hpp"
#include "core/hierarchy_builder.hpp"
#include "core/types.hpp"
#include "geo/circle.hpp"
#include "net/sim_network.hpp"
#include "util/rng.hpp"

namespace locs::test {

using core::AccuracyRange;
using core::LocationDescriptor;
using core::ObjectResult;
using core::QueryClient;
using core::Sighting;
using core::TrackedObject;

/// A complete simulated world: network + hierarchy + client id allocation.
struct SimWorld {
  net::SimNetwork net;
  std::unique_ptr<core::Deployment> deployment;
  std::uint32_t next_client_id = 1u << 20;

  explicit SimWorld(core::HierarchySpec spec,
                    core::LocationServer::Options opts = {},
                    net::SimNetwork::Options net_opts = {})
      : net(net_opts) {
    core::Deployment::Config cfg;
    cfg.server = opts;
    deployment = std::make_unique<core::Deployment>(net, net.clock(),
                                                    std::move(spec), cfg);
  }

  /// Full deployment-config variant (sharded leaves, cache toggles, ...).
  SimWorld(core::HierarchySpec spec, core::Deployment::Config cfg,
           net::SimNetwork::Options net_opts = {})
      : net(net_opts) {
    deployment = std::make_unique<core::Deployment>(net, net.clock(),
                                                    std::move(spec), cfg);
  }

  NodeId client_node() { return NodeId{next_client_id++}; }

  void run() { net.run_until_idle(); }

  void tick() { deployment->tick_all(net.now()); }

  /// Advances virtual time in slices, running expiry sweeps in between.
  void advance(Duration d, int slices = 4) {
    for (int i = 0; i < slices; ++i) {
      net.clock().advance(d / slices);
      tick();
      run();
    }
  }

  /// Registers a tracked object synchronously; returns the client handle.
  std::unique_ptr<TrackedObject> register_object(ObjectId oid, geo::Point pos,
                                                 double sensor_acc = 1.0,
                                                 AccuracyRange range = {10.0, 100.0}) {
    auto obj = std::make_unique<TrackedObject>(client_node(), oid, net, net.clock());
    const NodeId entry = deployment->entry_leaf_for(pos);
    EXPECT_TRUE(entry.valid()) << "no leaf covers the registration position";
    obj->start_register(entry, pos, sensor_acc, range);
    run();
    return obj;
  }

  std::unique_ptr<QueryClient> make_query_client(NodeId entry) {
    auto qc = std::make_unique<QueryClient>(client_node(), net, net.clock());
    qc->set_entry(entry);
    return qc;
  }

  QueryClient::PosResult pos_query(QueryClient& qc, ObjectId oid) {
    const std::uint64_t id = qc.send_pos_query(oid);
    run();
    auto res = qc.take_pos(id);
    EXPECT_TRUE(res.has_value()) << "position query did not complete";
    return res.value_or(QueryClient::PosResult{});
  }

  QueryClient::RangeResult range_query(QueryClient& qc, const geo::Polygon& area,
                                       double req_acc, double req_overlap) {
    const std::uint64_t id = qc.send_range_query(area, req_acc, req_overlap);
    run();
    auto res = qc.take_range(id);
    EXPECT_TRUE(res.has_value()) << "range query did not complete";
    return res ? std::move(*res) : QueryClient::RangeResult{};
  }

  QueryClient::NNResult nn_query(QueryClient& qc, geo::Point p, double req_acc,
                                 double near_qual) {
    const std::uint64_t id = qc.send_nn_query(p, req_acc, near_qual);
    run();
    auto res = qc.take_nn(id);
    EXPECT_TRUE(res.has_value()) << "NN query did not complete";
    return res ? std::move(*res) : QueryClient::NNResult{};
  }
};

/// Brute-force oracle for the paper's range-query semantics (§3.2):
/// objSet = { (o, ld) | Overlap(a, o) >= reqOverlap > 0 and ld.acc <= reqAcc }.
inline std::vector<ObjectResult> oracle_range(
    const std::vector<ObjectResult>& all, const geo::Polygon& area, double req_acc,
    double req_overlap) {
  std::vector<ObjectResult> out;
  for (const ObjectResult& o : all) {
    if (o.ld.acc > req_acc) continue;
    const double ov = geo::overlap_degree(area, o.ld.location_area());
    if (ov >= std::max(req_overlap, 1e-12)) out.push_back(o);
  }
  return out;
}

/// Brute-force oracle for the nearest neighbor (§3.2).
inline std::optional<ObjectResult> oracle_nearest(const std::vector<ObjectResult>& all,
                                                  geo::Point p, double req_acc) {
  std::optional<ObjectResult> best;
  double best_d = 0.0;
  for (const ObjectResult& o : all) {
    if (o.ld.acc > req_acc) continue;
    const double d = geo::distance(o.ld.pos, p);
    if (!best || d < best_d || (d == best_d && o.oid < best->oid)) {
      best = o;
      best_d = d;
    }
  }
  return best;
}

inline std::vector<ObjectId> sorted_ids(const std::vector<ObjectResult>& v) {
  std::vector<ObjectId> ids;
  ids.reserve(v.size());
  for (const ObjectResult& o : v) ids.push_back(o.oid);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace locs::test
