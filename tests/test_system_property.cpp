// Whole-system property suite: random hierarchies, random fleets moving for
// many steps; after every burst the forwarding-path invariant and full query
// semantics (vs oracles) must hold. This is the paper's architecture under
// churn.
#include <gtest/gtest.h>

#include "sim/mobility.hpp"
#include "test_support.hpp"

namespace locs::test {
namespace {

struct WorldShape {
  int fanout_x, fanout_y, levels;
};

class SystemChurnProperty
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

const WorldShape kShapes[] = {{2, 2, 1}, {2, 2, 2}, {3, 2, 2}, {4, 4, 1}};
const geo::Rect kArea{{0, 0}, {2000, 2000}};

TEST_P(SystemChurnProperty, InvariantsHoldUnderChurn) {
  const WorldShape shape = kShapes[std::get<0>(GetParam())];
  const std::uint64_t seed = std::get<1>(GetParam());
  SimWorld world(
      core::HierarchyBuilder::grid(kArea, shape.fanout_x, shape.fanout_y, shape.levels));
  Rng rng(seed);

  constexpr std::uint64_t kObjects = 40;
  std::vector<std::unique_ptr<TrackedObject>> objs;
  std::vector<std::unique_ptr<sim::MobilityModel>> models;
  for (std::uint64_t i = 1; i <= kObjects; ++i) {
    const geo::Point start{rng.uniform(0, 2000), rng.uniform(0, 2000)};
    objs.push_back(world.register_object(ObjectId{i}, start, 1.0, {15.0, 60.0}));
    ASSERT_TRUE(objs.back()->tracked());
    models.push_back(
        sim::make_random_waypoint(kArea, start, 20.0, 120.0, seconds(2), rng));
  }

  for (int burst = 0; burst < 10; ++burst) {
    // Everyone moves for a few simulated seconds.
    for (int step = 0; step < 5; ++step) {
      for (std::uint64_t i = 0; i < kObjects; ++i) {
        objs[i]->feed_position(models[i]->step(seconds(2)));
      }
      world.run();
    }
    // Invariant 1: every object has exactly one agent whose area covers its
    // last reported position; the root knows every object.
    const auto& root = world.deployment->server(world.deployment->root());
    std::size_t tracked = 0;
    for (std::uint64_t i = 0; i < kObjects; ++i) {
      if (!objs[i]->tracked()) continue;  // may have walked out at the border
      ++tracked;
      ASSERT_NE(root.visitors().find(ObjectId{i + 1}), nullptr)
          << "burst " << burst << " object " << i + 1;
    }
    ASSERT_GT(tracked, kObjects / 2);  // waypoint model stays inside: all, usually

    // Invariant 2: exactly one leaf holds a sighting for each tracked object.
    std::unordered_map<std::uint64_t, int> sightings_count;
    for (const NodeId leaf : world.deployment->leaf_ids()) {
      const auto* db = world.deployment->server(leaf).sightings();
      for (std::uint64_t i = 1; i <= kObjects; ++i) {
        if (db->find(ObjectId{i}) != nullptr) ++sightings_count[i];
      }
    }
    for (std::uint64_t i = 0; i < kObjects; ++i) {
      if (!objs[i]->tracked()) continue;
      EXPECT_EQ(sightings_count[i + 1], 1) << "object " << i + 1;
    }

    // Invariant 3: position queries from a random entry agree with the
    // object's agent-side sighting.
    const auto leaves = world.deployment->leaf_ids();
    auto qc = world.make_query_client(leaves[rng.next_below(leaves.size())]);
    for (int probe = 0; probe < 5; ++probe) {
      const std::uint64_t oid = 1 + rng.next_below(kObjects);
      if (!objs[oid - 1]->tracked()) continue;
      const auto res = world.pos_query(*qc, ObjectId{oid});
      ASSERT_TRUE(res.found) << "object " << oid;
      const auto* rec =
          world.deployment->server(objs[oid - 1]->agent()).sightings()->find(ObjectId{oid});
      ASSERT_NE(rec, nullptr);
      EXPECT_EQ(res.ld.pos, rec->sighting.pos);
    }

    // Invariant 4: a random range query matches the oracle built from the
    // leaves' ground truth.
    std::vector<ObjectResult> truth;
    for (const NodeId leaf : world.deployment->leaf_ids()) {
      const auto& server = world.deployment->server(leaf);
      server.visitors().for_each([&](const store::VisitorRecord& rec) {
        if (!rec.leaf) return;
        const auto* srec = server.sightings()->find(rec.oid);
        if (srec != nullptr) {
          truth.push_back({rec.oid, {srec->sighting.pos, rec.leaf->offered_acc}});
        }
      });
    }
    const geo::Polygon area = geo::Polygon::from_rect(geo::Rect::from_center(
        {rng.uniform(0, 2000), rng.uniform(0, 2000)}, rng.uniform(100, 500),
        rng.uniform(100, 500)));
    const double req_acc = rng.uniform(15.0, 100.0);
    const double req_overlap = rng.uniform(0.1, 0.9);
    auto range = world.range_query(*qc, area, req_acc, req_overlap);
    EXPECT_TRUE(range.complete);
    EXPECT_EQ(sorted_ids(range.objects),
              sorted_ids(oracle_range(truth, area, req_acc, req_overlap)))
        << "burst " << burst;

    // Invariant 5: NN query matches the oracle.
    const geo::Point p{rng.uniform(0, 2000), rng.uniform(0, 2000)};
    const auto nn = world.nn_query(*qc, p, 60.0, 0.0);
    const auto expected = oracle_nearest(truth, p, 60.0);
    ASSERT_EQ(nn.found, expected.has_value());
    if (expected) {
      EXPECT_EQ(nn.nearest.oid, expected->oid) << "burst " << burst;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndSeeds, SystemChurnProperty,
    ::testing::Combine(::testing::Range(0, 4), ::testing::Values(101u, 202u)),
    [](const auto& info) {
      const WorldShape s = kShapes[std::get<0>(info.param)];
      return "f" + std::to_string(s.fanout_x) + "x" + std::to_string(s.fanout_y) +
             "l" + std::to_string(s.levels) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(SystemChurn, MessageLossDegradesGracefully) {
  // 2% message loss: operations may time out but nothing crashes and the
  // system keeps answering queries.
  net::SimNetwork::Options net_opts;
  net_opts.loss_prob = 0.02;
  net_opts.seed = 4;
  core::LocationServer::Options opts;
  opts.pending_timeout = seconds(2);
  SimWorld world(core::HierarchyBuilder::grid(kArea, 2, 2, 2), opts, net_opts);
  Rng rng(5);
  std::vector<std::unique_ptr<TrackedObject>> objs;
  for (std::uint64_t i = 1; i <= 30; ++i) {
    auto obj = world.register_object(ObjectId{i},
                                     {rng.uniform(0, 2000), rng.uniform(0, 2000)},
                                     1.0, {15.0, 60.0});
    objs.push_back(std::move(obj));
  }
  for (int burst = 0; burst < 5; ++burst) {
    for (auto& obj : objs) {
      if (!obj->tracked()) continue;
      obj->feed_position({rng.uniform(0, 2000), rng.uniform(0, 2000)});
    }
    world.advance(seconds(5));
  }
  // The system still answers (found or not-found, but no deadlock).
  auto qc = world.make_query_client(world.deployment->leaf_ids().front());
  qc->send_pos_query(ObjectId{1});
  world.run();
  world.advance(seconds(10));
  SUCCEED();  // reaching here without assertion failures/hangs is the test
}

}  // namespace
}  // namespace locs::test
