// Transmit-path coverage: TxRing batching/backpressure, the thread-local
// send cache (no transport mutex on the hot path), SO_REUSEPORT transmit
// channels, and deterministic send-side teardown.
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "net/tx_ring.hpp"
#include "net/udp_network.hpp"

namespace locs::net {
namespace {

bool wait_until(const std::function<bool()>& pred, int ms = 2000) {
  for (int i = 0; i < ms / 5; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

TEST(TxRing, CorkedStormFlushesInSendmmsgBatches) {
  UdpNetwork net(UdpNetwork::pick_free_base_port(10));
  std::atomic<int> count{0};
  net.attach(NodeId{1}, [&](const std::uint8_t*, std::size_t) {
    count.fetch_add(1);
  });
  net.attach(NodeId{2}, [](const std::uint8_t*, std::size_t) {});
  constexpr int kMessages = 64;
  net.cork(NodeId{2});
  for (int i = 0; i < kMessages; ++i) {
    net.send(NodeId{2}, NodeId{1}, {static_cast<std::uint8_t>(i)});
  }
  net.uncork(NodeId{2});
  ASSERT_TRUE(wait_until([&] { return count.load() >= kMessages; }));
  const UdpNetwork::TxStats tx = net.tx_stats(NodeId{2});
  EXPECT_EQ(tx.datagrams_sent, static_cast<std::uint64_t>(kMessages));
  EXPECT_EQ(tx.dropped, 0u);
  // 64 datagrams at batch factor 16 -> 4 syscalls; allow partial-send splits
  // but insist on the >=8x amortization the ring exists for.
  EXPECT_LE(tx.batches_flushed, static_cast<std::uint64_t>(kMessages) / 8);
}

TEST(TxRing, UncorkedSendsFlushInline) {
  UdpNetwork net(UdpNetwork::pick_free_base_port(10));
  std::atomic<int> count{0};
  net.attach(NodeId{1}, [&](const std::uint8_t*, std::size_t) {
    count.fetch_add(1);
  });
  net.attach(NodeId{2}, [](const std::uint8_t*, std::size_t) {});
  for (int i = 0; i < 3; ++i) net.send(NodeId{2}, NodeId{1}, {1, 2, 3});
  ASSERT_TRUE(wait_until([&] { return count.load() >= 3; }));
  const UdpNetwork::TxStats tx = net.tx_stats(NodeId{2});
  // No cork window: each send hits the wire before returning (request/reply
  // latency is unchanged), so one syscall per datagram.
  EXPECT_EQ(tx.datagrams_sent, 3u);
  EXPECT_EQ(tx.batches_flushed, 3u);
}

TEST(TxRing, FragmentedMessageCoalescesSyscalls) {
  UdpNetwork net(UdpNetwork::pick_free_base_port(10));
  std::atomic<int> got{0};
  std::vector<std::uint8_t> received;
  std::mutex mu;
  net.attach(NodeId{1}, [&](const std::uint8_t* d, std::size_t n) {
    std::lock_guard<std::mutex> lock(mu);
    received.assign(d, d + n);
    got.store(1);
  });
  net.attach(NodeId{2}, [](const std::uint8_t*, std::size_t) {});
  // 150 KiB -> 5 fragments; even uncorked they group into sendmmsg batches
  // bounded by the byte budget (64 KiB -> 3 syscalls), not one per fragment.
  std::vector<std::uint8_t> big(150 * 1024);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>((i * 2654435761u) >> 13);
  }
  net.send(NodeId{2}, NodeId{1}, big);
  ASSERT_TRUE(wait_until([&] { return got.load() == 1; }));
  const UdpNetwork::TxStats tx = net.tx_stats(NodeId{2});
  EXPECT_EQ(tx.datagrams_sent, 5u);
  EXPECT_LE(tx.batches_flushed, 3u);
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(received, big);
}

TEST(TxRing, CorkedMixedSizesPreserveFragmentIntegrity) {
  UdpNetwork net(UdpNetwork::pick_free_base_port(10));
  std::atomic<int> small_got{0};
  std::atomic<int> big_got{0};
  std::atomic<int> big_corrupt{0};
  net.attach(NodeId{1}, [&](const std::uint8_t* d, std::size_t n) {
    if (n < 1000) {
      small_got.fetch_add(1);
      return;
    }
    // Large messages carry their fill tag in every byte (offset by index).
    const std::uint8_t tag = d[0];
    bool ok = n == 150 * 1024;
    for (std::size_t i = 0; ok && i < n; i += 4097) {
      ok = d[i] == static_cast<std::uint8_t>(tag + i % 251);
    }
    (ok ? big_got : big_corrupt).fetch_add(1);
  });
  net.attach(NodeId{2}, [](const std::uint8_t*, std::size_t) {});
  // Corked burst mixing small messages with multi-fragment ones: the byte
  // budget forces mid-message flushes, and reassembly must still see every
  // fragment of every message exactly once.
  net.cork(NodeId{2});
  std::vector<std::uint8_t> big(150 * 1024);
  for (int m = 0; m < 4; ++m) {
    for (int s = 0; s < 5; ++s) {
      net.send(NodeId{2}, NodeId{1}, {static_cast<std::uint8_t>(s)});
    }
    for (std::size_t i = 0; i < big.size(); ++i) {
      big[i] = static_cast<std::uint8_t>(m * 50 + i % 251);
    }
    net.send(NodeId{2}, NodeId{1}, big);
  }
  net.uncork(NodeId{2});
  ASSERT_TRUE(wait_until(
      [&] { return small_got.load() >= 20 && big_got.load() >= 4; }, 4000));
  EXPECT_EQ(small_got.load(), 20);
  EXPECT_EQ(big_got.load(), 4);
  EXPECT_EQ(big_corrupt.load(), 0);
  EXPECT_EQ(net.tx_stats(NodeId{2}).dropped, 0u);
}

TEST(TxRing, SendStormFromAttachedNodeNeverLocksTransportMutex) {
  UdpNetwork net(UdpNetwork::pick_free_base_port(10));
  std::atomic<int> count{0};
  net.attach(NodeId{1}, [&](const std::uint8_t*, std::size_t) {
    count.fetch_add(1);
  });
  net.attach(NodeId{2}, [](const std::uint8_t*, std::size_t) {});
  // First send from this thread primes the thread-local cache (one counted
  // slow-path lookup)...
  net.send(NodeId{2}, NodeId{1}, {0});
  ASSERT_TRUE(wait_until([&] { return count.load() >= 1; }));
  const std::uint64_t cold_lookups = net.tx_lookup_locks();
  // ...after which a storm must resolve its ring without EVER touching the
  // transport mutex or the node map.
  constexpr int kStorm = 1000;
  for (int i = 0; i < kStorm; ++i) {
    net.send(NodeId{2}, NodeId{1}, {static_cast<std::uint8_t>(i)});
  }
  EXPECT_EQ(net.tx_lookup_locks(), cold_lookups);
  ASSERT_TRUE(wait_until([&] { return count.load() >= 1 + kStorm; }));
  EXPECT_EQ(net.tx_stats(NodeId{2}).datagrams_sent,
            static_cast<std::uint64_t>(1 + kStorm));
}

TEST(TxRing, DetachFlushesPendingCorkedSends) {
  UdpNetwork net(UdpNetwork::pick_free_base_port(10));
  std::atomic<int> count{0};
  net.attach(NodeId{1}, [&](const std::uint8_t*, std::size_t) {
    count.fetch_add(1);
  });
  net.attach(NodeId{2}, [](const std::uint8_t*, std::size_t) {});
  net.cork(NodeId{2});
  for (int i = 0; i < 5; ++i) net.send(NodeId{2}, NodeId{1}, {1});
  // Detach mid-batch: the queued sends must be on the wire (or counted
  // drops) by the time detach returns -- never lost in a ring limbo.
  net.detach(NodeId{2});
  const UdpNetwork::TxStats tx = net.tx_stats(NodeId{2});
  EXPECT_EQ(tx.datagrams_sent + tx.dropped, 5u);
  ASSERT_TRUE(wait_until([&] { return count.load() >= 5; }));
}

TEST(TxRing, EagainBackpressureIsCountedNotSwallowed) {
  // AF_UNIX datagram pair with starved buffers: real EAGAIN on the transmit
  // path, no flakiness from UDP's silent receiver-side drops.
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_DGRAM, 0, sv), 0);
  const int tiny = 1;  // kernel clamps to its minimum
  ::setsockopt(sv[0], SOL_SOCKET, SO_SNDBUF, &tiny, sizeof tiny);
  ::setsockopt(sv[1], SOL_SOCKET, SO_RCVBUF, &tiny, sizeof tiny);
  std::atomic<std::uint32_t> ids{1};
  TxRing ring(sv[0], ids);
  ring.set_retry_budget(/*polls=*/2, /*poll_timeout_ms=*/1);
  BufferPool pool;
  constexpr int kMessages = 64;
  ring.cork();
  for (int i = 0; i < kMessages; ++i) {
    PooledBuffer buf(&pool, pool.acquire());
    buf->assign(2048, static_cast<std::uint8_t>(i));
    ring.enqueue(std::move(buf));  // connected-socket form
  }
  ring.uncork();
  const TxRing::Stats s = ring.stats();
  // Nobody drains the peer: the ring must hit EAGAIN, wait its bounded
  // POLLOUT budget, and then COUNT the tail as dropped -- the old path's
  // silent swallow is the regression this test pins.
  EXPECT_GT(s.eagain_retries, 0u);
  EXPECT_GT(s.dropped, 0u);
  EXPECT_EQ(s.datagrams_sent + s.dropped,
            static_cast<std::uint64_t>(kMessages));
  // Every datagram reported sent is actually readable on the peer.
  std::uint64_t drained = 0;
  std::uint8_t scratch[4096];
  while (::recv(sv[1], scratch, sizeof scratch, MSG_DONTWAIT) > 0) ++drained;
  EXPECT_EQ(drained, s.datagrams_sent);
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(TxRing, ReuseportChannelIsTransmitOnly) {
  const std::uint16_t base = UdpNetwork::pick_free_base_port(10);
  UdpNetwork net(base);
  std::atomic<int> to_r{0};
  std::atomic<int> to_s{0};
  net.attach(NodeId{1}, [&](const std::uint8_t*, std::size_t) {
    to_r.fetch_add(1);
  });
  net.attach(NodeId{2}, [&](const std::uint8_t*, std::size_t) {
    to_s.fetch_add(1);
  });
  // Channel for the attached node 2: joins its SO_REUSEPORT group when the
  // kernel supports steering, else degrades to an ephemeral-port socket.
  std::shared_ptr<Sender> ch = net.open_sender(NodeId{2});
  ASSERT_NE(ch, nullptr);
  for (int i = 0; i < 10; ++i) {
    PooledBuffer buf = net.make_buffer();
    buf->assign({static_cast<std::uint8_t>(i)});
    ch->send(NodeId{1}, std::move(buf));
  }
  ch->flush();
  ASSERT_TRUE(wait_until([&] { return to_r.load() >= 10; }));
  EXPECT_EQ(to_r.load(), 10);
  // Channel traffic shows up in the per-node tx stats (node 2 itself sent
  // nothing through its primary ring).
  EXPECT_EQ(net.tx_stats(NodeId{2}).datagrams_sent, 10u);

  // Group steering must pin ALL inbound traffic to the primary receive
  // socket. Blast node 2's port from raw sockets on 8 distinct ephemeral
  // source ports: distinct 4-tuples, so an UNSTEERED two-member REUSEPORT
  // group would hash roughly half of them onto the unread channel socket.
  sockaddr_in dst{};
  dst.sin_family = AF_INET;
  dst.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  dst.sin_port = htons(static_cast<std::uint16_t>(base + 2));
  std::uint32_t msg_id = 0x5a0000;
  for (int src = 0; src < 8; ++src) {
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    ASSERT_GE(fd, 0);
    std::uint8_t frame[kFragHeader + 1];
    frag::put_u16(frame, kFragMagic);
    frag::put_u16(frame + 6, 0);  // fragment index
    frag::put_u16(frame + 8, 1);  // fragment count
    frame[kFragHeader] = static_cast<std::uint8_t>(src);
    for (int k = 0; k < 5; ++k) {
      frag::put_u32(frame + 2, msg_id++);
      ASSERT_EQ(::sendto(fd, frame, sizeof frame, 0,
                         reinterpret_cast<const sockaddr*>(&dst), sizeof dst),
                static_cast<ssize_t>(sizeof frame));
    }
    ::close(fd);
  }
  ASSERT_TRUE(wait_until([&] { return to_s.load() >= 40; }, 4000));
  EXPECT_EQ(to_s.load(), 40);
}

}  // namespace
}  // namespace locs::net
