// Nearest-neighbor queries: §3.2 semantics (accuracy filter, nearQual ring,
// the 2*reqAcc completeness guarantee) over the distributed expanding-ring
// implementation.
#include <gtest/gtest.h>

#include "test_support.hpp"

namespace locs::test {
namespace {

const geo::Rect kArea{{0, 0}, {1000, 1000}};

TEST(NNQuery, FindsLocalNearest) {
  SimWorld world(core::HierarchyBuilder::fig6(kArea));
  auto o1 = world.register_object(ObjectId{1}, {100, 100}, 1.0, {10.0, 50.0});
  auto o2 = world.register_object(ObjectId{2}, {150, 150}, 1.0, {10.0, 50.0});
  auto qc = world.make_query_client(NodeId{4});
  const auto res = world.nn_query(*qc, {105, 105}, 50.0, 0.0);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.nearest.oid, ObjectId{1});
  EXPECT_TRUE(res.near_set.empty());  // nearQual = 0 => empty nearObjSet
}

TEST(NNQuery, FindsRemoteNearestAcrossLeaves) {
  SimWorld world(core::HierarchyBuilder::fig6(kArea));
  // Nearest to the probe point lives in a *different* leaf than the entry.
  auto far = world.register_object(ObjectId{1}, {100, 100}, 1.0, {10.0, 50.0});   // s4
  auto near = world.register_object(ObjectId{2}, {510, 490}, 1.0, {10.0, 50.0});  // s6
  ASSERT_EQ(near->agent(), NodeId{6});
  auto qc = world.make_query_client(NodeId{4});
  const auto res = world.nn_query(*qc, {480, 480}, 50.0, 0.0);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.nearest.oid, ObjectId{2});
}

TEST(NNQuery, AccuracyFilterSkipsCoarseObjects) {
  // Fig 4: o3 not considered because of insufficient accuracy.
  SimWorld world(core::HierarchyBuilder::fig6(kArea));
  auto coarse = world.register_object(ObjectId{1}, {110, 100}, 1.0, {80.0, 200.0});
  auto fine = world.register_object(ObjectId{2}, {200, 100}, 1.0, {10.0, 50.0});
  auto qc = world.make_query_client(NodeId{4});
  const auto res = world.nn_query(*qc, {100, 100}, 20.0, 0.0);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.nearest.oid, ObjectId{2});  // nearest *qualifying* object
}

TEST(NNQuery, NearQualCollectsRing) {
  SimWorld world(core::HierarchyBuilder::fig6(kArea));
  auto o1 = world.register_object(ObjectId{1}, {100, 100}, 1.0, {10.0, 50.0});
  auto o2 = world.register_object(ObjectId{2}, {140, 100}, 1.0, {10.0, 50.0});
  auto o3 = world.register_object(ObjectId{3}, {400, 100}, 1.0, {10.0, 50.0});
  auto qc = world.make_query_client(NodeId{4});
  // d* = 10 (o1 at distance 10); nearQual = 50 admits o2 (distance 50) but
  // not o3 (distance 310).
  const auto res = world.nn_query(*qc, {90, 100}, 50.0, 50.0);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.nearest.oid, ObjectId{1});
  ASSERT_EQ(res.near_set.size(), 1u);
  EXPECT_EQ(res.near_set[0].oid, ObjectId{2});
}

TEST(NNQuery, TwoReqAccGuarantee) {
  // §3.2: with nearQual = 2*reqAcc every object that could potentially be
  // closer than the winner is guaranteed to be in nearObjSet.
  SimWorld world(core::HierarchyBuilder::grid(kArea, 2, 2, 2));
  Rng rng(42);
  std::vector<std::unique_ptr<TrackedObject>> objs;
  const double req_acc = 30.0;
  for (std::uint64_t i = 1; i <= 80; ++i) {
    const geo::Point p{rng.uniform(0, 1000), rng.uniform(0, 1000)};
    objs.push_back(world.register_object(ObjectId{i}, p, 1.0, {25.0, 100.0}));
  }
  auto qc = world.make_query_client(world.deployment->leaf_ids().front());
  for (int q = 0; q < 8; ++q) {
    const geo::Point p{rng.uniform(0, 1000), rng.uniform(0, 1000)};
    const auto res = world.nn_query(*qc, p, req_acc, 2.0 * req_acc);
    ASSERT_TRUE(res.found);
    const double d_star = geo::distance(res.nearest.ld.pos, p);
    // Any object whose location area could reach closer than the winner's
    // worst case must be listed.
    for (const auto& obj : objs) {
      const ObjectId oid = obj->oid();
      if (oid == res.nearest.oid) continue;
      // Find its true stored position.
      const auto* db = world.deployment->server(obj->agent()).sightings();
      const auto* rec = db->find(oid);
      ASSERT_NE(rec, nullptr);
      const double d = geo::distance(rec->sighting.pos, p);
      const bool could_be_closer = d - rec->offered_acc < d_star + res.nearest.ld.acc;
      if (could_be_closer && d <= d_star + 2.0 * req_acc) {
        const bool listed =
            std::any_of(res.near_set.begin(), res.near_set.end(),
                        [&](const ObjectResult& r) { return r.oid == oid; });
        EXPECT_TRUE(listed) << "object " << oid.value << " at distance " << d
                            << " missing (d* = " << d_star << ")";
      }
    }
  }
}

class NNOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NNOracle, MatchesBruteForce) {
  SimWorld world(core::HierarchyBuilder::grid(kArea, 3, 3, 1));
  Rng rng(GetParam() * 7907);
  std::vector<ObjectResult> truth;
  std::vector<std::unique_ptr<TrackedObject>> objs;
  for (std::uint64_t i = 1; i <= 100; ++i) {
    const geo::Point p{rng.uniform(0, 1000), rng.uniform(0, 1000)};
    const double desired = rng.uniform(5.0, 50.0);
    objs.push_back(world.register_object(ObjectId{i}, p, 1.0, {desired, 100.0}));
    truth.push_back({ObjectId{i}, {p, objs.back()->offered_acc()}});
  }
  for (int q = 0; q < 10; ++q) {
    const geo::Point p{rng.uniform(-100, 1100), rng.uniform(-100, 1100)};
    const double req_acc = rng.uniform(10.0, 60.0);
    const NodeId entry =
        world.deployment->leaf_ids()[rng.next_below(world.deployment->leaf_ids().size())];
    auto qc = world.make_query_client(entry);
    const auto res = world.nn_query(*qc, p, req_acc, 0.0);
    const auto expected = oracle_nearest(truth, p, req_acc);
    ASSERT_EQ(res.found, expected.has_value());
    if (expected) {
      EXPECT_EQ(res.nearest.oid, expected->oid)
          << "probe (" << p.x << "," << p.y << ") reqAcc " << req_acc;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NNOracle, ::testing::Values(1, 2, 3, 4));

TEST(NNQuery, EmptyDatabaseNotFound) {
  SimWorld world(core::HierarchyBuilder::fig6(kArea));
  auto qc = world.make_query_client(NodeId{4});
  const auto res = world.nn_query(*qc, {500, 500}, 50.0, 10.0);
  EXPECT_FALSE(res.found);
}

TEST(NNQuery, NoQualifyingAccuracyNotFound) {
  SimWorld world(core::HierarchyBuilder::fig6(kArea));
  auto coarse = world.register_object(ObjectId{1}, {500, 400}, 1.0, {90.0, 200.0});
  auto qc = world.make_query_client(NodeId{4});
  const auto res = world.nn_query(*qc, {500, 500}, 20.0, 0.0);
  EXPECT_FALSE(res.found);
}

TEST(NNQuery, NearSetSortedByDistance) {
  SimWorld world(core::HierarchyBuilder::fig6(kArea));
  auto o1 = world.register_object(ObjectId{1}, {100, 100}, 1.0, {10.0, 50.0});
  auto o2 = world.register_object(ObjectId{2}, {160, 100}, 1.0, {10.0, 50.0});
  auto o3 = world.register_object(ObjectId{3}, {130, 100}, 1.0, {10.0, 50.0});
  auto qc = world.make_query_client(NodeId{4});
  const auto res = world.nn_query(*qc, {95, 100}, 50.0, 100.0);
  ASSERT_TRUE(res.found);
  ASSERT_EQ(res.near_set.size(), 2u);
  EXPECT_EQ(res.near_set[0].oid, ObjectId{3});
  EXPECT_EQ(res.near_set[1].oid, ObjectId{2});
}

}  // namespace
}  // namespace locs::test
