#include <gtest/gtest.h>

#include "geo/point.hpp"
#include "geo/polygon.hpp"
#include "geo/projection.hpp"
#include "geo/rect.hpp"
#include "util/rng.hpp"

namespace locs::geo {
namespace {

TEST(Point, Arithmetic) {
  const Point a{1, 2}, b{3, -1};
  EXPECT_EQ((a + b), (Point{4, 1}));
  EXPECT_EQ((a - b), (Point{-2, 3}));
  EXPECT_EQ((a * 2.0), (Point{2, 4}));
  EXPECT_DOUBLE_EQ(dot(a, b), 1.0);
  EXPECT_DOUBLE_EQ(cross(a, b), -7.0);
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
}

TEST(Point, NormalizedAndPerp) {
  EXPECT_DOUBLE_EQ(norm(normalized({10, 0})), 1.0);
  EXPECT_EQ(normalized({0, 0}), (Point{0, 0}));
  EXPECT_EQ(perp({1, 0}), (Point{0, 1}));  // +90 degrees
}

TEST(Rect, ContainsAndIntersects) {
  const Rect r{{0, 0}, {10, 5}};
  EXPECT_TRUE(r.contains(Point{5, 2.5}));
  EXPECT_TRUE(r.contains(Point{0, 0}));  // boundary inclusive
  EXPECT_TRUE(r.contains(Point{10, 5}));
  EXPECT_FALSE(r.contains(Point{10.1, 5}));
  EXPECT_TRUE(r.intersects(Rect{{9, 4}, {12, 8}}));
  EXPECT_FALSE(r.intersects(Rect{{11, 0}, {12, 1}}));
  EXPECT_DOUBLE_EQ(r.area(), 50.0);
}

TEST(Rect, IntersectionAndInflate) {
  const Rect a{{0, 0}, {10, 10}};
  const Rect b{{5, 5}, {15, 15}};
  const Rect i = a.intersection(b);
  EXPECT_DOUBLE_EQ(i.area(), 25.0);
  EXPECT_TRUE(a.inflated(2.0).contains(Point{-2, -2}));
  EXPECT_TRUE(a.intersection(Rect{{20, 20}, {30, 30}}).is_empty());
}

TEST(Rect, DistanceToPoint) {
  const Rect r{{0, 0}, {10, 10}};
  EXPECT_DOUBLE_EQ(r.distance2_to({5, 5}), 0.0);
  EXPECT_DOUBLE_EQ(r.distance2_to({13, 14}), 9.0 + 16.0);
}

TEST(Rect, ExtendGrows) {
  Rect r = Rect::empty();
  EXPECT_TRUE(r.is_empty());
  r.extend(Point{2, 3});
  r.extend(Point{-1, 5});
  EXPECT_FALSE(r.is_empty());
  EXPECT_EQ(r.min, (Point{-1, 3}));
  EXPECT_EQ(r.max, (Point{2, 5}));
}

TEST(Polygon, NormalizesToCcwAndArea) {
  // Clockwise square input must be normalized to CCW with positive area.
  Polygon p({{0, 0}, {0, 4}, {4, 4}, {4, 0}});
  EXPECT_GT(signed_area(p.vertices()), 0.0);
  EXPECT_DOUBLE_EQ(p.area(), 16.0);
}

TEST(Polygon, ContainsPoint) {
  const Polygon p = Polygon::from_rect(Rect{{0, 0}, {10, 10}});
  EXPECT_TRUE(p.contains({5, 5}));
  EXPECT_TRUE(p.contains({0, 5}));   // boundary
  EXPECT_TRUE(p.contains({10, 10}));  // corner
  EXPECT_FALSE(p.contains({10.5, 5}));
  EXPECT_FALSE(p.contains({-0.5, 5}));
}

TEST(Polygon, NonConvexContains) {
  // L-shaped polygon.
  Polygon l({{0, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 4}, {0, 4}});
  EXPECT_TRUE(l.contains({1, 3}));
  EXPECT_TRUE(l.contains({3, 1}));
  EXPECT_FALSE(l.contains({3, 3}));  // the notch
  EXPECT_FALSE(l.is_convex());
  EXPECT_DOUBLE_EQ(l.area(), 12.0);
}

TEST(Polygon, ConvexityCheck) {
  EXPECT_TRUE(Polygon::from_rect(Rect{{0, 0}, {1, 1}}).is_convex());
  EXPECT_TRUE(Polygon({{0, 0}, {4, 0}, {2, 3}}).is_convex());
}

TEST(Polygon, DistanceToPoint) {
  const Polygon p = Polygon::from_rect(Rect{{0, 0}, {10, 10}});
  EXPECT_DOUBLE_EQ(p.distance_to({5, 5}), 0.0);
  EXPECT_DOUBLE_EQ(p.distance_to({13, 10}), 3.0);
  EXPECT_NEAR(p.distance_to({13, 14}), 5.0, 1e-12);
}

TEST(Polygon, IntersectsOverlappingAndDisjoint) {
  const Polygon a = Polygon::from_rect(Rect{{0, 0}, {10, 10}});
  const Polygon b = Polygon::from_rect(Rect{{5, 5}, {15, 15}});
  const Polygon c = Polygon::from_rect(Rect{{20, 20}, {30, 30}});
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(c));
  // Containment counts as intersection.
  const Polygon inner = Polygon::from_rect(Rect{{4, 4}, {6, 6}});
  EXPECT_TRUE(a.intersects(inner));
  EXPECT_TRUE(inner.intersects(a));
}

TEST(Polygon, IntersectsEdgeCrossOnly) {
  // A diagonal sliver crossing the square without containing any vertex of it.
  const Polygon a = Polygon::from_rect(Rect{{0, 0}, {10, 10}});
  const Polygon sliver({{-1, 4.9}, {11, 4.9}, {11, 5.1}, {-1, 5.1}});
  EXPECT_TRUE(a.intersects(sliver));
}

TEST(Polygon, CircumscribedCircleContainsDisk) {
  const Point c{3, 4};
  const double r = 10.0;
  const Polygon poly = Polygon::circumscribed_circle(c, r, 16);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const double ang = rng.uniform(0, 2 * M_PI);
    const Point on_circle{c.x + r * std::cos(ang), c.y + r * std::sin(ang)};
    EXPECT_TRUE(poly.contains(on_circle)) << "angle " << ang;
  }
  // Polygon area slightly exceeds the disk area.
  EXPECT_GT(poly.area(), M_PI * r * r);
  EXPECT_LT(poly.area(), M_PI * r * r * 1.11);
}

TEST(Polygon, TriangulationPreservesArea) {
  Polygon l({{0, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 4}, {0, 4}});
  const auto tris = triangulate(l);
  ASSERT_EQ(tris.size(), l.size() - 2);
  double sum = 0.0;
  for (const auto& t : tris) sum += t.area();
  EXPECT_NEAR(sum, l.area(), 1e-9);
}

TEST(Polygon, ConvexHull) {
  const Polygon hull = convex_hull({{0, 0}, {4, 0}, {4, 4}, {0, 4}, {2, 2}, {1, 1}});
  EXPECT_EQ(hull.size(), 4u);
  EXPECT_DOUBLE_EQ(hull.area(), 16.0);
  EXPECT_TRUE(hull.is_convex());
}

TEST(Projection, RoundTrip) {
  const GeoPoint stuttgart{48.7758, 9.1829};
  const LocalProjection proj(stuttgart);
  const GeoPoint nearby{48.7800, 9.1900};
  const Point local = proj.to_local(nearby);
  const GeoPoint back = proj.to_geo(local);
  EXPECT_NEAR(back.lat_deg, nearby.lat_deg, 1e-9);
  EXPECT_NEAR(back.lon_deg, nearby.lon_deg, 1e-9);
}

TEST(Projection, MatchesHaversineLocally) {
  const GeoPoint origin{48.7758, 9.1829};
  const LocalProjection proj(origin);
  const GeoPoint other{48.7858, 9.1979};  // ~1.5 km away
  const double planar = norm(proj.to_local(other));
  const double geodesic = haversine_m(origin, other);
  EXPECT_NEAR(planar, geodesic, geodesic * 1e-3);  // <0.1% at city scale
}

TEST(Projection, HaversineKnownDistance) {
  // Stuttgart -> Munich is roughly 190 km.
  const double d = haversine_m({48.7758, 9.1829}, {48.1351, 11.5820});
  EXPECT_NEAR(d, 190000, 5000);
}

}  // namespace
}  // namespace locs::geo
