// Two-tier HLR/VLR baseline: functional correctness plus the structural
// cost differences vs the hierarchy (home updates on every region change).
#include <gtest/gtest.h>

#include "baseline/two_tier.hpp"
#include "core/client.hpp"
#include "net/sim_network.hpp"
#include "test_support.hpp"

namespace locs::baseline {
namespace {

using core::TrackedObject;

const geo::Rect kArea{{0, 0}, {1000, 1000}};

struct TwoTierWorld {
  net::SimNetwork net;
  TwoTierDeployment deployment;
  std::uint32_t next_client = 1 << 20;

  TwoTierWorld()
      : deployment(net, net.clock(), RegionMap::grid(kArea, 2, 2), {}) {}

  NodeId client_node() { return NodeId{next_client++}; }
  void run() { net.run_until_idle(); }
};

TEST(TwoTier, RegisterUpdateQuery) {
  TwoTierWorld world;
  TrackedObject obj(world.client_node(), ObjectId{1}, world.net, world.net.clock());
  obj.start_register(world.deployment.entry_for({100, 100}), {100, 100}, 1.0,
                     {10.0, 50.0});
  world.run();
  ASSERT_TRUE(obj.tracked());

  core::QueryClient qc(world.client_node(), world.net, world.net.clock());
  qc.set_entry(world.deployment.entry_for({900, 900}));  // remote entry
  const std::uint64_t id = qc.send_pos_query(ObjectId{1});
  world.run();
  const auto res = qc.take_pos(id);
  ASSERT_TRUE(res.has_value());
  ASSERT_TRUE(res->found);
  EXPECT_EQ(res->ld.pos, (geo::Point{100, 100}));
}

TEST(TwoTier, RegionChangeUpdatesHome) {
  TwoTierWorld world;
  TrackedObject obj(world.client_node(), ObjectId{1}, world.net, world.net.clock());
  obj.start_register(world.deployment.entry_for({100, 100}), {100, 100}, 1.0,
                     {10.0, 50.0});
  world.run();
  ASSERT_TRUE(obj.tracked());
  const auto stats_before = world.deployment.total_stats();

  obj.feed_position({900, 900});  // cross into another region
  world.run();
  EXPECT_TRUE(obj.tracked());
  EXPECT_EQ(obj.agent(), world.deployment.entry_for({900, 900}));
  const auto stats_after = world.deployment.total_stats();
  EXPECT_EQ(stats_after.handovers, stats_before.handovers + 1);
  // The defining HLR/VLR cost: the home pointer is rewritten on every
  // region change.
  EXPECT_GT(stats_after.home_updates, stats_before.home_updates);

  // Queries find the object at its new region from anywhere.
  core::QueryClient qc(world.client_node(), world.net, world.net.clock());
  qc.set_entry(world.deployment.entry_for({100, 100}));
  const std::uint64_t id = qc.send_pos_query(ObjectId{1});
  world.run();
  const auto res = qc.take_pos(id);
  ASSERT_TRUE(res.has_value());
  ASSERT_TRUE(res->found);
  EXPECT_EQ(res->ld.pos, (geo::Point{900, 900}));
}

TEST(TwoTier, RangeQueryBroadcastsToOverlappingRegions) {
  TwoTierWorld world;
  std::vector<std::unique_ptr<TrackedObject>> objs;
  const std::vector<geo::Point> positions{{100, 100}, {900, 100}, {100, 900}, {900, 900}};
  for (std::size_t i = 0; i < positions.size(); ++i) {
    objs.push_back(std::make_unique<TrackedObject>(world.client_node(),
                                                   ObjectId{i + 1}, world.net,
                                                   world.net.clock()));
    objs.back()->start_register(world.deployment.entry_for(positions[i]),
                                positions[i], 1.0, {10.0, 50.0});
    world.run();
    ASSERT_TRUE(objs.back()->tracked());
  }
  core::QueryClient qc(world.client_node(), world.net, world.net.clock());
  qc.set_entry(world.deployment.entry_for({100, 100}));
  // Query spanning all four regions.
  const std::uint64_t id = qc.send_range_query(
      geo::Polygon::from_rect(geo::Rect{{50, 50}, {950, 950}}), 25.0, 0.5);
  world.run();
  const auto res = qc.take_range(id);
  ASSERT_TRUE(res.has_value());
  EXPECT_TRUE(res->complete);
  EXPECT_EQ(res->objects.size(), 4u);
}

TEST(TwoTier, LeavingServiceAreaDeregisters) {
  TwoTierWorld world;
  TrackedObject obj(world.client_node(), ObjectId{1}, world.net, world.net.clock());
  obj.start_register(world.deployment.entry_for({100, 100}), {100, 100}, 1.0,
                     {10.0, 50.0});
  world.run();
  ASSERT_TRUE(obj.tracked());
  obj.feed_position({5000, 5000});
  world.run();
  EXPECT_EQ(obj.state(), TrackedObject::State::kDeregistered);
}

TEST(TwoTier, DeregisterCleansHomePointer) {
  TwoTierWorld world;
  TrackedObject obj(world.client_node(), ObjectId{1}, world.net, world.net.clock());
  obj.start_register(world.deployment.entry_for({100, 100}), {100, 100}, 1.0,
                     {10.0, 50.0});
  world.run();
  obj.deregister();
  world.run();
  core::QueryClient qc(world.client_node(), world.net, world.net.clock());
  qc.set_entry(world.deployment.entry_for({900, 900}));
  const std::uint64_t id = qc.send_pos_query(ObjectId{1});
  world.run();
  const auto res = qc.take_pos(id);
  ASSERT_TRUE(res.has_value());
  EXPECT_FALSE(res->found);
}

TEST(TwoTier, HierarchyBeatsTwoTierOnLocalizedRangeQueries) {
  // Structural comparison (ablation A4's core claim): for a small local
  // range query, the hierarchy touches one leaf; the two-tier system must
  // still answer from one region, so message counts are comparable -- but
  // for *position* queries of remote objects the two-tier detours via a
  // hashed home while the hierarchy exploits locality of the pivot.
  test::SimWorld hier(core::HierarchyBuilder::grid(kArea, 2, 2, 1));
  auto h_obj = hier.register_object(ObjectId{1}, {450, 450}, 1.0, {10.0, 50.0});
  auto h_qc = hier.make_query_client(hier.deployment->entry_leaf_for({460, 460}));
  const std::uint64_t h_before = hier.net.messages_sent();
  ASSERT_TRUE(hier.pos_query(*h_qc, ObjectId{1}).found);
  const std::uint64_t h_msgs = hier.net.messages_sent() - h_before;

  TwoTierWorld flat;
  TrackedObject f_obj(flat.client_node(), ObjectId{1}, flat.net, flat.net.clock());
  f_obj.start_register(flat.deployment.entry_for({450, 450}), {450, 450}, 1.0,
                       {10.0, 50.0});
  flat.run();
  core::QueryClient f_qc(flat.client_node(), flat.net, flat.net.clock());
  f_qc.set_entry(flat.deployment.entry_for({460, 460}));
  const std::uint64_t f_before = flat.net.messages_sent();
  const std::uint64_t id = f_qc.send_pos_query(ObjectId{1});
  flat.run();
  ASSERT_TRUE(f_qc.take_pos(id).value().found);
  const std::uint64_t f_msgs = flat.net.messages_sent() - f_before;

  // Both entries are the object's own region server -> both answer locally
  // with 2 messages. The interesting cost difference is exercised in the
  // ablation bench; here we just pin the local-query equivalence.
  EXPECT_EQ(h_msgs, 2u);
  EXPECT_EQ(f_msgs, 2u);
}

}  // namespace
}  // namespace locs::baseline
