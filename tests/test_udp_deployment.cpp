// End-to-end over real UDP loopback: the Table-2 topology (1 root + 4
// leaves) with registration, updates, handover and all three query types
// running through actual sockets, exactly like the paper's prototype.
#include <gtest/gtest.h>

#include "core/client.hpp"
#include "core/deployment.hpp"
#include "core/hierarchy_builder.hpp"
#include "net/udp_network.hpp"

namespace locs::test {
namespace {

using core::AccuracyRange;
using core::QueryClient;
using core::TrackedObject;

constexpr Duration kTimeout = seconds(5);

class UdpDeploymentTest : public ::testing::Test {
 protected:
  // Node ids reach 5, client ids 5000+: pick an ephemeral base covering that
  // span so parallel ctest runs don't collide on one hardcoded port pair.
  UdpDeploymentTest()
      : net_(net::UdpNetwork::pick_free_base_port(/*span=*/5100)),
        spec_(core::HierarchyBuilder::table2(geo::Rect{{0, 0}, {1500, 1500}})) {
    core::Deployment::Config cfg;
    cfg.lock_handlers = true;  // handlers run on socket threads
    deployment_ = std::make_unique<core::Deployment>(net_, clock_, spec_, cfg);
  }

  /// Spin-waits (real time) until `pred` is true or ~2 s elapse.
  template <typename Pred>
  bool wait_for(Pred pred) {
    for (int i = 0; i < 400; ++i) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return pred();
  }

  net::UdpNetwork net_;
  SystemClock clock_;
  core::HierarchySpec spec_;
  std::unique_ptr<core::Deployment> deployment_;
  std::uint32_t next_client_ = 5000;  // ports base+5000
};

TEST_F(UdpDeploymentTest, RegisterUpdateHandoverAndQueries) {
  TrackedObject obj(NodeId{next_client_++}, ObjectId{1}, net_, clock_);
  obj.start_register(deployment_->entry_leaf_for({100, 100}), {100, 100}, 1.0,
                     AccuracyRange{10.0, 50.0});
  ASSERT_TRUE(wait_for([&] { return obj.tracked(); }));
  const NodeId first_agent = obj.agent();
  EXPECT_EQ(first_agent, deployment_->entry_leaf_for({100, 100}));

  // Local update; completion is the UpdateAck clearing the pending flag
  // (observing through the protocol, not by poking the reactor's database
  // from another thread).
  obj.feed_position({150, 150});
  ASSERT_TRUE(wait_for([&] { return !obj.update_pending(); }));

  // Handover into the opposite quadrant.
  obj.feed_position({1200, 1200});
  ASSERT_TRUE(wait_for([&] {
    return obj.agent() == deployment_->entry_leaf_for({1200, 1200});
  }));

  // Position query from a remote entry.
  QueryClient qc(NodeId{next_client_++}, net_, clock_);
  qc.set_entry(deployment_->entry_leaf_for({100, 100}));
  const auto pos = qc.pos_query_blocking(ObjectId{1}, kTimeout);
  ASSERT_TRUE(pos.has_value());
  ASSERT_TRUE(pos->found);
  EXPECT_EQ(pos->ld.pos, (geo::Point{1200, 1200}));

  // Range query across the leaf the object lives in.
  const auto range = qc.range_query_blocking(
      geo::Polygon::from_rect(geo::Rect{{1100, 1100}, {1300, 1300}}), 25.0, 0.5,
      kTimeout);
  ASSERT_TRUE(range.has_value());
  EXPECT_TRUE(range->complete);
  ASSERT_EQ(range->objects.size(), 1u);
  EXPECT_EQ(range->objects[0].oid, ObjectId{1});

  // NN query.
  const auto nn = qc.nn_query_blocking({1150, 1150}, 50.0, 0.0, kTimeout);
  ASSERT_TRUE(nn.has_value());
  ASSERT_TRUE(nn->found);
  EXPECT_EQ(nn->nearest.oid, ObjectId{1});
}

TEST_F(UdpDeploymentTest, ConcurrentClientsFromMultipleThreads) {
  // Several objects + query clients hammering the deployment concurrently;
  // all operations must succeed (loopback, no loss expected).
  constexpr int kObjects = 8;
  std::vector<std::unique_ptr<TrackedObject>> objs;
  for (int i = 0; i < kObjects; ++i) {
    objs.push_back(std::make_unique<TrackedObject>(NodeId{next_client_++},
                                                   ObjectId{static_cast<std::uint64_t>(i + 1)},
                                                   net_, clock_));
    const geo::Point p{100.0 + 160.0 * i, 100.0 + 160.0 * i};
    objs.back()->start_register(deployment_->entry_leaf_for(p), p, 1.0,
                                AccuracyRange{10.0, 50.0});
  }
  ASSERT_TRUE(wait_for([&] {
    return std::all_of(objs.begin(), objs.end(),
                       [](const auto& o) { return o->tracked(); });
  }));

  std::atomic<int> successes{0};
  std::vector<std::thread> threads;
  std::vector<std::unique_ptr<QueryClient>> clients;
  for (int t = 0; t < 4; ++t) {
    clients.push_back(
        std::make_unique<QueryClient>(NodeId{next_client_++}, net_, clock_));
    clients.back()->set_entry(spec_.leaves()[static_cast<std::size_t>(t)]);
  }
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      QueryClient& qc = *clients[static_cast<std::size_t>(t)];
      for (int i = 0; i < 20; ++i) {
        const auto res = qc.pos_query_blocking(
            ObjectId{static_cast<std::uint64_t>(i % kObjects + 1)}, kTimeout);
        if (res && res->found) successes.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(successes.load(), 80);
}

}  // namespace
}  // namespace locs::test
