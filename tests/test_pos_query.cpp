// Algorithm 6-4: position query processing, local and remote, including the
// Fig 6 hop trace (entry -> root -> forwarding path -> agent -> entry).
#include <gtest/gtest.h>

#include "test_support.hpp"
#include "wire/messages.hpp"

namespace locs::test {
namespace {

const geo::Rect kArea{{0, 0}, {1000, 1000}};

TEST(PosQuery, LocalAtAgentLeaf) {
  SimWorld world(core::HierarchyBuilder::fig6(kArea));
  auto obj = world.register_object(ObjectId{1}, {100, 100}, 1.0, {10.0, 50.0});
  ASSERT_TRUE(obj->tracked());
  auto qc = world.make_query_client(NodeId{4});  // the agent itself
  const auto res = world.pos_query(*qc, ObjectId{1});
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.ld.pos, (geo::Point{100, 100}));
  EXPECT_DOUBLE_EQ(res.ld.acc, 10.0);
  EXPECT_EQ(world.deployment->server(NodeId{4}).stats().pos_queries_served, 1u);
}

TEST(PosQuery, RemoteClimbsToPivotOnly) {
  SimWorld world(core::HierarchyBuilder::fig6(kArea));
  auto obj = world.register_object(ObjectId{2}, {100, 600}, 1.0, {10.0, 50.0});
  ASSERT_EQ(obj->agent(), NodeId{5});
  // Entry s4: object in sibling s5 -- "if the object had been located in the
  // service area of s5, the request would have been forwarded only up to s2".
  std::vector<std::pair<std::uint32_t, std::uint32_t>> hops;
  world.net.set_tracer([&](TimePoint, NodeId from, NodeId to, const wire::Buffer& b) {
    auto env = wire::decode_envelope(b);
    if (!env.ok()) return;
    const auto type = wire::message_type(env.value().msg);
    if (type == wire::MsgType::kPosQueryFwd || type == wire::MsgType::kPosQueryRes) {
      hops.emplace_back(from.value, to.value);
    }
  });
  auto qc = world.make_query_client(NodeId{4});
  const auto res = world.pos_query(*qc, ObjectId{2});
  ASSERT_TRUE(res.found);
  // Fwd: 4 -> 2 (pivot), 2 -> 5 (down); Res: 5 -> 4 (direct to entry),
  // then 4 -> client.
  ASSERT_EQ(hops.size(), 4u);
  EXPECT_EQ(hops[0], (std::pair<std::uint32_t, std::uint32_t>{4, 2}));
  EXPECT_EQ(hops[1], (std::pair<std::uint32_t, std::uint32_t>{2, 5}));
  EXPECT_EQ(hops[2], (std::pair<std::uint32_t, std::uint32_t>{5, 4}));
}

TEST(PosQuery, Fig6RemoteTraceThroughRoot) {
  // Fig 6 (position query): issued at s4, object at s6: up to the root, down
  // the forwarding path to s6, answer directly back to s4.
  SimWorld world(core::HierarchyBuilder::fig6(kArea));
  auto obj = world.register_object(ObjectId{3}, {600, 100}, 1.0, {10.0, 50.0});
  ASSERT_EQ(obj->agent(), NodeId{6});
  std::vector<std::pair<std::uint32_t, std::uint32_t>> hops;
  world.net.set_tracer([&](TimePoint, NodeId from, NodeId to, const wire::Buffer& b) {
    auto env = wire::decode_envelope(b);
    if (!env.ok()) return;
    const auto type = wire::message_type(env.value().msg);
    if (type == wire::MsgType::kPosQueryFwd || type == wire::MsgType::kPosQueryRes) {
      hops.emplace_back(from.value, to.value);
    }
  });
  auto qc = world.make_query_client(NodeId{4});
  const auto res = world.pos_query(*qc, ObjectId{3});
  ASSERT_TRUE(res.found);
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> expected_prefix{
      {4, 2}, {2, 1}, {1, 3}, {3, 6}, {6, 4}};
  ASSERT_GE(hops.size(), expected_prefix.size());
  for (std::size_t i = 0; i < expected_prefix.size(); ++i) {
    EXPECT_EQ(hops[i], expected_prefix[i]) << "hop " << i;
  }
}

TEST(PosQuery, UnknownObjectNotFound) {
  SimWorld world(core::HierarchyBuilder::fig6(kArea));
  auto qc = world.make_query_client(NodeId{4});
  const auto res = world.pos_query(*qc, ObjectId{404});
  EXPECT_FALSE(res.found);
}

TEST(PosQuery, FindsObjectAfterHandover) {
  SimWorld world(core::HierarchyBuilder::fig6(kArea));
  auto obj = world.register_object(ObjectId{4}, {100, 100}, 1.0, {10.0, 50.0});
  obj->feed_position({800, 800});  // handover to s7
  world.run();
  ASSERT_EQ(obj->agent(), NodeId{7});
  auto qc = world.make_query_client(NodeId{4});
  const auto res = world.pos_query(*qc, ObjectId{4});
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.ld.pos, (geo::Point{800, 800}));
}

TEST(PosQuery, AfterDeregistrationNotFound) {
  SimWorld world(core::HierarchyBuilder::fig6(kArea));
  auto obj = world.register_object(ObjectId{5}, {100, 100});
  obj->deregister();
  world.run();
  auto qc = world.make_query_client(NodeId{7});
  const auto res = world.pos_query(*qc, ObjectId{5});
  EXPECT_FALSE(res.found);
}

TEST(PosQuery, ManyObjectsFromEveryEntry) {
  SimWorld world(core::HierarchyBuilder::grid(kArea, 2, 2, 2));
  Rng rng(5);
  std::vector<std::unique_ptr<TrackedObject>> objs;
  std::vector<geo::Point> positions;
  for (std::uint64_t i = 1; i <= 60; ++i) {
    const geo::Point p{rng.uniform(0, 1000), rng.uniform(0, 1000)};
    positions.push_back(p);
    objs.push_back(world.register_object(ObjectId{i}, p));
  }
  for (const NodeId entry : world.deployment->leaf_ids()) {
    auto qc = world.make_query_client(entry);
    for (std::uint64_t i = 1; i <= 60; i += 7) {
      const auto res = world.pos_query(*qc, ObjectId{i});
      ASSERT_TRUE(res.found) << "entry " << entry.value << " object " << i;
      EXPECT_EQ(res.ld.pos, positions[i - 1]);
    }
  }
}

}  // namespace
}  // namespace locs::test
