// io_uring transmit backend coverage: sendmmsg/uring/SQPOLL parity (same
// bytes on the wire, checksummed), fragment integrity across linked SQEs,
// real EAGAIN backpressure through CQEs, graceful fallback when the kernel
// probe fails, and busy-poll shard-reactor equivalence under the sharded
// UDP suites. Every uring-dependent test skips (visibly) on kernels
// without io_uring, so the suite stays green on locked-down runners.
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/client.hpp"
#include "core/deployment.hpp"
#include "core/hierarchy_builder.hpp"
#include "net/tx_ring.hpp"
#include "net/udp_network.hpp"
#include "net/uring_backend.hpp"

namespace locs::net {
namespace {

bool wait_until(const std::function<bool()>& pred, int ms = 4000) {
  for (int i = 0; i < ms / 5; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

std::uint64_t fnv1a(const std::uint8_t* d, std::size_t n) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h = (h ^ d[i]) * 1099511628211ULL;
  }
  return h;
}

/// Deterministic blast payload for message `i` (single-fragment sizes).
std::vector<std::uint8_t> blast_payload(int i) {
  std::vector<std::uint8_t> p(64 + (static_cast<std::size_t>(i) * 37) % 1000);
  for (std::size_t j = 0; j < p.size(); ++j) {
    p[j] = static_cast<std::uint8_t>((i * 2654435761u + j * 40503u) >> 13);
  }
  return p;
}

struct BlastResult {
  std::uint64_t checksum = 0;  // commutative: sum of per-message FNV1a
  int received = 0;
  UdpNetwork::TxStats tx;
  bool uring = false;
};

/// Corked blast of `count` deterministic messages node 2 -> node 1 under
/// the given transport options; returns the order-independent payload
/// checksum the receiver saw plus the sender's tx stats.
BlastResult run_blast(UdpNetwork::Options opts, int count) {
  BlastResult r;
  UdpNetwork net(UdpNetwork::pick_free_base_port(10), opts);
  std::atomic<int> received{0};
  std::atomic<std::uint64_t> checksum{0};
  net.attach(NodeId{1}, [&](const std::uint8_t* d, std::size_t n) {
    checksum.fetch_add(fnv1a(d, n), std::memory_order_relaxed);
    received.fetch_add(1);
  });
  net.attach(NodeId{2}, [](const std::uint8_t*, std::size_t) {});
  net.cork(NodeId{2});
  for (int i = 0; i < count; ++i) {
    net.send(NodeId{2}, NodeId{1}, blast_payload(i));
    if ((i & 63) == 63) net.flush(NodeId{2});  // bound rcvbuf pressure
  }
  net.uncork(NodeId{2});
  EXPECT_TRUE(wait_until([&] { return received.load() >= count; }));
  r.uring = net.uring_active(NodeId{2});
  r.received = received.load();
  r.checksum = checksum.load();
  r.tx = net.tx_stats(NodeId{2});
  return r;
}

// Parity + storm accounting, all three backends: the same corked blast must
// deliver byte-identical payloads (commutative checksum), with dropped == 0
// and sent == delivered, whether flushes go through sendmmsg, a plain
// io_uring ring, or the SQPOLL tier.
TEST(UringBackend, BackendParityChecksumsAndStormAccounting) {
  constexpr int kMessages = 512;
  const BlastResult base = run_blast({}, kMessages);
  EXPECT_FALSE(base.uring);
  EXPECT_EQ(base.received, kMessages);
  EXPECT_EQ(base.tx.dropped, 0u);
  EXPECT_EQ(base.tx.datagrams_sent, static_cast<std::uint64_t>(base.received))
      << "sendmmsg: sent != delivered";
  EXPECT_EQ(base.tx.uring_sqes, 0u);  // sendmmsg path: uring counters silent

  if (!UringBackend::kernel_supported()) {
    GTEST_SKIP() << "io_uring unsupported on this kernel; sendmmsg path OK";
  }
  const BlastResult uring = run_blast({.use_io_uring = true}, kMessages);
  ASSERT_TRUE(uring.uring) << "probe ok but backend did not engage";
  EXPECT_EQ(uring.received, kMessages);
  EXPECT_EQ(uring.tx.dropped, 0u);
  EXPECT_EQ(uring.tx.datagrams_sent,
            static_cast<std::uint64_t>(uring.received))
      << "uring: sent != delivered";
  EXPECT_EQ(uring.checksum, base.checksum)
      << "payload bytes differ between sendmmsg and io_uring backends";
  // Every submitted SQE came back as a CQE (drain on teardown).
  EXPECT_EQ(uring.tx.uring_sqes, uring.tx.uring_cqes);
  EXPECT_GE(uring.tx.uring_cqes, static_cast<std::uint64_t>(kMessages));

  if (!UringBackend::sqpoll_supported()) {
    GTEST_SKIP() << "SQPOLL unsupported (needs kernel >= 5.11 unprivileged)";
  }
  const BlastResult sq = run_blast({.use_io_uring = true, .sqpoll = true},
                                   kMessages);
  ASSERT_TRUE(sq.uring);
  EXPECT_EQ(sq.received, kMessages);
  EXPECT_EQ(sq.tx.dropped, 0u);
  EXPECT_EQ(sq.checksum, base.checksum)
      << "payload bytes differ between sendmmsg and SQPOLL backends";
  // The SQPOLL tier's whole point: far fewer enter syscalls than flushes.
  // (Wakeups after the 50ms idle window keep this > 0, so bound, not zero.)
  EXPECT_LT(sq.tx.batches_flushed, uring.tx.batches_flushed);
}

// Multi-fragment messages ride linked SQEs; mixing them with small corked
// messages forces mid-message flushes (chains broken at batch boundaries)
// and reassembly must still see every fragment of every message once.
TEST(UringBackend, FragmentIntegrityAcrossLinkedSqes) {
  if (!UringBackend::kernel_supported()) {
    GTEST_SKIP() << "io_uring unsupported on this kernel";
  }
  UdpNetwork net(UdpNetwork::pick_free_base_port(10),
                 {.use_io_uring = true});
  std::atomic<int> small_got{0};
  std::atomic<int> big_got{0};
  std::atomic<int> big_corrupt{0};
  net.attach(NodeId{1}, [&](const std::uint8_t* d, std::size_t n) {
    if (n < 1000) {
      small_got.fetch_add(1);
      return;
    }
    const std::uint8_t tag = d[0];
    bool ok = n == 150 * 1024;
    for (std::size_t i = 0; ok && i < n; i += 4097) {
      ok = d[i] == static_cast<std::uint8_t>(tag + i % 251);
    }
    (ok ? big_got : big_corrupt).fetch_add(1);
  });
  net.attach(NodeId{2}, [](const std::uint8_t*, std::size_t) {});
  ASSERT_TRUE(net.uring_active(NodeId{2}));
  net.cork(NodeId{2});
  std::vector<std::uint8_t> big(150 * 1024);
  for (int m = 0; m < 4; ++m) {
    for (int s = 0; s < 5; ++s) {
      net.send(NodeId{2}, NodeId{1}, {static_cast<std::uint8_t>(s)});
    }
    for (std::size_t i = 0; i < big.size(); ++i) {
      big[i] = static_cast<std::uint8_t>(m * 50 + i % 251);
    }
    net.send(NodeId{2}, NodeId{1}, big);
  }
  net.uncork(NodeId{2});
  ASSERT_TRUE(wait_until(
      [&] { return small_got.load() >= 20 && big_got.load() >= 4; }));
  EXPECT_EQ(small_got.load(), 20);
  EXPECT_EQ(big_got.load(), 4);
  EXPECT_EQ(big_corrupt.load(), 0);
  const UdpNetwork::TxStats tx = net.tx_stats(NodeId{2});
  EXPECT_EQ(tx.dropped, 0u);
  // 4 x 5 fragments + 20 singles, every one submitted and completed.
  EXPECT_EQ(tx.datagrams_sent, 40u);
}

// Real backpressure: an AF_UNIX datagram pair with starved buffers makes
// the kernel answer SENDMSG SQEs with -EAGAIN CQEs. The backend must wait
// its bounded POLLOUT budget, resubmit, and then COUNT the tail dropped --
// identical semantics to the sendmmsg path's EAGAIN handling.
TEST(UringBackend, EagainBackpressureThroughCqesIsCountedNotSwallowed) {
  if (!UringBackend::kernel_supported()) {
    GTEST_SKIP() << "io_uring unsupported on this kernel";
  }
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_DGRAM, 0, sv), 0);
  const int tiny = 1;  // kernel clamps to its minimum
  ::setsockopt(sv[0], SOL_SOCKET, SO_SNDBUF, &tiny, sizeof tiny);
  ::setsockopt(sv[1], SOL_SOCKET, SO_RCVBUF, &tiny, sizeof tiny);
  std::atomic<std::uint32_t> ids{1};
  TxRing ring(sv[0], ids);
  auto backend = UringBackend::create(sv[0], /*sqpoll=*/false);
  ASSERT_NE(backend, nullptr);
  ring.set_uring(backend.get());
  ring.set_retry_budget(/*polls=*/2, /*poll_timeout_ms=*/1);
  BufferPool pool;
  constexpr int kMessages = 64;
  ring.cork();
  for (int i = 0; i < kMessages; ++i) {
    PooledBuffer buf(&pool, pool.acquire());
    buf->assign(2048, static_cast<std::uint8_t>(i));
    ring.enqueue(std::move(buf));  // connected-socket form
  }
  ring.uncork();
  ring.drain();  // wait out every CQE so the accounting below is final
  const TxRing::Stats s = ring.stats();
  EXPECT_GT(s.eagain_retries, 0u);
  EXPECT_GT(s.dropped, 0u);
  EXPECT_EQ(s.datagrams_sent + s.dropped,
            static_cast<std::uint64_t>(kMessages));
  EXPECT_EQ(s.uring_cqes, s.uring_sqes);
  // Every parked buffer recycled: nothing left in flight, pool got every
  // buffer back (drops included).
  EXPECT_EQ(ring.uring_in_flight(), 0u);
  std::uint64_t drained = 0;
  std::uint8_t scratch[4096];
  while (::recv(sv[1], scratch, sizeof scratch, MSG_DONTWAIT) > 0) ++drained;
  EXPECT_EQ(drained, s.datagrams_sent);
  ring.set_fd(-1);
  ::close(sv[0]);
  ::close(sv[1]);
}

// The LOCS_NO_IO_URING override forces the runtime probe to report
// "unsupported" even on capable kernels: Options::use_io_uring then
// silently keeps the sendmmsg path -- same traffic, zero uring engagement.
TEST(UringBackend, GracefulFallbackWhenProbeFails) {
  ASSERT_EQ(::setenv("LOCS_NO_IO_URING", "1", 1), 0);
  EXPECT_FALSE(UringBackend::kernel_supported());
  EXPECT_FALSE(UringBackend::sqpoll_supported());
  EXPECT_EQ(UringBackend::create(1, false), nullptr);
  const BlastResult r = run_blast({.use_io_uring = true, .sqpoll = true}, 64);
  EXPECT_FALSE(r.uring) << "backend engaged despite LOCS_NO_IO_URING";
  EXPECT_EQ(r.received, 64);
  EXPECT_EQ(r.tx.dropped, 0u);
  EXPECT_EQ(r.tx.uring_sqes, 0u);
  ASSERT_EQ(::unsetenv("LOCS_NO_IO_URING"), 0);
  // With the override lifted the same process probes true again (the env
  // check is per-call, the kernel probe per-process).
  if (UringBackend::kernel_supported()) {
    const BlastResult r2 = run_blast({.use_io_uring = true}, 64);
    EXPECT_TRUE(r2.uring);
  }
}

}  // namespace
}  // namespace locs::net

// -- busy-poll shard reactors over real UDP ------------------------------

namespace locs::test {
namespace {

using core::AccuracyRange;
using core::TrackedObject;

struct WorkloadOutcome {
  geo::Point final_pos{};
  bool tracked = false;
  std::uint64_t inbox_dropped = 0;
  std::uint64_t tx_dropped = 0;
  core::ShardedLocationServer::BusyPollStats bp;
};

/// One tracked object registered at a threaded 2-shard leaf, fed a burst of
/// position updates; returns the protocol outcome + idle-path counters.
WorkloadOutcome run_sharded_workload(std::uint32_t busy_poll_us,
                                     bool use_uring) {
  net::UdpNetwork net(net::UdpNetwork::pick_free_base_port(5100),
                      {.use_io_uring = use_uring});
  SystemClock clock;
  core::HierarchySpec spec =
      core::HierarchyBuilder::table2(geo::Rect{{0, 0}, {1500, 1500}});
  core::Deployment::Config cfg;
  cfg.lock_handlers = true;
  cfg.leaf_shards = 2;
  cfg.shard_threads = true;
  cfg.shard_busy_poll_us = busy_poll_us;
  WorkloadOutcome out;
  {
    core::Deployment dep(net, clock, spec, cfg);
    const NodeId leaf = dep.entry_leaf_for({100, 100});
    TrackedObject obj(NodeId{5000}, ObjectId{7}, net, clock);
    obj.start_register(leaf, {100, 100}, 1.0, AccuracyRange{10.0, 50.0});
    const auto ok = [](const std::function<bool()>& pred) {
      for (int i = 0; i < 800; ++i) {
        if (pred()) return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      return pred();
    };
    if (!ok([&] { return obj.tracked(); })) return out;
    // Alternate between two points > accuracy bound apart so every feed
    // really goes to the wire (small deltas are suppressed client-side);
    // stay inside the entry leaf's area so find_sighting targets it.
    for (int i = 1; i <= 40; ++i) {
      obj.feed_position(i % 2 == 0 ? geo::Point{140, 140}
                                   : geo::Point{100, 100});
      if (!ok([&] { return !obj.update_pending(); })) return out;
    }
    // Let the reactors go idle so the busy-poll window (then the sleep
    // path) actually runs before we read the counters.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    store::SightingDb::Record rec;
    out.tracked = dep.find_sighting(leaf, ObjectId{7}, rec);
    if (out.tracked) out.final_pos = rec.sighting.pos;
    const core::ShardedLocationServer* sharded = dep.sharded(leaf);
    if (sharded != nullptr) {
      out.inbox_dropped = sharded->inbox_dropped();
      out.bp = sharded->busy_poll_stats();
    }
    out.tx_dropped = net.tx_stats(leaf).dropped;
  }
  net.stop();
  return out;
}

// Busy-poll reactors must be a pure latency knob: identical protocol
// outcomes with the window off, on, and on-over-uring -- only the idle-path
// counters may differ (spins engage, sleeps still bounded).
TEST(BusyPollShards, ReactorEquivalenceUnderShardedWorkload) {
  const WorkloadOutcome off = run_sharded_workload(0, false);
  ASSERT_TRUE(off.tracked);
  EXPECT_EQ(off.final_pos, (geo::Point{140, 140}));
  EXPECT_EQ(off.inbox_dropped, 0u);
  EXPECT_EQ(off.tx_dropped, 0u);
  EXPECT_EQ(off.bp.spins, 0u);  // window off: no busy-poll iterations
  EXPECT_GT(off.bp.sleeps, 0u);

  const WorkloadOutcome on = run_sharded_workload(200, false);
  ASSERT_TRUE(on.tracked);
  EXPECT_EQ(on.final_pos, off.final_pos);
  EXPECT_EQ(on.inbox_dropped, 0u);
  EXPECT_EQ(on.tx_dropped, 0u);
  EXPECT_GT(on.bp.spins, 0u);  // window engaged

  if (!net::UringBackend::kernel_supported()) {
    GTEST_SKIP() << "io_uring unsupported; busy-poll over sendmmsg verified";
  }
  const WorkloadOutcome uring = run_sharded_workload(200, true);
  ASSERT_TRUE(uring.tracked);
  EXPECT_EQ(uring.final_pos, off.final_pos);
  EXPECT_EQ(uring.inbox_dropped, 0u);
  EXPECT_EQ(uring.tx_dropped, 0u);
  EXPECT_GT(uring.bp.spins, 0u);
}

}  // namespace
}  // namespace locs::test
