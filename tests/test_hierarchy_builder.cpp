// Hierarchy construction invariants (§4): children tile their parent,
// siblings do not overlap, leaves tile the root service area.
#include <gtest/gtest.h>

#include "core/hierarchy_builder.hpp"
#include "test_support.hpp"

namespace locs::core {
namespace {

const geo::Rect kRoot{{0, 0}, {1600, 900}};

void check_invariants(const HierarchySpec& spec) {
  const HierarchySpec::Node* root = spec.find(spec.root);
  ASSERT_NE(root, nullptr);
  EXPECT_TRUE(root->cfg.is_root());

  double leaf_area_sum = 0.0;
  for (const HierarchySpec::Node& node : spec.nodes) {
    // Parent pointers are consistent.
    if (!node.cfg.is_root()) {
      const HierarchySpec::Node* parent = spec.find(node.cfg.parent);
      ASSERT_NE(parent, nullptr);
      bool found = false;
      for (const ChildRecord& c : parent->cfg.children) found |= c.id == node.id;
      EXPECT_TRUE(found) << "node " << node.id.value << " missing from parent";
    }
    if (node.cfg.is_leaf()) {
      leaf_area_sum += node.cfg.sa.area();
      continue;
    }
    // (1) A non-leaf service area is the union of its children: area sums
    // match and every child vertex is inside the parent.
    double child_sum = 0.0;
    for (const ChildRecord& c : node.cfg.children) {
      child_sum += c.sa.area();
      EXPECT_TRUE(geo::convex_contains_polygon(node.cfg.sa, c.sa));
    }
    EXPECT_NEAR(child_sum, node.cfg.sa.area(), 1e-6);
    // (2) Sibling service areas do not overlap (pairwise intersection 0).
    for (std::size_t i = 0; i < node.cfg.children.size(); ++i) {
      for (std::size_t j = i + 1; j < node.cfg.children.size(); ++j) {
        EXPECT_NEAR(geo::intersection_area(node.cfg.children[i].sa,
                                           node.cfg.children[j].sa),
                    0.0, 1e-6);
      }
    }
  }
  EXPECT_NEAR(leaf_area_sum, root->cfg.sa.area(), 1e-6);
}

TEST(HierarchyBuilder, GridInvariantsAcrossShapes) {
  for (const auto& [fx, fy, levels] :
       std::vector<std::tuple<int, int, int>>{
           {2, 2, 1}, {2, 2, 2}, {3, 3, 2}, {4, 2, 1}, {1, 1, 3}, {2, 2, 0}}) {
    const HierarchySpec spec = HierarchyBuilder::grid(kRoot, fx, fy, levels);
    SCOPED_TRACE("fanout " + std::to_string(fx) + "x" + std::to_string(fy) +
                 " levels " + std::to_string(levels));
    check_invariants(spec);
    // Node count: sum of (fx*fy)^l for l in 0..levels.
    std::size_t expected = 0, layer = 1;
    for (int l = 0; l <= levels; ++l, layer *= static_cast<std::size_t>(fx) * fy) {
      expected += layer;
    }
    EXPECT_EQ(spec.nodes.size(), expected);
  }
}

TEST(HierarchyBuilder, SingleServerIsRootAndLeaf) {
  const HierarchySpec spec = HierarchyBuilder::grid(kRoot, 2, 2, 0);
  ASSERT_EQ(spec.nodes.size(), 1u);
  EXPECT_TRUE(spec.nodes[0].cfg.is_root());
  EXPECT_TRUE(spec.nodes[0].cfg.is_leaf());
}

TEST(HierarchyBuilder, LeafForCoversEveryPoint) {
  const HierarchySpec spec = HierarchyBuilder::grid(kRoot, 3, 2, 2);
  Rng rng(321);
  for (int i = 0; i < 500; ++i) {
    const geo::Point p{rng.uniform(kRoot.min.x, kRoot.max.x),
                       rng.uniform(kRoot.min.y, kRoot.max.y)};
    const NodeId leaf = spec.leaf_for(p);
    ASSERT_TRUE(leaf.valid()) << p.x << "," << p.y;
    EXPECT_TRUE(spec.find(leaf)->cfg.covers(p));
  }
  EXPECT_FALSE(spec.leaf_for({-1, -1}).valid());
}

TEST(HierarchyBuilder, ChildForIsDeterministicOnBoundary) {
  const HierarchySpec spec = HierarchyBuilder::grid(kRoot, 2, 2, 1);
  const ConfigRecord& root = spec.find(spec.root)->cfg;
  // A point on the shared boundary of all four children.
  const geo::Point mid{kRoot.center()};
  const NodeId a = root.child_for(mid);
  const NodeId b = root.child_for(mid);
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a, b);
}

TEST(HierarchyBuilder, Fig6Topology) {
  const HierarchySpec spec = HierarchyBuilder::fig6(kRoot);
  check_invariants(spec);
  ASSERT_EQ(spec.nodes.size(), 7u);
  EXPECT_EQ(spec.root, NodeId{1});
  const auto* s1 = spec.find(NodeId{1});
  ASSERT_EQ(s1->cfg.children.size(), 2u);
  const auto* s2 = spec.find(NodeId{2});
  EXPECT_EQ(s2->cfg.parent, NodeId{1});
  ASSERT_EQ(s2->cfg.children.size(), 2u);
  EXPECT_EQ(s2->cfg.children[0].id, NodeId{4});
  const auto leaves = spec.leaves();
  EXPECT_EQ(leaves.size(), 4u);
}

TEST(HierarchyBuilder, Table2Topology) {
  const HierarchySpec spec = HierarchyBuilder::table2(geo::Rect{{0, 0}, {1500, 1500}});
  check_invariants(spec);
  ASSERT_EQ(spec.nodes.size(), 5u);
  EXPECT_EQ(spec.leaves().size(), 4u);
  for (const NodeId leaf : spec.leaves()) {
    EXPECT_NEAR(spec.find(leaf)->cfg.sa.area(), 750.0 * 750.0, 1e-6);
  }
}

}  // namespace
}  // namespace locs::core
