// Property / fuzz tests for the wire codec, covering EVERY protocol message
// type (extends PR 1's varint boundary tests):
//  * encode -> decode -> re-encode is byte-stable for random payloads,
//  * truncated datagrams sticky-fail (and never crash) -- cutting the last
//    byte always breaks the final required field,
//  * bit-flipped and purely random datagrams never crash the decoder; when
//    a flip happens to decode, the result re-encodes without crashing,
//  * the routing peek (wire::peek_object_key) agrees with the full decode,
//  * hardened varints: boundary values round-trip, overlong and overflowing
//    encodings sticky-fail.
#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "wire/messages.hpp"

namespace locs::wire {
namespace {

using locs::Rng;

// --- random payload generators ----------------------------------------------

geo::Point rand_point(Rng& rng) {
  return {rng.uniform(-1e6, 1e6), rng.uniform(-1e6, 1e6)};
}

geo::Polygon rand_polygon(Rng& rng) {
  // Convexity is irrelevant for the codec; any vertex list must survive.
  std::vector<geo::Point> pts;
  const std::size_t n = rng.next_below(8);  // including empty polygons
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) pts.push_back(rand_point(rng));
  return geo::Polygon(std::move(pts));
}

ObjectId rand_oid(Rng& rng) {
  // Mix small and huge ids so varint lengths vary.
  return ObjectId{rng.next_below(3) == 0 ? rng.next_u64() : rng.next_below(1000)};
}

NodeId rand_node(Rng& rng) {
  return NodeId{static_cast<std::uint32_t>(rng.next_u64())};
}

core::Sighting rand_sighting(Rng& rng) {
  return {rand_oid(rng), static_cast<TimePoint>(rng.next_u64() >> 20),
          rand_point(rng), rng.uniform(0, 500)};
}

core::LocationDescriptor rand_ld(Rng& rng) {
  return {rand_point(rng), rng.uniform(0, 500)};
}

core::AccuracyRange rand_acc_range(Rng& rng) {
  return {rng.uniform(0, 100), rng.uniform(0, 100)};
}

core::RegInfo rand_reg_info(Rng& rng) {
  return {rand_node(rng), rand_acc_range(rng)};
}

PackedResults rand_results(Rng& rng) {
  PackedResults v;
  const std::size_t n = rng.next_below(6);  // including empty lists
  for (std::size_t i = 0; i < n; ++i) v.append({rand_oid(rng), rand_ld(rng)});
  return v;
}

std::optional<OriginArea> rand_origin(Rng& rng) {
  if (rng.next_below(2) == 0) return std::nullopt;
  return OriginArea{rand_node(rng), rand_polygon(rng)};
}

std::string rand_str(Rng& rng) {
  std::string s(rng.next_below(24), '\0');
  for (char& c : s) c = static_cast<char>(rng.next_below(256));
  return s;
}

BatchedUpdateReq rand_batch(Rng& rng) {
  BatchedUpdateReq b;
  const std::size_t n = rng.next_below(6);  // including empty batches
  for (std::size_t i = 0; i < n; ++i) b.append(rand_sighting(rng));
  return b;
}

BatchedUpdateAck rand_batch_ack(Rng& rng) {
  BatchedUpdateAck b;
  const std::size_t n = rng.next_below(6);
  for (std::size_t i = 0; i < n; ++i) b.append(rand_oid(rng), rng.uniform(0, 500));
  return b;
}

BatchedRefreshReq rand_refresh_batch(Rng& rng) {
  BatchedRefreshReq b;
  const std::size_t n = rng.next_below(8);  // including empty sweeps
  for (std::size_t i = 0; i < n; ++i) b.append(rand_oid(rng));
  return b;
}

BatchedPathUpdate rand_path_batch(Rng& rng) {
  BatchedPathUpdate b;
  const std::size_t n = rng.next_below(8);  // including empty batches
  for (std::size_t i = 0; i < n; ++i) b.append(rng.next_below(2) == 0, rand_oid(rng));
  return b;
}

ShardLoadStats rand_load_stats(Rng& rng) {
  ShardLoadStats m;
  m.seq = rng.next_u64();
  const std::size_t n = rng.next_below(6);  // including empty snapshots
  for (std::size_t i = 0; i < n; ++i) {
    m.append({static_cast<std::uint32_t>(rng.next_below(64)), rng.next_u64() >> 8,
              rng.next_u64() >> 8, rng.next_u64() >> 8, rng.next_below(100000)});
  }
  return m;
}

BucketMigrate rand_bucket_migrate(Rng& rng) {
  BucketMigrate m;
  m.bucket = static_cast<std::uint32_t>(rng.next_below(256));
  const std::size_t n = rng.next_below(5);  // including empty migrations
  for (std::size_t i = 0; i < n; ++i) {
    m.append({rand_sighting(rng), rng.uniform(0, 500),
              static_cast<TimePoint>(rng.next_u64() >> 20), rand_reg_info(rng)});
  }
  return m;
}

ReplicaTee rand_replica_tee(Rng& rng) {
  ReplicaTee m;
  const std::size_t n = rng.next_below(5);  // including empty tees
  for (std::size_t i = 0; i < n; ++i) {
    m.append({static_cast<ReplicaTee::Op>(rng.next_below(3)), rand_sighting(rng),
              rng.uniform(0, 500), static_cast<TimePoint>(rng.next_u64() >> 20),
              rand_reg_info(rng)});
  }
  return m;
}

/// One randomized instance of every protocol message type.
std::vector<Message> random_messages(Rng& rng) {
  std::vector<Message> msgs;
  msgs.push_back(RegisterReq{rand_sighting(rng), rand_str(rng),
                             rand_acc_range(rng), rand_node(rng), rng.next_u64()});
  msgs.push_back(RegisterRes{rand_node(rng), rng.uniform(0, 100), rng.next_u64()});
  msgs.push_back(
      RegisterFailed{rand_node(rng), rng.uniform(-1, 100), rng.next_u64()});
  msgs.push_back(CreatePath{rand_oid(rng)});
  msgs.push_back(RemovePath{rand_oid(rng)});
  msgs.push_back(UpdateReq{rand_sighting(rng)});
  msgs.push_back(UpdateAck{rand_oid(rng), rng.uniform(0, 100)});
  msgs.push_back(HandoverReq{rand_sighting(rng), rand_reg_info(rng),
                             rng.uniform(0, 100), rng.next_below(2) == 0,
                             rng.next_u64(), rand_origin(rng)});
  msgs.push_back(HandoverRes{rand_oid(rng), rand_node(rng), rng.uniform(0, 100),
                             rng.next_u64(), rand_origin(rng)});
  msgs.push_back(AgentChanged{rand_oid(rng), rand_node(rng), rng.uniform(0, 100)});
  msgs.push_back(PosQueryReq{rand_oid(rng), rng.next_u64()});
  msgs.push_back(PosQueryFwd{rand_oid(rng), rand_node(rng), rng.next_u64()});
  msgs.push_back(PosQueryRes{rand_oid(rng), rng.next_below(2) == 0, rand_ld(rng),
                             rand_node(rng), rng.next_u64(), rand_origin(rng)});
  msgs.push_back(RangeQueryReq{rand_polygon(rng), rng.uniform(0, 100),
                               rng.uniform(0, 1), rng.next_u64()});
  msgs.push_back(RangeQueryFwd{rand_polygon(rng), rng.uniform(0, 100),
                               rng.uniform(0, 1), rand_node(rng), rng.next_u64(),
                               rng.next_below(2) == 0});
  msgs.push_back(RangeQuerySubRes{rng.next_u64(), rng.uniform(0, 1e6),
                                  rand_results(rng), rand_origin(rng)});
  msgs.push_back(
      RangeQueryRes{rng.next_u64(), rng.next_below(2) == 0, rand_results(rng)});
  msgs.push_back(NNQueryReq{rand_point(rng), rng.uniform(0, 100),
                            rng.uniform(0, 100), rng.next_u64()});
  msgs.push_back(NNProbeFwd{rand_point(rng), rng.uniform(0, 5000),
                            rng.uniform(0, 100), rand_node(rng), rng.next_u64()});
  msgs.push_back(NNProbeSubRes{rng.next_u64(), rng.uniform(0, 1e6),
                               rand_results(rng), rand_origin(rng)});
  msgs.push_back(NNQueryRes{rng.next_u64(), rng.next_below(2) == 0,
                            {rand_oid(rng), rand_ld(rng)}, rand_results(rng)});
  msgs.push_back(ChangeAccReq{rand_oid(rng), rand_acc_range(rng), rng.next_u64()});
  msgs.push_back(
      ChangeAccRes{rng.next_u64(), rng.next_below(2) == 0, rng.uniform(0, 100)});
  msgs.push_back(NotifyAvailAcc{rand_oid(rng), rng.uniform(0, 100)});
  msgs.push_back(DeregisterReq{rand_oid(rng)});
  msgs.push_back(RefreshReq{rand_oid(rng)});
  msgs.push_back(EventSubscribe{rng.next_u64(),
                                rng.next_below(2) == 0 ? PredicateKind::kAreaCount
                                                       : PredicateKind::kProximity,
                                rand_polygon(rng),
                                static_cast<std::uint32_t>(rng.next_below(100)),
                                rand_oid(rng), rand_oid(rng), rng.uniform(0, 500),
                                rand_node(rng)});
  msgs.push_back(EventInstall{rng.next_u64(),
                              rng.next_below(2) == 0 ? PredicateKind::kAreaCount
                                                     : PredicateKind::kProximity,
                              rand_polygon(rng), rand_oid(rng), rand_oid(rng),
                              rng.uniform(0, 500), rand_node(rng)});
  msgs.push_back(EventDelta{rng.next_u64(), rand_oid(rng), rng.next_below(2) == 0,
                            rand_point(rng)});
  msgs.push_back(EventNotify{rng.next_u64(), rng.next_below(2) == 0,
                             static_cast<std::uint32_t>(rng.next_below(1000))});
  msgs.push_back(EventUnsubscribe{rng.next_u64()});
  msgs.push_back(rand_batch(rng));
  msgs.push_back(rand_batch_ack(rng));
  msgs.push_back(Heartbeat{rng.next_u64()});
  msgs.push_back(HeartbeatAck{rng.next_u64()});
  msgs.push_back(RecoveryHello{rng.next_u64()});
  msgs.push_back(rand_refresh_batch(rng));
  msgs.push_back(rand_path_batch(rng));
  msgs.push_back(rand_load_stats(rng));
  msgs.push_back(rand_bucket_migrate(rng));
  msgs.push_back(rand_replica_tee(rng));
  msgs.push_back(StandbyPromote{rand_node(rng), rng.next_u64()});
  msgs.push_back(StandbyDemote{rand_node(rng), rng.next_u64()});
  return msgs;
}

constexpr std::size_t kVariantCount = std::variant_size_v<Message>;

// --- round-trip stability ----------------------------------------------------

TEST(CodecProperty, EncodeDecodeReencodeIsByteStableForEveryType) {
  Rng rng(2024);
  for (int iter = 0; iter < 64; ++iter) {
    const NodeId src = rand_node(rng);
    std::vector<bool> covered(kVariantCount, false);
    for (const Message& m : random_messages(rng)) {
      covered[m.index()] = true;
      const Buffer wire = encode_envelope(src, m);
      const auto decoded = decode_envelope(wire);
      ASSERT_TRUE(decoded.ok()) << msg_type_name(message_type(m));
      EXPECT_EQ(decoded.value().src, src);
      EXPECT_EQ(message_type(decoded.value().msg), message_type(m));
      const Buffer again = encode_envelope(src, decoded.value().msg);
      EXPECT_EQ(wire, again) << "re-encode diverged for "
                             << msg_type_name(message_type(m));
    }
    // The generator must keep covering every variant alternative.
    for (std::size_t i = 0; i < kVariantCount; ++i) {
      ASSERT_TRUE(covered[i]) << "no generator for variant index " << i;
    }
  }
}

TEST(CodecProperty, PeekObjectKeyAgreesWithFullDecode) {
  Rng rng(515);
  for (int iter = 0; iter < 64; ++iter) {
    for (const Message& m : random_messages(rng)) {
      const Buffer wire = encode_envelope(NodeId{9}, m);
      const std::optional<ObjectId> peeked = peek_object_key(wire.data(), wire.size());
      // Recover the expected key from the decoded message, if it is one of
      // the object-keyed types.
      std::optional<ObjectId> expected;
      std::visit(
          [&](const auto& msg) {
            using T = std::decay_t<decltype(msg)>;
            if constexpr (std::is_same_v<T, RegisterReq> ||
                          std::is_same_v<T, UpdateReq> ||
                          std::is_same_v<T, HandoverReq>) {
              expected = msg.s.oid;
            } else if constexpr (std::is_same_v<T, CreatePath> ||
                                 std::is_same_v<T, RemovePath> ||
                                 std::is_same_v<T, UpdateAck> ||
                                 std::is_same_v<T, HandoverRes> ||
                                 std::is_same_v<T, AgentChanged> ||
                                 std::is_same_v<T, PosQueryReq> ||
                                 std::is_same_v<T, PosQueryFwd> ||
                                 std::is_same_v<T, PosQueryRes> ||
                                 std::is_same_v<T, ChangeAccReq> ||
                                 std::is_same_v<T, NotifyAvailAcc> ||
                                 std::is_same_v<T, DeregisterReq> ||
                                 std::is_same_v<T, RefreshReq>) {
              expected = msg.oid;
            }
          },
          m);
      EXPECT_EQ(peeked, expected) << msg_type_name(message_type(m));
    }
  }
}

// --- truncation --------------------------------------------------------------

TEST(CodecProperty, TruncatingTheLastByteStickyFailsEveryType) {
  Rng rng(99);
  for (int iter = 0; iter < 16; ++iter) {
    for (const Message& m : random_messages(rng)) {
      const Buffer wire = encode_envelope(NodeId{3}, m);
      ASSERT_GT(wire.size(), 1u);
      const auto res = decode_envelope(wire.data(), wire.size() - 1);
      EXPECT_FALSE(res.ok()) << msg_type_name(message_type(m))
                             << " decoded despite a truncated final field";
    }
  }
}

TEST(CodecProperty, EveryPrefixDecodesWithoutCrashing) {
  Rng rng(7);
  for (const Message& m : random_messages(rng)) {
    const Buffer wire = encode_envelope(NodeId{3}, m);
    for (std::size_t len = 0; len <= wire.size(); ++len) {
      const auto res = decode_envelope(wire.data(), len);
      if (res.ok() && len < wire.size()) {
        // A shorter parse may be legal only if it still re-encodes cleanly.
        encode_envelope(NodeId{3}, res.value().msg);
      }
    }
  }
}

// --- corruption --------------------------------------------------------------

TEST(CodecProperty, BitFlipsNeverCrashTheDecoder) {
  Rng rng(31337);
  for (int iter = 0; iter < 24; ++iter) {
    for (const Message& m : random_messages(rng)) {
      Buffer wire = encode_envelope(NodeId{5}, m);
      for (int flip = 0; flip < 24; ++flip) {
        const std::size_t byte = rng.next_below(wire.size());
        const std::uint8_t mask = static_cast<std::uint8_t>(1u << rng.next_below(8));
        wire[byte] ^= mask;
        const auto res = decode_envelope(wire);
        if (res.ok()) {
          // Corruption that still parses must produce a sane, re-encodable
          // message -- never UB or unbounded allocation.
          encode_envelope(NodeId{5}, res.value().msg);
        }
        wire[byte] ^= mask;  // restore for the next flip
      }
    }
  }
}

TEST(CodecProperty, RandomGarbageNeverCrashesTheDecoder) {
  Rng rng(4242);
  Envelope scratch;  // also exercises the capacity-reusing decode path
  for (int iter = 0; iter < 4000; ++iter) {
    Buffer junk(rng.next_below(160));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_below(256));
    if (!junk.empty() && rng.next_below(2) == 0) {
      junk[0] = 1;  // valid version byte: reach the per-type decoders
      if (junk.size() > 1) {
        junk[1] = static_cast<std::uint8_t>(1 + rng.next_below(kVariantCount + 2));
      }
    }
    (void)decode_envelope_into(scratch, junk.data(), junk.size());
    (void)peek_object_key(junk.data(), junk.size());
  }
}

// --- batched updates (framing invariants of wire/messages.hpp) ---------------

TEST(CodecProperty, BatchCursorRoundTripsEverySighting) {
  Rng rng(88);
  for (int iter = 0; iter < 64; ++iter) {
    std::vector<core::Sighting> in(rng.next_below(12));
    BatchedUpdateReq batch;
    for (auto& s : in) {
      s = rand_sighting(rng);
      batch.append(s);
    }
    EXPECT_EQ(batch.count, in.size());
    const Buffer wire = encode_envelope(NodeId{4}, batch);
    const auto decoded = decode_envelope(wire);
    ASSERT_TRUE(decoded.ok());
    const auto& out = std::get<BatchedUpdateReq>(decoded.value().msg);
    EXPECT_EQ(out.count, in.size());
    BatchedUpdateReq::Cursor cur = out.sightings();
    core::Sighting s;
    std::size_t i = 0;
    while (cur.next(s)) {
      ASSERT_LT(i, in.size());
      EXPECT_EQ(s.oid, in[i].oid);
      EXPECT_EQ(s.t, in[i].t);
      EXPECT_EQ(s.pos, in[i].pos);
      EXPECT_EQ(s.acc_sens, in[i].acc_sens);
      ++i;
    }
    EXPECT_EQ(i, in.size());
  }
}

TEST(CodecProperty, BatchViewAgreesWithCursorAndReencodesItems) {
  Rng rng(89);
  for (int iter = 0; iter < 64; ++iter) {
    BatchedUpdateReq batch = rand_batch(rng);
    const Buffer wire = encode_envelope(NodeId{6}, batch);
    BatchedUpdateView view(wire.data(), wire.size());
    ASSERT_TRUE(view.valid());
    EXPECT_EQ(view.count(), batch.count);
    BatchedUpdateReq::Cursor cur = batch.sightings();
    core::Sighting s;
    Buffer reassembled;
    std::size_t items = 0;
    while (const auto item = view.next()) {
      ASSERT_TRUE(cur.next(s));
      EXPECT_EQ(item->oid, s.oid);  // the routing peek sees the same key
      reassembled.insert(reassembled.end(), item->data, item->data + item->len);
      ++items;
    }
    EXPECT_FALSE(cur.next(s));
    EXPECT_EQ(items, batch.count);
    // The concatenated item ranges ARE the packed region (shard splitting
    // re-frames batches by memcpy of these ranges).
    EXPECT_EQ(reassembled, batch.packed);
  }
  // Non-batch datagrams are rejected.
  const Buffer other = encode_envelope(NodeId{6}, UpdateReq{{}});
  EXPECT_FALSE(BatchedUpdateView(other.data(), other.size()).valid());
  EXPECT_FALSE(BatchedUpdateView(nullptr, 0).valid());
}

TEST(CodecProperty, TruncatedBatchTailStopsIterationWithoutCrashing) {
  Rng rng(90);
  BatchedUpdateReq batch;
  for (int i = 0; i < 4; ++i) batch.append(rand_sighting(rng));
  // Cut the packed region mid-sighting: the ENVELOPE must sticky-fail (the
  // packed_len prefix no longer fits the datagram) ...
  const Buffer wire = encode_envelope(NodeId{3}, batch);
  for (std::size_t cut = 1; cut < 30; ++cut) {
    EXPECT_FALSE(decode_envelope(wire.data(), wire.size() - cut).ok());
  }
  // ... and a batch whose OWNED packed region is malformed (bit rot, buggy
  // sender) stops lazy iteration at the damage instead of overrunning.
  BatchedUpdateReq damaged = batch;
  damaged.packed.resize(damaged.packed.size() - 7);
  BatchedUpdateReq::Cursor cur = damaged.sightings();
  core::Sighting s;
  std::size_t complete = 0;
  while (cur.next(s)) ++complete;
  EXPECT_EQ(complete, 3u);
  // Same for the routing view over a re-encoded damaged batch.
  const Buffer damaged_wire = encode_envelope(NodeId{3}, damaged);
  BatchedUpdateView view(damaged_wire.data(), damaged_wire.size());
  ASSERT_TRUE(view.valid());
  std::size_t viewed = 0;
  while (view.next()) ++viewed;
  EXPECT_EQ(viewed, 3u);
}

TEST(CodecProperty, BatchBitFlipsNeverCrashCursorOrView) {
  Rng rng(91);
  for (int iter = 0; iter < 200; ++iter) {
    BatchedUpdateReq batch;
    const std::size_t n = 1 + rng.next_below(6);
    for (std::size_t i = 0; i < n; ++i) batch.append(rand_sighting(rng));
    Buffer wire = encode_envelope(NodeId{8}, batch);
    const std::size_t byte = rng.next_below(wire.size());
    wire[byte] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    // The view never crashes, whatever the flip hit.
    BatchedUpdateView view(wire.data(), wire.size());
    while (view.next()) {
    }
    // If the envelope still decodes, lazy iteration must stay in bounds.
    const auto decoded = decode_envelope(wire);
    if (decoded.ok()) {
      if (const auto* m = std::get_if<BatchedUpdateReq>(&decoded.value().msg)) {
        BatchedUpdateReq::Cursor cur = m->sightings();
        core::Sighting s;
        while (cur.next(s)) {
        }
        encode_envelope(NodeId{8}, *m);  // and re-encode cleanly
      }
    }
  }
}

// --- batched refresh sweeps (fault-tolerance framing invariants) -------------

TEST(CodecProperty, RefreshBatchCursorRoundTripsEveryOid) {
  Rng rng(92);
  for (int iter = 0; iter < 64; ++iter) {
    std::vector<ObjectId> in(rng.next_below(16));
    BatchedRefreshReq batch;
    for (auto& oid : in) {
      oid = rand_oid(rng);
      batch.append(oid);
    }
    EXPECT_EQ(batch.count, in.size());
    const Buffer wire = encode_envelope(NodeId{4}, batch);
    const auto decoded = decode_envelope(wire);
    ASSERT_TRUE(decoded.ok());
    const auto& out = std::get<BatchedRefreshReq>(decoded.value().msg);
    EXPECT_EQ(out.count, in.size());
    BatchedRefreshReq::Cursor cur = out.oids();
    ObjectId oid;
    std::size_t i = 0;
    while (cur.next(oid)) {
      ASSERT_LT(i, in.size());
      EXPECT_EQ(oid, in[i]);
      ++i;
    }
    EXPECT_EQ(i, in.size());
  }
}

TEST(CodecProperty, RefreshViewAgreesWithCursorAndRejectsOtherTypes) {
  Rng rng(93);
  for (int iter = 0; iter < 64; ++iter) {
    BatchedRefreshReq batch = rand_refresh_batch(rng);
    const Buffer wire = encode_envelope(NodeId{6}, batch);
    BatchedRefreshView view(wire.data(), wire.size());
    ASSERT_TRUE(view.valid());
    EXPECT_EQ(view.count(), batch.count);
    BatchedRefreshReq::Cursor cur = batch.oids();
    ObjectId oid;
    Buffer reassembled;
    std::size_t items = 0;
    while (const auto item = view.next()) {
      ASSERT_TRUE(cur.next(oid));
      EXPECT_EQ(item->oid, oid);  // the routing peek sees the same key
      reassembled.insert(reassembled.end(), item->data, item->data + item->len);
      ++items;
    }
    EXPECT_FALSE(cur.next(oid));
    EXPECT_EQ(items, batch.count);
    // The concatenated item ranges ARE the packed region (shard splitting
    // re-frames recovery sweeps by memcpy of these ranges).
    EXPECT_EQ(reassembled, batch.packed);
  }
  // Non-refresh datagrams are rejected (incl. the other batch type).
  const Buffer update = encode_envelope(NodeId{6}, UpdateReq{{}});
  EXPECT_FALSE(BatchedRefreshView(update.data(), update.size()).valid());
  const Buffer batch_upd = encode_envelope(NodeId{6}, BatchedUpdateReq{});
  EXPECT_FALSE(BatchedRefreshView(batch_upd.data(), batch_upd.size()).valid());
  EXPECT_FALSE(BatchedRefreshView(nullptr, 0).valid());
}

TEST(CodecProperty, TruncatedRefreshBatchStickyFailsAndStopsIteration) {
  Rng rng(94);
  BatchedRefreshReq batch;
  for (int i = 0; i < 6; ++i) batch.append(ObjectId{(1ULL << 40) + rng.next_u64() % 1000});
  // Cutting the datagram breaks the packed_len prefix: envelope sticky-fails.
  const Buffer wire = encode_envelope(NodeId{3}, batch);
  for (std::size_t cut = 1; cut < wire.size() - 6; ++cut) {
    EXPECT_FALSE(decode_envelope(wire.data(), wire.size() - cut).ok());
  }
  // A batch whose OWNED packed region is damaged mid-varint stops lazy
  // iteration at the damage instead of overrunning.
  BatchedRefreshReq damaged = batch;
  damaged.packed.resize(damaged.packed.size() - 2);
  BatchedRefreshReq::Cursor cur = damaged.oids();
  ObjectId oid;
  std::size_t complete = 0;
  while (cur.next(oid)) ++complete;
  EXPECT_EQ(complete, 5u);
}

TEST(CodecProperty, RefreshBatchBitFlipsNeverCrashCursorOrView) {
  Rng rng(95);
  for (int iter = 0; iter < 200; ++iter) {
    BatchedRefreshReq batch;
    const std::size_t n = 1 + rng.next_below(8);
    for (std::size_t i = 0; i < n; ++i) batch.append(rand_oid(rng));
    Buffer wire = encode_envelope(NodeId{8}, batch);
    const std::size_t byte = rng.next_below(wire.size());
    wire[byte] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    // The view never crashes, whatever the flip hit.
    BatchedRefreshView view(wire.data(), wire.size());
    while (view.next()) {
    }
    // If the envelope still decodes, lazy iteration must stay in bounds.
    const auto decoded = decode_envelope(wire);
    if (decoded.ok()) {
      if (const auto* m = std::get_if<BatchedRefreshReq>(&decoded.value().msg)) {
        BatchedRefreshReq::Cursor cur = m->oids();
        ObjectId oid;
        while (cur.next(oid)) {
        }
        encode_envelope(NodeId{8}, *m);  // and re-encode cleanly
      }
    }
  }
}

// --- shard load stats + bucket migration (skew-rebalancing framing) ----------

TEST(CodecProperty, ShardLoadStatsCursorRoundTripsEveryEntry) {
  Rng rng(96);
  for (int iter = 0; iter < 64; ++iter) {
    std::vector<ShardLoadStats::Entry> in(rng.next_below(8));
    ShardLoadStats stats;
    stats.seq = rng.next_u64();
    for (auto& e : in) {
      e = {static_cast<std::uint32_t>(rng.next_below(64)), rng.next_u64() >> 8,
           rng.next_u64() >> 8, rng.next_u64() >> 8, rng.next_below(100000)};
      stats.append(e);
    }
    EXPECT_EQ(stats.count, in.size());
    const Buffer wire = encode_envelope(NodeId{4}, stats);
    const auto decoded = decode_envelope(wire);
    ASSERT_TRUE(decoded.ok());
    const auto& out = std::get<ShardLoadStats>(decoded.value().msg);
    EXPECT_EQ(out.seq, stats.seq);
    EXPECT_EQ(out.count, in.size());
    ShardLoadStats::Cursor cur = out.entries();
    ShardLoadStats::Entry e;
    std::size_t i = 0;
    while (cur.next(e)) {
      ASSERT_LT(i, in.size());
      EXPECT_EQ(e.shard, in[i].shard);
      EXPECT_EQ(e.sightings, in[i].sightings);
      EXPECT_EQ(e.visitors, in[i].visitors);
      EXPECT_EQ(e.msgs_handled, in[i].msgs_handled);
      EXPECT_EQ(e.inbox_depth, in[i].inbox_depth);
      ++i;
    }
    EXPECT_EQ(i, in.size());
  }
}

TEST(CodecProperty, BucketMigrateCursorRoundTripsEveryEntry) {
  Rng rng(97);
  for (int iter = 0; iter < 64; ++iter) {
    std::vector<BucketMigrate::Entry> in(rng.next_below(6));
    BucketMigrate mig;
    mig.bucket = static_cast<std::uint32_t>(rng.next_below(256));
    for (auto& e : in) {
      e = {rand_sighting(rng), rng.uniform(0, 500),
           static_cast<TimePoint>(rng.next_u64() >> 20), rand_reg_info(rng)};
      mig.append(e);
    }
    EXPECT_EQ(mig.count, in.size());
    const Buffer wire = encode_envelope(NodeId{4}, mig);
    const auto decoded = decode_envelope(wire);
    ASSERT_TRUE(decoded.ok());
    const auto& out = std::get<BucketMigrate>(decoded.value().msg);
    EXPECT_EQ(out.bucket, mig.bucket);
    EXPECT_EQ(out.count, in.size());
    BucketMigrate::Cursor cur = out.entries();
    BucketMigrate::Entry e;
    std::size_t i = 0;
    while (cur.next(e)) {
      ASSERT_LT(i, in.size());
      EXPECT_EQ(e.s.oid, in[i].s.oid);
      EXPECT_EQ(e.s.t, in[i].s.t);
      EXPECT_EQ(e.s.pos, in[i].s.pos);
      EXPECT_EQ(e.s.acc_sens, in[i].s.acc_sens);
      EXPECT_EQ(e.offered_acc, in[i].offered_acc);
      EXPECT_EQ(e.expiry, in[i].expiry);
      EXPECT_EQ(e.reg, in[i].reg);
      ++i;
    }
    EXPECT_EQ(i, in.size());
  }
}

TEST(CodecProperty, TruncatedMigrateStickyFailsAndStopsIteration) {
  Rng rng(98);
  BucketMigrate mig;
  mig.bucket = 17;
  for (int i = 0; i < 4; ++i) {
    mig.append({rand_sighting(rng), rng.uniform(0, 500),
                static_cast<TimePoint>(rng.next_u64() >> 20), rand_reg_info(rng)});
  }
  // Cutting the datagram breaks the packed_len prefix: envelope sticky-fails.
  const Buffer wire = encode_envelope(NodeId{3}, mig);
  for (std::size_t cut = 1; cut < 40; ++cut) {
    EXPECT_FALSE(decode_envelope(wire.data(), wire.size() - cut).ok());
  }
  // A migration whose OWNED packed region is damaged mid-entry stops lazy
  // iteration at the damage instead of overrunning.
  BucketMigrate damaged = mig;
  damaged.packed.resize(damaged.packed.size() - 5);
  BucketMigrate::Cursor cur = damaged.entries();
  BucketMigrate::Entry e;
  std::size_t complete = 0;
  while (cur.next(e)) ++complete;
  EXPECT_EQ(complete, 3u);
}

TEST(CodecProperty, MigrateAndLoadStatsBitFlipsNeverCrashTheCursors) {
  Rng rng(100);
  for (int iter = 0; iter < 200; ++iter) {
    Buffer wire;
    if (iter % 2 == 0) {
      BucketMigrate mig = rand_bucket_migrate(rng);
      mig.append({rand_sighting(rng), 1.0, 2, rand_reg_info(rng)});
      wire = encode_envelope(NodeId{8}, mig);
    } else {
      ShardLoadStats stats = rand_load_stats(rng);
      stats.append({1, 2, 3, 4, 5});
      wire = encode_envelope(NodeId{8}, stats);
    }
    const std::size_t byte = rng.next_below(wire.size());
    wire[byte] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    // If the envelope still decodes, lazy iteration must stay in bounds and
    // the result must re-encode cleanly.
    const auto decoded = decode_envelope(wire);
    if (!decoded.ok()) continue;
    if (const auto* m = std::get_if<BucketMigrate>(&decoded.value().msg)) {
      BucketMigrate::Cursor cur = m->entries();
      BucketMigrate::Entry e;
      while (cur.next(e)) {
      }
      encode_envelope(NodeId{8}, *m);
    } else if (const auto* s = std::get_if<ShardLoadStats>(&decoded.value().msg)) {
      ShardLoadStats::Cursor cur = s->entries();
      ShardLoadStats::Entry e;
      while (cur.next(e)) {
      }
      encode_envelope(NodeId{8}, *s);
    }
  }
}

// --- replica tee (hot-standby replication framing) ---------------------------

TEST(CodecProperty, ReplicaTeeCursorRoundTripsEveryEntry) {
  Rng rng(101);
  for (int iter = 0; iter < 64; ++iter) {
    std::vector<ReplicaTee::Entry> in(rng.next_below(6));
    ReplicaTee tee;
    for (auto& e : in) {
      e = {static_cast<ReplicaTee::Op>(rng.next_below(3)), rand_sighting(rng),
           rng.uniform(0, 500), static_cast<TimePoint>(rng.next_u64() >> 20),
           rand_reg_info(rng)};
      tee.append(e);
    }
    EXPECT_EQ(tee.count, in.size());
    const Buffer wire = encode_envelope(NodeId{4}, tee);
    const auto decoded = decode_envelope(wire);
    ASSERT_TRUE(decoded.ok());
    const auto& out = std::get<ReplicaTee>(decoded.value().msg);
    EXPECT_EQ(out.count, in.size());
    ReplicaTee::Cursor cur = out.entries();
    ReplicaTee::Entry e;
    std::size_t i = 0;
    while (cur.next(e)) {
      ASSERT_LT(i, in.size());
      EXPECT_EQ(e.op, in[i].op);
      EXPECT_EQ(e.s.oid, in[i].s.oid);
      EXPECT_EQ(e.s.t, in[i].s.t);
      EXPECT_EQ(e.s.pos, in[i].s.pos);
      EXPECT_EQ(e.s.acc_sens, in[i].s.acc_sens);
      EXPECT_EQ(e.offered_acc, in[i].offered_acc);
      EXPECT_EQ(e.expiry, in[i].expiry);
      EXPECT_EQ(e.reg, in[i].reg);
      ++i;
    }
    EXPECT_EQ(i, in.size());
  }
}

TEST(CodecProperty, ReplicaTeeViewAgreesWithCursorAndReencodesItems) {
  Rng rng(102);
  for (int iter = 0; iter < 64; ++iter) {
    ReplicaTee tee = rand_replica_tee(rng);
    const Buffer wire = encode_envelope(NodeId{6}, tee);
    ReplicaTeeView view(wire.data(), wire.size());
    ASSERT_TRUE(view.valid());
    EXPECT_EQ(view.count(), tee.count);
    ReplicaTee::Cursor cur = tee.entries();
    ReplicaTee::Entry e;
    Buffer reassembled;
    std::size_t items = 0;
    while (const auto item = view.next()) {
      ASSERT_TRUE(cur.next(e));
      EXPECT_EQ(item->oid, e.s.oid);  // the routing peek sees the same key
      reassembled.insert(reassembled.end(), item->data, item->data + item->len);
      ++items;
    }
    EXPECT_FALSE(cur.next(e));
    EXPECT_EQ(items, tee.count);
    // The concatenated item ranges ARE the packed region (shard splitting
    // re-frames tees by memcpy of these ranges).
    EXPECT_EQ(reassembled, tee.packed);
  }
  // Non-tee datagrams are rejected (incl. the look-alike batch framings).
  const Buffer update = encode_envelope(NodeId{6}, UpdateReq{{}});
  EXPECT_FALSE(ReplicaTeeView(update.data(), update.size()).valid());
  const Buffer batch = encode_envelope(NodeId{6}, BatchedUpdateReq{});
  EXPECT_FALSE(ReplicaTeeView(batch.data(), batch.size()).valid());
  EXPECT_FALSE(ReplicaTeeView(nullptr, 0).valid());
}

TEST(CodecProperty, TruncatedReplicaTeeStickyFailsAndStopsIteration) {
  Rng rng(103);
  ReplicaTee tee;
  for (int i = 0; i < 4; ++i) {
    tee.append({ReplicaTee::Op::kUpsert, rand_sighting(rng), rng.uniform(0, 500),
                static_cast<TimePoint>(rng.next_u64() >> 20), rand_reg_info(rng)});
  }
  // Cutting the datagram breaks the packed_len prefix: envelope sticky-fails.
  const Buffer wire = encode_envelope(NodeId{3}, tee);
  for (std::size_t cut = 1; cut < 40; ++cut) {
    EXPECT_FALSE(decode_envelope(wire.data(), wire.size() - cut).ok());
  }
  // A tee whose OWNED packed region is damaged mid-entry stops lazy iteration
  // at the damage instead of overrunning.
  ReplicaTee damaged = tee;
  damaged.packed.resize(damaged.packed.size() - 5);
  ReplicaTee::Cursor cur = damaged.entries();
  ReplicaTee::Entry e;
  std::size_t complete = 0;
  while (cur.next(e)) ++complete;
  EXPECT_EQ(complete, 3u);
  // An out-of-range op byte stops both the cursor and the view.
  ReplicaTee bad_op = tee;
  bad_op.packed[0] = 0x7F;
  ReplicaTee::Cursor bad_cur = bad_op.entries();
  EXPECT_FALSE(bad_cur.next(e));
  const Buffer bad_wire = encode_envelope(NodeId{3}, bad_op);
  ReplicaTeeView bad_view(bad_wire.data(), bad_wire.size());
  ASSERT_TRUE(bad_view.valid());
  EXPECT_FALSE(bad_view.next().has_value());
}

TEST(CodecProperty, ReplicaTeeBitFlipsNeverCrashCursorOrView) {
  Rng rng(104);
  for (int iter = 0; iter < 200; ++iter) {
    ReplicaTee tee = rand_replica_tee(rng);
    tee.append({ReplicaTee::Op::kRemove, rand_sighting(rng), 1.0, 2,
                rand_reg_info(rng)});
    Buffer wire = encode_envelope(NodeId{8}, tee);
    const std::size_t byte = rng.next_below(wire.size());
    wire[byte] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    // The view never crashes, whatever the flip hit.
    ReplicaTeeView view(wire.data(), wire.size());
    while (view.next()) {
    }
    // If the envelope still decodes, lazy iteration must stay in bounds.
    const auto decoded = decode_envelope(wire);
    if (decoded.ok()) {
      if (const auto* m = std::get_if<ReplicaTee>(&decoded.value().msg)) {
        ReplicaTee::Cursor cur = m->entries();
        ReplicaTee::Entry e;
        while (cur.next(e)) {
        }
        encode_envelope(NodeId{8}, *m);  // and re-encode cleanly
      }
    }
  }
}

// --- hardened varints (extends PR 1's boundary tests) ------------------------

TEST(CodecProperty, VarintBoundaryValuesRoundTrip) {
  Rng rng(1);
  std::vector<std::uint64_t> values = {0,
                                       1,
                                       127,
                                       128,
                                       16383,
                                       16384,
                                       (1ULL << 32) - 1,
                                       1ULL << 32,
                                       (1ULL << 63) - 1,
                                       1ULL << 63,
                                       UINT64_MAX};
  for (int i = 0; i < 2000; ++i) {
    values.push_back(rng.next_u64() >> rng.next_below(64));
  }
  for (const std::uint64_t v : values) {
    Buffer buf;
    {
      Writer w(buf);
      w.u64(v);
    }
    Reader r(buf);
    EXPECT_EQ(r.u64(), v);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.remaining(), 0u);
  }
}

TEST(CodecProperty, OverlongAndOverflowingVarintsStickyFail) {
  {
    // 11 continuation bytes: longer than any valid u64 encoding.
    Buffer buf(11, 0x80);
    buf.push_back(0x00);
    Reader r(buf);
    r.u64();
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.u64(), 0u);  // sticky: further reads keep failing
  }
  {
    // 10th byte contributes bits beyond 2^64.
    Buffer buf(9, 0x80);
    buf.push_back(0x02);
    Reader r(buf);
    r.u64();
    EXPECT_FALSE(r.ok());
  }
  {
    // 10th byte == 0x01 is exactly 2^63 in the top position: legal.
    Buffer buf(9, 0x80);
    buf.push_back(0x01);
    Reader r(buf);
    const std::uint64_t v = r.u64();
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(v, 1ULL << 63);
  }
}

// --- packed query results (read-path framings) -------------------------------

namespace {

RangeQuerySubRes rand_range_sub(Rng& rng) {
  return RangeQuerySubRes{rng.next_u64(), rng.uniform(0, 1e6), rand_results(rng),
                          rand_origin(rng)};
}

NNProbeSubRes rand_nn_sub(Rng& rng) {
  return NNProbeSubRes{rng.next_u64(), rng.uniform(0, 1e6), rand_results(rng),
                       rand_origin(rng)};
}

void write_result_v1(Writer& w, const core::ObjectResult& r) {
  w.u64(r.oid.value);
  w.f64(r.ld.pos.x);
  w.f64(r.ld.pos.y);
  w.f64(r.ld.acc);
}

/// Hand-encodes the legacy (version-1) vector framing of a result list.
void write_results_v1(Writer& w, const std::vector<core::ObjectResult>& v) {
  w.u64(v.size());
  for (const auto& r : v) write_result_v1(w, r);
}

void write_origin(Writer& w, const std::optional<OriginArea>& origin) {
  w.boolean(origin.has_value());
  if (origin) {
    w.u64(origin->leaf.value);
    w.u64(origin->area.size());
    for (const geo::Point& p : origin->area.vertices()) {
      w.f64(p.x);
      w.f64(p.y);
    }
  }
}

}  // namespace

TEST(CodecProperty, SubResViewAgreesWithOwnedDecode) {
  Rng rng(4242);
  for (int iter = 0; iter < 128; ++iter) {
    const bool nn = rng.next_below(2) == 0;
    const Message m = nn ? Message(rand_nn_sub(rng)) : Message(rand_range_sub(rng));
    const NodeId src = rand_node(rng);
    const Buffer wire = encode_envelope(src, m);

    SubResView view(wire.data(), wire.size());
    ASSERT_TRUE(view.valid());
    EXPECT_EQ(view.src(), src);

    // Owned decode of the same bytes.
    const auto decoded = decode_envelope(wire);
    ASSERT_TRUE(decoded.ok());
    std::vector<core::ObjectResult> owned;
    std::optional<OriginArea> owned_origin;
    std::visit(
        [&](const auto& msg) {
          using T = std::decay_t<decltype(msg)>;
          if constexpr (std::is_same_v<T, RangeQuerySubRes>) {
            EXPECT_EQ(view.type(), MsgType::kRangeQuerySubRes);
            EXPECT_EQ(view.req_id(), msg.req_id);
            EXPECT_EQ(view.covered_size(), msg.covered_size);
            EXPECT_EQ(view.count(), msg.results.count);
            owned = msg.results.to_vector();
            owned_origin = msg.origin;
          } else if constexpr (std::is_same_v<T, NNProbeSubRes>) {
            EXPECT_EQ(view.type(), MsgType::kNNProbeSubRes);
            EXPECT_EQ(view.req_id(), msg.req_id);
            EXPECT_EQ(view.covered_size(), msg.covered_size);
            EXPECT_EQ(view.count(), msg.candidates.count);
            owned = msg.candidates.to_vector();
            owned_origin = msg.origin;
          } else {
            FAIL() << "unexpected decode alternative";
          }
        },
        decoded.value().msg);

    // Item iteration agrees with the owned decode, and the raw byte ranges
    // re-concatenate to exactly the packed region (the merge loops copy
    // these ranges verbatim).
    ResultCursor cur = view.items();
    Buffer reassembled;
    std::size_t i = 0;
    while (const auto item = cur.next()) {
      ASSERT_LT(i, owned.size());
      EXPECT_EQ(item->res, owned[i]);
      reassembled.insert(reassembled.end(), item->data, item->data + item->len);
      ++i;
    }
    EXPECT_EQ(i, owned.size());
    EXPECT_EQ(reassembled,
              Buffer(view.packed_data(), view.packed_data() + view.packed_size()));

    std::optional<OriginArea> view_origin;
    view.origin(view_origin);
    EXPECT_EQ(view_origin.has_value(), owned_origin.has_value());
    if (view_origin && owned_origin) {
      EXPECT_EQ(view_origin->leaf, owned_origin->leaf);
      EXPECT_EQ(view_origin->area.vertices(), owned_origin->area.vertices());
    }
  }
}

TEST(CodecProperty, LegacyV1ResultFramingsStillDecode) {
  Rng rng(777);
  for (int iter = 0; iter < 64; ++iter) {
    const std::uint64_t req_id = rng.next_u64();
    const double covered = rng.uniform(0, 1e6);
    PackedResults results = rand_results(rng);
    const std::vector<core::ObjectResult> owned = results.to_vector();
    const std::optional<OriginArea> origin = rand_origin(rng);

    // Hand-encode the PRE-REFACTOR (version 1, length-prefixed vector)
    // RangeQuerySubRes layout...
    Buffer v1;
    {
      Writer w(v1);
      w.u8(kWireVersion);
      w.u8(static_cast<std::uint8_t>(MsgType::kRangeQuerySubRes));
      w.u32_fixed(7);
      w.u64(req_id);
      w.f64(covered);
      write_results_v1(w, owned);
      write_origin(w, origin);
    }
    // ...which must not be viewable (views are version-2 only)...
    EXPECT_FALSE(SubResView(v1.data(), v1.size()).valid());
    // ...but must still decode, into the packed representation, with the
    // packed bytes byte-identical to a natively packed message.
    const auto decoded = decode_envelope(v1);
    ASSERT_TRUE(decoded.ok());
    const auto* sub = std::get_if<RangeQuerySubRes>(&decoded.value().msg);
    ASSERT_NE(sub, nullptr);
    EXPECT_EQ(sub->req_id, req_id);
    EXPECT_EQ(sub->results, results);
    EXPECT_EQ(sub->origin.has_value(), origin.has_value());

    // Truncating the v1 results region must sticky-fail, not mis-decode.
    if (!owned.empty()) {
      Buffer origin_buf;
      {
        Writer w(origin_buf);
        write_origin(w, origin);
      }
      const std::size_t keep = v1.size() - origin_buf.size() - 3;
      EXPECT_FALSE(decode_envelope(v1.data(), keep).ok());
    }

    // Same drill for the legacy NNQueryRes near_set framing.
    Buffer nn1;
    {
      Writer w(nn1);
      w.u8(kWireVersion);
      w.u8(static_cast<std::uint8_t>(MsgType::kNNQueryRes));
      w.u32_fixed(7);
      w.u64(req_id);
      w.boolean(true);
      write_result_v1(w, owned.empty() ? core::ObjectResult{} : owned.front());
      write_results_v1(w, owned);
    }
    const auto nn_decoded = decode_envelope(nn1);
    ASSERT_TRUE(nn_decoded.ok());
    const auto* nn = std::get_if<NNQueryRes>(&nn_decoded.value().msg);
    ASSERT_NE(nn, nullptr);
    EXPECT_EQ(nn->near_set, results);
  }
}

TEST(CodecProperty, PackedResultTruncationAndBitFlipsNeverCrash) {
  Rng rng(31337);
  for (int iter = 0; iter < 32; ++iter) {
    const Buffer wire = encode_envelope(NodeId{4}, rand_range_sub(rng));
    // Truncation anywhere: the envelope decode sticky-fails via the
    // packed_len prefix, and the view either rejects or stops early.
    for (std::size_t len = 0; len < wire.size(); ++len) {
      (void)decode_envelope(wire.data(), len);
      SubResView view(wire.data(), len);
      if (view.valid()) {
        ResultCursor cur = view.items();
        while (cur.next()) {
        }
      }
    }
    // Bit flips: iterate everything that still parses; never crash.
    Buffer flipped = wire;
    for (std::size_t bit = 0; bit < flipped.size() * 8; ++bit) {
      flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      SubResView view(flipped.data(), flipped.size());
      if (view.valid()) {
        ResultCursor cur = view.items();
        std::uint64_t n = 0;
        while (cur.next()) ++n;
        EXPECT_LE(n * 25, view.packed_size() + 25);
        std::optional<OriginArea> o;
        view.origin(o);
      }
      (void)decode_envelope(flipped.data(), flipped.size());
      flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
  }
}

TEST(CodecProperty, HostileAdvisoryCountCannotPinMemory) {
  // `count` is wire-advisory and unvalidated by design (the packed region's
  // length prefix is what bounds decoding) -- so a spoofed count of 2^63
  // over an empty packed region must decode into a message whose
  // to_vector() does NOT try to reserve 2^63 entries.
  Buffer hostile;
  {
    Writer w(hostile);
    w.u8(kWireVersionPacked);
    w.u8(static_cast<std::uint8_t>(MsgType::kRangeQueryRes));
    w.u32_fixed(7);
    w.u64(1);           // req_id
    w.boolean(true);    // complete
    w.u64(1ULL << 63);  // hostile advisory count
    w.u64(0);           // packed_len: nothing actually present
  }
  const auto decoded = decode_envelope(hostile);
  ASSERT_TRUE(decoded.ok());
  const auto* res = std::get_if<RangeQueryRes>(&decoded.value().msg);
  ASSERT_NE(res, nullptr);
  EXPECT_EQ(res->results.count, 1ULL << 63);
  const std::vector<core::ObjectResult> v = res->results.to_vector();
  EXPECT_TRUE(v.empty());  // and, crucially, no length_error/bad_alloc
}

TEST(CodecProperty, DirectEmitMatchesEncodeEnvelope) {
  // The entry server's merge loop writes the final RangeQueryRes straight
  // into the outgoing buffer (core/location_server emit_range_result); this
  // pins the manual field sequence to the canonical encoder, byte for byte.
  Rng rng(2718);
  for (int iter = 0; iter < 64; ++iter) {
    RangeQueryRes res;
    res.req_id = rng.next_u64();
    res.complete = rng.next_below(2) == 0;
    res.results = rand_results(rng);
    const NodeId src = rand_node(rng);
    const Buffer canonical = encode_envelope(src, res);

    Buffer direct;
    {
      Writer w(direct);
      begin_envelope(w, src, MsgType::kRangeQueryRes);
      w.u64(res.req_id);
      w.boolean(res.complete);
      w.u64(res.results.count);
      w.u64(res.results.packed.size());
      w.bytes(res.results.packed.data(), res.results.packed.size());
    }
    EXPECT_EQ(direct, canonical);
  }
}

}  // namespace
}  // namespace locs::wire
