// Property / fuzz tests for the wire codec, covering EVERY protocol message
// type (extends PR 1's varint boundary tests):
//  * encode -> decode -> re-encode is byte-stable for random payloads,
//  * truncated datagrams sticky-fail (and never crash) -- cutting the last
//    byte always breaks the final required field,
//  * bit-flipped and purely random datagrams never crash the decoder; when
//    a flip happens to decode, the result re-encodes without crashing,
//  * the routing peek (wire::peek_object_key) agrees with the full decode,
//  * hardened varints: boundary values round-trip, overlong and overflowing
//    encodings sticky-fail.
#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "wire/messages.hpp"

namespace locs::wire {
namespace {

using locs::Rng;

// --- random payload generators ----------------------------------------------

geo::Point rand_point(Rng& rng) {
  return {rng.uniform(-1e6, 1e6), rng.uniform(-1e6, 1e6)};
}

geo::Polygon rand_polygon(Rng& rng) {
  // Convexity is irrelevant for the codec; any vertex list must survive.
  std::vector<geo::Point> pts;
  const std::size_t n = rng.next_below(8);  // including empty polygons
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) pts.push_back(rand_point(rng));
  return geo::Polygon(std::move(pts));
}

ObjectId rand_oid(Rng& rng) {
  // Mix small and huge ids so varint lengths vary.
  return ObjectId{rng.next_below(3) == 0 ? rng.next_u64() : rng.next_below(1000)};
}

NodeId rand_node(Rng& rng) {
  return NodeId{static_cast<std::uint32_t>(rng.next_u64())};
}

core::Sighting rand_sighting(Rng& rng) {
  return {rand_oid(rng), static_cast<TimePoint>(rng.next_u64() >> 20),
          rand_point(rng), rng.uniform(0, 500)};
}

core::LocationDescriptor rand_ld(Rng& rng) {
  return {rand_point(rng), rng.uniform(0, 500)};
}

core::AccuracyRange rand_acc_range(Rng& rng) {
  return {rng.uniform(0, 100), rng.uniform(0, 100)};
}

core::RegInfo rand_reg_info(Rng& rng) {
  return {rand_node(rng), rand_acc_range(rng)};
}

std::vector<core::ObjectResult> rand_results(Rng& rng) {
  std::vector<core::ObjectResult> v(rng.next_below(6));
  for (auto& r : v) r = {rand_oid(rng), rand_ld(rng)};
  return v;
}

std::optional<OriginArea> rand_origin(Rng& rng) {
  if (rng.next_below(2) == 0) return std::nullopt;
  return OriginArea{rand_node(rng), rand_polygon(rng)};
}

std::string rand_str(Rng& rng) {
  std::string s(rng.next_below(24), '\0');
  for (char& c : s) c = static_cast<char>(rng.next_below(256));
  return s;
}

BatchedUpdateReq rand_batch(Rng& rng) {
  BatchedUpdateReq b;
  const std::size_t n = rng.next_below(6);  // including empty batches
  for (std::size_t i = 0; i < n; ++i) b.append(rand_sighting(rng));
  return b;
}

BatchedUpdateAck rand_batch_ack(Rng& rng) {
  BatchedUpdateAck b;
  const std::size_t n = rng.next_below(6);
  for (std::size_t i = 0; i < n; ++i) b.append(rand_oid(rng), rng.uniform(0, 500));
  return b;
}

BatchedRefreshReq rand_refresh_batch(Rng& rng) {
  BatchedRefreshReq b;
  const std::size_t n = rng.next_below(8);  // including empty sweeps
  for (std::size_t i = 0; i < n; ++i) b.append(rand_oid(rng));
  return b;
}

/// One randomized instance of every protocol message type.
std::vector<Message> random_messages(Rng& rng) {
  std::vector<Message> msgs;
  msgs.push_back(RegisterReq{rand_sighting(rng), rand_str(rng),
                             rand_acc_range(rng), rand_node(rng), rng.next_u64()});
  msgs.push_back(RegisterRes{rand_node(rng), rng.uniform(0, 100), rng.next_u64()});
  msgs.push_back(
      RegisterFailed{rand_node(rng), rng.uniform(-1, 100), rng.next_u64()});
  msgs.push_back(CreatePath{rand_oid(rng)});
  msgs.push_back(RemovePath{rand_oid(rng)});
  msgs.push_back(UpdateReq{rand_sighting(rng)});
  msgs.push_back(UpdateAck{rand_oid(rng), rng.uniform(0, 100)});
  msgs.push_back(HandoverReq{rand_sighting(rng), rand_reg_info(rng),
                             rng.uniform(0, 100), rng.next_below(2) == 0,
                             rng.next_u64(), rand_origin(rng)});
  msgs.push_back(HandoverRes{rand_oid(rng), rand_node(rng), rng.uniform(0, 100),
                             rng.next_u64(), rand_origin(rng)});
  msgs.push_back(AgentChanged{rand_oid(rng), rand_node(rng), rng.uniform(0, 100)});
  msgs.push_back(PosQueryReq{rand_oid(rng), rng.next_u64()});
  msgs.push_back(PosQueryFwd{rand_oid(rng), rand_node(rng), rng.next_u64()});
  msgs.push_back(PosQueryRes{rand_oid(rng), rng.next_below(2) == 0, rand_ld(rng),
                             rand_node(rng), rng.next_u64(), rand_origin(rng)});
  msgs.push_back(RangeQueryReq{rand_polygon(rng), rng.uniform(0, 100),
                               rng.uniform(0, 1), rng.next_u64()});
  msgs.push_back(RangeQueryFwd{rand_polygon(rng), rng.uniform(0, 100),
                               rng.uniform(0, 1), rand_node(rng), rng.next_u64(),
                               rng.next_below(2) == 0});
  msgs.push_back(RangeQuerySubRes{rng.next_u64(), rng.uniform(0, 1e6),
                                  rand_results(rng), rand_origin(rng)});
  msgs.push_back(
      RangeQueryRes{rng.next_u64(), rng.next_below(2) == 0, rand_results(rng)});
  msgs.push_back(NNQueryReq{rand_point(rng), rng.uniform(0, 100),
                            rng.uniform(0, 100), rng.next_u64()});
  msgs.push_back(NNProbeFwd{rand_point(rng), rng.uniform(0, 5000),
                            rng.uniform(0, 100), rand_node(rng), rng.next_u64()});
  msgs.push_back(NNProbeSubRes{rng.next_u64(), rng.uniform(0, 1e6),
                               rand_results(rng), rand_origin(rng)});
  msgs.push_back(NNQueryRes{rng.next_u64(), rng.next_below(2) == 0,
                            {rand_oid(rng), rand_ld(rng)}, rand_results(rng)});
  msgs.push_back(ChangeAccReq{rand_oid(rng), rand_acc_range(rng), rng.next_u64()});
  msgs.push_back(
      ChangeAccRes{rng.next_u64(), rng.next_below(2) == 0, rng.uniform(0, 100)});
  msgs.push_back(NotifyAvailAcc{rand_oid(rng), rng.uniform(0, 100)});
  msgs.push_back(DeregisterReq{rand_oid(rng)});
  msgs.push_back(RefreshReq{rand_oid(rng)});
  msgs.push_back(EventSubscribe{rng.next_u64(),
                                rng.next_below(2) == 0 ? PredicateKind::kAreaCount
                                                       : PredicateKind::kProximity,
                                rand_polygon(rng),
                                static_cast<std::uint32_t>(rng.next_below(100)),
                                rand_oid(rng), rand_oid(rng), rng.uniform(0, 500),
                                rand_node(rng)});
  msgs.push_back(EventInstall{rng.next_u64(),
                              rng.next_below(2) == 0 ? PredicateKind::kAreaCount
                                                     : PredicateKind::kProximity,
                              rand_polygon(rng), rand_oid(rng), rand_oid(rng),
                              rng.uniform(0, 500), rand_node(rng)});
  msgs.push_back(EventDelta{rng.next_u64(), rand_oid(rng), rng.next_below(2) == 0,
                            rand_point(rng)});
  msgs.push_back(EventNotify{rng.next_u64(), rng.next_below(2) == 0,
                             static_cast<std::uint32_t>(rng.next_below(1000))});
  msgs.push_back(EventUnsubscribe{rng.next_u64()});
  msgs.push_back(rand_batch(rng));
  msgs.push_back(rand_batch_ack(rng));
  msgs.push_back(Heartbeat{rng.next_u64()});
  msgs.push_back(HeartbeatAck{rng.next_u64()});
  msgs.push_back(RecoveryHello{rng.next_u64()});
  msgs.push_back(rand_refresh_batch(rng));
  return msgs;
}

constexpr std::size_t kVariantCount = std::variant_size_v<Message>;

// --- round-trip stability ----------------------------------------------------

TEST(CodecProperty, EncodeDecodeReencodeIsByteStableForEveryType) {
  Rng rng(2024);
  for (int iter = 0; iter < 64; ++iter) {
    const NodeId src = rand_node(rng);
    std::vector<bool> covered(kVariantCount, false);
    for (const Message& m : random_messages(rng)) {
      covered[m.index()] = true;
      const Buffer wire = encode_envelope(src, m);
      const auto decoded = decode_envelope(wire);
      ASSERT_TRUE(decoded.ok()) << msg_type_name(message_type(m));
      EXPECT_EQ(decoded.value().src, src);
      EXPECT_EQ(message_type(decoded.value().msg), message_type(m));
      const Buffer again = encode_envelope(src, decoded.value().msg);
      EXPECT_EQ(wire, again) << "re-encode diverged for "
                             << msg_type_name(message_type(m));
    }
    // The generator must keep covering every variant alternative.
    for (std::size_t i = 0; i < kVariantCount; ++i) {
      ASSERT_TRUE(covered[i]) << "no generator for variant index " << i;
    }
  }
}

TEST(CodecProperty, PeekObjectKeyAgreesWithFullDecode) {
  Rng rng(515);
  for (int iter = 0; iter < 64; ++iter) {
    for (const Message& m : random_messages(rng)) {
      const Buffer wire = encode_envelope(NodeId{9}, m);
      const std::optional<ObjectId> peeked = peek_object_key(wire.data(), wire.size());
      // Recover the expected key from the decoded message, if it is one of
      // the object-keyed types.
      std::optional<ObjectId> expected;
      std::visit(
          [&](const auto& msg) {
            using T = std::decay_t<decltype(msg)>;
            if constexpr (std::is_same_v<T, RegisterReq> ||
                          std::is_same_v<T, UpdateReq> ||
                          std::is_same_v<T, HandoverReq>) {
              expected = msg.s.oid;
            } else if constexpr (std::is_same_v<T, CreatePath> ||
                                 std::is_same_v<T, RemovePath> ||
                                 std::is_same_v<T, UpdateAck> ||
                                 std::is_same_v<T, HandoverRes> ||
                                 std::is_same_v<T, AgentChanged> ||
                                 std::is_same_v<T, PosQueryReq> ||
                                 std::is_same_v<T, PosQueryFwd> ||
                                 std::is_same_v<T, PosQueryRes> ||
                                 std::is_same_v<T, ChangeAccReq> ||
                                 std::is_same_v<T, NotifyAvailAcc> ||
                                 std::is_same_v<T, DeregisterReq> ||
                                 std::is_same_v<T, RefreshReq>) {
              expected = msg.oid;
            }
          },
          m);
      EXPECT_EQ(peeked, expected) << msg_type_name(message_type(m));
    }
  }
}

// --- truncation --------------------------------------------------------------

TEST(CodecProperty, TruncatingTheLastByteStickyFailsEveryType) {
  Rng rng(99);
  for (int iter = 0; iter < 16; ++iter) {
    for (const Message& m : random_messages(rng)) {
      const Buffer wire = encode_envelope(NodeId{3}, m);
      ASSERT_GT(wire.size(), 1u);
      const auto res = decode_envelope(wire.data(), wire.size() - 1);
      EXPECT_FALSE(res.ok()) << msg_type_name(message_type(m))
                             << " decoded despite a truncated final field";
    }
  }
}

TEST(CodecProperty, EveryPrefixDecodesWithoutCrashing) {
  Rng rng(7);
  for (const Message& m : random_messages(rng)) {
    const Buffer wire = encode_envelope(NodeId{3}, m);
    for (std::size_t len = 0; len <= wire.size(); ++len) {
      const auto res = decode_envelope(wire.data(), len);
      if (res.ok() && len < wire.size()) {
        // A shorter parse may be legal only if it still re-encodes cleanly.
        encode_envelope(NodeId{3}, res.value().msg);
      }
    }
  }
}

// --- corruption --------------------------------------------------------------

TEST(CodecProperty, BitFlipsNeverCrashTheDecoder) {
  Rng rng(31337);
  for (int iter = 0; iter < 24; ++iter) {
    for (const Message& m : random_messages(rng)) {
      Buffer wire = encode_envelope(NodeId{5}, m);
      for (int flip = 0; flip < 24; ++flip) {
        const std::size_t byte = rng.next_below(wire.size());
        const std::uint8_t mask = static_cast<std::uint8_t>(1u << rng.next_below(8));
        wire[byte] ^= mask;
        const auto res = decode_envelope(wire);
        if (res.ok()) {
          // Corruption that still parses must produce a sane, re-encodable
          // message -- never UB or unbounded allocation.
          encode_envelope(NodeId{5}, res.value().msg);
        }
        wire[byte] ^= mask;  // restore for the next flip
      }
    }
  }
}

TEST(CodecProperty, RandomGarbageNeverCrashesTheDecoder) {
  Rng rng(4242);
  Envelope scratch;  // also exercises the capacity-reusing decode path
  for (int iter = 0; iter < 4000; ++iter) {
    Buffer junk(rng.next_below(160));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_below(256));
    if (!junk.empty() && rng.next_below(2) == 0) {
      junk[0] = 1;  // valid version byte: reach the per-type decoders
      if (junk.size() > 1) {
        junk[1] = static_cast<std::uint8_t>(1 + rng.next_below(kVariantCount + 2));
      }
    }
    (void)decode_envelope_into(scratch, junk.data(), junk.size());
    (void)peek_object_key(junk.data(), junk.size());
  }
}

// --- batched updates (framing invariants of wire/messages.hpp) ---------------

TEST(CodecProperty, BatchCursorRoundTripsEverySighting) {
  Rng rng(88);
  for (int iter = 0; iter < 64; ++iter) {
    std::vector<core::Sighting> in(rng.next_below(12));
    BatchedUpdateReq batch;
    for (auto& s : in) {
      s = rand_sighting(rng);
      batch.append(s);
    }
    EXPECT_EQ(batch.count, in.size());
    const Buffer wire = encode_envelope(NodeId{4}, batch);
    const auto decoded = decode_envelope(wire);
    ASSERT_TRUE(decoded.ok());
    const auto& out = std::get<BatchedUpdateReq>(decoded.value().msg);
    EXPECT_EQ(out.count, in.size());
    BatchedUpdateReq::Cursor cur = out.sightings();
    core::Sighting s;
    std::size_t i = 0;
    while (cur.next(s)) {
      ASSERT_LT(i, in.size());
      EXPECT_EQ(s.oid, in[i].oid);
      EXPECT_EQ(s.t, in[i].t);
      EXPECT_EQ(s.pos, in[i].pos);
      EXPECT_EQ(s.acc_sens, in[i].acc_sens);
      ++i;
    }
    EXPECT_EQ(i, in.size());
  }
}

TEST(CodecProperty, BatchViewAgreesWithCursorAndReencodesItems) {
  Rng rng(89);
  for (int iter = 0; iter < 64; ++iter) {
    BatchedUpdateReq batch = rand_batch(rng);
    const Buffer wire = encode_envelope(NodeId{6}, batch);
    BatchedUpdateView view(wire.data(), wire.size());
    ASSERT_TRUE(view.valid());
    EXPECT_EQ(view.count(), batch.count);
    BatchedUpdateReq::Cursor cur = batch.sightings();
    core::Sighting s;
    Buffer reassembled;
    std::size_t items = 0;
    while (const auto item = view.next()) {
      ASSERT_TRUE(cur.next(s));
      EXPECT_EQ(item->oid, s.oid);  // the routing peek sees the same key
      reassembled.insert(reassembled.end(), item->data, item->data + item->len);
      ++items;
    }
    EXPECT_FALSE(cur.next(s));
    EXPECT_EQ(items, batch.count);
    // The concatenated item ranges ARE the packed region (shard splitting
    // re-frames batches by memcpy of these ranges).
    EXPECT_EQ(reassembled, batch.packed);
  }
  // Non-batch datagrams are rejected.
  const Buffer other = encode_envelope(NodeId{6}, UpdateReq{{}});
  EXPECT_FALSE(BatchedUpdateView(other.data(), other.size()).valid());
  EXPECT_FALSE(BatchedUpdateView(nullptr, 0).valid());
}

TEST(CodecProperty, TruncatedBatchTailStopsIterationWithoutCrashing) {
  Rng rng(90);
  BatchedUpdateReq batch;
  for (int i = 0; i < 4; ++i) batch.append(rand_sighting(rng));
  // Cut the packed region mid-sighting: the ENVELOPE must sticky-fail (the
  // packed_len prefix no longer fits the datagram) ...
  const Buffer wire = encode_envelope(NodeId{3}, batch);
  for (std::size_t cut = 1; cut < 30; ++cut) {
    EXPECT_FALSE(decode_envelope(wire.data(), wire.size() - cut).ok());
  }
  // ... and a batch whose OWNED packed region is malformed (bit rot, buggy
  // sender) stops lazy iteration at the damage instead of overrunning.
  BatchedUpdateReq damaged = batch;
  damaged.packed.resize(damaged.packed.size() - 7);
  BatchedUpdateReq::Cursor cur = damaged.sightings();
  core::Sighting s;
  std::size_t complete = 0;
  while (cur.next(s)) ++complete;
  EXPECT_EQ(complete, 3u);
  // Same for the routing view over a re-encoded damaged batch.
  const Buffer damaged_wire = encode_envelope(NodeId{3}, damaged);
  BatchedUpdateView view(damaged_wire.data(), damaged_wire.size());
  ASSERT_TRUE(view.valid());
  std::size_t viewed = 0;
  while (view.next()) ++viewed;
  EXPECT_EQ(viewed, 3u);
}

TEST(CodecProperty, BatchBitFlipsNeverCrashCursorOrView) {
  Rng rng(91);
  for (int iter = 0; iter < 200; ++iter) {
    BatchedUpdateReq batch;
    const std::size_t n = 1 + rng.next_below(6);
    for (std::size_t i = 0; i < n; ++i) batch.append(rand_sighting(rng));
    Buffer wire = encode_envelope(NodeId{8}, batch);
    const std::size_t byte = rng.next_below(wire.size());
    wire[byte] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    // The view never crashes, whatever the flip hit.
    BatchedUpdateView view(wire.data(), wire.size());
    while (view.next()) {
    }
    // If the envelope still decodes, lazy iteration must stay in bounds.
    const auto decoded = decode_envelope(wire);
    if (decoded.ok()) {
      if (const auto* m = std::get_if<BatchedUpdateReq>(&decoded.value().msg)) {
        BatchedUpdateReq::Cursor cur = m->sightings();
        core::Sighting s;
        while (cur.next(s)) {
        }
        encode_envelope(NodeId{8}, *m);  // and re-encode cleanly
      }
    }
  }
}

// --- batched refresh sweeps (fault-tolerance framing invariants) -------------

TEST(CodecProperty, RefreshBatchCursorRoundTripsEveryOid) {
  Rng rng(92);
  for (int iter = 0; iter < 64; ++iter) {
    std::vector<ObjectId> in(rng.next_below(16));
    BatchedRefreshReq batch;
    for (auto& oid : in) {
      oid = rand_oid(rng);
      batch.append(oid);
    }
    EXPECT_EQ(batch.count, in.size());
    const Buffer wire = encode_envelope(NodeId{4}, batch);
    const auto decoded = decode_envelope(wire);
    ASSERT_TRUE(decoded.ok());
    const auto& out = std::get<BatchedRefreshReq>(decoded.value().msg);
    EXPECT_EQ(out.count, in.size());
    BatchedRefreshReq::Cursor cur = out.oids();
    ObjectId oid;
    std::size_t i = 0;
    while (cur.next(oid)) {
      ASSERT_LT(i, in.size());
      EXPECT_EQ(oid, in[i]);
      ++i;
    }
    EXPECT_EQ(i, in.size());
  }
}

TEST(CodecProperty, RefreshViewAgreesWithCursorAndRejectsOtherTypes) {
  Rng rng(93);
  for (int iter = 0; iter < 64; ++iter) {
    BatchedRefreshReq batch = rand_refresh_batch(rng);
    const Buffer wire = encode_envelope(NodeId{6}, batch);
    BatchedRefreshView view(wire.data(), wire.size());
    ASSERT_TRUE(view.valid());
    EXPECT_EQ(view.count(), batch.count);
    BatchedRefreshReq::Cursor cur = batch.oids();
    ObjectId oid;
    Buffer reassembled;
    std::size_t items = 0;
    while (const auto item = view.next()) {
      ASSERT_TRUE(cur.next(oid));
      EXPECT_EQ(item->oid, oid);  // the routing peek sees the same key
      reassembled.insert(reassembled.end(), item->data, item->data + item->len);
      ++items;
    }
    EXPECT_FALSE(cur.next(oid));
    EXPECT_EQ(items, batch.count);
    // The concatenated item ranges ARE the packed region (shard splitting
    // re-frames recovery sweeps by memcpy of these ranges).
    EXPECT_EQ(reassembled, batch.packed);
  }
  // Non-refresh datagrams are rejected (incl. the other batch type).
  const Buffer update = encode_envelope(NodeId{6}, UpdateReq{{}});
  EXPECT_FALSE(BatchedRefreshView(update.data(), update.size()).valid());
  const Buffer batch_upd = encode_envelope(NodeId{6}, BatchedUpdateReq{});
  EXPECT_FALSE(BatchedRefreshView(batch_upd.data(), batch_upd.size()).valid());
  EXPECT_FALSE(BatchedRefreshView(nullptr, 0).valid());
}

TEST(CodecProperty, TruncatedRefreshBatchStickyFailsAndStopsIteration) {
  Rng rng(94);
  BatchedRefreshReq batch;
  for (int i = 0; i < 6; ++i) batch.append(ObjectId{(1ULL << 40) + rng.next_u64() % 1000});
  // Cutting the datagram breaks the packed_len prefix: envelope sticky-fails.
  const Buffer wire = encode_envelope(NodeId{3}, batch);
  for (std::size_t cut = 1; cut < wire.size() - 6; ++cut) {
    EXPECT_FALSE(decode_envelope(wire.data(), wire.size() - cut).ok());
  }
  // A batch whose OWNED packed region is damaged mid-varint stops lazy
  // iteration at the damage instead of overrunning.
  BatchedRefreshReq damaged = batch;
  damaged.packed.resize(damaged.packed.size() - 2);
  BatchedRefreshReq::Cursor cur = damaged.oids();
  ObjectId oid;
  std::size_t complete = 0;
  while (cur.next(oid)) ++complete;
  EXPECT_EQ(complete, 5u);
}

TEST(CodecProperty, RefreshBatchBitFlipsNeverCrashCursorOrView) {
  Rng rng(95);
  for (int iter = 0; iter < 200; ++iter) {
    BatchedRefreshReq batch;
    const std::size_t n = 1 + rng.next_below(8);
    for (std::size_t i = 0; i < n; ++i) batch.append(rand_oid(rng));
    Buffer wire = encode_envelope(NodeId{8}, batch);
    const std::size_t byte = rng.next_below(wire.size());
    wire[byte] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    // The view never crashes, whatever the flip hit.
    BatchedRefreshView view(wire.data(), wire.size());
    while (view.next()) {
    }
    // If the envelope still decodes, lazy iteration must stay in bounds.
    const auto decoded = decode_envelope(wire);
    if (decoded.ok()) {
      if (const auto* m = std::get_if<BatchedRefreshReq>(&decoded.value().msg)) {
        BatchedRefreshReq::Cursor cur = m->oids();
        ObjectId oid;
        while (cur.next(oid)) {
        }
        encode_envelope(NodeId{8}, *m);  // and re-encode cleanly
      }
    }
  }
}

// --- hardened varints (extends PR 1's boundary tests) ------------------------

TEST(CodecProperty, VarintBoundaryValuesRoundTrip) {
  Rng rng(1);
  std::vector<std::uint64_t> values = {0,
                                       1,
                                       127,
                                       128,
                                       16383,
                                       16384,
                                       (1ULL << 32) - 1,
                                       1ULL << 32,
                                       (1ULL << 63) - 1,
                                       1ULL << 63,
                                       UINT64_MAX};
  for (int i = 0; i < 2000; ++i) {
    values.push_back(rng.next_u64() >> rng.next_below(64));
  }
  for (const std::uint64_t v : values) {
    Buffer buf;
    {
      Writer w(buf);
      w.u64(v);
    }
    Reader r(buf);
    EXPECT_EQ(r.u64(), v);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.remaining(), 0u);
  }
}

TEST(CodecProperty, OverlongAndOverflowingVarintsStickyFail) {
  {
    // 11 continuation bytes: longer than any valid u64 encoding.
    Buffer buf(11, 0x80);
    buf.push_back(0x00);
    Reader r(buf);
    r.u64();
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.u64(), 0u);  // sticky: further reads keep failing
  }
  {
    // 10th byte contributes bits beyond 2^64.
    Buffer buf(9, 0x80);
    buf.push_back(0x02);
    Reader r(buf);
    r.u64();
    EXPECT_FALSE(r.ok());
  }
  {
    // 10th byte == 0x01 is exactly 2^63 in the top position: legal.
    Buffer buf(9, 0x80);
    buf.push_back(0x01);
    Reader r(buf);
    const std::uint64_t v = r.u64();
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(v, 1ULL << 63);
  }
}

}  // namespace
}  // namespace locs::wire
