// Wire codec: primitive round trips, bounds checking, and round trips of
// every protocol message (including randomized property sweeps).
#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "wire/codec.hpp"
#include "wire/messages.hpp"

namespace locs::wire {
namespace {

TEST(Codec, PrimitiveRoundTrip) {
  Buffer buf;
  Writer w(buf);
  w.u8(0xab);
  w.u32(12345);
  w.u64(0xdeadbeefcafeULL);
  w.i64(-987654321);
  w.f64(3.14159265358979);
  w.str("location service");
  w.boolean(true);
  w.u32_fixed(0x11223344);
  w.flush();

  Reader r(buf);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 12345u);
  EXPECT_EQ(r.u64(), 0xdeadbeefcafeULL);
  EXPECT_EQ(r.i64(), -987654321);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159265358979);
  EXPECT_EQ(r.str(), "location service");
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.u32_fixed(), 0x11223344u);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Codec, VarintBoundaries) {
  for (const std::uint64_t v :
       {0ULL, 1ULL, 126ULL, 127ULL, 128ULL, 129ULL, 16383ULL, 16384ULL,
        0xffffffffULL, 1ULL << 63, (1ULL << 63) - 1, (1ULL << 63) + 1,
        0xffffffffffffffffULL}) {
    Buffer buf;
    Writer w(buf);
    w.u64(v);
    w.flush();
    Reader r(buf);
    EXPECT_EQ(r.u64(), v);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.remaining(), 0u);
  }
}

TEST(Codec, VarintRejectsOverlongEncodings) {
  // 11-byte encoding (continuation on the 10th byte): must sticky-fail, not
  // loop or truncate.
  {
    const std::uint8_t overlong[11] = {0x80, 0x80, 0x80, 0x80, 0x80, 0x80,
                                       0x80, 0x80, 0x80, 0x80, 0x00};
    Reader r(overlong, sizeof overlong);
    EXPECT_EQ(r.u64(), 0u);
    EXPECT_FALSE(r.ok());
  }
  // 10th byte carrying bits beyond 2^64 (0x02): overflow must be rejected.
  {
    const std::uint8_t overflow[10] = {0xff, 0xff, 0xff, 0xff, 0xff,
                                       0xff, 0xff, 0xff, 0xff, 0x02};
    Reader r(overflow, sizeof overflow);
    EXPECT_EQ(r.u64(), 0u);
    EXPECT_FALSE(r.ok());
  }
  // 10-byte encoding of UINT64_MAX (10th byte 0x01) stays valid.
  {
    const std::uint8_t max[10] = {0xff, 0xff, 0xff, 0xff, 0xff,
                                  0xff, 0xff, 0xff, 0xff, 0x01};
    Reader r(max, sizeof max);
    EXPECT_EQ(r.u64(), 0xffffffffffffffffULL);
    EXPECT_TRUE(r.ok());
  }
  // 2^63 as the canonical 10-byte encoding.
  {
    const std::uint8_t p63[10] = {0x80, 0x80, 0x80, 0x80, 0x80,
                                  0x80, 0x80, 0x80, 0x80, 0x01};
    Reader r(p63, sizeof p63);
    EXPECT_EQ(r.u64(), 1ULL << 63);
    EXPECT_TRUE(r.ok());
  }
}

TEST(Codec, VarintTruncatedMultibyteFails) {
  // Continuation bit set but the buffer ends: every strict prefix of a
  // multi-byte varint must sticky-fail.
  Buffer buf;
  {
    Writer w(buf);
    w.u64(0xffffffffffffffffULL);
  }
  for (std::size_t len = 0; len < buf.size(); ++len) {
    Reader r(buf.data(), len);
    EXPECT_EQ(r.u64(), 0u);
    EXPECT_FALSE(r.ok()) << "prefix of length " << len << " decoded";
  }
}

TEST(Codec, ZigZagBoundaries) {
  for (const std::int64_t v :
       {std::int64_t{0}, std::int64_t{-1}, std::int64_t{1},
        std::numeric_limits<std::int64_t>::min(),
        std::numeric_limits<std::int64_t>::max()}) {
    Buffer buf;
    Writer w(buf);
    w.i64(v);
    w.flush();
    Reader r(buf);
    EXPECT_EQ(r.i64(), v);
  }
}

TEST(Codec, SpecialDoubles) {
  for (const double v : {0.0, -0.0, 1e300, -1e-300,
                         std::numeric_limits<double>::infinity()}) {
    Buffer buf;
    Writer w(buf);
    w.f64(v);
    w.flush();
    Reader r(buf);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(r.f64()), std::bit_cast<std::uint64_t>(v));
  }
}

TEST(Codec, TruncatedReadsFailSticky) {
  Buffer buf;
  Writer w(buf);
  w.u64(300);
  w.flush();
  Reader r(buf.data(), 0);
  (void)r.u64();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruptData);
  // Sticky: further reads keep failing harmlessly.
  (void)r.f64();
  (void)r.str();
  EXPECT_FALSE(r.ok());
}

TEST(Codec, OversizedStringLengthRejected) {
  Buffer buf;
  Writer w(buf);
  w.u64(1 << 30);  // claims a 1 GiB string with no payload
  w.flush();
  Reader r(buf);
  EXPECT_EQ(r.str(), "");
  EXPECT_FALSE(r.ok());
}

// --- full message round trips ------------------------------------------------

core::Sighting test_sighting() {
  return {ObjectId{42}, 123456789, {100.5, -200.25}, 7.5};
}

geo::Polygon test_polygon() {
  return geo::Polygon::from_rect(geo::Rect{{0, 0}, {50, 60}});
}

template <typename T>
T round_trip(const T& msg, NodeId src = NodeId{9}) {
  const Buffer buf = encode_envelope(src, Message{msg});
  auto decoded = decode_envelope(buf);
  EXPECT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value().src, src);
  EXPECT_TRUE(std::holds_alternative<T>(decoded.value().msg));
  return std::get<T>(decoded.value().msg);
}

TEST(Messages, RegisterReqRoundTrip) {
  RegisterReq m;
  m.s = test_sighting();
  m.obj_info = "truck-17";
  m.acc_range = {10.0, 100.0};
  m.reg_inst = NodeId{1234};
  m.req_id = 99;
  const RegisterReq out = round_trip(m);
  EXPECT_EQ(out.s, m.s);
  EXPECT_EQ(out.obj_info, m.obj_info);
  EXPECT_EQ(out.acc_range, m.acc_range);
  EXPECT_EQ(out.reg_inst, m.reg_inst);
  EXPECT_EQ(out.req_id, m.req_id);
}

TEST(Messages, RegisterResAndFailedRoundTrip) {
  const RegisterRes res = round_trip(RegisterRes{NodeId{5}, 25.0, 7});
  EXPECT_EQ(res.agent, NodeId{5});
  EXPECT_DOUBLE_EQ(res.offered_acc, 25.0);
  const RegisterFailed failed = round_trip(RegisterFailed{NodeId{6}, -1.0, 8});
  EXPECT_DOUBLE_EQ(failed.best_acc, -1.0);
}

TEST(Messages, PathMessagesRoundTrip) {
  EXPECT_EQ(round_trip(CreatePath{ObjectId{77}}).oid, ObjectId{77});
  EXPECT_EQ(round_trip(RemovePath{ObjectId{88}}).oid, ObjectId{88});
}

TEST(Messages, UpdateRoundTrip) {
  const UpdateReq out = round_trip(UpdateReq{test_sighting()});
  EXPECT_EQ(out.s, test_sighting());
  const UpdateAck ack = round_trip(UpdateAck{ObjectId{42}, 12.5});
  EXPECT_DOUBLE_EQ(ack.offered_acc, 12.5);
}

TEST(Messages, HandoverRoundTripWithOrigin) {
  HandoverReq m;
  m.s = test_sighting();
  m.reg_info = {NodeId{1000}, {5.0, 50.0}};
  m.prev_offered_acc = 11.0;
  m.direct = true;
  m.req_id = 1234567;
  m.origin = OriginArea{NodeId{4}, test_polygon()};
  const HandoverReq out = round_trip(m);
  EXPECT_EQ(out.s, m.s);
  EXPECT_EQ(out.reg_info, m.reg_info);
  EXPECT_DOUBLE_EQ(out.prev_offered_acc, 11.0);
  EXPECT_TRUE(out.direct);
  ASSERT_TRUE(out.origin.has_value());
  EXPECT_EQ(out.origin->leaf, NodeId{4});
  EXPECT_EQ(out.origin->area.vertices().size(), 4u);

  HandoverRes res;
  res.oid = ObjectId{42};
  res.new_agent = NodeId{6};
  res.offered_acc = 10.0;
  res.req_id = 55;
  const HandoverRes res_out = round_trip(res);
  EXPECT_EQ(res_out.new_agent, NodeId{6});
  EXPECT_FALSE(res_out.origin.has_value());
}

TEST(Messages, PosQueryRoundTrip) {
  const PosQueryReq req = round_trip(PosQueryReq{ObjectId{1}, 2});
  EXPECT_EQ(req.oid, ObjectId{1});
  const PosQueryFwd fwd = round_trip(PosQueryFwd{ObjectId{1}, NodeId{3}, 4});
  EXPECT_EQ(fwd.entry, NodeId{3});
  PosQueryRes res;
  res.oid = ObjectId{1};
  res.found = true;
  res.ld = {{10, 20}, 5.0};
  res.agent = NodeId{9};
  res.req_id = 4;
  const PosQueryRes out = round_trip(res);
  EXPECT_TRUE(out.found);
  EXPECT_EQ(out.ld, res.ld);
  EXPECT_EQ(out.agent, NodeId{9});
}

TEST(Messages, RangeQueryRoundTrip) {
  RangeQueryReq req;
  req.area = test_polygon();
  req.req_acc = 25.0;
  req.req_overlap = 0.5;
  req.req_id = 77;
  const RangeQueryReq req_out = round_trip(req);
  EXPECT_EQ(req_out.area.vertices(), req.area.vertices());
  EXPECT_DOUBLE_EQ(req_out.req_overlap, 0.5);

  RangeQuerySubRes sub;
  sub.req_id = 77;
  sub.covered_size = 123.5;
  sub.results.assign({{ObjectId{1}, {{1, 2}, 3}}, {ObjectId{2}, {{4, 5}, 6}}});
  sub.origin = OriginArea{NodeId{8}, test_polygon()};
  const RangeQuerySubRes sub_out = round_trip(sub);
  EXPECT_EQ(sub_out.results, sub.results);
  EXPECT_DOUBLE_EQ(sub_out.covered_size, 123.5);

  RangeQueryRes res;
  res.req_id = 77;
  res.complete = false;
  res.results = sub.results;
  const RangeQueryRes res_out = round_trip(res);
  EXPECT_FALSE(res_out.complete);
  EXPECT_EQ(res_out.results, res.results);
}

TEST(Messages, NNRoundTrip) {
  const NNQueryReq req = round_trip(NNQueryReq{{3, 4}, 10.0, 20.0, 5});
  EXPECT_DOUBLE_EQ(req.near_qual, 20.0);
  const NNProbeFwd probe = round_trip(NNProbeFwd{{3, 4}, 100.0, 10.0, NodeId{2}, 6});
  EXPECT_DOUBLE_EQ(probe.radius, 100.0);
  NNQueryRes res;
  res.req_id = 5;
  res.found = true;
  res.nearest = {ObjectId{3}, {{6, 7}, 8}};
  res.near_set.assign({{ObjectId{4}, {{9, 10}, 11}}});
  const NNQueryRes out = round_trip(res);
  EXPECT_EQ(out.nearest, res.nearest);
  EXPECT_EQ(out.near_set, res.near_set);
}

TEST(Messages, AccuracyAndLifecycleRoundTrip) {
  const ChangeAccReq c = round_trip(ChangeAccReq{ObjectId{1}, {5, 50}, 9});
  EXPECT_EQ(c.acc_range, (core::AccuracyRange{5, 50}));
  const ChangeAccRes cr = round_trip(ChangeAccRes{9, true, 7.5});
  EXPECT_TRUE(cr.ok);
  const NotifyAvailAcc n = round_trip(NotifyAvailAcc{ObjectId{2}, 30.0});
  EXPECT_DOUBLE_EQ(n.offered_acc, 30.0);
  EXPECT_EQ(round_trip(DeregisterReq{ObjectId{3}}).oid, ObjectId{3});
  EXPECT_EQ(round_trip(RefreshReq{ObjectId{4}}).oid, ObjectId{4});
}

TEST(Messages, EventMessagesRoundTrip) {
  EventSubscribe sub;
  sub.sub_id = 100;
  sub.kind = PredicateKind::kProximity;
  sub.obj_a = ObjectId{1};
  sub.obj_b = ObjectId{2};
  sub.dist = 50.0;
  sub.subscriber = NodeId{77};
  const EventSubscribe sub_out = round_trip(sub);
  EXPECT_EQ(sub_out.kind, PredicateKind::kProximity);
  EXPECT_DOUBLE_EQ(sub_out.dist, 50.0);

  const EventDelta delta = round_trip(EventDelta{100, ObjectId{1}, true, {5, 6}});
  EXPECT_TRUE(delta.entered);
  const EventNotify notify = round_trip(EventNotify{100, true, 6});
  EXPECT_EQ(notify.count, 6u);
  EXPECT_EQ(round_trip(EventUnsubscribe{100}).sub_id, 100u);
}

TEST(Messages, RejectsGarbage) {
  const std::uint8_t garbage[] = {0x01, 0xff, 0x00, 0x00, 0x00, 0x00};
  EXPECT_FALSE(decode_envelope(garbage, sizeof garbage).ok());
  EXPECT_FALSE(decode_envelope(nullptr, 0).ok());
  const std::uint8_t bad_version[] = {0x63, 0x01, 0x00, 0x00, 0x00, 0x00};
  EXPECT_FALSE(decode_envelope(bad_version, sizeof bad_version).ok());
}

TEST(Messages, TruncationAlwaysDetected) {
  RegisterReq m;
  m.s = test_sighting();
  m.obj_info = "payload";
  m.acc_range = {1, 2};
  m.reg_inst = NodeId{3};
  m.req_id = 4;
  const Buffer buf = encode_envelope(NodeId{1}, Message{m});
  // Every strict prefix must fail to decode as this message (some very short
  // prefixes fail at the envelope level, which is also acceptable).
  for (std::size_t len = 6; len + 1 < buf.size(); ++len) {
    auto decoded = decode_envelope(buf.data(), len);
    EXPECT_FALSE(decoded.ok()) << "prefix of length " << len << " decoded";
  }
}

class MessageFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MessageFuzz, RandomBytesNeverCrash) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 2000; ++iter) {
    Buffer buf(rng.next_below(120));
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next_u64());
    if (!buf.empty()) buf[0] = 1;  // plausible version byte half the time
    (void)decode_envelope(buf);  // must not crash or hang
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MessageFuzz, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace locs::wire
