// The §3.2 query semantics, pinned to the paper's own worked examples
// (Fig 3 for range queries, Fig 4 for nearest neighbors), plus the
// accuracy-bound model and client-side caching.
#include <gtest/gtest.h>

#include "core/local_service.hpp"
#include "test_support.hpp"

namespace locs::test {
namespace {

const geo::Rect kArea{{0, 0}, {1000, 1000}};

core::LocalLocationService::Config config() {
  core::LocalLocationService::Config cfg;
  cfg.area = kArea;
  cfg.levels = 1;
  cfg.server.min_supported_acc = 1.0;
  return cfg;
}

// Fig 3: a queried area and five objects -- o1 fully inside (overlap 1),
// o2 fully outside (overlap 0), o3 with ~40% overlap, o4 with ~10%, o5
// inside but with insufficient accuracy. reqOverlap = 0.3.
TEST(Fig3RangeSemantics, ExactScenario) {
  core::LocalLocationService ls(config());
  const geo::Polygon area = geo::Polygon::from_rect(geo::Rect{{300, 300}, {600, 600}});
  const double req_acc = 50.0;
  const double req_overlap = 0.3;

  // o1: fully inside (overlap 1.0) -> included.
  ls.register_object(ObjectId{1}, {450, 450}, 1.0, {20.0, 100.0}).value();
  // o2: far outside (overlap 0) -> not included.
  ls.register_object(ObjectId{2}, {900, 900}, 1.0, {20.0, 100.0}).value();
  // o3: straddling with overlap ~0.5 >= 0.3 -> included.
  ls.register_object(ObjectId{3}, {600, 450}, 1.0, {20.0, 100.0}).value();
  ASSERT_NEAR(geo::overlap_degree(area, {{600, 450}, 20.0}), 0.5, 0.01);
  // o4: overlap ~0.1 < 0.3 -> not included.
  ls.register_object(ObjectId{4}, {615, 450}, 1.0, {20.0, 100.0}).value();
  const double ov4 = geo::overlap_degree(area, {{615, 450}, 20.0});
  ASSERT_LT(ov4, 0.3);
  ASSERT_GT(ov4, 0.0);
  // o5: deep inside but accuracy 80 > reqAcc 50 -> not included.
  ls.register_object(ObjectId{5}, {460, 460}, 1.0, {80.0, 200.0}).value();

  const auto res = ls.range_query(area, req_acc, req_overlap);
  std::vector<std::uint64_t> ids;
  for (const auto& r : res) ids.push_back(r.oid.value);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{1, 3}));
}

// Fig 4: nearest-neighbor with nearQual ring and an accuracy-filtered
// candidate. o = returned nearest; o1 within nearQual; o2 outside the
// nearQual circle; o3 excluded for accuracy.
TEST(Fig4NeighborSemantics, ExactScenario) {
  core::LocalLocationService ls(config());
  const geo::Point p{500, 500};
  const double req_acc = 30.0;
  const double near_qual = 60.0;

  ls.register_object(ObjectId{10}, {560, 500}, 1.0, {25.0, 100.0}).value();  // o: d=60
  ls.register_object(ObjectId{11}, {500, 610}, 1.0, {25.0, 100.0}).value();  // o1: d=110 <= 60+60
  ls.register_object(ObjectId{12}, {500, 640}, 1.0, {25.0, 100.0}).value();  // o2: d=140 > 120
  ls.register_object(ObjectId{13}, {505, 500}, 1.0, {90.0, 200.0}).value();  // o3: acc 90 > 30

  const auto nn = ls.neighbor_query(p, req_acc, near_qual);
  ASSERT_TRUE(nn.found);
  EXPECT_EQ(nn.nearest.oid, ObjectId{10});
  ASSERT_EQ(nn.near_set.size(), 1u);
  EXPECT_EQ(nn.near_set[0].oid, ObjectId{11});
  // Guaranteed minimal distance: DISTANCE(ld.pos, p) - reqAcc.
  const double guaranteed = geo::distance(nn.nearest.ld.pos, p) - req_acc;
  EXPECT_NEAR(guaranteed, 30.0, 1e-9);
}

TEST(RangeSemantics, OverlapThresholdBoundary) {
  core::LocalLocationService ls(config());
  const geo::Polygon area = geo::Polygon::from_rect(geo::Rect{{300, 300}, {600, 600}});
  // Object centered exactly on the boundary: overlap = 0.5 (up to rounding
  // in the circular-segment arithmetic; probe epsilon-below and epsilon-
  // above the actual value to pin the >= semantics).
  ls.register_object(ObjectId{1}, {300, 450}, 1.0, {20.0, 100.0}).value();
  const double overlap = geo::overlap_degree(area, {{300, 450}, 20.0});
  EXPECT_NEAR(overlap, 0.5, 1e-9);
  EXPECT_EQ(ls.range_query(area, 50.0, overlap - 1e-9).size(), 1u);
  EXPECT_EQ(ls.range_query(area, 50.0, overlap + 1e-6).size(), 0u);
}

TEST(RangeSemantics, ReqOverlapOneRequiresFullContainment) {
  core::LocalLocationService ls(config());
  const geo::Polygon area = geo::Polygon::from_rect(geo::Rect{{300, 300}, {600, 600}});
  ls.register_object(ObjectId{1}, {450, 450}, 1.0, {20.0, 100.0}).value();  // fully in
  ls.register_object(ObjectId{2}, {590, 450}, 1.0, {20.0, 100.0}).value();  // circle pokes out
  const auto res = ls.range_query(area, 50.0, 1.0);
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].oid, ObjectId{1});
}

TEST(RangeSemantics, ReturnedDescriptorsCarryOfferedAccuracy) {
  core::LocalLocationService ls(config());
  ls.register_object(ObjectId{1}, {450, 450}, 1.0, {35.0, 100.0}).value();
  const auto res = ls.range_query(
      geo::Polygon::from_rect(geo::Rect{{300, 300}, {600, 600}}), 50.0, 0.3);
  ASSERT_EQ(res.size(), 1u);
  EXPECT_DOUBLE_EQ(res[0].ld.acc, 35.0);  // ld.acc = offeredAcc
}

TEST(AccuracyModel, BoundGrowsWithTimeAndSpeed) {
  const core::Sighting s{ObjectId{1}, seconds(100), {0, 0}, 10.0};
  EXPECT_DOUBLE_EQ(core::accuracy_bound(s, 5.0, seconds(100)), 10.0);
  EXPECT_DOUBLE_EQ(core::accuracy_bound(s, 5.0, seconds(110)), 60.0);
  // Clock skew (t < s.t) never shrinks the bound below the sensor accuracy.
  EXPECT_DOUBLE_EQ(core::accuracy_bound(s, 5.0, seconds(90)), 10.0);
}

TEST(ClientCache, ServesRepeatsAndAgesOut) {
  SimWorld world(core::HierarchyBuilder::fig6(geo::Rect{{0, 0}, {1000, 1000}}));
  auto obj = world.register_object(ObjectId{1}, {600, 100}, 1.0, {10.0, 50.0});
  auto qc = world.make_query_client(NodeId{4});
  qc->enable_position_cache(/*max_speed=*/10.0, /*max_acceptable_acc=*/50.0);

  ASSERT_TRUE(world.pos_query(*qc, ObjectId{1}).found);  // miss, learns
  EXPECT_EQ(qc->position_cache_hits(), 0u);
  const std::uint64_t msgs_before = world.net.messages_sent();
  const auto hit = world.pos_query(*qc, ObjectId{1});
  ASSERT_TRUE(hit.found);
  EXPECT_EQ(qc->position_cache_hits(), 1u);
  EXPECT_EQ(world.net.messages_sent(), msgs_before);  // zero messages

  // After 10 virtual seconds the aged accuracy 10 + 100 > 50: miss again.
  world.net.clock().advance(seconds(10));
  const auto aged = world.pos_query(*qc, ObjectId{1});
  ASSERT_TRUE(aged.found);
  EXPECT_EQ(qc->position_cache_hits(), 1u);
  EXPECT_GT(world.net.messages_sent(), msgs_before);
}

TEST(ClientCache, HitReportsAgedAccuracy) {
  SimWorld world(core::HierarchyBuilder::fig6(geo::Rect{{0, 0}, {1000, 1000}}));
  auto obj = world.register_object(ObjectId{1}, {600, 100}, 1.0, {10.0, 50.0});
  auto qc = world.make_query_client(NodeId{4});
  qc->enable_position_cache(10.0, 100.0);
  ASSERT_TRUE(world.pos_query(*qc, ObjectId{1}).found);
  world.net.clock().advance(seconds(3));
  const auto hit = world.pos_query(*qc, ObjectId{1});
  ASSERT_TRUE(hit.found);
  EXPECT_NEAR(hit.ld.acc, 10.0 + 30.0, 1e-6);  // acc + v * dt
}

}  // namespace
}  // namespace locs::test
